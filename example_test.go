package advdet_test

import (
	"fmt"

	"advdet"
)

// Example demonstrates the timing behaviour of the adaptive system:
// entering darkness swaps the vehicle-detection bitstream, costing
// exactly one vehicle frame at 50 fps, while the pedestrian pipeline
// never stops. Detection itself is disabled (WithTimingOnly) so the
// example runs in milliseconds; see examples/quickstart for the full
// path.
func Example() {
	sys, err := advdet.NewSystem(advdet.Detectors{},
		advdet.WithInitial(advdet.Dusk), advdet.WithTimingOnly())
	if err != nil {
		fmt.Println(err)
		return
	}

	// Five dusk frames, then darkness falls.
	for i := 0; i < 5; i++ {
		sc := advdet.RenderScene(uint64(i), 64, 36, advdet.Dusk)
		sys.ProcessFrame(sc)
	}
	for i := 0; i < 15; i++ {
		sc := advdet.RenderScene(uint64(100+i), 64, 36, advdet.Dark)
		sys.ProcessFrame(sc)
	}

	st := sys.Stats()
	fmt.Printf("reconfigurations: %d\n", len(st.Reconfigs))
	fmt.Printf("vehicle frames dropped: %d\n", st.VehicleDropped)
	fmt.Printf("pedestrian frames processed: %d of %d\n", st.PedestrianFrames, st.Frames)
	fmt.Printf("loaded configuration: %s\n", sys.Loaded())
	// Output:
	// reconfigurations: 1
	// vehicle frames dropped: 1
	// pedestrian frames processed: 20 of 20
	// loaded configuration: dark
}
