package advdet

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"
	"time"
)

// TestProcessFrameDeterministicAcrossParallelism pins the tentpole
// guarantee: detection output is identical whatever the worker count,
// in all three lighting conditions.
func TestProcessFrameDeterministicAcrossParallelism(t *testing.T) {
	d := getDets(t)
	for _, cond := range []Condition{Day, Dusk, Dark} {
		t.Run(cond.String(), func(t *testing.T) {
			sc := RenderScene(uint64(200+cond), 320, 180, cond)
			var ref FrameResult
			for i, par := range []int{1, 2, runtime.NumCPU()} {
				sys, err := NewSystem(d, WithInitial(cond), WithParallelism(par))
				if err != nil {
					t.Fatal(err)
				}
				res, err := sys.ProcessFrame(sc)
				if err != nil {
					t.Fatal(err)
				}
				if i == 0 {
					ref = res
					continue
				}
				if !reflect.DeepEqual(res.Vehicles, ref.Vehicles) {
					t.Fatalf("parallelism %d: vehicles differ from serial:\n got %v\nwant %v",
						par, res.Vehicles, ref.Vehicles)
				}
				if !reflect.DeepEqual(res.Pedestrians, ref.Pedestrians) {
					t.Fatalf("parallelism %d: pedestrians differ from serial:\n got %v\nwant %v",
						par, res.Pedestrians, ref.Pedestrians)
				}
			}
		})
	}
}

func TestProcessFrameCtxPreCancelled(t *testing.T) {
	sys, err := NewSystem(getDets(t))
	if err != nil {
		t.Fatal(err)
	}
	sc := RenderScene(210, 320, 180, Day)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	start := time.Now()
	_, err = sys.ProcessFrameCtx(ctx, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled frame took %v", elapsed)
	}
}
