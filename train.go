package advdet

import (
	"advdet/internal/dbn"
	"advdet/internal/hog"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// Quality selects a training budget.
type Quality int

const (
	// Fast trains on small synthetic sets — seconds, good enough for
	// examples and smoke tests.
	Fast Quality = iota
	// Full trains on the Table I-scale sets the benchmarks use.
	Full
)

// trainConfig is the resolved training budget. Zero DBN fields mean
// "keep dbn.DefaultConfig()".
type trainConfig struct {
	cropsPerClass int
	darkWindows   int
	dbnEpochs     int
	dbnFineTune   int
}

func (q Quality) config() trainConfig {
	if q == Full {
		return trainConfig{cropsPerClass: 300, darkWindows: 250}
	}
	return trainConfig{cropsPerClass: 80, darkWindows: 100, dbnEpochs: 4, dbnFineTune: 30}
}

// TrainOption adjusts one axis of the training budget on top of the
// Fast defaults.
type TrainOption func(*trainConfig)

// WithQuality resets every budget axis to a preset; combine with the
// finer-grained options below to deviate from it.
func WithQuality(q Quality) TrainOption {
	return func(c *trainConfig) { *c = q.config() }
}

// WithCropsPerClass sets how many positive and negative crops each
// HOG+SVM model (day, dusk, pedestrian) trains on.
func WithCropsPerClass(n int) TrainOption {
	return func(c *trainConfig) { c.cropsPerClass = n }
}

// WithDarkWindows sets how many taillight windows the dark pipeline's
// DBN and pair SVM train on.
func WithDarkWindows(n int) TrainOption {
	return func(c *trainConfig) { c.darkWindows = n }
}

// WithDBNEpochs sets the per-RBM contrastive-divergence epochs for
// DBN pre-training (0 keeps the dbn package default).
func WithDBNEpochs(n int) TrainOption {
	return func(c *trainConfig) { c.dbnEpochs = n }
}

// WithDBNFineTune sets the supervised fine-tuning iteration count
// (0 keeps the dbn package default).
func WithDBNFineTune(n int) TrainOption {
	return func(c *trainConfig) { c.dbnFineTune = n }
}

// TrainDetectors trains every model the adaptive system needs from
// synthetic data at a preset quality. It is shorthand for
// TrainDetectorsOpts(seed, WithQuality(q)).
func TrainDetectors(seed uint64, q Quality) (Detectors, error) {
	return TrainDetectorsOpts(seed, WithQuality(q))
}

// TrainDetectorsOpts trains every model the adaptive system needs
// from synthetic data: the day and dusk HOG+SVM vehicle models, the
// pedestrian model (mixed conditions, as the static path runs day and
// night), and the dark pipeline's DBN and pair SVM. Options refine
// the Fast budget; start with WithQuality to pick another preset.
//
// The returned Detectors uses the day model for day and the dusk
// model for dusk, mirroring the paper's two-models-in-BRAM design.
//
// Trained detectors are immutable at inference time: train once, then
// share one Detectors across every stream of an Engine (NewEngine) or
// across any number of Systems. Scan scratch is pooled per process,
// not per model, so sharing adds no memory.
func TrainDetectorsOpts(seed uint64, opts ...TrainOption) (Detectors, error) {
	cfg := Fast.config()
	for _, o := range opts {
		o(&cfg)
	}
	nTrain, nWin := cfg.cropsPerClass, cfg.darkWindows

	hogCfg := hog.DefaultConfig()
	svmOpts := svm.DefaultOptions()

	dayDS := synth.DayDataset(seed, 64, 64, nTrain, nTrain)
	duskDS := synth.DuskDataset(seed+1, 64, 64, nTrain, nTrain, 0)

	dayModel, err := pipeline.TrainVehicleSVM(dayDS, hogCfg, svmOpts)
	if err != nil {
		return Detectors{}, err
	}
	duskModel, err := pipeline.TrainVehicleSVM(duskDS, hogCfg, svmOpts)
	if err != nil {
		return Detectors{}, err
	}

	pedDay := synth.PedestrianDataset(seed+2, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*5/8, nTrain*5/8, synth.Day)
	pedDusk := synth.PedestrianDataset(seed+3, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*3/8, nTrain*3/8, synth.Dusk)
	pedDark := synth.PedestrianDataset(seed+4, pipeline.PedWindowW, pipeline.PedWindowH, nTrain*3/8, nTrain*3/8, synth.Dark)
	pedAll := pipeline.CombineDatasets("ped-all",
		pipeline.CombineDatasets("ped-dd", pedDay, pedDusk), pedDark)
	pedModel, err := pipeline.TrainPedestrianSVM(pedAll, hogCfg, svmOpts)
	if err != nil {
		return Detectors{}, err
	}

	dbnCfg := dbn.DefaultConfig()
	if cfg.dbnEpochs > 0 {
		dbnCfg.PretrainOpts.Epochs = cfg.dbnEpochs
	}
	if cfg.dbnFineTune > 0 {
		dbnCfg.FineTuneIter = cfg.dbnFineTune
	}
	darkDet, err := pipeline.TrainDarkDetector(seed+5, pipeline.DefaultDarkConfig(), dbnCfg, nWin)
	if err != nil {
		return Detectors{}, err
	}

	return Detectors{
		Day:        pipeline.NewDayDuskDetector(dayModel),
		Dusk:       pipeline.NewDayDuskDetector(duskModel),
		Dark:       darkDet,
		Pedestrian: pipeline.NewPedestrianDetector(pedModel),
	}, nil
}
