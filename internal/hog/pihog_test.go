package hog

import (
	"math"
	"testing"

	"advdet/internal/img"
)

func TestPIHOGDescriptorLen(t *testing.T) {
	p := DefaultPIHOG()
	// 64x64: 7x7 blocks, 2x2 cells, (9+3) per cell.
	want := 7 * 7 * 4 * 12
	if got := p.DescriptorLen(64, 64); got != want {
		t.Fatalf("DescriptorLen = %d, want %d", got, want)
	}
	if got := len(p.Extract(img.NewGray(64, 64))); got != want {
		t.Fatalf("Extract length = %d, want %d", got, want)
	}
}

func TestPIHOGFiniteAndBounded(t *testing.T) {
	p := DefaultPIHOG()
	g := img.NewGray(32, 32)
	rng := newTestRNG(3)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.next() % 256)
	}
	for i, v := range p.Extract(g) {
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 || v > 1 {
			t.Fatalf("value %v at %d out of range", v, i)
		}
	}
}

func TestPIHOGDistinguishesIntensity(t *testing.T) {
	// Two images with identical gradients but different absolute
	// brightness: plain HOG cannot tell them apart, PIHOG must.
	bright := img.NewGray(32, 32)
	bright.Fill(200)
	dark := img.NewGray(32, 32)
	dark.Fill(20)

	c := DefaultConfig()
	hb, hd := c.Extract(bright), c.Extract(dark)
	for i := range hb {
		if hb[i] != hd[i] {
			t.Fatal("plain HOG should be identical on flat images")
		}
	}
	p := DefaultPIHOG()
	pb, pd := p.Extract(bright), p.Extract(dark)
	var diff float64
	for i := range pb {
		diff += math.Abs(pb[i] - pd[i])
	}
	if diff == 0 {
		t.Fatal("PIHOG failed to encode absolute intensity")
	}
}

func TestPIHOGDistinguishesPosition(t *testing.T) {
	// A small blob in the top-left of a cell vs the bottom-right of
	// the same cell: same histogram, different centroid channels.
	a := img.NewGray(16, 16)
	b := img.NewGray(16, 16)
	a.Set(1, 1, 255)
	b.Set(6, 6, 255)

	p := DefaultPIHOG()
	pa, pb := p.Extract(a), p.Extract(b)
	var diff float64
	for i := range pa {
		diff += math.Abs(pa[i] - pb[i])
	}
	if diff == 0 {
		t.Fatal("PIHOG failed to encode gradient position")
	}
}

func TestPIHOGEmptyCellCentroidNeutral(t *testing.T) {
	// On a flat image, centroids default to the cell center (0.5) and
	// survive normalization without NaN.
	p := DefaultPIHOG()
	g := img.NewGray(16, 16)
	g.Fill(128)
	d := p.Extract(g)
	nonzero := 0
	for _, v := range d {
		if math.IsNaN(v) {
			t.Fatal("NaN in flat-image PIHOG")
		}
		if v != 0 {
			nonzero++
		}
	}
	// Unlike plain HOG, the intensity/position channels keep the
	// descriptor nonzero on flat input.
	if nonzero == 0 {
		t.Fatal("flat-image PIHOG should be nonzero (aux channels)")
	}
}
