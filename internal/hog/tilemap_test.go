package hog

import (
	"testing"

	"advdet/internal/img"
)

func tmFrame(w, h int, fill uint8) *img.Gray {
	g := img.NewGray(w, h)
	g.Fill(fill)
	return g
}

func TestTileMapUpdateLifecycle(t *testing.T) {
	tm := NewTileMap(0)
	if tm.TileSize() != DefaultTileSize {
		t.Fatalf("default tile size = %d, want %d", tm.TileSize(), DefaultTileSize)
	}
	g := tmFrame(200, 130, 100) // 4x3 tiles, ragged right and bottom
	misses, refreshes, total := tm.Update(g)
	if tx, ty := tm.Dims(); tx != 4 || ty != 3 {
		t.Fatalf("dims = %dx%d, want 4x3", tx, ty)
	}
	if misses != 0 || refreshes != 12 || total != 12 {
		t.Fatalf("first update = (%d, %d, %d), want all 12 refreshes", misses, refreshes, total)
	}

	// Unchanged frame: everything clean.
	misses, refreshes, total = tm.Update(g)
	if misses != 0 || refreshes != 0 || total != 12 {
		t.Fatalf("unchanged update = (%d, %d, %d), want all clean", misses, refreshes, total)
	}
	for y := 0; y < 3; y++ {
		for x := 0; x < 4; x++ {
			if tm.Dirty(x, y) {
				t.Fatalf("tile (%d,%d) dirty on an unchanged frame", x, y)
			}
		}
	}

	// One pixel changed: exactly its tile misses.
	g.Pix[70*g.W+70] ^= 0xff // tile (1, 1)
	misses, refreshes, _ = tm.Update(g)
	if misses != 1 || refreshes != 0 {
		t.Fatalf("single-pixel update = (%d, %d), want one miss", misses, refreshes)
	}
	if !tm.Dirty(1, 1) || tm.Dirty(0, 0) || tm.Dirty(2, 1) {
		t.Fatal("dirty mask does not isolate the changed tile")
	}

	// Invalidate: all refreshes again.
	tm.Invalidate()
	misses, refreshes, _ = tm.Update(g)
	if misses != 0 || refreshes != 12 {
		t.Fatalf("post-invalidate update = (%d, %d), want all refreshes", misses, refreshes)
	}
}

// TestTileMapDimensionChangeRefreshes pins the shrink-seam guard: a
// constant-color frame hashes its full tiles identically under any row
// stride, so without the exact-dimension check a 200->196 px shrink
// that keeps the tile count would wrongly report interior tiles clean.
func TestTileMapDimensionChangeRefreshes(t *testing.T) {
	tm := NewTileMap(64)
	tm.Update(tmFrame(200, 130, 77))
	misses, refreshes, total := tm.Update(tmFrame(196, 130, 77)) // still 4x3 tiles
	if tx, ty := tm.Dims(); tx != 4 || ty != 3 {
		t.Fatalf("dims = %dx%d, want 4x3", tx, ty)
	}
	if misses != 0 || refreshes != total {
		t.Fatalf("shrunk update = (%d, %d, %d), want every tile refreshed", misses, refreshes, total)
	}
}

// TestHashTileSensitivity spot-checks the fingerprint: translation,
// single-byte flips in body and tail, and content/padding swaps all
// change the hash.
func TestHashTileSensitivity(t *testing.T) {
	g := tmFrame(100, 100, 0)
	for i := range g.Pix {
		g.Pix[i] = uint8(i*31 + i/100)
	}
	base := hashTile(g.Pix, g.W, 0, 0, 70, 70) // ragged: 8-byte chunks + 6-byte tail
	if hashTile(g.Pix, g.W, 1, 0, 71, 70) == base {
		t.Fatal("horizontal translation not detected")
	}
	if hashTile(g.Pix, g.W, 0, 1, 70, 71) == base {
		t.Fatal("vertical translation not detected")
	}
	g.Pix[10] ^= 1
	if hashTile(g.Pix, g.W, 0, 0, 70, 70) == base {
		t.Fatal("body byte flip not detected")
	}
	g.Pix[10] ^= 1
	g.Pix[69] ^= 1 // last column of row 0: tail bytes
	if hashTile(g.Pix, g.W, 0, 0, 70, 70) == base {
		t.Fatal("tail byte flip not detected")
	}
	g.Pix[69] ^= 1
	if hashTile(g.Pix, g.W, 0, 0, 70, 70) != base {
		t.Fatal("hash not deterministic")
	}
	if hashTile(g.Pix, g.W, 0, 0, 64, 70) == hashTile(g.Pix, g.W, 0, 0, 70, 70) {
		t.Fatal("width change not folded into the hash")
	}
}

func TestAlignedTile(t *testing.T) {
	c := DefaultConfig() // CellSize 8
	if !c.AlignedTile(DefaultTileSize) || !c.AlignedTile(8) {
		t.Fatal("cell-aligned tile rejected")
	}
	if c.AlignedTile(0) || c.AlignedTile(-8) || c.AlignedTile(60) {
		t.Fatal("misaligned tile accepted")
	}
}

// TestDirtyCellMaskHalo checks the one-cell halo: a single dirty tile
// marks its own cells plus one ring, clamped at the grid edge.
func TestDirtyCellMaskHalo(t *testing.T) {
	tm := NewTileMap(64) // 8 cells per tile at CellSize 8
	c := DefaultConfig()
	g := tmFrame(192, 192, 50) // 3x3 tiles, 24x24 cells
	tm.Update(g)
	g.Pix[70*g.W+70] ^= 0xff // dirty tile (1,1) only
	tm.Update(g)
	cw, ch := 24, 24
	dst := make([]bool, cw*ch)
	n := tm.DirtyCellMask(c, cw, ch, dst)
	// Tile (1,1) covers cells [8,16); the halo extends to [7,16].
	want := 0
	for cy := 0; cy < ch; cy++ {
		for cx := 0; cx < cw; cx++ {
			in := cx >= 7 && cx <= 16 && cy >= 7 && cy <= 16
			if dst[cy*cw+cx] != in {
				t.Fatalf("cell (%d,%d) dirty=%v, want %v", cx, cy, dst[cy*cw+cx], in)
			}
			if in {
				want++
			}
		}
	}
	if n != want {
		t.Fatalf("dirty cell count = %d, want %d", n, want)
	}
}

// TestDilateCellsToBlocks checks the block expansion: block (bx,by)
// reads cells [bx, bx+BlockCells), so a dirty cell marks the BlockCells
// x BlockCells square of blocks up and left of it.
func TestDilateCellsToBlocks(t *testing.T) {
	c := DefaultConfig() // BlockCells 2
	cw, ch := 10, 8
	nbx, nby := cw-c.BlockCells+1, ch-c.BlockCells+1
	cells := make([]bool, cw*ch)
	cells[3*cw+4] = true // cell (4,3)
	dst := make([]bool, nbx*nby)
	n := DilateCellsToBlocks(c, cells, cw, nbx, nby, dst)
	if n != 4 {
		t.Fatalf("dirty blocks = %d, want 4", n)
	}
	for by := 0; by < nby; by++ {
		for bx := 0; bx < nbx; bx++ {
			in := bx >= 3 && bx <= 4 && by >= 2 && by <= 3
			if dst[by*nbx+bx] != in {
				t.Fatalf("block (%d,%d) dirty=%v, want %v", bx, by, dst[by*nbx+bx], in)
			}
		}
	}
	// Corner cell clamps to the single block reading it.
	clear(cells)
	cells[0] = true
	if n := DilateCellsToBlocks(c, cells, cw, nbx, nby, dst); n != 1 || !dst[0] {
		t.Fatalf("corner cell dilated to %d blocks", n)
	}
}
