package hog

import (
	"encoding/binary"

	"advdet/internal/img"
)

// TileMap fingerprints one pyramid level for cross-frame reuse: the
// level is split into cell-aligned square tiles (DefaultTileSize
// pixels, a whole number of HOG cells), each tile's source pixels are
// hashed with a cheap 64-bit mixing hash, and Update compares the new
// fingerprints against the previous frame's to decide which tiles —
// and therefore which gradient/histogram cells and normalized blocks —
// actually changed. This is the software analogue of the FPGA
// pipeline's persistent BRAM line buffers: state that survives the
// frame boundary so the datapath only touches what the camera changed.
//
// Equality is judged by 64-bit hash, so a colliding pair of distinct
// tiles would be (wrongly) treated as unchanged; at 2^-64 per tile
// pair the callers' byte-identical guarantee is probabilistic in
// exactly the way content-addressed stores are. A dimension change
// between Updates discards every fingerprint: two levels of different
// geometry can alias tile hashes (a constant-color tile hashes
// identically under any row stride) while the downstream cell grid
// changes shape, which is the same stale-state class as the scan
// scratch's setLevels shrink seam.
//
// A TileMap serves one frame sequence at a time; it is not safe for
// concurrent Updates.
type TileMap struct {
	tile   int // tile side in pixels (multiple of the cell size)
	w, h   int // level dimensions the fingerprints describe
	tx, ty int // tiles per axis
	hash   []uint64
	dirty  []bool
	valid  bool // false: no comparable fingerprints (fresh or invalidated)
}

// DefaultTileSize is the tile side used by the temporal scan cache:
// 64 px = 8 HOG cells, small enough that a moving vehicle dirties a
// handful of tiles, large enough that hashing stays a trivial fraction
// of the feature stage it elides.
const DefaultTileSize = 64

// NewTileMap returns a tile map with the given tile side, which must
// be a positive multiple of the configured cell size (validated by the
// caller via AlignedTile; DefaultTileSize fits every shipped config).
func NewTileMap(tile int) *TileMap {
	if tile <= 0 {
		tile = DefaultTileSize
	}
	return &TileMap{tile: tile}
}

// TileSize returns the tile side in pixels.
func (t *TileMap) TileSize() int { return t.tile }

// Dims returns the tile-grid dimensions of the last Update.
func (t *TileMap) Dims() (tx, ty int) { return t.tx, t.ty }

// Dirty reports whether tile (x, y) changed in the last Update.
func (t *TileMap) Dirty(x, y int) bool { return t.dirty[y*t.tx+x] }

// Invalidate discards every fingerprint: the next Update reports all
// tiles dirty as refreshes. Callers use this when anything upstream of
// the pixels changes — model swap, reconfiguration, config change.
func (t *TileMap) Invalidate() { t.valid = false }

// Update rehashes g's tiles against the previous frame's fingerprints
// and records which tiles changed. It returns the number of tiles
// whose hash differs from a comparable previous fingerprint (misses),
// the number hashed with no comparable fingerprint (refreshes: first
// frame, explicit Invalidate, or a dimension change), and the total;
// hits are total - misses - refreshes. After Update the dirty mask
// answers Dirty and feeds DirtyCellMask.
func (t *TileMap) Update(g *img.Gray) (misses, refreshes, total int) {
	tx := (g.W + t.tile - 1) / t.tile
	ty := (g.H + t.tile - 1) / t.tile
	if g.W != t.w || g.H != t.h {
		// Dimension change: every fingerprint describes a different
		// pixel layout; comparing hashes across strides is unsound.
		t.valid = false
		t.w, t.h, t.tx, t.ty = g.W, g.H, tx, ty
	}
	n := tx * ty
	if cap(t.hash) < n {
		t.hash = make([]uint64, n) // lint:alloc grows once per level geometry, then reused across frames
	}
	t.hash = t.hash[:n]
	if cap(t.dirty) < n {
		t.dirty = make([]bool, n) // lint:alloc grows once per level geometry, then reused across frames
	}
	t.dirty = t.dirty[:n]

	total = n
	fresh := !t.valid
	for tyi := 0; tyi < ty; tyi++ {
		y0 := tyi * t.tile
		y1 := y0 + t.tile
		if y1 > g.H {
			y1 = g.H
		}
		for txi := 0; txi < tx; txi++ {
			x0 := txi * t.tile
			x1 := x0 + t.tile
			if x1 > g.W {
				x1 = g.W
			}
			h := hashTile(g.Pix, g.W, x0, y0, x1, y1)
			i := tyi*tx + txi
			if fresh {
				t.dirty[i] = true
				refreshes++
			} else if h != t.hash[i] {
				t.dirty[i] = true
				misses++
			} else {
				t.dirty[i] = false
			}
			t.hash[i] = h
		}
	}
	t.valid = true
	return misses, refreshes, total
}

// hashTile mixes the tile's pixel bytes into a 64-bit fingerprint:
// 8-byte little-endian chunks folded with the golden-ratio multiply
// and a shift-xor finalizer per row, bytewise tail. Row offsets are
// mixed in so translated content cannot cancel, and the seed keeps the
// all-zero tile distinct from the empty one.
func hashTile(pix []uint8, stride, x0, y0, x1, y1 int) uint64 {
	const mul = 0x9e3779b97f4a7c15
	h := uint64(0x8a5cd789635d2dff) ^ uint64(x1-x0)<<32 ^ uint64(y1-y0)
	for y := y0; y < y1; y++ {
		row := pix[y*stride+x0 : y*stride+x1]
		h ^= uint64(y) + 1
		for len(row) >= 8 {
			h = (h ^ binary.LittleEndian.Uint64(row)) * mul
			h ^= h >> 29
			row = row[8:]
		}
		if len(row) > 0 {
			var tail uint64
			for i, b := range row {
				tail |= uint64(b) << (8 * i)
			}
			h = (h ^ (tail | 1<<63)) * mul
			h ^= h >> 29
		}
	}
	return h
}

// AlignedTile reports whether the tile side is a positive multiple of
// the config's cell size, the precondition for DirtyCellMask's
// tile-to-cell arithmetic.
func (c Config) AlignedTile(tile int) bool {
	return tile > 0 && tile%c.CellSize == 0
}

// DirtyCellMask expands the last Update's dirty tiles into a per-cell
// dirty mask over the cw x ch cell grid, with a one-cell halo around
// every dirty tile. The halo over-covers the gradient stage's one-pixel
// replicate-padded stencil, so every cell whose histogram could read a
// changed pixel is marked; unmarked cells are pure functions of
// hash-unchanged pixels. dst must hold cw*ch entries and is fully
// overwritten. It returns the number of dirty cells.
func (t *TileMap) DirtyCellMask(c Config, cw, ch int, dst []bool) int {
	clear(dst)
	tcells := t.tile / c.CellSize
	n := 0
	for tyi := 0; tyi < t.ty; tyi++ {
		for txi := 0; txi < t.tx; txi++ {
			if !t.dirty[tyi*t.tx+txi] {
				continue
			}
			cx0, cy0 := txi*tcells-1, tyi*tcells-1
			cx1, cy1 := (txi+1)*tcells, (tyi+1)*tcells
			if cx0 < 0 {
				cx0 = 0
			}
			if cy0 < 0 {
				cy0 = 0
			}
			if cx1 >= cw {
				cx1 = cw - 1
			}
			if cy1 >= ch {
				cy1 = ch - 1
			}
			for cy := cy0; cy <= cy1; cy++ {
				row := dst[cy*cw : (cy+1)*cw]
				for cx := cx0; cx <= cx1; cx++ {
					if !row[cx] {
						row[cx] = true
						n++
					}
				}
			}
		}
	}
	return n
}

// DilateCellsToBlocks expands a dirty-cell mask into the dirty-block
// mask of the corresponding BlockGrid: block (bx, by) reads cells
// [bx, bx+BlockCells) x [by, by+BlockCells), so every block whose
// window of cells contains a dirty cell is marked. dst must hold
// nbx*nby entries and is fully overwritten; the return is the number
// of dirty blocks.
func DilateCellsToBlocks(c Config, cells []bool, cw int, nbx, nby int, dst []bool) int {
	clear(dst)
	n := 0
	for cy := 0; cy*cw < len(cells); cy++ {
		row := cells[cy*cw : (cy+1)*cw]
		for cx, d := range row {
			if !d {
				continue
			}
			bx0, by0 := cx-c.BlockCells+1, cy-c.BlockCells+1
			if bx0 < 0 {
				bx0 = 0
			}
			if by0 < 0 {
				by0 = 0
			}
			bx1, by1 := cx, cy
			if bx1 >= nbx {
				bx1 = nbx - 1
			}
			if by1 >= nby {
				by1 = nby - 1
			}
			for by := by0; by <= by1; by++ {
				brow := dst[by*nbx : (by+1)*nbx]
				for bx := bx0; bx <= bx1; bx++ {
					if !brow[bx] {
						brow[bx] = true
						n++
					}
				}
			}
		}
	}
	return n
}
