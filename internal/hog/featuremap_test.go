package hog

import (
	"context"
	"errors"
	"testing"

	"advdet/internal/img"
)

// noisy builds a deterministic textured image so histograms are
// non-trivial in every cell.
func noisy(w, h int) *img.Gray {
	g := img.NewGray(w, h)
	s := uint32(2463534242)
	for i := range g.Pix {
		s ^= s << 13
		s ^= s >> 17
		s ^= s << 5
		g.Pix[i] = uint8(s)
	}
	return g
}

func TestFeatureMapWholeImageMatchesExtract(t *testing.T) {
	cfg := DefaultConfig()
	g := noisy(64, 64)
	fm := cfg.NewFeatureMap(g)
	got := fm.Descriptor(0, 0, 64, 64, nil)
	want := cfg.Extract(g)
	if len(got) != len(want) {
		t.Fatalf("descriptor length %d, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("descriptor[%d] = %v, want %v (cache must be bitwise exact)", i, got[i], want[i])
		}
	}
}

func TestFeatureMapParallelBitwiseEqual(t *testing.T) {
	cfg := DefaultConfig()
	g := noisy(160, 96)
	ref, err := cfg.NewFeatureMapCtx(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		fm, err := cfg.NewFeatureMapCtx(context.Background(), g, workers)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.hist {
			if fm.hist[i] != ref.hist[i] {
				t.Fatalf("workers=%d: hist[%d] = %v, want %v", workers, i, fm.hist[i], ref.hist[i])
			}
		}
	}
}

func TestFeatureMapDescriptorWindows(t *testing.T) {
	cfg := DefaultConfig()
	g := noisy(128, 96)
	fm := cfg.NewFeatureMap(g)

	// An interior aligned window must produce a full-length descriptor.
	d := fm.Descriptor(16, 8, 64, 64, nil)
	if len(d) != cfg.DescriptorLen(64, 64) {
		t.Fatalf("descriptor length %d, want %d", len(d), cfg.DescriptorLen(64, 64))
	}

	// Interior cells are border-free, so the cached descriptor of an
	// interior window agrees with direct extraction except at the
	// window's own border cells. Spot-check the central block.
	sub := g.SubImage(img.Rect{X0: 16, Y0: 8, X1: 16 + 64, Y1: 8 + 64})
	direct := cfg.Extract(sub)
	if len(direct) != len(d) {
		t.Fatalf("direct length %d, cache length %d", len(direct), len(d))
	}

	// Unaligned anchors and windows leaving the grid fall back.
	if fm.Descriptor(17, 8, 64, 64, nil) != nil {
		t.Fatal("unaligned window must return nil")
	}
	if fm.Descriptor(96, 48, 64, 64, nil) != nil {
		t.Fatal("out-of-bounds window must return nil")
	}

	// dst reuse: the same backing array comes back.
	buf := make([]float64, cfg.DescriptorLen(64, 64))
	d2 := fm.Descriptor(16, 8, 64, 64, buf)
	if &d2[0] != &buf[0] {
		t.Fatal("descriptor did not reuse the provided buffer")
	}
}

func TestFeatureMapCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := DefaultConfig().NewFeatureMapCtx(ctx, noisy(64, 64), 4)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestFeatureMapTinyImage(t *testing.T) {
	fm := DefaultConfig().NewFeatureMap(noisy(4, 4)) // smaller than one cell
	if fm.Descriptor(0, 0, 4, 4, nil) != nil {
		t.Fatal("sub-cell window must return nil")
	}
}
