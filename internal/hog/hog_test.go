package hog

import (
	"math"
	"testing"
	"testing/quick"

	"advdet/internal/img"
)

func TestDescriptorLenStandardWindow(t *testing.T) {
	c := DefaultConfig()
	// 64x64: 8x8 cells, 7x7 blocks, 36 values per block.
	if got := c.DescriptorLen(64, 64); got != 7*7*36 {
		t.Fatalf("DescriptorLen(64,64) = %d, want %d", got, 7*7*36)
	}
	// 64x128 pedestrian window: 7x15 blocks.
	if got := c.DescriptorLen(64, 128); got != 7*15*36 {
		t.Fatalf("DescriptorLen(64,128) = %d, want %d", got, 7*15*36)
	}
}

func TestBlocksForTooSmallWindow(t *testing.T) {
	c := DefaultConfig()
	bw, bh := c.BlocksFor(8, 8) // single cell: no 2x2 block fits
	if bw != 0 || bh != 0 {
		t.Fatalf("BlocksFor(8,8) = %d,%d, want 0,0", bw, bh)
	}
	if c.DescriptorLen(8, 8) != 0 {
		t.Fatal("descriptor of too-small window should be empty")
	}
}

func TestGradientsFlatImageIsZero(t *testing.T) {
	g := img.NewGray(16, 16)
	g.Fill(100)
	mag, _ := Gradients(g)
	for i, m := range mag {
		if m != 0 {
			t.Fatalf("flat image gradient %v at %d", m, i)
		}
	}
}

func TestGradientsVerticalEdge(t *testing.T) {
	// Left half dark, right half bright: gradient is horizontal (gx),
	// orientation ~0 degrees, strongest at the boundary columns.
	g := img.NewGray(16, 16)
	for y := 0; y < 16; y++ {
		for x := 8; x < 16; x++ {
			g.Set(x, y, 200)
		}
	}
	mag, ang := Gradients(g)
	i := 8*16 + 8 // a boundary pixel
	if mag[i] == 0 {
		t.Fatal("no gradient at vertical edge")
	}
	if ang[i] != 0 {
		t.Fatalf("vertical edge orientation = %v, want 0", ang[i])
	}
}

func TestGradientsHorizontalEdge(t *testing.T) {
	g := img.NewGray(16, 16)
	for y := 8; y < 16; y++ {
		for x := 0; x < 16; x++ {
			g.Set(x, y, 200)
		}
	}
	mag, ang := Gradients(g)
	i := 8*16 + 8
	if mag[i] == 0 {
		t.Fatal("no gradient at horizontal edge")
	}
	if math.Abs(float64(ang[i])-90) > 1e-6 {
		t.Fatalf("horizontal edge orientation = %v, want 90", ang[i])
	}
}

func TestGradientsOrientationRange(t *testing.T) {
	f := func(seed int64) bool {
		rng := newTestRNG(seed)
		g := img.NewGray(12, 12)
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.next() % 256)
		}
		_, ang := Gradients(g)
		for _, a := range ang {
			if a < 0 || a >= 180 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestCellHistogramsEnergyConservation(t *testing.T) {
	// The summed histogram mass must equal the summed gradient
	// magnitude over the covered cells (interpolation redistributes,
	// never creates or destroys votes).
	g := img.NewGray(32, 32)
	rng := newTestRNG(7)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.next() % 256)
	}
	c := DefaultConfig()
	hist := c.CellHistograms(g)
	var histSum float64
	for _, h := range hist {
		histSum += h
	}
	mag, _ := Gradients(g)
	var magSum float64
	for _, m := range mag {
		magSum += float64(m)
	}
	if math.Abs(histSum-magSum)/magSum > 1e-9 {
		t.Fatalf("energy not conserved: hist %v vs mag %v", histSum, magSum)
	}
}

func TestCellHistogramsLocality(t *testing.T) {
	// An edge confined to one cell must only populate that cell.
	g := img.NewGray(32, 32)
	for y := 10; y <= 12; y++ {
		for x := 10; x <= 12; x++ {
			g.Set(x, y, 255)
		}
	}
	c := DefaultConfig()
	hist := c.CellHistograms(g)
	cw, _ := c.CellsFor(32, 32)
	for cy := 0; cy < 4; cy++ {
		for cx := 0; cx < cw; cx++ {
			var sum float64
			base := (cy*cw + cx) * c.Bins
			for b := 0; b < c.Bins; b++ {
				sum += hist[base+b]
			}
			near := cx >= 1 && cx <= 1 && cy >= 1 && cy <= 1
			if !near {
				continue
			}
			if sum == 0 {
				t.Fatalf("cell (%d,%d) containing the blob has empty histogram", cx, cy)
			}
		}
	}
}

func TestExtractDescriptorProperties(t *testing.T) {
	c := DefaultConfig()
	g := img.NewGray(64, 64)
	rng := newTestRNG(11)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.next() % 256)
	}
	d := c.Extract(g)
	if len(d) != c.DescriptorLen(64, 64) {
		t.Fatalf("descriptor length %d", len(d))
	}
	for i, v := range d {
		if v < 0 || v > c.ClipL2Hys+1e-9 {
			// After renormalization values can slightly exceed the
			// clip; they must never exceed 1.
			if v > 1 {
				t.Fatalf("descriptor value %v at %d out of range", v, i)
			}
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("descriptor value %v at %d not finite", v, i)
		}
	}
	// Each 36-value block must have (near-)unit L2 norm, unless the
	// block was entirely flat.
	for b := 0; b+36 <= len(d); b += 36 {
		var ss float64
		for _, v := range d[b : b+36] {
			ss += v * v
		}
		if ss > 1e-6 && math.Abs(math.Sqrt(ss)-1) > 1e-6 {
			t.Fatalf("block at %d has norm %v", b, math.Sqrt(ss))
		}
	}
}

func TestExtractFlatImageIsZeroVector(t *testing.T) {
	c := DefaultConfig()
	g := img.NewGray(32, 32)
	g.Fill(77)
	for i, v := range c.Extract(g) {
		if v != 0 {
			t.Fatalf("flat-image descriptor nonzero at %d: %v", i, v)
		}
	}
}

func TestExtractIlluminationInvariance(t *testing.T) {
	// Scaling intensities by a constant factor must leave the
	// normalized descriptor (nearly) unchanged — the property that
	// motivates block normalization.
	c := DefaultConfig()
	g := img.NewGray(32, 32)
	rng := newTestRNG(13)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.next()%100 + 40)
	}
	dim := g.Clone()
	for i := range dim.Pix {
		dim.Pix[i] = dim.Pix[i] / 2
	}
	a := c.Extract(g)
	b := c.Extract(dim)
	var dot, na, nb float64
	for i := range a {
		dot += a[i] * b[i]
		na += a[i] * a[i]
		nb += b[i] * b[i]
	}
	cos := dot / math.Sqrt(na*nb)
	if cos < 0.95 {
		t.Fatalf("descriptor cosine under dimming = %v, want > 0.95", cos)
	}
}

func TestValidatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid config did not panic")
		}
	}()
	Config{CellSize: 0, BlockCells: 2, BlockStride: 1, Bins: 9}.Extract(img.NewGray(16, 16))
}

// newTestRNG is a tiny deterministic generator so the tests do not
// depend on math/rand ordering.
type testRNG struct{ s uint64 }

func newTestRNG(seed int64) *testRNG { return &testRNG{uint64(seed)*2 + 1} }

func (r *testRNG) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}
