package hog

import (
	"context"
	"fmt"

	"advdet/internal/par"
)

// BlockGrid is the per-level output of the paper's block-normalization
// stage computed exactly once: the L2Hys-normalized vector of every
// cell-aligned BlockCells x BlockCells block of a FeatureMap's cell
// grid, at every cell offset. Where FeatureMap is the software
// analogue of the "HOG Memory" of Fig. 2, BlockGrid is the
// "Normalized HOG Memory" that feeds the SVM stage: the hardware fills
// it once per frame and every overlapping window evaluator only reads
// it, which is why the descriptor path's per-window copy+normalize is
// pure waste — a block shared by ten windows was being renormalized
// ten times.
//
// Blocks are indexed by their top-left cell (cx, cy), so a window
// anchored at cell (cx0, cy0) finds its window-relative block (bx, by)
// at grid position (cx0+bx*BlockStride, cy0+by*BlockStride) for any
// anchor lattice. Each stored vector is bitwise identical to the
// corresponding block of FeatureMap.Descriptor (same copy order, same
// l2hys), so a descriptor assembled from the grid equals the
// descriptor path byte for byte.
//
// A BlockGrid is immutable between ComputeCtx calls and safe for
// concurrent readers.
type BlockGrid struct {
	Cfg      Config
	nbx, nby int // blocks per axis (one per cell offset)
	blockLen int
	norm     []float64 // (cy*nbx+cx)*blockLen holds block (cx, cy)
}

// NewBlockGridCtx computes the normalized block grid of fm with block
// rows fanned out across workers goroutines (workers <= 0 means
// NumCPU). The result is bitwise identical for every worker count; on
// cancellation the partial grid is discarded and the context's error
// returned.
func NewBlockGridCtx(ctx context.Context, fm *FeatureMap, workers int) (*BlockGrid, error) {
	bg := &BlockGrid{}
	if err := bg.ComputeCtx(ctx, fm, workers); err != nil {
		return nil, err
	}
	return bg, nil
}

// ComputeCtx fills bg from fm, reusing bg's buffer when it has
// sufficient capacity. Every block is fully overwritten, so reuse
// never leaks state across frames. On a non-nil error the grid is
// partial and must not be read.
//
// lint:hotpath
func (bg *BlockGrid) ComputeCtx(ctx context.Context, fm *FeatureMap, workers int) error {
	c := fm.Cfg
	bg.Cfg = c
	bg.blockLen = c.BlockCells * c.BlockCells * c.Bins
	bg.nbx, bg.nby = fm.cw-c.BlockCells+1, fm.ch-c.BlockCells+1
	if bg.nbx <= 0 || bg.nby <= 0 {
		bg.nbx, bg.nby = 0, 0
		bg.norm = bg.norm[:0] // grid smaller than one block
		return ctx.Err()
	}
	n := bg.nbx * bg.nby * bg.blockLen
	if cap(bg.norm) < n {
		bg.norm = make([]float64, n)
	} else {
		bg.norm = bg.norm[:n]
	}
	return par.ForEach(ctx, workers, bg.nby, func(cy int) {
		bg.normalizeRow(fm, cy)
	})
}

// normalizeRow copies and L2Hys-normalizes every block of block row
// cy. Each row reads the shared histogram and writes a disjoint slice
// of norm, which is what lets ComputeCtx fan rows across workers.
//
// The sum of squares for the first l2hys pass is accumulated during
// the copy itself, in the same element order (ascending index) as
// l2hys's own loop, so the fused result is bitwise identical to
// copy-then-normalize while touching each element one fewer time —
// this stage runs once per pyramid level per frame and its memory
// traffic is on the scan's critical path.
func (bg *BlockGrid) normalizeRow(fm *FeatureMap, cy int) {
	for cx := 0; cx < bg.nbx; cx++ {
		bg.normalizeBlock(fm, cx, cy)
	}
}

// normalizeBlock copies and L2Hys-normalizes the single block whose
// top-left cell is (cx, cy) — the per-block body of normalizeRow,
// byte for byte: a block's vector is a pure function of its own cells,
// so refreshing one block in place is bitwise identical to the full
// row pass. The temporal scan cache leans on exactly that.
//
// lint:hotpath
func (bg *BlockGrid) normalizeBlock(fm *FeatureMap, cx, cy int) {
	c := bg.Cfg
	blk := bg.norm[(cy*bg.nbx+cx)*bg.blockLen:][:bg.blockLen]
	j := 0
	var ss float64
	for dy := 0; dy < c.BlockCells; dy++ {
		row := ((cy+dy)*fm.cw + cx) * c.Bins
		for dx := 0; dx < c.BlockCells; dx++ {
			src := fm.hist[row+dx*c.Bins : row+(dx+1)*c.Bins]
			for i, x := range src {
				blk[j+i] = x
				ss += x * x
			}
			j += c.Bins
		}
	}
	l2hysSS(blk, c.ClipL2Hys, ss)
}

// ComputeDirtyCtx refreshes only the blocks marked in dirty (an
// nbx*nby row-major mask, as produced by DilateCellsToBlocks), leaving
// every other block's normalized vector untouched from the previous
// ComputeCtx against the same feature map. The caller guarantees that
// unmarked blocks' cells are unchanged since that pass; the refreshed
// grid is then bitwise identical to a full recompute at every worker
// count. It fails, without touching the grid, on any geometry mismatch
// with the cached pass.
//
// lint:hotpath
func (bg *BlockGrid) ComputeDirtyCtx(ctx context.Context, fm *FeatureMap, workers int, dirty []bool) error {
	c := fm.Cfg
	nbx, nby := fm.cw-c.BlockCells+1, fm.ch-c.BlockCells+1
	if c != bg.Cfg || nbx != bg.nbx || nby != bg.nby {
		return fmt.Errorf("hog: dirty refresh of %dx%d block grid from %dx%d cell map", bg.nbx, bg.nby, fm.cw, fm.ch) // lint:alloc cold validation error path; callers invalidate and recompute fully
	}
	if len(dirty) != nbx*nby {
		return fmt.Errorf("hog: dirty mask holds %d blocks, grid has %dx%d", len(dirty), nbx, nby) // lint:alloc cold validation error path
	}
	return par.ForEach(ctx, workers, nby, func(cy int) {
		row := dirty[cy*nbx : (cy+1)*nbx]
		for cx, d := range row {
			if !d {
				continue
			}
			bg.normalizeBlock(fm, cx, cy)
		}
	})
}

// Dims returns the block-grid dimensions (blocks per axis).
func (bg *BlockGrid) Dims() (nbx, nby int) { return bg.nbx, bg.nby }

// BlockLen returns the length of one normalized block vector.
func (bg *BlockGrid) BlockLen() int { return bg.blockLen }

// Block returns the normalized vector of the block whose top-left cell
// is (cx, cy). The slice aliases the grid and must not be mutated.
func (bg *BlockGrid) Block(cx, cy int) []float64 {
	return bg.norm[(cy*bg.nbx+cx)*bg.blockLen:][:bg.blockLen]
}

// Data returns the whole grid as one flat block-major slice, the form
// the SVM block-response stage consumes. It aliases the grid and must
// not be mutated.
func (bg *BlockGrid) Data() []float64 { return bg.norm }
