// Package hog implements Dalal–Triggs histogram-of-oriented-gradients
// feature extraction, structured as the three hardware stages of the
// paper's pipeline (Fig. 2): gradient calculation, cell histogram
// generation, and block normalization. The stages are exposed
// separately so the SoC model can account for the intermediate
// memories ("HOG Memory", "Normalized HOG Memory") between them.
//
// lint:detpath
package hog

import (
	"fmt"
	"math"

	"advdet/internal/img"
)

// Config selects the descriptor geometry.
type Config struct {
	CellSize    int     // pixels per cell side (default 8)
	BlockCells  int     // cells per block side (default 2)
	BlockStride int     // block step in cells (default 1)
	Bins        int     // orientation bins over 0..180° (default 9)
	ClipL2Hys   float64 // clipping threshold for L2-Hys (default 0.2)
}

// DefaultConfig returns the standard 8-pixel-cell, 2x2-cell-block,
// 9-bin configuration used by the paper's day/dusk and pedestrian
// pipelines.
func DefaultConfig() Config {
	return Config{CellSize: 8, BlockCells: 2, BlockStride: 1, Bins: 9, ClipL2Hys: 0.2}
}

// validate panics on nonsensical configurations; Config values are
// build-time constants in this system, so misconfiguration is a
// programming error.
func (c Config) validate() {
	if c.CellSize <= 0 || c.BlockCells <= 0 || c.BlockStride <= 0 || c.Bins <= 0 {
		// lint:invariant Config values are build-time constants (see doc comment)
		panic(fmt.Sprintf("hog: invalid config %+v", c)) // lint:alloc cold panic path; fires only on an invariant violation
	}
}

// CellsFor returns the cell-grid dimensions for a w x h window.
func (c Config) CellsFor(w, h int) (cw, ch int) {
	return w / c.CellSize, h / c.CellSize
}

// BlocksFor returns the block-grid dimensions for a w x h window.
func (c Config) BlocksFor(w, h int) (bw, bh int) {
	cw, ch := c.CellsFor(w, h)
	if cw < c.BlockCells || ch < c.BlockCells {
		return 0, 0
	}
	return (cw-c.BlockCells)/c.BlockStride + 1, (ch-c.BlockCells)/c.BlockStride + 1
}

// DescriptorLen returns the final feature-vector length for a w x h
// window.
func (c Config) DescriptorLen(w, h int) int {
	bw, bh := c.BlocksFor(w, h)
	return bw * bh * c.BlockCells * c.BlockCells * c.Bins
}

// Gradients computes per-pixel gradient magnitude and orientation
// (unsigned, folded to [0, 180)) with centered [-1 0 1] kernels and
// replicate borders, exactly as the RTL gradient unit does.
func Gradients(g *img.Gray) (mag []float32, ang []float32) {
	w, h := g.W, g.H
	mag = make([]float32, w*h)
	ang = make([]float32, w*h)
	for y := 0; y < h; y++ {
		gradientRow(g, y, mag, ang)
	}
	return mag, ang
}

// gradientRow computes one row of the gradient image. Rows only read
// the source image and write disjoint slices of mag/ang, which is what
// lets the feature cache fan them out across workers.
func gradientRow(g *img.Gray, y int, mag, ang []float32) {
	w := g.W
	for x := 0; x < w; x++ {
		gx := float64(g.AtClamped(x+1, y)) - float64(g.AtClamped(x-1, y))
		gy := float64(g.AtClamped(x, y+1)) - float64(g.AtClamped(x, y-1))
		i := y*w + x
		mag[i] = float32(math.Hypot(gx, gy))
		a := math.Atan2(gy, gx) * 180 / math.Pi // [-180, 180]
		if a < 0 {
			a += 180 // fold to unsigned orientation
		}
		if a >= 180 {
			a -= 180
		}
		ang[i] = float32(a)
	}
}

// CellHistograms bins the gradients of a w x h window into per-cell
// orientation histograms with linear interpolation between the two
// neighboring orientation bins (the paper's "histogram generation"
// stage). The result is laid out cell-major: cell (cx, cy) occupies
// bins [ (cy*cw+cx)*Bins , ... ).
func (c Config) CellHistograms(g *img.Gray) []float64 {
	c.validate()
	cw, ch := c.CellsFor(g.W, g.H)
	hist := make([]float64, cw*ch*c.Bins)
	mag, ang := Gradients(g)
	binWidth := 180.0 / float64(c.Bins)
	for cy := 0; cy < ch; cy++ {
		c.cellRowHistograms(g.W, cy, cw, mag, ang, binWidth, hist)
	}
	return hist
}

// cellRowHistograms accumulates the histograms of cell row cy. Each
// cell row reads its own CellSize pixel rows and writes a disjoint
// slice of hist, and pixels are visited in the same y-major order as
// the serial stage, so a row-parallel accumulation is bitwise
// identical to CellHistograms.
func (c Config) cellRowHistograms(imgW, cy, cw int, mag, ang []float32, binWidth float64, hist []float64) {
	for y := cy * c.CellSize; y < (cy+1)*c.CellSize; y++ {
		for x := 0; x < cw*c.CellSize; x++ {
			cx := x / c.CellSize
			i := y*imgW + x
			m := float64(mag[i])
			if m == 0 {
				continue
			}
			a := float64(ang[i]) / binWidth // bin coordinate
			b0 := int(a)
			frac := a - float64(b0)
			b0 %= c.Bins
			b1 := (b0 + 1) % c.Bins
			base := (cy*cw + cx) * c.Bins
			hist[base+b0] += m * (1 - frac)
			hist[base+b1] += m * frac
		}
	}
}

// NormalizeBlocks applies L2-Hys normalization over sliding blocks of
// BlockCells x BlockCells cells and concatenates them into the final
// descriptor (the "block normalization" stage feeding the SVM).
func (c Config) NormalizeBlocks(hist []float64, w, h int) []float64 {
	c.validate()
	cw, _ := c.CellsFor(w, h)
	bw, bh := c.BlocksFor(w, h)
	blockLen := c.BlockCells * c.BlockCells * c.Bins
	out := make([]float64, 0, bw*bh*blockLen)
	block := make([]float64, blockLen)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			k := 0
			for dy := 0; dy < c.BlockCells; dy++ {
				for dx := 0; dx < c.BlockCells; dx++ {
					cell := ((by*c.BlockStride+dy)*cw + bx*c.BlockStride + dx) * c.Bins
					copy(block[k:k+c.Bins], hist[cell:cell+c.Bins])
					k += c.Bins
				}
			}
			l2hys(block, c.ClipL2Hys)
			out = append(out, block...)
		}
	}
	return out
}

// l2hys normalizes v in place: L2 normalize, clip, renormalize.
func l2hys(v []float64, clip float64) {
	var ss float64
	for _, x := range v {
		ss += x * x
	}
	l2hysSS(v, clip, ss)
}

// l2hysSS is l2hys with the first-pass sum of squares precomputed by
// the caller. Callers must accumulate ss over v in ascending index
// order so the float64 additions associate exactly as l2hys's own
// loop would — that is what keeps fused producers (blockgrid's
// copy+accumulate) bitwise identical to copy-then-l2hys.
func l2hysSS(v []float64, clip float64, ss float64) {
	const eps = 1e-10
	inv := 1 / math.Sqrt(ss+eps)
	// The second-pass sum of squares accumulates inside the scale+clip
	// loop: element i's final value is complete before its square is
	// added, and the additions run in the same ascending order as a
	// separate pass, so the fusion is bitwise neutral.
	ss = 0
	for i := range v {
		v[i] *= inv
		if v[i] > clip {
			v[i] = clip
		}
		ss += v[i] * v[i]
	}
	inv = 1 / math.Sqrt(ss+eps)
	for i := range v {
		v[i] *= inv
	}
}

// Extract computes the full HOG descriptor of a window in one call:
// gradients -> cell histograms -> normalized blocks.
func (c Config) Extract(g *img.Gray) []float64 {
	return c.NormalizeBlocks(c.CellHistograms(g), g.W, g.H)
}
