package hog

import (
	"math"
	"sync"
)

// The histogram lookup table: with [-1 0 1] kernels over uint8 pixels,
// a gradient is one of 511x511 integer (dx, dy) pairs, and everything
// the histogram stage derives from it — magnitude, folded orientation,
// the two bin indices and the two interpolated weights — is a pure
// function of that pair. Tabulating the final weights turns the
// per-pixel hypot/atan2/fold/interpolate chain into two indexed adds,
// the same strength reduction the RTL gradient unit performs with its
// ROM-based arctan. The table is built once per process for the
// default 9-bin geometry (the only one the shipped detectors use);
// other bin counts keep the scalar path.
//
// Every entry is computed with exactly the scalar path's expressions,
// including the float32 round-trips of the mag/ang planes, so a LUT
// accumulation is bitwise identical to the scalar one.
const lutBins = 9

// histEntry packs one gradient's weights and bin indices together.
// Gradient pairs index the table essentially at random, so keeping an
// entry on one cache line (24 bytes) instead of spread across three
// parallel arrays cuts the feature stage's miss traffic by more than
// half — the histogram loop is memory-bound on exactly these loads.
type histEntry struct {
	w0, w1 float64 // m * (1 - frac), m * frac
	b0, b1 uint16  // the two bin indices
}

var (
	histLUTOnce sync.Once
	histLUT     []histEntry
)

func histLUTIndex(dx, dy int) int { return (dy+255)*511 + (dx + 255) }

func ensureHistLUT() {
	histLUTOnce.Do(func() {
		histLUT = make([]histEntry, 511*511)
		binWidth := 180.0 / float64(lutBins)
		for dy := -255; dy <= 255; dy++ {
			for dx := -255; dx <= 255; dx++ {
				gx, gy := float64(dx), float64(dy)
				// Mirror gradientRow: mag/ang live as float32 planes.
				m := float64(float32(math.Hypot(gx, gy)))
				a := math.Atan2(gy, gx) * 180 / math.Pi
				if a < 0 {
					a += 180
				}
				if a >= 180 {
					a -= 180
				}
				// Mirror cellRowHistograms' interpolation.
				ab := float64(float32(a)) / binWidth
				b0 := int(ab)
				frac := ab - float64(b0)
				b0 %= lutBins
				b1 := (b0 + 1) % lutBins
				histLUT[histLUTIndex(dx, dy)] = histEntry{
					w0: m * (1 - frac),
					w1: m * frac,
					b0: uint16(b0),
					b1: uint16(b1),
				}
			}
		}
	})
}

// cellRowHistogramsLUT is cellRowHistograms with the gradient stage
// fused in: one pass over the cell row's pixels, each contributing its
// two tabulated weights. Pixels are visited in the same y-major,
// x-ascending order and every increment is the bitwise-identical
// float64, so the result matches the scalar stage exactly. Cell rows
// write disjoint hist slices, preserving the row-parallel determinism
// contract.
func (c Config) cellRowHistogramsLUT(pix []uint8, imgW, imgH, cy, cw int, hist []float64) {
	cs := c.CellSize
	for y := cy * cs; y < (cy+1)*cs; y++ {
		yu, yd := y-1, y+1
		if yu < 0 {
			yu = 0
		}
		if yd >= imgH {
			yd = imgH - 1
		}
		up := pix[yu*imgW : yu*imgW+imgW]
		down := pix[yd*imgW : yd*imgW+imgW]
		row := pix[y*imgW : y*imgW+imgW]
		for cx := 0; cx < cw; cx++ {
			base := (cy*cw + cx) * lutBins
			cell := hist[base : base+lutBins]
			for x := cx * cs; x < (cx+1)*cs; x++ {
				xl, xr := x-1, x+1
				if xl < 0 {
					xl = 0
				}
				if xr >= imgW {
					xr = imgW - 1
				}
				e := &histLUT[histLUTIndex(int(row[xr])-int(row[xl]), int(down[x])-int(up[x]))]
				cell[e.b0] += e.w0
				cell[e.b1] += e.w1
			}
		}
	}
}

// cellHistogramLUT recomputes the single cell (cx, cy) through the
// fused LUT path. Its pixels are visited in the same y-major,
// x-ascending order a cell's contributions arrive in under
// cellRowHistogramsLUT, and every increment is the same tabulated
// float64, so the refreshed cell is bitwise identical to a full
// recompute — the property the temporal scan cache's byte-identity
// contract rests on.
//
// lint:hotpath
func (c Config) cellHistogramLUT(pix []uint8, imgW, imgH, cx, cy int, cell []float64) {
	cs := c.CellSize
	clear(cell)
	for y := cy * cs; y < (cy+1)*cs; y++ {
		yu, yd := y-1, y+1
		if yu < 0 {
			yu = 0
		}
		if yd >= imgH {
			yd = imgH - 1
		}
		up := pix[yu*imgW : yu*imgW+imgW]
		down := pix[yd*imgW : yd*imgW+imgW]
		row := pix[y*imgW : y*imgW+imgW]
		for x := cx * cs; x < (cx+1)*cs; x++ {
			xl, xr := x-1, x+1
			if xl < 0 {
				xl = 0
			}
			if xr >= imgW {
				xr = imgW - 1
			}
			e := &histLUT[histLUTIndex(int(row[xr])-int(row[xl]), int(down[x])-int(up[x]))]
			cell[e.b0] += e.w0
			cell[e.b1] += e.w1
		}
	}
}
