package hog

import (
	"context"
	"testing"
)

// TestBlockGridMatchesDescriptorBlocks asserts the grid's normalized
// vectors are bitwise identical to the corresponding blocks of the
// descriptor path — the invariant the block-response engine's
// exactness rests on.
func TestBlockGridMatchesDescriptorBlocks(t *testing.T) {
	cfg := DefaultConfig()
	g := noisy(96, 80)
	fm := cfg.NewFeatureMap(g)
	bg, err := NewBlockGridCtx(context.Background(), fm, 1)
	if err != nil {
		t.Fatal(err)
	}
	blockLen := cfg.BlockCells * cfg.BlockCells * cfg.Bins
	if bg.BlockLen() != blockLen {
		t.Fatalf("BlockLen = %d, want %d", bg.BlockLen(), blockLen)
	}
	winW, winH := 64, 64
	bw, bh := cfg.BlocksFor(winW, winH)
	cell := cfg.CellSize
	for _, anchor := range [][2]int{{0, 0}, {cell, 0}, {2 * cell, cell}, {32, 16}} {
		x, y := anchor[0], anchor[1]
		desc := fm.Descriptor(x, y, winW, winH, nil)
		if desc == nil {
			t.Fatalf("descriptor at (%d,%d) unexpectedly off-grid", x, y)
		}
		cx0, cy0 := x/cell, y/cell
		p := 0
		for by := 0; by < bh; by++ {
			for bx := 0; bx < bw; bx++ {
				want := desc[p*blockLen : (p+1)*blockLen]
				got := bg.Block(cx0+bx*cfg.BlockStride, cy0+by*cfg.BlockStride)
				for i := range want {
					if got[i] != want[i] {
						t.Fatalf("anchor (%d,%d) block (%d,%d)[%d] = %v, want %v (grid must be bitwise exact)",
							x, y, bx, by, i, got[i], want[i])
					}
				}
				p++
			}
		}
	}
}

func TestBlockGridParallelBitwiseEqual(t *testing.T) {
	cfg := DefaultConfig()
	g := noisy(160, 96)
	fm := cfg.NewFeatureMap(g)
	ref, err := NewBlockGridCtx(context.Background(), fm, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		bg, err := NewBlockGridCtx(context.Background(), fm, workers)
		if err != nil {
			t.Fatal(err)
		}
		rd, gd := ref.Data(), bg.Data()
		if len(rd) != len(gd) {
			t.Fatalf("workers=%d: grid length %d, want %d", workers, len(gd), len(rd))
		}
		for i := range rd {
			if gd[i] != rd[i] {
				t.Fatalf("workers=%d: norm[%d] = %v, want %v", workers, i, gd[i], rd[i])
			}
		}
	}
}

// TestBlockGridReuse recomputes into one grid across differently sized
// levels (large, then small, then large again) and checks each result
// against a fresh grid — the steady-state pyramid reuse pattern.
func TestBlockGridReuse(t *testing.T) {
	cfg := DefaultConfig()
	ctx := context.Background()
	var bg BlockGrid
	for _, size := range [][2]int{{128, 96}, {64, 64}, {128, 96}} {
		g := noisy(size[0], size[1])
		fm := cfg.NewFeatureMap(g)
		if err := bg.ComputeCtx(ctx, fm, 1); err != nil {
			t.Fatal(err)
		}
		fresh, err := NewBlockGridCtx(ctx, fm, 1)
		if err != nil {
			t.Fatal(err)
		}
		rd, gd := fresh.Data(), bg.Data()
		if len(rd) != len(gd) {
			t.Fatalf("%dx%d: reused grid length %d, want %d", size[0], size[1], len(gd), len(rd))
		}
		for i := range rd {
			if gd[i] != rd[i] {
				t.Fatalf("%dx%d: reused norm[%d] = %v, want %v", size[0], size[1], i, gd[i], rd[i])
			}
		}
	}
}

func TestBlockGridSmallerThanBlock(t *testing.T) {
	cfg := DefaultConfig()
	g := noisy(cfg.CellSize, cfg.CellSize) // one cell: no full block fits
	fm := cfg.NewFeatureMap(g)
	bg, err := NewBlockGridCtx(context.Background(), fm, 1)
	if err != nil {
		t.Fatal(err)
	}
	if nbx, nby := bg.Dims(); nbx != 0 || nby != 0 {
		t.Fatalf("Dims = %dx%d, want empty grid", nbx, nby)
	}
	if len(bg.Data()) != 0 {
		t.Fatalf("Data length = %d, want 0", len(bg.Data()))
	}
}
