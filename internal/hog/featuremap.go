package hog

import (
	"context"
	"fmt"

	"advdet/internal/img"
	"advdet/internal/par"
)

// FeatureMap caches the two shared front-end stages of the paper's
// HOG pipeline — gradient computation and cell-histogram generation —
// for a whole image, so every sliding window (and every worker) reads
// one precomputed cell grid instead of recomputing both stages per
// window. This is exactly how the PL datapath works: the "HOG Memory"
// of Fig. 2 is filled once per frame and the downstream window
// evaluators only read it.
//
// Window descriptors assembled from the cache differ from per-crop
// Config.Extract only at window borders: the cache sees the true
// neighboring pixels where a cropped window replicates its own edge.
// That again matches the hardware, which never crops.
//
// A FeatureMap is immutable after construction and safe for
// concurrent use by any number of readers.
type FeatureMap struct {
	Cfg  Config
	W, H int // source image size in pixels

	cw, ch int       // cell-grid dimensions
	hist   []float64 // cell-major histograms, as Config.CellHistograms
}

// Scratch holds the reusable intermediate buffers of feature-map
// construction (the per-pixel gradient planes), so a steady-state scan
// loop can recompute caches every frame without reallocating. The zero
// value is ready: buffers grow on first use and are reused afterwards.
// A Scratch serves one computation at a time; it is not safe for
// concurrent use by multiple computations.
type Scratch struct {
	mag, ang []float32
}

// grads returns the gradient planes sized for n pixels, growing the
// backing arrays only when capacity is insufficient.
func (s *Scratch) grads(n int) (mag, ang []float32) {
	if cap(s.mag) < n {
		s.mag = make([]float32, n)
	}
	if cap(s.ang) < n {
		s.ang = make([]float32, n)
	}
	return s.mag[:n], s.ang[:n]
}

// NewFeatureMap computes the cache serially.
func (c Config) NewFeatureMap(g *img.Gray) *FeatureMap {
	fm, _ := c.NewFeatureMapCtx(context.Background(), g, 1) // lint:ctxroot serial wrapper; background ctx cannot fail
	return fm
}

// NewFeatureMapCtx computes the cache with both stages fanned out
// across workers goroutines (workers <= 0 means NumCPU): gradient
// rows first, then cell-histogram rows. The result is bitwise
// identical for every worker count. On cancellation the partial map
// is discarded and the context's error returned.
func (c Config) NewFeatureMapCtx(ctx context.Context, g *img.Gray, workers int) (*FeatureMap, error) {
	fm := &FeatureMap{}
	if err := fm.ComputeCtx(ctx, c, g, workers, nil); err != nil {
		return nil, err
	}
	return fm, nil
}

// ComputeCtx fills m with the cache for g, reusing m's histogram
// buffer and s's gradient planes when they have sufficient capacity
// (s may be nil for one-shot use). The computed map is bitwise
// identical to NewFeatureMapCtx at every worker count; buffer reuse
// never leaks state because the histogram is zeroed before
// accumulation and the gradient planes are fully overwritten. On a
// non-nil error the map is partial and must not be read.
func (m *FeatureMap) ComputeCtx(ctx context.Context, c Config, g *img.Gray, workers int, s *Scratch) error {
	c.validate()
	cw, ch := c.CellsFor(g.W, g.H)
	m.Cfg, m.W, m.H, m.cw, m.ch = c, g.W, g.H, cw, ch
	if cw == 0 || ch == 0 {
		m.hist = m.hist[:0] // image smaller than one cell: empty grid
		return ctx.Err()
	}
	n := cw * ch * c.Bins
	if cap(m.hist) < n {
		m.hist = make([]float64, n)
	} else {
		m.hist = m.hist[:n]
		clear(m.hist) // cell rows accumulate with +=
	}
	if c.Bins == lutBins {
		// Fused LUT path: gradients and histogram weights come from
		// the per-(dx,dy) table in one pass, bitwise identical to the
		// two-stage scalar path below.
		ensureHistLUT()
		return par.ForEach(ctx, workers, ch, func(cy int) {
			c.cellRowHistogramsLUT(g.Pix, g.W, g.H, cy, cw, m.hist)
		})
	}
	if s == nil {
		s = &Scratch{}
	}
	mag, ang := s.grads(g.W * g.H)
	if err := par.ForEach(ctx, workers, g.H, func(y int) {
		gradientRow(g, y, mag, ang)
	}); err != nil {
		return err
	}
	binWidth := 180.0 / float64(c.Bins)
	return par.ForEach(ctx, workers, ch, func(cy int) {
		c.cellRowHistograms(g.W, cy, cw, mag, ang, binWidth, m.hist)
	})
}

// SupportsDirtyRefresh reports whether ComputeDirtyCtx can refresh
// this configuration's cells selectively: only the fused LUT path has
// the per-cell recompute whose accumulation order is provably
// identical to the full pass. Other bin counts must recompute the
// whole map.
func (c Config) SupportsDirtyRefresh() bool { return c.Bins == lutBins }

// ComputeDirtyCtx refreshes only the cells marked in dirty (a cw*ch
// row-major mask, as produced by TileMap.DirtyCellMask), leaving every
// other cell's histogram untouched from the previous ComputeCtx. The
// caller guarantees that unmarked cells' input pixels — including the
// one-pixel replicate-padded stencil border — are unchanged since that
// pass; the refreshed map is then bitwise identical to a full
// recompute at every worker count. It fails, without touching the map,
// when the config or image geometry differs from the cached pass or
// the config has no LUT path (SupportsDirtyRefresh).
//
// lint:hotpath
func (m *FeatureMap) ComputeDirtyCtx(ctx context.Context, c Config, g *img.Gray, workers int, dirty []bool) error {
	c.validate()
	if c != m.Cfg || g.W != m.W || g.H != m.H {
		return fmt.Errorf("hog: dirty refresh of %dx%d %+v map with %dx%d %+v inputs", m.W, m.H, m.Cfg, g.W, g.H, c) // lint:alloc cold validation error path; callers invalidate and recompute fully
	}
	if c.Bins != lutBins {
		return fmt.Errorf("hog: dirty refresh requires the %d-bin LUT path, config has %d bins", lutBins, c.Bins) // lint:alloc cold validation error path
	}
	if len(dirty) != m.cw*m.ch {
		return fmt.Errorf("hog: dirty mask holds %d cells, grid has %dx%d", len(dirty), m.cw, m.ch) // lint:alloc cold validation error path
	}
	ensureHistLUT()
	return par.ForEach(ctx, workers, m.ch, func(cy int) {
		row := dirty[cy*m.cw : (cy+1)*m.cw]
		for cx, d := range row {
			if !d {
				continue
			}
			c.cellHistogramLUT(g.Pix, g.W, g.H, cx, cy, m.hist[(cy*m.cw+cx)*lutBins:][:lutBins])
		}
	})
}

// Aligned reports whether a window anchored at (x, y) lies on the
// cell grid, i.e. its descriptor can be assembled from the cache.
func (m *FeatureMap) Aligned(x, y int) bool {
	return x%m.Cfg.CellSize == 0 && y%m.Cfg.CellSize == 0
}

// Descriptor assembles the normalized HOG descriptor of the
// winW x winH window anchored at (x, y) from the cached cell
// histograms, reusing dst when it has sufficient capacity. It returns
// nil when the window is unaligned to the cell grid or not fully
// covered by it; the caller then falls back to direct extraction.
func (m *FeatureMap) Descriptor(x, y, winW, winH int, dst []float64) []float64 {
	c := m.Cfg
	if x < 0 || y < 0 || x+winW > m.W || y+winH > m.H || !m.Aligned(x, y) {
		return nil
	}
	bw, bh := c.BlocksFor(winW, winH)
	if bw == 0 || bh == 0 {
		return nil
	}
	cx0, cy0 := x/c.CellSize, y/c.CellSize
	// Cells spanned by the window's block grid; the grid floors away
	// partial border cells, so verify coverage inside the cached grid.
	spanW := (bw-1)*c.BlockStride + c.BlockCells
	spanH := (bh-1)*c.BlockStride + c.BlockCells
	if cx0+spanW > m.cw || cy0+spanH > m.ch {
		return nil
	}
	blockLen := c.BlockCells * c.BlockCells * c.Bins
	n := bw * bh * blockLen
	if cap(dst) < n {
		dst = make([]float64, n)
	}
	dst = dst[:n]
	k := 0
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			blk := dst[k : k+blockLen]
			j := 0
			for dy := 0; dy < c.BlockCells; dy++ {
				row := ((cy0+by*c.BlockStride+dy)*m.cw + cx0 + bx*c.BlockStride) * c.Bins
				for dx := 0; dx < c.BlockCells; dx++ {
					copy(blk[j:j+c.Bins], m.hist[row+dx*c.Bins:row+(dx+1)*c.Bins])
					j += c.Bins
				}
			}
			l2hys(blk, c.ClipL2Hys)
			k += blockLen
		}
	}
	return dst
}
