package hog

import (
	"math"

	"advdet/internal/img"
)

// PIHOG implements the position-and-intensity-included HOG variant of
// Kim et al. (paper reference [8], "a new feature named the position
// and intensity included histogram of oriented gradients (PIHOG)
// which compensates the information loss involved in the construction
// of a histogram with position information"). Each cell's orientation
// histogram is augmented with:
//
//   - the gradient-mass centroid within the cell (2 values), restoring
//     the positional information a plain histogram discards, and
//   - the mean intensity of the cell (1 value), restoring absolute
//     brightness (useful at night where lamps are absolute cues).
//
// The augmented cells then go through the same block L2-Hys
// normalization; the position/intensity channels are normalized to
// [0, 1] ranges before concatenation so one channel cannot dominate.
type PIHOG struct {
	Config
	// PosWeight and IntWeight scale the auxiliary channels relative
	// to the orientation bins (defaults 0.5).
	PosWeight, IntWeight float64
}

// DefaultPIHOG returns the standard geometry with equal auxiliary
// weighting.
func DefaultPIHOG() PIHOG {
	return PIHOG{Config: DefaultConfig(), PosWeight: 0.5, IntWeight: 0.5}
}

// cellAux is the per-cell auxiliary channel count: cx, cy, intensity.
const cellAux = 3

// DescriptorLen returns the PIHOG feature length for a w x h window.
func (p PIHOG) DescriptorLen(w, h int) int {
	bw, bh := p.BlocksFor(w, h)
	perCell := p.Bins + cellAux
	return bw * bh * p.BlockCells * p.BlockCells * perCell
}

// Extract computes the PIHOG descriptor.
func (p PIHOG) Extract(g *img.Gray) []float64 {
	p.validate()
	if p.PosWeight <= 0 {
		p.PosWeight = 0.5
	}
	if p.IntWeight <= 0 {
		p.IntWeight = 0.5
	}
	cw, ch := p.CellsFor(g.W, g.H)
	perCell := p.Bins + cellAux
	cells := make([]float64, cw*ch*perCell)

	mag, ang := Gradients(g)
	binWidth := 180.0 / float64(p.Bins)
	cs := float64(p.CellSize)

	// Accumulators for centroid and intensity per cell.
	massX := make([]float64, cw*ch)
	massY := make([]float64, cw*ch)
	massT := make([]float64, cw*ch)
	intens := make([]float64, cw*ch)

	for y := 0; y < ch*p.CellSize; y++ {
		cy := y / p.CellSize
		for x := 0; x < cw*p.CellSize; x++ {
			cx := x / p.CellSize
			ci := cy*cw + cx
			i := y*g.W + x
			intens[ci] += float64(g.Pix[i])
			m := float64(mag[i])
			if m == 0 {
				continue
			}
			a := float64(ang[i]) / binWidth
			b0 := int(a)
			frac := a - float64(b0)
			b0 %= p.Bins
			b1 := (b0 + 1) % p.Bins
			base := ci * perCell
			cells[base+b0] += m * (1 - frac)
			cells[base+b1] += m * frac
			// Position accumulation relative to the cell origin.
			massX[ci] += m * (float64(x) - float64(cx)*cs)
			massY[ci] += m * (float64(y) - float64(cy)*cs)
			massT[ci] += m
		}
	}

	// Fill auxiliary channels: centroid in [0,1]^2 (0.5 when the cell
	// has no gradient mass) and mean intensity in [0,1].
	area := cs * cs
	for ci := 0; ci < cw*ch; ci++ {
		base := ci*perCell + p.Bins
		px, py := 0.5, 0.5
		if massT[ci] > 0 {
			px = massX[ci] / massT[ci] / cs
			py = massY[ci] / massT[ci] / cs
		}
		cells[base] = p.PosWeight * clamp01(px)
		cells[base+1] = p.PosWeight * clamp01(py)
		cells[base+2] = p.IntWeight * (intens[ci] / area / 255)
	}

	// Block normalization over the augmented cells.
	bw, bh := p.BlocksFor(g.W, g.H)
	blockLen := p.BlockCells * p.BlockCells * perCell
	out := make([]float64, 0, bw*bh*blockLen)
	block := make([]float64, blockLen)
	for by := 0; by < bh; by++ {
		for bx := 0; bx < bw; bx++ {
			k := 0
			for dy := 0; dy < p.BlockCells; dy++ {
				for dx := 0; dx < p.BlockCells; dx++ {
					cell := ((by*p.BlockStride+dy)*cw + bx*p.BlockStride + dx) * perCell
					copy(block[k:k+perCell], cells[cell:cell+perCell])
					k += perCell
				}
			}
			l2hys(block, p.ClipL2Hys)
			out = append(out, block...)
		}
	}
	return out
}

func clamp01(v float64) float64 {
	return math.Max(0, math.Min(1, v))
}
