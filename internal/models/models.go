// Package models bundles the trained model set of the system and its
// on-disk layout, so training (cmd/trainmodels) and deployment
// (cmd/advdet, examples) can exchange models without retraining.
package models

import (
	"fmt"
	"os"
	"path/filepath"

	"advdet/internal/dbn"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
)

// File names inside a model directory.
const (
	DayFile        = "day.svm"
	DuskFile       = "dusk.svm"
	CombinedFile   = "combined.svm"
	PedestrianFile = "pedestrian.svm"
	TaillightFile  = "taillight.dbn"
	PairFile       = "pair.svm"
)

// Bundle is the complete trained model set.
type Bundle struct {
	Day        *svm.Model
	Dusk       *svm.Model
	Combined   *svm.Model
	Pedestrian *svm.Model
	Taillight  *dbn.Network
	Pair       *svm.Model
}

// Validate checks that every model needed by the adaptive system is
// present.
func (b *Bundle) Validate() error {
	missing := func(name string, ok bool) error {
		if ok {
			return nil
		}
		return fmt.Errorf("models: bundle is missing %s", name)
	}
	for _, c := range []struct {
		name string
		ok   bool
	}{
		{"day model", b.Day != nil},
		{"dusk model", b.Dusk != nil},
		{"pedestrian model", b.Pedestrian != nil},
		{"taillight DBN", b.Taillight != nil},
		{"pair SVM", b.Pair != nil},
	} {
		if err := missing(c.name, c.ok); err != nil {
			return err
		}
	}
	return nil
}

// Save writes the bundle to dir (created if necessary). The combined
// model is optional.
func (b *Bundle) Save(dir string) error {
	if err := b.Validate(); err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	save := func(name string, m interface{ Save(string) error }) error {
		return m.Save(filepath.Join(dir, name))
	}
	if err := save(DayFile, b.Day); err != nil {
		return err
	}
	if err := save(DuskFile, b.Dusk); err != nil {
		return err
	}
	if b.Combined != nil {
		if err := save(CombinedFile, b.Combined); err != nil {
			return err
		}
	}
	if err := save(PedestrianFile, b.Pedestrian); err != nil {
		return err
	}
	if err := save(TaillightFile, b.Taillight); err != nil {
		return err
	}
	return save(PairFile, b.Pair)
}

// Load reads a bundle from dir. The combined model is loaded when
// present.
func Load(dir string) (*Bundle, error) {
	b := &Bundle{}
	var err error
	if b.Day, err = svm.Load(filepath.Join(dir, DayFile)); err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	if b.Dusk, err = svm.Load(filepath.Join(dir, DuskFile)); err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	if b.Pedestrian, err = svm.Load(filepath.Join(dir, PedestrianFile)); err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	if b.Taillight, err = dbn.Load(filepath.Join(dir, TaillightFile)); err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	if b.Pair, err = svm.Load(filepath.Join(dir, PairFile)); err != nil {
		return nil, fmt.Errorf("models: %w", err)
	}
	if m, err := svm.Load(filepath.Join(dir, CombinedFile)); err == nil {
		b.Combined = m
	}
	return b, b.Validate()
}

// Detectors assembles the adaptive system's detector set from the
// bundle.
func (b *Bundle) Detectors() (day *pipeline.DayDuskDetector, dusk *pipeline.DayDuskDetector,
	dark *pipeline.DarkDetector, ped *pipeline.PedestrianDetector, err error) {
	if err := b.Validate(); err != nil {
		return nil, nil, nil, nil, err
	}
	day = pipeline.NewDayDuskDetector(b.Day)
	dusk = pipeline.NewDayDuskDetector(b.Dusk)
	dark = pipeline.NewDarkDetector(pipeline.DefaultDarkConfig(), b.Taillight, b.Pair)
	ped = pipeline.NewPedestrianDetector(b.Pedestrian)
	return day, dusk, dark, ped, nil
}
