package models

import (
	"testing"

	"advdet/internal/dbn"
	"advdet/internal/hog"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// smallBundle trains a minimal but complete bundle.
func smallBundle(t *testing.T) *Bundle {
	t.Helper()
	hogCfg := hog.DefaultConfig()
	opts := svm.DefaultOptions()
	day, err := pipeline.TrainVehicleSVM(synth.DayDataset(1, 64, 64, 20, 20), hogCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	dusk, err := pipeline.TrainVehicleSVM(synth.DuskDataset(2, 64, 64, 20, 20, 0), hogCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	ped, err := pipeline.TrainPedestrianSVM(
		synth.PedestrianDataset(3, pipeline.PedWindowW, pipeline.PedWindowH, 20, 20, synth.Day), hogCfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	X, labels := synth.TaillightWindowSet(4, 20)
	cfg := dbn.DefaultConfig()
	cfg.PretrainOpts.Epochs = 2
	cfg.FineTuneIter = 5
	net, err := dbn.Train(X, labels, cfg, synth.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	pair, err := pipeline.TrainPairSVM(6, 100, opts)
	if err != nil {
		t.Fatal(err)
	}
	return &Bundle{Day: day, Dusk: dusk, Pedestrian: ped, Taillight: net, Pair: pair}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := smallBundle(t)
	dir := t.TempDir()
	if err := b.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	// Spot-check: identical predictions on a probe crop.
	probe := synth.DayDataset(9, 64, 64, 1, 0).Pos[0]
	a := pipeline.NewDayDuskDetector(b.Day)
	c := pipeline.NewDayDuskDetector(got.Day)
	if a.MarginCrop(probe) != c.MarginCrop(probe) {
		t.Fatal("day model changed across save/load")
	}
	if got.Combined != nil {
		t.Fatal("combined should be absent when not saved")
	}
}

func TestSaveLoadWithCombined(t *testing.T) {
	b := smallBundle(t)
	b.Combined = b.Day // any model works for the layout test
	dir := t.TempDir()
	if err := b.Save(dir); err != nil {
		t.Fatal(err)
	}
	got, err := Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if got.Combined == nil {
		t.Fatal("combined model lost")
	}
}

func TestValidateMissing(t *testing.T) {
	b := smallBundle(t)
	b.Taillight = nil
	if err := b.Validate(); err == nil {
		t.Fatal("missing DBN passed validation")
	}
	if err := b.Save(t.TempDir()); err == nil {
		t.Fatal("incomplete bundle saved")
	}
}

func TestLoadMissingDir(t *testing.T) {
	if _, err := Load(t.TempDir() + "/nope"); err == nil {
		t.Fatal("missing directory loaded")
	}
}

func TestDetectorsAssembly(t *testing.T) {
	b := smallBundle(t)
	day, dusk, dark, ped, err := b.Detectors()
	if err != nil {
		t.Fatal(err)
	}
	if day == nil || dusk == nil || dark == nil || ped == nil {
		t.Fatal("nil detector in assembly")
	}
	b.Pair = nil
	if _, _, _, _, err := b.Detectors(); err == nil {
		t.Fatal("incomplete bundle assembled")
	}
}
