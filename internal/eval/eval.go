// Package eval provides the detection metrics of the paper's
// evaluation: the confusion counts and the accuracy definition of
// Eq. (1), plus IoU-based box matching for full-frame detection.
//
// lint:detpath
package eval

import (
	"fmt"

	"advdet/internal/img"
)

// Confusion holds classification counts in the paper's terminology.
type Confusion struct {
	TP, TN, FP, FN int
}

// Total returns the number of evaluated samples.
func (c Confusion) Total() int { return c.TP + c.TN + c.FP + c.FN }

// Accuracy is Eq. (1): (TP+TN) / (TP+TN+FP+FN).
func (c Confusion) Accuracy() float64 {
	t := c.Total()
	if t == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(t)
}

// Precision is TP / (TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// Recall is TP / (TP+FN).
func (c Confusion) Recall() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// F1 is the harmonic mean of precision and recall.
func (c Confusion) F1() float64 {
	p, r := c.Precision(), c.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// Add accumulates other into c.
func (c *Confusion) Add(other Confusion) {
	c.TP += other.TP
	c.TN += other.TN
	c.FP += other.FP
	c.FN += other.FN
}

// Record tallies one binary decision given the ground truth.
func (c *Confusion) Record(truth, predicted bool) {
	switch {
	case truth && predicted:
		c.TP++
	case truth && !predicted:
		c.FN++
	case !truth && predicted:
		c.FP++
	default:
		c.TN++
	}
}

func (c Confusion) String() string {
	return fmt.Sprintf("acc=%.2f%% TP=%d TN=%d FP=%d FN=%d",
		100*c.Accuracy(), c.TP, c.TN, c.FP, c.FN)
}

// Classifier is a binary decision over a grayscale crop.
type Classifier func(*img.Gray) bool

// EvaluateCrops runs a classifier over positive and negative crop sets
// and tallies the confusion counts, as the Table I evaluation does.
func EvaluateCrops(classify Classifier, pos, neg []*img.Gray) Confusion {
	var c Confusion
	for _, p := range pos {
		c.Record(true, classify(p))
	}
	for _, n := range neg {
		c.Record(false, classify(n))
	}
	return c
}

// MatchBoxes greedily matches detections to ground-truth boxes at the
// given IoU threshold and returns the resulting counts (matched
// detections are TP, unmatched detections FP, unmatched truths FN).
func MatchBoxes(truth, detected []img.Rect, iouThresh float64) Confusion {
	var c Confusion
	usedDet := make([]bool, len(detected))
	for _, t := range truth {
		best, bestIoU := -1, iouThresh
		for j, d := range detected {
			if usedDet[j] {
				continue
			}
			if iou := t.IoU(d); iou >= bestIoU {
				best, bestIoU = j, iou
			}
		}
		if best >= 0 {
			usedDet[best] = true
			c.TP++
		} else {
			c.FN++
		}
	}
	for _, u := range usedDet {
		if !u {
			c.FP++
		}
	}
	return c
}
