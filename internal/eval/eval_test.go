package eval

import (
	"math"
	"testing"
	"testing/quick"

	"advdet/internal/img"
)

func TestAccuracyMatchesPaperRow(t *testing.T) {
	// Table I day/day row: 195 TP, 21 TN, 4 FP, 5 FN -> 96.00%.
	c := Confusion{TP: 195, TN: 21, FP: 4, FN: 5}
	if got := c.Accuracy(); math.Abs(got-0.96) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.96", got)
	}
	// Dusk/dusk row: 744+751 / (744+751+1+319) = 82.37%.
	c = Confusion{TP: 744, TN: 751, FP: 1, FN: 319}
	if got := 100 * c.Accuracy(); math.Abs(got-82.37) > 0.01 {
		t.Fatalf("accuracy = %v, want 82.37", got)
	}
}

func TestEmptyConfusion(t *testing.T) {
	var c Confusion
	if c.Accuracy() != 0 || c.Precision() != 0 || c.Recall() != 0 || c.F1() != 0 {
		t.Fatal("empty confusion should report zero metrics")
	}
}

func TestPrecisionRecallF1(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, FN: 2, TN: 10}
	if c.Precision() != 0.8 || c.Recall() != 0.8 {
		t.Fatalf("P=%v R=%v", c.Precision(), c.Recall())
	}
	if math.Abs(c.F1()-0.8) > 1e-12 {
		t.Fatalf("F1 = %v", c.F1())
	}
}

func TestRecordAndAdd(t *testing.T) {
	var c Confusion
	c.Record(true, true)
	c.Record(true, false)
	c.Record(false, true)
	c.Record(false, false)
	if c != (Confusion{TP: 1, FN: 1, FP: 1, TN: 1}) {
		t.Fatalf("Record tally wrong: %+v", c)
	}
	var sum Confusion
	sum.Add(c)
	sum.Add(c)
	if sum.Total() != 8 {
		t.Fatalf("Add total = %d", sum.Total())
	}
}

func TestAccuracyBounds(t *testing.T) {
	f := func(tp, tn, fp, fn uint8) bool {
		c := Confusion{TP: int(tp), TN: int(tn), FP: int(fp), FN: int(fn)}
		a := c.Accuracy()
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEvaluateCrops(t *testing.T) {
	bright := img.NewGray(4, 4)
	bright.Fill(200)
	dark := img.NewGray(4, 4)
	classify := func(g *img.Gray) bool { return g.Mean() > 100 }
	c := EvaluateCrops(classify,
		[]*img.Gray{bright, bright, dark}, // 2 TP, 1 FN
		[]*img.Gray{dark, bright})         // 1 TN, 1 FP
	want := Confusion{TP: 2, FN: 1, TN: 1, FP: 1}
	if c != want {
		t.Fatalf("EvaluateCrops = %+v, want %+v", c, want)
	}
}

func TestMatchBoxesExact(t *testing.T) {
	truth := []img.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}, {X0: 50, Y0: 50, X1: 60, Y1: 60}}
	det := []img.Rect{{X0: 1, Y0: 1, X1: 11, Y1: 11}} // overlaps first truth well
	c := MatchBoxes(truth, det, 0.5)
	if c.TP != 1 || c.FN != 1 || c.FP != 0 {
		t.Fatalf("MatchBoxes = %+v", c)
	}
}

func TestMatchBoxesFalsePositive(t *testing.T) {
	truth := []img.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}}
	det := []img.Rect{{X0: 100, Y0: 100, X1: 110, Y1: 110}}
	c := MatchBoxes(truth, det, 0.5)
	if c.TP != 0 || c.FN != 1 || c.FP != 1 {
		t.Fatalf("MatchBoxes = %+v", c)
	}
}

func TestMatchBoxesNoDoubleCounting(t *testing.T) {
	// Two detections on one truth: one TP, one FP.
	truth := []img.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}}
	det := []img.Rect{
		{X0: 0, Y0: 0, X1: 10, Y1: 10},
		{X0: 1, Y0: 1, X1: 11, Y1: 11},
	}
	c := MatchBoxes(truth, det, 0.5)
	if c.TP != 1 || c.FP != 1 || c.FN != 0 {
		t.Fatalf("MatchBoxes = %+v", c)
	}
}

func TestMatchBoxesPrefersBestOverlap(t *testing.T) {
	truth := []img.Rect{{X0: 0, Y0: 0, X1: 10, Y1: 10}}
	det := []img.Rect{
		{X0: 4, Y0: 4, X1: 14, Y1: 14}, // weaker overlap
		{X0: 0, Y0: 0, X1: 10, Y1: 10}, // perfect
	}
	c := MatchBoxes(truth, det, 0.2)
	if c.TP != 1 || c.FP != 1 {
		t.Fatalf("MatchBoxes = %+v", c)
	}
}

func TestConfusionString(t *testing.T) {
	s := Confusion{TP: 1, TN: 1, FP: 1, FN: 1}.String()
	if s == "" {
		t.Fatal("empty String")
	}
}
