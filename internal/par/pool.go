package par

// Pool is a shared scan-lane budget: a counting semaphore that bounds
// how many detection-scan goroutines run at once across every stream
// served by one engine. Each stream still gets byte-identical output
// regardless of how many lanes it is granted (the ForEach determinism
// contract), so the pool only shapes latency, never results — exactly
// like the paper's PL fabric, where a fixed set of pipeline lanes is
// time-shared by whichever frame slots are active.
//
// A nil *Pool means "no shared budget": Acquire grants the full
// request and Release is a no-op, so single-stream callers that never
// build an engine pay nothing.
type Pool struct {
	slots chan struct{}
	size  int
}

// NewPool builds a pool with the given number of lanes; size <= 0
// selects runtime.NumCPU() via Workers.
func NewPool(size int) *Pool {
	size = Workers(size)
	p := &Pool{slots: make(chan struct{}, size), size: size}
	for i := 0; i < size; i++ {
		p.slots <- struct{}{}
	}
	return p
}

// Size reports the total lane count (0 for a nil pool).
func (p *Pool) Size() int {
	if p == nil {
		return 0
	}
	return p.size
}

// Acquire takes between 1 and max lanes and returns how many it got.
// The first lane is acquired blocking — a stream always makes progress
// once admitted, it never spins — and up to max-1 more are topped up
// only if instantly available, so one stream cannot starve the rest by
// waiting for a full-width grant. Callers must Release exactly the
// returned count.
func (p *Pool) Acquire(max int) int {
	if max < 1 {
		max = 1
	}
	if p == nil {
		return max
	}
	<-p.slots
	got := 1
	for got < max {
		select {
		case <-p.slots:
			got++
		default:
			return got
		}
	}
	return got
}

// Release returns n lanes to the pool. Releasing more lanes than were
// acquired is a caller bug and will panic on the channel send once the
// pool overfills; releasing on a nil pool is a no-op.
func (p *Pool) Release(n int) {
	if p == nil || n <= 0 {
		return
	}
	for i := 0; i < n; i++ {
		p.slots <- struct{}{}
	}
}
