// Package par provides the bounded fan-out primitive the parallel
// detection engine is built on: a fixed-size worker pool that spreads
// independent index-addressed work items across goroutines while
// preserving determinism.
//
// Determinism contract: ForEach gives every index its own output slot
// (callers write results[i] inside fn), so the assembled result is
// independent of worker scheduling. Running with one worker and with
// N workers produces byte-identical output as long as fn itself is a
// pure function of its index and of read-only shared state.
//
// This mirrors the paper's PL datapath, where HOG windows are
// evaluated by replicated pipeline lanes whose outputs are recombined
// in raster order regardless of per-lane latency.
//
// lint:detpath
package par

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a parallelism knob: values <= 0 select
// runtime.NumCPU(), anything else is used as given.
func Workers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// ForEach invokes fn(i) for every i in [0, n), fanning the indices
// across at most workers goroutines (workers <= 0 means NumCPU). It
// returns when every index has been processed or the context is
// cancelled; on cancellation the remaining indices are skipped and
// the context's error is returned, so callers must discard partial
// results on a non-nil error.
//
// fn must be safe for concurrent invocation with distinct indices and
// must not retain or mutate state shared across indices except through
// its own index-addressed slot.
func ForEach(ctx context.Context, workers, n int, fn func(i int)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial reference path: no goroutines, same cancellation
		// granularity as the pool (one check per index).
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}

// ForEachLocal is ForEach with per-worker local state: every worker
// calls newLocal exactly once before processing its first index and
// passes the value to each fn invocation it runs. Locals let hot scan
// loops own reusable scratch buffers (one per worker, not one per
// index) without any allocation inside fn.
//
// The determinism contract is unchanged: fn's observable output must
// be a pure function of i and read-only shared state. A local may
// carry scratch whose contents feed the output, but never state that
// communicates between indices — which indices share a worker is
// scheduling-dependent.
func ForEachLocal[L any](ctx context.Context, workers, n int, newLocal func() L, fn func(i int, local L)) error {
	if n <= 0 {
		return ctx.Err()
	}
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers == 1 {
		// Serial reference path: no goroutines, same cancellation
		// granularity as the pool (one check per index).
		local := newLocal()
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return err
			}
			fn(i, local)
		}
		return nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			local := newLocal()
			for ctx.Err() == nil {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i, local)
			}
		}()
	}
	wg.Wait()
	return ctx.Err()
}
