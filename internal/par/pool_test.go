package par

import (
	"sync"
	"testing"
)

func TestPoolAcquireGrantsUpToMax(t *testing.T) {
	p := NewPool(4)
	if p.Size() != 4 {
		t.Fatalf("Size = %d, want 4", p.Size())
	}
	got := p.Acquire(3)
	if got != 3 {
		t.Fatalf("Acquire(3) on idle pool of 4 = %d, want 3", got)
	}
	// Only one lane left: a request for two gets the blocking lane
	// plus nothing from the (now empty) top-up path.
	rest := p.Acquire(2)
	if rest != 1 {
		t.Fatalf("Acquire(2) with 1 lane free = %d, want 1", rest)
	}
	p.Release(got + rest)
	if again := p.Acquire(4); again != 4 {
		t.Fatalf("Acquire(4) after full release = %d, want 4", again)
	}
	p.Release(4)
}

func TestPoolAcquireClampsRequest(t *testing.T) {
	p := NewPool(2)
	if got := p.Acquire(0); got != 1 {
		t.Fatalf("Acquire(0) = %d, want 1 (request clamped to one lane)", got)
	}
	p.Release(1)
	if got := p.Acquire(-5); got != 1 {
		t.Fatalf("Acquire(-5) = %d, want 1", got)
	}
	p.Release(1)
}

func TestPoolNilIsUnbounded(t *testing.T) {
	var p *Pool
	if got := p.Acquire(7); got != 7 {
		t.Fatalf("nil pool Acquire(7) = %d, want 7", got)
	}
	p.Release(7) // must not panic
	if p.Size() != 0 {
		t.Fatalf("nil pool Size = %d, want 0", p.Size())
	}
}

func TestPoolConcurrentAcquireReleaseNeverOversubscribes(t *testing.T) {
	const lanes = 3
	const grabbers = 16
	const rounds = 200
	p := NewPool(lanes)
	var mu sync.Mutex
	out, peak := 0, 0
	var wg sync.WaitGroup
	wg.Add(grabbers)
	for g := 0; g < grabbers; g++ {
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				got := p.Acquire(lanes)
				mu.Lock()
				out += got
				if out > peak {
					peak = out
				}
				if out > lanes {
					mu.Unlock()
					t.Errorf("outstanding lanes %d exceeds pool size %d", out, lanes)
					p.Release(got)
					return
				}
				mu.Unlock()
				mu.Lock()
				out -= got
				mu.Unlock()
				p.Release(got)
			}
		}()
	}
	wg.Wait()
	if peak > lanes {
		t.Fatalf("peak outstanding %d > %d", peak, lanes)
	}
	// Every lane must be back: a full-width acquire succeeds.
	if got := p.Acquire(lanes); got != lanes {
		t.Fatalf("post-soak Acquire(%d) = %d; lanes leaked", lanes, got)
	}
	p.Release(lanes)
}
