package par

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersResolvesAuto(t *testing.T) {
	if Workers(0) != runtime.NumCPU() || Workers(-3) != runtime.NumCPU() {
		t.Fatal("non-positive knob must resolve to NumCPU")
	}
	if Workers(5) != 5 {
		t.Fatal("explicit knob must pass through")
	}
}

func TestForEachVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		counts := make([]int32, n)
		err := ForEach(context.Background(), workers, n, func(i int) {
			atomic.AddInt32(&counts[i], 1)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestForEachDeterministicSlots(t *testing.T) {
	n := 257
	run := func(workers int) []int {
		out := make([]int, n)
		if err := ForEach(context.Background(), workers, n, func(i int) { out[i] = i * i }); err != nil {
			t.Fatal(err)
		}
		return out
	}
	ref := run(1)
	for _, workers := range []int{2, 4, runtime.NumCPU()} {
		got := run(workers)
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: slot %d = %d, want %d", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestForEachPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := int32(0)
	err := ForEach(ctx, 4, 100, func(int) { atomic.AddInt32(&ran, 1) })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if atomic.LoadInt32(&ran) != 0 {
		t.Fatalf("%d items ran under a pre-cancelled context", ran)
	}
}

func TestForEachCancelledMidway(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	err := ForEach(ctx, 2, 10_000, func(i int) {
		if ran.Add(1) == 5 {
			cancel()
		}
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if n := ran.Load(); n >= 10_000 {
		t.Fatalf("cancellation did not stop the sweep (ran %d)", n)
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(context.Background(), 4, 0, func(int) { t.Fatal("fn called") }); err != nil {
		t.Fatal(err)
	}
}

func TestForEachLocalVisitsEveryIndexOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 64} {
		n := 1000
		counts := make([]int32, n)
		var locals atomic.Int32
		err := ForEachLocal(context.Background(), workers, n,
			func() *int32 { locals.Add(1); return new(int32) },
			func(i int, l *int32) {
				*l++
				atomic.AddInt32(&counts[i], 1)
			})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
		if got := int(locals.Load()); got > Workers(workers) || got < 1 {
			t.Fatalf("workers=%d: newLocal called %d times, want 1..%d", workers, got, Workers(workers))
		}
	}
}

// TestForEachLocalSerialSharesOneLocal pins the serial reference path:
// one local, created before the first index.
func TestForEachLocalSerialSharesOneLocal(t *testing.T) {
	var made int
	sum := 0
	err := ForEachLocal(context.Background(), 1, 10,
		func() *int { made++; return new(int) },
		func(i int, l *int) { *l += i; sum = *l })
	if err != nil {
		t.Fatal(err)
	}
	if made != 1 {
		t.Fatalf("serial path created %d locals, want 1", made)
	}
	if sum != 45 {
		t.Fatalf("accumulated %d through the shared local, want 45", sum)
	}
}

func TestForEachLocalPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	err := ForEachLocal(ctx, 4, 100, func() int { return 0 },
		func(i int, _ int) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("fn ran after pre-cancellation (serial path must check first)")
	}
}
