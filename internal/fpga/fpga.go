// Package fpga models the programmable-logic resource accounting of
// the paper: the XC7Z100 device inventory, per-module netlist
// estimates for the static partition and the two reconfigurable
// configurations, the reconfigurable-partition floorplan, and the
// partial-bitstream size model. Table II of the paper is generated
// from these inventories.
package fpga

import (
	"fmt"
	"math"
)

// Resources is a bundle of the four PL resource types.
type Resources struct {
	LUT, FF, BRAM, DSP int
}

// Add returns r + s.
func (r Resources) Add(s Resources) Resources {
	return Resources{r.LUT + s.LUT, r.FF + s.FF, r.BRAM + s.BRAM, r.DSP + s.DSP}
}

// FitsIn reports whether r fits within the budget s for every type.
func (r Resources) FitsIn(s Resources) bool {
	return r.LUT <= s.LUT && r.FF <= s.FF && r.BRAM <= s.BRAM && r.DSP <= s.DSP
}

// Scale returns r scaled by f, rounding up (floorplanning never
// rounds resources away).
func (r Resources) Scale(f float64) Resources {
	up := func(v int) int { return int(math.Ceil(float64(v) * f)) }
	return Resources{up(r.LUT), up(r.FF), up(r.BRAM), up(r.DSP)}
}

// UtilPercent returns the utilization of r against the device, in
// percent, ordered LUT, FF, BRAM, DSP.
func (r Resources) UtilPercent(device Resources) [4]float64 {
	pct := func(a, b int) float64 {
		if b == 0 {
			return 0
		}
		return 100 * float64(a) / float64(b)
	}
	return [4]float64{
		pct(r.LUT, device.LUT),
		pct(r.FF, device.FF),
		pct(r.BRAM, device.BRAM),
		pct(r.DSP, device.DSP),
	}
}

func (r Resources) String() string {
	return fmt.Sprintf("LUT=%d FF=%d BRAM=%d DSP=%d", r.LUT, r.FF, r.BRAM, r.DSP)
}

// XC7Z100 is the Zynq-7000 device of the paper's Mini-ITX board
// (Table II "Available Resources" row).
var XC7Z100 = Resources{LUT: 277400, FF: 554800, BRAM: 755, DSP: 2020}

// Module is one PL block with its post-synthesis resource estimate.
type Module struct {
	Name string
	Use  Resources
}

// Sum totals the resources of a module list.
func Sum(mods []Module) Resources {
	var r Resources
	for _, m := range mods {
		r = r.Add(m.Use)
	}
	return r
}

// StaticModules returns the static-partition inventory (Fig. 6):
// pedestrian detection, the PR controller, the AXI DMA cores, the
// interconnect fabric and video capture. Totals: 21% LUT, 10% FF,
// 12% BRAM, 1% DSP of the XC7Z100.
func StaticModules() []Module {
	return []Module{
		{"pedestrian-detection", Resources{39000, 38000, 64, 12}},
		{"pr-controller", Resources{2100, 2600, 4, 0}},
		{"axi-dma-x5", Resources{9000, 10000, 10, 0}},
		{"axi-interconnect", Resources{5000, 3400, 0, 0}},
		{"video-capture", Resources{3154, 1480, 13, 8}},
	}
}

// DayDuskModules returns the HOG+SVM configuration inventory (Fig. 2).
// Totals: 19% LUT, 9% FF, 11% BRAM, 1% DSP.
func DayDuskModules() []Module {
	return []Module{
		{"hog-gradient", Resources{8000, 7500, 6, 4}},
		{"hog-histogram", Resources{12000, 11000, 18, 0}},
		{"hog-normalizer", Resources{10706, 9432, 12, 8}},
		{"svm-classifier", Resources{14000, 13000, 15, 8}},
		{"model-brams", Resources{8000, 9000, 32, 0}},
	}
}

// DarkModules returns the dark-configuration inventory (Fig. 4).
// Totals: 40% LUT, 23% FF, 19% BRAM, 29% DSP — the larger of the two
// configurations, which therefore sizes the reconfigurable partition.
func DarkModules() []Module {
	return []Module{
		{"color-threshold", Resources{6000, 5604, 8, 0}},
		{"downscaler", Resources{4960, 6000, 6, 12}},
		{"closing-unit", Resources{7000, 8000, 10, 0}},
		{"dbn-engine", Resources{70000, 80000, 80, 500}},
		{"pair-matcher", Resources{15000, 18000, 21, 74}},
		{"frame-buffers", Resources{8000, 10000, 18, 0}},
	}
}

// AnimalModules returns the optional animal-detection configuration
// the paper's introduction motivates: structurally a third HOG+SVM
// instance (wider window, one model BRAM), well inside the partition
// sized for the dark design — demonstrating that adding the feature
// costs no additional fabric.
func AnimalModules() []Module {
	return []Module{
		{"hog-gradient", Resources{8000, 7500, 6, 4}},
		{"hog-histogram", Resources{12000, 11000, 18, 0}},
		{"hog-normalizer", Resources{10706, 9432, 12, 8}},
		{"svm-classifier", Resources{14000, 13000, 15, 8}},
		{"model-bram", Resources{4000, 4500, 16, 0}},
	}
}

// Floorplan is the reconfigurable-partition region: the resources
// enclosed by its rectangle on the fabric. Because the region spans
// whole clock-region-height column slices, the per-type fractions are
// not identical (a rectangle that gives 45% of the LUT columns
// happens to include only 40% of the BRAM/DSP columns on this
// device).
type Floorplan struct {
	Region Resources
}

// DefaultFloorplan returns the paper's partition: 45% LUT, 45% FF,
// 40% BRAM, 40% DSP of the device.
func DefaultFloorplan() Floorplan {
	return Floorplan{Region: Resources{
		LUT:  XC7Z100.LUT * 45 / 100,
		FF:   XC7Z100.FF * 45 / 100,
		BRAM: XC7Z100.BRAM * 40 / 100,
		DSP:  XC7Z100.DSP * 40 / 100,
	}}
}

// Verify checks that every configuration fits the partition and that
// the binding resource keeps at least minHeadroom (the paper
// provisions ~1.2x of the largest configuration's requirement).
func (f Floorplan) Verify(configs [][]Module, minHeadroom float64) error {
	for _, cfg := range configs {
		need := Sum(cfg)
		if !need.FitsIn(f.Region) {
			return fmt.Errorf("fpga: configuration needing %v does not fit region %v", need, f.Region)
		}
	}
	if h := f.Headroom(configs); h < minHeadroom {
		return fmt.Errorf("fpga: headroom %.3f below required %.3f", h, minHeadroom)
	}
	return nil
}

// Headroom returns region/need for the tightest resource across all
// configurations (∞ if there are no configurations).
func (f Floorplan) Headroom(configs [][]Module) float64 {
	h := math.Inf(1)
	for _, cfg := range configs {
		need := Sum(cfg)
		for _, pair := range [][2]int{
			{f.Region.LUT, need.LUT},
			{f.Region.FF, need.FF},
			{f.Region.BRAM, need.BRAM},
			{f.Region.DSP, need.DSP},
		} {
			if pair[1] == 0 {
				continue
			}
			if r := float64(pair[0]) / float64(pair[1]); r < h {
				h = r
			}
		}
	}
	return h
}

// FullBitstreamBytes is the configuration size of the whole XC7Z100
// fabric (~17.8 MB per the 7-series configuration user guide).
const FullBitstreamBytes = 17_800_000

// PartialBitstreamBytes estimates the partial bitstream for the
// floorplanned region: configuration frames scale with the fabric
// area, approximated by the region's LUT fraction. For the paper's
// 45% region this yields the 8 MB partial bit files of §IV-B.
func (f Floorplan) PartialBitstreamBytes() int {
	frac := float64(f.Region.LUT) / float64(XC7Z100.LUT)
	return int(float64(FullBitstreamBytes) * frac)
}

// UtilRow is one row of Table II.
type UtilRow struct {
	Name string
	Util [4]float64 // percent LUT, FF, BRAM, DSP
}

// TableII reproduces the paper's resource-utilization table: the
// static design, the reconfigurable partition, both configurations
// and the total (static + partition).
func TableII() []UtilRow {
	static := Sum(StaticModules())
	fp := DefaultFloorplan()
	rows := []UtilRow{
		{"Static Design", static.UtilPercent(XC7Z100)},
		{"Reconfigurable Partition", fp.Region.UtilPercent(XC7Z100)},
		{"Day and Dusk Design", Sum(DayDuskModules()).UtilPercent(XC7Z100)},
		{"Dark Design", Sum(DarkModules()).UtilPercent(XC7Z100)},
		{"Total Usage", static.Add(fp.Region).UtilPercent(XC7Z100)},
	}
	return rows
}

// PaperTableII is the published Table II, for side-by-side reporting.
var PaperTableII = []UtilRow{
	{"Static Design", [4]float64{21, 10, 12, 1}},
	{"Reconfigurable Partition", [4]float64{45, 45, 40, 40}},
	{"Day and Dusk Design", [4]float64{19, 9, 11, 1}},
	{"Dark Design", [4]float64{40, 23, 19, 29}},
	{"Total Usage", [4]float64{66, 55, 52, 41}},
}
