package fpga

import (
	"math"
	"testing"
	"testing/quick"
)

func TestResourcesAddFits(t *testing.T) {
	a := Resources{1, 2, 3, 4}
	b := Resources{10, 20, 30, 40}
	sum := a.Add(b)
	if sum != (Resources{11, 22, 33, 44}) {
		t.Fatalf("Add = %v", sum)
	}
	if !a.FitsIn(b) {
		t.Fatal("a should fit in b")
	}
	if b.FitsIn(a) {
		t.Fatal("b should not fit in a")
	}
	// Partial violation: one resource over.
	c := Resources{5, 2, 3, 4}
	if c.FitsIn(Resources{4, 9, 9, 9}) {
		t.Fatal("LUT overflow not caught")
	}
}

func TestScaleRoundsUp(t *testing.T) {
	r := Resources{10, 10, 3, 1}.Scale(1.2)
	if r != (Resources{12, 12, 4, 2}) {
		t.Fatalf("Scale = %v", r)
	}
}

func TestFitsInScaleProperty(t *testing.T) {
	f := func(l, ff, b, d uint16) bool {
		r := Resources{int(l), int(ff), int(b), int(d)}
		return r.FitsIn(r.Scale(1.2)) && r.FitsIn(r)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestModuleSumsMatchPaperPercentages(t *testing.T) {
	check := func(name string, mods []Module, want [4]float64) {
		got := Sum(mods).UtilPercent(XC7Z100)
		for i := range got {
			if math.Round(got[i]) != want[i] {
				t.Errorf("%s resource %d: %.2f%% rounds to %v, want %v",
					name, i, got[i], math.Round(got[i]), want[i])
			}
		}
	}
	check("static", StaticModules(), [4]float64{21, 10, 12, 1})
	check("day-dusk", DayDuskModules(), [4]float64{19, 9, 11, 1})
	check("dark", DarkModules(), [4]float64{40, 23, 19, 29})
}

func TestTableIIMatchesPaperRounded(t *testing.T) {
	rows := TableII()
	if len(rows) != len(PaperTableII) {
		t.Fatalf("row count %d", len(rows))
	}
	for i, row := range rows {
		want := PaperTableII[i]
		if row.Name != want.Name {
			t.Fatalf("row %d name %q, want %q", i, row.Name, want.Name)
		}
		for j := range row.Util {
			if math.Round(row.Util[j]) != want.Util[j] {
				t.Errorf("%s util[%d] = %.2f, paper %v", row.Name, j, row.Util[j], want.Util[j])
			}
		}
	}
}

func TestDarkIsLargestConfiguration(t *testing.T) {
	dark := Sum(DarkModules())
	dd := Sum(DayDuskModules())
	if !dd.FitsIn(dark) {
		t.Fatal("day-dusk should fit within the dark design envelope")
	}
}

func TestFloorplanVerify(t *testing.T) {
	fp := DefaultFloorplan()
	configs := [][]Module{DayDuskModules(), DarkModules()}
	if err := fp.Verify(configs, 1.1); err != nil {
		t.Fatalf("paper floorplan rejected: %v", err)
	}
	// Headroom on the binding resource (LUT of the dark design) is
	// ~45/40 = 1.125, matching the paper's "about 1.2x" provisioning.
	h := fp.Headroom(configs)
	if h < 1.1 || h > 1.45 {
		t.Fatalf("headroom %.3f outside the paper's provisioning band", h)
	}
}

func TestFloorplanRejectsOversizedConfig(t *testing.T) {
	fp := DefaultFloorplan()
	huge := []Module{{"monster", XC7Z100}}
	if err := fp.Verify([][]Module{huge}, 1.0); err == nil {
		t.Fatal("oversized configuration accepted")
	}
}

func TestFloorplanHeadroomFailure(t *testing.T) {
	fp := Floorplan{Region: Sum(DarkModules())} // exactly tight
	if err := fp.Verify([][]Module{DarkModules()}, 1.2); err == nil {
		t.Fatal("tight floorplan passed a 1.2x headroom requirement")
	}
}

func TestPartialBitstreamSizeIs8MB(t *testing.T) {
	// §IV-B: "our partial bit files of 8MB".
	got := DefaultFloorplan().PartialBitstreamBytes()
	if got < 7_800_000 || got > 8_300_000 {
		t.Fatalf("partial bitstream %d bytes, want ~8 MB", got)
	}
}

func TestUtilPercentZeroDevice(t *testing.T) {
	u := Resources{1, 1, 1, 1}.UtilPercent(Resources{})
	for _, v := range u {
		if v != 0 {
			t.Fatal("zero device should yield zero utilization")
		}
	}
}

func TestResourcesString(t *testing.T) {
	if Sum(StaticModules()).String() == "" {
		t.Fatal("empty String")
	}
}
