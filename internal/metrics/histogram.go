package metrics

import (
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket histogram over uint64 samples (ps or
// ns). Bounds are upper edges in ascending order; one implicit
// overflow bucket catches everything above the last bound. Observe is
// lock-free and allocation-free; exact count, sum, min and max ride
// along so quantile estimates can be clamped to observed extremes.
//
// The zero value is unusable; it must be initialised with init (done
// by NewRegistry). Histograms are value fields inside Registry so the
// whole arena is one allocation.
type Histogram struct {
	bounds []uint64
	counts []atomic.Uint64 // len(bounds)+1, last is overflow
	count  atomic.Uint64
	sum    atomic.Uint64
	min    atomic.Uint64
	max    atomic.Uint64
}

func (h *Histogram) init(bounds []uint64) {
	h.bounds = bounds
	h.counts = make([]atomic.Uint64, len(bounds)+1)
	h.min.Store(math.MaxUint64)
}

// Observe records one sample.
func (h *Histogram) Observe(v uint64) {
	if h.counts == nil {
		return
	}
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	atomicMin(&h.min, v)
	atomicMax(&h.max, v)
}

func atomicMin(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v >= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

func atomicMax(a *atomic.Uint64, v uint64) {
	for {
		cur := a.Load()
		if v <= cur || a.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Count returns the number of samples observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the running total of all samples.
func (h *Histogram) Sum() uint64 { return h.sum.Load() }

// Min returns the smallest observed sample (0 if none).
func (h *Histogram) Min() uint64 {
	if h.count.Load() == 0 {
		return 0
	}
	return h.min.Load()
}

// Max returns the largest observed sample.
func (h *Histogram) Max() uint64 { return h.max.Load() }

// Mean returns the arithmetic mean of all samples (0 if none).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by linear
// interpolation inside the bucket holding the target rank, clamped to
// the observed min/max so coarse buckets never report values outside
// the sample range. Returns 0 when empty.
func (h *Histogram) Quantile(q float64) uint64 {
	total := h.count.Load()
	if total == 0 || h.counts == nil {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(total)
	cum := 0.0
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if c == 0 {
			continue
		}
		if cum+c >= rank {
			lo, hi := h.bucketEdges(i)
			frac := (rank - cum) / c
			est := float64(lo) + frac*float64(hi-lo)
			return clampU64(est, h.Min(), h.Max())
		}
		cum += c
	}
	return h.Max()
}

// bucketEdges returns the [lo, hi] value range of bucket i, using the
// observed max as the upper edge of the overflow bucket.
func (h *Histogram) bucketEdges(i int) (lo, hi uint64) {
	if i > 0 {
		lo = h.bounds[i-1]
	}
	if i < len(h.bounds) {
		hi = h.bounds[i]
	} else {
		hi = h.Max()
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

func clampU64(v float64, lo, hi uint64) uint64 {
	if v < float64(lo) {
		return lo
	}
	if v > float64(hi) {
		return hi
	}
	return uint64(v)
}

// BucketCount is one exported (upper-bound, cumulative-count) pair.
type BucketCount struct {
	UpperBound uint64 `json:"le"` // math.MaxUint64 for the overflow bucket
	Count      uint64 `json:"count"`
}

// Buckets returns the cumulative bucket counts, Prometheus-style.
// Allocates; intended for export, not the hot path.
func (h *Histogram) Buckets() []BucketCount {
	out := make([]BucketCount, len(h.counts))
	cum := uint64(0)
	for i := range h.counts {
		cum += h.counts[i].Load()
		ub := uint64(math.MaxUint64)
		if i < len(h.bounds) {
			ub = h.bounds[i]
		}
		out[i] = BucketCount{UpperBound: ub, Count: cum}
	}
	return out
}
