package metrics

import (
	"strings"
	"testing"
)

func TestFleetSnapshotAggregatesStreams(t *testing.T) {
	f := NewFleet()
	a, b := NewRegistry(), NewRegistry()
	// Stream a: 3 frames, all hits. Stream b: 4 frames, 2 hits.
	for i := 0; i < 3; i++ {
		a.FrameObserve(100, 50, 10)
	}
	b.FrameObserve(100, 50, 10)
	b.FrameObserve(100, 50, 10)
	b.FrameObserve(100, -5, 10)
	b.FrameObserve(100, -5, 10)
	f.Attach("cam-a", 50, a)
	f.Attach("cam-b", 30, b)

	snap := f.Snapshot()
	if snap.ActiveStreams != 2 {
		t.Fatalf("active streams %d, want 2", snap.ActiveStreams)
	}
	if snap.Frames != 7 || snap.DeadlineHits != 5 || snap.DeadlineMisses != 2 {
		t.Fatalf("aggregate %+v", snap)
	}
	ra, ok := snap.StreamByName("cam-a")
	if !ok || ra.CapacityFPS != 50 {
		t.Fatalf("cam-a row %+v ok=%v (want full 50 fps, all deadlines hit)", ra, ok)
	}
	rb, ok := snap.StreamByName("cam-b")
	if !ok || rb.CapacityFPS != 15 {
		t.Fatalf("cam-b row %+v ok=%v (want 30 fps × 2/4 hits = 15)", rb, ok)
	}
	if want := 65.0; snap.CapacityStreamsFPS != want {
		t.Fatalf("aggregate capacity %g, want %g", snap.CapacityStreamsFPS, want)
	}
}

func TestFleetAttachReplacesAndDetachRemoves(t *testing.T) {
	f := NewFleet()
	a := NewRegistry()
	a.FrameObserve(1, 1, 1)
	f.Attach("cam", 50, NewRegistry())
	f.Attach("cam", 25, a) // re-attach: replaces fps and registry
	snap := f.Snapshot()
	if snap.ActiveStreams != 1 {
		t.Fatalf("re-attach duplicated the stream: %d rows", snap.ActiveStreams)
	}
	if row, _ := snap.StreamByName("cam"); row.FPS != 25 || row.Frames != 1 {
		t.Fatalf("row %+v, want fps 25 frames 1", row)
	}
	f.Detach("cam")
	f.Detach("cam") // absent: no-op
	if snap := f.Snapshot(); snap.ActiveStreams != 0 || len(snap.Streams) != 0 {
		t.Fatalf("detach left %+v", snap)
	}
}

func TestFleetNilRegistryAndNilFleetAreSafe(t *testing.T) {
	var nilFleet *Fleet
	nilFleet.Attach("x", 50, nil)
	nilFleet.Detach("x")
	if snap := nilFleet.Snapshot(); snap.ActiveStreams != 0 {
		t.Fatalf("nil fleet snapshot %+v", snap)
	}
	if err := nilFleet.WriteProm(&strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	f := NewFleet()
	f.Attach("quiet", 50, nil) // metrics-disabled stream
	snap := f.Snapshot()
	row, ok := snap.StreamByName("quiet")
	if !ok || row.Frames != 0 || row.CapacityFPS != 0 {
		t.Fatalf("nil-registry row %+v ok=%v", row, ok)
	}
}

func TestFleetWritePromExportsLabelsAndAggregate(t *testing.T) {
	f := NewFleet()
	r := NewRegistry()
	r.FrameObserve(100, 50, 10)
	f.Attach("cam-0", 50, r)
	var sb strings.Builder
	if err := f.WriteProm(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`advdet_stream_frames_total{stream="cam-0"} 1`,
		`advdet_stream_frame_deadline_hits_total{stream="cam-0"} 1`,
		`advdet_stream_frame_deadline_misses_total{stream="cam-0"} 0`,
		`advdet_stream_capacity_fps{stream="cam-0"} 50`,
		"advdet_fleet_active_streams 1",
		"advdet_fleet_capacity_streams_fps 50",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q", want)
		}
	}
}
