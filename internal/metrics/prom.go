package metrics

import (
	"fmt"
	"io"
	"math"
)

// WriteProm writes the registry in the Prometheus text exposition
// format (metric families prefixed advdet_), so a scrape endpoint or a
// file dump drops straight into existing tooling. Output order is
// deterministic. A nil registry writes nothing.
func (r *Registry) WriteProm(w io.Writer) error {
	if r == nil {
		return nil
	}
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP advdet_stage_invocations_total Stage invocations per frame-datapath stage.\n")
	p("# TYPE advdet_stage_invocations_total counter\n")
	for i := Stage(0); i < NumStages; i++ {
		p("advdet_stage_invocations_total{stage=%q} %d\n", i.String(), r.stages[i].count.Load())
	}
	p("# HELP advdet_stage_sim_picoseconds_total Simulated time spent per stage.\n")
	p("# TYPE advdet_stage_sim_picoseconds_total counter\n")
	for i := Stage(0); i < NumStages; i++ {
		p("advdet_stage_sim_picoseconds_total{stage=%q} %d\n", i.String(), r.stages[i].simPS.Load())
	}
	p("# HELP advdet_stage_wall_nanoseconds_total Wall-clock time spent per stage.\n")
	p("# TYPE advdet_stage_wall_nanoseconds_total counter\n")
	for i := Stage(0); i < NumStages; i++ {
		p("advdet_stage_wall_nanoseconds_total{stage=%q} %d\n", i.String(), r.stages[i].wallNS.Load())
	}

	p("# HELP advdet_frames_total Frames processed.\n")
	p("# TYPE advdet_frames_total counter\n")
	p("advdet_frames_total %d\n", r.frame.frames.Load())
	p("# HELP advdet_frame_deadline_hits_total Frames whose hardware path met the slot deadline.\n")
	p("# TYPE advdet_frame_deadline_hits_total counter\n")
	p("advdet_frame_deadline_hits_total %d\n", r.frame.hits.Load())
	p("# HELP advdet_frame_deadline_misses_total Frames whose hardware path missed the slot deadline.\n")
	p("# TYPE advdet_frame_deadline_misses_total counter\n")
	p("advdet_frame_deadline_misses_total %d\n", r.frame.misses.Load())

	writeHist := func(name, help string, h *Histogram) {
		p("# HELP %s %s\n", name, help)
		p("# TYPE %s histogram\n", name)
		for _, b := range h.Buckets() {
			le := "+Inf"
			if b.UpperBound != math.MaxUint64 {
				le = fmt.Sprintf("%d", b.UpperBound)
			}
			p("%s_bucket{le=%q} %d\n", name, le, b.Count)
		}
		p("%s_sum %d\n", name, h.Sum())
		p("%s_count %d\n", name, h.Count())
	}
	writeHist("advdet_frame_latency_ps", "Hardware frame latency from slot start, simulated ps.", &r.frame.latency)
	writeHist("advdet_frame_headroom_ps", "Slack before the slot deadline on deadline hits, simulated ps.", &r.frame.headrm)
	writeHist("advdet_frame_overrun_ps", "Overshoot past the slot deadline on misses, simulated ps.", &r.frame.overrun)
	writeHist("advdet_frame_wall_ns", "Wall-clock frame cost, ns.", &r.frame.wall)

	p("# HELP advdet_reconfig_faults_total Reconfiguration-fault events by kind.\n")
	p("# TYPE advdet_reconfig_faults_total counter\n")
	for k := FaultKind(0); k < NumFaultKinds; k++ {
		p("advdet_reconfig_faults_total{kind=%q} %d\n", k.String(), r.faults[k].Load())
	}

	p("# HELP advdet_scan_tiles_total Temporal scan-cache tile events by kind.\n")
	p("# TYPE advdet_scan_tiles_total counter\n")
	for k := TileKind(0); k < NumTileKinds; k++ {
		p("advdet_scan_tiles_total{kind=%q} %d\n", k.String(), r.tiles[k].Load())
	}

	p("# HELP advdet_gauge Instantaneous system state.\n")
	p("# TYPE advdet_gauge gauge\n")
	for g := Gauge(0); g < NumGauges; g++ {
		p("advdet_gauge{name=%q} %d\n", g.String(), r.gauges[g].Load())
	}
	return err
}
