package metrics

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"sync"
	"testing"
)

func TestStageNames(t *testing.T) {
	want := []string{"sense", "model-select", "vehicle-scan",
		"pedestrian-scan", "dma-stream", "reconfig", "reconfig-fault",
		"scan-resize", "scan-feature", "scan-blocks", "scan-response",
		"scan-windows", "scan-temporal", "fleet-dispatch"}
	for i, w := range want {
		if got := Stage(i).String(); got != w {
			t.Fatalf("Stage(%d) = %q, want %q", i, got, w)
		}
	}
	if Stage(-1).String() != "unknown" || NumStages.String() != "unknown" {
		t.Fatal("out-of-range stage not reported unknown")
	}
}

func TestStageObserveAccumulates(t *testing.T) {
	r := NewRegistry()
	r.StageObserve(StageDMAStream, 1000, 5)
	r.StageObserve(StageDMAStream, 3000, 7)
	snap := r.Snapshot()
	st, ok := snap.StageByName("dma-stream")
	if !ok {
		t.Fatal("dma-stream stage missing from snapshot")
	}
	if st.Count != 2 || st.SimPSTotal != 4000 || st.WallNSTotal != 12 {
		t.Fatalf("stage snapshot %+v", st)
	}
	if st.SimMeanPS != 2000 {
		t.Fatalf("mean = %v, want 2000", st.SimMeanPS)
	}
}

func TestFrameObserveBudgetAccounting(t *testing.T) {
	r := NewRegistry()
	r.FrameObserve(18_000_000, 2_000_000, 100)  // hit with 2 µs headroom
	r.FrameObserve(25_000_000, -5_000_000, 120) // miss by 5 µs
	r.FrameObserve(18_000_000, 0, 90)           // exactly on the deadline: a hit
	f := r.Snapshot().Frames
	if f.Frames != 3 || f.DeadlineHits != 2 || f.DeadlineMisses != 1 {
		t.Fatalf("frame accounting %+v", f)
	}
	if f.OverrunMaxPS != 5_000_000 {
		t.Fatalf("overrun max = %d, want 5e6", f.OverrunMaxPS)
	}
	if f.HeadroomMinPS != 0 {
		t.Fatalf("headroom min = %d, want 0 (boundary hit)", f.HeadroomMinPS)
	}
	if f.LatencyMaxPS != 25_000_000 {
		t.Fatalf("latency max = %d", f.LatencyMaxPS)
	}
}

func TestGauges(t *testing.T) {
	r := NewRegistry()
	r.SetGauge(GaugeLoadedConfig, 1)
	r.SetGauge(GaugeFrameIndex, 41)
	r.SetGauge(GaugeFrameIndex, 42)
	if v := r.GaugeValue(GaugeFrameIndex); v != 42 {
		t.Fatalf("gauge = %d, want 42", v)
	}
	snap := r.Snapshot()
	found := false
	for _, g := range snap.Gauges {
		if g.Gauge == "loaded_config" && g.Value == 1 {
			found = true
		}
	}
	if !found {
		t.Fatalf("loaded_config gauge missing: %+v", snap.Gauges)
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	h.init(expBuckets(1, 20)) // 1,2,4,...
	for v := uint64(1); v <= 1000; v++ {
		h.Observe(v)
	}
	if h.Count() != 1000 || h.Min() != 1 || h.Max() != 1000 {
		t.Fatalf("count/min/max %d/%d/%d", h.Count(), h.Min(), h.Max())
	}
	p50 := h.Quantile(0.5)
	if p50 < 256 || p50 > 1000 {
		t.Fatalf("p50 = %d, want within coarse-bucket range [256,1000]", p50)
	}
	p99 := h.Quantile(0.99)
	if p99 < p50 || p99 > 1000 {
		t.Fatalf("p99 = %d out of order (p50 %d)", p99, p50)
	}
	if q := h.Quantile(0); q < 1 || q > 2 {
		t.Fatalf("q0 = %d, want ~min", q)
	}
	if q := h.Quantile(1); q != 1000 {
		t.Fatalf("q1 = %d, want max", q)
	}
}

func TestHistogramEmptyAndSingle(t *testing.T) {
	var h Histogram
	h.init(DefaultBucketsPS())
	if h.Quantile(0.5) != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram not all-zero")
	}
	h.Observe(12345678)
	if q := h.Quantile(0.5); q != 12345678 {
		t.Fatalf("single-sample p50 = %d, want exact value via min/max clamp", q)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	var h Histogram
	h.init([]uint64{10, 100})
	h.Observe(1_000_000) // beyond all bounds
	bs := h.Buckets()
	if len(bs) != 3 || bs[2].UpperBound != math.MaxUint64 || bs[2].Count != 1 {
		t.Fatalf("overflow bucket wrong: %+v", bs)
	}
	if q := h.Quantile(0.99); q != 1_000_000 {
		t.Fatalf("overflow quantile = %d, want clamped to max", q)
	}
}

func TestNilRegistryIsSafeNoOp(t *testing.T) {
	var r *Registry
	r.StageObserve(StageSense, 1, 1)
	r.FrameObserve(1, 1, 1)
	r.SetGauge(GaugeLoadedConfig, 1)
	if r.StageCount(StageSense) != 0 || r.GaugeValue(GaugeLoadedConfig) != 0 {
		t.Fatal("nil registry returned non-zero")
	}
	snap := r.Snapshot()
	if snap.Enabled {
		t.Fatal("nil registry snapshot claims enabled")
	}
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil || buf.Len() != 0 {
		t.Fatalf("nil WriteProm wrote %d bytes, err %v", buf.Len(), err)
	}
}

// TestHotPathZeroAlloc is the acceptance gate: every per-frame
// recording operation must be allocation-free, on both the enabled
// registry and the nil (disabled) one.
func TestHotPathZeroAlloc(t *testing.T) {
	r := NewRegistry()
	if n := testing.AllocsPerRun(1000, func() {
		r.StageObserve(StageDMAStream, 123_456, 789)
		r.StageObserve(StageSense, 0, 42)
		r.FrameObserve(18_000_000, 2_000_000, 1000)
		r.FrameObserve(25_000_000, -1_000_000, 1200)
		r.SetGauge(GaugeFrameIndex, 7)
	}); n != 0 {
		t.Fatalf("enabled hot path allocates %v times/op, want 0", n)
	}
	var nilR *Registry
	if n := testing.AllocsPerRun(1000, func() {
		nilR.StageObserve(StageDMAStream, 123_456, 789)
		nilR.FrameObserve(18_000_000, 2_000_000, 1000)
		nilR.SetGauge(GaugeFrameIndex, 7)
	}); n != 0 {
		t.Fatalf("disabled hot path allocates %v times/op, want 0", n)
	}
}

func TestConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				r.StageObserve(StageDMAStream, 100, 1)
				r.FrameObserve(100, 1, 1)
			}
		}()
	}
	wg.Wait()
	if got := r.StageCount(StageDMAStream); got != workers*per {
		t.Fatalf("stage count %d, want %d", got, workers*per)
	}
	if f := r.Snapshot().Frames; f.Frames != workers*per || f.DeadlineHits != workers*per {
		t.Fatalf("frame counters %+v", f)
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.StageObserve(StageReconfig, 20_500_000_000, 0)
	r.FrameObserve(12_000_000, 8_000_000, 900)
	var buf bytes.Buffer
	if err := r.Snapshot().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("snapshot JSON not parseable: %v", err)
	}
	if !back.Enabled || len(back.Stages) != int(NumStages) {
		t.Fatalf("round-tripped snapshot %+v", back)
	}
	st, ok := back.StageByName("reconfig")
	if !ok || st.Count != 1 || st.SimPSTotal != 20_500_000_000 {
		t.Fatalf("reconfig stage lost in JSON: %+v", st)
	}
}

func TestWritePromFormat(t *testing.T) {
	r := NewRegistry()
	r.StageObserve(StageVehicleScan, 5_000_000, 2000)
	r.FrameObserve(12_000_000, 8_000_000, 900)
	r.SetGauge(GaugeReconfigInFlight, 1)
	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`advdet_stage_invocations_total{stage="vehicle-scan"} 1`,
		`advdet_stage_sim_picoseconds_total{stage="vehicle-scan"} 5000000`,
		"advdet_frames_total 1",
		"advdet_frame_deadline_hits_total 1",
		`advdet_frame_latency_ps_bucket{le="+Inf"} 1`,
		"advdet_frame_latency_ps_count 1",
		`advdet_gauge{name="reconfig_in_flight"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic output: two writes must be byte-identical.
	var buf2 bytes.Buffer
	if err := r.WriteProm(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf.String() != buf2.String() {
		t.Fatal("WriteProm output not deterministic")
	}
}

func BenchmarkStageObserve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.StageObserve(StageDMAStream, uint64(i), uint64(i))
	}
}

func BenchmarkFrameObserve(b *testing.B) {
	r := NewRegistry()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.FrameObserve(uint64(i), int64(i%3)-1, uint64(i))
	}
}

// TestSnapshotRowOrderPinned pins the snapshot's row order to the
// declaration order of the stage and fault enums: Snapshot assembles
// rows from index loops over fixed arrays, never from map iteration,
// so two snapshots of the same registry are byte-identical. This is
// the determinism contract detorder freezes for this package.
func TestSnapshotRowOrderPinned(t *testing.T) {
	r := NewRegistry()
	for i := Stage(0); i < NumStages; i++ {
		r.StageObserve(i, 1, 1)
	}
	for k := FaultKind(0); k < NumFaultKinds; k++ {
		r.FaultAdd(k)
	}
	snap := r.Snapshot()
	if len(snap.Stages) != int(NumStages) {
		t.Fatalf("snapshot has %d stage rows, want %d", len(snap.Stages), NumStages)
	}
	for i, row := range snap.Stages {
		if want := Stage(i).String(); row.Stage != want {
			t.Errorf("stage row %d = %q, want %q (enum order)", i, row.Stage, want)
		}
	}
	if len(snap.Faults) != int(NumFaultKinds) {
		t.Fatalf("snapshot has %d fault rows, want %d", len(snap.Faults), NumFaultKinds)
	}
	for i, row := range snap.Faults {
		if want := FaultKind(i).String(); row.Kind != want {
			t.Errorf("fault row %d = %q, want %q (enum order)", i, row.Kind, want)
		}
	}
}
