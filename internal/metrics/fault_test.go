package metrics

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFaultCounters pins the fault-counter API: nil safety, counting,
// and the snapshot/prom exports.
func TestFaultCounters(t *testing.T) {
	var nilReg *Registry
	nilReg.FaultAdd(FaultVerify) // must not panic
	if nilReg.FaultCount(FaultVerify) != 0 {
		t.Fatal("nil registry has a nonzero fault count")
	}

	r := NewRegistry()
	r.FaultAdd(FaultVerify)
	r.FaultAdd(FaultVerify)
	r.FaultAdd(FaultWatchdog)
	r.FaultAdd(FaultKind(-1)) // out of range: ignored
	r.FaultAdd(NumFaultKinds) // out of range: ignored
	if got := r.FaultCount(FaultVerify); got != 2 {
		t.Fatalf("FaultCount(verify) = %d, want 2", got)
	}
	if got := r.FaultCount(FaultWatchdog); got != 1 {
		t.Fatalf("FaultCount(watchdog) = %d, want 1", got)
	}

	snap := r.Snapshot()
	if len(snap.Faults) != int(NumFaultKinds) {
		t.Fatalf("snapshot has %d fault rows, want %d", len(snap.Faults), NumFaultKinds)
	}
	row, ok := snap.FaultByKind("verify")
	if !ok || row.Count != 2 {
		t.Fatalf("FaultByKind(verify) = %+v, %v", row, ok)
	}

	// JSON round trip preserves the fault rows.
	var buf bytes.Buffer
	if err := snap.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if got, _ := back.FaultByKind("watchdog"); got.Count != 1 {
		t.Fatalf("round-tripped watchdog count = %d, want 1", got.Count)
	}

	var prom strings.Builder
	if err := r.WriteProm(&prom); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(prom.String(), `advdet_reconfig_faults_total{kind="verify"} 2`) {
		t.Fatalf("prom output missing fault family:\n%s", prom.String())
	}
}

// TestFaultKindNames pins the exported names (dashboards key on them).
func TestFaultKindNames(t *testing.T) {
	want := []string{
		"verify", "watchdog", "retry", "irq-dropped", "bank-select",
		"stale-vehicle-frame", "degraded-frame",
	}
	if len(want) != int(NumFaultKinds) {
		t.Fatalf("want list has %d entries, NumFaultKinds = %d", len(want), NumFaultKinds)
	}
	for i, w := range want {
		if got := FaultKind(i).String(); got != w {
			t.Fatalf("FaultKind(%d) = %q, want %q", i, got, w)
		}
	}
	if FaultKind(-1).String() != "unknown" || NumFaultKinds.String() != "unknown" {
		t.Fatal("out-of-range fault kinds must stringify as unknown")
	}
}

// TestReconfigFaultStageName pins the new stage's wire name.
func TestReconfigFaultStageName(t *testing.T) {
	if got := StageReconfigFault.String(); got != "reconfig-fault" {
		t.Fatalf("StageReconfigFault = %q, want reconfig-fault", got)
	}
	if got := GaugeMode.String(); got != "mode" {
		t.Fatalf("GaugeMode = %q, want mode", got)
	}
}
