package metrics

import (
	"fmt"
	"io"
	"sync"
)

// Fleet aggregates the per-stream telemetry registries of every stream
// served by one engine under stable stream labels. Each stream keeps
// its own Registry (the per-stream slot-deadline accounting stays
// exact); the fleet view adds the cross-stream rollup the capacity
// question needs: how many streams × frames-per-second is this engine
// actually sustaining?
//
// Attach order is preserved, so snapshots and Prometheus export are
// deterministic. All methods are safe on a nil *Fleet and safe for
// concurrent use.
type Fleet struct {
	mu    sync.Mutex
	names []string
	fps   []int
	regs  []*Registry
}

// NewFleet returns an empty fleet rollup.
func NewFleet() *Fleet { return &Fleet{} }

// Attach registers a stream's registry under its label with the
// stream's configured frame rate. Re-attaching an existing label
// replaces its registry. A nil registry is allowed (a stream with
// metrics disabled contributes zero rows). No-op on a nil fleet.
func (f *Fleet) Attach(stream string, fps int, r *Registry) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, n := range f.names {
		if n == stream {
			f.fps[i] = fps
			f.regs[i] = r
			return
		}
	}
	f.names = append(f.names, stream)
	f.fps = append(f.fps, fps)
	f.regs = append(f.regs, r)
}

// Detach removes a stream from the rollup (closed streams stop
// counting toward active capacity). No-op when absent or on nil.
func (f *Fleet) Detach(stream string) {
	if f == nil {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, n := range f.names {
		if n == stream {
			f.names = append(f.names[:i], f.names[i+1:]...)
			f.fps = append(f.fps[:i], f.fps[i+1:]...)
			f.regs = append(f.regs[:i], f.regs[i+1:]...)
			return
		}
	}
}

// StreamSnapshot is one stream's row in the fleet rollup: its
// slot-deadline record and the capacity it contributes.
type StreamSnapshot struct {
	Stream         string `json:"stream"`
	FPS            int    `json:"fps"`
	Frames         uint64 `json:"frames"`
	DeadlineHits   uint64 `json:"deadline_hits"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	// CapacityFPS is the stream's configured rate discounted by its
	// deadline hit ratio: a stream meeting every slot contributes its
	// full fps, a stream missing half contributes half.
	CapacityFPS float64 `json:"capacity_fps"`
}

// FleetSnapshot is the engine-wide rollup.
type FleetSnapshot struct {
	ActiveStreams  int    `json:"active_streams"`
	Frames         uint64 `json:"frames"`
	DeadlineHits   uint64 `json:"deadline_hits"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	// CapacityStreamsFPS is the aggregate streams×fps capacity: the
	// sum of every stream's deadline-weighted fps. This is the number
	// benchrepro compares against the single-stream rate.
	CapacityStreamsFPS float64          `json:"capacity_streams_fps"`
	Streams            []StreamSnapshot `json:"streams"`
}

// Snapshot exports the rollup. Streams appear in attach order. A nil
// fleet returns a zero snapshot.
func (f *Fleet) Snapshot() FleetSnapshot {
	if f == nil {
		return FleetSnapshot{}
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := FleetSnapshot{
		ActiveStreams: len(f.names),
		Streams:       make([]StreamSnapshot, 0, len(f.names)),
	}
	for i, name := range f.names {
		row := StreamSnapshot{Stream: name, FPS: f.fps[i]}
		if r := f.regs[i]; r != nil {
			row.Frames = r.frame.frames.Load()
			row.DeadlineHits = r.frame.hits.Load()
			row.DeadlineMisses = r.frame.misses.Load()
		}
		if row.Frames > 0 {
			row.CapacityFPS = float64(row.FPS) * float64(row.DeadlineHits) / float64(row.Frames)
		}
		out.Frames += row.Frames
		out.DeadlineHits += row.DeadlineHits
		out.DeadlineMisses += row.DeadlineMisses
		out.CapacityStreamsFPS += row.CapacityFPS
		out.Streams = append(out.Streams, row)
	}
	return out
}

// StreamByName returns the rollup row for the named stream (zero row,
// false if absent).
func (s FleetSnapshot) StreamByName(name string) (StreamSnapshot, bool) {
	for _, st := range s.Streams {
		if st.Stream == name {
			return st, true
		}
	}
	return StreamSnapshot{}, false
}

// WriteProm writes the fleet rollup in the Prometheus text exposition
// format: per-stream slot-deadline counters labelled by stream, plus
// the aggregate capacity gauges. Deterministic order; a nil fleet
// writes nothing.
func (f *Fleet) WriteProm(w io.Writer) error {
	if f == nil {
		return nil
	}
	snap := f.Snapshot()
	var err error
	p := func(format string, args ...interface{}) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	p("# HELP advdet_stream_frames_total Frames processed per stream.\n")
	p("# TYPE advdet_stream_frames_total counter\n")
	for _, st := range snap.Streams {
		p("advdet_stream_frames_total{stream=%q} %d\n", st.Stream, st.Frames)
	}
	p("# HELP advdet_stream_frame_deadline_hits_total Frames that met the slot deadline, per stream.\n")
	p("# TYPE advdet_stream_frame_deadline_hits_total counter\n")
	for _, st := range snap.Streams {
		p("advdet_stream_frame_deadline_hits_total{stream=%q} %d\n", st.Stream, st.DeadlineHits)
	}
	p("# HELP advdet_stream_frame_deadline_misses_total Frames that missed the slot deadline, per stream.\n")
	p("# TYPE advdet_stream_frame_deadline_misses_total counter\n")
	for _, st := range snap.Streams {
		p("advdet_stream_frame_deadline_misses_total{stream=%q} %d\n", st.Stream, st.DeadlineMisses)
	}
	p("# HELP advdet_stream_capacity_fps Deadline-weighted frame rate per stream.\n")
	p("# TYPE advdet_stream_capacity_fps gauge\n")
	for _, st := range snap.Streams {
		p("advdet_stream_capacity_fps{stream=%q} %g\n", st.Stream, st.CapacityFPS)
	}
	p("# HELP advdet_fleet_active_streams Streams currently attached to the engine.\n")
	p("# TYPE advdet_fleet_active_streams gauge\n")
	p("advdet_fleet_active_streams %d\n", snap.ActiveStreams)
	p("# HELP advdet_fleet_capacity_streams_fps Aggregate streams×fps capacity of the engine.\n")
	p("# TYPE advdet_fleet_capacity_streams_fps gauge\n")
	p("advdet_fleet_capacity_streams_fps %g\n", snap.CapacityStreamsFPS)
	return err
}
