package metrics

import (
	"encoding/json"
	"io"
)

// StageSnapshot is the exported state of one stage's series.
type StageSnapshot struct {
	Stage       string  `json:"stage"`
	Count       uint64  `json:"count"`
	SimPSTotal  uint64  `json:"sim_ps_total"`
	WallNSTotal uint64  `json:"wall_ns_total"`
	SimP50PS    uint64  `json:"sim_p50_ps"`
	SimP99PS    uint64  `json:"sim_p99_ps"`
	SimMaxPS    uint64  `json:"sim_max_ps"`
	SimMeanPS   float64 `json:"sim_mean_ps"`
}

// FrameSnapshot is the exported per-frame budget accounting.
type FrameSnapshot struct {
	Frames         uint64 `json:"frames"`
	DeadlineHits   uint64 `json:"deadline_hits"`
	DeadlineMisses uint64 `json:"deadline_misses"`
	LatencyP50PS   uint64 `json:"latency_p50_ps"`
	LatencyP99PS   uint64 `json:"latency_p99_ps"`
	LatencyMaxPS   uint64 `json:"latency_max_ps"`
	HeadroomP50PS  uint64 `json:"headroom_p50_ps"`
	HeadroomMinPS  uint64 `json:"headroom_min_ps"`
	OverrunMaxPS   uint64 `json:"overrun_max_ps"`
	WallP50NS      uint64 `json:"wall_p50_ns"`
	WallP99NS      uint64 `json:"wall_p99_ns"`
}

// GaugeSnapshot is one exported gauge value.
type GaugeSnapshot struct {
	Gauge string `json:"gauge"`
	Value uint64 `json:"value"`
}

// FaultSnapshot is one exported reconfiguration-fault counter.
type FaultSnapshot struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// TileSnapshot is one exported temporal-scan-cache tile counter.
type TileSnapshot struct {
	Kind  string `json:"kind"`
	Count uint64 `json:"count"`
}

// Snapshot is a consistent-enough copy of the registry for export:
// individual cells are read atomically (the registry keeps no global
// lock, matching how hardware event counters are sampled live).
type Snapshot struct {
	Enabled bool            `json:"enabled"`
	Stages  []StageSnapshot `json:"stages"`
	Frames  FrameSnapshot   `json:"frames"`
	Gauges  []GaugeSnapshot `json:"gauges"`
	Faults  []FaultSnapshot `json:"faults"`
	Tiles   []TileSnapshot  `json:"tiles"`
}

// Snapshot exports the registry. On a nil registry it returns a
// zero-valued snapshot with Enabled=false, so disabled systems can
// still expose the API.
func (r *Registry) Snapshot() Snapshot {
	if r == nil {
		return Snapshot{}
	}
	snap := Snapshot{Enabled: true}
	snap.Stages = make([]StageSnapshot, 0, NumStages)
	for i := Stage(0); i < NumStages; i++ {
		st := &r.stages[i]
		snap.Stages = append(snap.Stages, StageSnapshot{
			Stage:       i.String(),
			Count:       st.count.Load(),
			SimPSTotal:  st.simPS.Load(),
			WallNSTotal: st.wallNS.Load(),
			SimP50PS:    st.sim.Quantile(0.50),
			SimP99PS:    st.sim.Quantile(0.99),
			SimMaxPS:    st.sim.Max(),
			SimMeanPS:   st.sim.Mean(),
		})
	}
	f := &r.frame
	snap.Frames = FrameSnapshot{
		Frames:         f.frames.Load(),
		DeadlineHits:   f.hits.Load(),
		DeadlineMisses: f.misses.Load(),
		LatencyP50PS:   f.latency.Quantile(0.50),
		LatencyP99PS:   f.latency.Quantile(0.99),
		LatencyMaxPS:   f.latency.Max(),
		HeadroomP50PS:  f.headrm.Quantile(0.50),
		HeadroomMinPS:  f.headrm.Min(),
		OverrunMaxPS:   f.overrun.Max(),
		WallP50NS:      f.wall.Quantile(0.50),
		WallP99NS:      f.wall.Quantile(0.99),
	}
	snap.Gauges = make([]GaugeSnapshot, 0, NumGauges)
	for g := Gauge(0); g < NumGauges; g++ {
		snap.Gauges = append(snap.Gauges, GaugeSnapshot{Gauge: g.String(), Value: r.gauges[g].Load()})
	}
	snap.Faults = make([]FaultSnapshot, 0, NumFaultKinds)
	for k := FaultKind(0); k < NumFaultKinds; k++ {
		snap.Faults = append(snap.Faults, FaultSnapshot{Kind: k.String(), Count: r.faults[k].Load()})
	}
	snap.Tiles = make([]TileSnapshot, 0, NumTileKinds)
	for k := TileKind(0); k < NumTileKinds; k++ {
		snap.Tiles = append(snap.Tiles, TileSnapshot{Kind: k.String(), Count: r.tiles[k].Load()})
	}
	return snap
}

// FaultByKind returns the snapshot row for the named fault kind (zero
// row, false if absent).
func (s Snapshot) FaultByKind(kind string) (FaultSnapshot, bool) {
	for _, f := range s.Faults {
		if f.Kind == kind {
			return f, true
		}
	}
	return FaultSnapshot{}, false
}

// TileByKind returns the snapshot row for the named tile counter (zero
// row, false if absent).
func (s Snapshot) TileByKind(kind string) (TileSnapshot, bool) {
	for _, t := range s.Tiles {
		if t.Kind == kind {
			return t, true
		}
	}
	return TileSnapshot{}, false
}

// GaugeByName returns the snapshot row for the named gauge (zero row,
// false if absent).
func (s Snapshot) GaugeByName(name string) (GaugeSnapshot, bool) {
	for _, g := range s.Gauges {
		if g.Gauge == name {
			return g, true
		}
	}
	return GaugeSnapshot{}, false
}

// StageByName returns the snapshot row for the named stage (zero row,
// false if absent) — the lookup tests and tools use.
func (s Snapshot) StageByName(name string) (StageSnapshot, bool) {
	for _, st := range s.Stages {
		if st.Stage == name {
			return st, true
		}
	}
	return StageSnapshot{}, false
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
