// Package metrics is the frame-budget telemetry layer over the
// simulation tracer: the software stand-in for the ARM performance
// event counters the paper programs and the Vivado ILA captures it
// triggers (§IV). Where internal/trace records *what happened* as raw
// timestamped events, this package aggregates *how the budget was
// spent*: monotonic counters, gauges and fixed-bucket histograms keyed
// by pipeline stage, in both simulated picoseconds and wall-clock
// nanoseconds, plus per-frame slot-deadline accounting (hit/miss and
// headroom distribution).
//
// The hot path is allocation-free: every series is a fixed-size atomic
// cell sized at construction, so a Registry can sit inside the
// per-frame loop of the adaptive system without perturbing the numbers
// it measures. All methods are safe on a nil *Registry (they become
// no-ops), which is how the disabled configuration costs nothing.
//
// lint:detpath
package metrics

import (
	"sync/atomic"
)

// Stage identifies one instrumented stage of the per-frame datapath,
// mirroring the blocks of the paper's Fig. 6 platform.
type Stage int

const (
	// StageSense is the light-sensor read + condition classification.
	StageSense Stage = iota
	// StageModelSelect is a day<->dusk BRAM model select (AXI-Lite).
	StageModelSelect
	// StageVehicleScan is the software vehicle-detection scan.
	StageVehicleScan
	// StagePedestrianScan is the software pedestrian-detection scan.
	StagePedestrianScan
	// StageDMAStream is one frame DMA + PL pipeline traversal.
	StageDMAStream
	// StageReconfig is one partial reconfiguration of the vehicle block.
	StageReconfig
	// StageReconfigFault is one retry cycle of a failing
	// reconfiguration: the count is the retries scheduled and the
	// simulated total is the backoff time spent waiting to re-arm.
	StageReconfigFault
	// StageScanResize through StageScanWindows attribute one vehicle
	// scan's wall time to the block-response engine's sub-stages
	// (pyramid resize, feature maps, block normalization, partial SVM
	// responses, window scoring) — the software mirror of the Fig. 2
	// datapath stages.
	StageScanResize
	StageScanFeature
	StageScanBlocks
	StageScanResponse
	StageScanWindows
	// StageScanTemporal is the temporal scan cache's per-frame overhead:
	// tile fingerprinting plus dirty-mask propagation (wall time only;
	// zero when no cache is attached).
	StageScanTemporal
	// StageFleetDispatch is one frame's trip through the fleet
	// dispatcher's admission queue and batcher before an executor
	// picked it up (wall time only; the dispatcher is host-side
	// software with no simulated-hardware counterpart).
	StageFleetDispatch
	// NumStages bounds the stage space.
	NumStages
)

var stageNames = [NumStages]string{
	"sense", "model-select", "vehicle-scan", "pedestrian-scan",
	"dma-stream", "reconfig", "reconfig-fault",
	"scan-resize", "scan-feature", "scan-blocks", "scan-response", "scan-windows",
	"scan-temporal",
	"fleet-dispatch",
}

func (s Stage) String() string {
	if s < 0 || s >= NumStages {
		return "unknown"
	}
	return stageNames[s]
}

// Gauge identifies one instantaneous value the system publishes.
type Gauge int

const (
	// GaugeLoadedConfig is the loaded partial configuration
	// (0 day-dusk, 1 dark).
	GaugeLoadedConfig Gauge = iota
	// GaugeReconfigInFlight is 1 while a reconfiguration is running.
	GaugeReconfigInFlight
	// GaugeFrameIndex is the index of the last completed frame.
	GaugeFrameIndex
	// GaugeMode is the resilience mode of the adaptive system
	// (0 nominal, 1 recovering, 2 degraded).
	GaugeMode
	// GaugeLedgerEvents is the total events appended to the attached
	// tamper-evident ledger (0 when no ledger is attached).
	GaugeLedgerEvents
	// GaugeLedgerBatches is the number of Merkle batches the attached
	// ledger has sealed.
	GaugeLedgerBatches
	// GaugeTileHitRate is the temporal scan cache's hit rate over the
	// last vehicle scan, in basis points (0-10000; 0 when no cache ran).
	GaugeTileHitRate
	// NumGauges bounds the gauge space.
	NumGauges
)

var gaugeNames = [NumGauges]string{
	"loaded_config", "reconfig_in_flight", "frame_index", "mode",
	"ledger_events", "ledger_batches", "tile_hit_rate_bp",
}

func (g Gauge) String() string {
	if g < 0 || g >= NumGauges {
		return "unknown"
	}
	return gaugeNames[g]
}

// FaultKind identifies one class of reconfiguration-fault event the
// resilience layer counts.
type FaultKind int

const (
	// FaultVerify: a staged bitstream failed its CRC verify pass.
	FaultVerify FaultKind = iota
	// FaultWatchdog: the PR-done interrupt missed its deadline and the
	// in-flight reconfiguration was abandoned.
	FaultWatchdog
	// FaultRetry: a reconfiguration retry was scheduled.
	FaultRetry
	// FaultIRQDrop: a PL-to-PS interrupt assertion was lost.
	FaultIRQDrop
	// FaultBankSelect: a BRAM model-bank select write failed.
	FaultBankSelect
	// FaultStaleVehicleFrame: a frame served vehicle detections from
	// the last-good resident model while the wanted switch was failing.
	FaultStaleVehicleFrame
	// FaultDegradedFrame: a frame completed while the system was in
	// degraded mode (retry budget exhausted).
	FaultDegradedFrame
	// NumFaultKinds bounds the fault-kind space.
	NumFaultKinds
)

var faultNames = [NumFaultKinds]string{
	"verify", "watchdog", "retry", "irq-dropped", "bank-select",
	"stale-vehicle-frame", "degraded-frame",
}

func (k FaultKind) String() string {
	if k < 0 || k >= NumFaultKinds {
		return "unknown"
	}
	return faultNames[k]
}

// TileKind identifies one class of temporal-scan-cache tile event: a
// fingerprint match that reused cached work, a mismatch that forced a
// refresh, or a tile hashed with nothing to compare against (first
// frame, explicit invalidation, geometry change).
type TileKind int

const (
	// TileHits: tiles whose fingerprint matched and whose cached
	// feature/block/response rows were reused as-is.
	TileHits TileKind = iota
	// TileMisses: tiles whose fingerprint differed from the cached one
	// (frame content changed there).
	TileMisses
	// TileRefresh: tiles fingerprinted with no comparable cached hash.
	TileRefresh
	// NumTileKinds bounds the tile-kind space.
	NumTileKinds
)

var tileNames = [NumTileKinds]string{"tile_hits", "tile_misses", "tile_refresh"}

func (k TileKind) String() string {
	if k < 0 || k >= NumTileKinds {
		return "unknown"
	}
	return tileNames[k]
}

// stageSeries aggregates one stage: an invocation counter, running
// totals in both clocks, and a fixed-bucket histogram over the
// per-invocation simulated duration.
type stageSeries struct {
	count  atomic.Uint64
	simPS  atomic.Uint64
	wallNS atomic.Uint64
	sim    Histogram
}

// frameSeries is the per-frame budget accounting: every frame either
// hits its slot deadline or misses it, and the headroom/overrun
// distributions say by how much.
type frameSeries struct {
	frames  atomic.Uint64
	hits    atomic.Uint64
	misses  atomic.Uint64
	latency Histogram // hardware finish - slot start, ps
	headrm  Histogram // deadline - finish, ps (deadline hits only)
	overrun Histogram // finish - deadline, ps (misses only)
	wall    Histogram // wall-clock frame cost, ns
}

// Registry is the telemetry root: one fixed arena of atomic series,
// ready for concurrent writers. The zero value is NOT ready — use
// NewRegistry, which sizes the histogram buckets.
type Registry struct {
	stages [NumStages]stageSeries
	frame  frameSeries
	gauges [NumGauges]atomic.Uint64
	faults [NumFaultKinds]atomic.Uint64
	tiles  [NumTileKinds]atomic.Uint64
}

// NewRegistry returns a registry with the default exponential buckets:
// 1 µs to ~17 s in doubling steps, covering everything from one
// AXI-Lite write to a multi-second scenario in simulated time, and the
// same span in wall time.
func NewRegistry() *Registry {
	r := &Registry{}
	for i := range r.stages {
		r.stages[i].sim.init(DefaultBucketsPS())
	}
	r.frame.latency.init(DefaultBucketsPS())
	r.frame.headrm.init(DefaultBucketsPS())
	r.frame.overrun.init(DefaultBucketsPS())
	r.frame.wall.init(DefaultBucketsNS())
	return r
}

// DefaultBucketsPS returns the default histogram bounds for simulated
// durations: 1 µs (1e6 ps) doubling through ~17 s.
func DefaultBucketsPS() []uint64 { return expBuckets(1_000_000, 25) }

// DefaultBucketsNS returns the default histogram bounds for wall-clock
// durations: 1 µs (1e3 ns) doubling through ~17 s.
func DefaultBucketsNS() []uint64 { return expBuckets(1_000, 25) }

func expBuckets(lo uint64, n int) []uint64 {
	out := make([]uint64, n)
	v := lo
	for i := range out {
		out[i] = v
		v *= 2
	}
	return out
}

// StageObserve records one invocation of a stage with its simulated
// and wall-clock costs (either may be zero when the stage has no cost
// in that clock). No-op on a nil registry.
//
// lint:hotpath
func (r *Registry) StageObserve(s Stage, simPS, wallNS uint64) {
	if r == nil || s < 0 || s >= NumStages {
		return
	}
	st := &r.stages[s]
	st.count.Add(1)
	st.simPS.Add(simPS)
	st.wallNS.Add(wallNS)
	st.sim.Observe(simPS)
}

// FrameObserve records one completed frame: its hardware latency from
// slot start, its headroom against the slot deadline (negative means
// the deadline was missed) and its wall-clock cost. No-op on a nil
// registry.
//
// lint:hotpath
func (r *Registry) FrameObserve(latencyPS uint64, headroomPS int64, wallNS uint64) {
	if r == nil {
		return
	}
	f := &r.frame
	f.frames.Add(1)
	f.latency.Observe(latencyPS)
	f.wall.Observe(wallNS)
	if headroomPS >= 0 {
		f.hits.Add(1)
		f.headrm.Observe(uint64(headroomPS))
	} else {
		f.misses.Add(1)
		f.overrun.Observe(uint64(-headroomPS))
	}
}

// SetGauge publishes an instantaneous value. No-op on a nil registry.
//
// lint:hotpath
func (r *Registry) SetGauge(g Gauge, v uint64) {
	if r == nil || g < 0 || g >= NumGauges {
		return
	}
	r.gauges[g].Store(v)
}

// GaugeValue reads a gauge (zero on a nil registry).
func (r *Registry) GaugeValue(g Gauge) uint64 {
	if r == nil || g < 0 || g >= NumGauges {
		return 0
	}
	return r.gauges[g].Load()
}

// StageCount reads a stage's invocation counter (zero on nil).
func (r *Registry) StageCount(s Stage) uint64 {
	if r == nil || s < 0 || s >= NumStages {
		return 0
	}
	return r.stages[s].count.Load()
}

// FaultAdd counts one reconfiguration-fault event. No-op on a nil
// registry.
//
// lint:hotpath
func (r *Registry) FaultAdd(k FaultKind) {
	if r == nil || k < 0 || k >= NumFaultKinds {
		return
	}
	r.faults[k].Add(1)
}

// FaultCount reads a fault counter (zero on nil).
func (r *Registry) FaultCount(k FaultKind) uint64 {
	if r == nil || k < 0 || k >= NumFaultKinds {
		return 0
	}
	return r.faults[k].Load()
}

// TileAdd counts n temporal-scan-cache tile events of one kind. No-op
// on a nil registry.
//
// lint:hotpath
func (r *Registry) TileAdd(k TileKind, n uint64) {
	if r == nil || k < 0 || k >= NumTileKinds {
		return
	}
	r.tiles[k].Add(n)
}

// TileCount reads a tile counter (zero on nil).
func (r *Registry) TileCount(k TileKind) uint64 {
	if r == nil || k < 0 || k >= NumTileKinds {
		return 0
	}
	return r.tiles[k].Load()
}
