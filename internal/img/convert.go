package img

// Color conversion follows full-range BT.601, computed in fixed point the
// way the RTL color-space converter does (16-bit intermediate, rounding
// shift), so software and the SoC model agree bit-for-bit.

func clamp8(v int32) uint8 {
	if v < 0 {
		return 0
	}
	if v > 255 {
		return 255
	}
	return uint8(v)
}

// RGBToYCbCr converts an interleaved RGB image to planar full-range
// BT.601 YCbCr.
func RGBToYCbCr(m *RGB) *YCbCr {
	out := NewYCbCr(m.W, m.H)
	n := m.W * m.H
	for i := 0; i < n; i++ {
		r := int32(m.Pix[3*i])
		g := int32(m.Pix[3*i+1])
		b := int32(m.Pix[3*i+2])
		// Coefficients scaled by 2^16 with rounding, as in the
		// image/color standard-library conversion.
		y := (19595*r + 38470*g + 7471*b + 1<<15) >> 16
		cb := (-11056*r - 21712*g + 32768*b + 1<<15>>0) >> 16
		cr := (32768*r - 27440*g - 5328*b + 1<<15) >> 16
		out.Y[i] = clamp8(y)
		out.Cb[i] = clamp8(cb + 128)
		out.Cr[i] = clamp8(cr + 128)
	}
	return out
}

// YCbCrToRGB converts planar full-range BT.601 YCbCr back to
// interleaved RGB.
func YCbCrToRGB(c *YCbCr) *RGB {
	out := NewRGB(c.W, c.H)
	n := c.W * c.H
	for i := 0; i < n; i++ {
		y := int32(c.Y[i]) << 16
		cb := int32(c.Cb[i]) - 128
		cr := int32(c.Cr[i]) - 128
		r := (y + 91881*cr + 1<<15) >> 16
		g := (y - 22554*cb - 46802*cr + 1<<15) >> 16
		b := (y + 116130*cb + 1<<15) >> 16
		out.Pix[3*i] = clamp8(r)
		out.Pix[3*i+1] = clamp8(g)
		out.Pix[3*i+2] = clamp8(b)
	}
	return out
}

// RGBToGray converts to 8-bit luma using the BT.601 weights.
func RGBToGray(m *RGB) *Gray {
	out := NewGray(m.W, m.H)
	n := m.W * m.H
	for i := 0; i < n; i++ {
		r := int32(m.Pix[3*i])
		g := int32(m.Pix[3*i+1])
		b := int32(m.Pix[3*i+2])
		out.Pix[i] = clamp8((19595*r + 38470*g + 7471*b + 1<<15) >> 16)
	}
	return out
}

// GrayToRGB expands a grayscale image to three identical channels.
func GrayToRGB(g *Gray) *RGB {
	out := NewRGB(g.W, g.H)
	for i, p := range g.Pix {
		out.Pix[3*i], out.Pix[3*i+1], out.Pix[3*i+2] = p, p, p
	}
	return out
}
