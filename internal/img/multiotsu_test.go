package img

import "testing"

func TestMultiOtsuTwoClassesMatchesOtsu(t *testing.T) {
	g := NewGray(100, 1)
	for i := 0; i < 50; i++ {
		g.Pix[i] = 30
	}
	for i := 50; i < 100; i++ {
		g.Pix[i] = 220
	}
	th := MultiOtsu(g, 2)
	if len(th) != 1 {
		t.Fatalf("thresholds = %v", th)
	}
	if th[0] != OtsuThreshold(g) {
		t.Fatalf("MultiOtsu(2) = %d, Otsu = %d", th[0], OtsuThreshold(g))
	}
}

func TestMultiOtsuThreeClassesTrimodal(t *testing.T) {
	// Three modes at 20, 120, 230 — the thresholds must land in the
	// two gaps.
	g := NewGray(300, 1)
	for i := 0; i < 100; i++ {
		g.Pix[i] = 20
	}
	for i := 100; i < 200; i++ {
		g.Pix[i] = 120
	}
	for i := 200; i < 300; i++ {
		g.Pix[i] = 230
	}
	th := MultiOtsu(g, 3)
	if len(th) != 2 {
		t.Fatalf("thresholds = %v", th)
	}
	if !(th[0] > 20 && th[0] <= 120) {
		t.Fatalf("t1 = %d not between the low modes", th[0])
	}
	if !(th[1] > 120 && th[1] <= 230) {
		t.Fatalf("t2 = %d not between the high modes", th[1])
	}
	if th[0] >= th[1] {
		t.Fatal("thresholds not ascending")
	}
}

func TestMultiOtsuNightScene(t *testing.T) {
	// A night-like histogram: mostly black road, a mid band (glow),
	// saturated lamps. The top class must isolate the lamps.
	g := NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = 12
	}
	FillRectGray(g, Rect{10, 10, 20, 16}, 130) // glow
	FillRectGray(g, Rect{30, 10, 36, 14}, 250) // lamp
	th := MultiOtsu(g, 3)
	lamp := ThresholdBand(g, th[1], 255)
	if lamp.Count() != 6*4 {
		t.Fatalf("top class selected %d pixels, want the 24 lamp pixels", lamp.Count())
	}
}

func TestMultiOtsuPanicsOnBadN(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MultiOtsu(4) did not panic")
		}
	}()
	MultiOtsu(NewGray(4, 4), 4)
}

func TestMultiOtsuEmptyImageSafe(t *testing.T) {
	g := &Gray{W: 1, H: 1, Pix: []uint8{}}
	th := MultiOtsu(g, 3)
	if len(th) != 2 {
		t.Fatalf("thresholds = %v", th)
	}
}
