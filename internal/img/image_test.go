package img

import (
	"testing"
	"testing/quick"
)

func TestNewGrayPanicsOnBadSize(t *testing.T) {
	for _, c := range []struct{ w, h int }{{0, 1}, {1, 0}, {-3, 4}, {4, -1}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewGray(%d,%d) did not panic", c.w, c.h)
				}
			}()
			NewGray(c.w, c.h)
		}()
	}
}

func TestGraySetAt(t *testing.T) {
	g := NewGray(4, 3)
	g.Set(2, 1, 200)
	if got := g.At(2, 1); got != 200 {
		t.Fatalf("At(2,1) = %d, want 200", got)
	}
	if got := g.At(1, 2); got != 0 {
		t.Fatalf("At(1,2) = %d, want 0", got)
	}
}

func TestGrayAtClamped(t *testing.T) {
	g := NewGray(3, 3)
	g.Set(0, 0, 10)
	g.Set(2, 2, 20)
	cases := []struct {
		x, y int
		want uint8
	}{
		{-5, -5, 10}, {0, -1, 10}, {-1, 0, 10},
		{5, 5, 20}, {2, 9, 20}, {9, 2, 20},
		{1, 1, 0},
	}
	for _, c := range cases {
		if got := g.AtClamped(c.x, c.y); got != c.want {
			t.Errorf("AtClamped(%d,%d) = %d, want %d", c.x, c.y, got, c.want)
		}
	}
}

func TestGrayCloneIndependent(t *testing.T) {
	g := NewGray(2, 2)
	g.Set(0, 0, 7)
	c := g.Clone()
	c.Set(0, 0, 9)
	if g.At(0, 0) != 7 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestGraySubImage(t *testing.T) {
	g := NewGray(10, 10)
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			g.Set(x, y, uint8(10*y+x))
		}
	}
	s := g.SubImage(Rect{2, 3, 5, 6})
	if s.W != 3 || s.H != 3 {
		t.Fatalf("SubImage size %dx%d, want 3x3", s.W, s.H)
	}
	if got := s.At(0, 0); got != 32 {
		t.Fatalf("SubImage origin = %d, want 32", got)
	}
	if got := s.At(2, 2); got != 54 {
		t.Fatalf("SubImage corner = %d, want 54", got)
	}
}

func TestGraySubImageClips(t *testing.T) {
	g := NewGray(4, 4)
	s := g.SubImage(Rect{-2, -2, 2, 2})
	if s.W != 2 || s.H != 2 {
		t.Fatalf("clipped SubImage size %dx%d, want 2x2", s.W, s.H)
	}
	empty := g.SubImage(Rect{10, 10, 12, 12})
	if empty.W != 1 || empty.H != 1 {
		t.Fatalf("empty SubImage should be 1x1, got %dx%d", empty.W, empty.H)
	}
}

func TestGrayMean(t *testing.T) {
	g := NewGray(2, 2)
	g.Pix = []uint8{0, 100, 200, 100}
	if got := g.Mean(); got != 100 {
		t.Fatalf("Mean = %v, want 100", got)
	}
}

func TestRGBSetAt(t *testing.T) {
	m := NewRGB(3, 2)
	m.Set(2, 1, 1, 2, 3)
	r, g, b := m.At(2, 1)
	if r != 1 || g != 2 || b != 3 {
		t.Fatalf("At = (%d,%d,%d), want (1,2,3)", r, g, b)
	}
	if m.Bytes() != 18 {
		t.Fatalf("Bytes = %d, want 18", m.Bytes())
	}
}

func TestBinarySetNormalizes(t *testing.T) {
	b := NewBinary(2, 2)
	b.Set(0, 0, 200)
	if b.At(0, 0) != 1 {
		t.Fatal("Set should normalize nonzero values to 1")
	}
	if b.Count() != 1 {
		t.Fatalf("Count = %d, want 1", b.Count())
	}
}

func TestAndOr(t *testing.T) {
	a := NewBinary(2, 1)
	b := NewBinary(2, 1)
	a.Pix = []uint8{1, 0}
	b.Pix = []uint8{1, 1}
	and := And(a, b)
	or := Or(a, b)
	if and.Pix[0] != 1 || and.Pix[1] != 0 {
		t.Fatalf("And = %v", and.Pix)
	}
	if or.Pix[0] != 1 || or.Pix[1] != 1 {
		t.Fatalf("Or = %v", or.Pix)
	}
}

func TestAndPanicsOnSizeMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("And with mismatched sizes did not panic")
		}
	}()
	And(NewBinary(2, 2), NewBinary(3, 2))
}

func TestRectBasics(t *testing.T) {
	r := Rect{2, 3, 7, 8}
	if r.W() != 5 || r.H() != 5 || r.Area() != 25 {
		t.Fatalf("W/H/Area = %d/%d/%d", r.W(), r.H(), r.Area())
	}
	if r.Empty() {
		t.Fatal("non-empty rect reported Empty")
	}
	if !(Rect{5, 5, 5, 9}).Empty() {
		t.Fatal("degenerate rect not Empty")
	}
	if !r.Contains(2, 3) || r.Contains(7, 8) {
		t.Fatal("Contains half-open bounds wrong")
	}
	cx, cy := r.Center()
	if cx != 4 || cy != 5 {
		t.Fatalf("Center = (%d,%d)", cx, cy)
	}
}

func TestRectIntersectUnion(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	b := Rect{2, 2, 6, 6}
	i := a.Intersect(b)
	if i != (Rect{2, 2, 4, 4}) {
		t.Fatalf("Intersect = %v", i)
	}
	u := a.Union(b)
	if u != (Rect{0, 0, 6, 6}) {
		t.Fatalf("Union = %v", u)
	}
	if !a.Intersect(Rect{10, 10, 12, 12}).Empty() {
		t.Fatal("disjoint Intersect not empty")
	}
	if got := a.Union(Rect{}); got != a {
		t.Fatalf("Union with empty = %v, want %v", got, a)
	}
}

func TestRectIoU(t *testing.T) {
	a := Rect{0, 0, 4, 4}
	if got := a.IoU(a); got != 1 {
		t.Fatalf("self IoU = %v", got)
	}
	if got := a.IoU(Rect{4, 4, 8, 8}); got != 0 {
		t.Fatalf("disjoint IoU = %v", got)
	}
	b := Rect{2, 0, 6, 4}
	// intersection 8, union 24 -> 1/3
	if got := a.IoU(b); got < 0.333 || got > 0.334 {
		t.Fatalf("IoU = %v, want 1/3", got)
	}
}

func TestRectIoUProperties(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := Rect{int(ax0), int(ay0), int(ax0) + int(aw%32) + 1, int(ay0) + int(ah%32) + 1}
		b := Rect{int(bx0), int(by0), int(bx0) + int(bw%32) + 1, int(by0) + int(bh%32) + 1}
		iou := a.IoU(b)
		return iou >= 0 && iou <= 1 && a.IoU(b) == b.IoU(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestIntersectionWithinBoth(t *testing.T) {
	f := func(ax0, ay0, aw, ah, bx0, by0, bw, bh uint8) bool {
		a := Rect{int(ax0), int(ay0), int(ax0) + int(aw), int(ay0) + int(ah)}
		b := Rect{int(bx0), int(by0), int(bx0) + int(bw), int(by0) + int(bh)}
		i := a.Intersect(b)
		return i.Area() <= a.Area() && i.Area() <= b.Area() &&
			a.Union(b).Area() >= a.Area() && a.Union(b).Area() >= b.Area()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
