package img

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestAdjustGammaEndpointsFixed(t *testing.T) {
	g := NewGray(2, 1)
	g.Pix = []uint8{0, 255}
	for _, gamma := range []float64{0.4, 1.0, 2.2} {
		out := AdjustGamma(g, gamma)
		if out.Pix[0] != 0 || out.Pix[1] != 255 {
			t.Fatalf("gamma %v moved the endpoints: %v", gamma, out.Pix)
		}
	}
}

func TestAdjustGammaIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := randGray(rng, 16, 16)
	out := AdjustGamma(g, 1.0)
	for i := range g.Pix {
		if out.Pix[i] != g.Pix[i] {
			t.Fatal("gamma 1.0 is not the identity")
		}
	}
}

func TestAdjustGammaBrightensShadows(t *testing.T) {
	g := NewGray(1, 1)
	g.Pix[0] = 40
	if got := AdjustGamma(g, 0.45).Pix[0]; got <= 40 {
		t.Fatalf("gamma 0.45 mapped 40 -> %d, want brighter", got)
	}
	if got := AdjustGamma(g, 2.2).Pix[0]; got >= 40 {
		t.Fatalf("gamma 2.2 mapped 40 -> %d, want darker", got)
	}
}

func TestAdjustGammaMonotone(t *testing.T) {
	f := func(a, b uint8, gsel bool) bool {
		if a > b {
			a, b = b, a
		}
		gamma := 0.5
		if gsel {
			gamma = 2.0
		}
		g := NewGray(2, 1)
		g.Pix = []uint8{a, b}
		out := AdjustGamma(g, gamma)
		return out.Pix[0] <= out.Pix[1]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestAdjustGammaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gamma 0 accepted")
		}
	}()
	AdjustGamma(NewGray(1, 1), 0)
}

func TestEqualizeSpreadsRange(t *testing.T) {
	// A low-contrast image confined to [100, 120] must span ~[0, 255]
	// after equalization.
	g := NewGray(64, 1)
	for i := range g.Pix {
		g.Pix[i] = uint8(100 + i%21)
	}
	out := Equalize(g)
	var lo, hi uint8 = 255, 0
	for _, p := range out.Pix {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if lo != 0 || hi != 255 {
		t.Fatalf("equalized range [%d, %d], want [0, 255]", lo, hi)
	}
}

func TestEqualizeConstantImage(t *testing.T) {
	g := NewGray(8, 8)
	g.Fill(77)
	out := Equalize(g)
	for _, p := range out.Pix {
		if p != 77 {
			t.Fatalf("constant image changed to %d", p)
		}
	}
}

func TestEqualizePreservesOrdering(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randGray(rng, 12, 12)
		out := Equalize(g)
		// Equalization is monotone: pixel order must be preserved.
		for i := 0; i < len(g.Pix); i++ {
			for j := i + 1; j < len(g.Pix); j += 17 {
				if (g.Pix[i] < g.Pix[j]) && (out.Pix[i] > out.Pix[j]) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestEqualizeAmplifiesNightNoise(t *testing.T) {
	// Why the dark pipeline skips equalization: on a nearly black
	// frame with mild sensor noise, equalization blows the noise up
	// to full range, destroying the luminance threshold's meaning.
	rng := rand.New(rand.NewSource(5))
	g := NewGray(64, 64)
	for i := range g.Pix {
		g.Pix[i] = uint8(10 + rng.Intn(8)) // noise floor
	}
	g.Set(32, 32, 250) // one lamp pixel
	eq := Equalize(g)
	noiseHigh := 0
	for _, p := range eq.Pix {
		if p > 128 {
			noiseHigh++
		}
	}
	// Equalization pushes a large share of pure-noise pixels above
	// mid-range; the raw image keeps them all far below any sane lamp
	// threshold.
	if noiseHigh < 100 {
		t.Fatalf("expected equalization to amplify noise, only %d pixels above 128", noiseHigh)
	}
}
