package img

import "sort"

// Blob is a 4-connected foreground component extracted from a binary
// image: the taillight candidates the DBN stage classifies.
type Blob struct {
	Box    Rect
	Area   int     // number of foreground pixels
	CX, CY float64 // centroid
	Label  int     // 1-based component label
}

// AspectRatio returns width/height of the bounding box.
func (b Blob) AspectRatio() float64 {
	h := b.Box.H()
	if h == 0 {
		return 0
	}
	return float64(b.Box.W()) / float64(h)
}

// Fill returns the fraction of the bounding box covered by foreground
// pixels, a shape cue distinguishing compact lamps from streaks.
func (b Blob) Fill() float64 {
	a := b.Box.Area()
	if a == 0 {
		return 0
	}
	return float64(b.Area) / float64(a)
}

// Components labels 4-connected foreground components using a two-pass
// union-find pass (the same algorithm the streaming RTL labeler
// implements with a one-line delay buffer) and returns one Blob per
// component, ordered by descending area then raster position.
func Components(b *Binary) []Blob {
	w, h := b.W, b.H
	labels := make([]int32, w*h)
	parent := make([]int32, 1, 64) // parent[0] unused; labels start at 1

	find := func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]] // path halving
			x = parent[x]
		}
		return x
	}
	union := func(a, c int32) {
		ra, rc := find(a), find(c)
		if ra != rc {
			if ra < rc {
				parent[rc] = ra
			} else {
				parent[ra] = rc
			}
		}
	}

	next := int32(1)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			i := y*w + x
			if b.Pix[i] == 0 {
				continue
			}
			var up, left int32
			if y > 0 {
				up = labels[i-w]
			}
			if x > 0 {
				left = labels[i-1]
			}
			switch {
			case up == 0 && left == 0:
				parent = append(parent, next)
				labels[i] = next
				next++
			case up != 0 && left == 0:
				labels[i] = up
			case up == 0 && left != 0:
				labels[i] = left
			default:
				labels[i] = up
				union(up, left)
			}
		}
	}

	// Second pass: resolve labels, accumulate blob statistics.
	type acc struct {
		box        Rect
		area       int
		sumX, sumY int64
	}
	// Root labels are bounded by next, so a slice indexed by label
	// replaces a map here: map iteration order is randomized per run,
	// and when two blobs tie on (area, Y0, X0) the sort below is not
	// total without the label tiebreak, so output order leaked the
	// map's ordering.
	stats := make([]*acc, next)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			l := labels[y*w+x]
			if l == 0 {
				continue
			}
			r := find(l)
			a := stats[r]
			if a == nil {
				a = &acc{box: Rect{x, y, x + 1, y + 1}}
				stats[r] = a
			}
			a.box = a.box.Union(Rect{x, y, x + 1, y + 1})
			a.area++
			a.sumX += int64(x)
			a.sumY += int64(y)
		}
	}

	blobs := make([]Blob, 0, len(stats))
	for l := int32(1); l < next; l++ {
		a := stats[l]
		if a == nil {
			continue
		}
		blobs = append(blobs, Blob{
			Box:   a.box,
			Area:  a.area,
			CX:    float64(a.sumX) / float64(a.area),
			CY:    float64(a.sumY) / float64(a.area),
			Label: int(l),
		})
	}
	sort.Slice(blobs, func(i, j int) bool {
		if blobs[i].Area != blobs[j].Area {
			return blobs[i].Area > blobs[j].Area
		}
		if blobs[i].Box.Y0 != blobs[j].Box.Y0 {
			return blobs[i].Box.Y0 < blobs[j].Box.Y0
		}
		if blobs[i].Box.X0 != blobs[j].Box.X0 {
			return blobs[i].Box.X0 < blobs[j].Box.X0
		}
		return blobs[i].Label < blobs[j].Label
	})
	return blobs
}

// FilterBlobs returns the blobs whose area lies in [minArea, maxArea],
// the size gate applied before DBN classification.
func FilterBlobs(blobs []Blob, minArea, maxArea int) []Blob {
	out := blobs[:0:0]
	for _, b := range blobs {
		if b.Area >= minArea && b.Area <= maxArea {
			out = append(out, b)
		}
	}
	return out
}
