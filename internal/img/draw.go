package img

// Drawing helpers used by the example programs to render detection
// overlays (the Fig. 5 analogue) into PPM files.

// DrawRect strokes the rectangle outline on m with the given color and
// stroke thickness, clipping to the image bounds.
func DrawRect(m *RGB, r Rect, cr, cg, cb uint8, thick int) {
	if thick < 1 {
		thick = 1
	}
	for t := 0; t < thick; t++ {
		drawHLine(m, r.X0-t, r.X1+t, r.Y0-t, cr, cg, cb)
		drawHLine(m, r.X0-t, r.X1+t, r.Y1-1+t, cr, cg, cb)
		drawVLine(m, r.X0-t, r.Y0-t, r.Y1+t, cr, cg, cb)
		drawVLine(m, r.X1-1+t, r.Y0-t, r.Y1+t, cr, cg, cb)
	}
}

func drawHLine(m *RGB, x0, x1, y int, cr, cg, cb uint8) {
	if y < 0 || y >= m.H {
		return
	}
	if x0 < 0 {
		x0 = 0
	}
	if x1 > m.W {
		x1 = m.W
	}
	for x := x0; x < x1; x++ {
		m.Set(x, y, cr, cg, cb)
	}
}

func drawVLine(m *RGB, x, y0, y1 int, cr, cg, cb uint8) {
	if x < 0 || x >= m.W {
		return
	}
	if y0 < 0 {
		y0 = 0
	}
	if y1 > m.H {
		y1 = m.H
	}
	for y := y0; y < y1; y++ {
		m.Set(x, y, cr, cg, cb)
	}
}

// FillRect fills the rectangle on m with a solid color, clipped.
func FillRect(m *RGB, r Rect, cr, cg, cb uint8) {
	r = r.Intersect(Rect{0, 0, m.W, m.H})
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			m.Set(x, y, cr, cg, cb)
		}
	}
}

// FillRectGray fills the rectangle on g with a solid intensity, clipped.
func FillRectGray(g *Gray, r Rect, v uint8) {
	r = r.Intersect(Rect{0, 0, g.W, g.H})
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			g.Set(x, y, v)
		}
	}
}

// FillEllipse fills the axis-aligned ellipse inscribed in r, used by
// the scene generator to render lamps and wheels.
func FillEllipse(m *RGB, r Rect, cr, cg, cb uint8) {
	if r.Empty() {
		return
	}
	cx := float64(r.X0+r.X1-1) / 2
	cy := float64(r.Y0+r.Y1-1) / 2
	rx := float64(r.W()) / 2
	ry := float64(r.H()) / 2
	if rx <= 0 || ry <= 0 {
		return
	}
	clip := r.Intersect(Rect{0, 0, m.W, m.H})
	for y := clip.Y0; y < clip.Y1; y++ {
		dy := (float64(y) - cy) / ry
		for x := clip.X0; x < clip.X1; x++ {
			dx := (float64(x) - cx) / rx
			if dx*dx+dy*dy <= 1 {
				m.Set(x, y, cr, cg, cb)
			}
		}
	}
}
