package img

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestComponentsEmpty(t *testing.T) {
	b := NewBinary(8, 8)
	if got := Components(b); len(got) != 0 {
		t.Fatalf("empty image produced %d blobs", len(got))
	}
}

func TestComponentsSingleBlob(t *testing.T) {
	b := NewBinary(10, 10)
	for y := 2; y < 5; y++ {
		for x := 3; x < 7; x++ {
			b.Set(x, y, 1)
		}
	}
	blobs := Components(b)
	if len(blobs) != 1 {
		t.Fatalf("got %d blobs, want 1", len(blobs))
	}
	bl := blobs[0]
	if bl.Box != (Rect{3, 2, 7, 5}) {
		t.Fatalf("box = %v", bl.Box)
	}
	if bl.Area != 12 {
		t.Fatalf("area = %d, want 12", bl.Area)
	}
	if bl.CX != 4.5 || bl.CY != 3 {
		t.Fatalf("centroid = (%v,%v)", bl.CX, bl.CY)
	}
	if bl.Fill() != 1 {
		t.Fatalf("fill = %v, want 1", bl.Fill())
	}
}

func TestComponentsTwoSeparateBlobs(t *testing.T) {
	b := NewBinary(12, 6)
	b.Set(1, 1, 1)
	b.Set(1, 2, 1)
	b.Set(9, 4, 1)
	blobs := Components(b)
	if len(blobs) != 2 {
		t.Fatalf("got %d blobs, want 2", len(blobs))
	}
	// Sorted by area descending.
	if blobs[0].Area != 2 || blobs[1].Area != 1 {
		t.Fatalf("areas = %d,%d", blobs[0].Area, blobs[1].Area)
	}
}

func TestComponentsDiagonalNotConnected(t *testing.T) {
	// 4-connectivity: diagonal neighbors are separate components.
	b := NewBinary(4, 4)
	b.Set(1, 1, 1)
	b.Set(2, 2, 1)
	if got := len(Components(b)); got != 2 {
		t.Fatalf("diagonal pixels merged: %d blobs", got)
	}
}

func TestComponentsUShape(t *testing.T) {
	// A U-shape forces a label merge in the two-pass algorithm.
	b := NewBinary(7, 5)
	for y := 0; y < 4; y++ {
		b.Set(1, y, 1)
		b.Set(5, y, 1)
	}
	for x := 1; x <= 5; x++ {
		b.Set(x, 4, 1)
	}
	blobs := Components(b)
	if len(blobs) != 1 {
		t.Fatalf("U-shape split into %d blobs", len(blobs))
	}
	if blobs[0].Area != 13 {
		t.Fatalf("U-shape area = %d, want 13", blobs[0].Area)
	}
}

func TestComponentsAreaConservation(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBinary(20, 20)
		for i := range b.Pix {
			if rng.Intn(3) == 0 {
				b.Pix[i] = 1
			}
		}
		total := 0
		for _, bl := range Components(b) {
			total += bl.Area
		}
		return total == b.Count()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentsBoxesContainCentroids(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBinary(15, 15)
		for i := range b.Pix {
			if rng.Intn(4) == 0 {
				b.Pix[i] = 1
			}
		}
		for _, bl := range Components(b) {
			if bl.CX < float64(bl.Box.X0)-0.5 || bl.CX > float64(bl.Box.X1) ||
				bl.CY < float64(bl.Box.Y0)-0.5 || bl.CY > float64(bl.Box.Y1) {
				return false
			}
			if bl.Area > bl.Box.Area() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestFilterBlobs(t *testing.T) {
	blobs := []Blob{{Area: 5}, {Area: 20}, {Area: 100}}
	got := FilterBlobs(blobs, 10, 50)
	if len(got) != 1 || got[0].Area != 20 {
		t.Fatalf("FilterBlobs = %+v", got)
	}
}

func TestBlobAspectRatio(t *testing.T) {
	b := Blob{Box: Rect{0, 0, 8, 4}}
	if b.AspectRatio() != 2 {
		t.Fatalf("aspect = %v, want 2", b.AspectRatio())
	}
	if (Blob{}).AspectRatio() != 0 {
		t.Fatal("degenerate blob aspect should be 0")
	}
}

// TestComponentsOrderDeterministicOnTies pins the output order when two
// blobs tie on every geometric sort key (area, Y0, X0): the label — the
// raster order of first appearance — breaks the tie. Before blob
// assembly moved off a map, iteration order decided ties and this test
// flipped between runs.
func TestComponentsOrderDeterministicOnTies(t *testing.T) {
	build := func() *Binary {
		b := NewBinary(6, 6)
		// Component A: solid 3x3 block, first pixel (0,0). Area 9.
		for y := 0; y < 3; y++ {
			for x := 0; x < 3; x++ {
				b.Set(x, y, 1)
			}
		}
		// Component B: hook along x=4 and y=4, first pixel (4,0).
		// Area 9, bounding box origin (0,0) — ties A on every
		// geometric key, and the two never touch 4-connectedly.
		for y := 0; y < 5; y++ {
			b.Set(4, y, 1)
		}
		for x := 0; x < 4; x++ {
			b.Set(x, 4, 1)
		}
		return b
	}
	for run := 0; run < 50; run++ {
		blobs := Components(build())
		if len(blobs) != 2 {
			t.Fatalf("run %d: got %d blobs, want 2", run, len(blobs))
		}
		if blobs[0].Area != 9 || blobs[1].Area != 9 {
			t.Fatalf("run %d: areas = %d,%d, want 9,9", run, blobs[0].Area, blobs[1].Area)
		}
		if blobs[0].Label != 1 || blobs[1].Label != 2 {
			t.Fatalf("run %d: label order = %d,%d, want 1,2", run, blobs[0].Label, blobs[1].Label)
		}
	}
}
