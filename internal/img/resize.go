package img

// ResizeGray scales g to (w, h) using bilinear interpolation in fixed
// point (16.16), matching the hardware downscaler in the dark pipeline
// that reduces the 1920x1080 capture to 640x360.
func ResizeGray(g *Gray, w, h int) *Gray {
	return ResizeGrayInto(nil, g, w, h)
}

// ResizeGrayInto is ResizeGray writing into dst, reusing dst's pixel
// buffer when it has sufficient capacity (dst may be nil, and must not
// alias g). It returns the resized image — dst itself when reuse was
// possible — so steady-state pyramid loops rebuild their levels every
// frame without reallocating.
func ResizeGrayInto(dst *Gray, g *Gray, w, h int) *Gray {
	if w <= 0 || h <= 0 {
		// lint:invariant target dimensions are pipeline constants; non-positive is a caller bug
		panic("img: ResizeGray to non-positive size")
	}
	out := dst
	if out == nil {
		out = &Gray{}
	}
	out.W, out.H = w, h
	if cap(out.Pix) < w*h {
		out.Pix = make([]uint8, w*h)
	} else {
		out.Pix = out.Pix[:w*h]
	}
	if g.W == w && g.H == h {
		copy(out.Pix, g.Pix)
		return out
	}
	// Scale factors in 16.16 fixed point, sampling pixel centers.
	sx := (int64(g.W) << 16) / int64(w)
	sy := (int64(g.H) << 16) / int64(h)
	// The horizontal source coordinates and weights are the same for
	// every row, so they are tabulated once instead of rederived per
	// pixel — same arithmetic, so the output is bitwise unchanged. The
	// tables live on the stack (they must not escape) for pyramid-sized
	// targets; wider targets fall back to recomputing per pixel.
	const maxCols = 2048
	var x0s, x1s, wxs [maxCols]int32
	cols := w
	if cols > maxCols {
		cols = maxCols
	}
	for x := 0; x < cols; x++ {
		fx := (int64(x)*sx + sx/2) - 1<<15
		if fx < 0 {
			fx = 0
		}
		x0 := int32(fx >> 16)
		x1 := x0 + 1
		if int(x1) >= g.W {
			x1 = int32(g.W - 1)
		}
		x0s[x], x1s[x], wxs[x] = x0, x1, int32(fx&0xffff)
	}
	for y := 0; y < h; y++ {
		fy := (int64(y)*sy + sy/2) - 1<<15
		if fy < 0 {
			fy = 0
		}
		y0 := int(fy >> 16)
		wy := int32(fy & 0xffff)
		y1 := y0 + 1
		if y1 >= g.H {
			y1 = g.H - 1
		}
		row0 := g.Pix[y0*g.W : y0*g.W+g.W]
		row1 := g.Pix[y1*g.W : y1*g.W+g.W]
		dst := out.Pix[y*w : y*w+w]
		for x := 0; x < w; x++ {
			var x0, x1, wx int32
			if x < maxCols {
				x0, x1, wx = x0s[x], x1s[x], wxs[x]
			} else {
				fx := (int64(x)*sx + sx/2) - 1<<15
				if fx < 0 {
					fx = 0
				}
				x0 = int32(fx >> 16)
				x1 = x0 + 1
				if int(x1) >= g.W {
					x1 = int32(g.W - 1)
				}
				wx = int32(fx & 0xffff)
			}
			p00 := int32(row0[x0])
			p01 := int32(row0[x1])
			p10 := int32(row1[x0])
			p11 := int32(row1[x1])
			top := p00 + ((p01-p00)*wx)>>16
			bot := p10 + ((p11-p10)*wx)>>16
			dst[x] = clamp8(top + ((bot-top)*wy)>>16)
		}
	}
	return out
}

// ResizeRGB scales m to (w, h) channel by channel using the same
// bilinear kernel as ResizeGray.
func ResizeRGB(m *RGB, w, h int) *RGB {
	out := NewRGB(w, h)
	for c := 0; c < 3; c++ {
		plane := NewGray(m.W, m.H)
		for i := 0; i < m.W*m.H; i++ {
			plane.Pix[i] = m.Pix[3*i+c]
		}
		scaled := ResizeGray(plane, w, h)
		for i := 0; i < w*h; i++ {
			out.Pix[3*i+c] = scaled.Pix[i]
		}
	}
	return out
}

// DownsampleBinary reduces b by an integer factor using an OR-reduce
// over each factor x factor tile: a tile is foreground if any source
// pixel is. This is the decimation the dark-pipeline RTL applies after
// thresholding, chosen so that small taillight blobs survive.
func DownsampleBinary(b *Binary, factor int) *Binary {
	if factor <= 0 {
		// lint:invariant the decimation factor is a pipeline constant; non-positive is a caller bug
		panic("img: DownsampleBinary non-positive factor")
	}
	if factor == 1 {
		return b.Clone()
	}
	w := (b.W + factor - 1) / factor
	h := (b.H + factor - 1) / factor
	out := NewBinary(w, h)
	for y := 0; y < b.H; y++ {
		oy := y / factor
		row := y * b.W
		orow := oy * w
		for x := 0; x < b.W; x++ {
			if b.Pix[row+x] != 0 {
				out.Pix[orow+x/factor] = 1
			}
		}
	}
	return out
}

// PyramidSizes returns the level dimensions PyramidGray produces for
// a w x h source: each level smaller by the given per-level scale
// (> 1) until the image no longer covers (minW, minH). Exposed so the
// parallel detection engine can build the levels concurrently while
// staying geometry-identical to the serial pyramid.
func PyramidSizes(w, h int, scale float64, minW, minH int) [][2]int {
	if scale <= 1 {
		// lint:invariant documented contract: scale must exceed 1
		panic("img: PyramidGray scale must exceed 1")
	}
	var sizes [][2]int
	fw, fh := float64(w), float64(h)
	for w >= minW && h >= minH {
		sizes = append(sizes, [2]int{w, h}) // lint:alloc level count is O(log size); sizes are computed once per pyramid, not per window
		fw /= scale
		fh /= scale
		w, h = int(fw), int(fh)
	}
	return sizes
}

// PyramidGray returns successively downscaled copies of g, each level
// smaller by the given per-level scale (> 1), until the image no longer
// covers (minW, minH). Level 0 is a copy of g itself. The multi-scale
// pedestrian detector scans every level with a fixed-size window.
func PyramidGray(g *Gray, scale float64, minW, minH int) []*Gray {
	sizes := PyramidSizes(g.W, g.H, scale, minW, minH)
	levels := make([]*Gray, len(sizes))
	for i, s := range sizes {
		levels[i] = ResizeGray(g, s[0], s[1])
	}
	return levels
}
