// Package img provides the image substrate for the adaptive vehicle
// detection system: planar 8-bit grayscale, interleaved RGB and planar
// YCbCr frames, plus the low-level operations the detection pipelines
// are built from (color conversion, resizing, thresholding, morphology,
// connected components and drawing).
//
// All operations are deterministic and allocation-explicit so that the
// cycle-approximate SoC model can account for every byte moved.
//
// lint:detpath
package img

import "fmt"

// Gray is an 8-bit single-channel image with row-major pixels.
type Gray struct {
	W, H int
	Pix  []uint8 // len == W*H
}

// NewGray returns a zeroed grayscale image of the given size.
// It panics if w or h is not positive.
func NewGray(w, h int) *Gray {
	if w <= 0 || h <= 0 {
		// lint:invariant documented contract: dimensions must be positive
		panic(fmt.Sprintf("img: invalid Gray size %dx%d", w, h)) // lint:alloc cold panic path; fires only on an invariant violation
	}
	return &Gray{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the pixel at (x, y). Out-of-bounds access panics.
func (g *Gray) At(x, y int) uint8 { return g.Pix[y*g.W+x] }

// Set writes the pixel at (x, y). Out-of-bounds access panics.
func (g *Gray) Set(x, y int, v uint8) { g.Pix[y*g.W+x] = v }

// AtClamped returns the pixel at (x, y) with coordinates clamped to the
// image border, matching the replicate padding used by the hardware
// gradient unit.
func (g *Gray) AtClamped(x, y int) uint8 {
	if x < 0 {
		x = 0
	} else if x >= g.W {
		x = g.W - 1
	}
	if y < 0 {
		y = 0
	} else if y >= g.H {
		y = g.H - 1
	}
	return g.Pix[y*g.W+x]
}

// Clone returns a deep copy of g.
func (g *Gray) Clone() *Gray {
	out := NewGray(g.W, g.H)
	copy(out.Pix, g.Pix)
	return out
}

// SubImage copies the rectangle r into a freshly allocated image.
// The rectangle is clipped to the image bounds; an empty intersection
// yields a 1x1 black image.
func (g *Gray) SubImage(r Rect) *Gray {
	r = r.Intersect(Rect{0, 0, g.W, g.H})
	if r.Empty() {
		return NewGray(1, 1)
	}
	out := NewGray(r.W(), r.H())
	for y := 0; y < out.H; y++ {
		src := (r.Y0+y)*g.W + r.X0
		copy(out.Pix[y*out.W:(y+1)*out.W], g.Pix[src:src+out.W])
	}
	return out
}

// Fill sets every pixel to v.
func (g *Gray) Fill(v uint8) {
	for i := range g.Pix {
		g.Pix[i] = v
	}
}

// Mean returns the average pixel intensity in [0, 255].
func (g *Gray) Mean() float64 {
	if len(g.Pix) == 0 {
		return 0
	}
	var sum int64
	for _, p := range g.Pix {
		sum += int64(p)
	}
	return float64(sum) / float64(len(g.Pix))
}

// RGB is an 8-bit three-channel image with interleaved R, G, B samples.
type RGB struct {
	W, H int
	Pix  []uint8 // len == 3*W*H, order R G B
}

// NewRGB returns a zeroed RGB image of the given size.
func NewRGB(w, h int) *RGB {
	if w <= 0 || h <= 0 {
		// lint:invariant documented contract: dimensions must be positive
		panic(fmt.Sprintf("img: invalid RGB size %dx%d", w, h))
	}
	return &RGB{W: w, H: h, Pix: make([]uint8, 3*w*h)}
}

// At returns the (r, g, b) triple at (x, y).
func (m *RGB) At(x, y int) (r, g, b uint8) {
	i := 3 * (y*m.W + x)
	return m.Pix[i], m.Pix[i+1], m.Pix[i+2]
}

// Set writes the (r, g, b) triple at (x, y).
func (m *RGB) Set(x, y int, r, g, b uint8) {
	i := 3 * (y*m.W + x)
	m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
}

// Clone returns a deep copy of m.
func (m *RGB) Clone() *RGB {
	out := NewRGB(m.W, m.H)
	copy(out.Pix, m.Pix)
	return out
}

// Fill sets every pixel to the (r, g, b) triple.
func (m *RGB) Fill(r, g, b uint8) {
	for i := 0; i < len(m.Pix); i += 3 {
		m.Pix[i], m.Pix[i+1], m.Pix[i+2] = r, g, b
	}
}

// Bytes reports the storage footprint in bytes, used by the SoC model to
// size DMA transfers.
func (m *RGB) Bytes() int { return len(m.Pix) }

// YCbCr is a planar 4:4:4 YCbCr image (BT.601 full range).
type YCbCr struct {
	W, H      int
	Y, Cb, Cr []uint8 // each len == W*H
}

// NewYCbCr returns a zeroed YCbCr image of the given size.
func NewYCbCr(w, h int) *YCbCr {
	if w <= 0 || h <= 0 {
		// lint:invariant documented contract: dimensions must be positive
		panic(fmt.Sprintf("img: invalid YCbCr size %dx%d", w, h))
	}
	n := w * h
	return &YCbCr{W: w, H: h, Y: make([]uint8, n), Cb: make([]uint8, n), Cr: make([]uint8, n)}
}

// Luma returns the Y plane wrapped as a Gray image sharing storage.
func (c *YCbCr) Luma() *Gray { return &Gray{W: c.W, H: c.H, Pix: c.Y} }

// Binary is a 1-bit-per-pixel image stored one byte per pixel
// (0 = background, 1 = foreground), the representation the thresholding
// and morphology hardware stages stream between BRAM buffers.
type Binary struct {
	W, H int
	Pix  []uint8 // values 0 or 1
}

// NewBinary returns a zeroed binary image of the given size.
func NewBinary(w, h int) *Binary {
	if w <= 0 || h <= 0 {
		// lint:invariant documented contract: dimensions must be positive
		panic(fmt.Sprintf("img: invalid Binary size %dx%d", w, h))
	}
	return &Binary{W: w, H: h, Pix: make([]uint8, w*h)}
}

// At returns the bit at (x, y).
func (b *Binary) At(x, y int) uint8 { return b.Pix[y*b.W+x] }

// Set writes the bit at (x, y); any nonzero v is stored as 1.
func (b *Binary) Set(x, y int, v uint8) {
	if v != 0 {
		v = 1
	}
	b.Pix[y*b.W+x] = v
}

// Clone returns a deep copy of b.
func (b *Binary) Clone() *Binary {
	out := NewBinary(b.W, b.H)
	copy(out.Pix, b.Pix)
	return out
}

// Count returns the number of foreground pixels.
func (b *Binary) Count() int {
	n := 0
	for _, p := range b.Pix {
		if p != 0 {
			n++
		}
	}
	return n
}

// And stores the pixelwise AND of a and b into a fresh image.
// It panics if the sizes differ.
func And(a, b *Binary) *Binary {
	if a.W != b.W || a.H != b.H {
		// lint:invariant documented contract: operands must be the same size
		panic(fmt.Sprintf("img: And size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	out := NewBinary(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] & b.Pix[i]
	}
	return out
}

// Or stores the pixelwise OR of a and b into a fresh image.
// It panics if the sizes differ.
func Or(a, b *Binary) *Binary {
	if a.W != b.W || a.H != b.H {
		// lint:invariant documented contract: operands must be the same size
		panic(fmt.Sprintf("img: Or size mismatch %dx%d vs %dx%d", a.W, a.H, b.W, b.H))
	}
	out := NewBinary(a.W, a.H)
	for i := range out.Pix {
		out.Pix[i] = a.Pix[i] | b.Pix[i]
	}
	return out
}

// Rect is an axis-aligned rectangle with half-open bounds [X0,X1)×[Y0,Y1).
type Rect struct {
	X0, Y0, X1, Y1 int
}

// W returns the rectangle width (zero if degenerate).
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the rectangle height (zero if degenerate).
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Empty reports whether the rectangle contains no pixels.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Area returns the number of pixels covered.
func (r Rect) Area() int { return r.W() * r.H() }

// Intersect returns the intersection of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	out := Rect{max(r.X0, s.X0), max(r.Y0, s.Y0), min(r.X1, s.X1), min(r.Y1, s.Y1)}
	if out.Empty() {
		return Rect{}
	}
	return out
}

// Union returns the smallest rectangle containing both r and s.
// An empty rectangle is the identity.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{min(r.X0, s.X0), min(r.Y0, s.Y0), max(r.X1, s.X1), max(r.Y1, s.Y1)}
}

// Contains reports whether the point (x, y) lies inside r.
func (r Rect) Contains(x, y int) bool {
	return x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1
}

// Center returns the integer center point of r.
func (r Rect) Center() (x, y int) { return (r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2 }

// IoU returns the intersection-over-union of r and s in [0, 1].
func (r Rect) IoU(s Rect) float64 {
	inter := r.Intersect(s).Area()
	if inter == 0 {
		return 0
	}
	union := r.Area() + s.Area() - inter
	return float64(inter) / float64(union)
}

func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d %dx%d]", r.X0, r.Y0, r.W(), r.H())
}
