package img

import (
	"bytes"
	"strings"
	"testing"
)

func TestEncodePPMHeaderAndPayload(t *testing.T) {
	m := NewRGB(2, 1)
	m.Set(0, 0, 1, 2, 3)
	m.Set(1, 0, 4, 5, 6)
	var buf bytes.Buffer
	if err := EncodePPM(&buf, m); err != nil {
		t.Fatal(err)
	}
	out := buf.Bytes()
	if !strings.HasPrefix(string(out), "P6\n2 1\n255\n") {
		t.Fatalf("bad header: %q", out[:12])
	}
	payload := out[len("P6\n2 1\n255\n"):]
	if !bytes.Equal(payload, []byte{1, 2, 3, 4, 5, 6}) {
		t.Fatalf("payload = %v", payload)
	}
}

func TestEncodePGM(t *testing.T) {
	g := NewGray(3, 1)
	g.Pix = []uint8{9, 8, 7}
	var buf bytes.Buffer
	if err := EncodePGM(&buf, g); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "P5\n3 1\n255\n") {
		t.Fatalf("bad header: %q", buf.String())
	}
}

func TestWritePPMRoundTrip(t *testing.T) {
	m := NewRGB(4, 4)
	m.Fill(10, 20, 30)
	path := t.TempDir() + "/frame.ppm"
	if err := WritePPM(path, m); err != nil {
		t.Fatal(err)
	}
}

func TestDrawRectClipsAndStrokes(t *testing.T) {
	m := NewRGB(10, 10)
	DrawRect(m, Rect{2, 2, 8, 8}, 255, 0, 0, 1)
	r, _, _ := m.At(2, 2)
	if r != 255 {
		t.Fatal("corner not stroked")
	}
	r, _, _ = m.At(5, 5)
	if r != 0 {
		t.Fatal("interior was filled by stroke")
	}
	// Clipping: drawing beyond bounds must not panic.
	DrawRect(m, Rect{-5, -5, 20, 20}, 0, 255, 0, 2)
}

func TestFillRect(t *testing.T) {
	m := NewRGB(5, 5)
	FillRect(m, Rect{1, 1, 4, 4}, 9, 9, 9)
	if r, _, _ := m.At(2, 2); r != 9 {
		t.Fatal("interior not filled")
	}
	if r, _, _ := m.At(0, 0); r != 0 {
		t.Fatal("outside filled")
	}
	FillRect(m, Rect{-3, -3, 100, 100}, 1, 1, 1) // must clip, not panic
}

func TestFillEllipseInsideRect(t *testing.T) {
	m := NewRGB(20, 20)
	FillEllipse(m, Rect{5, 5, 15, 15}, 200, 0, 0)
	if r, _, _ := m.At(10, 10); r != 200 {
		t.Fatal("ellipse center not filled")
	}
	if r, _, _ := m.At(5, 5); r != 0 {
		t.Fatal("rect corner should be outside the ellipse")
	}
	FillEllipse(m, Rect{18, 18, 30, 30}, 1, 1, 1) // clipped corner case
}

func TestFillRectGray(t *testing.T) {
	g := NewGray(4, 4)
	FillRectGray(g, Rect{1, 1, 3, 3}, 77)
	if g.At(1, 1) != 77 || g.At(2, 2) != 77 {
		t.Fatal("gray rect not filled")
	}
	if g.At(0, 0) != 0 {
		t.Fatal("outside modified")
	}
}
