package img

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func randGray(rng *rand.Rand, w, h int) *Gray {
	g := NewGray(w, h)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	return g
}

func randRGB(rng *rand.Rand, w, h int) *RGB {
	m := NewRGB(w, h)
	for i := range m.Pix {
		m.Pix[i] = uint8(rng.Intn(256))
	}
	return m
}

func TestRGBYCbCrRoundTripNearIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randRGB(rng, 31, 17)
	back := YCbCrToRGB(RGBToYCbCr(m))
	for i := range m.Pix {
		d := int(m.Pix[i]) - int(back.Pix[i])
		if d < -3 || d > 3 {
			t.Fatalf("round trip error %d at index %d", d, i)
		}
	}
}

func TestGrayLevelsMapToThemselves(t *testing.T) {
	// A gray RGB pixel must produce Y == the gray level and neutral chroma.
	for v := 0; v < 256; v += 17 {
		m := NewRGB(1, 1)
		m.Set(0, 0, uint8(v), uint8(v), uint8(v))
		c := RGBToYCbCr(m)
		if int(c.Y[0]) != v {
			t.Fatalf("Y for gray %d = %d", v, c.Y[0])
		}
		if c.Cb[0] < 127 || c.Cb[0] > 129 || c.Cr[0] < 127 || c.Cr[0] > 129 {
			t.Fatalf("chroma for gray %d = (%d,%d), want ~128", v, c.Cb[0], c.Cr[0])
		}
	}
}

func TestRedHasHighCr(t *testing.T) {
	m := NewRGB(1, 1)
	m.Set(0, 0, 255, 30, 30)
	c := RGBToYCbCr(m)
	if c.Cr[0] < 180 {
		t.Fatalf("Cr of red = %d, want > 180", c.Cr[0])
	}
	m.Set(0, 0, 30, 30, 255)
	c = RGBToYCbCr(m)
	if c.Cr[0] > 128 {
		t.Fatalf("Cr of blue = %d, want < 128", c.Cr[0])
	}
}

func TestRGBToGrayMatchesLumaPlane(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := randRGB(rng, 13, 7)
	g := RGBToGray(m)
	c := RGBToYCbCr(m)
	for i := range g.Pix {
		if g.Pix[i] != c.Y[i] {
			t.Fatalf("gray(%d)=%d != Y %d", i, g.Pix[i], c.Y[i])
		}
	}
}

func TestResizeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := randGray(rng, 20, 10)
	r := ResizeGray(g, 20, 10)
	if !bytes.Equal(g.Pix, r.Pix) {
		t.Fatal("identity resize changed pixels")
	}
}

func TestResizeConstantImageStaysConstant(t *testing.T) {
	g := NewGray(64, 64)
	g.Fill(137)
	for _, sz := range [][2]int{{32, 32}, {17, 9}, {128, 128}, {1, 1}, {640, 360}} {
		r := ResizeGray(g, sz[0], sz[1])
		for i, p := range r.Pix {
			if p != 137 {
				t.Fatalf("resize to %v: pixel %d = %d, want 137", sz, i, p)
			}
		}
	}
}

func TestResizePreservesMeanApproximately(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := randGray(rng, 100, 80)
	r := ResizeGray(g, 50, 40)
	if d := g.Mean() - r.Mean(); d < -6 || d > 6 {
		t.Fatalf("mean drift %v too large", d)
	}
}

func TestResizeHDTVToDarkPipelineSize(t *testing.T) {
	g := NewGray(1920, 1080)
	r := ResizeGray(g, 640, 360)
	if r.W != 640 || r.H != 360 {
		t.Fatalf("got %dx%d", r.W, r.H)
	}
}

func TestResizeRGBChannelsIndependent(t *testing.T) {
	m := NewRGB(8, 8)
	m.Fill(10, 200, 90)
	r := ResizeRGB(m, 4, 4)
	cr, cg, cb := r.At(2, 2)
	if cr != 10 || cg != 200 || cb != 90 {
		t.Fatalf("resized constant RGB = (%d,%d,%d)", cr, cg, cb)
	}
}

func TestDownsampleBinaryORSemantics(t *testing.T) {
	b := NewBinary(4, 4)
	b.Set(3, 3, 1) // single pixel in bottom-right tile
	d := DownsampleBinary(b, 2)
	if d.W != 2 || d.H != 2 {
		t.Fatalf("size %dx%d", d.W, d.H)
	}
	if d.At(1, 1) != 1 {
		t.Fatal("foreground pixel lost in OR-downsample")
	}
	if d.At(0, 0) != 0 {
		t.Fatal("background tile became foreground")
	}
}

func TestDownsampleBinaryPreservesForegroundExistence(t *testing.T) {
	f := func(seed int64, factor uint8) bool {
		fac := int(factor%4) + 1
		rng := rand.New(rand.NewSource(seed))
		b := NewBinary(16, 16)
		for i := range b.Pix {
			if rng.Intn(10) == 0 {
				b.Pix[i] = 1
			}
		}
		d := DownsampleBinary(b, fac)
		return (b.Count() > 0) == (d.Count() > 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPyramidGrayLevels(t *testing.T) {
	g := NewGray(128, 64)
	levels := PyramidGray(g, 1.25, 32, 16)
	if len(levels) < 3 {
		t.Fatalf("only %d pyramid levels", len(levels))
	}
	if levels[0].W != 128 || levels[0].H != 64 {
		t.Fatal("level 0 should match the input size")
	}
	for i := 1; i < len(levels); i++ {
		if levels[i].W >= levels[i-1].W {
			t.Fatalf("level %d not smaller than level %d", i, i-1)
		}
	}
}

func TestThreshold(t *testing.T) {
	g := NewGray(3, 1)
	g.Pix = []uint8{10, 128, 250}
	b := Threshold(g, 128)
	want := []uint8{0, 1, 1}
	for i := range want {
		if b.Pix[i] != want[i] {
			t.Fatalf("Threshold pix %d = %d, want %d", i, b.Pix[i], want[i])
		}
	}
}

func TestThresholdBand(t *testing.T) {
	g := NewGray(4, 1)
	g.Pix = []uint8{100, 150, 200, 250}
	b := ThresholdBand(g, 140, 210)
	want := []uint8{0, 1, 1, 0}
	for i := range want {
		if b.Pix[i] != want[i] {
			t.Fatalf("band pix %d = %d, want %d", i, b.Pix[i], want[i])
		}
	}
}

func TestOtsuSeparatesBimodal(t *testing.T) {
	g := NewGray(100, 1)
	for i := 0; i < 50; i++ {
		g.Pix[i] = 30
	}
	for i := 50; i < 100; i++ {
		g.Pix[i] = 220
	}
	th := OtsuThreshold(g)
	if th <= 30 || th > 220 {
		t.Fatalf("Otsu threshold %d not between modes", th)
	}
}

func TestDualThresholdSelectsBrightRed(t *testing.T) {
	m := NewRGB(3, 1)
	m.Set(0, 0, 250, 40, 40)   // bright red taillight
	m.Set(1, 0, 250, 250, 250) // bright white road light
	m.Set(2, 0, 60, 10, 10)    // dim red reflector
	c := RGBToYCbCr(m)
	b := DualThreshold(c, 60, 150, 255)
	if b.Pix[0] != 1 {
		t.Fatal("bright red pixel rejected")
	}
	if b.Pix[1] != 0 {
		t.Fatal("white light passed the chroma gate")
	}
	if b.Pix[2] != 0 {
		t.Fatal("dim pixel passed the luma gate")
	}
}

func TestDilateErodeBasics(t *testing.T) {
	b := NewBinary(7, 7)
	b.Set(3, 3, 1)
	d := Dilate(b, 1)
	if d.Count() != 9 {
		t.Fatalf("dilate count = %d, want 9", d.Count())
	}
	e := Erode(d, 1)
	if e.Count() != 1 || e.At(3, 3) != 1 {
		t.Fatalf("erode did not recover the seed: count=%d", e.Count())
	}
}

func TestErodeRemovesSpecks(t *testing.T) {
	b := NewBinary(10, 10)
	b.Set(5, 5, 1) // single speck
	if got := Erode(b, 1).Count(); got != 0 {
		t.Fatalf("speck survived erosion: %d", got)
	}
}

func TestCloseFillsHoles(t *testing.T) {
	b := NewBinary(9, 9)
	for y := 2; y < 7; y++ {
		for x := 2; x < 7; x++ {
			b.Set(x, y, 1)
		}
	}
	b.Set(4, 4, 0) // punch a hole
	c := Close(b, 1)
	if c.At(4, 4) != 1 {
		t.Fatal("closing did not fill the hole")
	}
}

func TestMorphologyMonotonicity(t *testing.T) {
	// Dilation is extensive, erosion anti-extensive.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBinary(12, 12)
		for i := range b.Pix {
			if rng.Intn(4) == 0 {
				b.Pix[i] = 1
			}
		}
		d := Dilate(b, 1)
		e := Erode(b, 1)
		for i := range b.Pix {
			if b.Pix[i] == 1 && d.Pix[i] == 0 {
				return false // dilation lost a pixel
			}
			if e.Pix[i] == 1 && b.Pix[i] == 0 {
				return false // erosion created a pixel
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCloseIsExtensiveOnBlobs(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBinary(16, 16)
		// seed a few blobs
		for k := 0; k < 3; k++ {
			x, y := rng.Intn(12)+2, rng.Intn(12)+2
			for dy := -1; dy <= 1; dy++ {
				for dx := -1; dx <= 1; dx++ {
					b.Set(x+dx, y+dy, 1)
				}
			}
		}
		c := Close(b, 1)
		for i := range b.Pix {
			if b.Pix[i] == 1 && c.Pix[i] == 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRadiusMorphologyIsIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	b := NewBinary(8, 8)
	for i := range b.Pix {
		b.Pix[i] = uint8(rng.Intn(2))
	}
	if !bytes.Equal(Dilate(b, 0).Pix, b.Pix) || !bytes.Equal(Erode(b, 0).Pix, b.Pix) {
		t.Fatal("radius-0 morphology is not the identity")
	}
}
