package img

// Binary morphology with a square structuring element of the given
// radius (the (2r+1)x(2r+1) box the closing stage of the dark pipeline
// uses to remove threshold noise and seal small holes in light blobs).
// Pixels outside the image are treated as background.

// Dilate grows foreground regions by the structuring-element radius.
func Dilate(b *Binary, radius int) *Binary {
	if radius <= 0 {
		return b.Clone()
	}
	// Separable: horizontal max then vertical max.
	tmp := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := y * b.W
		for x := 0; x < b.W; x++ {
			v := uint8(0)
			for dx := -radius; dx <= radius; dx++ {
				xx := x + dx
				if xx >= 0 && xx < b.W && b.Pix[row+xx] != 0 {
					v = 1
					break
				}
			}
			tmp.Pix[row+x] = v
		}
	}
	out := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			v := uint8(0)
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy >= 0 && yy < b.H && tmp.Pix[yy*b.W+x] != 0 {
					v = 1
					break
				}
			}
			out.Pix[y*b.W+x] = v
		}
	}
	return out
}

// Erode shrinks foreground regions by the structuring-element radius.
func Erode(b *Binary, radius int) *Binary {
	if radius <= 0 {
		return b.Clone()
	}
	tmp := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		row := y * b.W
		for x := 0; x < b.W; x++ {
			v := uint8(1)
			for dx := -radius; dx <= radius; dx++ {
				xx := x + dx
				if xx < 0 || xx >= b.W || b.Pix[row+xx] == 0 {
					v = 0
					break
				}
			}
			tmp.Pix[row+x] = v
		}
	}
	out := NewBinary(b.W, b.H)
	for y := 0; y < b.H; y++ {
		for x := 0; x < b.W; x++ {
			v := uint8(1)
			for dy := -radius; dy <= radius; dy++ {
				yy := y + dy
				if yy < 0 || yy >= b.H || tmp.Pix[yy*b.W+x] == 0 {
					v = 0
					break
				}
			}
			out.Pix[y*b.W+x] = v
		}
	}
	return out
}

// Close performs dilation followed by erosion: it fills holes and
// joins nearby fragments without (much) growing blob extents. The
// paper's pipeline (Fig. 4) applies closing right after downsampling.
func Close(b *Binary, radius int) *Binary {
	return Erode(Dilate(b, radius), radius)
}

// Open performs erosion followed by dilation, removing isolated
// foreground specks smaller than the structuring element.
func Open(b *Binary, radius int) *Binary {
	return Dilate(Erode(b, radius), radius)
}
