package img

import "math"

// Intensity enhancement operators used by night-vision front ends.

// AdjustGamma applies the power-law transform out = 255*(in/255)^gamma
// via a lookup table, as the camera ISP's gamma block does. gamma < 1
// brightens shadows (night de-gamma), gamma > 1 deepens them.
func AdjustGamma(g *Gray, gamma float64) *Gray {
	if gamma <= 0 {
		// lint:invariant gamma is an ISP tuning constant; non-positive is a caller bug
		panic("img: AdjustGamma with non-positive gamma")
	}
	var lut [256]uint8
	for v := 0; v < 256; v++ {
		lut[v] = clamp8(int32(math.Round(255 * math.Pow(float64(v)/255, gamma))))
	}
	out := NewGray(g.W, g.H)
	for i, p := range g.Pix {
		out.Pix[i] = lut[p]
	}
	return out
}

// Equalize performs global histogram equalization: the CDF of the
// input becomes the transfer function, spreading the used intensity
// range across [0, 255]. A classic low-light enhancement; the dark
// pipeline deliberately does NOT use it (it amplifies sensor noise
// into the threshold stage), which the tests demonstrate.
func Equalize(g *Gray) *Gray {
	var hist [256]int
	for _, p := range g.Pix {
		hist[p]++
	}
	total := len(g.Pix)
	out := NewGray(g.W, g.H)
	if total == 0 {
		return out
	}
	var cdf [256]int
	run := 0
	cdfMin := -1
	for v := 0; v < 256; v++ {
		run += hist[v]
		cdf[v] = run
		if cdfMin < 0 && hist[v] > 0 {
			cdfMin = cdf[v]
		}
	}
	denom := total - cdfMin
	var lut [256]uint8
	if denom <= 0 {
		// Constant image: equalization is the identity.
		for v := 0; v < 256; v++ {
			lut[v] = uint8(v)
		}
	} else {
		for v := 0; v < 256; v++ {
			lut[v] = uint8((cdf[v] - cdfMin) * 255 / denom)
		}
	}
	for i, p := range g.Pix {
		out.Pix[i] = lut[p]
	}
	return out
}
