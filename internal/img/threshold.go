package img

// Threshold binarizes g: pixels >= t become foreground. This is the
// luminance-channel threshold stage of the dark pipeline.
func Threshold(g *Gray, t uint8) *Binary {
	out := NewBinary(g.W, g.H)
	for i, p := range g.Pix {
		if p >= t {
			out.Pix[i] = 1
		}
	}
	return out
}

// ThresholdBand binarizes g into the closed band [lo, hi]. The chroma
// threshold in the dark pipeline selects the red-shifted Cr band that
// distinguishes taillights from white road lights and headlights.
func ThresholdBand(g *Gray, lo, hi uint8) *Binary {
	out := NewBinary(g.W, g.H)
	for i, p := range g.Pix {
		if p >= lo && p <= hi {
			out.Pix[i] = 1
		}
	}
	return out
}

// OtsuThreshold returns the global threshold maximizing between-class
// variance, used by the condition monitor to normalize synthetic scenes
// and by tests as an oracle.
func OtsuThreshold(g *Gray) uint8 {
	var hist [256]int64
	for _, p := range g.Pix {
		hist[p]++
	}
	total := int64(len(g.Pix))
	if total == 0 {
		return 0
	}
	var sumAll int64
	for v, c := range hist {
		sumAll += int64(v) * c
	}
	var wB, sumB int64
	firstT, lastT, bestVar := 0, 0, float64(-1)
	for t := 0; t < 256; t++ {
		wB += hist[t]
		if wB == 0 {
			continue
		}
		wF := total - wB
		if wF == 0 {
			break
		}
		sumB += int64(t) * hist[t]
		mB := float64(sumB) / float64(wB)
		mF := float64(sumAll-sumB) / float64(wF)
		between := float64(wB) * float64(wF) * (mB - mF) * (mB - mF)
		if between > bestVar {
			bestVar = between
			firstT, lastT = t, t
		} else if between == bestVar {
			lastT = t // extend the flat maximum plateau
		}
	}
	// Midpoint of the plateau, +1 so that Threshold's ">= t" foreground
	// convention puts the upper mode in the foreground.
	th := (firstT+lastT)/2 + 1
	if th > 255 {
		th = 255
	}
	return uint8(th)
}

// MultiOtsu returns n-1 thresholds partitioning the histogram into n
// classes by maximizing total between-class variance — the "automatic
// multilevel histogram thresholding" of Chen et al. (paper reference
// [6]) used there to segment head/taillights for night surveillance.
// Supported n: 2 or 3. Thresholds are returned ascending, with the
// same ">= t is upper class" convention as Threshold.
func MultiOtsu(g *Gray, n int) []uint8 {
	if n < 2 || n > 3 {
		// lint:invariant documented contract: n is 2 or 3
		panic("img: MultiOtsu supports 2 or 3 classes")
	}
	if n == 2 {
		return []uint8{OtsuThreshold(g)}
	}
	var hist [256]float64
	for _, p := range g.Pix {
		hist[p]++
	}
	total := float64(len(g.Pix))
	if total == 0 {
		return []uint8{85, 170}
	}
	// Prefix sums for O(1) class statistics.
	var cumW, cumM [257]float64
	for v := 0; v < 256; v++ {
		cumW[v+1] = cumW[v] + hist[v]
		cumM[v+1] = cumM[v] + float64(v)*hist[v]
	}
	classVar := func(lo, hi int) float64 { // [lo, hi)
		w := cumW[hi] - cumW[lo]
		if w == 0 {
			return 0
		}
		m := (cumM[hi] - cumM[lo]) / w
		return w * m * m
	}
	best := -1.0
	t1b, t2b := 85, 170
	for t1 := 1; t1 < 255; t1++ {
		for t2 := t1 + 1; t2 < 256; t2++ {
			v := classVar(0, t1) + classVar(t1, t2) + classVar(t2, 256)
			if v > best {
				best, t1b, t2b = v, t1, t2
			}
		}
	}
	return []uint8{uint8(t1b), uint8(t2b)}
}

// DualThreshold implements the paper's background-subtraction stage:
// it thresholds the luminance plane at lumaT and selects the chroma
// band [crLo, crHi] on the Cr plane, then ANDs the two binary maps so
// only bright AND red-tinted regions (taillight candidates) survive.
func DualThreshold(c *YCbCr, lumaT, crLo, crHi uint8) *Binary {
	luma := Threshold(&Gray{W: c.W, H: c.H, Pix: c.Y}, lumaT)
	chroma := ThresholdBand(&Gray{W: c.W, H: c.H, Pix: c.Cr}, crLo, crHi)
	return And(luma, chroma)
}
