package img

import (
	"bufio"
	"fmt"
	"io"
	"os"
)

// Netpbm encoders for dumping frames and detection overlays. Binary
// PPM (P6) and PGM (P5) are universally viewable and need no external
// dependencies.

// EncodePPM writes m to w in binary PPM (P6) format.
func EncodePPM(w io.Writer, m *RGB) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P6\n%d %d\n255\n", m.W, m.H); err != nil {
		return err
	}
	if _, err := bw.Write(m.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// EncodePGM writes g to w in binary PGM (P5) format.
func EncodePGM(w io.Writer, g *Gray) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "P5\n%d %d\n255\n", g.W, g.H); err != nil {
		return err
	}
	if _, err := bw.Write(g.Pix); err != nil {
		return err
	}
	return bw.Flush()
}

// WritePPM saves m to the named file in PPM format.
func WritePPM(path string, m *RGB) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePPM(f, m); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// WritePGM saves g to the named file in PGM format.
func WritePGM(path string, g *Gray) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodePGM(f, g); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
