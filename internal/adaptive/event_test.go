package adaptive

import (
	"bytes"
	"errors"
	"testing"

	"advdet/internal/fault"
	"advdet/internal/ledger"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/synth"
)

// eventSystem builds a timing-only system with an EventLog sink (and
// optionally a ledger) attached.
func eventSystem(t *testing.T, plan *fault.Plan, led *ledger.Ledger) (*System, *EventLog) {
	t.Helper()
	events := NewEventLog()
	opt := DefaultOptions()
	opt.Initial = synth.Dusk
	opt.RunDetectors = false
	opt.FaultPlan = plan
	opt.Retry = RetryPolicy{MaxRetries: 1}
	opt.EnableMetrics = true
	opt.EventSinks = []EventSink{events}
	opt.Ledger = led
	s, err := New(Detectors{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s, events
}

// faultyDrive is the standard fire drill: corrupt dark staging plus a
// dropped PR-done IRQ, driven dusk -> dark.
func faultyDrive(t *testing.T, led *ledger.Ledger) (*System, *EventLog) {
	t.Helper()
	plan := fault.NewPlan(42).CorruptStage(CfgDark.String(), 1).DropIRQ(soc.IRQPRDone, 1)
	s, events := eventSystem(t, plan, led)
	driveToDark(s, 5, 45)
	return s, events
}

// TestEventStreamSequence: the unified stream must carry one EvFrame
// per processed frame (indices ascending and matching), every fault,
// every reconfiguration phase in order, and the mode transitions.
func TestEventStreamSequence(t *testing.T) {
	s, events := faultyDrive(t, nil)
	st := s.Stats()

	frames := events.Kind(EvFrame)
	if len(frames) != st.Frames {
		t.Fatalf("EvFrame events = %d, want one per frame (%d)", len(frames), st.Frames)
	}
	for i, ev := range frames {
		if int(ev.Frame) != i {
			t.Fatalf("frame event %d carries index %d", i, ev.Frame)
		}
		if ev.Verdict.Mode < ModeNominal || ev.Verdict.Mode > ModeDegraded {
			t.Fatalf("frame event %d: bad mode %v", i, ev.Verdict.Mode)
		}
	}

	// Events arrive in simulated-time order.
	all := events.Events()
	for i := 1; i < len(all); i++ {
		if all[i].PS < all[i-1].PS {
			t.Fatalf("event %d out of ps order: %d after %d", i, all[i].PS, all[i-1].PS)
		}
	}

	// The fire drill produces a verify failure and a watchdog trip, both
	// typed and errors.Is-dispatchable off the stream.
	var sawVerify, sawTimeout, sawIRQ bool
	for _, ev := range events.Kind(EvFault) {
		switch {
		case errors.Is(ev.Fault.Err, pr.ErrVerify):
			sawVerify = true
			if ev.Fault.Code != FaultCodeVerify {
				t.Fatalf("verify fault coded %v", ev.Fault.Code)
			}
		case errors.Is(ev.Fault.Err, pr.ErrTimeout):
			sawTimeout = true
			if ev.Fault.Code != FaultCodeTimeout {
				t.Fatalf("timeout fault coded %v", ev.Fault.Code)
			}
		case ev.Fault.Err == nil:
			if ev.Fault.Code != FaultCodeIRQDrop {
				t.Fatalf("errorless fault coded %v, want irq-drop", ev.Fault.Code)
			}
			sawIRQ = true
		}
	}
	if !sawVerify || !sawTimeout || !sawIRQ {
		t.Fatalf("missing faults on the stream: verify=%v timeout=%v irq=%v", sawVerify, sawTimeout, sawIRQ)
	}

	// Reconfiguration phases: a Requested always precedes the first
	// Launched; every Completed carries a nonzero elapsed span.
	recfg := events.Kind(EvReconfig)
	if len(recfg) == 0 {
		t.Fatal("no reconfig events on the stream")
	}
	if recfg[0].Reconfig.Phase != ReconfigRequested {
		t.Fatalf("first reconfig phase = %v, want requested", recfg[0].Reconfig.Phase)
	}
	var completed bool
	for _, ev := range recfg {
		if ev.Reconfig.Phase == ReconfigCompleted {
			completed = true
			if ev.Reconfig.ElapsedPS == 0 {
				t.Fatal("completed reconfig with zero elapsed span")
			}
			if ev.Reconfig.To != CfgDark {
				t.Fatalf("completed reconfig lands on %v, want dark", ev.Reconfig.To)
			}
		}
	}
	if !completed {
		t.Fatal("no completed reconfiguration on the stream")
	}

	// Mode transitions mirror the drive: nominal -> recovering ->
	// degraded -> nominal, each From continuing where the last To left
	// off.
	modes := events.Kind(EvModeChange)
	if len(modes) != 3 {
		t.Fatalf("mode transitions = %d, want 3 (recovering, degraded, recovered)", len(modes))
	}
	prev := ModeNominal
	for i, ev := range modes {
		if ev.ModeChange.From != prev {
			t.Fatalf("transition %d continues from %v, previous left %v", i, ev.ModeChange.From, prev)
		}
		prev = ev.ModeChange.To
	}
	if modes[1].ModeChange.To != ModeDegraded || prev != ModeNominal {
		t.Fatalf("drive never degraded and recovered: %v, final %v", modes[1].ModeChange.To, prev)
	}
}

// TestFaultLogIsDerivedView: Stats.FaultLog must be exactly the
// EvFault events that carry an error — same order, same fields.
func TestFaultLogIsDerivedView(t *testing.T) {
	s, events := faultyDrive(t, nil)
	st := s.Stats()
	derived := events.FaultRecords()
	if len(derived) != len(st.FaultLog) {
		t.Fatalf("derived view has %d records, FaultLog has %d", len(derived), len(st.FaultLog))
	}
	for i := range derived {
		d, f := derived[i], st.FaultLog[i]
		if d.PS != f.PS || d.Frame != f.Frame || d.Target != f.Target ||
			d.Attempt != f.Attempt || !errors.Is(d.Err, f.Err) {
			t.Fatalf("record %d: derived %+v != FaultLog %+v", i, d, f)
		}
	}
}

// TestEventAppendBinaryStable pins the canonical encoding: the ledger
// chains these exact bytes, so any change here is a breaking change to
// recorded drives and must be deliberate.
func TestEventAppendBinaryStable(t *testing.T) {
	ev := Event{
		Kind:   EvReconfig,
		Stream: 3,
		Frame:  7,
		PS:     0x0102030405060708,
		Reconfig: ReconfigEvent{
			Phase:     ReconfigCompleted,
			From:      CfgDayDusk,
			To:        CfgDark,
			Attempt:   2,
			ElapsedPS: 0x1122334455667788,
		},
	}
	want := []byte{
		0, 0, 0, 2, // kind
		0, 0, 0, 3, // stream
		0, 0, 0, 7, // frame
		1, 2, 3, 4, 5, 6, 7, 8, // ps
		0, 0, 0, 2, // phase (completed)
		0, 0, 0, byte(CfgDayDusk), // from
		0, 0, 0, byte(CfgDark), // to
		0, 0, 0, 2, // attempt
		0x11, 0x22, 0x33, 0x44, 0x55, 0x66, 0x77, 0x88, // elapsed
	}
	got := ev.AppendBinary(nil)
	if !bytes.Equal(got, want) {
		t.Fatalf("encoding drifted:\n got %x\nwant %x", got, want)
	}
	// Appending must extend, not clobber, the destination.
	pre := []byte{0xAA, 0xBB}
	got = ev.AppendBinary(pre)
	if !bytes.Equal(got[:2], pre) || !bytes.Equal(got[2:], want) {
		t.Fatal("AppendBinary clobbered its destination prefix")
	}

	// A fault event flattens its error into length-prefixed message
	// bytes; nil errors encode a zero length.
	fe := Event{Kind: EvFault, Fault: FaultEvent{Code: FaultCodeIRQDrop, Target: CfgDark, Attempt: 1}}
	enc := fe.AppendBinary(nil)
	if len(enc) != 20+4+4+4+4 {
		t.Fatalf("errorless fault encodes to %d bytes, want %d", len(enc), 36)
	}
}

// TestEventLogNoAliasing: Events and Kind hand back copies; mutating
// them cannot corrupt the log.
func TestEventLogNoAliasing(t *testing.T) {
	l := NewEventLog()
	l.Emit(Event{Kind: EvFrame, Frame: 1})
	l.Emit(Event{Kind: EvFault, Frame: 2})
	evs := l.Events()
	evs[0].Frame = 99
	if l.Events()[0].Frame != 1 {
		t.Fatal("mutating Events() corrupted the log")
	}
	ks := l.Kind(EvFault)
	ks[0].Frame = 99
	if l.Kind(EvFault)[0].Frame != 2 {
		t.Fatal("mutating Kind() corrupted the log")
	}
	if l.Len() != 2 {
		t.Fatalf("len = %d, want 2", l.Len())
	}
}

// TestLedgerFedOffEventStream: with a ledger installed the system
// chains every emitted event, and two identical drives produce
// identical chain heads — the recording is deterministic.
func TestLedgerFedOffEventStream(t *testing.T) {
	led1 := ledger.New(ledger.Config{})
	_, ev1 := faultyDrive(t, led1)
	led2 := ledger.New(ledger.Config{})
	faultyDrive(t, led2)

	if led1.ChainLen(0) != ev1.Len() {
		t.Fatalf("ledger chained %d events, stream carried %d", led1.ChainLen(0), ev1.Len())
	}
	h1, ok1 := led1.ChainHead(0)
	h2, ok2 := led2.ChainHead(0)
	if !ok1 || !ok2 {
		t.Fatal("missing stream-0 chain")
	}
	if h1 != h2 {
		t.Fatal("identical drives produced different chain heads")
	}
	// And the chained bytes are exactly the canonical encodings.
	events := ev1.Events()
	for i, ev := range events {
		_, payload := led1.Record(0, i)
		if !bytes.Equal(payload, ev.AppendBinary(nil)) {
			t.Fatalf("ledger record %d differs from the event's canonical encoding", i)
		}
	}
}
