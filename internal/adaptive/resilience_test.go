package adaptive

import (
	"errors"
	"testing"

	"advdet/internal/fault"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// resilientSystem builds a timing-only system with a fault plan and
// retry policy installed.
func resilientSystem(t *testing.T, initial synth.Condition, plan *fault.Plan, retry RetryPolicy) *System {
	t.Helper()
	opt := DefaultOptions()
	opt.Initial = initial
	opt.RunDetectors = false
	opt.FaultPlan = plan
	opt.Retry = retry
	opt.EnableMetrics = true
	s, err := New(Detectors{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// driveToDark runs dusk frames then dark frames through the system.
func driveToDark(s *System, duskFrames, darkFrames int) []FrameResult {
	var out []FrameResult
	for i := 0; i < duskFrames; i++ {
		r, _ := s.ProcessFrame(sceneFor(synth.Dusk, 300))
		out = append(out, r)
	}
	for i := 0; i < darkFrames; i++ {
		r, _ := s.ProcessFrame(sceneFor(synth.Dark, 5))
		out = append(out, r)
	}
	return out
}

// hasFault reports whether the fault log holds an entry wrapping the
// sentinel.
func hasFault(st Stats, sentinel error) bool {
	for _, f := range st.FaultLog {
		if errors.Is(f.Err, sentinel) {
			return true
		}
	}
	return false
}

// TestVerifyFailureRestagesAndRecovers corrupts the boot staging of
// the dark bitstream: the dusk->dark switch must fail its CRC pass,
// re-stage from PS DDR, retry, and land — and every frame in between
// must serve the last-good day-dusk model instead of dropping.
func TestVerifyFailureRestagesAndRecovers(t *testing.T) {
	plan := fault.NewPlan(1).CorruptStage(CfgDark.String(), 1)
	s := resilientSystem(t, synth.Dusk, plan, RetryPolicy{})
	results := driveToDark(s, 5, 30)

	st := s.Stats()
	if s.Loaded() != CfgDark {
		t.Fatalf("loaded = %v, want dark after recovery", s.Loaded())
	}
	if s.Mode() != ModeNominal {
		t.Fatalf("mode = %v, want nominal after recovery", s.Mode())
	}
	if st.VerifyFailures != 1 {
		t.Fatalf("verify failures = %d, want 1", st.VerifyFailures)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if len(st.Reconfigs) != 1 {
		t.Fatalf("reconfig records = %d, want 1 (retries share the record)", len(st.Reconfigs))
	}
	rec := st.Reconfigs[0]
	if rec.Attempts != 2 || rec.DonePS == 0 {
		t.Fatalf("reconfig attempts=%d done=%d, want 2 attempts and completion", rec.Attempts, rec.DonePS)
	}
	if !hasFault(st, pr.ErrVerify) {
		t.Fatalf("fault log lacks ErrVerify: %+v", st.FaultLog)
	}
	if st.StaleVehicleFrames == 0 {
		t.Fatal("no stale vehicle frames: the retry window must serve the resident model")
	}
	// The static partition is untouchable: pedestrians ran every frame.
	if st.PedestrianFrames != len(results) {
		t.Fatalf("pedestrian frames = %d, want %d", st.PedestrianFrames, len(results))
	}
	// Recovering mode was visible on the stale frames, and recovery on
	// the last.
	sawRecovering := false
	for _, r := range results {
		if r.VehicleStale && r.Mode == ModeRecovering {
			sawRecovering = true
		}
		if r.VehicleStale && r.VehicleDropped {
			t.Fatal("a frame cannot be both stale and dropped")
		}
	}
	if !sawRecovering {
		t.Fatal("no frame observed ModeRecovering while stale")
	}
	if last := results[len(results)-1]; last.Mode != ModeNominal || last.VehicleStale {
		t.Fatalf("last frame mode=%v stale=%v, want nominal and fresh", last.Mode, last.VehicleStale)
	}
	// Telemetry saw the same story.
	snap := s.Snapshot()
	if row, _ := snap.FaultByKind("verify"); row.Count != 1 {
		t.Fatalf("metrics verify count = %d, want 1", row.Count)
	}
	if row, _ := snap.FaultByKind("retry"); row.Count != 1 {
		t.Fatalf("metrics retry count = %d, want 1", row.Count)
	}
	if row, _ := snap.FaultByKind("stale-vehicle-frame"); row.Count != uint64(st.StaleVehicleFrames) {
		t.Fatalf("metrics stale count = %d, stats say %d", row.Count, st.StaleVehicleFrames)
	}
}

// TestDroppedPRDoneWatchdogRetries drops the first PR-done interrupt:
// the completion is genuinely lost, the watchdog must abandon the
// attempt after its simulated-time deadline and the retry must land.
func TestDroppedPRDoneWatchdogRetries(t *testing.T) {
	plan := fault.NewPlan(2).DropIRQ(soc.IRQPRDone, 1)
	s := resilientSystem(t, synth.Dusk, plan, RetryPolicy{})
	results := driveToDark(s, 5, 30)

	st := s.Stats()
	if s.Loaded() != CfgDark || s.Mode() != ModeNominal {
		t.Fatalf("loaded=%v mode=%v, want dark/nominal", s.Loaded(), s.Mode())
	}
	if st.WatchdogTrips != 1 {
		t.Fatalf("watchdog trips = %d, want 1", st.WatchdogTrips)
	}
	if st.Retries != 1 {
		t.Fatalf("retries = %d, want 1", st.Retries)
	}
	if st.IRQsDropped != 1 {
		t.Fatalf("IRQs dropped = %d, want 1", st.IRQsDropped)
	}
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].Attempts != 2 || st.Reconfigs[0].DonePS == 0 {
		t.Fatalf("reconfigs = %+v, want one completed record with 2 attempts", st.Reconfigs)
	}
	if !hasFault(st, pr.ErrTimeout) {
		t.Fatalf("fault log lacks ErrTimeout: %+v", st.FaultLog)
	}
	// The fabric was actively rewritten across the original stream and
	// the retry: more than the nominal single dropped frame, but
	// bounded, and pedestrians never stopped.
	if st.VehicleDropped < 2 || st.VehicleDropped > 4 {
		t.Fatalf("vehicle frames dropped = %d, want 2..4", st.VehicleDropped)
	}
	if st.PedestrianFrames != len(results) {
		t.Fatalf("pedestrian frames = %d, want %d", st.PedestrianFrames, len(results))
	}
	snap := s.Snapshot()
	if row, _ := snap.FaultByKind("watchdog"); row.Count != 1 {
		t.Fatalf("metrics watchdog count = %d, want 1", row.Count)
	}
	if row, _ := snap.FaultByKind("irq-dropped"); row.Count != 1 {
		t.Fatalf("metrics irq-dropped count = %d, want 1", row.Count)
	}
}

// TestDegradedAfterBudgetThenAutoRecovery exhausts the retry budget
// (two consecutive dropped PR-done interrupts against MaxRetries=1):
// the system must report ModeDegraded, keep serving both detectors,
// keep retrying at the capped cadence, and recover to nominal on the
// next clean completion — without operator intervention.
func TestDegradedAfterBudgetThenAutoRecovery(t *testing.T) {
	plan := fault.NewPlan(3).
		DropIRQ(soc.IRQPRDone, 1).
		DropIRQ(soc.IRQPRDone, 2)
	s := resilientSystem(t, synth.Dusk, plan, RetryPolicy{MaxRetries: 1})
	results := driveToDark(s, 5, 40)

	st := s.Stats()
	if s.Loaded() != CfgDark || s.Mode() != ModeNominal {
		t.Fatalf("loaded=%v mode=%v, want dark/nominal after auto-recovery", s.Loaded(), s.Mode())
	}
	if st.WatchdogTrips != 2 || st.Retries != 2 || st.IRQsDropped != 2 {
		t.Fatalf("trips=%d retries=%d dropped=%d, want 2/2/2",
			st.WatchdogTrips, st.Retries, st.IRQsDropped)
	}
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].Attempts != 3 {
		t.Fatalf("reconfigs = %+v, want one record with 3 attempts", st.Reconfigs)
	}
	if st.DegradedFrames == 0 {
		t.Fatal("no degraded frames recorded past the retry budget")
	}
	// Mode sequence over the drive: nominal -> recovering -> degraded
	// -> nominal, in that order.
	var seq []Mode
	for _, r := range results {
		if len(seq) == 0 || seq[len(seq)-1] != r.Mode {
			seq = append(seq, r.Mode)
		}
	}
	want := []Mode{ModeNominal, ModeRecovering, ModeDegraded, ModeNominal}
	if len(seq) != len(want) {
		t.Fatalf("mode sequence %v, want %v", seq, want)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("mode sequence %v, want %v", seq, want)
		}
	}
	if st.PedestrianFrames != len(results) {
		t.Fatalf("pedestrian frames = %d, want %d (static partition never stops)",
			st.PedestrianFrames, len(results))
	}
	snap := s.Snapshot()
	if row, _ := snap.FaultByKind("degraded-frame"); row.Count != uint64(st.DegradedFrames) {
		t.Fatalf("metrics degraded count = %d, stats say %d", row.Count, st.DegradedFrames)
	}
	if g, ok := snap.GaugeByName("mode"); !ok || g.Value != uint64(ModeNominal) {
		t.Fatalf("mode gauge = %+v, want nominal", g)
	}
}

// TestStallBeyondWatchdogAborts stalls the PR DMA mid-stream for
// longer than the watchdog deadline: the abandoned attempt's late
// completion must be swallowed (not mistaken for the retry's) and the
// retry must land.
func TestStallBeyondWatchdogAborts(t *testing.T) {
	plan := fault.NewPlan(4).StallDMA("pr-dma", 1, 4<<20, 30_000_000_000)
	s := resilientSystem(t, synth.Dusk, plan, RetryPolicy{})
	driveToDark(s, 5, 30)

	st := s.Stats()
	if s.Loaded() != CfgDark || s.Mode() != ModeNominal {
		t.Fatalf("loaded=%v mode=%v, want dark/nominal", s.Loaded(), s.Mode())
	}
	if st.WatchdogTrips != 1 {
		t.Fatalf("watchdog trips = %d, want 1", st.WatchdogTrips)
	}
	if !hasFault(st, pr.ErrTimeout) {
		t.Fatalf("fault log lacks ErrTimeout: %+v", st.FaultLog)
	}
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].DonePS == 0 {
		t.Fatalf("reconfigs = %+v, want one completed record", st.Reconfigs)
	}
}

// TestAbortMidStreamRecovers error-halts the PR DMA one MB into the
// stream: no completion, no interrupt, watchdog, retry, recovery.
func TestAbortMidStreamRecovers(t *testing.T) {
	plan := fault.NewPlan(5).AbortDMA("pr-dma", 1, 1<<20)
	s := resilientSystem(t, synth.Dusk, plan, RetryPolicy{})
	driveToDark(s, 5, 30)

	st := s.Stats()
	if s.Loaded() != CfgDark || s.Mode() != ModeNominal {
		t.Fatalf("loaded=%v mode=%v, want dark/nominal", s.Loaded(), s.Mode())
	}
	if st.WatchdogTrips != 1 || st.Retries != 1 {
		t.Fatalf("trips=%d retries=%d, want 1/1", st.WatchdogTrips, st.Retries)
	}
}

// TestConditionReversionCancelsPending makes every staging of the
// dark bitstream corrupt, so the switch can never launch; when the
// light reverts to dusk the pending transition must be cancelled, the
// mode must return to nominal, and the already-booked retry must
// no-op instead of resurrecting the transition.
func TestConditionReversionCancelsPending(t *testing.T) {
	plan := fault.NewPlan(6).CorruptStage(CfgDark.String(), 0)
	s := resilientSystem(t, synth.Dusk, plan, RetryPolicy{MaxRetries: 100})
	driveToDark(s, 5, 5)
	for i := 0; i < 10; i++ {
		s.ProcessFrame(sceneFor(synth.Dusk, 300))
	}

	st := s.Stats()
	if s.Loaded() != CfgDayDusk {
		t.Fatalf("loaded = %v, want day-dusk (switch never landed)", s.Loaded())
	}
	if s.Mode() != ModeNominal {
		t.Fatalf("mode = %v, want nominal after reversion", s.Mode())
	}
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].DonePS != 0 {
		t.Fatalf("reconfigs = %+v, want one abandoned record", st.Reconfigs)
	}
	if st.VerifyFailures == 0 || !hasFault(st, pr.ErrVerify) {
		t.Fatalf("verify failures = %d, fault log %+v", st.VerifyFailures, st.FaultLog)
	}
	// The retry engine is quiescent: more frames add no retries.
	before := st.Retries
	for i := 0; i < 10; i++ {
		r, _ := s.ProcessFrame(sceneFor(synth.Dusk, 300))
		if r.VehicleStale || r.VehicleDropped {
			t.Fatalf("frame %d stale=%v dropped=%v after reversion", r.Index, r.VehicleStale, r.VehicleDropped)
		}
	}
	if after := s.Stats().Retries; after != before {
		t.Fatalf("retries grew %d -> %d after the pending transition was cancelled", before, after)
	}
}

// TestBankSelectFaultServesPreviousModel fails the first day->dusk
// BRAM select write: the frame must keep the previous model (no
// half-switched state), count the fault, and the idempotent select
// must succeed on the next frame.
func TestBankSelectFaultServesPreviousModel(t *testing.T) {
	day := &svm.Model{W: make([]float64, 4)}
	dusk := &svm.Model{W: make([]float64, 4)}
	opt := DefaultOptions()
	opt.RunDetectors = false
	opt.EnableMetrics = true
	// The select register is written every clean day-dusk frame (the
	// write is idempotent), so the day->dusk switching write after four
	// day frames and the two-frame debounce is the 7th select.
	opt.FaultPlan = fault.NewPlan(7).FailBankSelect(7)
	s, err := New(Detectors{
		Day:  pipeline.NewDayDuskDetector(day),
		Dusk: pipeline.NewDayDuskDetector(dusk),
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(cond synth.Condition, lux float64, n int) {
		for i := 0; i < n; i++ {
			s.ProcessFrame(sceneFor(cond, lux))
		}
	}
	feed(synth.Day, 10000, 4)
	// Debounce flips the condition on the 3rd dusk frame; that frame's
	// select write is the first one since boot and is the one injected.
	feed(synth.Dusk, 300, 2)
	feed(synth.Dusk, 300, 1)
	st := s.Stats()
	if st.BankSelectFaults != 1 {
		t.Fatalf("bank-select faults = %d, want 1", st.BankSelectFaults)
	}
	if st.ModelSwitches != 0 {
		t.Fatalf("model switches = %d, want 0 (the faulted write must not switch)", st.ModelSwitches)
	}
	if _, name := s.bank.Active(); name != "day" {
		t.Fatalf("active model %q, want day (previous model keeps serving)", name)
	}
	// Next frame: the same select retries and lands.
	feed(synth.Dusk, 300, 1)
	st = s.Stats()
	if st.ModelSwitches != 1 {
		t.Fatalf("model switches = %d, want 1 after the retried select", st.ModelSwitches)
	}
	if _, name := s.bank.Active(); name != "dusk" {
		t.Fatalf("active model %q, want dusk", name)
	}
	if len(st.Reconfigs) != 0 {
		t.Fatalf("reconfigs = %d, want 0 (bank select never reconfigures)", len(st.Reconfigs))
	}
	snap := s.Snapshot()
	if row, _ := snap.FaultByKind("bank-select"); row.Count != 1 {
		t.Fatalf("metrics bank-select count = %d, want 1", row.Count)
	}
}

// TestRetryPolicyBackoff pins the exponential-backoff arithmetic.
func TestRetryPolicyBackoff(t *testing.T) {
	rp := RetryPolicy{BackoffPS: 2, BackoffMult: 2, MaxBackoffPS: 12}.withDefaults()
	want := []uint64{2, 4, 8, 12, 12}
	for i, w := range want {
		if got := rp.backoffFor(i + 1); got != w {
			t.Fatalf("backoffFor(%d) = %d, want %d", i+1, got, w)
		}
	}
	// Zero-valued policy resolves to the default.
	def := RetryPolicy{}.withDefaults()
	if def != DefaultRetryPolicy() {
		t.Fatalf("withDefaults() = %+v, want %+v", def, DefaultRetryPolicy())
	}
}

// TestModeStrings pins the wire names dashboards key on.
func TestModeStrings(t *testing.T) {
	cases := map[Mode]string{ModeNominal: "nominal", ModeRecovering: "recovering", ModeDegraded: "degraded", Mode(9): "unknown"}
	for m, w := range cases {
		if m.String() != w {
			t.Fatalf("Mode(%d).String() = %q, want %q", m, m.String(), w)
		}
	}
}
