package adaptive

import (
	"context"
	"errors"
	"testing"

	"advdet/internal/synth"
)

func TestProcessFrameCtxPreCancelled(t *testing.T) {
	s := timingSystem(t, synth.Day)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := s.ProcessFrameCtx(ctx, sceneFor(synth.Day, 10_000))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	// The aborted frame must not advance system state.
	if got := s.Stats().Frames; got != 0 {
		t.Fatalf("aborted frame counted: Frames = %d", got)
	}
}

func TestRunScenarioCtxCancelledReturnsCompletedFrames(t *testing.T) {
	s := timingSystem(t, synth.Day)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	sc := &synth.Scenario{W: 64, H: 36, Segments: []synth.Segment{{Cond: synth.Day, Frames: 5}}}
	out, err := s.RunScenarioCtx(ctx, sc)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
	if len(out) != 0 {
		t.Fatalf("pre-cancelled run completed %d frames", len(out))
	}
}

func TestRunScenarioMatchesCtxWrapper(t *testing.T) {
	sc := &synth.Scenario{W: 64, H: 36, Segments: []synth.Segment{{Cond: synth.Day, Frames: 3}}}
	a, err := timingSystem(t, synth.Day).RunScenario(sc)
	if err != nil {
		t.Fatal(err)
	}
	b, err := timingSystem(t, synth.Day).RunScenarioCtx(context.Background(), sc)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) {
		t.Fatalf("wrapper ran %d frames, ctx ran %d", len(a), len(b))
	}
	for i := range a {
		if a[i].Cond != b[i].Cond || a[i].VehicleDropped != b[i].VehicleDropped {
			t.Fatalf("frame %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}
