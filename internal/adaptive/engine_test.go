package adaptive

import (
	"sync"
	"testing"

	"advdet/internal/synth"
)

func TestEngineNewSystemSharesDetectorsAndPool(t *testing.T) {
	eng := NewEngine(Detectors{}, EngineConfig{Parallelism: 2})
	if eng.Pool().Size() != 2 {
		t.Fatalf("pool size %d, want 2", eng.Pool().Size())
	}
	opt := DefaultOptions()
	opt.RunDetectors = false
	a, err := eng.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	b, err := eng.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine() != eng || b.Engine() != eng {
		t.Fatal("systems not bound to the shared engine")
	}
	if a.Z == b.Z || a.Monitor == b.Monitor {
		t.Fatal("per-stream state must not be shared between systems")
	}
}

func TestStandaloneSystemHasNoEngine(t *testing.T) {
	s := timingSystem(t, synth.Day)
	if s.Engine() != nil {
		t.Fatalf("standalone system reports engine %v", s.Engine())
	}
}

// Timing-only systems never touch the lane pool, so any number of them
// can share a one-lane engine without contention.
func TestTimingOnlyStreamsSkipLanePool(t *testing.T) {
	eng := NewEngine(Detectors{}, EngineConfig{Parallelism: 1})
	opt := DefaultOptions()
	opt.RunDetectors = false
	sc := sceneFor(synth.Day, 10_000)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		sys, err := eng.NewSystem(opt)
		if err != nil {
			t.Fatal(err)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for f := 0; f < 30; f++ {
				if _, err := sys.ProcessFrame(sc); err != nil {
					t.Errorf("frame %d: %v", f, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	// The shared lane must still be fully available.
	if got := eng.Pool().Acquire(1); got != 1 {
		t.Fatalf("lane leaked: Acquire(1) = %d", got)
	}
	eng.Pool().Release(1)
}

func TestFrameLaneGrantReleasedEachFrame(t *testing.T) {
	eng := NewEngine(Detectors{}, EngineConfig{Parallelism: 3})
	opt := DefaultOptions()
	opt.RunDetectors = true // detectors are nil, but the grant path runs
	opt.Parallelism = 2
	sys, err := eng.NewSystem(opt)
	if err != nil {
		t.Fatal(err)
	}
	sc := sceneFor(synth.Day, 10_000)
	for f := 0; f < 5; f++ {
		if _, err := sys.ProcessFrame(sc); err != nil {
			t.Fatal(err)
		}
		if sys.grant != 0 {
			t.Fatalf("frame %d left grant %d outstanding", f, sys.grant)
		}
	}
	if got := eng.Pool().Acquire(3); got != 3 {
		t.Fatalf("lanes leaked across frames: Acquire(3) = %d", got)
	}
	eng.Pool().Release(3)
}
