// Package adaptive implements the paper's primary contribution: the
// adaptive vehicle-detection system that switches detection algorithm
// with the ambient lighting condition by partially reconfiguring the
// vehicle-detection block, while the static partition (pedestrian
// detection, capture, PR controller) runs without interruption.
package adaptive

import (
	"fmt"

	"advdet/internal/synth"
)

// Monitor classifies the external light-intensity signal into the
// three conditions with hysteresis and debouncing, so sensor noise at
// a threshold does not cause reconfiguration thrash ("An external
// signal which indicates the light intensity changes is considered to
// trigger the reconfiguration", §I).
type Monitor struct {
	// Hysteresis bands in lux: the condition moves down (darker) when
	// lux falls below *Down and up when it rises above *Up.
	DayDuskDown, DayDuskUp   float64
	DuskDarkDown, DuskDarkUp float64
	// Debounce is how many consecutive frames must agree before the
	// condition actually switches.
	Debounce int

	cur       synth.Condition
	pending   synth.Condition
	pendCount int
}

// NewMonitor returns a monitor with the default bands, starting in
// the given condition.
func NewMonitor(initial synth.Condition) *Monitor {
	return &Monitor{
		DayDuskDown: 2000, DayDuskUp: 4000,
		DuskDarkDown: 40, DuskDarkUp: 70,
		Debounce: 3,
		cur:      initial,
		pending:  initial,
	}
}

// validate panics on a nonsensical band configuration.
func (m *Monitor) validate() {
	if m.DayDuskDown > m.DayDuskUp || m.DuskDarkDown > m.DuskDarkUp ||
		m.DuskDarkUp > m.DayDuskDown || m.Debounce < 1 {
		panic(fmt.Sprintf("adaptive: invalid monitor bands %+v", m))
	}
}

// classify maps a lux reading to the raw condition given the current
// state (hysteresis makes this state-dependent).
func (m *Monitor) classify(lux float64) synth.Condition {
	switch m.cur {
	case synth.Day:
		if lux < m.DayDuskDown {
			if lux < m.DuskDarkDown {
				return synth.Dark
			}
			return synth.Dusk
		}
		return synth.Day
	case synth.Dusk:
		if lux > m.DayDuskUp {
			return synth.Day
		}
		if lux < m.DuskDarkDown {
			return synth.Dark
		}
		return synth.Dusk
	default: // Dark
		if lux > m.DayDuskUp {
			return synth.Day
		}
		if lux > m.DuskDarkUp {
			return synth.Dusk
		}
		return synth.Dark
	}
}

// Update feeds one sensor reading and returns the (debounced)
// current condition.
func (m *Monitor) Update(lux float64) synth.Condition {
	m.validate()
	raw := m.classify(lux)
	if raw == m.cur {
		m.pending = m.cur
		m.pendCount = 0
		return m.cur
	}
	if raw != m.pending {
		m.pending = raw
		m.pendCount = 1
	} else {
		m.pendCount++
	}
	if m.pendCount >= m.Debounce {
		m.cur = m.pending
		m.pendCount = 0
	}
	return m.cur
}

// Current returns the present condition without feeding a sample.
func (m *Monitor) Current() synth.Condition { return m.cur }
