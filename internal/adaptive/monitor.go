// Package adaptive implements the paper's primary contribution: the
// adaptive vehicle-detection system that switches detection algorithm
// with the ambient lighting condition by partially reconfiguring the
// vehicle-detection block, while the static partition (pedestrian
// detection, capture, PR controller) runs without interruption.
//
// lint:simtime
package adaptive

import (
	"fmt"

	"advdet/internal/synth"
)

// Monitor classifies the external light-intensity signal into the
// three conditions with hysteresis and debouncing, so sensor noise at
// a threshold does not cause reconfiguration thrash ("An external
// signal which indicates the light intensity changes is considered to
// trigger the reconfiguration", §I).
type Monitor struct {
	// Hysteresis bands in lux: the condition moves down (darker) when
	// lux falls below *Down and up when it rises above *Up.
	DayDuskDown, DayDuskUp   float64
	DuskDarkDown, DuskDarkUp float64
	// Debounce is how many consecutive frames must agree before the
	// condition actually switches.
	Debounce int

	cur       synth.Condition
	pending   synth.Condition
	pendCount int
}

// NewMonitor returns a monitor with the default bands, starting in
// the given condition.
func NewMonitor(initial synth.Condition) *Monitor {
	return &Monitor{
		DayDuskDown: 2000, DayDuskUp: 4000,
		DuskDarkDown: 40, DuskDarkUp: 70,
		Debounce: 3,
		cur:      initial,
		pending:  initial,
	}
}

// Validate reports whether the band configuration is coherent: each
// hysteresis pair must be ordered, the dusk/dark band must sit below
// the day/dusk band, and debouncing needs at least one frame.
// NewMonitor returns a valid configuration; callers that mutate the
// exported bands should re-run Validate — System.ProcessFrame does so
// every frame and surfaces the error.
func (m *Monitor) Validate() error {
	if m.DayDuskDown > m.DayDuskUp || m.DuskDarkDown > m.DuskDarkUp ||
		m.DuskDarkUp > m.DayDuskDown || m.Debounce < 1 {
		return fmt.Errorf("adaptive: invalid monitor bands %+v", m)
	}
	return nil
}

// classify maps a lux reading to the raw condition given the current
// state (hysteresis makes this state-dependent).
func (m *Monitor) classify(lux float64) synth.Condition {
	switch m.cur {
	case synth.Day:
		if lux < m.DayDuskDown {
			if lux < m.DuskDarkDown {
				return synth.Dark
			}
			return synth.Dusk
		}
		return synth.Day
	case synth.Dusk:
		if lux > m.DayDuskUp {
			return synth.Day
		}
		if lux < m.DuskDarkDown {
			return synth.Dark
		}
		return synth.Dusk
	default: // Dark
		if lux > m.DayDuskUp {
			return synth.Day
		}
		if lux > m.DuskDarkUp {
			return synth.Dusk
		}
		return synth.Dark
	}
}

// Update feeds one sensor reading and returns the (debounced)
// current condition. Band sanity is Validate's job, not Update's:
// classification on unvalidated bands is merely unspecified, never a
// crash.
func (m *Monitor) Update(lux float64) synth.Condition {
	raw := m.classify(lux)
	if raw == m.cur {
		m.pending = m.cur
		m.pendCount = 0
		return m.cur
	}
	if raw != m.pending {
		m.pending = raw
		m.pendCount = 1
	} else {
		m.pendCount++
	}
	if m.pendCount >= m.Debounce {
		m.cur = m.pending
		m.pendCount = 0
	}
	return m.cur
}

// Current returns the present condition without feeding a sample.
func (m *Monitor) Current() synth.Condition { return m.cur }
