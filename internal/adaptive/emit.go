package adaptive

import (
	"errors"

	"advdet/internal/metrics"
	"advdet/internal/pr"
)

// This file routes the event stream to its consumers. emit is the
// single choke point: it stamps the event with stream/frame/timestamp
// and fans it out to (1) the derived Stats views, (2) the metrics
// registry, (3) the user's EventSinks, (4) the ledger. Stats.FaultLog
// and the fault/mode metrics counters are therefore projections of the
// same stream any external sink sees — one source of truth.
//
// The fan-out is allocation-free: Event travels by value, the ledger
// encodes into a reusable per-system scratch buffer, and with nothing
// attached the whole path is a few nil checks.

// emit stamps and delivers one event. Callers fill Kind and the active
// payload only.
func (s *System) emit(ev Event) {
	ev.Stream = s.Opt.StreamID
	ev.Frame = int32(s.frameIdx)
	ev.PS = s.Z.Sim.Now()
	s.applyStats(ev)
	s.applyMetrics(ev)
	for _, sink := range s.sinks {
		sink.Emit(ev)
	}
	if s.led != nil {
		s.ledBuf = ev.AppendBinary(s.ledBuf[:0])
		s.led.Append(ev.Stream, ev.PS, s.ledBuf)
	}
}

// applyStats maintains the legacy derived views: Stats.FaultLog is the
// projection of EvFault events that carry an error (kept for
// compatibility; subscribe an EventSink for the full stream).
func (s *System) applyStats(ev Event) {
	if ev.Kind != EvFault || ev.Fault.Err == nil {
		return
	}
	s.stats.FaultLog = append(s.stats.FaultLog, FaultRecord{
		PS:      ev.PS,
		Frame:   int(ev.Frame),
		Target:  ev.Fault.Target,
		Attempt: int(ev.Fault.Attempt),
		Err:     ev.Fault.Err,
	})
}

// applyMetrics projects the event stream onto the telemetry registry —
// the fault counters, reconfiguration stages and mode gauge are views
// of the same events every other sink receives. Nil-safe via the
// registry's nil-receiver contract, but guarded anyway to skip the
// switch entirely when metrics are off.
func (s *System) applyMetrics(ev Event) {
	if s.metrics == nil {
		return
	}
	switch ev.Kind {
	case EvFrame:
		if ev.Verdict.VehicleStale {
			s.metrics.FaultAdd(metrics.FaultStaleVehicleFrame)
		}
		if ev.Verdict.Mode == ModeDegraded {
			s.metrics.FaultAdd(metrics.FaultDegradedFrame)
		}
	case EvModelSwitch:
		s.metrics.StageObserve(metrics.StageModelSelect, 0, 0)
	case EvReconfig:
		switch ev.Reconfig.Phase {
		case ReconfigCompleted:
			s.metrics.StageObserve(metrics.StageReconfig, ev.Reconfig.ElapsedPS, 0)
		case ReconfigRetryScheduled:
			s.metrics.FaultAdd(metrics.FaultRetry)
			s.metrics.StageObserve(metrics.StageReconfigFault, ev.Reconfig.ElapsedPS, 0)
		}
	case EvFault:
		switch ev.Fault.Code {
		case FaultCodeVerify:
			s.metrics.FaultAdd(metrics.FaultVerify)
		case FaultCodeTimeout:
			s.metrics.FaultAdd(metrics.FaultWatchdog)
		case FaultCodeBankSelect:
			s.metrics.FaultAdd(metrics.FaultBankSelect)
		case FaultCodeIRQDrop:
			s.metrics.FaultAdd(metrics.FaultIRQDrop)
		}
	case EvModeChange:
		s.metrics.SetGauge(metrics.GaugeMode, uint64(ev.ModeChange.To))
	}
}

// faultCodeFor classifies a reconfiguration error into its encodable
// FaultCode via the typed sentinels.
func faultCodeFor(err error) FaultCode {
	switch {
	case errors.Is(err, pr.ErrVerify):
		return FaultCodeVerify
	case errors.Is(err, pr.ErrTimeout):
		return FaultCodeTimeout
	case errors.Is(err, pr.ErrBusy):
		return FaultCodeBusy
	case errors.Is(err, ErrBankSelect):
		return FaultCodeBankSelect
	default:
		return FaultCodeOther
	}
}
