package adaptive

import (
	"math"

	"advdet/internal/img"
)

// EstimateLux infers an ambient-light reading from the frame itself,
// for platforms without the external light-intensity signal the paper
// assumes (Options.SenseFromImage selects it). The estimate uses mean
// luminance with a saturated-pixel correction: at night, bright lamps
// inflate the mean without indicating ambient light, so saturated
// pixels are excluded.
//
// The luma->lux mapping is log-linear, calibrated against the
// synthetic scene generator's sensor model (see TestEstimateLux):
// ~15 luma ≈ 5 lux (dark), ~130 luma ≈ 15000 lux (day).
func EstimateLux(frame *img.RGB) float64 {
	g := img.RGBToGray(frame)
	var sum, n float64
	for _, p := range g.Pix {
		if p >= 240 {
			continue // saturated light source, not ambient
		}
		sum += float64(p)
		n++
	}
	if n == 0 {
		return 1 // entire frame saturated: treat as a flash, not day
	}
	meanLuma := sum / n
	const (
		a = 0.03026 // log10(lux) slope per luma step
		b = 0.246   // intercept
	)
	return math.Pow(10, a*meanLuma+b)
}
