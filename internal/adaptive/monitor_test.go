package adaptive

import (
	"testing"

	"advdet/internal/synth"
)

func feedN(m *Monitor, lux float64, n int) synth.Condition {
	var c synth.Condition
	for i := 0; i < n; i++ {
		c = m.Update(lux)
	}
	return c
}

func TestMonitorStartsInInitial(t *testing.T) {
	m := NewMonitor(synth.Dusk)
	if m.Current() != synth.Dusk {
		t.Fatal("wrong initial condition")
	}
}

func TestMonitorDebounce(t *testing.T) {
	m := NewMonitor(synth.Day)
	// Two dark samples are not enough with Debounce=3.
	if got := feedN(m, 10, 2); got != synth.Day {
		t.Fatalf("switched after 2 samples: %v", got)
	}
	if got := feedN(m, 10, 1); got != synth.Dark {
		t.Fatalf("did not switch after 3 samples: %v", got)
	}
}

func TestMonitorTransitionsThroughAllConditions(t *testing.T) {
	m := NewMonitor(synth.Day)
	if got := feedN(m, 500, 3); got != synth.Dusk {
		t.Fatalf("day->dusk failed: %v", got)
	}
	if got := feedN(m, 5, 3); got != synth.Dark {
		t.Fatalf("dusk->dark failed: %v", got)
	}
	if got := feedN(m, 500, 3); got != synth.Dusk {
		t.Fatalf("dark->dusk failed: %v", got)
	}
	if got := feedN(m, 10000, 3); got != synth.Day {
		t.Fatalf("dusk->day failed: %v", got)
	}
}

func TestMonitorHysteresisNoChatter(t *testing.T) {
	// A reading between the down and up thresholds must not cause a
	// switch in either direction.
	m := NewMonitor(synth.Day)
	if got := feedN(m, 3000, 10); got != synth.Day {
		t.Fatalf("day lost at mid-band: %v", got)
	}
	m2 := NewMonitor(synth.Dusk)
	if got := feedN(m2, 3000, 10); got != synth.Dusk {
		t.Fatalf("dusk lost at mid-band: %v", got)
	}
}

func TestMonitorDirectDayToDark(t *testing.T) {
	// Driving into an unlit tunnel: lux collapses straight past the
	// dusk band.
	m := NewMonitor(synth.Day)
	if got := feedN(m, 2, 3); got != synth.Dark {
		t.Fatalf("day->dark failed: %v", got)
	}
}

func TestMonitorNoiseSpikeIgnored(t *testing.T) {
	m := NewMonitor(synth.Dark)
	m.Update(5)
	m.Update(500) // single headlight flash
	m.Update(5)
	m.Update(5)
	if m.Current() != synth.Dark {
		t.Fatal("single spike flipped the condition")
	}
}

func TestMonitorDebounceOneSwitchesImmediately(t *testing.T) {
	// Debounce=1 is the degenerate-but-valid minimum: the first
	// disagreeing frame switches, with no waiting period.
	m := NewMonitor(synth.Day)
	m.Debounce = 1
	if err := m.Validate(); err != nil {
		t.Fatalf("Debounce=1 rejected: %v", err)
	}
	if got := m.Update(10); got != synth.Dark {
		t.Fatalf("first dark frame with Debounce=1 gave %v, want immediate switch", got)
	}
	if got := m.Update(10000); got != synth.Day {
		t.Fatalf("first day frame with Debounce=1 gave %v, want immediate switch", got)
	}
}

func TestMonitorOscillationAtHysteresisBoundary(t *testing.T) {
	// Readings landing exactly ON the band edges (the strict < / >
	// comparisons) belong to the current condition, so a signal
	// oscillating between the two edge values of the dusk/dark band
	// must never switch, from either side.
	m := NewMonitor(synth.Dusk)
	for i := 0; i < 20; i++ {
		lux := m.DuskDarkDown // exactly 40: not < 40, stays dusk
		if i%2 == 1 {
			lux = m.DuskDarkUp // exactly 70
		}
		if got := m.Update(lux); got != synth.Dusk {
			t.Fatalf("boundary oscillation flipped dusk to %v at frame %d", got, i)
		}
	}
	m = NewMonitor(synth.Dark)
	for i := 0; i < 20; i++ {
		lux := m.DuskDarkUp // exactly 70: not > 70, stays dark
		if i%2 == 1 {
			lux = m.DuskDarkDown
		}
		if got := m.Update(lux); got != synth.Dark {
			t.Fatalf("boundary oscillation flipped dark to %v at frame %d", got, i)
		}
	}
}

func TestMonitorPendingSwitchCancelledByAgreement(t *testing.T) {
	// A single frame agreeing with the current condition must fully
	// reset the debounce counter: two dark frames, one dusk frame,
	// then two more dark frames is never three consecutive darks.
	m := NewMonitor(synth.Dusk)
	feedN(m, 5, 2) // pending dark, one short of Debounce=3
	if got := m.Update(300); got != synth.Dusk {
		t.Fatalf("agreement frame gave %v", got)
	}
	if got := feedN(m, 5, 2); got != synth.Dusk {
		t.Fatalf("switched after 2 darks post-reset: %v (stale debounce counter)", got)
	}
	if got := m.Update(5); got != synth.Dark {
		t.Fatalf("third consecutive dark gave %v, want the switch", got)
	}
}

func TestMonitorInvalidBandsError(t *testing.T) {
	m := NewMonitor(synth.Day)
	if err := m.Validate(); err != nil {
		t.Fatalf("default bands invalid: %v", err)
	}
	m.DayDuskDown = 10_000 // above DayDuskUp
	if err := m.Validate(); err == nil {
		t.Fatal("inverted day/dusk band not rejected")
	}
	m = NewMonitor(synth.Day)
	m.Debounce = 0
	if err := m.Validate(); err == nil {
		t.Fatal("zero debounce not rejected")
	}
}
