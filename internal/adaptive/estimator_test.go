package adaptive

import (
	"testing"

	"advdet/internal/img"
	"advdet/internal/synth"
)

func renderCond(seed uint64, cond synth.Condition) *synth.Scene {
	return synth.RenderScene(synth.NewRNG(seed), synth.DefaultSceneConfig(160, 90, cond))
}

func TestEstimateLuxSeparatesConditions(t *testing.T) {
	// Image-based estimates must fall into the monitor's bands for
	// the right condition on a strong majority of scenes.
	type band struct{ lo, hi float64 }
	bands := map[synth.Condition]band{
		synth.Day:  {4000, 1e9},
		synth.Dusk: {40, 4000},
		synth.Dark: {0, 70},
	}
	for cond, b := range bands {
		hits := 0
		for s := uint64(0); s < 20; s++ {
			lux := EstimateLux(renderCond(100+s, cond).Frame)
			if lux >= b.lo && lux <= b.hi {
				hits++
			}
		}
		if hits < 16 {
			t.Errorf("%v: only %d/20 estimates in band [%v, %v]", cond, hits, b.lo, b.hi)
		}
	}
}

func TestEstimateLuxIgnoresSaturatedLamps(t *testing.T) {
	// A dark frame with huge bright lamps must still read as dark.
	m := img.NewRGB(100, 100)
	m.Fill(10, 10, 14)
	img.FillRect(m, img.Rect{X0: 10, Y0: 10, X1: 40, Y1: 40}, 255, 250, 245)
	img.FillRect(m, img.Rect{X0: 60, Y0: 10, X1: 90, Y1: 40}, 255, 250, 245)
	if lux := EstimateLux(m); lux > 40 {
		t.Fatalf("lamp-heavy dark frame estimated at %v lux", lux)
	}
}

func TestEstimateLuxFullySaturated(t *testing.T) {
	m := img.NewRGB(8, 8)
	m.Fill(255, 255, 255)
	if lux := EstimateLux(m); lux != 1 {
		t.Fatalf("fully saturated frame = %v lux, want the flash fallback", lux)
	}
}

func TestSystemWithImageSensing(t *testing.T) {
	// The system must still reconfigure into dark using only frame
	// content (no sensor).
	opt := DefaultOptions()
	opt.Initial = synth.Dusk
	opt.RunDetectors = false
	opt.SenseFromImage = true
	s, err := New(Detectors{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 5; i++ {
		s.ProcessFrame(renderCond(200+i, synth.Dusk))
	}
	for i := uint64(0); i < 15; i++ {
		s.ProcessFrame(renderCond(300+i, synth.Dark))
	}
	st := s.Stats()
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].To != CfgDark {
		t.Fatalf("image sensing failed to trigger the dark reconfiguration: %+v", st.Reconfigs)
	}
}
