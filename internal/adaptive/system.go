package adaptive

import (
	"context"
	"errors"
	"fmt"
	"time"

	"advdet/internal/fault"
	"advdet/internal/fpga"
	"advdet/internal/img"
	"advdet/internal/ledger"
	"advdet/internal/metrics"
	"advdet/internal/par"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/synth"
	"advdet/internal/track"
)

// ConfigID names the two partial configurations of §IV: day and dusk
// share one bitstream (same HOG+SVM hardware, two models in BRAM);
// dark has its own.
type ConfigID int

const (
	CfgDayDusk ConfigID = iota
	CfgDark
)

func (c ConfigID) String() string {
	if c == CfgDark {
		return "dark"
	}
	return "day-dusk"
}

// configFor maps a lighting condition to the partial configuration
// implementing its detector.
func configFor(c synth.Condition) ConfigID {
	if c == synth.Dark {
		return CfgDark
	}
	return CfgDayDusk
}

// Detectors bundles the trained detectors the system switches between.
type Detectors struct {
	Day        *pipeline.DayDuskDetector
	Dusk       *pipeline.DayDuskDetector
	Dark       *pipeline.DarkDetector
	Pedestrian *pipeline.PedestrianDetector
}

// withScanOptions applies the system-level scan flags to the HOG
// detectors by shallow-cloning the affected ones: Detectors values are
// shared across streams of one engine (and the models across engines),
// so the per-system flags must never write through the shared
// pointers.
func (d Detectors) withScanOptions(opt Options) Detectors {
	if !opt.ScanQuantized && !opt.ScanNoEarlyReject && !opt.ScanTemporalCache {
		return d
	}
	// Each clone gets its OWN temporal cache: a cache binds a detector
	// to one frame sequence, so sharing one across streams (or across
	// the day/dusk/pedestrian scans of one stream, which see different
	// pyramids) would poison it every frame.
	if d.Day != nil {
		c := *d.Day
		c.Quantized, c.NoEarlyReject = opt.ScanQuantized, opt.ScanNoEarlyReject
		if opt.ScanTemporalCache {
			c.Temporal = pipeline.NewTemporalCache()
		}
		d.Day = &c
	}
	if d.Dusk != nil {
		c := *d.Dusk
		c.Quantized, c.NoEarlyReject = opt.ScanQuantized, opt.ScanNoEarlyReject
		if opt.ScanTemporalCache {
			c.Temporal = pipeline.NewTemporalCache()
		}
		d.Dusk = &c
	}
	if d.Pedestrian != nil {
		c := *d.Pedestrian
		c.Quantized, c.NoEarlyReject = opt.ScanQuantized, opt.ScanNoEarlyReject
		if opt.ScanTemporalCache {
			c.Temporal = pipeline.NewTemporalCache()
		}
		d.Pedestrian = &c
	}
	return d
}

// invalidateTemporalCaches drops every per-detector temporal scan
// cache. Called when a partial reconfiguration is requested: the
// hardware analogue (persistent BRAM line buffers in the vehicle
// partition) does not survive a fabric rewrite, and the frame dropped
// during reconfiguration breaks the consecutive-frame contract the
// cache's dirty-tile deltas assume.
func (s *System) invalidateTemporalCaches() {
	for _, tc := range []*pipeline.TemporalCache{
		detTemporal(s.Dets.Day), detTemporal(s.Dets.Dusk), pedTemporal(s.Dets.Pedestrian),
	} {
		if tc != nil {
			tc.Invalidate()
		}
	}
}

func detTemporal(d *pipeline.DayDuskDetector) *pipeline.TemporalCache {
	if d == nil {
		return nil
	}
	return d.Temporal
}

func pedTemporal(d *pipeline.PedestrianDetector) *pipeline.TemporalCache {
	if d == nil {
		return nil
	}
	return d.Temporal
}

// Options configures the system.
type Options struct {
	// FPS is the camera frame rate (50 in the paper).
	FPS int
	// BitstreamBytes is the partial bitstream size (defaults to the
	// floorplan model's ~8 MB).
	BitstreamBytes int
	// Initial is the boot lighting condition.
	Initial synth.Condition
	// RunDetectors enables actual software detection per frame; when
	// false the system models timing and reconfiguration only (for
	// long timing-focused scenarios).
	RunDetectors bool
	// SenseFromImage estimates ambient light from the frame pixels
	// (EstimateLux) instead of reading the scene's sensor value —
	// the fallback for platforms without the paper's external light
	// signal.
	SenseFromImage bool
	// EnableTracking runs a Kalman/Hungarian tracker over the
	// detections. Confirmed tracks appear in FrameResult.Tracks and
	// coast through the one-frame reconfiguration dropout.
	EnableTracking bool
	// Parallelism bounds the detection worker pool: the software
	// model of the PL's replicated window-evaluation lanes. Values
	// <= 0 select runtime.NumCPU(); 1 runs every scan on the calling
	// goroutine. Detection output is identical for every setting.
	Parallelism int
	// EnableMetrics attaches the frame-budget telemetry registry
	// (internal/metrics): per-stage counters and histograms in
	// simulated and wall time plus slot-deadline accounting, exposed
	// through Metrics() and Snapshot(). Disabled, the per-frame path
	// performs no metrics work at all.
	EnableMetrics bool
	// FaultPlan installs a fault injector on the reconfiguration
	// datapath (staging CRC, PR DMA, PR-done IRQ, model-bank select).
	// Nil disables injection at zero cost.
	FaultPlan *fault.Plan
	// Retry bounds the reconfiguration watchdog and retry/backoff
	// loop. The zero value selects DefaultRetryPolicy; zero fields are
	// filled from it.
	Retry RetryPolicy
	// ScanQuantized scores the HOG scans through the fixed-point
	// block-response datapath (float fallback for borderline margins:
	// identical detection boxes, scores within the quantizer's error
	// bound). The system's detectors are shallow-cloned with the flag
	// set, so shared Detectors values are never mutated.
	ScanQuantized bool
	// ScanNoEarlyReject disables the partial-margin early exit in the
	// HOG scans, scoring every window from the full response plane.
	ScanNoEarlyReject bool
	// ScanTemporalCache reuses each HOG detector's feature/block/
	// response stack across consecutive frames, recomputing only what
	// each frame's dirty tiles invalidate (byte-identical output; see
	// pipeline.NewTemporalCache). Every detector clone gets its own
	// cache, so the option is safe across streams sharing Detectors.
	// Caches are invalidated whenever a partial reconfiguration is
	// requested.
	ScanTemporalCache bool
	// EventSinks subscribes consumers to the unified typed event
	// stream: every frame verdict, model select, reconfiguration
	// outcome, fault and mode transition (see Event). Sinks are called
	// synchronously on the frame-processing goroutine in deterministic
	// per-stream order; the slice is copied at boot.
	EventSinks []EventSink
	// Ledger appends every event's canonical encoding to this
	// tamper-evident ledger. Streams sharing an engine share one
	// ledger (each keeps its own hash chain inside it, keyed by
	// StreamID) under a single engine-level Merkle sealer.
	Ledger *ledger.Ledger
	// StreamID labels this system's events and its chain in a shared
	// ledger. Engine streams get the engine-assigned id; standalone
	// systems default to 0.
	StreamID int32
}

// DefaultOptions returns the paper's operating point.
func DefaultOptions() Options {
	return Options{
		FPS:            50,
		BitstreamBytes: fpga.DefaultFloorplan().PartialBitstreamBytes(),
		Initial:        synth.Day,
		RunDetectors:   true,
	}
}

// Reconfiguration records one requested configuration transition of
// the vehicle detection block. A transition may take several attempts
// when faults are injected; Attempts counts them.
type Reconfiguration struct {
	Frame    int
	From, To ConfigID
	StartPS  uint64
	DonePS   uint64 // zero until complete
	Attempts int
}

// Stats accumulates system-level counters.
type Stats struct {
	Frames           int
	VehicleDropped   int // vehicle-detection frames lost to reconfiguration
	PedestrianFrames int // pedestrian frames processed (never drops)
	ModelSwitches    int // day<->dusk BRAM model selects (free: no reconfig)
	// SlotOverruns counts streams whose hardware processing (DMA +
	// pipeline, including any port queueing) finished after the frame
	// slot's deadline — the soft real-time violations that would
	// accumulate into dropped frames. The comparison is against the
	// absolute slot end (slot start + period), so a stream launched
	// late in the slot (the post-reconfiguration catch-up frame) is
	// held to the same deadline as one launched at slot start. Zero at
	// the paper's 50 fps operating point.
	SlotOverruns int
	Reconfigs    []Reconfiguration
	// Resilience counters: faults observed on the reconfiguration
	// datapath and how the system absorbed them.
	WatchdogTrips      int // PR-done deadlines missed, attempt abandoned
	Retries            int // reconfiguration retries scheduled
	VerifyFailures     int // staged bitstreams that failed the CRC pass
	StaleVehicleFrames int // frames served from the last-good resident model
	DegradedFrames     int // frames completed in ModeDegraded
	BankSelectFaults   int // failed BRAM model-select writes
	IRQsDropped        int // PR-done assertions lost (filled by Stats)
	// FaultLog records every fault in order; Err wraps the typed
	// sentinels (pr.ErrVerify, pr.ErrTimeout, pr.ErrBusy,
	// ErrBankSelect) for errors.Is dispatch.
	//
	// FaultLog is a derived view of the typed event stream — the
	// projection of EvFault events that carry an error — kept for
	// compatibility. New code should subscribe an EventSink
	// (Options.EventSinks), which additionally sees frame verdicts,
	// model selects, reconfiguration phases, IRQ drops and mode
	// transitions.
	FaultLog []FaultRecord
}

// FrameResult is the output for one input frame.
type FrameResult struct {
	Index       int
	Cond        synth.Condition
	Vehicles    []pipeline.Detection
	Pedestrians []pipeline.Detection
	// Tracks holds the confirmed tracks after this frame when
	// tracking is enabled (nil otherwise).
	Tracks          []*track.Track
	VehicleDropped  bool
	ReconfigStarted bool
	// VehicleStale marks a frame whose vehicle detections came from
	// the last-good resident model because the wanted switch had not
	// landed yet (the graceful-degradation path).
	VehicleStale bool
	// Mode is the resilience state at the end of the frame.
	Mode Mode
}

// System is the adaptive detection unit: the SoC platform, the PR
// controller with both bitstreams staged in PL DDR, the condition
// monitor and the detector set.
type System struct {
	Z       *soc.Zynq
	PR      *pr.DMAICAP
	Monitor *Monitor
	Dets    Detectors
	Opt     Options

	// eng is the shared engine this stream was created from, nil for
	// the classic standalone path. grant holds the scan lanes borrowed
	// from the engine pool for the frame currently being processed.
	eng   *Engine
	grant int

	loaded        ConfigID
	reconfiguring bool
	epoch         uint64 // simulated time when boot finished; slot 0 starts here
	frameIdx      int
	stats         Stats
	tracker       *track.Tracker
	bank          *ModelBank
	metrics       *metrics.Registry

	// Resilience state (see resilience.go). pending is an open
	// transition toward pendTarget; attemptGen/inFlightGen pair each
	// launched attempt with its watchdog and PR-done completion so
	// stale events are ignored.
	mode           Mode
	pending        bool
	pendTarget     ConfigID
	attemptGen     uint64
	inFlightGen    uint64
	inFlightTarget ConfigID
	retries        int
	recIdx         int // index of the open Reconfiguration record
	seenIRQDrops   int

	// Event-stream fan-out (see emit.go): subscribed sinks, the shared
	// tamper-evident ledger and its reusable encoding scratch.
	sinks  []EventSink
	led    *ledger.Ledger
	ledBuf []byte
}

// New boots a standalone system: it builds the platform, stages both
// partial bitstreams into the PL-dedicated DDR (the paper's one-time
// boot cost) and loads the configuration for the initial condition.
// The system owns its Parallelism budget outright; to share detectors
// and scan lanes across streams, build an Engine and use
// Engine.NewSystem instead.
func New(dets Detectors, opt Options) (*System, error) {
	return newSystem(nil, dets, opt)
}

// newSystem is the common boot path behind New and Engine.NewSystem.
func newSystem(eng *Engine, dets Detectors, opt Options) (*System, error) {
	if opt.FPS <= 0 {
		return nil, fmt.Errorf("adaptive: FPS must be positive, got %d", opt.FPS)
	}
	if opt.BitstreamBytes <= 0 {
		return nil, fmt.Errorf("adaptive: bitstream size must be positive, got %d", opt.BitstreamBytes)
	}
	opt.Retry = opt.Retry.withDefaults()
	dets = dets.withScanOptions(opt)
	s := &System{
		eng:     eng,
		Z:       soc.NewZynq(),
		PR:      pr.NewDMAICAP(),
		Monitor: NewMonitor(opt.Initial),
		Dets:    dets,
		Opt:     opt,
		loaded:  configFor(opt.Initial),
	}
	if opt.EnableTracking {
		s.tracker = track.NewTracker(track.DefaultConfig())
	}
	if opt.EnableMetrics {
		s.metrics = metrics.NewRegistry()
	}
	// Copy the sink list so a caller mutating their options slice after
	// boot can never alias the emission path.
	s.sinks = append([]EventSink(nil), opt.EventSinks...)
	s.led = opt.Ledger
	if s.led != nil {
		s.ledBuf = make([]byte, 0, 128)
	}
	// Fault wiring happens before boot staging so even the boot-time
	// transfers are injectable; reconfiguration completion is
	// IRQ-driven, so a dropped PR-done genuinely loses the completion.
	s.Z.SetFaultPlan(opt.FaultPlan)
	s.PR.SetFaultPlan(opt.FaultPlan)
	s.Z.IRQ.Register(soc.IRQPRDone, s.onPRDone)
	if dets.Day != nil && dets.Dusk != nil {
		s.bank = NewModelBank(s.Z.Sim, s.Z.GP0, dets.Day.Model, dets.Dusk.Model)
		s.bank.SetFaultPlan(opt.FaultPlan)
		if opt.Initial == synth.Dusk {
			if err := s.bank.Select(1); err != nil {
				return nil, fmt.Errorf("adaptive: selecting dusk model at boot: %w", err)
			}
		}
	}
	s.PR.Stage(s.Z, CfgDayDusk.String(), opt.BitstreamBytes, nil)
	s.PR.Stage(s.Z, CfgDark.String(), opt.BitstreamBytes, nil)
	s.Z.Sim.Run() // complete boot staging before frame 0
	// The camera's slot clock is anchored here: frame 0's slot begins
	// when boot completes, so the one-time staging cost is not charged
	// against frame 0's real-time budget.
	s.epoch = s.Z.Sim.Now()
	return s, nil
}

// psPerSecond is one second of simulated time.
const psPerSecond = 1_000_000_000_000

// slotStartPS returns the exact start of frame slot i in simulated
// picoseconds, anchored at the post-boot epoch. Whole seconds resolve
// exactly and the remaining frames split the second with integer
// arithmetic, so the non-divisible picoseconds of rates like 30 or
// 60 fps distribute across the second instead of accumulating: slot
// boundaries never drift from real time no matter how long the
// scenario runs.
func (s *System) slotStartPS(i int) uint64 {
	fps := uint64(s.Opt.FPS)
	return s.epoch + uint64(i)/fps*psPerSecond + uint64(i)%fps*psPerSecond/fps
}

// Loaded returns the currently loaded partial configuration.
func (s *System) Loaded() ConfigID { return s.loaded }

// Reconfiguring reports whether a partial reconfiguration is in
// flight.
func (s *System) Reconfiguring() bool { return s.reconfiguring }

// Stats returns a copy of the accumulated counters.
func (s *System) Stats() Stats {
	cp := s.stats
	cp.Reconfigs = append([]Reconfiguration(nil), s.stats.Reconfigs...)
	cp.FaultLog = append([]FaultRecord(nil), s.stats.FaultLog...)
	cp.IRQsDropped = s.Z.IRQ.Dropped(soc.IRQPRDone)
	return cp
}

// workers resolves how many scan lanes this frame's detection work may
// use: the lanes granted by the engine pool when the system is bound
// to an engine, otherwise the raw Parallelism knob. Detection output
// is byte-identical for every value (the par determinism contract), so
// a thin grant under fleet load shapes latency only.
func (s *System) workers() int {
	if s.grant > 0 {
		return s.grant
	}
	return par.Workers(s.Opt.Parallelism)
}

// Engine returns the shared engine this system was created from, or
// nil for a standalone system.
func (s *System) Engine() *Engine { return s.eng }

// Metrics returns the telemetry registry, or nil when metrics are
// disabled. All registry methods are nil-safe, so callers may use the
// result unconditionally.
func (s *System) Metrics() *metrics.Registry { return s.metrics }

// Ledger returns the tamper-evident ledger this system appends to, or
// nil when none is attached.
func (s *System) Ledger() *ledger.Ledger { return s.led }

// Snapshot exports the telemetry registry's current state. With
// metrics disabled it returns a zero snapshot with Enabled=false.
func (s *System) Snapshot() metrics.Snapshot { return s.metrics.Snapshot() }

// ProcessFrame is ProcessFrameCtx without cancellation.
func (s *System) ProcessFrame(sc *synth.Scene) (FrameResult, error) {
	return s.ProcessFrameCtx(context.Background(), sc) // lint:ctxroot serial wrapper; caller opted out of cancellation
}

// ProcessFrameCtx advances simulated time by one frame slot and
// processes the scene: the monitor classifies the sensor reading, a
// reconfiguration is launched if the needed configuration differs from
// the loaded one, vehicle detection runs (or is dropped during
// reconfiguration), and pedestrian detection always runs. Detection
// work is fanned out across the Parallelism worker pool.
//
// The context cancels mid-frame: detection scans stop at the next row
// boundary and the frame is aborted with the context's error wrapped
// (errors.Is(err, context.Canceled/DeadlineExceeded)). Setting a
// deadline of one frame slot turns the camera's frame budget into a
// hard bound on software detection time. An aborted frame has already
// advanced the platform's simulated time and counters, so callers
// should treat the system as mid-stream, not roll it back.
//
// It also returns an error if the monitor's bands have been mutated
// into an incoherent configuration, or if a partial reconfiguration
// cannot be launched; the frame is not processed in either case.
func (s *System) ProcessFrameCtx(ctx context.Context, sc *synth.Scene) (FrameResult, error) {
	if err := ctx.Err(); err != nil {
		return FrameResult{}, fmt.Errorf("adaptive: frame %d: %w", s.frameIdx, err)
	}
	if err := s.Monitor.Validate(); err != nil {
		return FrameResult{}, err
	}
	// Borrow this frame's scan lanes from the shared engine pool (a
	// no-op for standalone systems). Held across the whole frame so
	// vehicle and pedestrian scans see one consistent worker count.
	s.beginFrameLanes()
	defer s.endFrameLanes()
	var frameWall time.Time
	if s.metrics != nil {
		frameWall = time.Now() // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
	}
	// Advance the platform to this frame's slot; pending DMA and
	// reconfiguration completions scheduled earlier fire here.
	slotStart := s.slotStartPS(s.frameIdx)
	slotDeadline := s.slotStartPS(s.frameIdx + 1)
	s.Z.Sim.RunUntil(slotStart)

	res := FrameResult{Index: s.frameIdx}
	var senseWall time.Time
	if s.metrics != nil {
		senseWall = time.Now() // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
	}
	lux := sc.Lux
	if s.Opt.SenseFromImage {
		lux = EstimateLux(sc.Frame)
	}
	cond := s.Monitor.Update(lux)
	if s.metrics != nil {
		s.metrics.StageObserve(metrics.StageSense, 0, uint64(time.Since(senseWall))) // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
	}
	res.Cond = cond
	need := configFor(cond)

	if need != s.loaded {
		if !s.pending || s.pendTarget != need {
			s.requestReconfig(need)
			res.ReconfigStarted = true
		}
	} else if s.pending && !s.reconfiguring {
		// The light reverted to the loaded configuration while a
		// failing switch was still backing off: nothing to recover
		// toward anymore.
		s.cancelPending()
	}

	// Day<->dusk is a BRAM model select on the running configuration:
	// one AXI-Lite write, no reconfiguration, no dropped frame. It is
	// gated on no reconfiguration being in flight: the select register
	// lives in the partition being rewritten, and an AXI-Lite write
	// into a partial bitstream mid-load is undefined on real hardware.
	// A select deferred by an in-flight reconfiguration happens on the
	// first clean frame after it completes.
	// The select is additionally gated on the day-dusk partition being
	// the loaded one: while a failing switch leaves dark resident, the
	// select register does not exist in the fabric.
	if s.bank != nil && need == CfgDayDusk && s.loaded == CfgDayDusk && !s.reconfiguring {
		slot := 0
		if cond == synth.Dusk {
			slot = 1
		}
		before := s.bank.Switches
		switch err := s.bank.Select(slot); {
		case err == nil && s.bank.Switches > before:
			s.stats.ModelSwitches++
			s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "model-select", cond.String())
			s.emit(Event{Kind: EvModelSwitch,
				ModelSwitch: ModelSwitchEvent{Slot: int32(slot), Cond: cond}})
		case errors.Is(err, ErrBankSelect):
			// Fault-injected select failure: the previously active
			// model keeps serving and the select retries on the next
			// frame (the register write is idempotent).
			s.stats.BankSelectFaults++
			s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "bank-select-fault", cond.String())
			s.emit(Event{Kind: EvFault,
				Fault: FaultEvent{Code: FaultCodeBankSelect, Target: s.loaded, Attempt: 1, Err: err}})
		}
	}

	// A pipeline sustains the camera rate only if each frame's
	// hardware processing (DMA + pipeline, including any port
	// queueing) finishes by the end of the frame slot; a later finish
	// is a soft real-time overrun that would accumulate into dropped
	// frames. hwFinish tracks the latest completion for the frame's
	// budget accounting.
	var hwFinish uint64
	stream := func(pipe soc.PipelineModel, hp *soc.BurstLink, irq int) {
		start := s.Z.Sim.Now()
		finish := s.Z.StreamFrame(pipe, sc.Frame.W, sc.Frame.H, 3, hp, irq, nil)
		if finish > hwFinish {
			hwFinish = finish
		}
		if s.metrics != nil {
			s.metrics.StageObserve(metrics.StageDMAStream, finish-start, 0)
		}
		if finish > slotDeadline {
			s.stats.SlotOverruns++
			s.Z.Trace.Record(start, "adaptive", "slot-overrun", pipe.Name)
		}
	}

	// Pedestrian detection: static partition, capture-synchronous and
	// never interrupted.
	stream(s.Z.PedestrianPipe, s.Z.HP1, soc.IRQPedestrianDMA)

	// Vehicle detection: the reconfigurable partition is unusable
	// while its bitstream is being rewritten. In steady state the
	// stream launches at slot start, in lockstep with capture. During
	// a reconfiguration the frame sits buffered in DDR by the input
	// DMA and the drop decision is deferred to mid-slot: a
	// reconfiguration that spills slightly into this slot does not
	// cost this frame (the buffered pixels are processed late, from
	// DDR), which makes an ~20.5 ms reconfiguration cost exactly one
	// frame at 50 fps, as the paper reports. A frame whose wanted
	// switch has NOT launched a stream (retry backoff, exhausted
	// budget) is not dropped: the partition still holds the last-good
	// configuration and serves it, stale — the graceful-degradation
	// contract that only an actively rewriting fabric loses frames.
	if s.reconfiguring {
		s.Z.Sim.RunUntil(slotStart + (slotDeadline-slotStart)/2)
	}
	if s.reconfiguring {
		res.VehicleDropped = true
		s.stats.VehicleDropped++
		s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "vehicle-frame-dropped",
			fmt.Sprintf("frame %d", s.frameIdx))
	} else {
		stream(s.Z.VehiclePipe, s.Z.HP0, soc.IRQVehicleDMA)
		serveCond := cond
		if need != s.loaded {
			res.VehicleStale = true
			s.stats.StaleVehicleFrames++
			serveCond = s.residentCondition()
			s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "vehicle-stale",
				fmt.Sprintf("frame %d serving %s for %s", s.frameIdx, serveCond, cond))
		}
		if s.Opt.RunDetectors {
			var scanWall time.Time
			if s.metrics != nil {
				scanWall = time.Now() // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
			}
			vehicles, err := s.detectVehicles(ctx, sc, serveCond)
			if err != nil {
				return FrameResult{}, fmt.Errorf("adaptive: frame %d: %w", s.frameIdx, err)
			}
			if s.metrics != nil {
				s.metrics.StageObserve(metrics.StageVehicleScan, 0, uint64(time.Since(scanWall))) // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
			}
			res.Vehicles = vehicles
		}
	}

	if s.Opt.RunDetectors && s.Dets.Pedestrian != nil {
		var scanWall time.Time
		if s.metrics != nil {
			scanWall = time.Now() // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
		}
		peds, err := s.Dets.Pedestrian.DetectCtx(ctx, img.RGBToGray(sc.Frame), s.workers())
		if err != nil {
			return FrameResult{}, fmt.Errorf("adaptive: frame %d: %w", s.frameIdx, err)
		}
		if s.metrics != nil {
			s.metrics.StageObserve(metrics.StagePedestrianScan, 0, uint64(time.Since(scanWall))) // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
		}
		res.Pedestrians = peds
	}
	s.stats.PedestrianFrames++

	// Tracking: feed this frame's detections (a dropped vehicle frame
	// contributes only pedestrians; vehicle tracks coast through it on
	// their Kalman predictions).
	if s.tracker != nil {
		all := append(append([]pipeline.Detection(nil), res.Vehicles...), res.Pedestrians...)
		s.tracker.Update(all)
		res.Tracks = s.tracker.Confirmed()
	}

	res.Mode = s.mode
	if s.mode == ModeDegraded {
		s.stats.DegradedFrames++
	}
	s.syncIRQDrops()

	s.stats.Frames++
	// The frame verdict closes the frame's slice of the event stream
	// (stale/degraded fault counters are projected from it; see
	// emit.go). Emitted before frameIdx advances so the event carries
	// the index of the frame it describes.
	s.emit(Event{Kind: EvFrame, Verdict: FrameEvent{
		Cond:            cond,
		Vehicles:        int32(len(res.Vehicles)),
		Pedestrians:     int32(len(res.Pedestrians)),
		VehicleDropped:  res.VehicleDropped,
		VehicleStale:    res.VehicleStale,
		ReconfigStarted: res.ReconfigStarted,
		Mode:            s.mode,
	}})
	s.frameIdx++
	if s.metrics != nil {
		s.metrics.FrameObserve(hwFinish-slotStart,
			int64(slotDeadline)-int64(hwFinish), uint64(time.Since(frameWall))) // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
		s.metrics.SetGauge(metrics.GaugeLoadedConfig, uint64(s.loaded))
		inFlight := uint64(0)
		if s.reconfiguring {
			inFlight = 1
		}
		s.metrics.SetGauge(metrics.GaugeReconfigInFlight, inFlight)
		s.metrics.SetGauge(metrics.GaugeFrameIndex, uint64(res.Index))
		s.metrics.SetGauge(metrics.GaugeMode, uint64(s.mode))
		if s.led != nil {
			evs, batches := s.led.Counts()
			s.metrics.SetGauge(metrics.GaugeLedgerEvents, evs)
			s.metrics.SetGauge(metrics.GaugeLedgerBatches, batches)
		}
	}
	return res, nil
}

// detectVehicles dispatches to the condition's detector on the shared
// worker pool. With metrics enabled, the HOG scans additionally report
// per-stage wall time through the scan-* stages, attributing the
// vehicle-scan budget to the block-response engine's sub-stages.
func (s *System) detectVehicles(ctx context.Context, sc *synth.Scene, cond synth.Condition) ([]pipeline.Detection, error) {
	gray := func() *img.Gray { return img.RGBToGray(sc.Frame) }
	var tm *pipeline.ScanTimings
	if s.metrics != nil {
		tm = new(pipeline.ScanTimings)
	}
	dets, err := func() ([]pipeline.Detection, error) {
		switch cond {
		case synth.Day:
			if s.Dets.Day != nil {
				return s.Dets.Day.DetectTimedCtx(ctx, gray(), s.workers(), tm)
			}
		case synth.Dusk:
			if s.Dets.Dusk != nil {
				return s.Dets.Dusk.DetectTimedCtx(ctx, gray(), s.workers(), tm)
			}
		case synth.Dark:
			if s.Dets.Dark != nil {
				tm = nil // dark pipeline is taillight-based, not a HOG scan
				return s.Dets.Dark.DetectCtx(ctx, sc.Frame, s.workers())
			}
		}
		tm = nil
		return nil, nil
	}()
	if err == nil && tm != nil {
		s.metrics.StageObserve(metrics.StageScanResize, 0, uint64(tm.Resize))
		s.metrics.StageObserve(metrics.StageScanFeature, 0, uint64(tm.Feature))
		s.metrics.StageObserve(metrics.StageScanBlocks, 0, uint64(tm.Blocks))
		s.metrics.StageObserve(metrics.StageScanResponse, 0, uint64(tm.Response))
		s.metrics.StageObserve(metrics.StageScanWindows, 0, uint64(tm.Windows))
		if tm.TemporalPath {
			s.metrics.StageObserve(metrics.StageScanTemporal, 0, uint64(tm.Temporal))
			s.metrics.TileAdd(metrics.TileHits, uint64(tm.TileHits))
			s.metrics.TileAdd(metrics.TileMisses, uint64(tm.TileMisses))
			s.metrics.TileAdd(metrics.TileRefresh, uint64(tm.TileRefreshes))
			if total := tm.TileHits + tm.TileMisses + tm.TileRefreshes; total > 0 {
				s.metrics.SetGauge(metrics.GaugeTileHitRate, uint64(tm.TileHits*10000/total))
			}
		}
	}
	return dets, err
}

// RunScenario is RunScenarioCtx without cancellation.
func (s *System) RunScenario(sc *synth.Scenario) ([]FrameResult, error) {
	return s.RunScenarioCtx(context.Background(), sc) // lint:ctxroot serial wrapper; caller opted out of cancellation
}

// RunScenarioCtx drives a whole synthetic drive through the system,
// returning the per-frame results. The context is checked every frame
// and mid-frame inside the detection scans; a deadline bounds the
// whole drive. On error the frames completed so far are returned
// alongside it.
func (s *System) RunScenarioCtx(ctx context.Context, sc *synth.Scenario) ([]FrameResult, error) {
	n := sc.TotalFrames()
	out := make([]FrameResult, 0, n)
	for i := 0; i < n; i++ {
		res, err := s.ProcessFrameCtx(ctx, sc.FrameAt(i))
		if err != nil {
			return out, err
		}
		out = append(out, res)
	}
	return out, nil
}
