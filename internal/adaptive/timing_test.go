package adaptive

// Regression tests for the frame-slot timing accounting: the absolute
// slot-deadline overrun check, the exact integer slot clock, and the
// model-select/reconfiguration interlock. Each test encodes a bug that
// shipped in an earlier revision and fails against it.

import (
	"testing"

	"advdet/internal/img"
	"advdet/internal/metrics"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// hdScene fabricates a 1080p scene (the timing path only reads the
// frame dimensions, so the pixels stay unrendered).
func hdScene(cond synth.Condition, lux float64) *synth.Scene {
	sc := synth.RenderScene(synth.NewRNG(4), synth.SceneConfig{W: 64, H: 36, Cond: cond})
	sc.Frame = img.NewRGB(1920, 1080)
	sc.Lux = lux
	return sc
}

// TestSlotOverrunCountsLateCatchUpFrame pins the overrun counter to
// the absolute slot deadline. The post-reconfiguration catch-up frame
// launches its vehicle stream at mid-slot, so at 1080p its ~19.9 ms of
// processing ends ~10 ms past the slot end — a real deadline miss. A
// relative check (finish-start against one period) sees only the
// stream's own duration, which fits the period, and reports zero: the
// undercount this test would flag.
func TestSlotOverrunCountsLateCatchUpFrame(t *testing.T) {
	s := timingSystem(t, synth.Dusk)
	for i := 0; i < 5; i++ {
		s.ProcessFrame(hdScene(synth.Dusk, 300))
	}
	for i := 0; i < 5; i++ {
		s.ProcessFrame(hdScene(synth.Dark, 5))
	}
	st := s.Stats()
	if st.VehicleDropped != 1 {
		t.Fatalf("dropped %d vehicle frames, want 1", st.VehicleDropped)
	}
	if st.SlotOverruns != 1 {
		t.Fatalf("slot overruns = %d, want exactly 1 (the mid-slot catch-up frame past its deadline)", st.SlotOverruns)
	}
}

// TestSlotOverrunExactDeadlineBoundary sits a frame's hardware finish
// exactly on the slot deadline: 2,497,952 pipeline cycles + the 2048-
// cycle fill is precisely 20 ms at 125 MHz. Finishing ON the deadline
// is a hit; one more pixel row of work (+8 ns) is a miss on both
// streams.
func TestSlotOverrunExactDeadlineBoundary(t *testing.T) {
	// uint64(float64(1*2081627) * 1.2) = 2,497,952 cycles; at 8000 ps
	// per ClkPL cycle plus the 2048-cycle fill the stream spans
	// 20,000,000,000 ps — the whole 50 fps slot, to the picosecond.
	const exactH = 2081627
	run := func(h int) (*System, Stats) {
		opt := DefaultOptions()
		opt.RunDetectors = false
		opt.EnableMetrics = true
		s, err := New(Detectors{}, opt)
		if err != nil {
			t.Fatal(err)
		}
		sc := sceneFor(synth.Day, 10000)
		sc.Frame = img.NewRGB(1, h)
		s.ProcessFrame(sc)
		return s, s.Stats()
	}

	s, st := run(exactH)
	if st.SlotOverruns != 0 {
		t.Fatalf("finish exactly on the deadline counted as %d overruns, want 0", st.SlotOverruns)
	}
	f := s.Snapshot().Frames
	if f.DeadlineHits != 1 || f.DeadlineMisses != 0 {
		t.Fatalf("boundary frame accounting %+v, want 1 hit 0 misses", f)
	}
	if f.HeadroomMinPS != 0 {
		t.Fatalf("boundary frame headroom = %d ps, want 0", f.HeadroomMinPS)
	}

	s, st = run(exactH + 1)
	if st.SlotOverruns != 2 {
		t.Fatalf("one cycle past the deadline counted as %d overruns, want 2 (both streams)", st.SlotOverruns)
	}
	if f := s.Snapshot().Frames; f.DeadlineMisses != 1 {
		t.Fatalf("past-deadline frame accounting %+v, want 1 miss", f)
	}
}

// TestSlotClockExactOverLongRuns pins the slot clock to integer
// arithmetic. At 30 fps the period is 33,333,333,333.3 ps; truncating
// it once and multiplying (the float-division bug) loses 10 ps per
// frame — a third of a microsecond of drift over a 10,000-frame drive,
// unbounded beyond. The exact clock re-synchronises every second.
func TestSlotClockExactOverLongRuns(t *testing.T) {
	opt := DefaultOptions()
	opt.FPS = 30
	opt.RunDetectors = false
	s, err := New(Detectors{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	const frames = 12_000 // 400 s of 30 fps video
	for i := 0; i < frames; i++ {
		d := s.slotStartPS(i+1) - s.slotStartPS(i)
		if d != 33_333_333_333 && d != 33_333_333_334 {
			t.Fatalf("slot %d period = %d ps, want 1/30 s split across integer slots", i, d)
		}
	}
	for k := 1; k <= frames/30; k++ {
		if got := s.slotStartPS(30*k) - s.epoch; got != uint64(k)*psPerSecond {
			t.Fatalf("slot %d starts %d ps after boot, want exactly %d s (drift %d ps)",
				30*k, got, k, int64(got)-int64(k)*psPerSecond)
		}
	}
}

// TestModelSelectWaitsForReconfigCompletion pins the interlock between
// the BRAM model select and partial reconfiguration: an AXI-Lite write
// into the partition being rewritten is undefined on hardware, so a
// dark->dusk transition must hold the dusk select until the day-dusk
// bitstream has finished loading.
func TestModelSelectWaitsForReconfigCompletion(t *testing.T) {
	opt := DefaultOptions()
	opt.Initial = synth.Dark
	opt.RunDetectors = false
	s, err := New(Detectors{
		Day:  pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 4)}),
		Dusk: pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 4)}),
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Dusk light from frame 0; the monitor debounce switches the
	// condition on frame 2, which starts the dark->day-dusk
	// reconfiguration (~20.5 ms, spilling into frame 3's slot).
	step := func() Stats {
		if _, err := s.ProcessFrame(sceneFor(synth.Dusk, 300)); err != nil {
			t.Fatal(err)
		}
		return s.Stats()
	}
	step()
	step()
	st := step() // frame 2: reconfiguration starts here
	if len(st.Reconfigs) != 1 {
		t.Fatalf("reconfigs after frame 2 = %d, want 1", len(st.Reconfigs))
	}
	if st.ModelSwitches != 0 {
		t.Fatal("model selected on the same frame the partition started rewriting")
	}
	if st := step(); st.ModelSwitches != 0 {
		t.Fatal("model selected while the reconfiguration was still in flight")
	}
	st = step() // frame 4: first clean frame after completion
	if st.ModelSwitches != 1 {
		t.Fatalf("model switches after reconfiguration completed = %d, want 1 (deferred select)", st.ModelSwitches)
	}
	// The select must postdate the reconfiguration completion in the
	// platform trace.
	done := st.Reconfigs[0].DonePS
	if done == 0 {
		t.Fatal("reconfiguration never completed")
	}
	found := false
	for _, e := range s.Z.Trace.Events() {
		if e.Source == "adaptive" && e.Name == "model-select" {
			found = true
			if e.PS < done {
				t.Fatalf("model-select at %d ps precedes reconfig-done at %d ps", e.PS, done)
			}
		}
	}
	if !found {
		t.Fatal("model-select never traced")
	}
}

// TestSnapshotAcrossConditions drives day -> dusk -> dark with metrics
// enabled and checks every stage counter the drive must touch,
// including the reconfiguration frame.
func TestSnapshotAcrossConditions(t *testing.T) {
	opt := DefaultOptions()
	opt.RunDetectors = false
	opt.EnableMetrics = true
	s, err := New(Detectors{
		Day:  pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 4)}),
		Dusk: pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 4)}),
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	feed := func(cond synth.Condition, lux float64, n int) {
		for i := 0; i < n; i++ {
			if _, err := s.ProcessFrame(sceneFor(cond, lux)); err != nil {
				t.Fatal(err)
			}
		}
	}
	feed(synth.Day, 10000, 4)
	feed(synth.Dusk, 300, 4) // model select, no reconfiguration
	feed(synth.Dark, 5, 8)   // reconfiguration + one dropped frame

	snap := s.Snapshot()
	if !snap.Enabled {
		t.Fatal("snapshot not enabled with EnableMetrics")
	}
	const frames = 16
	want := map[string]uint64{
		"sense":        frames,
		"model-select": 1,
		"reconfig":     1,
		"dma-stream":   2*frames - 1, // one vehicle stream lost to the drop
		"vehicle-scan": 0,            // timing mode: no software scans
	}
	for name, n := range want {
		st, ok := snap.StageByName(name)
		if !ok {
			t.Fatalf("stage %q missing from snapshot", name)
		}
		if st.Count != n {
			t.Fatalf("stage %q count = %d, want %d", name, st.Count, n)
		}
	}
	rc, _ := snap.StageByName("reconfig")
	if ms := float64(rc.SimPSTotal) / 1e9; ms < 19 || ms > 22 {
		t.Fatalf("reconfig stage recorded %.2f ms, want ~20.5", ms)
	}
	f := snap.Frames
	if f.Frames != frames || f.DeadlineHits+f.DeadlineMisses != frames {
		t.Fatalf("frame accounting %+v, want %d frames fully attributed", f, frames)
	}
	if f.DeadlineMisses != 0 {
		t.Fatalf("64x36 frames missed %d deadlines, want 0", f.DeadlineMisses)
	}
	if g := s.Metrics().GaugeValue(metrics.GaugeLoadedConfig); g != uint64(CfgDark) {
		t.Fatalf("loaded_config gauge = %d, want %d", g, CfgDark)
	}
	if g := s.Metrics().GaugeValue(metrics.GaugeFrameIndex); g != frames-1 {
		t.Fatalf("frame_index gauge = %d, want %d", g, frames-1)
	}
}

// TestMetricsDisabledByDefault: without EnableMetrics the registry is
// absent and the snapshot API still answers.
func TestMetricsDisabledByDefault(t *testing.T) {
	s := timingSystem(t, synth.Day)
	if s.Metrics() != nil {
		t.Fatal("metrics registry allocated without EnableMetrics")
	}
	s.ProcessFrame(sceneFor(synth.Day, 10000))
	if snap := s.Snapshot(); snap.Enabled || snap.Frames.Frames != 0 {
		t.Fatalf("disabled snapshot %+v, want zero value", snap)
	}
}
