package adaptive

import (
	"fmt"

	"advdet/internal/axi"
	"advdet/internal/fault"
	"advdet/internal/soc"
	"advdet/internal/svm"
)

// ModelBank models the two-block-RAM model store of the day/dusk
// configuration (§III-A: "These two configurations are implemented in
// the same way but with different versions of the trained model which
// are stored in two block RAM"). Switching the active model is a
// single AXI-Lite register write — that is why the day<->dusk
// transition needs no reconfiguration and costs no frames.
type ModelBank struct {
	regs   *axi.Lite
	models [2]*svm.Model
	names  [2]string
	active int
	fault  *fault.Plan
	// Switches counts model-select writes, for the stats the examples
	// report.
	Switches int
}

// modelSelectReg is the AXI-Lite offset of the model-select register.
const modelSelectReg = 0x10

// NewModelBank loads the two models into their BRAM slots.
func NewModelBank(sim *soc.Sim, port *soc.BurstLink, dayModel, duskModel *svm.Model) *ModelBank {
	return &ModelBank{
		regs:   axi.NewLite("model-bank", sim, port),
		models: [2]*svm.Model{dayModel, duskModel},
		names:  [2]string{"day", "dusk"},
	}
}

// SetFaultPlan installs the fault injector consulted on every select
// write. Nil disables injection.
func (mb *ModelBank) SetFaultPlan(p *fault.Plan) { mb.fault = p }

// Select activates slot 0 (day) or 1 (dusk); any other slot is an
// error. The register write cost is accounted on the GP port. A
// fault-injected failure returns before any state changes, wrapping
// ErrBankSelect: the previously active model stays live.
func (mb *ModelBank) Select(slot int) error {
	if slot != 0 && slot != 1 {
		return fmt.Errorf("adaptive: model bank slot %d out of range", slot)
	}
	if mb.fault.OnBankSelect() {
		return fmt.Errorf("adaptive: model bank slot %d: %w", slot, ErrBankSelect)
	}
	if slot != mb.active {
		mb.Switches++
	}
	mb.regs.Write(modelSelectReg, uint32(slot))
	mb.active = slot
	return nil
}

// Active returns the live model and its name.
func (mb *ModelBank) Active() (*svm.Model, string) {
	return mb.models[mb.active], mb.names[mb.active]
}

// SwitchCostPS returns the simulated time spent on model-select
// register traffic so far.
func (mb *ModelBank) SwitchCostPS() uint64 { return mb.regs.AccessPS() }

// BRAMBytes returns the storage the bank occupies (both models), for
// the resource model.
func (mb *ModelBank) BRAMBytes() int {
	total := 0
	for _, m := range mb.models {
		if m != nil {
			total += m.WeightBytes()
		}
	}
	return total
}
