package adaptive

import (
	"testing"

	"advdet/internal/pipeline"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

func testBank() (*soc.Sim, *ModelBank) {
	sim := &soc.Sim{}
	day := &svm.Model{W: make([]float64, 8)}
	dusk := &svm.Model{W: make([]float64, 8)}
	return sim, NewModelBank(sim, soc.NewGPPort("gp"), day, dusk)
}

func TestModelBankSelect(t *testing.T) {
	_, mb := testBank()
	if _, name := mb.Active(); name != "day" {
		t.Fatalf("initial model %q", name)
	}
	if err := mb.Select(1); err != nil {
		t.Fatal(err)
	}
	if _, name := mb.Active(); name != "dusk" {
		t.Fatalf("active model %q after select", name)
	}
	if mb.Switches != 1 {
		t.Fatalf("switches = %d", mb.Switches)
	}
	// Reselecting the active slot is not a switch.
	if err := mb.Select(1); err != nil {
		t.Fatal(err)
	}
	if mb.Switches != 1 {
		t.Fatal("no-op select counted as a switch")
	}
}

func TestModelBankInvalidSlot(t *testing.T) {
	_, mb := testBank()
	if err := mb.Select(2); err == nil {
		t.Fatal("invalid slot accepted")
	}
}

func TestModelBankSwitchCostTiny(t *testing.T) {
	// A model switch is one AXI-Lite write (~210 ns): at least four
	// orders of magnitude below the 20 ms reconfiguration.
	_, mb := testBank()
	if err := mb.Select(1); err != nil {
		t.Fatal(err)
	}
	cost := mb.SwitchCostPS()
	if cost == 0 {
		t.Fatal("switch cost unaccounted")
	}
	reconfigPS := uint64(20e9) // 20 ms
	if cost*10_000 > reconfigPS {
		t.Fatalf("model switch cost %d ps too large", cost)
	}
}

func TestModelBankBRAMBytes(t *testing.T) {
	_, mb := testBank()
	if got := mb.BRAMBytes(); got != 2*4*9 {
		t.Fatalf("BRAMBytes = %d", got)
	}
}

func TestSystemCountsModelSwitches(t *testing.T) {
	day := &svm.Model{W: make([]float64, 4)}
	dusk := &svm.Model{W: make([]float64, 4)}
	opt := DefaultOptions()
	opt.RunDetectors = false
	s, err := New(Detectors{
		Day:  pipeline.NewDayDuskDetector(day),
		Dusk: pipeline.NewDayDuskDetector(dusk),
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	// Day -> dusk -> day: two model switches, zero reconfigurations.
	feed := func(cond synth.Condition, lux float64, n int) {
		for i := 0; i < n; i++ {
			s.ProcessFrame(sceneFor(cond, lux))
		}
	}
	feed(synth.Day, 10000, 4)
	feed(synth.Dusk, 300, 6)
	feed(synth.Day, 10000, 6)
	st := s.Stats()
	if st.ModelSwitches != 2 {
		t.Fatalf("model switches = %d, want 2", st.ModelSwitches)
	}
	if len(st.Reconfigs) != 0 {
		t.Fatalf("reconfigs = %d, want 0", len(st.Reconfigs))
	}
	if st.VehicleDropped != 0 {
		t.Fatalf("dropped = %d, want 0 (model switch is free)", st.VehicleDropped)
	}
}
