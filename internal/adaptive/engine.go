package adaptive

import "advdet/internal/par"

// Engine is the shared half of the adaptive stack: the immutable
// trained detector set plus the scan-lane pool every stream's
// detection work is scheduled onto. It is the software analogue of the
// paper's PL fabric — one set of synthesized detection hardware that
// many frame slots execute against — while System carries everything
// per-stream: monitor hysteresis, the reconfiguration state machine,
// slot-deadline accounting and metrics.
//
// An Engine is safe for concurrent use by any number of Systems: the
// detectors are read-only after training and the pool is a counting
// semaphore. Systems themselves remain single-goroutine objects.
type Engine struct {
	// Dets is the shared trained detector set. Treated as immutable;
	// mutating a model while streams are scanning is a data race.
	Dets Detectors

	pool *par.Pool
}

// EngineConfig configures the shared half.
type EngineConfig struct {
	// Parallelism is the total scan-lane budget shared by every stream
	// on the engine (the pool size). Values <= 0 select
	// runtime.NumCPU(). Per-stream Options.Parallelism then caps how
	// many of the shared lanes one frame may borrow.
	Parallelism int
}

// NewEngine builds the shared engine over a trained detector set.
func NewEngine(dets Detectors, cfg EngineConfig) *Engine {
	return &Engine{Dets: dets, pool: par.NewPool(cfg.Parallelism)}
}

// Pool exposes the shared scan-lane pool (for telemetry; streams
// acquire through their per-frame grant, not directly).
func (e *Engine) Pool() *par.Pool { return e.pool }

// NewSystem boots a per-stream System bound to this engine: it shares
// the engine's detectors and borrows scan lanes from the engine pool
// for the duration of each frame's detection work.
func (e *Engine) NewSystem(opt Options) (*System, error) {
	return newSystem(e, e.Dets, opt)
}

// beginFrameLanes reserves this frame's scan lanes from the engine
// pool. Without an engine (the classic single-stream path) or in
// timing-only mode (no scans run) it is a no-op and the Parallelism
// knob is used directly.
func (s *System) beginFrameLanes() {
	if s.eng == nil || !s.Opt.RunDetectors {
		return
	}
	s.grant = s.eng.pool.Acquire(par.Workers(s.Opt.Parallelism))
}

// endFrameLanes returns the frame's lanes to the engine pool.
func (s *System) endFrameLanes() {
	if s.grant > 0 {
		s.eng.pool.Release(s.grant)
		s.grant = 0
	}
}
