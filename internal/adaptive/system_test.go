package adaptive

import (
	"testing"

	"advdet/internal/img"
	"advdet/internal/soc"
	"advdet/internal/synth"
)

// timingSystem builds a system with no software detectors (timing and
// reconfiguration behaviour only).
func timingSystem(t *testing.T, initial synth.Condition) *System {
	t.Helper()
	opt := DefaultOptions()
	opt.Initial = initial
	opt.RunDetectors = false
	s, err := New(Detectors{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// sceneFor fabricates a minimal scene of the given condition without
// rendering cost.
func sceneFor(cond synth.Condition, lux float64) *synth.Scene {
	rng := synth.NewRNG(1)
	sc := synth.RenderScene(rng, synth.SceneConfig{W: 64, H: 36, Cond: cond})
	sc.Lux = lux
	return sc
}

func TestNewStagesBothBitstreams(t *testing.T) {
	s := timingSystem(t, synth.Day)
	if !s.PR.Staged(CfgDayDusk.String()) || !s.PR.Staged(CfgDark.String()) {
		t.Fatal("bitstreams not staged at boot")
	}
	if s.Loaded() != CfgDayDusk {
		t.Fatalf("initial config %v", s.Loaded())
	}
}

func TestNewValidatesOptions(t *testing.T) {
	opt := DefaultOptions()
	opt.FPS = 0
	if _, err := New(Detectors{}, opt); err == nil {
		t.Fatal("FPS=0 accepted")
	}
	opt = DefaultOptions()
	opt.BitstreamBytes = -1
	if _, err := New(Detectors{}, opt); err == nil {
		t.Fatal("negative bitstream accepted")
	}
}

func TestDayToDuskNeedsNoReconfiguration(t *testing.T) {
	// Day and dusk share one partial configuration (two models in
	// BRAM), so e.g. entering a well-lit tunnel costs nothing.
	s := timingSystem(t, synth.Day)
	for i := 0; i < 10; i++ {
		s.ProcessFrame(sceneFor(synth.Dusk, 300))
	}
	st := s.Stats()
	if len(st.Reconfigs) != 0 {
		t.Fatalf("day->dusk caused %d reconfigurations", len(st.Reconfigs))
	}
	if st.VehicleDropped != 0 {
		t.Fatalf("day->dusk dropped %d vehicle frames", st.VehicleDropped)
	}
}

func TestDuskToDarkReconfiguresAndDropsOneFrame(t *testing.T) {
	s := timingSystem(t, synth.Dusk)
	// A few dusk frames, then darkness.
	for i := 0; i < 5; i++ {
		s.ProcessFrame(sceneFor(synth.Dusk, 300))
	}
	for i := 0; i < 20; i++ {
		s.ProcessFrame(sceneFor(synth.Dark, 5))
	}
	st := s.Stats()
	if len(st.Reconfigs) != 1 {
		t.Fatalf("reconfigurations = %d, want 1", len(st.Reconfigs))
	}
	rec := st.Reconfigs[0]
	if rec.From != CfgDayDusk || rec.To != CfgDark {
		t.Fatalf("reconfig %v -> %v", rec.From, rec.To)
	}
	if rec.DonePS == 0 {
		t.Fatal("reconfiguration never completed")
	}
	ms := soc.Seconds(rec.DonePS-rec.StartPS) * 1e3
	if ms < 19 || ms < 0 || ms > 22 {
		t.Fatalf("reconfiguration took %.2f ms, want ~20", ms)
	}
	// §IV-B: "equivalent to missing one frame in a sequence of 50fps".
	if st.VehicleDropped != 1 {
		t.Fatalf("dropped %d vehicle frames, want 1", st.VehicleDropped)
	}
	if s.Loaded() != CfgDark {
		t.Fatal("dark configuration not loaded after reconfig")
	}
}

func TestPedestrianNeverDrops(t *testing.T) {
	s := timingSystem(t, synth.Dusk)
	n := 0
	for i := 0; i < 5; i++ {
		s.ProcessFrame(sceneFor(synth.Dusk, 300))
		n++
	}
	for i := 0; i < 10; i++ {
		s.ProcessFrame(sceneFor(synth.Dark, 5))
		n++
	}
	st := s.Stats()
	if st.PedestrianFrames != n {
		t.Fatalf("pedestrian frames %d, want %d (static partition never stops)", st.PedestrianFrames, n)
	}
	if st.VehicleDropped == 0 {
		t.Fatal("expected at least one vehicle drop during reconfig")
	}
}

func TestRoundTripDarkAndBack(t *testing.T) {
	s := timingSystem(t, synth.Day)
	feed := func(cond synth.Condition, lux float64, n int) {
		for i := 0; i < n; i++ {
			s.ProcessFrame(sceneFor(cond, lux))
		}
	}
	feed(synth.Day, 10000, 5)
	feed(synth.Dark, 5, 15)
	feed(synth.Day, 10000, 15)
	st := s.Stats()
	if len(st.Reconfigs) != 2 {
		t.Fatalf("reconfigurations = %d, want 2", len(st.Reconfigs))
	}
	if st.Reconfigs[1].To != CfgDayDusk {
		t.Fatal("second reconfiguration should restore day-dusk")
	}
	if s.Loaded() != CfgDayDusk {
		t.Fatal("final configuration wrong")
	}
	// Each transition costs one frame.
	if st.VehicleDropped != 2 {
		t.Fatalf("dropped %d, want 2", st.VehicleDropped)
	}
}

func TestNoReconfigThrashOnNoisySensor(t *testing.T) {
	// Alternating readings around the dusk/dark boundary must not
	// trigger repeated reconfiguration thanks to hysteresis+debounce.
	s := timingSystem(t, synth.Dusk)
	for i := 0; i < 40; i++ {
		lux := 50.0 // inside the hysteresis band
		if i%2 == 0 {
			lux = 60
		}
		s.ProcessFrame(sceneFor(synth.Dusk, lux))
	}
	if n := len(s.Stats().Reconfigs); n != 0 {
		t.Fatalf("noisy sensor caused %d reconfigurations", n)
	}
}

func TestStatsCopyIsolated(t *testing.T) {
	s := timingSystem(t, synth.Day)
	s.ProcessFrame(sceneFor(synth.Day, 10000))
	st := s.Stats()
	st.Frames = 999
	if s.Stats().Frames == 999 {
		t.Fatal("Stats returned shared state")
	}
}

func TestRunScenarioTunnelTransit(t *testing.T) {
	// The paper's motivating drive: day -> lit tunnel (dusk) -> day
	// -> sunset dusk -> dark. Only the dusk->dark boundary needs a
	// reconfiguration.
	s := timingSystem(t, synth.Day)
	scenario := synth.TunnelTransit(7, 64, 36, 10)
	results, err := s.RunScenario(scenario)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != scenario.TotalFrames() {
		t.Fatalf("results %d, frames %d", len(results), scenario.TotalFrames())
	}
	st := s.Stats()
	if len(st.Reconfigs) != 1 {
		t.Fatalf("tunnel transit caused %d reconfigurations, want 1 (only entering dark)", len(st.Reconfigs))
	}
	if st.Reconfigs[0].To != CfgDark {
		t.Fatal("reconfiguration target should be dark")
	}
	if st.VehicleDropped != 1 {
		t.Fatalf("dropped %d vehicle frames, want 1", st.VehicleDropped)
	}
	// The monitor must have visited all three conditions.
	seen := map[synth.Condition]bool{}
	for _, r := range results {
		seen[r.Cond] = true
	}
	if !seen[synth.Day] || !seen[synth.Dusk] || !seen[synth.Dark] {
		t.Fatalf("conditions visited: %v", seen)
	}
}

func TestProcessFrameRejectsInvalidBands(t *testing.T) {
	// Mutating the monitor into an incoherent band configuration must
	// surface as an error from ProcessFrame, not a crash or silent
	// misclassification.
	s := timingSystem(t, synth.Day)
	s.Monitor.DayDuskDown = 10_000 // above DayDuskUp
	if _, err := s.ProcessFrame(sceneFor(synth.Day, 10000)); err == nil {
		t.Fatal("invalid monitor bands not surfaced")
	}
}

func TestNoSlotOverrunsAt50FPS(t *testing.T) {
	// The paper's operating point: 1080p at 50 fps fits the slot.
	s := timingSystem(t, synth.Day)
	sc := sceneFor(synth.Day, 10000)
	// Pretend HDTV frames: the timing path uses the frame dimensions.
	big := synth.RenderScene(synth.NewRNG(2), synth.SceneConfig{W: 64, H: 36, Cond: synth.Day})
	big.Frame = img.NewRGB(1920, 1080)
	big.Lux = 10000
	_ = sc
	for i := 0; i < 10; i++ {
		s.ProcessFrame(big)
	}
	if n := s.Stats().SlotOverruns; n != 0 {
		t.Fatalf("%d slot overruns at the 50 fps operating point", n)
	}
}

func TestSlotOverrunsAbove50FPS(t *testing.T) {
	// At 60 fps the 19.9 ms pipeline no longer fits the 16.7 ms slot:
	// the overrun counter must fire — the margin the paper's "50 fps"
	// claim sits on.
	opt := DefaultOptions()
	opt.FPS = 60
	opt.RunDetectors = false
	s, err := New(Detectors{}, opt)
	if err != nil {
		t.Fatal(err)
	}
	big := synth.RenderScene(synth.NewRNG(3), synth.SceneConfig{W: 64, H: 36, Cond: synth.Day})
	big.Frame = img.NewRGB(1920, 1080)
	big.Lux = 10000
	for i := 0; i < 5; i++ {
		s.ProcessFrame(big)
	}
	if n := s.Stats().SlotOverruns; n == 0 {
		t.Fatal("no slot overruns at 60 fps; the timing model lost its bound")
	}
}

func TestConfigIDString(t *testing.T) {
	if CfgDayDusk.String() != "day-dusk" || CfgDark.String() != "dark" {
		t.Fatal("ConfigID strings wrong")
	}
}
