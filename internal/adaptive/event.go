package adaptive

import (
	"encoding/binary"
	"sync"

	"advdet/internal/synth"
)

// This file is the unified typed event stream: the one subscribable
// surface for everything the adaptive system decides or suffers.
// Before it, the audit record was scattered — faults in
// Stats.FaultLog, injection events in fault.Plan.Events(), reconfig
// and mode data in metrics gauges. Now every frame verdict, model
// select, reconfiguration outcome, fault and mode transition is
// emitted as one Event value, and the legacy surfaces (FaultLog, the
// fault/mode metrics counters) are derived views of the same stream.
//
// Event is a flat struct with a Kind discriminator rather than a
// sealed interface: emitting one must not allocate (no boxing), so the
// detection hot path stays zero-alloc with sinks attached.

// EventKind discriminates the Event sum.
type EventKind int32

const (
	// EvFrame: a frame completed — the per-frame verdict (condition,
	// detection counts, dropped/stale flags, end-of-frame mode).
	EvFrame EventKind = iota
	// EvModelSwitch: a day<->dusk BRAM model select landed (no
	// reconfiguration, no dropped frame).
	EvModelSwitch
	// EvReconfig: a reconfiguration state-machine transition; see
	// ReconfigPhase for which one.
	EvReconfig
	// EvFault: a fault on the reconfiguration datapath (CRC verify,
	// watchdog timeout, bank select, dropped PR-done IRQ).
	EvFault
	// EvModeChange: the resilience mode moved
	// (nominal/recovering/degraded).
	EvModeChange
	// NumEventKinds bounds the kind space.
	NumEventKinds
)

var eventKindNames = [NumEventKinds]string{
	"frame", "model-switch", "reconfig", "fault", "mode-change",
}

func (k EventKind) String() string {
	if k < 0 || k >= NumEventKinds {
		return "unknown"
	}
	return eventKindNames[k]
}

// ReconfigPhase names the reconfiguration state-machine transitions an
// EvReconfig event reports.
type ReconfigPhase int32

const (
	// ReconfigRequested: a transition to a new target opened (or an
	// in-flight one retargeted).
	ReconfigRequested ReconfigPhase = iota
	// ReconfigLaunched: one attempt started streaming the bitstream.
	ReconfigLaunched
	// ReconfigCompleted: PR-done landed; ElapsedPS is the request-to-
	// done latency.
	ReconfigCompleted
	// ReconfigRetryScheduled: an attempt failed and the next one is
	// booked; ElapsedPS is the backoff delay.
	ReconfigRetryScheduled
	// ReconfigCancelled: the condition reverted to the loaded
	// configuration before a retry landed.
	ReconfigCancelled
	// NumReconfigPhases bounds the phase space.
	NumReconfigPhases
)

var reconfigPhaseNames = [NumReconfigPhases]string{
	"requested", "launched", "completed", "retry-scheduled", "cancelled",
}

func (p ReconfigPhase) String() string {
	if p < 0 || p >= NumReconfigPhases {
		return "unknown"
	}
	return reconfigPhaseNames[p]
}

// FaultCode classifies an EvFault event. Fault.Err carries the
// wrapped typed sentinel for errors.Is dispatch; the code is the
// encodable, switchable classification of the same thing.
type FaultCode int32

const (
	// FaultCodeVerify: a staged bitstream failed the CRC pass
	// (pr.ErrVerify).
	FaultCodeVerify FaultCode = iota
	// FaultCodeTimeout: the PR-done watchdog expired (pr.ErrTimeout).
	FaultCodeTimeout
	// FaultCodeBusy: the ICAP DMA was busy at launch (pr.ErrBusy).
	FaultCodeBusy
	// FaultCodeBankSelect: a BRAM model-select write failed
	// (ErrBankSelect).
	FaultCodeBankSelect
	// FaultCodeIRQDrop: a PR-done interrupt assertion was lost at the
	// controller. No error value accompanies it (the loss is observed
	// from the platform's drop counter), so these events do not appear
	// in the derived Stats.FaultLog.
	FaultCodeIRQDrop
	// FaultCodeOther: an unclassified reconfiguration error.
	FaultCodeOther
	// NumFaultCodes bounds the code space.
	NumFaultCodes
)

var faultCodeNames = [NumFaultCodes]string{
	"verify", "timeout", "busy", "bank-select", "irq-drop", "other",
}

func (c FaultCode) String() string {
	if c < 0 || c >= NumFaultCodes {
		return "unknown"
	}
	return faultCodeNames[c]
}

// FrameEvent is the EvFrame payload: one frame's verdict.
type FrameEvent struct {
	Cond            synth.Condition
	Vehicles        int32
	Pedestrians     int32
	VehicleDropped  bool
	VehicleStale    bool
	ReconfigStarted bool
	Mode            Mode
}

// ModelSwitchEvent is the EvModelSwitch payload.
type ModelSwitchEvent struct {
	Slot int32 // BRAM bank selected: 0 day, 1 dusk
	Cond synth.Condition
}

// ReconfigEvent is the EvReconfig payload.
type ReconfigEvent struct {
	Phase    ReconfigPhase
	From, To ConfigID
	Attempt  int32
	// ElapsedPS: request-to-done latency for ReconfigCompleted, backoff
	// delay for ReconfigRetryScheduled, zero otherwise.
	ElapsedPS uint64
}

// FaultEvent is the EvFault payload. Err wraps the typed sentinel
// (pr.ErrVerify, pr.ErrTimeout, pr.ErrBusy, ErrBankSelect) when one
// exists; Code is the same classification in encodable form.
type FaultEvent struct {
	Code    FaultCode
	Target  ConfigID
	Attempt int32
	Err     error
}

// ModeChangeEvent is the EvModeChange payload.
type ModeChangeEvent struct {
	From, To Mode
}

// Event is the typed event-stream sum: Kind selects which payload
// field is meaningful, and every event carries its stream id, frame
// index and simulated-picosecond timestamp. Events are plain values —
// delivering one allocates nothing and sinks may retain them freely.
type Event struct {
	Kind   EventKind
	Stream int32
	Frame  int32
	PS     uint64

	Verdict     FrameEvent       // EvFrame
	ModelSwitch ModelSwitchEvent // EvModelSwitch
	Reconfig    ReconfigEvent    // EvReconfig
	Fault       FaultEvent       // EvFault
	ModeChange  ModeChangeEvent  // EvModeChange
}

// EventSink receives the system's event stream. Emit is called
// synchronously on the frame-processing goroutine (frames on one
// stream are serialized, so per-stream event order is deterministic);
// implementations must return quickly and must not call back into the
// emitting System.
type EventSink interface {
	Emit(ev Event)
}

// AppendBinary appends the event's canonical binary encoding to dst
// and returns the extended slice. This is the byte string the ledger
// hashes, so it is total (every field of the active variant is
// encoded) and deterministic: fixed-width big-endian fields, with the
// fault error flattened to its message bytes.
func (ev Event) AppendBinary(dst []byte) []byte {
	var h [20]byte
	binary.BigEndian.PutUint32(h[0:], uint32(ev.Kind))
	binary.BigEndian.PutUint32(h[4:], uint32(ev.Stream))
	binary.BigEndian.PutUint32(h[8:], uint32(ev.Frame))
	binary.BigEndian.PutUint64(h[12:], ev.PS)
	dst = append(dst, h[:]...)
	switch ev.Kind {
	case EvFrame:
		var flags uint32
		if ev.Verdict.VehicleDropped {
			flags |= 1
		}
		if ev.Verdict.VehicleStale {
			flags |= 2
		}
		if ev.Verdict.ReconfigStarted {
			flags |= 4
		}
		dst = appendU32s(dst, uint32(ev.Verdict.Cond), uint32(ev.Verdict.Vehicles),
			uint32(ev.Verdict.Pedestrians), flags, uint32(ev.Verdict.Mode))
	case EvModelSwitch:
		dst = appendU32s(dst, uint32(ev.ModelSwitch.Slot), uint32(ev.ModelSwitch.Cond))
	case EvReconfig:
		dst = appendU32s(dst, uint32(ev.Reconfig.Phase), uint32(ev.Reconfig.From),
			uint32(ev.Reconfig.To), uint32(ev.Reconfig.Attempt))
		var e [8]byte
		binary.BigEndian.PutUint64(e[:], ev.Reconfig.ElapsedPS)
		dst = append(dst, e[:]...)
	case EvFault:
		dst = appendU32s(dst, uint32(ev.Fault.Code), uint32(ev.Fault.Target),
			uint32(ev.Fault.Attempt))
		msg := ""
		if ev.Fault.Err != nil {
			msg = ev.Fault.Err.Error()
		}
		dst = appendU32s(dst, uint32(len(msg)))
		dst = append(dst, msg...)
	case EvModeChange:
		dst = appendU32s(dst, uint32(ev.ModeChange.From), uint32(ev.ModeChange.To))
	}
	return dst
}

func appendU32s(dst []byte, vs ...uint32) []byte {
	var b [4]byte
	for _, v := range vs {
		binary.BigEndian.PutUint32(b[:], v)
		dst = append(dst, b[:]...)
	}
	return dst
}

// EventLog is a ready-made recording sink: it accumulates every event
// it receives. Safe for concurrent use, so one EventLog may subscribe
// to several streams of an engine; reads return copies, never views of
// internal state.
type EventLog struct {
	mu     sync.Mutex
	events []Event
}

// NewEventLog returns an empty recording sink.
func NewEventLog() *EventLog { return &EventLog{} }

// Emit implements EventSink.
func (l *EventLog) Emit(ev Event) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

// Len returns how many events have been recorded.
func (l *EventLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.events)
}

// Events returns a copy of everything recorded, in arrival order.
func (l *EventLog) Events() []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]Event(nil), l.events...)
}

// Kind returns a copy of the recorded events of one kind, in order.
func (l *EventLog) Kind(k EventKind) []Event {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []Event
	for _, ev := range l.events {
		if ev.Kind == k {
			out = append(out, ev)
		}
	}
	return out
}

// FaultRecords derives the legacy Stats.FaultLog view from the
// recorded stream: one FaultRecord per EvFault event that carries an
// error, in order — byte-for-byte what the emitting system accumulates
// in its own Stats.
func (l *EventLog) FaultRecords() []FaultRecord {
	l.mu.Lock()
	defer l.mu.Unlock()
	var out []FaultRecord
	for _, ev := range l.events {
		if ev.Kind == EvFault && ev.Fault.Err != nil {
			out = append(out, FaultRecord{
				PS:      ev.PS,
				Frame:   int(ev.Frame),
				Target:  ev.Fault.Target,
				Attempt: int(ev.Fault.Attempt),
				Err:     ev.Fault.Err,
			})
		}
	}
	return out
}
