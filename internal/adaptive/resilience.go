package adaptive

import (
	"errors"
	"fmt"

	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/synth"
)

// Mode is the resilience state of the adaptive system. The paper's
// static/PR split guarantees the static partition (pedestrian
// detection) regardless of what happens to the reconfigurable one;
// Mode reports how well the reconfigurable side is doing.
type Mode int

const (
	// ModeNominal: the loaded configuration matches the condition, or a
	// first-attempt reconfiguration is in flight.
	ModeNominal Mode = iota
	// ModeRecovering: a reconfiguration has failed at least once and
	// retries are running within budget; vehicle detection serves the
	// last-good resident model.
	ModeRecovering
	// ModeDegraded: the retry budget is exhausted. The system keeps
	// serving — static partition every frame, last-good vehicle model —
	// and keeps retrying at the capped backoff cadence, recovering
	// automatically on the next successful switch.
	ModeDegraded
)

var modeNames = [...]string{"nominal", "recovering", "degraded"}

func (m Mode) String() string {
	if m < 0 || int(m) >= len(modeNames) {
		return "unknown"
	}
	return modeNames[m]
}

// ErrBankSelect is the typed failure of a BRAM model-bank select
// write (fault-injected; the system degrades to the previously active
// model and retries on the next frame).
var ErrBankSelect = errors.New("model-bank select failed")

// RetryPolicy bounds the reconfiguration watchdog and retry/backoff
// loop. All durations are simulated picoseconds: resilience timing
// lives on the platform clock, not the host's.
type RetryPolicy struct {
	// WatchdogPS is the deadline for the PR-done interrupt after a
	// reconfiguration launches. Zero selects the default.
	WatchdogPS uint64
	// MaxRetries is the retry budget before the system reports
	// ModeDegraded. Retries beyond it continue at the capped backoff
	// cadence (the degraded system still wants to recover).
	MaxRetries int
	// BackoffPS is the delay before the first retry; each further
	// retry doubles (BackoffMult) up to MaxBackoffPS.
	BackoffPS uint64
	// BackoffMult multiplies the backoff per retry (0 means 2).
	BackoffMult uint64
	// MaxBackoffPS caps the backoff growth.
	MaxBackoffPS uint64
}

// DefaultRetryPolicy matches the paper's timing: an 8 MB bitstream
// streams in ~20.5 ms, so the watchdog allows 1.5x that; the backoff
// starts at one tenth of a 50 fps frame slot and caps at two slots.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{
		WatchdogPS:   31_000_000_000, // 31 ms
		MaxRetries:   3,
		BackoffPS:    2_000_000_000, // 2 ms
		BackoffMult:  2,
		MaxBackoffPS: 40_000_000_000, // 40 ms
	}
}

// withDefaults fills zero fields so a zero-valued policy in Options
// means "the default policy".
func (rp RetryPolicy) withDefaults() RetryPolicy {
	def := DefaultRetryPolicy()
	if rp.WatchdogPS == 0 {
		rp.WatchdogPS = def.WatchdogPS
	}
	if rp.MaxRetries == 0 {
		rp.MaxRetries = def.MaxRetries
	}
	if rp.BackoffPS == 0 {
		rp.BackoffPS = def.BackoffPS
	}
	if rp.BackoffMult == 0 {
		rp.BackoffMult = def.BackoffMult
	}
	if rp.MaxBackoffPS == 0 {
		rp.MaxBackoffPS = def.MaxBackoffPS
	}
	return rp
}

// backoffFor returns the delay before the retry-th attempt (1-based),
// with exponential growth capped at MaxBackoffPS.
func (rp RetryPolicy) backoffFor(retry int) uint64 {
	b := rp.BackoffPS
	for i := 1; i < retry; i++ {
		if b >= rp.MaxBackoffPS/rp.BackoffMult {
			return rp.MaxBackoffPS
		}
		b *= rp.BackoffMult
	}
	if b > rp.MaxBackoffPS {
		return rp.MaxBackoffPS
	}
	return b
}

// FaultRecord is one reconfiguration fault observed by the system.
// Err wraps a typed sentinel (pr.ErrVerify, pr.ErrTimeout, pr.ErrBusy
// or ErrBankSelect), so errors.Is dispatches on it.
type FaultRecord struct {
	PS      uint64
	Frame   int
	Target  ConfigID
	Attempt int
	Err     error
}

// Mode returns the resilience state of the system.
func (s *System) Mode() Mode { return s.mode }

// requestReconfig opens (or retargets) the pending transition to
// target and launches the first attempt. One Reconfiguration record is
// appended per requested transition; retries update its Attempts.
func (s *System) requestReconfig(target ConfigID) {
	if s.pending && s.pendTarget == target {
		return
	}
	s.pending = true
	s.pendTarget = target
	s.retries = 0
	s.invalidateTemporalCaches()
	s.recIdx = len(s.stats.Reconfigs)
	s.stats.Reconfigs = append(s.stats.Reconfigs, Reconfiguration{
		Frame:   s.frameIdx,
		From:    s.loaded,
		To:      target,
		StartPS: s.Z.Sim.Now(),
	})
	s.emit(Event{Kind: EvReconfig,
		Reconfig: ReconfigEvent{Phase: ReconfigRequested, From: s.loaded, To: target}})
	// If a stream to a stale target is in flight, let it finish;
	// onPRDone sees the retarget and relaunches.
	if !s.reconfiguring {
		s.launchAttempt()
	}
}

// launchAttempt starts one reconfiguration attempt toward the pending
// target. Launch failures (verify, busy) are recorded and feed the
// retry loop; a successful launch arms the watchdog.
func (s *System) launchAttempt() {
	if !s.pending || s.reconfiguring {
		return
	}
	target := s.pendTarget
	s.attemptGen++
	gen := s.attemptGen
	s.stats.Reconfigs[s.recIdx].Attempts++
	attempt := s.stats.Reconfigs[s.recIdx].Attempts
	err := s.PR.ReconfigureStaged(s.Z, target.String(), nil)
	if err != nil {
		s.recordFault(target, attempt, err)
		if errors.Is(err, pr.ErrVerify) {
			// The resident image is corrupt: re-stage it from PS DDR
			// (the paper keeps the golden bitstreams there), then back
			// off and retry.
			s.stats.VerifyFailures++
			s.PR.Stage(s.Z, target.String(), s.Opt.BitstreamBytes, func() { s.scheduleRetry() })
			return
		}
		s.scheduleRetry()
		return
	}
	s.reconfiguring = true
	s.inFlightGen = gen
	s.inFlightTarget = target
	s.emit(Event{Kind: EvReconfig,
		Reconfig: ReconfigEvent{Phase: ReconfigLaunched, From: s.loaded, To: target, Attempt: int32(attempt)}})
	wd := s.Opt.Retry.WatchdogPS
	s.Z.Sim.Schedule(wd, func() { s.onWatchdog(gen) })
}

// onPRDone is the PR-done interrupt handler: the completion path of
// every reconfiguration. A completion whose attempt was abandoned by
// the watchdog is stale and ignored.
func (s *System) onPRDone() {
	if s.inFlightGen == 0 {
		return
	}
	s.inFlightGen = 0
	s.reconfiguring = false
	s.loaded = s.inFlightTarget
	now := s.Z.Sim.Now()
	rec := &s.stats.Reconfigs[s.recIdx]
	rec.DonePS = now
	s.emit(Event{Kind: EvReconfig, Reconfig: ReconfigEvent{
		Phase: ReconfigCompleted, From: rec.From, To: s.loaded,
		Attempt: int32(rec.Attempts), ElapsedPS: now - rec.StartPS}})
	switch {
	case s.pending && s.pendTarget == s.loaded:
		s.pending = false
		s.retries = 0
		s.setMode(ModeNominal, "recovered")
	case s.pending:
		// Retargeted while streaming: go after the new target.
		s.launchAttempt()
	}
}

// onWatchdog fires when an attempt's PR-done deadline expires. If the
// attempt is still in flight it is abandoned — the controller's DMA is
// reset — and the retry loop takes over.
func (s *System) onWatchdog(gen uint64) {
	if s.inFlightGen != gen {
		return
	}
	target := s.inFlightTarget
	s.inFlightGen = 0
	s.reconfiguring = false
	s.PR.Abort()
	s.stats.WatchdogTrips++
	err := fmt.Errorf("adaptive: reconfiguration to %s: PR-done not seen within %d ps: %w",
		target, s.Opt.Retry.WatchdogPS, pr.ErrTimeout)
	s.recordFault(target, s.stats.Reconfigs[s.recIdx].Attempts, err)
	s.scheduleRetry()
}

// scheduleRetry books the next attempt after the policy's backoff.
// Crossing the retry budget demotes the system to ModeDegraded — it
// keeps retrying at the capped cadence, because a degraded system
// still wants to recover on the next clean switch.
func (s *System) scheduleRetry() {
	if !s.pending {
		return
	}
	s.retries++
	s.stats.Retries++
	if s.retries > s.Opt.Retry.MaxRetries {
		s.setMode(ModeDegraded, s.pendTarget.String())
	}
	backoff := s.Opt.Retry.backoffFor(s.retries)
	s.emit(Event{Kind: EvReconfig, Reconfig: ReconfigEvent{
		Phase: ReconfigRetryScheduled, From: s.loaded, To: s.pendTarget,
		Attempt: int32(s.retries), ElapsedPS: backoff}})
	s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "reconfig-retry",
		fmt.Sprintf("retry %d in %d ps", s.retries, backoff))
	s.Z.Sim.Schedule(backoff, func() { s.launchAttempt() })
}

// cancelPending drops the pending transition: the condition reverted
// to the loaded configuration before a retry landed, so there is
// nothing left to recover toward.
func (s *System) cancelPending() {
	s.emit(Event{Kind: EvReconfig,
		Reconfig: ReconfigEvent{Phase: ReconfigCancelled, From: s.loaded, To: s.pendTarget}})
	s.pending = false
	s.retries = 0
	s.setMode(ModeNominal, "condition reverted")
}

// recordFault emits one fault into the event stream (which projects
// it into Stats.FaultLog and the metrics fault counters), traces it,
// and moves a nominal system into ModeRecovering — the fault is the
// moment recovery starts.
func (s *System) recordFault(target ConfigID, attempt int, err error) {
	s.emit(Event{Kind: EvFault, Fault: FaultEvent{
		Code:    faultCodeFor(err),
		Target:  target,
		Attempt: int32(attempt),
		Err:     err,
	}})
	s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "reconfig-fault", err.Error())
	if s.mode == ModeNominal {
		s.setMode(ModeRecovering, target.String())
	}
}

// setMode transitions the resilience mode, tracing it and emitting the
// change (the mode gauge is a projection of the event).
func (s *System) setMode(m Mode, detail string) {
	if s.mode == m {
		return
	}
	from := s.mode
	s.mode = m
	s.Z.Trace.Record(s.Z.Sim.Now(), "adaptive", "mode-"+m.String(), detail)
	s.emit(Event{Kind: EvModeChange, ModeChange: ModeChangeEvent{From: from, To: m}})
}

// residentCondition maps the loaded configuration to the condition
// whose detector is actually resident — what the vehicle path serves
// while the wanted switch is failing.
func (s *System) residentCondition() synth.Condition {
	if s.loaded == CfgDark {
		return synth.Dark
	}
	if s.bank != nil {
		if _, name := s.bank.Active(); name == "dusk" {
			return synth.Dusk
		}
	}
	return synth.Day
}

// syncIRQDrops folds platform-level dropped-interrupt counts into the
// event stream (the IRQ controller cannot emit itself): one
// FaultCodeIRQDrop event per newly observed drop, which the metrics
// projection counts. The loss carries no error value, so these events
// do not enter the derived Stats.FaultLog.
func (s *System) syncIRQDrops() {
	d := s.Z.IRQ.Dropped(soc.IRQPRDone)
	for s.seenIRQDrops < d {
		s.seenIRQDrops++
		s.emit(Event{Kind: EvFault, Fault: FaultEvent{Code: FaultCodeIRQDrop, Target: s.inFlightTarget}})
	}
}
