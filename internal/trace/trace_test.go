package trace

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestRecordAndEventsSorted(t *testing.T) {
	var tr Tracer
	tr.Record(300, "a", "x", "")
	tr.Record(100, "b", "y", "")
	tr.Record(200, "c", "z", "")
	evs := tr.Events()
	if len(evs) != 3 {
		t.Fatalf("len = %d", len(evs))
	}
	if evs[0].PS != 100 || evs[2].PS != 300 {
		t.Fatalf("not sorted: %+v", evs)
	}
	if tr.Len() != 3 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

func TestSpan(t *testing.T) {
	var tr Tracer
	tr.Record(1000, "pr", "start", "")
	tr.Record(5000, "pr", "done", "")
	ps, ok := tr.Span("pr", "start", "done")
	if !ok || ps != 4000 {
		t.Fatalf("Span = %d, %v", ps, ok)
	}
	if _, ok := tr.Span("pr", "start", "missing"); ok {
		t.Fatal("span to missing end reported ok")
	}
	if _, ok := tr.Span("other", "start", "done"); ok {
		t.Fatal("span for wrong source reported ok")
	}
	// Empty source matches any.
	if ps, ok := tr.Span("", "start", "done"); !ok || ps != 4000 {
		t.Fatal("wildcard source failed")
	}
}

func TestCountAndReset(t *testing.T) {
	var tr Tracer
	tr.Record(1, "s", "evt", "")
	tr.Record(2, "s", "evt", "")
	tr.Record(3, "s", "other", "")
	if tr.Count("evt") != 2 {
		t.Fatalf("Count = %d", tr.Count("evt"))
	}
	tr.Reset()
	if tr.Len() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestWriteCSV(t *testing.T) {
	var tr Tracer
	tr.Record(42, "src", "name", "detail")
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "ps,source,name,detail\n") {
		t.Fatalf("missing header: %q", out)
	}
	if !strings.Contains(out, "42,src,name,detail") {
		t.Fatalf("missing row: %q", out)
	}
}

func TestConcurrentRecord(t *testing.T) {
	var tr Tracer
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Record(uint64(j), "w", "e", "")
			}
		}(i)
	}
	wg.Wait()
	if tr.Len() != 800 {
		t.Fatalf("Len = %d", tr.Len())
	}
}
