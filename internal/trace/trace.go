// Package trace records timestamped simulation events — the software
// stand-in for the ARM performance event counters and the Vivado
// integrated logic analyzer (ILA) the paper uses to measure its
// reconfiguration throughput (§IV-A).
package trace

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one timestamped record. Time is in picoseconds of simulated
// time, matching the SoC model's clock resolution.
type Event struct {
	PS     uint64 // simulated time in picoseconds
	Source string // component name, e.g. "pr-controller"
	Name   string // event name, e.g. "dma-start"
	Detail string
}

// Tracer collects events. The zero value is ready to use; it is safe
// for concurrent use.
type Tracer struct {
	mu     sync.Mutex
	events []Event
}

// Record appends an event.
func (t *Tracer) Record(ps uint64, source, name, detail string) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = append(t.events, Event{PS: ps, Source: source, Name: name, Detail: detail})
}

// Events returns a copy of all recorded events in time order.
func (t *Tracer) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Event, len(t.events))
	copy(out, t.events)
	sort.SliceStable(out, func(i, j int) bool { return out[i].PS < out[j].PS })
	return out
}

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Reset discards all events.
func (t *Tracer) Reset() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.events = nil
}

// Span returns the time between the first event named start and the
// next event named end after it (both from the given source; empty
// source matches any). ok is false if no such pair exists.
func (t *Tracer) Span(source, start, end string) (ps uint64, ok bool) {
	evs := t.Events()
	for i, e := range evs {
		if e.Name != start || (source != "" && e.Source != source) {
			continue
		}
		for _, f := range evs[i+1:] {
			if f.Name == end && (source == "" || f.Source == source) {
				return f.PS - e.PS, true
			}
		}
		return 0, false
	}
	return 0, false
}

// Count returns how many events carry the given name.
func (t *Tracer) Count(name string) int {
	n := 0
	for _, e := range t.Events() {
		if e.Name == name {
			n++
		}
	}
	return n
}

// WriteCSV dumps all events as CSV (ps,source,name,detail).
func (t *Tracer) WriteCSV(w io.Writer) error {
	if _, err := fmt.Fprintln(w, "ps,source,name,detail"); err != nil {
		return err
	}
	for _, e := range t.Events() {
		if _, err := fmt.Fprintf(w, "%d,%s,%s,%s\n", e.PS, e.Source, e.Name, e.Detail); err != nil {
			return err
		}
	}
	return nil
}
