package pr

import (
	"errors"
	"testing"

	"advdet/internal/fault"
	"advdet/internal/soc"
)

// stage preloads a DMAICAP so a controller under test can be driven
// through its staged path where applicable.
func stageOne(z *soc.Zynq, d *DMAICAP, id string, bytes int) {
	d.Stage(z, id, bytes, nil)
	z.Sim.Run()
}

// TestControllerErrorContract is the table-driven suite of the typed
// error API: every controller × busy rejection, zero and negative
// sizes, and (for the staged controller) unstaged and verify-failure
// paths — all asserted with errors.Is, never substrings.
func TestControllerErrorContract(t *testing.T) {
	controllers := []func() Controller{
		func() Controller { return &HWICAP{} },
		func() Controller { return &PCAP{} },
		func() Controller { return &ZyCAP{} },
		func() Controller { return NewDMAICAP() },
	}
	for _, mk := range controllers {
		ctrl := mk()
		t.Run(ctrl.Name()+"/busy", func(t *testing.T) {
			ctrl := mk()
			z := soc.NewZynq()
			if err := ctrl.Reconfigure(z, 1<<20, nil); err != nil {
				t.Fatal(err)
			}
			err := ctrl.Reconfigure(z, 1<<20, nil)
			if !errors.Is(err, ErrBusy) {
				t.Fatalf("overlapping reconfigure: got %v, want ErrBusy", err)
			}
			z.Sim.Run()
			// After the first completes, the engine accepts work again.
			if err := ctrl.Reconfigure(z, 1<<20, nil); err != nil {
				t.Fatalf("post-completion reconfigure: %v", err)
			}
		})
		t.Run(ctrl.Name()+"/size", func(t *testing.T) {
			ctrl := mk()
			z := soc.NewZynq()
			for _, n := range []int{0, -1, -1 << 20} {
				if err := ctrl.Reconfigure(z, n, nil); err == nil {
					t.Fatalf("size %d accepted", n)
				} else if errors.Is(err, ErrBusy) {
					t.Fatalf("size %d misreported as busy: %v", n, err)
				}
			}
		})
	}
}

// TestOverlapRejectedBySameEngine is the regression test for the
// fresh-DMA-per-call bug: the second of two overlapping reconfigures
// must be rejected by the engine that is actually streaming, and the
// first transfer must still complete exactly once.
func TestOverlapRejectedBySameEngine(t *testing.T) {
	for _, tc := range []struct {
		name string
		ctrl Controller
	}{
		{"zycap", &ZyCAP{}},
		{"dma-icap", NewDMAICAP()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			z := soc.NewZynq()
			completions := 0
			if err := tc.ctrl.Reconfigure(z, 8<<20, func() { completions++ }); err != nil {
				t.Fatal(err)
			}
			err := tc.ctrl.Reconfigure(z, 8<<20, func() { completions++ })
			if !errors.Is(err, ErrBusy) {
				t.Fatalf("second overlapping reconfigure: got %v, want ErrBusy", err)
			}
			z.Sim.Run()
			if completions != 1 {
				t.Fatalf("completions = %d, want 1 (rejected call must not run)", completions)
			}
			if got := z.IRQ.Raised(soc.IRQPRDone); got != 1 {
				t.Fatalf("PR-done raised %d times, want 1", got)
			}
		})
	}
}

// TestStagedVsUnstaged pins the ErrNotStaged path and that staging
// clears it.
func TestStagedVsUnstaged(t *testing.T) {
	z := soc.NewZynq()
	d := NewDMAICAP()
	err := d.ReconfigureStaged(z, "dark", nil)
	if !errors.Is(err, ErrNotStaged) {
		t.Fatalf("unstaged reconfigure: got %v, want ErrNotStaged", err)
	}
	if errors.Is(err, ErrVerify) {
		t.Fatal("unstaged must not also report ErrVerify")
	}
	stageOne(z, d, "dark", 1<<20)
	if !d.Staged("dark") {
		t.Fatal("bitstream not resident after staging")
	}
	if err := d.Verify("dark"); err != nil {
		t.Fatalf("clean staging fails verify: %v", err)
	}
	if err := d.ReconfigureStaged(z, "dark", nil); err != nil {
		t.Fatalf("staged reconfigure: %v", err)
	}
}

// TestVerifyFailureOnCorruptStaging pins the CRC pass: a staging
// corrupted by the fault injector fails ReconfigureStaged with
// ErrVerify before any ICAP traffic, and re-staging clean recovers.
func TestVerifyFailureOnCorruptStaging(t *testing.T) {
	z := soc.NewZynq()
	d := NewDMAICAP()
	d.SetFaultPlan(fault.NewPlan(3).CorruptStage("dark", 1))
	stageOne(z, d, "dark", 1<<20)

	err := d.ReconfigureStaged(z, "dark", nil)
	if !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupt staging: got %v, want ErrVerify", err)
	}
	if got := z.IRQ.Raised(soc.IRQPRDone); got != 0 {
		t.Fatalf("corrupt bitstream reached the ICAP: PR-done raised %d times", got)
	}
	// Re-stage from PS DDR (occurrence 2 is clean) and retry.
	stageOne(z, d, "dark", 1<<20)
	done := false
	if err := d.ReconfigureStaged(z, "dark", func() { done = true }); err != nil {
		t.Fatalf("post-restage reconfigure: %v", err)
	}
	z.Sim.Run()
	if !done {
		t.Fatal("post-restage reconfiguration never completed")
	}
}

// TestMeasureTimeoutOnAbortedStream pins the watchdog-path error: an
// injected mid-stream abort means the completion never fires, and
// Measure reports it as ErrTimeout; Abort re-arms the engine for a
// clean retry.
func TestMeasureTimeoutOnAbortedStream(t *testing.T) {
	d := NewDMAICAP()
	d.SetFaultPlan(fault.NewPlan(5).AbortDMA("pr-dma", 1, 1<<20))
	_, err := Measure(d, 8<<20)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("aborted stream: got %v, want ErrTimeout", err)
	}
	d.Abort()
	res, err := MeasureN(d, 8<<20, 1)
	if err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
	if res.MBPerSec < 387 || res.MBPerSec > 393 {
		t.Fatalf("retry throughput %.1f MB/s outside the dma-icap band", res.MBPerSec)
	}
}

// TestZyCAPAbortReArms mirrors the abort/re-arm contract on the ZyCAP
// engine.
func TestZyCAPAbortReArms(t *testing.T) {
	zc := &ZyCAP{}
	zc.SetFaultPlan(fault.NewPlan(5).AbortDMA("zycap-dma", 1, 1<<20))
	if _, err := Measure(zc, 8<<20); !errors.Is(err, ErrTimeout) {
		t.Fatalf("aborted stream: got %v, want ErrTimeout", err)
	}
	zc.Abort()
	if _, err := Measure(zc, 8<<20); err != nil {
		t.Fatalf("retry after abort: %v", err)
	}
}

// TestMeasureNRejectsBadRepeats pins MeasureN's input contract and
// that the mean over a deterministic model equals a single run.
func TestMeasureNRejectsBadRepeats(t *testing.T) {
	if _, err := MeasureN(&PCAP{}, 1<<20, 0); err == nil {
		t.Fatal("repeats=0 accepted")
	}
	one, err := Measure(&PCAP{}, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	three, err := MeasureN(&PCAP{}, 1<<20, 3)
	if err != nil {
		t.Fatal(err)
	}
	if three.PS != one.PS {
		t.Fatalf("deterministic model: mean of 3 = %d ps, single = %d ps", three.PS, one.PS)
	}
}

// TestRestageOverwritesCorruptImage pins that Stage replaces the
// resident image rather than accumulating state.
func TestRestageOverwritesCorruptImage(t *testing.T) {
	z := soc.NewZynq()
	d := NewDMAICAP()
	d.SetFaultPlan(fault.NewPlan(7).CorruptStage("day-dusk", 1))
	stageOne(z, d, "day-dusk", 1<<20)
	if err := d.Verify("day-dusk"); !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupt image verify: got %v, want ErrVerify", err)
	}
	stageOne(z, d, "day-dusk", 1<<20)
	if err := d.Verify("day-dusk"); err != nil {
		t.Fatalf("re-staged image verify: %v", err)
	}
}
