package pr

import "errors"

// Typed sentinel errors for the reconfiguration flow. Every error the
// controllers return wraps one of these with %w, so callers in
// adaptive and above dispatch with errors.Is instead of matching
// message substrings.
var (
	// ErrBusy: a reconfiguration (or staging transfer) is already in
	// flight on the engine.
	ErrBusy = errors.New("reconfiguration already in flight")
	// ErrNotStaged: the named bitstream is not resident in PL DDR.
	ErrNotStaged = errors.New("bitstream not staged")
	// ErrVerify: the staged bitstream's checksum does not match the one
	// recorded at generation time — the image in PL DDR is corrupt and
	// must not be streamed into the ICAP.
	ErrVerify = errors.New("staged bitstream failed CRC verification")
	// ErrTimeout: the reconfiguration never signaled completion. The
	// controllers return it from Measure when the simulator drains
	// without a completion; adaptive's watchdog wraps it when the
	// PR-done interrupt misses its deadline.
	ErrTimeout = errors.New("reconfiguration timed out")
)
