// Package pr implements the partial-reconfiguration controllers
// compared in §IV-A of the paper over the SoC model:
//
//   - PCAP: the stock PS-driven path through the processor
//     configuration access port (145 MB/s effective),
//   - AXI HWICAP: the Xilinx soft core fed word-by-word over a PS
//     general-purpose port (19 MB/s),
//   - ZyCAP-style: a PL DMA master pulling the bitstream from PS DDR
//     over an HP port into ICAP (382 MB/s),
//   - DMA-ICAP (the paper's controller, Fig. 7): the bitstream is
//     staged in the PL-side DDR once, and reconfiguration streams it
//     through a PL DMA and ICAP manager without touching the PS
//     interconnect at all (390 MB/s, 97.5% of the 400 MB/s ceiling).
package pr

import (
	"fmt"

	"advdet/internal/axi"
	"advdet/internal/soc"
)

// Controller is one reconfiguration mechanism.
type Controller interface {
	// Name identifies the mechanism.
	Name() string
	// Reconfigure moves a partial bitstream of the given size into
	// the configuration memory on the platform, invoking done at
	// completion. It returns an error if a reconfiguration is already
	// in flight.
	Reconfigure(z *soc.Zynq, bytes int, done func()) error
}

// Result is one measured reconfiguration.
type Result struct {
	Controller string
	Bytes      int
	PS         uint64 // simulated duration
	MBPerSec   float64
}

// Measure runs a single reconfiguration of the given size on a fresh
// platform and reports its throughput — the experiment behind the
// §IV-A comparison (ARM event counters / ILA in the paper, the
// simulation tracer here). The size must be positive: a zero-byte
// bitstream is a caller bug, not a measurement.
func Measure(ctrl Controller, bytes int) (Result, error) {
	if bytes <= 0 {
		return Result{}, fmt.Errorf("pr: bitstream size must be positive, got %d", bytes)
	}
	z := soc.NewZynq()
	start := z.Sim.Now()
	var (
		finish    uint64
		completed bool
	)
	err := ctrl.Reconfigure(z, bytes, func() { finish, completed = z.Sim.Now(), true })
	if err != nil {
		return Result{}, err
	}
	z.Sim.Run()
	if !completed {
		return Result{}, fmt.Errorf("pr: %s never completed", ctrl.Name())
	}
	d := finish - start
	return Result{Controller: ctrl.Name(), Bytes: bytes, PS: d, MBPerSec: soc.MBPerSec(bytes, d)}, nil
}

// PCAP is the processor configuration access port path: the PS DevC
// DMA reads the bitstream from PS DDR and pushes it through the PCAP
// bridge; every burst crosses the PS central interconnect.
type PCAP struct{ busy bool }

// Name implements Controller.
func (p *PCAP) Name() string { return "pcap" }

// Reconfigure implements Controller.
func (p *PCAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if p.busy {
		return fmt.Errorf("pr: pcap busy")
	}
	p.busy = true
	z.Trace.Record(z.Sim.Now(), "pcap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	z.PCAP.Start(z.Sim, bytes, func() {
		p.busy = false
		z.Trace.Record(z.Sim.Now(), "pcap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	return nil
}

// HWICAP is the Xilinx AXI HWICAP soft core: the PS writes the
// bitstream one 32-bit word at a time through a general-purpose port,
// paying the full AXI-Lite round trip per word.
type HWICAP struct{ busy bool }

// Name implements Controller.
func (h *HWICAP) Name() string { return "axi-hwicap" }

// Reconfigure implements Controller.
func (h *HWICAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if h.busy {
		return fmt.Errorf("pr: hwicap busy")
	}
	h.busy = true
	z.Trace.Record(z.Sim.Now(), "hwicap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	// The GP port is the bottleneck; the ICAP absorbs each word
	// immediately, so the transfer is a single GP-paced stream.
	z.GP0.Start(z.Sim, bytes, func() {
		h.busy = false
		z.Trace.Record(z.Sim.Now(), "hwicap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	return nil
}

// ZyCAP is the Vipin/Fahmy-style controller: a DMA instantiated on
// the PL fetches the bitstream from PS DDR through an AXI HP port and
// feeds the ICAP primitive.
type ZyCAP struct{ dma *axi.DMA }

// Name implements Controller.
func (zc *ZyCAP) Name() string { return "zycap" }

// Reconfigure implements Controller.
func (zc *ZyCAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if zc.dma != nil && zc.dma.Busy() {
		return fmt.Errorf("pr: zycap busy")
	}
	z.Trace.Record(z.Sim.Now(), "zycap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	zc.dma = axi.NewDMA("zycap-dma", z.Sim, z.ZyCAPFeed, func() {
		z.Trace.Record(z.Sim.Now(), "zycap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	return driveDMA(zc.dma, bytes)
}

// DMAICAP is the paper's PR controller (Fig. 7): partial bitstreams
// are staged in the PL-dedicated DDR3 at startup; a reconfiguration
// triggers a PL DMA that streams the bitstream through the ICAP
// manager into ICAPE2, then interrupts the PS. No PS interconnect hop
// is involved, and the HP ports stay free for detection traffic.
type DMAICAP struct {
	dma *axi.DMA
	// staged tracks the bitstreams preloaded into PL DDR, keyed by id.
	staged map[string]int
}

// NewDMAICAP returns an empty controller; bitstreams must be staged
// before reconfiguring.
func NewDMAICAP() *DMAICAP { return &DMAICAP{staged: map[string]int{}} }

// Name implements Controller.
func (d *DMAICAP) Name() string { return "dma-icap" }

// Stage preloads a partial bitstream into PL DDR over an HP port (the
// one-time boot cost), returning the simulated completion time.
func (d *DMAICAP) Stage(z *soc.Zynq, id string, bytes int, done func()) {
	z.Trace.Record(z.Sim.Now(), "dma-icap", "stage-start", id)
	z.HP2.Start(z.Sim, bytes, func() {
		d.staged[id] = bytes
		z.Trace.Record(z.Sim.Now(), "dma-icap", "stage-done", id)
		if done != nil {
			done()
		}
	})
}

// Staged reports whether the named bitstream is resident in PL DDR.
func (d *DMAICAP) Staged(id string) bool { _, ok := d.staged[id]; return ok }

// Reconfigure implements Controller: it streams from PL DDR through
// the DMA into the ICAP.
func (d *DMAICAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if d.dma != nil && d.dma.Busy() {
		return fmt.Errorf("pr: dma-icap busy")
	}
	z.Trace.Record(z.Sim.Now(), "dma-icap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	d.dma = axi.NewDMA("pr-dma", z.Sim, z.PLDDRFeed, func() {
		z.Trace.Record(z.Sim.Now(), "dma-icap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	return driveDMA(d.dma, bytes)
}

// ReconfigureStaged reconfigures with a previously staged bitstream,
// failing if it was never staged — the driver-level invariant of the
// paper's flow.
func (d *DMAICAP) ReconfigureStaged(z *soc.Zynq, id string, done func()) error {
	bytes, ok := d.staged[id]
	if !ok {
		return fmt.Errorf("pr: bitstream %q not staged in PL DDR", id)
	}
	return d.Reconfigure(z, bytes, done)
}

// driveDMA programs a DMA the way the PS driver does: run bit, source
// address, then length (which launches the transfer).
func driveDMA(dma *axi.DMA, bytes int) error {
	if err := dma.WriteReg(axi.RegDMACR, 1); err != nil {
		return err
	}
	if err := dma.WriteReg(axi.RegSrcAddr, 0x1000_0000); err != nil {
		return err
	}
	return dma.WriteReg(axi.RegLength, uint32(bytes))
}

// All returns one instance of each controller, ordered as in the
// paper's discussion.
func All() []Controller {
	return []Controller{&HWICAP{}, &PCAP{}, &ZyCAP{}, NewDMAICAP()}
}
