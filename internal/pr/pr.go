// Package pr implements the partial-reconfiguration controllers
// compared in §IV-A of the paper over the SoC model:
//
//   - PCAP: the stock PS-driven path through the processor
//     configuration access port (145 MB/s effective),
//   - AXI HWICAP: the Xilinx soft core fed word-by-word over a PS
//     general-purpose port (19 MB/s),
//   - ZyCAP-style: a PL DMA master pulling the bitstream from PS DDR
//     over an HP port into ICAP (382 MB/s),
//   - DMA-ICAP (the paper's controller, Fig. 7): the bitstream is
//     staged in the PL-side DDR once, and reconfiguration streams it
//     through a PL DMA and ICAP manager without touching the PS
//     interconnect at all (390 MB/s, 97.5% of the 400 MB/s ceiling).
//
// Errors are typed: every failure wraps one of the sentinels in
// errors.go (ErrBusy, ErrNotStaged, ErrVerify, ErrTimeout), so
// callers dispatch with errors.Is.
//
// lint:simtime
package pr

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"advdet/internal/axi"
	"advdet/internal/fault"
	"advdet/internal/soc"
)

// Controller is one reconfiguration mechanism.
type Controller interface {
	// Name identifies the mechanism.
	Name() string
	// Reconfigure moves a partial bitstream of the given size into
	// the configuration memory on the platform, invoking done at
	// completion. It returns an error wrapping ErrBusy if a
	// reconfiguration is already in flight.
	Reconfigure(z *soc.Zynq, bytes int, done func()) error
}

// Result is one measured reconfiguration.
type Result struct {
	Controller string
	Bytes      int
	PS         uint64 // simulated duration
	MBPerSec   float64
}

// Measure runs a single reconfiguration of the given size on a fresh
// platform and reports its throughput — the experiment behind the
// §IV-A comparison (ARM event counters / ILA in the paper, the
// simulation tracer here). The size must be positive: a zero-byte
// bitstream is a caller bug, not a measurement. A reconfiguration
// that never signals completion (an injected mid-stream abort, say)
// returns an error wrapping ErrTimeout.
func Measure(ctrl Controller, bytes int) (Result, error) {
	if bytes <= 0 {
		return Result{}, fmt.Errorf("pr: bitstream size must be positive, got %d", bytes)
	}
	z := soc.NewZynq()
	start := z.Sim.Now()
	var (
		finish    uint64
		completed bool
	)
	err := ctrl.Reconfigure(z, bytes, func() { finish, completed = z.Sim.Now(), true })
	if err != nil {
		return Result{}, err
	}
	z.Sim.Run()
	if !completed {
		return Result{}, fmt.Errorf("pr: %s never completed: %w", ctrl.Name(), ErrTimeout)
	}
	d := finish - start
	return Result{Controller: ctrl.Name(), Bytes: bytes, PS: d, MBPerSec: soc.MBPerSec(bytes, d)}, nil
}

// MeasureN runs Measure repeats times, each on a fresh platform, and
// returns the result with the mean duration — the repeat knob behind
// the root API's WithMeasureRepeats. The model is deterministic, so
// repeats tighten nothing today; the knob exists so the bench surface
// is ready for models with contention jitter.
func MeasureN(ctrl Controller, bytes, repeats int) (Result, error) {
	if repeats <= 0 {
		return Result{}, fmt.Errorf("pr: repeats must be positive, got %d", repeats)
	}
	var (
		sumPS uint64
		out   Result
	)
	for i := 0; i < repeats; i++ {
		r, err := Measure(ctrl, bytes)
		if err != nil {
			return Result{}, err
		}
		sumPS += r.PS
		out = r
	}
	out.PS = sumPS / uint64(repeats)
	out.MBPerSec = soc.MBPerSec(bytes, out.PS)
	return out, nil
}

// checkSize rejects non-positive bitstream sizes up front, before any
// platform state is touched.
func checkSize(name string, bytes int) error {
	if bytes <= 0 {
		return fmt.Errorf("pr: %s: bitstream size must be positive, got %d", name, bytes)
	}
	return nil
}

// PCAP is the processor configuration access port path: the PS DevC
// DMA reads the bitstream from PS DDR and pushes it through the PCAP
// bridge; every burst crosses the PS central interconnect.
type PCAP struct{ busy bool }

// Name implements Controller.
func (p *PCAP) Name() string { return "pcap" }

// Reconfigure implements Controller.
func (p *PCAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if err := checkSize(p.Name(), bytes); err != nil {
		return err
	}
	if p.busy {
		return fmt.Errorf("pr: pcap: %w", ErrBusy)
	}
	p.busy = true
	z.Trace.Record(z.Sim.Now(), "pcap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	z.PCAP.Start(z.Sim, bytes, func() {
		p.busy = false
		z.Trace.Record(z.Sim.Now(), "pcap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	return nil
}

// HWICAP is the Xilinx AXI HWICAP soft core: the PS writes the
// bitstream one 32-bit word at a time through a general-purpose port,
// paying the full AXI-Lite round trip per word.
type HWICAP struct{ busy bool }

// Name implements Controller.
func (h *HWICAP) Name() string { return "axi-hwicap" }

// Reconfigure implements Controller.
func (h *HWICAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if err := checkSize(h.Name(), bytes); err != nil {
		return err
	}
	if h.busy {
		return fmt.Errorf("pr: hwicap: %w", ErrBusy)
	}
	h.busy = true
	z.Trace.Record(z.Sim.Now(), "hwicap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	// The GP port is the bottleneck; the ICAP absorbs each word
	// immediately, so the transfer is a single GP-paced stream.
	z.GP0.Start(z.Sim, bytes, func() {
		h.busy = false
		z.Trace.Record(z.Sim.Now(), "hwicap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	return nil
}

// ZyCAP is the Vipin/Fahmy-style controller: a DMA instantiated on
// the PL fetches the bitstream from PS DDR through an AXI HP port and
// feeds the ICAP primitive. The controller owns exactly one DMA
// engine, so overlap is rejected by the same engine that is actually
// busy.
type ZyCAP struct {
	dma    *axi.DMA
	z      *soc.Zynq
	onDone func()
	fault  *fault.Plan
}

// Name implements Controller.
func (zc *ZyCAP) Name() string { return "zycap" }

// SetFaultPlan installs the fault injector on the controller's DMA
// engine. A nil plan disables injection.
func (zc *ZyCAP) SetFaultPlan(p *fault.Plan) {
	zc.fault = p
	if zc.dma != nil {
		zc.dma.SetFaultPlan(p)
	}
}

// bind lazily creates the owned DMA, rebinding only when the platform
// changes (Measure builds a fresh Zynq per run).
func (zc *ZyCAP) bind(z *soc.Zynq) {
	if zc.dma != nil && zc.z == z {
		return
	}
	zc.z = z
	zc.dma = axi.NewDMA("zycap-dma", z.Sim, z.ZyCAPFeed, func() {
		done := zc.onDone
		zc.onDone = nil
		z.Trace.Record(z.Sim.Now(), "zycap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	zc.dma.SetFaultPlan(zc.fault)
}

// Reconfigure implements Controller.
func (zc *ZyCAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if err := checkSize(zc.Name(), bytes); err != nil {
		return err
	}
	zc.bind(z)
	if zc.dma.Busy() {
		return fmt.Errorf("pr: zycap: %w", ErrBusy)
	}
	zc.onDone = done
	z.Trace.Record(z.Sim.Now(), "zycap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	return driveDMA(zc.dma, bytes)
}

// Abort resets the owned DMA, abandoning any in-flight transfer. Safe
// to call when idle.
func (zc *ZyCAP) Abort() {
	zc.onDone = nil
	if zc.dma != nil {
		zc.dma.Reset()
	}
}

// stagedImage is one bitstream resident in PL DDR. goldCRC is the
// checksum recorded when the image was generated; memCRC is the
// checksum of what actually landed in memory. They differ only when a
// fault corrupted the staging transfer.
type stagedImage struct {
	bytes   int
	goldCRC uint32
	memCRC  uint32
}

// DMAICAP is the paper's PR controller (Fig. 7): partial bitstreams
// are staged in the PL-dedicated DDR3 at startup; a reconfiguration
// triggers a PL DMA that streams the bitstream through the ICAP
// manager into ICAPE2, then interrupts the PS. No PS interconnect hop
// is involved, and the HP ports stay free for detection traffic. The
// controller owns exactly one DMA engine; staging records a CRC32
// that ReconfigureStaged verifies before streaming.
type DMAICAP struct {
	dma    *axi.DMA
	z      *soc.Zynq
	onDone func()
	fault  *fault.Plan
	// staged tracks the bitstreams preloaded into PL DDR, keyed by id.
	staged map[string]stagedImage
}

// NewDMAICAP returns an empty controller; bitstreams must be staged
// before reconfiguring.
func NewDMAICAP() *DMAICAP { return &DMAICAP{staged: map[string]stagedImage{}} }

// Name implements Controller.
func (d *DMAICAP) Name() string { return "dma-icap" }

// SetFaultPlan installs the fault injector consulted at staging and at
// each DMA launch. A nil plan disables injection.
func (d *DMAICAP) SetFaultPlan(p *fault.Plan) {
	d.fault = p
	if d.dma != nil {
		d.dma.SetFaultPlan(p)
	}
}

// bitstreamCRC is the generation-time checksum of a synthetic
// bitstream: the model has no real bytes, so the CRC covers the
// identifying header (id + size), deterministically.
func bitstreamCRC(id string, bytes int) uint32 {
	h := crc32.NewIEEE()
	h.Write([]byte(id))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], uint64(bytes))
	h.Write(b[:])
	return h.Sum32()
}

// Stage preloads a partial bitstream into PL DDR over an HP port (the
// one-time boot cost), recording its CRC32 for the verify pass, and
// invoking done at completion. Re-staging an id overwrites the
// resident image — the recovery path for a corrupted staging.
func (d *DMAICAP) Stage(z *soc.Zynq, id string, bytes int, done func()) {
	z.Trace.Record(z.Sim.Now(), "dma-icap", "stage-start", id)
	z.HP2.Start(z.Sim, bytes, func() {
		img := stagedImage{bytes: bytes, goldCRC: bitstreamCRC(id, bytes)}
		img.memCRC = img.goldCRC
		if mask, corrupt := d.fault.OnStage(id); corrupt {
			img.memCRC ^= mask
			z.Trace.Record(z.Sim.Now(), "dma-icap", "stage-corrupt", id)
		}
		d.staged[id] = img
		z.Trace.Record(z.Sim.Now(), "dma-icap", "stage-done", id)
		if done != nil {
			done()
		}
	})
}

// Staged reports whether the named bitstream is resident in PL DDR.
func (d *DMAICAP) Staged(id string) bool { _, ok := d.staged[id]; return ok }

// Verify recomputes the resident image's checksum against the one
// recorded at generation time — the CRC-word check a real ICAP flow
// runs before committing a bitstream to the fabric. It returns an
// error wrapping ErrNotStaged or ErrVerify.
func (d *DMAICAP) Verify(id string) error {
	img, ok := d.staged[id]
	if !ok {
		return fmt.Errorf("pr: dma-icap: bitstream %q: %w", id, ErrNotStaged)
	}
	if img.memCRC != img.goldCRC {
		return fmt.Errorf("pr: dma-icap: bitstream %q: crc %#08x != %#08x: %w",
			id, img.memCRC, img.goldCRC, ErrVerify)
	}
	return nil
}

// bind lazily creates the owned DMA, rebinding only when the platform
// changes (Measure builds a fresh Zynq per run).
func (d *DMAICAP) bind(z *soc.Zynq) {
	if d.dma != nil && d.z == z {
		return
	}
	d.z = z
	d.dma = axi.NewDMA("pr-dma", z.Sim, z.PLDDRFeed, func() {
		done := d.onDone
		d.onDone = nil
		z.Trace.Record(z.Sim.Now(), "dma-icap", "reconfig-done", "")
		z.IRQ.Raise(soc.IRQPRDone)
		if done != nil {
			done()
		}
	})
	d.dma.SetFaultPlan(d.fault)
}

// Reconfigure implements Controller: it streams from PL DDR through
// the DMA into the ICAP.
func (d *DMAICAP) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if err := checkSize(d.Name(), bytes); err != nil {
		return err
	}
	d.bind(z)
	if d.dma.Busy() {
		return fmt.Errorf("pr: dma-icap: %w", ErrBusy)
	}
	d.onDone = done
	z.Trace.Record(z.Sim.Now(), "dma-icap", "reconfig-start", fmt.Sprintf("%d bytes", bytes))
	return driveDMA(d.dma, bytes)
}

// ReconfigureStaged reconfigures with a previously staged bitstream
// after verifying its checksum — the driver-level invariant of the
// paper's flow. It returns an error wrapping ErrNotStaged, ErrVerify
// or ErrBusy.
func (d *DMAICAP) ReconfigureStaged(z *soc.Zynq, id string, done func()) error {
	if err := d.Verify(id); err != nil {
		return err
	}
	return d.Reconfigure(z, d.staged[id].bytes, done)
}

// Abort resets the owned DMA, abandoning any in-flight transfer and
// freeing the feed link — the watchdog's re-arm path. Safe to call
// when idle.
func (d *DMAICAP) Abort() {
	d.onDone = nil
	if d.dma != nil {
		d.dma.Reset()
	}
}

// driveDMA programs a DMA the way the PS driver does: run bit, source
// address, then length (which launches the transfer).
func driveDMA(dma *axi.DMA, bytes int) error {
	if err := dma.WriteReg(axi.RegDMACR, axi.CtrlRun); err != nil {
		return err
	}
	if err := dma.WriteReg(axi.RegSrcAddr, 0x1000_0000); err != nil {
		return err
	}
	return dma.WriteReg(axi.RegLength, uint32(bytes))
}

// All returns one instance of each controller, ordered as in the
// paper's discussion.
func All() []Controller {
	return []Controller{&HWICAP{}, &PCAP{}, &ZyCAP{}, NewDMAICAP()}
}
