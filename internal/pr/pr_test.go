package pr

import (
	"math"
	"testing"

	"advdet/internal/fpga"
	"advdet/internal/soc"
)

const eightMB = 8_000_000

func TestMeasureThroughputsMatchPaper(t *testing.T) {
	// §IV-A: HWICAP 19 MB/s, PCAP ~145 MB/s, ZyCAP 382 MB/s,
	// DMA-ICAP ~390 MB/s. Bands allow burst-rounding slack.
	want := map[string][2]float64{
		"axi-hwicap": {18, 20},
		"pcap":       {140, 150},
		"zycap":      {378, 386},
		"dma-icap":   {387, 393},
	}
	for _, ctrl := range All() {
		res, err := Measure(ctrl, eightMB)
		if err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		band := want[res.Controller]
		if res.MBPerSec < band[0] || res.MBPerSec > band[1] {
			t.Errorf("%s throughput %.1f MB/s, want in %v", res.Controller, res.MBPerSec, band)
		}
	}
}

func TestSpeedupOverPCAPExceeds2Point6(t *testing.T) {
	pcap, err := Measure(&PCAP{}, eightMB)
	if err != nil {
		t.Fatal(err)
	}
	ours, err := Measure(NewDMAICAP(), eightMB)
	if err != nil {
		t.Fatal(err)
	}
	if s := ours.MBPerSec / pcap.MBPerSec; s < 2.6 {
		t.Fatalf("speedup %.2f, paper reports > 2.6", s)
	}
}

func TestReconfigTimeIs20ms(t *testing.T) {
	// §IV-B: an 8 MB partial bitstream reconfigures in ~20 ms, one
	// frame at 50 fps.
	res, err := Measure(NewDMAICAP(), fpga.DefaultFloorplan().PartialBitstreamBytes())
	if err != nil {
		t.Fatal(err)
	}
	ms := soc.Seconds(res.PS) * 1e3
	if math.Abs(ms-20) > 1.5 {
		t.Fatalf("reconfiguration took %.2f ms, want ~20", ms)
	}
	framesLost := ms / 20.0
	if framesLost > 1.1 {
		t.Fatalf("reconfiguration costs %.2f frame slots at 50 fps, want ~1", framesLost)
	}
}

func TestControllersRaisePRDoneIRQ(t *testing.T) {
	for _, ctrl := range All() {
		z := soc.NewZynq()
		if err := ctrl.Reconfigure(z, 1024, nil); err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		z.Sim.Run()
		if z.IRQ.Raised(soc.IRQPRDone) != 1 {
			t.Errorf("%s did not raise the PR-done IRQ", ctrl.Name())
		}
		if z.Trace.Count("reconfig-done") != 1 {
			t.Errorf("%s did not trace completion", ctrl.Name())
		}
	}
}

func TestControllersRejectOverlap(t *testing.T) {
	for _, ctrl := range All() {
		z := soc.NewZynq()
		if err := ctrl.Reconfigure(z, 1<<20, nil); err != nil {
			t.Fatalf("%s: %v", ctrl.Name(), err)
		}
		if err := ctrl.Reconfigure(z, 1<<20, nil); err == nil {
			t.Errorf("%s accepted overlapping reconfiguration", ctrl.Name())
		}
		z.Sim.Run()
	}
}

func TestDMAICAPStaging(t *testing.T) {
	z := soc.NewZynq()
	d := NewDMAICAP()
	if d.Staged("dark") {
		t.Fatal("unstaged bitstream reported staged")
	}
	if err := d.ReconfigureStaged(z, "dark", nil); err == nil {
		t.Fatal("reconfigure with unstaged bitstream accepted")
	}
	staged := false
	d.Stage(z, "dark", eightMB, func() { staged = true })
	z.Sim.Run()
	if !staged || !d.Staged("dark") {
		t.Fatal("staging did not complete")
	}
	done := false
	if err := d.ReconfigureStaged(z, "dark", func() { done = true }); err != nil {
		t.Fatal(err)
	}
	z.Sim.Run()
	if !done {
		t.Fatal("staged reconfiguration did not complete")
	}
}

func TestStagingIsSlowerPathThanReconfig(t *testing.T) {
	// Staging uses an HP port (1066 MB/s) so it is faster than the
	// ICAP-bound reconfiguration — the design rationale: pay the DDR
	// copy once at boot, not per reconfiguration.
	z := soc.NewZynq()
	d := NewDMAICAP()
	var stageDone uint64
	d.Stage(z, "cfg", eightMB, func() { stageDone = z.Sim.Now() })
	z.Sim.Run()
	res, err := Measure(d, eightMB)
	if err != nil {
		t.Fatal(err)
	}
	if stageDone >= res.PS {
		t.Fatalf("staging (%d ps) should be faster than reconfig (%d ps)", stageDone, res.PS)
	}
}

// instantController completes synchronously at whatever time the
// simulator already shows — for a fresh platform, t=0. A completion
// timestamp of zero is legitimate, so Measure must track completion
// with an explicit flag rather than treating finish==0 as "never ran".
type instantController struct{}

func (instantController) Name() string { return "instant" }
func (instantController) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	if done != nil {
		done()
	}
	return nil
}

func TestMeasureAcceptsCompletionAtTimeZero(t *testing.T) {
	res, err := Measure(instantController{}, 1024)
	if err != nil {
		t.Fatalf("completion at t=0 misread as never-completed: %v", err)
	}
	if res.PS != 0 || res.MBPerSec != 0 {
		t.Fatalf("instant completion measured as %+v, want zero duration and zero throughput", res)
	}
}

// silentController never invokes done: the failure the completed flag
// must still catch.
type silentController struct{}

func (silentController) Name() string { return "silent" }
func (silentController) Reconfigure(z *soc.Zynq, bytes int, done func()) error {
	return nil
}

func TestMeasureDetectsNeverCompleted(t *testing.T) {
	if _, err := Measure(silentController{}, 1024); err == nil {
		t.Fatal("controller that never completed measured successfully")
	}
}

func TestMeasureRejectsNonPositiveSize(t *testing.T) {
	for _, ctrl := range All() {
		for _, n := range []int{0, -1} {
			if _, err := Measure(ctrl, n); err == nil {
				t.Errorf("%s: Measure accepted %d bytes", ctrl.Name(), n)
			}
		}
	}
}

func TestMeasureScalesLinearly(t *testing.T) {
	small, err := Measure(&PCAP{}, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	big, err := Measure(&PCAP{}, 8_000_000)
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(big.PS) / float64(small.PS)
	if math.Abs(ratio-8) > 0.1 {
		t.Fatalf("time ratio %v for 8x bytes", ratio)
	}
}
