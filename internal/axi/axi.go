// Package axi models the AXI infrastructure of Fig. 6 at the
// driver-visible level: AXI-Lite register files through which the PS
// controls the accelerators, and AXI DMA engines that move stream
// data between memory and the detection pipelines ("Processing system
// initiates the DMA data transfer by writing to its registers and
// defining the size of data", §IV).
//
// lint:simtime
package axi

import (
	"fmt"

	"advdet/internal/fault"
	"advdet/internal/soc"
)

// AXI DMA register offsets (subset of the Xilinx AXI DMA map used by
// the paper's drivers).
const (
	RegDMACR   = 0x00 // control: bit 0 = run/stop, bit 2 = soft reset
	RegDMASR   = 0x04 // status: bit 0 = halted, bit 1 = idle
	RegSrcAddr = 0x18 // source address
	RegLength  = 0x28 // transfer length in bytes; writing starts the DMA
)

// Control bits of RegDMACR.
const (
	CtrlRun   = 1 << 0
	CtrlReset = 1 << 2 // self-clearing soft reset, as on the Xilinx core
)

// Status bits of RegDMASR.
const (
	StatusHalted = 1 << 0
	StatusIdle   = 1 << 1
	StatusIOCIrq = 1 << 12 // interrupt-on-complete latched
	StatusErrIrq = 1 << 14 // transfer error latched (aborted stream)
)

// DMA is a one-channel AXI DMA engine bound to a transfer link. The
// PS (or an on-PL master) programs it through the register interface;
// writing the length register launches the transfer, and completion
// raises the bound IRQ line.
type DMA struct {
	Name string

	sim  *soc.Sim
	link *soc.BurstLink
	irq  func()

	regs        map[uint32]uint32
	busy        bool
	transferred uint64
	completions int
	faults      int
	fault       *fault.Plan
	// gen invalidates in-flight completion callbacks across a Reset:
	// a completion scheduled before the reset finds the generation
	// advanced and delivers nothing, exactly like a halted engine
	// ignoring a late stream beat.
	gen uint64
}

// NewDMA builds a DMA on the simulator moving data over link; irq
// (optional) is invoked at each transfer completion.
func NewDMA(name string, sim *soc.Sim, link *soc.BurstLink, irq func()) *DMA {
	return &DMA{
		Name: name,
		sim:  sim,
		link: link,
		irq:  irq,
		regs: map[uint32]uint32{RegDMASR: StatusHalted},
	}
}

// WriteReg models an AXI-Lite write. Writing RegLength while the
// engine is running launches a transfer of that many bytes.
func (d *DMA) WriteReg(addr, val uint32) error {
	switch addr {
	case RegDMACR:
		if val&CtrlReset != 0 {
			d.Reset()
			return nil
		}
		d.regs[RegDMACR] = val
		if val&1 == 1 {
			d.regs[RegDMASR] &^= StatusHalted
			d.regs[RegDMASR] |= StatusIdle
		} else {
			d.regs[RegDMASR] |= StatusHalted
		}
	case RegSrcAddr:
		d.regs[RegSrcAddr] = val
	case RegLength:
		if d.regs[RegDMACR]&1 == 0 {
			return fmt.Errorf("axi: %s: length written while halted", d.Name)
		}
		if d.busy {
			return fmt.Errorf("axi: %s: transfer already in flight", d.Name)
		}
		if val == 0 {
			return fmt.Errorf("axi: %s: zero-length transfer", d.Name)
		}
		d.regs[RegLength] = val
		d.start(int(val))
	default:
		return fmt.Errorf("axi: %s: write to unmapped register %#x", d.Name, addr)
	}
	return nil
}

// ReadReg models an AXI-Lite read.
func (d *DMA) ReadReg(addr uint32) (uint32, error) {
	v, ok := d.regs[addr]
	if !ok {
		return 0, fmt.Errorf("axi: %s: read from unmapped register %#x", d.Name, addr)
	}
	return v, nil
}

func (d *DMA) start(bytes int) {
	d.busy = true
	d.regs[RegDMASR] &^= StatusIdle
	gen := d.gen
	switch fv := d.fault.OnDMA(d.Name, bytes); fv.Action {
	case fault.DMAAbort:
		// The stream dies at the fault offset: the engine error-halts,
		// no completion interrupt ever fires, and the link goes idle
		// after the partial transfer.
		d.link.Start(d.sim, fv.Offset, func() {
			if d.gen != gen {
				return
			}
			d.busy = false
			d.faults++
			d.regs[RegDMASR] |= StatusHalted | StatusErrIrq
		})
	case fault.DMAStall:
		// The full transfer happens, with the stall folded into the
		// link occupancy, so anything queued behind it waits too.
		d.link.StartExtra(d.sim, bytes, fv.StallPS, func() { d.complete(gen, bytes) })
	default:
		d.link.Start(d.sim, bytes, func() { d.complete(gen, bytes) })
	}
}

// complete delivers a transfer completion unless a Reset has
// invalidated it.
func (d *DMA) complete(gen uint64, bytes int) {
	if d.gen != gen {
		return
	}
	d.busy = false
	d.transferred += uint64(bytes)
	d.completions++
	d.regs[RegDMASR] |= StatusIdle | StatusIOCIrq
	if d.irq != nil {
		d.irq()
	}
}

// Reset models the DMACR soft-reset bit: the engine halts, any
// in-flight transfer is abandoned (its completion and interrupt are
// swallowed), the link is released, and the register file returns to
// the power-on state. This is the watchdog's re-arm path.
func (d *DMA) Reset() {
	d.gen++
	d.busy = false
	d.link.Release(d.sim)
	d.regs[RegDMACR] = 0
	d.regs[RegDMASR] = StatusHalted
}

// SetFaultPlan installs the fault injector consulted at each transfer
// launch. A nil plan disables injection.
func (d *DMA) SetFaultPlan(p *fault.Plan) { d.fault = p }

// Busy reports whether a transfer is in flight.
func (d *DMA) Busy() bool { return d.busy }

// Faults returns the number of transfers that error-halted.
func (d *DMA) Faults() int { return d.faults }

// Transferred returns the total bytes moved.
func (d *DMA) Transferred() uint64 { return d.transferred }

// Completions returns the number of finished transfers.
func (d *DMA) Completions() int { return d.completions }

// AckIRQ clears the latched interrupt-on-complete status bit, as the
// driver's interrupt handler does.
func (d *DMA) AckIRQ() { d.regs[RegDMASR] &^= StatusIOCIrq }

// Lite is a generic AXI-Lite register file for accelerator parameter
// blocks ("Parameters of detection modules are also accessible by PS
// and could be updated through AXI-Lite interface"). Each access
// costs one GP-port transaction of simulated time.
type Lite struct {
	Name string
	sim  *soc.Sim
	port *soc.BurstLink
	regs map[uint32]uint32
	// accessPS accumulates the simulated time spent on register I/O.
	accessPS uint64
}

// NewLite builds a register file accessed through the given GP port.
func NewLite(name string, sim *soc.Sim, port *soc.BurstLink) *Lite {
	return &Lite{Name: name, sim: sim, port: port, regs: map[uint32]uint32{}}
}

// Write stores a register value, charging one 4-byte GP transaction.
func (l *Lite) Write(addr, val uint32) {
	l.accessPS += l.port.TransferPS(4)
	l.regs[addr] = val
}

// Read returns a register value (zero if never written), charging one
// GP transaction.
func (l *Lite) Read(addr uint32) uint32 {
	l.accessPS += l.port.TransferPS(4)
	return l.regs[addr]
}

// AccessPS returns the cumulative simulated time spent on this
// register file's I/O.
func (l *Lite) AccessPS() uint64 { return l.accessPS }
