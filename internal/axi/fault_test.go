package axi

import (
	"testing"

	"advdet/internal/fault"
	"advdet/internal/soc"
)

func launch(t *testing.T, d *DMA, bytes int) {
	t.Helper()
	if err := d.WriteReg(RegDMACR, CtrlRun); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegSrcAddr, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegLength, uint32(bytes)); err != nil {
		t.Fatal(err)
	}
}

// TestDMAAbortErrorHalts pins the abort fault: the engine error-halts,
// the completion IRQ never fires, and the fault is counted.
func TestDMAAbortErrorHalts(t *testing.T) {
	irqs := 0
	sim, d := newTestDMA(func() { irqs++ })
	d.SetFaultPlan(fault.NewPlan(1).AbortDMA("test", 1, 1024))
	launch(t, d, 4096)
	sim.Run()
	if irqs != 0 {
		t.Fatalf("aborted transfer raised %d IRQs, want 0", irqs)
	}
	if d.Busy() {
		t.Fatal("aborted DMA still busy")
	}
	if d.Faults() != 1 {
		t.Fatalf("Faults() = %d, want 1", d.Faults())
	}
	if d.Completions() != 0 || d.Transferred() != 0 {
		t.Fatalf("aborted transfer counted as completed: %d completions, %d bytes",
			d.Completions(), d.Transferred())
	}
	sr, err := d.ReadReg(RegDMASR)
	if err != nil {
		t.Fatal(err)
	}
	if sr&StatusErrIrq == 0 || sr&StatusHalted == 0 {
		t.Fatalf("status %#x, want error+halted latched", sr)
	}
}

// TestDMAStallDelaysCompletion pins the stall fault: the transfer
// completes, late by exactly the stall duration.
func TestDMAStallDelaysCompletion(t *testing.T) {
	const bytes, stallPS = 4096, 5_000_000
	timeOne := func(p *fault.Plan) uint64 {
		sim, d := newTestDMA(nil)
		d.SetFaultPlan(p)
		launch(t, d, bytes)
		sim.Run()
		if d.Completions() != 1 {
			t.Fatalf("transfer did not complete (completions=%d)", d.Completions())
		}
		return sim.Now()
	}
	clean := timeOne(nil)
	stalled := timeOne(fault.NewPlan(1).StallDMA("test", 1, 1024, stallPS))
	if stalled != clean+stallPS {
		t.Fatalf("stalled finish %d, want clean %d + stall %d", stalled, clean, stallPS)
	}
}

// TestDMAResetInvalidatesInFlightTransfer pins the watchdog re-arm
// path: a soft reset abandons the in-flight transfer (its completion
// and IRQ are swallowed), frees the link, and a retried transfer
// completes normally.
func TestDMAResetInvalidatesInFlightTransfer(t *testing.T) {
	irqs := 0
	sim := &soc.Sim{}
	link := soc.NewICAPLink()
	d := NewDMA("test", sim, link, func() { irqs++ })
	launch(t, d, 1<<20)
	if !d.Busy() {
		t.Fatal("DMA not busy after launch")
	}
	// Reset via the DMACR soft-reset bit before the completion fires.
	if err := d.WriteReg(RegDMACR, CtrlReset); err != nil {
		t.Fatal(err)
	}
	if d.Busy() {
		t.Fatal("DMA busy after reset")
	}
	// Relaunch: the retry must complete even though the stale
	// completion event is still queued on the simulator.
	launch(t, d, 4096)
	sim.Run()
	if d.Completions() != 1 {
		t.Fatalf("retry completed %d times, want 1", d.Completions())
	}
	if irqs != 1 {
		t.Fatalf("IRQs = %d, want 1 (stale completion must be swallowed)", irqs)
	}
	if d.Transferred() != 4096 {
		t.Fatalf("Transferred = %d, want 4096 (abandoned bytes must not count)", d.Transferred())
	}
}

// TestLinkReleaseFreesReservation pins that Release lets a new
// transfer start immediately instead of queueing behind an abandoned
// one.
func TestLinkReleaseFreesReservation(t *testing.T) {
	sim := &soc.Sim{}
	link := soc.NewICAPLink()
	base := link.TransferPS(4096)
	link.Start(sim, 1<<24, nil) // long abandoned reservation
	link.Release(sim)
	if finish := link.Start(sim, 4096, nil); finish != base {
		t.Fatalf("post-release transfer finishes at %d, want %d", finish, base)
	}
}

// TestIRQDropSkipsHandler pins the interrupt-loss fault: the raise is
// counted, the handler never runs, and Dropped records the loss.
func TestIRQDropSkipsHandler(t *testing.T) {
	sim := &soc.Sim{}
	ic := soc.NewIRQController(sim)
	runs := 0
	ic.Register(soc.IRQPRDone, func() { runs++ })
	ic.SetFaultPlan(fault.NewPlan(1).DropIRQ(soc.IRQPRDone, 1))
	ic.Raise(soc.IRQPRDone)
	ic.Raise(soc.IRQPRDone)
	sim.Run()
	if runs != 1 {
		t.Fatalf("handler ran %d times, want 1 (first raise dropped)", runs)
	}
	if got := ic.Raised(soc.IRQPRDone); got != 2 {
		t.Fatalf("Raised = %d, want 2 (assertions count even when lost)", got)
	}
	if got := ic.Dropped(soc.IRQPRDone); got != 1 {
		t.Fatalf("Dropped = %d, want 1", got)
	}
}
