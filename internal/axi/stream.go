package axi

import "fmt"

// StreamFIFO models an AXI4-Stream FIFO between a producer and a
// consumer running at different sustained rates — the buffers sitting
// between the DMA engines and the detection pipelines in Fig. 6. The
// model answers the sizing question the RTL designer faces: how deep
// must the FIFO be so a rate mismatch over a burst never backpressures
// the camera?
type StreamFIFO struct {
	Name  string
	Depth int // capacity in words

	count     int
	pushed    uint64
	popped    uint64
	stalls    uint64 // producer words refused (TREADY low)
	underruns uint64 // consumer pops from empty (TVALID low)
	maxFill   int
}

// NewStreamFIFO returns an empty FIFO of the given depth.
func NewStreamFIFO(name string, depth int) *StreamFIFO {
	if depth <= 0 {
		// lint:invariant FIFO depth is a construction-time constant; non-positive depth is a programming error
		panic(fmt.Sprintf("axi: FIFO %q depth %d", name, depth))
	}
	return &StreamFIFO{Name: name, Depth: depth}
}

// Push offers n words; returns how many were accepted. Refused words
// count as producer stalls.
func (f *StreamFIFO) Push(n int) int {
	if n < 0 {
		// lint:invariant negative word counts are a caller bug, not a data condition
		panic("axi: negative push")
	}
	space := f.Depth - f.count
	acc := n
	if acc > space {
		acc = space
	}
	f.count += acc
	f.pushed += uint64(acc)
	f.stalls += uint64(n - acc)
	if f.count > f.maxFill {
		f.maxFill = f.count
	}
	return acc
}

// Pop requests n words; returns how many were delivered. Missing
// words count as consumer underruns.
func (f *StreamFIFO) Pop(n int) int {
	if n < 0 {
		// lint:invariant negative word counts are a caller bug, not a data condition
		panic("axi: negative pop")
	}
	got := n
	if got > f.count {
		got = f.count
	}
	f.count -= got
	f.popped += uint64(got)
	f.underruns += uint64(n - got)
	return got
}

// Level returns the current occupancy.
func (f *StreamFIFO) Level() int { return f.count }

// MaxFill returns the high-water mark.
func (f *StreamFIFO) MaxFill() int { return f.maxFill }

// Stalls returns total producer words refused.
func (f *StreamFIFO) Stalls() uint64 { return f.stalls }

// Underruns returns total consumer words not delivered.
func (f *StreamFIFO) Underruns() uint64 { return f.underruns }

// Conserved checks the FIFO invariant: pushed = popped + level.
func (f *StreamFIFO) Conserved() bool {
	return f.pushed == f.popped+uint64(f.count)
}

// RateSimResult summarizes a rate-mismatch simulation.
type RateSimResult struct {
	ProducerStalls uint64
	Underruns      uint64
	MaxFill        int
}

// SimulateRates streams totalWords through the FIFO with a producer
// that offers prodPerCycle words per cycle in bursts of burstLen
// cycles followed by gapLen idle cycles, against a consumer draining
// consPerCycle words every cycle. It reports the stalls, underruns and
// the high-water mark — the numbers that size the Fig. 6 FIFOs.
func (f *StreamFIFO) SimulateRates(totalWords, prodPerCycle, burstLen, gapLen, consPerCycle int) RateSimResult {
	remaining := totalWords
	cycle := 0
	for remaining > 0 || f.count > 0 {
		inBurst := gapLen == 0 || cycle%(burstLen+gapLen) < burstLen
		if remaining > 0 && inBurst {
			offer := prodPerCycle
			if offer > remaining {
				offer = remaining
			}
			accepted := f.Push(offer)
			remaining -= accepted
		}
		f.Pop(consPerCycle)
		cycle++
		if cycle > 100*totalWords+1000 {
			break // safety: pathological configurations terminate
		}
	}
	return RateSimResult{ProducerStalls: f.stalls, Underruns: f.underruns, MaxFill: f.maxFill}
}
