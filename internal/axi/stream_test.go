package axi

import (
	"testing"
	"testing/quick"
)

func TestFIFOPushPop(t *testing.T) {
	f := NewStreamFIFO("t", 4)
	if got := f.Push(3); got != 3 {
		t.Fatalf("push accepted %d", got)
	}
	if f.Level() != 3 {
		t.Fatalf("level %d", f.Level())
	}
	if got := f.Push(3); got != 1 {
		t.Fatalf("overfull push accepted %d, want 1", got)
	}
	if f.Stalls() != 2 {
		t.Fatalf("stalls %d", f.Stalls())
	}
	if got := f.Pop(10); got != 4 {
		t.Fatalf("pop got %d", got)
	}
	if f.Underruns() != 6 {
		t.Fatalf("underruns %d", f.Underruns())
	}
	if f.MaxFill() != 4 {
		t.Fatalf("max fill %d", f.MaxFill())
	}
}

func TestFIFOConservation(t *testing.T) {
	fn := func(ops []uint8) bool {
		f := NewStreamFIFO("p", 16)
		for _, op := range ops {
			if op%2 == 0 {
				f.Push(int(op % 8))
			} else {
				f.Pop(int(op % 8))
			}
		}
		return f.Conserved() && f.Level() >= 0 && f.Level() <= 16
	}
	if err := quick.Check(fn, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFIFOPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero depth accepted")
		}
	}()
	NewStreamFIFO("bad", 0)
}

func TestSimulateMatchedRatesNoStalls(t *testing.T) {
	f := NewStreamFIFO("m", 8)
	res := f.SimulateRates(10000, 1, 1, 0, 1)
	if res.ProducerStalls != 0 {
		t.Fatalf("matched rates stalled %d words", res.ProducerStalls)
	}
	if res.MaxFill > 2 {
		t.Fatalf("matched rates filled to %d", res.MaxFill)
	}
}

func TestSimulateBurstyProducerNeedsDepth(t *testing.T) {
	// Producer: 2 words/cycle for 16 cycles, then 16 idle (mean rate
	// 1). Consumer: 1 word/cycle. A shallow FIFO stalls the producer;
	// a FIFO covering the per-burst surplus (16 words) plus one word
	// of push-before-pop skew does not.
	shallow := NewStreamFIFO("s", 4)
	deep := NewStreamFIFO("d", 17)
	resS := shallow.SimulateRates(4096, 2, 16, 16, 1)
	resD := deep.SimulateRates(4096, 2, 16, 16, 1)
	if resS.ProducerStalls == 0 {
		t.Fatal("shallow FIFO absorbed a 2x burst without stalls")
	}
	if resD.ProducerStalls != 0 {
		t.Fatalf("17-deep FIFO stalled %d words", resD.ProducerStalls)
	}
	if resD.MaxFill != 17 {
		t.Fatalf("deep FIFO high-water %d, want 17", resD.MaxFill)
	}
}

func TestSimulateSlowConsumerAlwaysStalls(t *testing.T) {
	f := NewStreamFIFO("sc", 32)
	res := f.SimulateRates(2048, 2, 1, 0, 1)
	if res.ProducerStalls == 0 {
		t.Fatal("2x producer vs 1x consumer must stall regardless of depth")
	}
}
