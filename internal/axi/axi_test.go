package axi

import (
	"testing"

	"advdet/internal/soc"
)

func newTestDMA(irq func()) (*soc.Sim, *DMA) {
	sim := &soc.Sim{}
	link := soc.NewICAPLink()
	return sim, NewDMA("test", sim, link, irq)
}

func TestDMAResetState(t *testing.T) {
	_, d := newTestDMA(nil)
	sr, err := d.ReadReg(RegDMASR)
	if err != nil {
		t.Fatal(err)
	}
	if sr&StatusHalted == 0 {
		t.Fatal("DMA should come up halted")
	}
	if d.Busy() {
		t.Fatal("fresh DMA busy")
	}
}

func TestDMARejectsLengthWhileHalted(t *testing.T) {
	_, d := newTestDMA(nil)
	if err := d.WriteReg(RegLength, 1024); err == nil {
		t.Fatal("length accepted while halted")
	}
}

func TestDMARejectsZeroLength(t *testing.T) {
	_, d := newTestDMA(nil)
	if err := d.WriteReg(RegDMACR, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegLength, 0); err == nil {
		t.Fatal("zero length accepted")
	}
}

func TestDMATransferLifecycle(t *testing.T) {
	irqs := 0
	sim, d := newTestDMA(func() { irqs++ })
	if err := d.WriteReg(RegDMACR, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegSrcAddr, 0x1000); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegLength, 4096); err != nil {
		t.Fatal(err)
	}
	if !d.Busy() {
		t.Fatal("DMA not busy after launch")
	}
	sr, _ := d.ReadReg(RegDMASR)
	if sr&StatusIdle != 0 {
		t.Fatal("status idle during transfer")
	}
	sim.Run()
	if d.Busy() {
		t.Fatal("DMA busy after completion")
	}
	if irqs != 1 {
		t.Fatalf("irqs = %d", irqs)
	}
	if d.Transferred() != 4096 || d.Completions() != 1 {
		t.Fatalf("transferred %d in %d completions", d.Transferred(), d.Completions())
	}
	sr, _ = d.ReadReg(RegDMASR)
	if sr&StatusIOCIrq == 0 {
		t.Fatal("IOC bit not latched")
	}
	d.AckIRQ()
	sr, _ = d.ReadReg(RegDMASR)
	if sr&StatusIOCIrq != 0 {
		t.Fatal("IOC bit not cleared by ack")
	}
}

func TestDMARejectsOverlappingTransfers(t *testing.T) {
	_, d := newTestDMA(nil)
	if err := d.WriteReg(RegDMACR, 1); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegLength, 1024); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteReg(RegLength, 1024); err == nil {
		t.Fatal("overlapping transfer accepted")
	}
}

func TestDMAUnmappedRegister(t *testing.T) {
	_, d := newTestDMA(nil)
	if err := d.WriteReg(0xFF, 1); err == nil {
		t.Fatal("unmapped write accepted")
	}
	if _, err := d.ReadReg(0xFF); err == nil {
		t.Fatal("unmapped read accepted")
	}
}

func TestDMATransferTiming(t *testing.T) {
	// 4 MB over the 400 MB/s ICAP link must take ~10 ms of simulated
	// time.
	sim, d := newTestDMA(nil)
	var doneAt uint64
	d2 := NewDMA("timed", sim, soc.NewICAPLink(), func() { doneAt = sim.Now() })
	_ = d
	if err := d2.WriteReg(RegDMACR, 1); err != nil {
		t.Fatal(err)
	}
	if err := d2.WriteReg(RegLength, 4_000_000); err != nil {
		t.Fatal(err)
	}
	sim.Run()
	ms := soc.Seconds(doneAt) * 1e3
	if ms < 9.9 || ms > 10.1 {
		t.Fatalf("4 MB over ICAP took %.3f ms, want ~10", ms)
	}
}

func TestLiteRegisterFile(t *testing.T) {
	sim := &soc.Sim{}
	l := NewLite("params", sim, soc.NewGPPort("gp"))
	l.Write(0x10, 42)
	if got := l.Read(0x10); got != 42 {
		t.Fatalf("Read = %d", got)
	}
	if got := l.Read(0x20); got != 0 {
		t.Fatalf("unwritten register = %d", got)
	}
	if l.AccessPS() == 0 {
		t.Fatal("register I/O cost no simulated time")
	}
	// 3 accesses x one 4-byte GP transaction (21 cfg cycles = 210 ns).
	want := 3 * soc.NewGPPort("gp").TransferPS(4)
	if l.AccessPS() != want {
		t.Fatalf("AccessPS = %d, want %d", l.AccessPS(), want)
	}
}
