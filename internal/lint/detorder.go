package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetOrder returns the analyzer freezing the determinism contract of
// the detection datapath: detections, snapshots and eval tables must
// be byte-identical at any worker count and across runs, so the
// packages that assemble them may not let Go's two sources of
// intentional nondeterminism leak into results:
//
//   - ranging over a map (iteration order is randomized per run) —
//     result assembly must go through slices, index loops, or sorted
//     keys,
//   - a select over two or more result channels (case choice is
//     scheduling-dependent) — fan-in must be index-addressed the way
//     par.ForEach recombines rows.
//
// The contract applies to packages whose doc carries `// lint:detpath`
// and, automatically, to `// lint:datapath` packages (the hardware
// datapath is deterministic by construction). Sites where order
// provably cannot reach a result (commutative accumulation) are
// annotated `// lint:unordered <reason>`. Test files are exempt.
func DetOrder() *Analyzer {
	return &Analyzer{
		Name: "detorder",
		Doc:  "forbids map iteration and multi-channel selects in detection/datapath packages",
		Run:  runDetOrder,
	}
}

func runDetOrder(p *Pass) {
	if !(p.IsDatapath() || p.HasPackageDirective("detpath")) || p.IsTestPackage() {
		return
	}
	for _, f := range p.Files {
		if p.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.RangeStmt:
				t := p.Info.TypeOf(n.X)
				if t == nil {
					return true
				}
				if _, isMap := t.Underlying().(*types.Map); !isMap {
					return true
				}
				if arg, ok := p.DirectiveArgAt(n.For, "unordered"); ok {
					if arg == "" {
						p.Reportf(n.For, "lint:unordered needs a reason explaining why iteration order cannot leak")
					}
					return true
				}
				p.Reportf(n.For, "range over a map iterates in nondeterministic order; assemble results from a slice or sorted keys, or annotate // lint:unordered <reason>")
			case *ast.SelectStmt:
				recvs := 0
				for _, clause := range n.Body.List {
					comm, ok := clause.(*ast.CommClause)
					if !ok || comm.Comm == nil {
						continue
					}
					if isRecvComm(comm.Comm) {
						recvs++
					}
				}
				if recvs < 2 {
					return true
				}
				if arg, ok := p.DirectiveArgAt(n.Select, "unordered"); ok {
					if arg == "" {
						p.Reportf(n.Select, "lint:unordered needs a reason explaining why case choice cannot leak")
					}
					return true
				}
				p.Reportf(n.Select, "select over %d result channels resolves in scheduling-dependent order; fan results into index-addressed slots instead, or annotate // lint:unordered <reason>", recvs)
			}
			return true
		})
	}
}

// isRecvComm reports whether a select comm statement receives from a
// channel (either `<-ch` alone or `v := <-ch`).
func isRecvComm(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ExprStmt:
		u, ok := s.X.(*ast.UnaryExpr)
		return ok && u.Op == token.ARROW
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if u, ok := rhs.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
				return true
			}
		}
	}
	return false
}
