package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strconv"
	"strings"
)

// This file is the shared infrastructure layer of the dataflow-aware
// analyzers: a per-package function index, an interprocedural call
// graph over the typechecked packages, reachability queries, and a
// per-function fact store analyzers publish into and consume from.
//
// Nodes are keyed by stable string IDs rather than *types.Func
// identity because the loader typechecks each analysis package in its
// own universe: the hog.BlockGrid.ComputeCtx that pipeline calls (from
// the bare import) and the one analyzed inside package hog are
// distinct objects with identical full names. String IDs make the two
// views meet.
//
// Edge extraction is deliberately conservative (may-call):
//
//   - every static call adds an edge (direct calls, qualified calls,
//     method calls, go/defer statements),
//   - every *reference* to a function or method as a value (method
//     values, functions passed as callbacks) adds an edge from the
//     referencing function — a stored callback may run later, so for
//     reachability it counts as a call,
//   - a function literal adds an edge from its enclosing function and
//     becomes its own node (ID parent$N in source order),
//   - a call through an interface adds an edge to the interface method
//     and, when exactly one concrete type in the referencing package's
//     universe implements the interface, to that type's method — the
//     common this-interface-has-one-implementation case devirtualizes.

// A FuncNode is one function, method, or function literal of the
// analyzed program.
type FuncNode struct {
	// ID is the stable identity: types.Func.FullName for declared
	// functions and methods ("advdet/internal/par.ForEach",
	// "(*advdet/internal/hog.BlockGrid).ComputeCtx"), parent$N for the
	// N-th function literal of its enclosing function.
	ID string
	// Pkg is the analysis package the node's source lives in.
	Pkg *Package
	// Decl is the declaration (nil for function literals).
	Decl *ast.FuncDecl
	// Lit is the literal (nil for declared functions).
	Lit *ast.FuncLit
	// File is the file holding the node's source.
	File *ast.File
	// Parent is the enclosing function's ID ("" for declared functions
	// and package-level literals' synthetic <vars> parents).
	Parent string
	// Body is the function body (nil for bodyless declarations).
	Body *ast.BlockStmt
}

// Pos returns the node's source position.
func (n *FuncNode) Pos() token.Pos {
	switch {
	case n.Decl != nil:
		return n.Decl.Pos()
	case n.Lit != nil:
		return n.Lit.Pos()
	}
	return token.NoPos
}

// A Fact is one piece of per-function knowledge an analyzer published.
type Fact struct {
	Fn       string `json:"fn"`
	Analyzer string `json:"analyzer"`
	Text     string `json:"text"`
}

// Program is the whole-program view shared by every analyzer pass of
// one run: the function index, the call graph, and the fact store.
type Program struct {
	Pkgs []*Package

	nodes   map[string]*FuncNode
	order   []string // node IDs in insertion (package, file, source) order
	byPkg   map[*Package][]*FuncNode
	callees map[string]map[string]bool
	callers map[string][]string // built lazily from callees
	facts   map[string]map[string][]string

	universeTypes map[*types.Package][]*types.TypeName
	hot           map[string]bool // lazily computed hotpath reachability
}

// NewProgram indexes pkgs and builds the call graph.
func NewProgram(pkgs []*Package) *Program {
	prog := &Program{
		Pkgs:          pkgs,
		nodes:         map[string]*FuncNode{},
		byPkg:         map[*Package][]*FuncNode{},
		callees:       map[string]map[string]bool{},
		facts:         map[string]map[string][]string{},
		universeTypes: map[*types.Package][]*types.TypeName{},
	}
	for _, p := range pkgs {
		prog.indexPackage(p)
	}
	return prog
}

// Node returns the indexed node for id (nil if absent — callees may
// name functions outside the analyzed package set, e.g. stdlib).
func (prog *Program) Node(id string) *FuncNode { return prog.nodes[id] }

// Nodes returns every node in deterministic source order.
func (prog *Program) Nodes() []*FuncNode {
	out := make([]*FuncNode, 0, len(prog.order))
	for _, id := range prog.order {
		out = append(out, prog.nodes[id])
	}
	return out
}

// NodesOf returns the nodes whose source lives in pkg, in source order.
func (prog *Program) NodesOf(pkg *Package) []*FuncNode { return prog.byPkg[pkg] }

// Callees returns the sorted callee IDs of id.
func (prog *Program) Callees(id string) []string {
	out := make([]string, 0, len(prog.callees[id]))
	for callee := range prog.callees[id] {
		out = append(out, callee)
	}
	sort.Strings(out)
	return out
}

// Callers returns the sorted caller IDs of id.
func (prog *Program) Callers(id string) []string {
	if prog.callers == nil {
		prog.callers = map[string][]string{}
		for _, caller := range prog.order {
			for callee := range prog.callees[caller] {
				prog.callers[callee] = append(prog.callers[callee], caller)
			}
		}
		for _, l := range prog.callers {
			sort.Strings(l)
		}
	}
	return prog.callers[id]
}

// Reachable returns the set of node IDs reachable from roots over the
// call graph (roots included when they are indexed nodes).
func (prog *Program) Reachable(roots ...string) map[string]bool {
	seen := map[string]bool{}
	queue := append([]string{}, roots...)
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		for _, callee := range prog.Callees(id) {
			if !seen[callee] {
				queue = append(queue, callee)
			}
		}
	}
	return seen
}

// EnclosingFunc returns the innermost indexed function whose body
// spans pos in pkg, or nil.
func (prog *Program) EnclosingFunc(pkg *Package, pos token.Pos) *FuncNode {
	var best *FuncNode
	for _, n := range prog.byPkg[pkg] {
		if n.Body == nil || pos < n.Body.Pos() || pos > n.Body.End() {
			continue
		}
		if best == nil || n.Body.Pos() > best.Body.Pos() {
			best = n
		}
	}
	return best
}

// Publish records one fact about fn on behalf of analyzer. Facts are
// the cross-pass exchange mechanism: the first pass that derives a
// per-function property publishes it, later passes (and the driver's
// -facts dump) consume it instead of recomputing.
func (prog *Program) Publish(fn, analyzer, text string) {
	m := prog.facts[fn]
	if m == nil {
		m = map[string][]string{}
		prog.facts[fn] = m
	}
	for _, have := range m[analyzer] {
		if have == text {
			return
		}
	}
	m[analyzer] = append(m[analyzer], text)
}

// FactsOf returns the facts analyzer published about fn.
func (prog *Program) FactsOf(fn, analyzer string) []string {
	return prog.facts[fn][analyzer]
}

// AllFacts returns every published fact in deterministic order.
func (prog *Program) AllFacts() []Fact {
	var out []Fact
	for fn, byAnalyzer := range prog.facts {
		for analyzer, texts := range byAnalyzer {
			for _, t := range texts {
				out = append(out, Fact{Fn: fn, Analyzer: analyzer, Text: t})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Analyzer != out[j].Analyzer {
			return out[i].Analyzer < out[j].Analyzer
		}
		if out[i].Fn != out[j].Fn {
			return out[i].Fn < out[j].Fn
		}
		return out[i].Text < out[j].Text
	})
	return out
}

// funcID is the stable identity of a declared function or method.
// Generic instantiations are normalized to their origin so every call
// site of par.ForEachLocal[T] meets at one node.
func funcID(fn *types.Func) string {
	if o := fn.Origin(); o != nil {
		fn = o
	}
	return fn.FullName()
}

// add registers a node, disambiguating colliding IDs (multiple func
// init declarations share a FullName).
func (prog *Program) add(n *FuncNode) {
	id := n.ID
	for i := 2; prog.nodes[id] != nil; i++ {
		id = n.ID + "#" + strconv.Itoa(i)
	}
	n.ID = id
	prog.nodes[id] = n
	prog.order = append(prog.order, id)
	prog.byPkg[n.Pkg] = append(prog.byPkg[n.Pkg], n)
}

func (prog *Program) edge(from, to string) {
	m := prog.callees[from]
	if m == nil {
		m = map[string]bool{}
		prog.callees[from] = m
	}
	m[to] = true
}

// indexPackage creates nodes for every function declaration and
// literal of p and extracts their outgoing edges.
func (prog *Program) indexPackage(p *Package) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				// Function literals in package-level initializers
				// (sync.Pool New hooks and the like) hang off a
				// synthetic per-package <vars> node, reachable only
				// if something roots it explicitly.
				prog.walkExprs(p, f, prog.varsNode(p, f), decl)
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			node := &FuncNode{ID: funcID(obj), Pkg: p, Decl: fd, File: f, Body: fd.Body}
			prog.add(node)
			if fd.Body != nil {
				prog.walkBody(p, f, node, fd.Body)
			}
		}
	}
}

// varsNode returns (creating on first use) the synthetic node that
// owns package-level initializer expressions of p.
func (prog *Program) varsNode(p *Package, f *ast.File) *FuncNode {
	id := p.Path + ".<vars>"
	if n := prog.nodes[id]; n != nil {
		return n
	}
	n := &FuncNode{ID: id, Pkg: p, File: f}
	prog.add(n)
	return n
}

// walkBody extracts edges from one function body: function references
// become edges, nested literals become child nodes walked recursively.
func (prog *Program) walkBody(p *Package, f *ast.File, node *FuncNode, body ast.Node) {
	lits := 0
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits++
			child := &FuncNode{
				ID:     node.ID + "$" + strconv.Itoa(lits),
				Pkg:    p,
				Lit:    n,
				File:   f,
				Parent: node.ID,
				Body:   n.Body,
			}
			prog.add(child)
			prog.edge(node.ID, child.ID)
			prog.walkBody(p, f, child, n.Body)
			return false // the child owns its own subtree
		case *ast.Ident:
			if fn, ok := p.Info.Uses[n].(*types.Func); ok {
				prog.edge(node.ID, funcID(fn))
				if impl := prog.resolveSingleImpl(p, fn); impl != "" {
					prog.edge(node.ID, impl)
				}
			}
		}
		return true
	})
}

// walkExprs is walkBody for non-function declarations (var blocks).
func (prog *Program) walkExprs(p *Package, f *ast.File, node *FuncNode, decl ast.Decl) {
	hasLit := false
	ast.Inspect(decl, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			hasLit = true
			return false
		}
		return true
	})
	if hasLit {
		prog.walkBody(p, f, node, decl)
	}
}

// resolveSingleImpl devirtualizes a call through an interface method:
// when exactly one concrete named type in the referencing package's
// universe implements the interface, the edge lands on that type's
// method. Candidate types are drawn from p's own universe (its scope
// plus its transitive imports' scopes) because types from differently
// typechecked universes never satisfy Implements.
func (prog *Program) resolveSingleImpl(p *Package, m *types.Func) string {
	sig, ok := m.Type().(*types.Signature)
	if !ok {
		return ""
	}
	recv := sig.Recv()
	if recv == nil || !types.IsInterface(recv.Type()) {
		return ""
	}
	iface, ok := recv.Type().Underlying().(*types.Interface)
	if !ok || iface.NumMethods() == 0 {
		return ""
	}
	var found *types.Func
	for _, tn := range prog.namedTypes(p.Types) {
		T := tn.Type()
		if types.IsInterface(T) {
			continue
		}
		if !types.Implements(T, iface) && !types.Implements(types.NewPointer(T), iface) {
			continue
		}
		obj, _, _ := types.LookupFieldOrMethod(T, true, m.Pkg(), m.Name())
		fn, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if found != nil {
			return "" // more than one implementation: stay virtual
		}
		found = fn
	}
	if found == nil {
		return ""
	}
	return funcID(found)
}

// namedTypes collects the named (non-alias) types visible in root's
// universe, cached per universe root.
func (prog *Program) namedTypes(root *types.Package) []*types.TypeName {
	if root == nil {
		return nil
	}
	if cached, ok := prog.universeTypes[root]; ok {
		return cached
	}
	var out []*types.TypeName
	seen := map[*types.Package]bool{}
	var visit func(pkg *types.Package)
	visit = func(pkg *types.Package) {
		if pkg == nil || seen[pkg] {
			return
		}
		seen[pkg] = true
		scope := pkg.Scope()
		for _, name := range scope.Names() {
			tn, ok := scope.Lookup(name).(*types.TypeName)
			if !ok || tn.IsAlias() {
				continue
			}
			if _, ok := tn.Type().(*types.Named); !ok {
				continue
			}
			out = append(out, tn)
		}
		for _, imp := range pkg.Imports() {
			visit(imp)
		}
	}
	visit(root)
	prog.universeTypes[root] = out
	return out
}

// HotReachable returns (computing and publishing on first use) the set
// of node IDs reachable from `// lint:hotpath` roots. The reachability
// facts are published under the hotpathalloc analyzer so the -facts
// dump shows exactly which functions the allocation contract covers.
func (prog *Program) HotReachable() map[string]bool {
	if prog.hot != nil {
		return prog.hot
	}
	var roots []string
	for _, id := range prog.order {
		n := prog.nodes[id]
		if n.Decl == nil {
			continue
		}
		if DocHasDirective(n.Decl.Doc, "hotpath") || n.Pkg.DirectiveAt(n.Decl.Pos(), "hotpath") {
			roots = append(roots, id)
		}
	}
	prog.hot = prog.Reachable(roots...)
	for _, root := range roots {
		prog.Publish(root, "hotpathalloc", "hotpath root")
	}
	for _, id := range prog.order {
		if prog.hot[id] {
			prog.Publish(id, "hotpathalloc", "hot (reachable from a lint:hotpath root)")
		}
	}
	return prog.hot
}

// DebugString renders one node's call-graph entry (used by tests and
// the driver's -facts output).
func (prog *Program) DebugString(id string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s -> %s", id, strings.Join(prog.Callees(id), ", "))
	return b.String()
}
