package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// CtxFlow returns the analyzer enforcing the context-threading
// contract of the parallel detection engine:
//
//   - a function named *Ctx takes context.Context as its first
//     parameter (the repo-wide signature convention DetectCtx,
//     ProcessFrameCtx, ComputeCtx, ... established),
//   - library code never calls context.Background or context.TODO —
//     that severs cancellation from the caller — unless the site is a
//     sanctioned root annotated `// lint:ctxroot <reason>` (the serial
//     compatibility wrappers),
//   - a loop that fans out goroutines must consult a context inside
//     the loop (ctx.Err, ctx.Done, or threading ctx into the spawned
//     work), so cancellation can stop the fan-out.
//
// Functions whose first parameter is a context are published as
// "ctx-aware" facts; hotpathalloc and the -facts dump consume them.
func CtxFlow() *Analyzer {
	return &Analyzer{
		Name: "ctxflow",
		Doc:  "enforces *Ctx signatures, forbids context.Background/TODO in libraries, requires ctx checks in goroutine fan-out loops",
		Run:  runCtxFlow,
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// firstParamIsContext reports whether sig's first parameter is a
// context.Context.
func firstParamIsContext(sig *types.Signature) bool {
	return sig != nil && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

func runCtxFlow(p *Pass) {
	if p.IsCommand() || p.IsTestPackage() {
		return
	}
	reported := map[ast.Node]bool{}
	for _, f := range p.Files {
		if p.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			obj, _ := p.Info.Defs[fd.Name].(*types.Func)
			if obj == nil {
				continue
			}
			sig, _ := obj.Type().(*types.Signature)
			if firstParamIsContext(sig) && p.Prog != nil {
				p.Prog.Publish(funcID(obj), "ctxflow", "ctx-aware (context.Context first parameter)")
			}
			if strings.HasSuffix(fd.Name.Name, "Ctx") && fd.Name.Name != "Ctx" && !firstParamIsContext(sig) {
				p.Reportf(fd.Name.Pos(), "%s is named *Ctx but does not take context.Context as its first parameter", fd.Name.Name)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if name := ctxRootName(p, n); name != "" && !p.DirectiveAt(n.Pos(), "ctxroot") {
					p.Reportf(n.Pos(), "context.%s in library code severs cancellation from the caller; thread a ctx parameter or annotate // lint:ctxroot <reason>", name)
				}
			case *ast.ForStmt:
				checkFanOutLoop(p, n.Body, reported)
			case *ast.RangeStmt:
				checkFanOutLoop(p, n.Body, reported)
			}
			return true
		})
	}
}

// ctxRootName returns "Background"/"TODO" when call is
// context.Background() or context.TODO(), else "".
func ctxRootName(p *Pass, call *ast.CallExpr) string {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return ""
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name
	}
	return ""
}

// checkFanOutLoop reports a loop body that launches goroutines without
// any context in sight: no ctx.Err/ctx.Done poll, no ctx threaded into
// the spawned work. Each go statement is reported at most once even
// when nested loops both see it.
func checkFanOutLoop(p *Pass, body *ast.BlockStmt, reported map[ast.Node]bool) {
	var gos []*ast.GoStmt
	usesContext := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			gos = append(gos, n)
		case *ast.Ident:
			if t := p.Info.TypeOf(n); t != nil && isContextType(t) {
				usesContext = true
			}
		}
		return true
	})
	if usesContext {
		return
	}
	for _, g := range gos {
		if !reported[g] {
			reported[g] = true
			p.Reportf(g.Pos(), "fan-out loop launches goroutines without a cancellation check; consult ctx.Err/ctx.Done or thread a context into the work")
		}
	}
}
