package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// HotPathAlloc returns the analyzer enforcing the allocation-free
// steady-state contract of the scan engine: functions reachable on the
// call graph from `// lint:hotpath` roots (pipeline.hogScan.run, the
// hog.BlockGrid/svm.BlockModel compute paths, the metrics record
// paths) run once or thousands of times per frame, and PR 5's pooled
// scratch design keeps them allocation-free. The analyzer freezes that
// property by flagging allocating constructs inside every hot
// function:
//
//   - un-pre-sized append growth (append whose destination is neither
//     a make-with-capacity local nor inside a cap/len-guarded
//     amortization),
//   - map and slice literals and make(map...) — make([]T, n, cap)
//     stays allowed: explicit sizing is the sanctioned pattern,
//   - closures capturing loop variables (one closure + captured cell
//     per iteration),
//   - any fmt.* call (interface boxing + formatting state),
//   - boxing a concrete value into interface{} / any.
//
// Intentional allocations (detection output that escapes to the
// caller, one-time LUT initialization, cold error paths) carry a
// `// lint:alloc <reason>` annotation; the reason is mandatory.
func HotPathAlloc() *Analyzer {
	return &Analyzer{
		Name: "hotpathalloc",
		Doc:  "forbids allocating constructs in functions reachable from lint:hotpath roots",
		Run:  runHotPathAlloc,
	}
}

func runHotPathAlloc(p *Pass) {
	if p.IsCommand() || p.IsTestPackage() {
		return
	}
	hot := p.Prog.HotReachable()
	for _, node := range p.Prog.NodesOf(p.Package) {
		if node.Body == nil || !hot[node.ID] {
			continue
		}
		if node.File != nil && p.TestFiles[node.File] {
			continue
		}
		checkHotFunc(p, node)
	}
}

// allocAllowed consumes a lint:alloc annotation at pos. An annotation
// without a reason is itself a finding — the escape hatch documents
// WHY the allocation is acceptable, not merely that someone wanted it.
func allocAllowed(p *Pass, pos token.Pos) bool {
	arg, ok := p.DirectiveArgAt(pos, "alloc")
	if !ok {
		return false
	}
	if arg == "" {
		p.Reportf(pos, "lint:alloc needs a reason justifying the allocation")
	}
	return true
}

// span is a source interval inside which amortized growth is allowed.
type span struct{ lo, hi token.Pos }

func inSpans(pos token.Pos, spans []span) bool {
	for _, s := range spans {
		if pos >= s.lo && pos <= s.hi {
			return true
		}
	}
	return false
}

// checkHotFunc walks one hot function's own body (nested literals are
// their own nodes) reporting allocating constructs.
func checkHotFunc(p *Pass, node *FuncNode) {
	presized := presizedSlices(p, node)
	guards := capGuardSpans(p, node.Body)
	capReported := map[string]bool{}

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // separate node, checked on its own
		case *ast.ForStmt:
			checkLoopClosures(p, n.Body, loopVarsFor(p, n), capReported)
		case *ast.RangeStmt:
			checkLoopClosures(p, n.Body, loopVarsRange(p, n), capReported)
		case *ast.CompositeLit:
			t := p.Info.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				if !allocAllowed(p, n.Pos()) {
					p.Reportf(n.Pos(), "map literal allocates in a hot path; hoist it or annotate // lint:alloc <reason>")
				}
				return false
			case *types.Slice:
				if !allocAllowed(p, n.Pos()) {
					p.Reportf(n.Pos(), "slice literal allocates in a hot path; hoist it or annotate // lint:alloc <reason>")
				}
				return false
			}
		case *ast.CallExpr:
			checkHotCall(p, n, presized, guards)
		}
		return true
	}
	ast.Inspect(node.Body, walk)
}

// checkHotCall reports allocating call forms: append/make misuse,
// fmt.*, and empty-interface boxing of concrete arguments.
func checkHotCall(p *Pass, call *ast.CallExpr, presized map[types.Object]bool, guards []span) {
	if id, ok := call.Fun.(*ast.Ident); ok {
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "append":
				checkAppend(p, call, presized, guards)
			case "make":
				checkMake(p, call)
			}
			return
		}
	}
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := p.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			if !allocAllowed(p, call.Pos()) {
				p.Reportf(call.Pos(), "fmt.%s in a hot path boxes arguments and allocates; format outside the frame loop or annotate // lint:alloc <reason>", fn.Name())
			}
			return
		}
	}
	checkBoxing(p, call)
}

func checkAppend(p *Pass, call *ast.CallExpr, presized map[types.Object]bool, guards []span) {
	if len(call.Args) == 0 {
		return
	}
	if id, ok := call.Args[0].(*ast.Ident); ok {
		if obj := p.Info.Uses[id]; obj != nil && presized[obj] {
			return
		}
	}
	if inSpans(call.Pos(), guards) {
		return // amortized growth behind a cap/len check
	}
	if !allocAllowed(p, call.Pos()) {
		p.Reportf(call.Pos(), "un-pre-sized append growth in a hot path; size the slice from the geometry (make with capacity) or annotate // lint:alloc <reason>")
	}
}

func checkMake(p *Pass, call *ast.CallExpr) {
	if len(call.Args) == 0 {
		return
	}
	t := p.Info.TypeOf(call.Args[0])
	if t == nil {
		return
	}
	// make([]T, n) / make([]T, 0, cap) is the sanctioned pre-sizing
	// pattern (the size comes from the geometry), so only maps — whose
	// assembly also risks ordered iteration later — are flagged here.
	if _, isMap := t.Underlying().(*types.Map); isMap {
		if !allocAllowed(p, call.Pos()) {
			p.Reportf(call.Pos(), "make(map) allocates in a hot path; use a fixed arena or annotate // lint:alloc <reason>")
		}
	}
}

// checkBoxing flags concrete values passed where the callee takes an
// empty interface (interface{} / any): the conversion heap-allocates
// the value. Non-empty interfaces (error, io.Writer) express real
// polymorphism and stay allowed.
func checkBoxing(p *Pass, call *ast.CallExpr) {
	tv, ok := p.Info.Types[call.Fun]
	if !ok || tv.IsType() {
		return // conversion, not a call
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	paramType := func(i int) types.Type {
		if sig.Variadic() && i >= params.Len()-1 {
			if s, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				return s.Elem()
			}
		}
		if i < params.Len() {
			return params.At(i).Type()
		}
		return nil
	}
	for i, arg := range call.Args {
		pt := paramType(i)
		if pt == nil {
			continue
		}
		iface, isIface := pt.Underlying().(*types.Interface)
		if !isIface || iface.NumMethods() != 0 {
			continue
		}
		at := p.Info.TypeOf(arg)
		if at == nil {
			continue
		}
		if b, ok := at.(*types.Basic); ok && b.Kind() == types.UntypedNil {
			continue
		}
		if _, argIsIface := at.Underlying().(*types.Interface); argIsIface {
			continue
		}
		if !allocAllowed(p, arg.Pos()) {
			p.Reportf(arg.Pos(), "boxing %s into interface{} allocates in a hot path; keep the call monomorphic or annotate // lint:alloc <reason>", at.String())
		}
	}
}

// presizedSlices collects slice variables initialized from make(...)
// in node or an enclosing function (closures append into their
// parents' pre-sized buffers).
func presizedSlices(p *Pass, node *FuncNode) map[types.Object]bool {
	out := map[types.Object]bool{}
	for n := node; n != nil; {
		if n.Body != nil {
			collectPresized(p, n.Body, out)
		}
		if n.Parent == "" {
			break
		}
		n = p.Prog.Node(n.Parent)
	}
	return out
}

func collectPresized(p *Pass, body ast.Node, out map[types.Object]bool) {
	record := func(lhs ast.Expr, rhs ast.Expr) {
		call, ok := rhs.(*ast.CallExpr)
		if !ok {
			return
		}
		id, ok := call.Fun.(*ast.Ident)
		if !ok {
			return
		}
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); !isBuiltin || b.Name() != "make" {
			return
		}
		if len(call.Args) == 0 {
			return
		}
		t := p.Info.TypeOf(call.Args[0])
		if t == nil {
			return
		}
		if _, isSlice := t.Underlying().(*types.Slice); !isSlice {
			return
		}
		target, ok := lhs.(*ast.Ident)
		if !ok {
			return
		}
		if obj := p.Info.Defs[target]; obj != nil {
			out[obj] = true
		} else if obj := p.Info.Uses[target]; obj != nil {
			out[obj] = true
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					record(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			if len(n.Names) == len(n.Values) {
				for i := range n.Names {
					record(n.Names[i], n.Values[i])
				}
			}
		}
		return true
	})
}

// capGuardSpans collects the spans of if statements and loops whose
// condition consults cap() or len() — the amortized-growth idiom
// (grow only when the buffer is too small) that the pooled scratch
// layer is built on.
func capGuardSpans(p *Pass, body ast.Node) []span {
	var out []span
	ast.Inspect(body, func(n ast.Node) bool {
		var cond ast.Expr
		switch n := n.(type) {
		case *ast.IfStmt:
			cond = n.Cond
		case *ast.ForStmt:
			cond = n.Cond
		default:
			return true
		}
		if cond == nil || !mentionsCapLen(p, cond) {
			return true
		}
		nd := n.(ast.Node)
		out = append(out, span{lo: nd.Pos(), hi: nd.End()})
		return true
	})
	return out
}

func mentionsCapLen(p *Pass, e ast.Expr) bool {
	found := false
	ast.Inspect(e, func(n ast.Node) bool {
		if found {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if b, isBuiltin := p.Info.Uses[id].(*types.Builtin); isBuiltin && (b.Name() == "cap" || b.Name() == "len") {
			found = true
		}
		return !found
	})
	return found
}

// loopVarsFor returns the objects defined by a for statement's init.
func loopVarsFor(p *Pass, n *ast.ForStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	if assign, ok := n.Init.(*ast.AssignStmt); ok {
		for _, lhs := range assign.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				if obj := p.Info.Defs[id]; obj != nil {
					out[obj] = true
				}
			}
		}
	}
	return out
}

// loopVarsRange returns the objects defined by a range statement.
func loopVarsRange(p *Pass, n *ast.RangeStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	for _, e := range []ast.Expr{n.Key, n.Value} {
		if id, ok := e.(*ast.Ident); ok {
			if obj := p.Info.Defs[id]; obj != nil {
				out[obj] = true
			}
		}
	}
	return out
}

// checkLoopClosures reports function literals inside a loop body that
// capture the loop's variables: each iteration allocates the closure
// plus a cell per captured variable.
func checkLoopClosures(p *Pass, body *ast.BlockStmt, loopVars map[types.Object]bool, reported map[string]bool) {
	if len(loopVars) == 0 {
		return
	}
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(inner ast.Node) bool {
			id, ok := inner.(*ast.Ident)
			if !ok {
				return true
			}
			obj := p.Info.Uses[id]
			if obj == nil || !loopVars[obj] {
				return true
			}
			key := fmt.Sprintf("%d:%s", lit.Pos(), obj.Name())
			if reported[key] {
				return true
			}
			reported[key] = true
			if !allocAllowed(p, lit.Pos()) {
				p.Reportf(lit.Pos(), "closure captures loop variable %s and allocates per iteration; pass it as a parameter or annotate // lint:alloc <reason>", obj.Name())
			}
			return true
		})
		return true
	})
}
