package lint

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func goldenCfg() Config {
	return Config{Root: "testdata/src/advdet", ModulePath: "advdet"}
}

// runGolden checks one analyzer against its testdata package: every
// `// want` must fire and nothing else may.
func runGolden(t *testing.T, a *Analyzer, pattern string) {
	t.Helper()
	fails, err := CheckGolden(goldenCfg(), a, pattern)
	if err != nil {
		t.Fatalf("golden %s: %v", a.Name, err)
	}
	for _, f := range fails {
		t.Error(f)
	}
}

func TestFixedOpsGolden(t *testing.T)   { runGolden(t, FixedOps(), "./fixedops") }
func TestNoFloatGolden(t *testing.T)    { runGolden(t, NoFloat(), "./nofloat") }
func TestPanicFreeGolden(t *testing.T)  { runGolden(t, PanicFree(), "./panicfree") }
func TestSeededRandGolden(t *testing.T) { runGolden(t, SeededRand(), "./seededrand") }

func TestCtxFlowGolden(t *testing.T)  { runGolden(t, CtxFlow(), "./ctxflow") }
func TestWallTimeGolden(t *testing.T) { runGolden(t, WallTime(), "./walltime") }
func TestDetOrderGolden(t *testing.T) { runGolden(t, DetOrder(), "./detorder") }
func TestHotPathAllocGolden(t *testing.T) {
	runGolden(t, HotPathAlloc(), "./hotpathalloc")
}
func TestGoroutineLifeGolden(t *testing.T) {
	runGolden(t, GoroutineLife(), "./goroutinelife")
	runGolden(t, GoroutineLife(), "./goroutinelife/leaky")
}

// TestWallTimeNeedsOptIn pins that walltime stays silent without a
// simtime package directive, wall-clock-heavy as the package may be.
func TestWallTimeNeedsOptIn(t *testing.T) {
	pkgs, err := Load(goldenCfg(), "./walltime/plain")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkgs, []*Analyzer{WallTime()}); len(diags) != 0 {
		t.Fatalf("walltime fired without a simtime directive: %v", diags)
	}
}

// TestGoroutineLifeCleanOnPar pins the sanctioned worker pool: the
// engine's own fan-out layer must pass the join analysis unannotated.
func TestGoroutineLifeCleanOnPar(t *testing.T) {
	pkgs, err := Load(Config{Root: "../.."}, "./internal/par")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkgs, []*Analyzer{GoroutineLife()}); len(diags) != 0 {
		t.Fatalf("goroutinelife fired on internal/par: %v", diags)
	}
}

// TestGoroutineLifeCatchesLeak is the other half of the acceptance
// gate: the deliberately-leaky testdata package must produce at least
// one finding, or the analyzer is vacuous.
func TestGoroutineLifeCatchesLeak(t *testing.T) {
	pkgs, err := Load(goldenCfg(), "./goroutinelife/leaky")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers(pkgs, []*Analyzer{GoroutineLife()})
	if len(diags) == 0 {
		t.Fatal("goroutinelife found nothing in the deliberately-leaky package")
	}
}

// TestGoldenTruePositives pins that each analyzer actually fires on
// its testdata — an empty-want testdata tree would vacuously pass the
// golden comparison.
func TestGoldenTruePositives(t *testing.T) {
	for _, tc := range []struct {
		a       *Analyzer
		pattern string
		min     int
	}{
		{FixedOps(), "./fixedops", 8},
		{NoFloat(), "./nofloat", 4},
		{PanicFree(), "./panicfree", 1},
		{SeededRand(), "./seededrand", 3},
		{CtxFlow(), "./ctxflow", 4},
		{WallTime(), "./walltime", 4},
		{DetOrder(), "./detorder", 3},
		{HotPathAlloc(), "./hotpathalloc", 7},
		{GoroutineLife(), "./goroutinelife", 2},
	} {
		pkgs, err := Load(goldenCfg(), tc.pattern)
		if err != nil {
			t.Fatal(err)
		}
		got := len(RunAnalyzers(pkgs, []*Analyzer{tc.a}))
		if got < tc.min {
			t.Errorf("%s on %s: %d findings, want >= %d", tc.a.Name, tc.pattern, got, tc.min)
		}
	}
}

// TestFixedOpsExemptsFixedPackage pins that the analyzer never fires
// inside the package that implements the saturating arithmetic — its
// raw operators ARE the datapath model.
func TestFixedOpsExemptsFixedPackage(t *testing.T) {
	pkgs, err := Load(goldenCfg(), "./internal/fixed")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkgs, []*Analyzer{FixedOps()}); len(diags) != 0 {
		t.Fatalf("fixedops fired inside advdet/internal/fixed: %v", diags)
	}
}

// TestNoFloatNeedsOptIn pins that nofloat stays silent in packages
// without the lint:datapath directive, float-heavy as they may be.
func TestNoFloatNeedsOptIn(t *testing.T) {
	pkgs, err := Load(goldenCfg(), "./seededrand")
	if err != nil {
		t.Fatal(err)
	}
	if diags := RunAnalyzers(pkgs, []*Analyzer{NoFloat()}); len(diags) != 0 {
		t.Fatalf("nofloat fired without a datapath directive: %v", diags)
	}
}

// TestNoFloatExemptsFaultPackage pins that the fault injector stays
// outside the datapath float rules: fault.Plan models driver-level
// chaos (probabilities are float64 by nature) and runs on the PS, so
// it must never carry the lint:datapath directive. If someone adds
// the directive — or nofloat starts firing there for any reason —
// this test catches it before CI does.
func TestNoFloatExemptsFaultPackage(t *testing.T) {
	pkgs, err := Load(Config{Root: "../.."}, "./internal/fault")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("loaded %d packages, want advdet/internal/fault alone", len(pkgs))
	}
	if diags := RunAnalyzers(pkgs, []*Analyzer{NoFloat()}); len(diags) != 0 {
		t.Fatalf("nofloat fired inside advdet/internal/fault: %v", diags)
	}
}

func TestByName(t *testing.T) {
	all, err := ByName("all")
	if err != nil || len(all) != 9 {
		t.Fatalf("ByName(all) = %d analyzers, err %v", len(all), err)
	}
	two, err := ByName("fixedops, panicfree")
	if err != nil || len(two) != 2 || two[0].Name != "fixedops" || two[1].Name != "panicfree" {
		t.Fatalf("ByName(fixedops, panicfree) = %v, err %v", two, err)
	}
	if _, err := ByName("nosuch"); err == nil {
		t.Fatal("ByName(nosuch) should fail")
	}
}

// TestSuiteCleanOnRepo is the self-check the CI gate depends on: the
// whole module, test files included, must be free of findings. It is
// the in-process equivalent of `go run ./cmd/advdetlint ./...`.
func TestSuiteCleanOnRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module from source")
	}
	pkgs, err := Load(Config{Root: "../..", Tests: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 20 {
		t.Fatalf("loaded only %d packages from the module", len(pkgs))
	}
	diags := RunAnalyzers(pkgs, All())
	for _, d := range diags {
		t.Errorf("%s", d)
	}
	if len(diags) > 0 {
		t.Logf("run `go run ./cmd/advdetlint ./...` for the same findings")
	}
}

// TestLoadPatterns exercises the loader's pattern matching.
func TestLoadPatterns(t *testing.T) {
	pkgs, err := Load(goldenCfg(), "./internal/...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "advdet/internal/fixed" {
		t.Fatalf("./internal/... loaded %v", pkgPaths(pkgs))
	}
	if _, err := Load(goldenCfg(), "./nonexistent"); err == nil ||
		!strings.Contains(err.Error(), "no packages match") {
		t.Fatalf("want no-match error, got %v", err)
	}
}

func pkgPaths(pkgs []*Package) []string {
	var out []string
	for _, p := range pkgs {
		out = append(out, p.Path)
	}
	return out
}

// TestScanHotPathClean pins the block-response engine's hot-path
// packages against the analyzers that apply everywhere (fixedops'
// datapath-operand rules, seededrand's determinism rules): the scoring
// engine must stay free of findings so perf work never erodes the
// hardware-contract or determinism guarantees.
func TestScanHotPathClean(t *testing.T) {
	pkgs, err := Load(Config{Root: "../.."},
		"./internal/hog", "./internal/svm", "./internal/pipeline", "./internal/par")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) != 4 {
		t.Fatalf("loaded %d packages, want the 4 hot-path packages", len(pkgs))
	}
	if diags := RunAnalyzers(pkgs, []*Analyzer{FixedOps(), SeededRand()}); len(diags) != 0 {
		t.Fatalf("scan hot path has lint findings: %v", diags)
	}
}

// TestReadmeAnalyzerTableInSync is the golden-drift gate CI runs: the
// README "Static analysis" table must list exactly the analyzers the
// All() registry returns — adding an analyzer without documenting it
// (or documenting one that was removed) fails here.
func TestReadmeAnalyzerTableInSync(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "README.md"))
	if err != nil {
		t.Fatal(err)
	}
	rowRe := regexp.MustCompile("(?m)^\\| `([a-z]+)` \\|")
	documented := map[string]bool{}
	for _, m := range rowRe.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	registered := map[string]bool{}
	for _, a := range All() {
		registered[a.Name] = true
	}
	for name := range registered {
		if !documented[name] {
			t.Errorf("analyzer %s is registered in All() but missing from the README table", name)
		}
	}
	for name := range documented {
		if !registered[name] {
			t.Errorf("README table documents %s but All() does not register it", name)
		}
	}
	if len(documented) != len(registered) {
		t.Errorf("README table has %d rows, All() registers %d analyzers", len(documented), len(registered))
	}
}
