package lint

import (
	"go/ast"
	"go/types"
)

// WallTime returns the analyzer fencing the simulated-time domain:
// packages whose doc carries `// lint:simtime` model hardware whose
// only clock is the simulation's picosecond counter (the adaptive
// frame loop, the SoC/AXI interconnect, the PR controllers, the RTL
// timing model). A wall-clock read there (time.Now in a slot-deadline
// comparison, time.Sleep standing in for a DMA wait) silently couples
// results to host load and breaks replayability. Sanctioned reads —
// the metrics layer's dual simulated+wall recording — are annotated
// `// lint:walltime <reason>`. Test files model the PS/software side
// and are exempt.
func WallTime() *Analyzer {
	return &Analyzer{
		Name: "walltime",
		Doc:  "forbids wall-clock reads (time.Now/Since/Sleep/...) in lint:simtime packages",
		Run:  runWallTime,
	}
}

// wallClockFuncs are the package-level time functions that read or
// wait on the host clock. Pure-value helpers (time.Duration math,
// time.Unix construction) stay allowed.
var wallClockFuncs = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func runWallTime(p *Pass) {
	if !p.HasPackageDirective("simtime") || p.IsTestPackage() {
		return
	}
	for _, f := range p.Files {
		if p.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true
			}
			if !wallClockFuncs[fn.Name()] {
				return true
			}
			if arg, ok := p.DirectiveArgAt(sel.Pos(), "walltime"); ok {
				if arg == "" {
					p.Reportf(sel.Pos(), "lint:walltime needs a reason explaining why this wall-clock read is sanctioned")
				}
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in a simulated-time package; derive timing from simulated ps or annotate // lint:walltime <reason>", fn.Name())
			return true
		})
	}
}
