package lint

import (
	"sort"
	"testing"
)

// loadProgram builds a Program over golden-testdata packages.
func loadProgram(t *testing.T, patterns ...string) *Program {
	t.Helper()
	pkgs, err := Load(goldenCfg(), patterns...)
	if err != nil {
		t.Fatal(err)
	}
	return NewProgram(pkgs)
}

func hasEdge(prog *Program, caller, callee string) bool {
	for _, c := range prog.Callees(caller) {
		if c == callee {
			return true
		}
	}
	return false
}

// TestCallGraphEdges pins the may-call edges the analyzers depend on:
// closures, method values, interface dispatch devirtualized to a
// single concrete type, and cross-package calls.
func TestCallGraphEdges(t *testing.T) {
	prog := loadProgram(t, "./callgraph", "./callgraph/sub")
	for _, tc := range []struct {
		name, caller, callee string
	}{
		{"parent to closure", "advdet/callgraph.closureAdder", "advdet/callgraph.closureAdder$1"},
		{"direct call", "advdet/callgraph.UseAdder", "advdet/callgraph.closureAdder"},
		{"interface method", "advdet/callgraph.Entry", "(advdet/callgraph.Doer).Do"},
		{"devirtualized to sole impl", "advdet/callgraph.Entry", "(advdet/callgraph.Impl).Do"},
		{"method value reference", "advdet/callgraph.methodValue", "(advdet/callgraph.Impl).Do"},
		{"cross-package call", "(advdet/callgraph.Impl).Do", "advdet/callgraph/sub.Helper"},
	} {
		if !hasEdge(prog, tc.caller, tc.callee) {
			t.Errorf("%s: no edge %s -> %s (callees: %v)",
				tc.name, tc.caller, tc.callee, prog.Callees(tc.caller))
		}
	}
}

// TestCallGraphCallers pins the reverse index: goroutinelife walks it
// to find the ancestor owning a WaitGroup.
func TestCallGraphCallers(t *testing.T) {
	prog := loadProgram(t, "./callgraph", "./callgraph/sub")
	callers := prog.Callers("(advdet/callgraph.Impl).Do")
	sort.Strings(callers)
	want := map[string]bool{
		"advdet/callgraph.Entry":       true,
		"advdet/callgraph.methodValue": true,
	}
	found := 0
	for _, c := range callers {
		if want[c] {
			found++
		}
	}
	if found != len(want) {
		t.Errorf("Callers((Impl).Do) = %v, want it to include Entry and methodValue", callers)
	}
}

// TestCallGraphReachable pins transitive closure across packages and
// through interface dispatch: Entry reaches sub.Helper only via the
// devirtualized (Impl).Do edge.
func TestCallGraphReachable(t *testing.T) {
	prog := loadProgram(t, "./callgraph", "./callgraph/sub")
	reach := prog.Reachable("advdet/callgraph.Entry")
	for _, id := range []string{
		"advdet/callgraph.Entry",
		"(advdet/callgraph.Impl).Do",
		"advdet/callgraph/sub.Helper",
	} {
		if !reach[id] {
			t.Errorf("Reachable(Entry) misses %s", id)
		}
	}
	if reach["advdet/callgraph.closureAdder$1"] {
		t.Error("Reachable(Entry) should not include closureAdder$1")
	}
}

// TestCallGraphNodes pins that every function — declarations, methods,
// closures — gets a node with a stable ID.
func TestCallGraphNodes(t *testing.T) {
	prog := loadProgram(t, "./callgraph", "./callgraph/sub")
	for _, id := range []string{
		"advdet/callgraph.Entry",
		"advdet/callgraph.closureAdder",
		"advdet/callgraph.closureAdder$1",
		"(advdet/callgraph.Impl).Do",
		"advdet/callgraph/sub.Helper",
	} {
		if prog.Node(id) == nil {
			t.Errorf("no node for %s", id)
		}
	}
	lit := prog.Node("advdet/callgraph.closureAdder$1")
	if lit == nil || lit.Parent != "advdet/callgraph.closureAdder" {
		t.Errorf("closure parent = %v, want closureAdder", lit)
	}
}

// TestFacts pins the publish/consume store the -facts flag dumps.
func TestFacts(t *testing.T) {
	prog := loadProgram(t, "./callgraph")
	prog.Publish("advdet/callgraph.Entry", "test", "fact one")
	prog.Publish("advdet/callgraph.Entry", "test", "fact two")
	got := prog.FactsOf("advdet/callgraph.Entry", "test")
	if len(got) != 2 || got[0] != "fact one" || got[1] != "fact two" {
		t.Errorf("FactsOf = %v", got)
	}
	all := prog.AllFacts()
	if len(all) != 2 {
		t.Errorf("AllFacts = %v, want 2 facts", all)
	}
}
