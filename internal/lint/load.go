package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config tells Load where the module lives and what to include.
type Config struct {
	// Root is the module root directory (the one holding go.mod), or
	// any directory standing in for one (golden testdata trees).
	Root string
	// ModulePath overrides the module import path; when empty it is
	// read from Root/go.mod.
	ModulePath string
	// Tests includes _test.go files in their package and loads
	// external _test packages alongside.
	Tests bool
}

// Load parses and typechecks the packages selected by patterns.
// Patterns are module-relative directory patterns: "./...", a
// directory like "./internal/fixed" (or "internal/fixed"), or a
// prefix pattern like "./internal/...". No patterns means "./...".
// Module-internal imports resolve from source; standard-library
// imports resolve through go/importer's source importer, so no
// compiled export data is needed.
func Load(cfg Config, patterns ...string) ([]*Package, error) {
	root, err := filepath.Abs(cfg.Root)
	if err != nil {
		return nil, err
	}
	modPath := cfg.ModulePath
	if modPath == "" {
		modPath, err = readModulePath(filepath.Join(root, "go.mod"))
		if err != nil {
			return nil, err
		}
	}

	dirs, err := packageDirs(root)
	if err != nil {
		return nil, err
	}
	selected := selectDirs(root, dirs, patterns)
	if len(selected) == 0 {
		return nil, fmt.Errorf("lint: no packages match %v", patterns)
	}

	ld := &loader{
		fset:    token.NewFileSet(),
		root:    root,
		modPath: modPath,
		bare:    map[string]*types.Package{},
		loading: map[string]bool{},
	}
	ld.std = importer.ForCompiler(ld.fset, "source", nil)

	var pkgs []*Package
	for _, dir := range selected {
		got, err := ld.loadForAnalysis(dir, cfg.Tests)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, got...)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// readModulePath extracts the module path from a go.mod.
func readModulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("lint: reading module path: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s", gomod)
}

// packageDirs walks root for directories containing .go files,
// skipping testdata, hidden and vendor trees.
func packageDirs(root string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			return nil
		}
		if strings.HasSuffix(d.Name(), ".go") {
			dir := filepath.Dir(path)
			if len(dirs) == 0 || dirs[len(dirs)-1] != dir {
				dirs = append(dirs, dir)
			}
		}
		return nil
	})
	return dirs, err
}

// selectDirs filters dirs by the module-relative patterns.
func selectDirs(root string, dirs, patterns []string) []string {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	var out []string
	for _, dir := range dirs {
		rel, err := filepath.Rel(root, dir)
		if err != nil {
			continue
		}
		rel = filepath.ToSlash(rel)
		for _, pat := range patterns {
			if matchPattern(rel, pat) {
				out = append(out, dir)
				break
			}
		}
	}
	return out
}

// matchPattern matches a module-relative dir ("." for the root)
// against one pattern.
func matchPattern(rel, pat string) bool {
	pat = strings.TrimPrefix(pat, "./")
	pat = strings.TrimSuffix(pat, "/")
	if pat == "..." || pat == "" {
		return true
	}
	if prefix, ok := strings.CutSuffix(pat, "/..."); ok {
		return rel == prefix || strings.HasPrefix(rel, prefix+"/")
	}
	if pat == "." {
		return rel == "."
	}
	return rel == pat
}

// loader typechecks module packages from source, caching bare (no
// test files) versions for import resolution.
type loader struct {
	fset    *token.FileSet
	root    string
	modPath string
	std     types.Importer
	bare    map[string]*types.Package
	loading map[string]bool // import-cycle guard
}

// Import implements types.Importer: module-internal paths load from
// source, everything else goes to the stdlib source importer.
func (ld *loader) Import(path string) (*types.Package, error) {
	if path == ld.modPath || strings.HasPrefix(path, ld.modPath+"/") {
		return ld.importBare(path)
	}
	return ld.std.Import(path)
}

// dirFor maps an import path to its directory under the module root.
func (ld *loader) dirFor(path string) string {
	rel := strings.TrimPrefix(strings.TrimPrefix(path, ld.modPath), "/")
	return filepath.Join(ld.root, filepath.FromSlash(rel))
}

// pathFor maps a directory to its import path.
func (ld *loader) pathFor(dir string) (string, error) {
	rel, err := filepath.Rel(ld.root, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return ld.modPath, nil
	}
	return ld.modPath + "/" + filepath.ToSlash(rel), nil
}

// importBare typechecks the non-test files of a module package for use
// as a dependency.
func (ld *loader) importBare(path string) (*types.Package, error) {
	if pkg, ok := ld.bare[path]; ok {
		return pkg, nil
	}
	if ld.loading[path] {
		return nil, fmt.Errorf("lint: import cycle through %q", path)
	}
	ld.loading[path] = true
	defer delete(ld.loading, path)

	files, _, _, err := ld.parseDir(ld.dirFor(path))
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files for %q", path)
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, nil)
	if err != nil {
		return nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
	}
	ld.bare[path] = pkg
	return pkg, nil
}

// parseDir parses a directory's .go files into base, in-package test
// and external test file groups.
func (ld *loader) parseDir(dir string) (base, inTest, xTest []*ast.File, err error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		// Honor build constraints (//go:build tags, GOOS/GOARCH file
		// suffixes) for the default context, as the toolchain does —
		// otherwise mutually exclusive tagged files (e.g. a race /
		// !race pair) typecheck as redeclarations.
		if ok, merr := build.Default.MatchFile(dir, name); merr != nil {
			return nil, nil, nil, merr
		} else if !ok {
			continue
		}
		f, perr := parser.ParseFile(ld.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if perr != nil {
			return nil, nil, nil, perr
		}
		switch {
		case !strings.HasSuffix(name, "_test.go"):
			base = append(base, f)
		case strings.HasSuffix(f.Name.Name, "_test"):
			xTest = append(xTest, f)
		default:
			inTest = append(inTest, f)
		}
	}
	return base, inTest, xTest, nil
}

// newInfo allocates the types.Info maps the analyzers consume.
func newInfo() *types.Info {
	return &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
}

// loadForAnalysis typechecks one directory for analysis: the package
// itself (with in-package test files when tests is set) and, when
// present, its external _test package.
func (ld *loader) loadForAnalysis(dir string, tests bool) ([]*Package, error) {
	path, err := ld.pathFor(dir)
	if err != nil {
		return nil, err
	}
	base, inTest, xTest, err := ld.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(base) == 0 && len(inTest) == 0 && len(xTest) == 0 {
		return nil, nil
	}

	var out []*Package
	build := func(path string, files []*ast.File, testFrom int) (*Package, error) {
		info := newInfo()
		conf := types.Config{Importer: ld}
		tpkg, err := conf.Check(path, ld.fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("lint: typechecking %s: %w", path, err)
		}
		pkg := &Package{
			Path:      path,
			Dir:       dir,
			Fset:      ld.fset,
			Files:     files,
			Types:     tpkg,
			Info:      info,
			TestFiles: map[*ast.File]bool{},
		}
		for i, f := range files {
			if i >= testFrom {
				pkg.TestFiles[f] = true
			}
			pkg.scanDirectives(f)
		}
		return pkg, nil
	}

	if len(base) > 0 || (tests && len(inTest) > 0) {
		files := base
		if tests {
			files = append(append([]*ast.File{}, base...), inTest...)
		}
		pkg, err := build(path, files, len(base))
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	if tests && len(xTest) > 0 {
		pkg, err := build(path+"_test", xTest, 0)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}
