package lint

import (
	"go/ast"
	"go/types"
)

// PanicFree returns the analyzer pushing library code toward returned
// errors: a `panic(...)` call in a non-main, non-test package is a
// finding unless the call site carries a `// lint:invariant <reason>`
// annotation (same line or the line directly above) documenting why
// the condition is unreachable by construction.
func PanicFree() *Analyzer {
	return &Analyzer{
		Name: "panicfree",
		Doc:  "forbids panic in library packages unless annotated // lint:invariant",
		Run:  runPanicFree,
	}
}

func runPanicFree(p *Pass) {
	if p.IsCommand() || p.IsTestPackage() {
		return
	}
	for _, f := range p.Files {
		if p.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "panic" {
				return true
			}
			if obj, ok := p.Info.Uses[id].(*types.Builtin); !ok || obj.Name() != "panic" {
				return true // shadowed
			}
			if !p.DirectiveAt(call.Pos(), "invariant") {
				p.Reportf(call.Pos(), "panic in library package; return an error or annotate // lint:invariant <reason>")
			}
			return true
		})
	}
}
