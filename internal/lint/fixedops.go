package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// fixedPkgPath is the package whose Q type the analyzer guards. Inside
// that package (and its tests) raw operators are the implementation.
const fixedPkgPath = "advdet/internal/fixed"

// FixedOps returns the analyzer flagging raw arithmetic operators on
// fixed.Q operands. Q is a defined int32, so `a + b` compiles and
// silently wraps where the RTL saturates; every arithmetic op outside
// the fixed package must go through the saturating Add/Sub/Mul/Div/Neg
// methods. Comparisons are exact and stay allowed.
func FixedOps() *Analyzer {
	return &Analyzer{
		Name: "fixedops",
		Doc:  "flags raw +,-,*,/,... on fixed.Q; the hardware saturates, int32 wraps",
		Run:  runFixedOps,
	}
}

// method suggested for each flagged operator.
var fixedOpMethod = map[token.Token]string{
	token.ADD: "Add", token.SUB: "Sub", token.MUL: "Mul", token.QUO: "Div",
	token.ADD_ASSIGN: "Add", token.SUB_ASSIGN: "Sub",
	token.MUL_ASSIGN: "Mul", token.QUO_ASSIGN: "Div",
	token.INC: "Add", token.DEC: "Sub",
}

func runFixedOps(p *Pass) {
	if p.Path == fixedPkgPath || p.Path == fixedPkgPath+"_test" {
		return
	}
	isQ := func(e ast.Expr) bool {
		t := p.Info.TypeOf(e)
		if t == nil {
			return false
		}
		named, ok := t.(*types.Named)
		if !ok {
			return false
		}
		obj := named.Obj()
		return obj.Name() == "Q" && obj.Pkg() != nil && obj.Pkg().Path() == fixedPkgPath
	}
	suggest := func(op token.Token) string {
		if m, ok := fixedOpMethod[op]; ok {
			return "; use the saturating fixed.Q method " + m
		}
		return ""
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ,
					token.LAND, token.LOR:
					return true // comparisons are exact
				}
				if isQ(n.X) || isQ(n.Y) {
					p.Reportf(n.OpPos, "raw %q on fixed.Q operands%s", n.Op, suggest(n.Op))
				}
			case *ast.AssignStmt:
				if n.Tok == token.ASSIGN || n.Tok == token.DEFINE {
					return true
				}
				for _, lhs := range n.Lhs {
					if isQ(lhs) {
						p.Reportf(n.TokPos, "raw %q on fixed.Q operands%s", n.Tok, suggest(n.Tok))
					}
				}
			case *ast.IncDecStmt:
				if isQ(n.X) {
					p.Reportf(n.TokPos, "raw %q on fixed.Q operands%s", n.Tok, suggest(n.Tok))
				}
			case *ast.UnaryExpr:
				if (n.Op == token.SUB || n.Op == token.XOR) && isQ(n.X) {
					p.Reportf(n.OpPos, "raw unary %q on fixed.Q operand; use the saturating fixed.Q method Neg", n.Op)
				}
			}
			return true
		})
	}
}
