package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// GoroutineLife returns the analyzer forbidding leakable goroutines in
// library packages: every `go` statement must have visible join
// evidence — a sync.WaitGroup.Wait or a channel receive — in the
// spawning function or in a call-graph ancestor (the caller that owns
// the WaitGroup the spawned work signals). Goroutines with neither are
// exactly the kind that outlive a cancelled scan and corrupt pooled
// scratch; internal/par's bounded pool is the sanctioned pattern
// (spawn N workers, wg.Wait before returning).
//
// A goroutine whose lifetime is genuinely managed elsewhere (a
// process-lifetime daemon handed to the caller) is annotated
// `// lint:goroutine <reason>`.
func GoroutineLife() *Analyzer {
	return &Analyzer{
		Name: "goroutinelife",
		Doc:  "requires every library `go` statement to be joined (WaitGroup/channel) in the function or a call-graph ancestor",
		Run:  runGoroutineLife,
	}
}

func runGoroutineLife(p *Pass) {
	if p.IsCommand() || p.IsTestPackage() {
		return
	}
	for _, f := range p.Files {
		if p.TestFiles[f] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if arg, hasDir := p.DirectiveArgAt(g.Pos(), "goroutine"); hasDir {
				if arg == "" {
					p.Reportf(g.Pos(), "lint:goroutine needs a reason explaining who owns this goroutine's lifetime")
				}
				return true
			}
			owner := joinOwner(p, g)
			if owner == "" {
				p.Reportf(g.Pos(), "goroutine is never joined: no WaitGroup.Wait or channel receive in this function or any call-graph ancestor; bound its lifetime or annotate // lint:goroutine <reason>")
				return true
			}
			if node := p.Prog.EnclosingFunc(p.Package, g.Pos()); node != nil {
				p.Prog.Publish(node.ID, "goroutinelife", "spawns a goroutine joined in "+owner)
			}
			return true
		})
	}
}

// joinOwner returns the ID of the function providing join evidence for
// the go statement — the enclosing function itself or the nearest
// call-graph ancestor — or "" when no join is visible anywhere.
func joinOwner(p *Pass, g *ast.GoStmt) string {
	start := p.Prog.EnclosingFunc(p.Package, g.Pos())
	if start == nil {
		return ""
	}
	seen := map[string]bool{}
	queue := []string{start.ID}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		if seen[id] {
			continue
		}
		seen[id] = true
		node := p.Prog.Node(id)
		if node != nil && node.Body != nil && bodyHasJoin(node) {
			return id
		}
		queue = append(queue, p.Prog.Callers(id)...)
	}
	return ""
}

// bodyHasJoin reports whether a function body contains join evidence:
// a (*sync.WaitGroup).Wait call, a channel receive, a range over a
// channel, or a select with a receive case. Nested literals count —
// the Wait is often behind a defer.
func bodyHasJoin(node *FuncNode) bool {
	info := node.Pkg.Info
	found := false
	ast.Inspect(node.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if fn, ok := info.Uses[n.Sel].(*types.Func); ok && isWaitGroupWait(fn) {
				found = true
			}
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				found = true
			}
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CommClause:
			if n.Comm != nil && isRecvComm(n.Comm) {
				found = true
			}
		}
		return !found
	})
	return found
}

// isWaitGroupWait reports whether fn is (*sync.WaitGroup).Wait.
func isWaitGroupWait(fn *types.Func) bool {
	if fn.Name() != "Wait" || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "WaitGroup"
}
