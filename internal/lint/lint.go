// Package lint is a stdlib-only static-analysis framework enforcing
// this repository's hardware datapath contract. The PL pipelines (HOG
// descriptor, block normalization, SVM dot product, DBN forward pass)
// are Q16.16 fixed-point datapaths with saturating arithmetic because
// the fabric has no FPU — but Go happily compiles raw `+` on
// fixed.Q, float64 in an RTL model, or an unseeded global RNG. The
// analyzers in this package turn those conventions into machine-checked
// invariants.
//
// Local (single-package, syntax + types) analyzers:
//
//   - fixedops: raw arithmetic operators on fixed.Q operands must be
//     the saturating Add/Sub/Mul/Div/Neg methods,
//   - nofloat: packages marked `// lint:datapath` may not use
//     float32/float64 or math.* outside `// lint:allowfloat` helpers,
//   - panicfree: library packages may not panic unless the site is
//     annotated `// lint:invariant <reason>`,
//   - seededrand: the global math/rand functions are forbidden in
//     favor of seeded *rand.Rand, keeping experiments reproducible.
//
// Dataflow-aware (interprocedural, built on the Program call graph of
// callgraph.go) analyzers:
//
//   - ctxflow: *Ctx functions take context.Context first, library code
//     never severs cancellation with context.Background/TODO, and
//     goroutine fan-out loops check their context,
//   - hotpathalloc: functions reachable from `// lint:hotpath` roots
//     stay free of allocating constructs (un-pre-sized appends,
//     map/slice literals, fmt.*, boxing into interface{}, closures
//     capturing loop variables),
//   - goroutinelife: every `go` statement in a library package must be
//     joined (WaitGroup.Wait or a channel receive) in the spawning
//     function or a call-graph ancestor,
//   - detorder: detection/datapath packages may not range over maps or
//     select over multiple result channels — the static guarantee
//     behind byte-identical detections at any worker count,
//   - walltime: `// lint:simtime` packages may not read the wall clock
//     (time.Now/Since/Sleep/...); timing flows through simulated ps.
//
// Annotation syntax (ordinary line comments, scanned per file):
//
//	// lint:datapath            — package doc: opts the package into nofloat (and detorder)
//	// lint:detpath             — package doc: opts the package into detorder
//	// lint:simtime             — package doc: opts the package into walltime
//	// lint:allowfloat <why>    — func/decl doc: conversion or reporting helper
//	// lint:invariant <why>     — on or directly above a panic call site
//	// lint:hotpath             — func doc: roots the hotpathalloc reachability sweep
//	// lint:alloc <why>         — allocation site in a hot path; the reason is mandatory
//	// lint:ctxroot <why>       — sanctioned context.Background/TODO root
//	// lint:goroutine <why>     — goroutine whose lifetime is managed elsewhere
//	// lint:unordered <why>     — map iteration / select whose order provably cannot leak
//	// lint:walltime <why>      — sanctioned wall-clock read (metrics dual recording)
//
// The framework is deliberately small: an Analyzer is a named function
// over one typechecked Package, a Pass collects Diagnostics (and can
// consult the whole-program call graph through Pass.Prog), and the
// loader in load.go builds Packages from source with go/parser,
// go/types and go/importer alone (no x/tools), preserving the module's
// zero-dependency property.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// A Diagnostic is one finding at one source position.
type Diagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.File, d.Line, d.Col, d.Analyzer, d.Message)
}

// An Analyzer is one named check over a typechecked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// A Package is one typechecked package of the module, ready for
// analysis. Files includes _test.go files when the package was loaded
// with Config.Tests; TestFiles marks which they are.
type Package struct {
	// Path is the import path ("advdet/internal/fixed"); external test
	// packages carry a "_test" suffix ("advdet/internal/fixed_test").
	Path  string
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TestFiles marks files whose name ends in _test.go.
	TestFiles map[*ast.File]bool

	// directives[filename][line] holds the lint:<name> directives of
	// each file, keyed by the comment's line.
	directives map[string]map[int]directive
}

// directive is one parsed lint:<name> <arg> annotation.
type directive struct {
	name string
	arg  string
}

// A Pass couples one Analyzer run with one Package and collects its
// diagnostics. Prog is the whole-program index shared by every pass of
// one RunAnalyzers invocation; dataflow-aware analyzers use it for
// call-graph reachability and fact exchange.
type Pass struct {
	*Package
	Analyzer *Analyzer
	Prog     *Program
	diags    []Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Message:  fmt.Sprintf(format, args...),
	})
}

func runOne(prog *Program, a *Analyzer, pkg *Package) []Diagnostic {
	pass := &Pass{Package: pkg, Analyzer: a, Prog: prog}
	a.Run(pass)
	sortDiags(pass.diags)
	return pass.diags
}

// RunAnalyzers applies every analyzer to every package and returns the
// combined findings in file/line order. The call graph is built once
// over all packages, so interprocedural analyzers see cross-package
// edges.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	return RunProgram(NewProgram(pkgs), analyzers)
}

// RunProgram is RunAnalyzers over a pre-built Program; callers that
// want the program afterwards (fact dumps, call-graph queries) build
// it themselves and use this entry point.
func RunProgram(prog *Program, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, pkg := range prog.Pkgs {
		for _, a := range analyzers {
			out = append(out, runOne(prog, a, pkg)...)
		}
	}
	sortDiags(out)
	return out
}

func sortDiags(d []Diagnostic) {
	sort.Slice(d, func(i, j int) bool {
		if d[i].File != d[j].File {
			return d[i].File < d[j].File
		}
		if d[i].Line != d[j].Line {
			return d[i].Line < d[j].Line
		}
		if d[i].Col != d[j].Col {
			return d[i].Col < d[j].Col
		}
		return d[i].Analyzer < d[j].Analyzer
	})
}

// All returns the full analyzer suite in a stable order: the four
// local contract analyzers of PR 1 followed by the five dataflow-aware
// analyzers built on the call graph.
func All() []*Analyzer {
	return []*Analyzer{
		FixedOps(), NoFloat(), PanicFree(), SeededRand(),
		CtxFlow(), DetOrder(), GoroutineLife(), HotPathAlloc(), WallTime(),
	}
}

// ByName resolves a comma-separated analyzer list ("all" or names from
// All) to analyzer instances.
func ByName(list string) ([]*Analyzer, error) {
	if list == "" || list == "all" {
		return All(), nil
	}
	byName := map[string]*Analyzer{}
	for _, a := range All() {
		byName[a.Name] = a
	}
	var out []*Analyzer
	for _, name := range strings.Split(list, ",") {
		name = strings.TrimSpace(name)
		a, ok := byName[name]
		if !ok {
			return nil, fmt.Errorf("lint: unknown analyzer %q", name)
		}
		out = append(out, a)
	}
	return out, nil
}

// directivePrefix introduces an annotation inside a line comment.
const directivePrefix = "lint:"

// scanDirectives indexes every lint:<name> annotation of f by line.
func (p *Package) scanDirectives(f *ast.File) {
	if p.directives == nil {
		p.directives = map[string]map[int]directive{}
	}
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
			if !strings.HasPrefix(text, directivePrefix) {
				continue
			}
			name, arg, _ := strings.Cut(strings.TrimPrefix(text, directivePrefix), " ")
			pos := p.Fset.Position(c.Pos())
			m := p.directives[pos.Filename]
			if m == nil {
				m = map[int]directive{}
				p.directives[pos.Filename] = m
			}
			m[pos.Line] = directive{name: name, arg: strings.TrimSpace(arg)}
		}
	}
}

// DirectiveAt reports whether a lint:<name> annotation sits on the
// same line as pos or on the line directly above it.
func (p *Package) DirectiveAt(pos token.Pos, name string) bool {
	_, ok := p.directiveAt(pos, name)
	return ok
}

// DirectiveArgAt returns the argument text of a lint:<name> annotation
// on pos's line or the line directly above it ("" when the annotation
// carries no reason), and whether the annotation is present at all.
func (p *Package) DirectiveArgAt(pos token.Pos, name string) (string, bool) {
	return p.directiveAt(pos, name)
}

func (p *Package) directiveAt(pos token.Pos, name string) (string, bool) {
	position := p.Fset.Position(pos)
	m := p.directives[position.Filename]
	if d, ok := m[position.Line]; ok && d.name == name {
		return d.arg, true
	}
	if d, ok := m[position.Line-1]; ok && d.name == name {
		return d.arg, true
	}
	return "", false
}

// DocHasDirective reports whether a doc comment carries lint:<name>.
func DocHasDirective(doc *ast.CommentGroup, name string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if strings.HasPrefix(text, directivePrefix+name) {
			return true
		}
	}
	return false
}

// IsDatapath reports whether any file's package doc opts the package
// into the nofloat contract with lint:datapath.
func (p *Package) IsDatapath() bool { return p.HasPackageDirective("datapath") }

// HasPackageDirective reports whether any file's package doc carries
// lint:<name> — the opt-in mechanism for package-scoped contracts
// (datapath, detpath, simtime).
func (p *Package) HasPackageDirective(name string) bool {
	for _, f := range p.Files {
		if DocHasDirective(f.Doc, name) {
			return true
		}
	}
	return false
}

// IsTestPackage reports whether p is an external _test package.
func (p *Package) IsTestPackage() bool { return strings.HasSuffix(p.Path, "_test") }

// IsCommand reports whether p is a main package (cmd/, examples/).
func (p *Package) IsCommand() bool { return p.Types != nil && p.Types.Name() == "main" }
