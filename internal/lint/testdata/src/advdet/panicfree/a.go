// Package panicfree is golden testdata: a bare panic in library code
// must be reported; an annotated invariant must not.
package panicfree

import "fmt"

// Clamp panics on misuse — the analyzer wants an error return here.
func Clamp(n int) int {
	if n < 0 {
		panic("panicfree: negative n") // want "panic in library package"
	}
	return n
}

// Checked documents why its panic is unreachable; the annotation on
// the line above the call site allowlists it.
func Checked(n int) int {
	if n < 0 {
		// lint:invariant n validated non-negative by every caller
		panic(fmt.Sprintf("panicfree: unreachable %d", n))
	}
	return n
}

// CheckedInline carries the annotation on the call line itself.
func CheckedInline(n int) int {
	if n > 1<<30 {
		panic("panicfree: overflow") // lint:invariant bounds proven above
	}
	return n
}
