// Package ctxflow is golden testdata: *Ctx naming without a context
// parameter, context.Background in library code, and goroutine
// fan-out loops with no cancellation check must all be reported;
// the sanctioned patterns must stay silent.
package ctxflow

import (
	"context"
	"sync"
)

// DetectCtx is misnamed: the Ctx suffix promises a context parameter.
func DetectCtx(n int) int { // want "DetectCtx is named .Ctx but does not take context.Context as its first parameter"
	return n
}

// ComputeCtx carries the sanctioned signature.
func ComputeCtx(ctx context.Context, n int) int {
	_ = ctx
	return n
}

// Root severs cancellation from the caller.
func Root() int {
	return ComputeCtx(context.Background(), 1) // want "context.Background in library code severs cancellation from the caller"
}

// Todo is the same violation through context.TODO.
func Todo() int {
	return ComputeCtx(context.TODO(), 1) // want "context.TODO in library code severs cancellation from the caller"
}

// SerialWrapper is the sanctioned root: annotated with a reason.
func SerialWrapper() int {
	return ComputeCtx(context.Background(), 1) // lint:ctxroot serial compatibility wrapper; caller opted out of cancellation
}

// FanOut launches goroutines from a loop with no context in sight.
func FanOut(n int, out []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) { // want "fan-out loop launches goroutines without a cancellation check"
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
}

// FanOutCtx polls the context each iteration — the sanctioned fan-out.
func FanOutCtx(ctx context.Context, n int, out []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		if ctx.Err() != nil {
			break
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
}
