// Package callgraph is fixture code for the Program call-graph layer:
// closures, method values, interface dispatch with a single concrete
// implementation, and cross-package calls.
package callgraph

import "advdet/callgraph/sub"

// Doer is implemented by exactly one concrete type in this package,
// so dynamic dispatch devirtualizes to (Impl).Do.
type Doer interface {
	Do() int
}

// Impl is the sole implementation of Doer.
type Impl struct{}

// Do crosses into the sub package.
func (Impl) Do() int {
	return sub.Helper()
}

// Entry exercises interface dispatch and a direct method call.
func Entry() int {
	var d Doer = Impl{}
	return d.Do() + Impl{}.Do()
}

// closureAdder returns a closure; the literal is its own graph node.
func closureAdder(n int) func(int) int {
	return func(m int) int {
		return n + m
	}
}

// UseAdder keeps closureAdder referenced.
func UseAdder() int {
	return closureAdder(1)(2)
}

// methodValue references Impl.Do without calling it — a may-call edge.
func methodValue() func() int {
	var i Impl
	return i.Do
}

// UseMethodValue keeps methodValue referenced.
func UseMethodValue() int {
	return methodValue()()
}
