// Package sub is the cross-package callee of the callgraph fixture.
package sub

// Helper is called from callgraph.Impl.Do.
func Helper() int {
	return 40
}
