// Package fixedops is golden testdata: raw operators on fixed.Q must
// be reported, saturating method calls and comparisons must not.
package fixedops

import "advdet/internal/fixed"

// Bad performs every class of raw arithmetic the analyzer flags.
func Bad(a, b fixed.Q) fixed.Q {
	c := a + b            // want "raw .\+. on fixed.Q operands; use the saturating fixed.Q method Add"
	c = a * b             // want "raw .\*. on fixed.Q operands; use the saturating fixed.Q method Mul"
	c = a / b             // want "raw ./. on fixed.Q operands; use the saturating fixed.Q method Div"
	c -= b                // want "raw .-=. on fixed.Q operands; use the saturating fixed.Q method Sub"
	c++                   // want "raw .\+\+. on fixed.Q operands; use the saturating fixed.Q method Add"
	d := -a               // want "raw unary .-. on fixed.Q operand; use the saturating fixed.Q method Neg"
	e := a + fixed.One    // want "raw .\+. on fixed.Q operands"
	f := a << 1           // want "raw .<<. on fixed.Q operands"
	_, _, _ = d, e, f
	return c
}

// Good uses only the saturating methods and exact comparisons.
func Good(a, b fixed.Q) fixed.Q {
	if a == b || a > fixed.One {
		return a.Add(b).Mul(a).Sub(b).Div(b).Neg()
	}
	plain := int32(a) // explicit escape to raw integer domain is fine
	_ = plain
	return fixed.FromFloat(0.5)
}
