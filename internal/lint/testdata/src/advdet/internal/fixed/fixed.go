// Package fixed is the golden-test stand-in for advdet/internal/fixed:
// the fixedops analyzer identifies Q by this exact import path, and
// raw operators inside the package itself are the implementation, so
// none of the lines below may be reported.
package fixed

// Q is a Q16.16 fixed-point number.
type Q int32

// One is the Q16.16 representation of 1.0.
const One Q = 1 << 16

// FromFloat converts without the real package's saturation; the
// golden tests only need the signature.
func FromFloat(f float64) Q { return Q(f * float64(One)) }

// Float converts back to float64.
func (q Q) Float() float64 { return float64(q) / float64(One) }

// Add adds (stand-in, not saturating).
func (q Q) Add(r Q) Q { return q + r }

// Sub subtracts (stand-in, not saturating).
func (q Q) Sub(r Q) Q { return q - r }

// Mul multiplies (stand-in, not saturating).
func (q Q) Mul(r Q) Q { return Q((int64(q) * int64(r)) >> 16) }

// Div divides (stand-in, not saturating).
func (q Q) Div(r Q) Q { return Q((int64(q) << 16) / int64(r)) }

// Neg negates (stand-in, not saturating).
func (q Q) Neg() Q { return -q }
