// Package walltime is golden testdata: wall-clock reads inside a
// simulated-time package must be reported unless annotated with a
// reason; pure time.Duration math stays allowed.
//
// lint:simtime
package walltime

import "time"

// Deadline couples a simulated deadline to the host clock.
func Deadline() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock in a simulated-time package"
}

// Wait stalls simulated hardware on host time.
func Wait() {
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock in a simulated-time package"
}

// Elapsed measures host time inside the simulation.
func Elapsed(start time.Time) time.Duration {
	return time.Since(start) // want "time.Since reads the wall clock in a simulated-time package"
}

// Lap is the sanctioned dual-recording read.
func Lap() time.Time {
	return time.Now() // lint:walltime metrics dual-recording: wall lap rides beside the ps slot clock
}

// Unreasoned has the annotation but no justification.
func Unreasoned() time.Time {
	// lint:walltime
	return time.Now() // want "lint:walltime needs a reason explaining why this wall-clock read is sanctioned"
}

// Budget is pure duration math: no clock read, no finding.
func Budget(d time.Duration) time.Duration {
	return d * 2
}
