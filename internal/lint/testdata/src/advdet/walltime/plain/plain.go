// Package plain has no lint:simtime directive: wall-clock reads are
// this package's business and the analyzer must stay silent.
package plain

import "time"

// Now is fine here — plain is not in the simulated-time domain.
func Now() time.Time {
	return time.Now()
}
