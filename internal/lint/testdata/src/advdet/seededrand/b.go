package seededrand

// Golden coverage for the worker-pool idiom: a global math/rand draw
// inside a spawned goroutine is still the shared unseeded source —
// now also contended across workers.

import (
	"math/rand"
	"sync"
)

// ParallelJitter fans work across goroutines; the global draw inside
// the closure must be reported like any other.
func ParallelJitter(n int) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = rand.Intn(10) // want "global math/rand.Intn is unseeded"
		}(i)
	}
	wg.Wait()
	return out
}

// SeededWorkers is the sanctioned pattern: one seeded generator per
// goroutine, derived from the caller's seed.
func SeededWorkers(n int, seed int64) []int {
	out := make([]int, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)))
			out[i] = rng.Intn(10)
		}(i)
	}
	wg.Wait()
	return out
}
