// Package seededrand is golden testdata: global math/rand draws must
// be reported, seeded *rand.Rand flows must not.
package seededrand

import "math/rand"

// Jitter draws from the shared, unseeded global source.
func Jitter() int {
	return rand.Intn(10) // want "global math/rand.Intn is unseeded"
}

// Shuffle also hits the global source.
func Shuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want "global math/rand.Shuffle is unseeded"
}

// Reproducible threads a seeded generator; the constructors and the
// *rand.Rand methods are exactly what the analyzer wants to see.
func Reproducible(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}
