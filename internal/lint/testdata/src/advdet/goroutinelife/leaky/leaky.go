// Package leaky is deliberately fire-and-forget testdata: the
// analyzer acceptance gate requires at least one finding here — a
// goroutine spawned with no join evidence anywhere.
package leaky

// StartMonitor spawns a poller that nobody ever joins or stops.
func StartMonitor(tick func()) {
	go func() { // want "goroutine is never joined"
		for {
			tick()
		}
	}()
}
