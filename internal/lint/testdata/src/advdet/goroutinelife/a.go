// Package goroutinelife is golden testdata: every go statement needs
// join evidence (WaitGroup.Wait or a channel receive) in the spawning
// function or a call-graph ancestor; fire-and-forget spawns and
// reasonless annotations are reported.
package goroutinelife

import "sync"

// Pool is the sanctioned worker-pool shape: spawn then Wait in the
// same function.
func Pool(n int, out []int) {
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
}

// spawn launches a worker; the join lives in the caller.
func spawn(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
	}()
}

// Run owns the WaitGroup spawn signals — call-graph-ancestor join
// evidence for spawn's go statement.
func Run() {
	var wg sync.WaitGroup
	spawn(&wg)
	wg.Wait()
}

// Collect joins through a channel receive.
func Collect() int {
	ch := make(chan int, 1)
	go func() { ch <- 1 }()
	return <-ch
}

// Forget leaks: no Wait, no receive, anywhere up the call graph.
func Forget() {
	go func() {}() // want "goroutine is never joined"
}

// Daemon hands lifetime ownership to the caller, with a reason.
func Daemon(stop chan struct{}) {
	go func() { <-stop }() // lint:goroutine process-lifetime daemon; the caller closes stop on shutdown
}

// Unreasoned has the annotation but no justification.
func Unreasoned() {
	// lint:goroutine
	go func() {}() // want "lint:goroutine needs a reason explaining who owns this goroutine's lifetime"
}
