// Package nofloat is golden testdata for the datapath float ban: the
// package doc's directive below opts every non-test file in.
//
// lint:datapath
package nofloat

import "math"

// Stage declares a float field in a datapath struct.
type Stage struct {
	Cells int
	Scale float64 // want "float64 in datapath package"
}

// Bad mixes float arithmetic into datapath code.
func Bad(x int32) int32 {
	f := float64(x) // want "float-typed expression in datapath package"
	_ = f
	g := math.Sqrt(4) // want "call of math.Sqrt in datapath package"
	_ = g
	u := math.Float64bits(1) // want "call of math.Float64bits in datapath package"
	_ = u
	return x
}

// RoundTrip is an explicitly allowlisted conversion helper: floats and
// math are its whole point, so nothing below may be reported.
//
// lint:allowfloat golden-test conversion helper
func RoundTrip(x int32) int32 {
	return int32(math.Round(float64(x) * 1.5))
}
