// Package detorder is golden testdata: map iteration and
// multi-channel selects must be reported in a detection-assembly
// package; slice iteration, annotated commutative folds, and
// single-receive selects stay silent.
//
// lint:detpath
package detorder

// Assemble lets map iteration order leak into the result slice.
func Assemble(m map[int]string) []string {
	out := make([]string, 0, len(m))
	for _, v := range m { // want "range over a map iterates in nondeterministic order"
		out = append(out, v)
	}
	return out
}

// Sum is a commutative fold: order provably cannot reach the result.
func Sum(m map[int]int) int {
	total := 0
	// lint:unordered integer addition is commutative; iteration order cannot reach the sum
	for _, v := range m {
		total += v
	}
	return total
}

// Count has the annotation but no justification.
func Count(m map[int]int) int {
	n := 0
	// lint:unordered
	for range m { // want "lint:unordered needs a reason explaining why iteration order cannot leak"
		n++
	}
	return n
}

// FanIn resolves two result channels in scheduling-dependent order.
func FanIn(a, b chan int) int {
	select { // want "select over 2 result channels resolves in scheduling-dependent order"
	case v := <-a:
		return v
	case v := <-b:
		return v
	}
}

// SendOrDone has a single receive case: no ordering choice between
// results, no finding.
func SendOrDone(ch chan int, done chan struct{}) bool {
	select {
	case ch <- 1:
		return true
	case <-done:
		return false
	}
}

// AssembleSlice is the sanctioned shape: deterministic slice order.
func AssembleSlice(xs []string) []string {
	out := make([]string, 0, len(xs))
	for _, v := range xs {
		out = append(out, v)
	}
	return out
}
