// Package hotpathalloc is golden testdata: allocating constructs in
// functions reachable from a lint:hotpath root must be reported;
// pre-sized appends, cap-guarded amortization, annotated escapes, and
// unreachable cold code stay silent.
package hotpathalloc

import "fmt"

// Scan is the frame-loop entry point.
//
// lint:hotpath
func Scan(rows [][]float64) []float64 {
	out := make([]float64, 0, len(rows))
	for _, r := range rows {
		out = append(out, describe(r)) // pre-sized destination: clean
	}
	closures(len(rows))
	return out
}

// describe is hot by reachability: Scan calls it.
func describe(r []float64) float64 {
	stats := map[string]int{} // want "map literal allocates in a hot path"
	weights := []float64{0.5, 0.5} // want "slice literal allocates in a hot path"
	var tail []float64
	tail = append(tail, weights[0]) // want "un-pre-sized append growth in a hot path"
	msg := fmt.Sprintf("%d", len(r)) // want "fmt.Sprintf in a hot path boxes arguments and allocates"
	sink(len(msg)) // want "boxing int into interface"
	stats["n"] = len(tail)
	s := 0.0
	for _, v := range r {
		s += v
	}
	return s
}

// closures demonstrates the loop-variable capture report and the
// guarded/annotated escapes.
func closures(n int) {
	fs := make([]func() int, 0, n)
	for i := 0; i < n; i++ {
		fs = append(fs, func() int { return i }) // want "closure captures loop variable i"
	}
	var buf []int
	if cap(buf) < n {
		buf = make([]int, 0, n)
		buf = append(buf, n) // cap-guarded amortization: clean
	}
	cold := fmt.Sprintf("grew to %d", cap(buf)) // lint:alloc cold resize path, runs only on geometry change
	// lint:alloc
	_ = fmt.Sprint(cold) // want "lint:alloc needs a reason justifying the allocation"
	_ = fs
}

// sink boxes its argument; hot callers get reported at the call site.
func sink(v interface{}) {
	_ = v
}

// Cold is unreachable from any lint:hotpath root: its allocations are
// nobody's business.
func Cold() map[string]int {
	return map[string]int{"a": 1}
}
