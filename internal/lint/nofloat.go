package lint

import (
	"go/ast"
	"go/types"
)

// NoFloat returns the analyzer modeling the "PL has no FPU"
// constraint: inside packages whose package doc carries
// `// lint:datapath`, any float32/float64 type use, float-typed
// expression or math.* call is a finding, unless the enclosing
// function or declaration is annotated `// lint:allowfloat <reason>`
// (conversion helpers like fixed.FromFloat, reporting helpers like
// FPS). Test files model the PS/software side and are exempt.
func NoFloat() *Analyzer {
	return &Analyzer{
		Name: "nofloat",
		Doc:  "forbids float32/float64 and math.* in lint:datapath packages",
		Run:  runNoFloat,
	}
}

func runNoFloat(p *Pass) {
	if !p.IsDatapath() || p.IsTestPackage() {
		return
	}
	for _, f := range p.Files {
		if p.TestFiles[f] {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if DocHasDirective(d.Doc, "allowfloat") {
					continue
				}
			case *ast.GenDecl:
				if DocHasDirective(d.Doc, "allowfloat") {
					continue
				}
			}
			noFloatDecl(p, decl)
		}
	}
}

// noFloatDecl walks one declaration reporting each maximal float
// expression or float type reference once (children of a reported
// node are not re-reported).
func noFloatDecl(p *Pass, decl ast.Decl) {
	isFloat := func(t types.Type) bool {
		b, ok := t.Underlying().(*types.Basic)
		return ok && b.Info()&types.IsFloat != 0
	}
	ast.Inspect(decl, func(n ast.Node) bool {
		expr, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		// A call into math gets one finding covering the whole call,
		// arguments included — math is the FPU's standard library.
		if call, ok := expr.(*ast.CallExpr); ok {
			if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
				if fn, isFunc := p.Info.Uses[sel.Sel].(*types.Func); isFunc &&
					fn.Pkg() != nil && fn.Pkg().Path() == "math" {
					p.Reportf(call.Pos(), "call of math.%s in datapath package (PL has no FPU); use fixed-point or annotate // lint:allowfloat", sel.Sel.Name)
					return false
				}
			}
		}
		// A float32/float64 type reference (field, param, conversion).
		if id, ok := expr.(*ast.Ident); ok {
			if tn, ok := p.Info.Uses[id].(*types.TypeName); ok && tn.Pkg() == nil &&
				(tn.Name() == "float32" || tn.Name() == "float64") {
				p.Reportf(id.Pos(), "%s in datapath package (PL has no FPU); use fixed-point or annotate // lint:allowfloat", tn.Name())
			}
			return true
		}
		// Any other maximal float-typed expression.
		if tv, ok := p.Info.Types[expr]; ok && tv.Type != nil && !tv.IsType() && isFloat(tv.Type) {
			p.Reportf(expr.Pos(), "float-typed expression in datapath package (PL has no FPU); use fixed-point or annotate // lint:allowfloat")
			return false
		}
		return true
	})
}
