package lint

import (
	"fmt"
	"regexp"
)

// wantRe extracts the quoted regexps of a `// want "..."` comment in
// golden testdata; a comment may carry several `want "..."` clauses
// when one line produces several diagnostics.
var wantRe = regexp.MustCompile(`want "((?:[^"\\]|\\.)*)"`)

// expectation is one // want comment.
type expectation struct {
	file    string
	line    int
	re      *regexp.Regexp
	matched bool
}

// CheckGolden loads the testdata package selected by pattern under
// cfg, runs the analyzer, and compares its diagnostics against the
// package's `// want "regexp"` comments, analysistest-style: every
// want must be matched by a diagnostic on its line, and every
// diagnostic must land on a line with a matching want. The returned
// strings describe the mismatches; an empty slice means the golden
// expectations hold exactly.
func CheckGolden(cfg Config, a *Analyzer, pattern string) ([]string, error) {
	pkgs, err := Load(cfg, pattern)
	if err != nil {
		return nil, err
	}
	prog := NewProgram(pkgs)
	var fails []string
	for _, pkg := range pkgs {
		var wants []*expectation
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					for _, m := range wantRe.FindAllStringSubmatch(c.Text, -1) {
						re, err := regexp.Compile(m[1])
						if err != nil {
							return nil, fmt.Errorf("lint: bad want regexp at %s: %w", pkg.Fset.Position(c.Pos()), err)
						}
						pos := pkg.Fset.Position(c.Pos())
						wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
					}
				}
			}
		}
		for _, d := range runOne(prog, a, pkg) {
			found := false
			for _, w := range wants {
				if w.file == d.File && w.line == d.Line && w.re.MatchString(d.Message) {
					w.matched = true
					found = true
				}
			}
			if !found {
				fails = append(fails, fmt.Sprintf("unexpected diagnostic: %s", d))
			}
		}
		for _, w := range wants {
			if !w.matched {
				fails = append(fails, fmt.Sprintf("%s:%d: no %s diagnostic matching %q", w.file, w.line, a.Name, w.re))
			}
		}
	}
	return fails, nil
}
