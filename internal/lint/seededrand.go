package lint

import (
	"go/ast"
	"go/types"
)

// SeededRand returns the analyzer keeping experiments reproducible:
// the package-level math/rand functions (rand.Intn, rand.Float64,
// rand.Perm, ...) draw from a shared, unseeded global source, so two
// runs of the same experiment disagree. Constructors (rand.New,
// rand.NewSource, ...) stay allowed — state must flow through a
// seeded *rand.Rand.
func SeededRand() *Analyzer {
	return &Analyzer{
		Name: "seededrand",
		Doc:  "forbids the global math/rand functions; use a seeded *rand.Rand",
		Run:  runSeededRand,
	}
}

// seededRandAllowed lists the package-level constructors that build
// the seeded state the analyzer wants to see.
var seededRandAllowed = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true,
	"NewPCG": true, "NewChaCha8": true, // math/rand/v2
}

func runSeededRand(p *Pass) {
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if path := fn.Pkg().Path(); path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand are the point
			}
			if seededRandAllowed[fn.Name()] {
				return true
			}
			p.Reportf(sel.Pos(), "global math/rand.%s is unseeded and irreproducible; draw from a seeded *rand.Rand", fn.Name())
			return true
		})
	}
}
