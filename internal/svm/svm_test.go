package svm

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

// separable2D builds a linearly separable 2-D problem around the line
// x0 + x1 = 0 with margin gap.
func separable2D(n int, gap float64, seed uint64) Problem {
	var p Problem
	s := seed
	next := func() float64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return float64(s%1000)/500 - 1 // [-1, 1)
	}
	for i := 0; i < n; i++ {
		a, b := next(), next()
		if i%2 == 0 {
			p.X = append(p.X, []float64{a + gap, b + gap})
			p.Y = append(p.Y, 1)
		} else {
			p.X = append(p.X, []float64{a - gap, b - gap})
			p.Y = append(p.Y, -1)
		}
	}
	return p
}

func accuracy(m *Model, p Problem) float64 {
	correct := 0
	for i, x := range p.X {
		if m.Predict(x) == p.Y[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(p.X))
}

func TestTrainSeparable(t *testing.T) {
	p := separable2D(200, 1.5, 3)
	for _, loss := range []Loss{L1Loss, L2Loss} {
		o := DefaultOptions()
		o.Loss = loss
		m, err := Train(p, o)
		if err != nil {
			t.Fatal(err)
		}
		if acc := accuracy(m, p); acc != 1 {
			t.Fatalf("loss %d: training accuracy %v on separable data", loss, acc)
		}
	}
}

func TestTrainGeneralizes(t *testing.T) {
	train := separable2D(200, 1.0, 5)
	test := separable2D(100, 1.0, 99)
	m, err := Train(train, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, test); acc < 0.98 {
		t.Fatalf("test accuracy %v", acc)
	}
}

func TestTrainWeightDirection(t *testing.T) {
	// For classes separated along (1,1), the weight vector must point
	// that way: both components positive and similar.
	p := separable2D(300, 1.2, 7)
	m, err := Train(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if m.W[0] <= 0 || m.W[1] <= 0 {
		t.Fatalf("weights %v do not point along the separation axis", m.W)
	}
	ratio := m.W[0] / m.W[1]
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("weight ratio %v too asymmetric", ratio)
	}
}

func TestTrainDeterministic(t *testing.T) {
	p := separable2D(100, 0.5, 11)
	o := DefaultOptions()
	a, err := Train(p, o)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(p, o)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.W {
		if a.W[i] != b.W[i] {
			t.Fatal("same options produced different models")
		}
	}
	if a.Bias != b.Bias {
		t.Fatal("bias differs between identical runs")
	}
}

func TestTrainErrorCases(t *testing.T) {
	if _, err := Train(Problem{}, DefaultOptions()); err == nil {
		t.Fatal("empty problem accepted")
	}
	p := Problem{X: [][]float64{{1}, {2}}, Y: []float64{1, 1}}
	if _, err := Train(p, DefaultOptions()); err == nil {
		t.Fatal("single-class problem accepted")
	}
	p = Problem{X: [][]float64{{1}, {2}}, Y: []float64{1, 0.5}}
	if _, err := Train(p, DefaultOptions()); err == nil {
		t.Fatal("non ±1 label accepted")
	}
	p = Problem{X: [][]float64{{1}, {2, 3}}, Y: []float64{1, -1}}
	if _, err := Train(p, DefaultOptions()); err == nil {
		t.Fatal("ragged features accepted")
	}
	p = Problem{X: [][]float64{{1}, {2}}, Y: []float64{1, -1}}
	o := DefaultOptions()
	o.C = 0
	if _, err := Train(p, o); err == nil {
		t.Fatal("C=0 accepted")
	}
	p = Problem{X: [][]float64{{1}}, Y: []float64{1, -1}}
	if _, err := Train(p, DefaultOptions()); err == nil {
		t.Fatal("mismatched X/Y lengths accepted")
	}
}

func TestBiasLearnsOffset(t *testing.T) {
	// Classes split at x = 5: without a bias this is not separable
	// through the origin; with the learned bias it must be.
	var p Problem
	for i := 0; i < 50; i++ {
		v := float64(i%10) / 10
		p.X = append(p.X, []float64{6 + v})
		p.Y = append(p.Y, 1)
		p.X = append(p.X, []float64{4 - v})
		p.Y = append(p.Y, -1)
	}
	m, err := Train(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if acc := accuracy(m, p); acc != 1 {
		t.Fatalf("offset data accuracy %v", acc)
	}
	if m.Bias >= 0 {
		t.Fatalf("bias %v should be negative for a boundary at +5", m.Bias)
	}
}

func TestMarginSignMatchesPredict(t *testing.T) {
	p := separable2D(60, 0.8, 13)
	m, err := Train(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	f := func(a, b float64) bool {
		x := []float64{math.Mod(a, 10), math.Mod(b, 10)}
		pred := m.Predict(x)
		marg := m.Margin(x)
		return (marg >= 0 && pred == 1) || (marg < 0 && pred == -1)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMarginPanicsOnDimensionMismatch(t *testing.T) {
	m := &Model{W: []float64{1, 2}}
	defer func() {
		if recover() == nil {
			t.Fatal("dimension mismatch did not panic")
		}
	}()
	m.Margin([]float64{1})
}

func TestL1LossAlphaBounded(t *testing.T) {
	// With tiny C the L1 solution is heavily regularized: weights stay
	// small even on separable data.
	p := separable2D(100, 2.0, 17)
	o := DefaultOptions()
	o.Loss = L1Loss
	o.C = 1e-6
	m, err := Train(p, o)
	if err != nil {
		t.Fatal(err)
	}
	norm := math.Hypot(m.W[0], m.W[1])
	if norm > 0.01 {
		t.Fatalf("tiny-C weight norm %v too large", norm)
	}
}

func TestConvergenceIters(t *testing.T) {
	p := separable2D(100, 2.0, 19)
	o := DefaultOptions()
	o.MaxIter = 500
	m, err := Train(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.Iters >= 500 {
		t.Fatalf("solver failed to converge in %d iters on easy data", m.Iters)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	p := separable2D(50, 1.0, 23)
	m, err := Train(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range m.W {
		if got.W[i] != m.W[i] {
			t.Fatal("weights changed in round trip")
		}
	}
	if got.Bias != m.Bias {
		t.Fatal("bias changed in round trip")
	}
}

func TestSaveLoad(t *testing.T) {
	p := separable2D(50, 1.0, 29)
	m, err := Train(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/model.bin"
	if err := m.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Margin([]float64{1, 1}) != m.Margin([]float64{1, 1}) {
		t.Fatal("loaded model disagrees with original")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("not a model"))); err == nil {
		t.Fatal("garbage decoded without error")
	}
}

func TestWeightBytes(t *testing.T) {
	m := &Model{W: make([]float64, 1764)}
	if m.WeightBytes() != 4*1765 {
		t.Fatalf("WeightBytes = %d", m.WeightBytes())
	}
}

func TestCrossValidate(t *testing.T) {
	p := separable2D(120, 1.2, 41)
	acc, err := CrossValidate(p, DefaultOptions(), 5)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.95 {
		t.Fatalf("cross-validated accuracy %v on separable data", acc)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	p := separable2D(10, 1, 43)
	if _, err := CrossValidate(p, DefaultOptions(), 1); err == nil {
		t.Fatal("k=1 accepted")
	}
	if _, err := CrossValidate(p, DefaultOptions(), 100); err == nil {
		t.Fatal("k > n accepted")
	}
	// A fold whose training complement is single-class must error,
	// not panic: craft alternating labels so this passes, then an
	// all-one-class-after-removal case.
	bad := Problem{
		X: [][]float64{{1}, {2}, {-1}, {-2}},
		Y: []float64{1, 1, -1, -1},
	}
	// k=2: fold 0 removes both positives -> single-class training set.
	if _, err := CrossValidate(bad, DefaultOptions(), 2); err == nil {
		t.Fatal("single-class fold accepted")
	}
}

func TestNoBiasOption(t *testing.T) {
	p := separable2D(100, 1.5, 31)
	o := DefaultOptions()
	o.BiasScale = 0
	m, err := Train(p, o)
	if err != nil {
		t.Fatal(err)
	}
	if m.Bias != 0 {
		t.Fatalf("bias %v with BiasScale 0", m.Bias)
	}
	// Data is separable through the origin, so accuracy stays perfect.
	if acc := accuracy(m, p); acc != 1 {
		t.Fatalf("accuracy %v without bias", acc)
	}
}
