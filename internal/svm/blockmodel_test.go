package svm

import (
	"context"
	"math"
	"testing"
)

// splitmix64 is the seeded generator the block-model property tests
// draw from; deterministic so failures reproduce.
type splitmix64 uint64

func (s *splitmix64) next() uint64 {
	*s += 0x9e3779b97f4a7c15
	z := uint64(*s)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (s *splitmix64) float() float64 {
	return float64(s.next()>>11)/float64(1<<53)*2 - 1 // [-1, 1)
}

func (s *splitmix64) fill(n int) []float64 {
	v := make([]float64, n)
	for i := range v {
		v[i] = s.float()
	}
	return v
}

func relDiff(a, b float64) float64 {
	d := math.Abs(a - b)
	if d == 0 {
		return 0
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	if scale < 1 {
		scale = 1
	}
	return d / scale
}

// TestBlockModelMarginMatchesModel is the core factoring property: on
// a trivial one-anchor lattice whose block grid is exactly one window
// (stride = block stride), MarginAt over Responses must equal
// Model.Margin of the concatenated blocks within float reassociation
// (1e-9 relative), across randomized geometries and seeds.
func TestBlockModelMarginMatchesModel(t *testing.T) {
	rng := splitmix64(42)
	ctx := context.Background()
	for trial := 0; trial < 50; trial++ {
		bw := 1 + int(rng.next()%5)
		bh := 1 + int(rng.next()%5)
		blockLen := 4 + int(rng.next()%40)
		m := &Model{W: rng.fill(bw * bh * blockLen), Bias: rng.float()}
		bm, err := NewBlockModel(m, bw, bh, blockLen)
		if err != nil {
			t.Fatal(err)
		}
		// The window's descriptor is its blocks concatenated in
		// row-major position order — identical to the grid layout when
		// the grid is exactly one window.
		desc := rng.fill(bw * bh * blockLen)
		lat := Lattice{NBX: bw, NBY: bh, StepX: 1, StepY: 1, NAX: 1, NAY: 1, BlockStride: 1}
		resp := make([]float64, bw*bh)
		if err := bm.Responses(ctx, 1, desc, lat, resp); err != nil {
			t.Fatal(err)
		}
		got := bm.MarginAt(resp, 1, 0, 0)
		want := m.Margin(desc)
		if rd := relDiff(got, want); rd > 1e-9 {
			t.Fatalf("trial %d (%dx%d blocks of %d): MarginAt = %v, Margin = %v (rel %g)",
				trial, bw, bh, blockLen, got, want, rd)
		}
	}
}

// TestBlockModelLatticeMatchesModel checks every anchor of randomized
// multi-anchor lattices against a descriptor assembled from the same
// grid data, i.e. the exact geometry the pyramid scan uses.
func TestBlockModelLatticeMatchesModel(t *testing.T) {
	rng := splitmix64(7)
	ctx := context.Background()
	for trial := 0; trial < 20; trial++ {
		bw := 1 + int(rng.next()%4)
		bh := 1 + int(rng.next()%4)
		blockLen := 4 + int(rng.next()%20)
		stride := 1 + int(rng.next()%3) // window-relative block stride
		step := 1 + int(rng.next()%3)   // anchor step in cells
		nax := 1 + int(rng.next()%4)
		nay := 1 + int(rng.next()%4)
		nbx := (nax-1)*step + (bw-1)*stride + 1
		nby := (nay-1)*step + (bh-1)*stride + 1
		m := &Model{W: rng.fill(bw * bh * blockLen), Bias: rng.float()}
		bm, err := NewBlockModel(m, bw, bh, blockLen)
		if err != nil {
			t.Fatal(err)
		}
		blocks := rng.fill(nbx * nby * blockLen)
		lat := Lattice{NBX: nbx, NBY: nby, StepX: step, StepY: step,
			NAX: nax, NAY: nay, BlockStride: stride}
		resp := make([]float64, nax*nay*bw*bh)
		if err := bm.Responses(ctx, 1, blocks, lat, resp); err != nil {
			t.Fatal(err)
		}
		desc := make([]float64, 0, bw*bh*blockLen)
		for ay := 0; ay < nay; ay++ {
			for ax := 0; ax < nax; ax++ {
				desc = desc[:0]
				for pby := 0; pby < bh; pby++ {
					cy := ay*step + pby*stride
					for pbx := 0; pbx < bw; pbx++ {
						cx := ax*step + pbx*stride
						desc = append(desc, blocks[(cy*nbx+cx)*blockLen:][:blockLen]...)
					}
				}
				got := bm.MarginAt(resp, nax, ax, ay)
				want := m.Margin(desc)
				if rd := relDiff(got, want); rd > 1e-9 {
					t.Fatalf("trial %d anchor (%d,%d): MarginAt = %v, Margin = %v (rel %g)",
						trial, ax, ay, got, want, rd)
				}
			}
		}
	}
}

// TestBlockModelResponsesParallelBitwiseEqual: response planes are
// bitwise identical at every worker count.
func TestBlockModelResponsesParallelBitwiseEqual(t *testing.T) {
	rng := splitmix64(99)
	ctx := context.Background()
	bw, bh, blockLen := 7, 7, 36
	m := &Model{W: rng.fill(bw * bh * blockLen), Bias: 0.25}
	bm, err := NewBlockModel(m, bw, bh, blockLen)
	if err != nil {
		t.Fatal(err)
	}
	nbx, nby := 20, 14
	lat := Lattice{NBX: nbx, NBY: nby, StepX: 2, StepY: 2,
		NAX: (nbx - bw) / 2, NAY: (nby - bh) / 2, BlockStride: 1}
	blocks := rng.fill(nbx * nby * blockLen)
	ref := make([]float64, lat.NAX*lat.NAY*bw*bh)
	if err := bm.Responses(ctx, 1, blocks, lat, ref); err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 4, 0} {
		got := make([]float64, len(ref))
		if err := bm.Responses(ctx, workers, blocks, lat, got); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			if got[i] != ref[i] {
				t.Fatalf("workers=%d: resp[%d] = %v, want %v", workers, i, got[i], ref[i])
			}
		}
	}
}

func TestBlockModelInitErrors(t *testing.T) {
	m := &Model{W: make([]float64, 36)}
	if _, err := NewBlockModel(m, 2, 2, 10); err == nil {
		t.Fatal("length mismatch accepted")
	}
	if _, err := NewBlockModel(m, 0, 2, 9); err == nil {
		t.Fatal("zero block count accepted")
	}
	if _, err := NewBlockModel(m, 2, 2, 9); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestBlockModelInitReuses(t *testing.T) {
	rng := splitmix64(5)
	var bm BlockModel
	big := &Model{W: rng.fill(4 * 9), Bias: 1}
	if err := bm.Init(big, 2, 2, 9); err != nil {
		t.Fatal(err)
	}
	small := &Model{W: rng.fill(9), Bias: 2}
	if err := bm.Init(small, 1, 1, 9); err != nil {
		t.Fatal(err)
	}
	if bm.Bias != 2 || bm.BW != 1 || bm.BH != 1 {
		t.Fatalf("reused model geometry %dx%d bias %v, want 1x1 bias 2", bm.BW, bm.BH, bm.Bias)
	}
	for i, w := range bm.PosWeights(0) {
		if w != small.W[i] {
			t.Fatalf("reused weights[%d] = %v, want %v", i, w, small.W[i])
		}
	}
}

func TestLatticeValidateRejectsOutOfRange(t *testing.T) {
	m := &Model{W: make([]float64, 2*2*9)}
	bm, err := NewBlockModel(m, 2, 2, 9)
	if err != nil {
		t.Fatal(err)
	}
	blocks := make([]float64, 3*3*9)
	lat := Lattice{NBX: 3, NBY: 3, StepX: 1, StepY: 1, NAX: 3, NAY: 1, BlockStride: 1}
	// NAX=3 reaches block column (3-1)*1 + (2-1)*1 = 3 >= NBX.
	resp := make([]float64, 3*1*4)
	if err := bm.Responses(context.Background(), 1, blocks, lat, resp); err == nil {
		t.Fatal("out-of-range lattice accepted")
	}
	lat.NAX = 2
	resp = resp[:2*1*4]
	if err := bm.Responses(context.Background(), 1, blocks, lat, resp); err != nil {
		t.Fatalf("in-range lattice rejected: %v", err)
	}
	if err := bm.Responses(context.Background(), 1, blocks, lat, resp[:1]); err == nil {
		t.Fatal("short response buffer accepted")
	}
	if err := bm.Responses(context.Background(), 1, blocks[:10], lat, resp); err == nil {
		t.Fatal("short block data accepted")
	}
}
