// Block-response evaluation: the descriptor-free factoring of the
// sliding-window margin the paper's PL datapath uses. A HOG window
// descriptor is the concatenation of its bw x bh normalized blocks, so
//
//	Margin(x) = Bias + sum_p dot(block_p(x), W_p)
//
// where W_p is the slice of W belonging to window-relative block
// position p. Because neighboring windows share normalized blocks, the
// per-block partial responses can be computed over a whole pyramid
// level once and every window's margin collapses to a bias plus bw*bh
// cached reads — no per-window descriptor is ever materialized.
package svm

import (
	"context"
	"fmt"

	"advdet/internal/par"
)

// BlockModel is a trained linear Model reshaped for block-response
// evaluation: per-window-relative-block weight slices plus the bias.
// It is immutable between Init calls and safe for concurrent readers.
type BlockModel struct {
	BW, BH   int // window-relative block grid (blocks per window axis)
	BlockLen int // floats per normalized block vector
	Bias     float64
	w        []float64 // copy of Model.W; position p at w[p*BlockLen:]
}

// NewBlockModel reshapes m for a window of bw x bh blocks of blockLen
// floats each. The HOG descriptor layout is already block-major, so
// the reshape is a partition of W, validated against the model length.
func NewBlockModel(m *Model, bw, bh, blockLen int) (*BlockModel, error) {
	bm := &BlockModel{}
	if err := bm.Init(m, bw, bh, blockLen); err != nil {
		return nil, err
	}
	return bm, nil
}

// Init (re)shapes m into bm, reusing bm's weight buffer when it has
// sufficient capacity so a pooled BlockModel costs no steady-state
// allocations.
func (bm *BlockModel) Init(m *Model, bw, bh, blockLen int) error {
	if bw <= 0 || bh <= 0 || blockLen <= 0 {
		return fmt.Errorf("svm: block model geometry %dx%d blocks of %d floats", bw, bh, blockLen) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if n := bw * bh * blockLen; n != len(m.W) {
		return fmt.Errorf("svm: model has %d weights, want %d (%dx%d blocks of %d floats)", // lint:alloc cold validation error path, runs once per reshape not per window
			len(m.W), n, bw, bh, blockLen)
	}
	bm.BW, bm.BH, bm.BlockLen, bm.Bias = bw, bh, blockLen, m.Bias
	if cap(bm.w) < len(m.W) {
		bm.w = make([]float64, len(m.W))
	}
	bm.w = bm.w[:len(m.W)]
	copy(bm.w, m.W)
	return nil
}

// PosWeights returns the weight slice of window-relative block
// position p (row-major, p = by*BW+bx). The slice aliases the model
// and must not be mutated.
func (bm *BlockModel) PosWeights(p int) []float64 {
	return bm.w[p*bm.BlockLen:][:bm.BlockLen]
}

// Lattice describes the anchor lattice of one pyramid level: the set
// of window positions a scan visits, expressed in cell coordinates
// over the level's normalized block grid.
type Lattice struct {
	NBX, NBY     int // block-grid dimensions (blocks per axis, one per cell)
	StepX, StepY int // anchor step in cells (scan stride / cell size)
	NAX, NAY     int // anchors per axis (window positions of the scan)
	BlockStride  int // window-relative block step in cells (hog Config.BlockStride)
}

// validate checks that every block the response pass will read lies
// inside the grid.
func (l Lattice) validate(bm *BlockModel, blocks, dst int) error {
	if l.NAX <= 0 || l.NAY <= 0 {
		return fmt.Errorf("svm: empty anchor lattice %dx%d", l.NAX, l.NAY) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if l.StepX <= 0 || l.StepY <= 0 || l.BlockStride <= 0 {
		return fmt.Errorf("svm: non-positive lattice steps %+v", l) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	maxCX := (l.NAX-1)*l.StepX + (bm.BW-1)*l.BlockStride
	maxCY := (l.NAY-1)*l.StepY + (bm.BH-1)*l.BlockStride
	if maxCX >= l.NBX || maxCY >= l.NBY {
		return fmt.Errorf("svm: lattice %+v reads block (%d,%d) outside %dx%d grid", // lint:alloc cold validation error path, runs once per reshape not per window
			l, maxCX, maxCY, l.NBX, l.NBY)
	}
	if need := l.NBX * l.NBY * bm.BlockLen; blocks < need {
		return fmt.Errorf("svm: block data holds %d floats, grid needs %d", blocks, need) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if need := l.NAX * l.NAY * bm.BW * bm.BH; dst < need {
		return fmt.Errorf("svm: response buffer holds %d floats, lattice needs %d", dst, need) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	return nil
}

// Responses precomputes the level's response planes: for every anchor
// (ax, ay) of the lattice and every window-relative block position
// p = pby*BW+pbx,
//
//	dst[(ay*NAX+ax)*BW*BH + p] =
//	    dot(block(ax*StepX+pbx*BlockStride, ay*StepY+pby*BlockStride), W_p)
//
// over the flat block-major grid data (hog.BlockGrid.Data layout).
// The BW*BH planes are stored interleaved (anchor-major) so one
// window's partials are contiguous and MarginAt folds them with a
// single linear pass; for a stride of one cell the plane of position p
// is exactly R_p[cellX, cellY]. Anchor rows are fanned out across
// workers goroutines (workers <= 0 means NumCPU); every entry is a
// pure function of the shared read-only inputs, so the result is
// bitwise identical for every worker count. On cancellation dst is
// partial and must be discarded.
//
// lint:hotpath
func (bm *BlockModel) Responses(ctx context.Context, workers int, blocks []float64, lat Lattice, dst []float64) error {
	if err := lat.validate(bm, len(blocks), len(dst)); err != nil {
		return err
	}
	perWin := bm.BW * bm.BH
	return par.ForEach(ctx, workers, lat.NAY, func(ay int) {
		base := ay * lat.NAX * perWin
		for ax := 0; ax < lat.NAX; ax++ {
			out := dst[base+ax*perWin:][:perWin]
			p := 0
			for pby := 0; pby < bm.BH; pby++ {
				cy := ay*lat.StepY + pby*lat.BlockStride
				for pbx := 0; pbx < bm.BW; pbx++ {
					cx := ax*lat.StepX + pbx*lat.BlockStride
					blk := blocks[(cy*lat.NBX+cx)*bm.BlockLen:][:bm.BlockLen]
					w := bm.w[p*bm.BlockLen:][:bm.BlockLen]
					var s float64
					for i, v := range blk {
						s += w[i] * v
					}
					out[p] = s
					p++
				}
			}
		}
	})
}

// MarginAt returns the full window margin at anchor (ax, ay) of a
// NAX-wide lattice from a response buffer filled by Responses: the
// bias plus the window's BW*BH cached partials. The partial sums are
// added block-wise where Model.Margin accumulates one running dot
// product, so margins agree to floating-point reassociation (callers
// should demand ~1e-9 relative), while threshold decisions agree
// everywhere outside that band.
func (bm *BlockModel) MarginAt(resp []float64, nax, ax, ay int) float64 {
	perWin := bm.BW * bm.BH
	row := resp[(ay*nax+ax)*perWin:][:perWin]
	s := bm.Bias
	for _, v := range row {
		s += v
	}
	return s
}
