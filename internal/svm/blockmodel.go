// Block-response evaluation: the descriptor-free factoring of the
// sliding-window margin the paper's PL datapath uses. A HOG window
// descriptor is the concatenation of its bw x bh normalized blocks, so
//
//	Margin(x) = Bias + sum_p dot(block_p(x), W_p)
//
// where W_p is the slice of W belonging to window-relative block
// position p. Because neighboring windows share normalized blocks, the
// per-block partial responses can be computed over a whole pyramid
// level once and every window's margin collapses to a bias plus bw*bh
// cached reads — no per-window descriptor is ever materialized.
package svm

import (
	"context"
	"fmt"
	"math"

	"advdet/internal/par"
)

// BlockModel is a trained linear Model reshaped for block-response
// evaluation: per-window-relative-block weight slices plus the bias.
// It is immutable between Init calls and safe for concurrent readers.
type BlockModel struct {
	BW, BH   int // window-relative block grid (blocks per window axis)
	BlockLen int // floats per normalized block vector
	Bias     float64
	w        []float64 // copy of Model.W; position p at w[p*BlockLen:]

	// Early-exit precompute (see EarlyMarginAt). L2Hys blocks are
	// non-negative with L2 norm <= 1, so position p's partial response
	// dot(block, W_p) is bounded above by the L2 norm of the positive
	// part of W_p. Evaluating positions in descending order of that
	// bound shrinks the remaining-response upper bound as fast as
	// possible per block evaluated.
	order  []int     // block positions, descending positive-part norm
	ordPBX []int     // order[k]'s window-relative block x
	ordPBY []int     // order[k]'s window-relative block y
	tail   []float64 // tail[k]: sound upper bound on sum of dots of order[k:]

	lastModel *Model // Init memo: skip the reshape when nothing changed
}

// earlyExitGuard pads every tail bound so float rounding in the
// partial-sum comparison can never turn a sound reject into an unsound
// one: the Cauchy-Schwarz slack of the bound dwarfs it, and rejects
// only become (immeasurably) more conservative.
const earlyExitGuard = 1e-9

// NewBlockModel reshapes m for a window of bw x bh blocks of blockLen
// floats each. The HOG descriptor layout is already block-major, so
// the reshape is a partition of W, validated against the model length.
func NewBlockModel(m *Model, bw, bh, blockLen int) (*BlockModel, error) {
	bm := &BlockModel{}
	if err := bm.Init(m, bw, bh, blockLen); err != nil {
		return nil, err
	}
	return bm, nil
}

// Init (re)shapes m into bm, reusing bm's weight buffer when it has
// sufficient capacity so a pooled BlockModel costs no steady-state
// allocations, and precomputing the early-exit evaluation order and
// tail bounds. Models are treated as immutable once trained (the
// engine shares them across streams on that contract), so a repeat
// Init against the same *Model and geometry is a no-op.
func (bm *BlockModel) Init(m *Model, bw, bh, blockLen int) error {
	if bw <= 0 || bh <= 0 || blockLen <= 0 {
		return fmt.Errorf("svm: block model geometry %dx%d blocks of %d floats", bw, bh, blockLen) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if n := bw * bh * blockLen; n != len(m.W) {
		return fmt.Errorf("svm: model has %d weights, want %d (%dx%d blocks of %d floats)", // lint:alloc cold validation error path, runs once per reshape not per window
			len(m.W), n, bw, bh, blockLen)
	}
	if bm.lastModel == m && bm.BW == bw && bm.BH == bh && bm.BlockLen == blockLen {
		return nil
	}
	bm.BW, bm.BH, bm.BlockLen, bm.Bias = bw, bh, blockLen, m.Bias
	if cap(bm.w) < len(m.W) {
		bm.w = make([]float64, len(m.W))
	}
	bm.w = bm.w[:len(m.W)]
	copy(bm.w, m.W)
	bm.initEarlyExit()
	bm.lastModel = m
	return nil
}

// growInts returns s resized to n entries, reusing its backing array.
func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// fillPosNorms writes the positive-part L2 norm of every
// window-relative block position's weight slice into dst: the tight
// upper bound on dot(block, W_p) over non-negative blocks of norm
// <= 1, the constraint set L2Hys normalization produces.
func fillPosNorms(dst, w []float64, blockLen int) {
	for p := range dst {
		var ss float64
		for _, x := range w[p*blockLen:][:blockLen] {
			if x > 0 {
				ss += x * x
			}
		}
		dst[p] = math.Sqrt(ss)
	}
}

// orderByDescending fills order with 0..len-1 sorted by descending
// key, ties by ascending index so the order is deterministic.
// Insertion sort: the inputs are tiny (<= bw*bh positions) and the
// sort must not allocate on the pooled-scratch path.
func orderByDescending(order []int, key []float64) {
	for p := range order {
		order[p] = p
	}
	for i := 1; i < len(order); i++ {
		p := order[i]
		j := i
		for j > 0 && key[order[j-1]] < key[p] {
			order[j] = order[j-1]
			j--
		}
		order[j] = p
	}
}

// initEarlyExit precomputes the truncated-block evaluation order: the
// positive-part weight norm of every window-relative block position
// (the tight dot-product bound for non-negative unit-capped blocks),
// positions sorted by descending bound, and the suffix sums that bound
// everything not yet evaluated.
func (bm *BlockModel) initEarlyExit() {
	perWin := bm.BW * bm.BH
	bm.order = growInts(bm.order, perWin)
	bm.ordPBX = growInts(bm.ordPBX, perWin)
	bm.ordPBY = growInts(bm.ordPBY, perWin)
	if cap(bm.tail) < perWin+1 {
		bm.tail = make([]float64, perWin+1)
	}
	bm.tail = bm.tail[:perWin+1]

	// Positive-part norms, temporarily parked in tail[0:perWin].
	posNorm := bm.tail[:perWin]
	fillPosNorms(posNorm, bm.w, bm.BlockLen)
	orderByDescending(bm.order, posNorm)
	for k, p := range bm.order {
		bm.ordPBX[k] = p % bm.BW
		bm.ordPBY[k] = p / bm.BW
	}
	// Suffix bounds over the sorted order: tail[k] bounds the total
	// response of every position not yet evaluated after k blocks.
	// posNorm aliases tail, so gather the sorted norms before the
	// back-to-front suffix pass overwrites them.
	sorted := make([]float64, perWin) // lint:alloc runs once per model reshape (Init memoizes), not per scan
	for k, p := range bm.order {
		sorted[k] = posNorm[p]
	}
	bm.tail[perWin] = earlyExitGuard
	for k := perWin - 1; k >= 0; k-- {
		bm.tail[k] = bm.tail[k+1] + sorted[k]
	}
}

// PosWeights returns the weight slice of window-relative block
// position p (row-major, p = by*BW+bx). The slice aliases the model
// and must not be mutated.
func (bm *BlockModel) PosWeights(p int) []float64 {
	return bm.w[p*bm.BlockLen:][:bm.BlockLen]
}

// Lattice describes the anchor lattice of one pyramid level: the set
// of window positions a scan visits, expressed in cell coordinates
// over the level's normalized block grid.
type Lattice struct {
	NBX, NBY     int // block-grid dimensions (blocks per axis, one per cell)
	StepX, StepY int // anchor step in cells (scan stride / cell size)
	NAX, NAY     int // anchors per axis (window positions of the scan)
	BlockStride  int // window-relative block step in cells (hog Config.BlockStride)
}

// validate checks that every block the response pass will read lies
// inside the grid and that the response buffer covers the lattice.
func (l Lattice) validate(bm *BlockModel, blocks, dst int) error {
	if err := bm.CheckLattice(l, blocks); err != nil {
		return err
	}
	if need := l.NAX * l.NAY * bm.BW * bm.BH; dst < need {
		return fmt.Errorf("svm: response buffer holds %d floats, lattice needs %d", dst, need) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	return nil
}

// CheckLattice verifies once per level that every block any window of
// the lattice will read lies inside a block grid of blocksLen floats,
// so the per-window scorers (EarlyMarginAt, WindowMargin) can skip
// bounds checks on the hot path.
func (bm *BlockModel) CheckLattice(l Lattice, blocksLen int) error {
	return checkLattice(l, bm.BW, bm.BH, bm.BlockLen, blocksLen)
}

// checkLattice is the shared float/quantized lattice validation.
func checkLattice(l Lattice, bw, bh, blockLen, blocksLen int) error {
	if l.NAX <= 0 || l.NAY <= 0 {
		return fmt.Errorf("svm: empty anchor lattice %dx%d", l.NAX, l.NAY) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if l.StepX <= 0 || l.StepY <= 0 || l.BlockStride <= 0 {
		return fmt.Errorf("svm: non-positive lattice steps %+v", l) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	maxCX := (l.NAX-1)*l.StepX + (bw-1)*l.BlockStride
	maxCY := (l.NAY-1)*l.StepY + (bh-1)*l.BlockStride
	if maxCX >= l.NBX || maxCY >= l.NBY {
		return fmt.Errorf("svm: lattice %+v reads block (%d,%d) outside %dx%d grid", // lint:alloc cold validation error path, runs once per reshape not per window
			l, maxCX, maxCY, l.NBX, l.NBY)
	}
	if need := l.NBX * l.NBY * blockLen; blocksLen < need {
		return fmt.Errorf("svm: block data holds %d values, grid needs %d", blocksLen, need) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	return nil
}

// Responses precomputes the level's response planes: for every anchor
// (ax, ay) of the lattice and every window-relative block position
// p = pby*BW+pbx,
//
//	dst[(ay*NAX+ax)*BW*BH + p] =
//	    dot(block(ax*StepX+pbx*BlockStride, ay*StepY+pby*BlockStride), W_p)
//
// over the flat block-major grid data (hog.BlockGrid.Data layout).
// The BW*BH planes are stored interleaved (anchor-major) so one
// window's partials are contiguous and MarginAt folds them with a
// single linear pass; for a stride of one cell the plane of position p
// is exactly R_p[cellX, cellY]. Anchor rows are fanned out across
// workers goroutines (workers <= 0 means NumCPU); every entry is a
// pure function of the shared read-only inputs, so the result is
// bitwise identical for every worker count. On cancellation dst is
// partial and must be discarded.
//
// lint:hotpath
func (bm *BlockModel) Responses(ctx context.Context, workers int, blocks []float64, lat Lattice, dst []float64) error {
	if err := lat.validate(bm, len(blocks), len(dst)); err != nil {
		return err
	}
	perWin := bm.BW * bm.BH
	return par.ForEach(ctx, workers, lat.NAY, func(ay int) {
		base := ay * lat.NAX * perWin
		for ax := 0; ax < lat.NAX; ax++ {
			out := dst[base+ax*perWin:][:perWin]
			p := 0
			for pby := 0; pby < bm.BH; pby++ {
				cy := ay*lat.StepY + pby*lat.BlockStride
				for pbx := 0; pbx < bm.BW; pbx++ {
					cx := ax*lat.StepX + pbx*lat.BlockStride
					blk := blocks[(cy*lat.NBX+cx)*bm.BlockLen:][:bm.BlockLen]
					w := bm.w[p*bm.BlockLen:][:bm.BlockLen]
					var s float64
					for i, v := range blk {
						s += w[i] * v
					}
					out[p] = s
					p++
				}
			}
		}
	})
}

// ResponsesDirty refreshes only the anchors marked in dirty (an
// NAX*NAY row-major mask) of a response plane previously filled by
// Responses over the same lattice, leaving every other anchor's
// partials untouched. An anchor's partials are pure functions of its
// own blocks, computed here with the identical inner loop and
// accumulation order, so a refreshed plane is bitwise identical to a
// full recompute whenever the caller guarantees that clean anchors'
// blocks are unchanged — the temporal scan cache derives that mask by
// dilating dirty blocks over the window span. Fanned out and
// deterministic exactly like Responses.
//
// lint:hotpath
func (bm *BlockModel) ResponsesDirty(ctx context.Context, workers int, blocks []float64, lat Lattice, dst []float64, dirty []bool) error {
	if err := lat.validate(bm, len(blocks), len(dst)); err != nil {
		return err
	}
	if len(dirty) != lat.NAX*lat.NAY {
		return fmt.Errorf("svm: dirty mask holds %d anchors, lattice has %dx%d", len(dirty), lat.NAX, lat.NAY) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	perWin := bm.BW * bm.BH
	return par.ForEach(ctx, workers, lat.NAY, func(ay int) {
		base := ay * lat.NAX * perWin
		drow := dirty[ay*lat.NAX : (ay+1)*lat.NAX]
		for ax := 0; ax < lat.NAX; ax++ {
			if !drow[ax] {
				continue
			}
			out := dst[base+ax*perWin:][:perWin]
			p := 0
			for pby := 0; pby < bm.BH; pby++ {
				cy := ay*lat.StepY + pby*lat.BlockStride
				for pbx := 0; pbx < bm.BW; pbx++ {
					cx := ax*lat.StepX + pbx*lat.BlockStride
					blk := blocks[(cy*lat.NBX+cx)*bm.BlockLen:][:bm.BlockLen]
					w := bm.w[p*bm.BlockLen:][:bm.BlockLen]
					var s float64
					for i, v := range blk {
						s += w[i] * v
					}
					out[p] = s
					p++
				}
			}
		}
	})
}

// MarginAt returns the full window margin at anchor (ax, ay) of a
// NAX-wide lattice from a response buffer filled by Responses: the
// bias plus the window's BW*BH cached partials. The partial sums are
// added block-wise where Model.Margin accumulates one running dot
// product, so margins agree to floating-point reassociation (callers
// should demand ~1e-9 relative), while threshold decisions agree
// everywhere outside that band.
func (bm *BlockModel) MarginAt(resp []float64, nax, ax, ay int) float64 {
	perWin := bm.BW * bm.BH
	row := resp[(ay*nax+ax)*perWin:][:perWin]
	s := bm.Bias
	for _, v := range row {
		s += v
	}
	return s
}

// WindowMargin computes the full margin of the window at anchor
// (ax, ay) directly from the level block grid, without a precomputed
// response plane: each partial response uses the same inner dot loop
// as Responses and the partials are summed in canonical position
// order, so the result is bitwise identical to Responses + MarginAt.
// The caller must have validated lat with CheckLattice.
//
// lint:hotpath
func (bm *BlockModel) WindowMargin(blocks []float64, lat Lattice, ax, ay int) float64 {
	s := bm.Bias
	p := 0
	for pby := 0; pby < bm.BH; pby++ {
		cy := ay*lat.StepY + pby*lat.BlockStride
		for pbx := 0; pbx < bm.BW; pbx++ {
			cx := ax*lat.StepX + pbx*lat.BlockStride
			blk := blocks[(cy*lat.NBX+cx)*bm.BlockLen:][:bm.BlockLen]
			w := bm.w[p*bm.BlockLen:][:bm.BlockLen]
			var d float64
			for i, v := range blk {
				d += w[i] * v
			}
			s += d
			p++
		}
	}
	return s
}

// EarlyMarginAt scores the window at anchor (ax, ay) with the
// truncated-block partial-margin early exit: block positions are
// evaluated in the precomputed descending-bound order, and as soon as
// the accumulated partial response plus the sound upper bound on
// everything remaining cannot exceed thresh, the window is rejected
// without touching its remaining blocks.
//
// The reject is provable — L2Hys blocks are non-negative with norm
// <= 1, so no evaluation order can lift the margin past the bound —
// and a window that survives all positions re-sums its stashed
// partials in canonical position order, making the returned margin
// bitwise identical to the full WindowMargin / Responses + MarginAt
// value. Detection sets therefore match the full sweep byte for byte.
//
// partial is caller scratch of at least BW*BH floats (one slot per
// block position). The second return is true when the window was
// rejected early; the margin is then meaningless.
//
// lint:hotpath
func (bm *BlockModel) EarlyMarginAt(blocks []float64, lat Lattice, ax, ay int, thresh float64, partial []float64) (float64, bool) {
	rel := thresh - bm.Bias // bail when partial responses cannot exceed this
	acc := 0.0
	for k, p := range bm.order {
		cy := ay*lat.StepY + bm.ordPBY[k]*lat.BlockStride
		cx := ax*lat.StepX + bm.ordPBX[k]*lat.BlockStride
		blk := blocks[(cy*lat.NBX+cx)*bm.BlockLen:][:bm.BlockLen]
		w := bm.w[p*bm.BlockLen:][:bm.BlockLen]
		var d float64
		for i, v := range blk {
			d += w[i] * v
		}
		partial[p] = d
		acc += d
		if acc+bm.tail[k+1] <= rel {
			return 0, true
		}
	}
	// Canonical re-sum: same partials, index order — bitwise equal to
	// MarginAt over a precomputed plane.
	m := bm.Bias
	for _, d := range partial[:len(bm.order)] {
		m += d
	}
	return m, false
}
