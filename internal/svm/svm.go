// Package svm implements L2-regularized linear support vector machine
// training by dual coordinate descent — the algorithm behind
// LibLINEAR, which the paper uses to produce its day, dusk and
// combined models (Fig. 1) — plus the dot-product classifier the
// hardware pipeline evaluates against BRAM-resident model data.
//
// lint:detpath
package svm

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
)

// Loss selects the hinge variant.
type Loss int

const (
	// L1Loss is the standard hinge loss max(0, 1-y w·x) (C-SVC dual
	// upper bounded by C).
	L1Loss Loss = iota
	// L2Loss is the squared hinge loss, LibLINEAR's default solver.
	L2Loss
)

// Problem is a dense training set. Y values must be +1 or -1.
type Problem struct {
	X [][]float64
	Y []float64
}

// Options configures training.
type Options struct {
	C       float64 // regularization trade-off (default 1)
	Loss    Loss    // hinge variant (default L2Loss)
	Eps     float64 // stopping tolerance on projected gradient (default 0.1)
	MaxIter int     // outer iteration cap (default 1000)
	Seed    uint64  // permutation seed (default 1)
	// BiasScale appends a constant feature of this value so the bias
	// is learned inside w (LibLINEAR's -B). Zero disables the bias.
	BiasScale float64
}

// DefaultOptions mirrors LibLINEAR defaults with a learned bias.
func DefaultOptions() Options {
	return Options{C: 1, Loss: L2Loss, Eps: 0.1, MaxIter: 1000, Seed: 1, BiasScale: 1}
}

// Model is a trained linear classifier: score(x) = W·x + Bias.
type Model struct {
	W         []float64
	Bias      float64
	BiasScale float64
	// Iters records the outer iterations the solver used; exposed so
	// benchmarks can report convergence behaviour.
	Iters int
}

// Margin returns the signed decision value W·x + Bias.
func (m *Model) Margin(x []float64) float64 {
	if len(x) != len(m.W) {
		// lint:invariant feature length is fixed by the trained model; mismatch is a wiring bug
		panic(fmt.Sprintf("svm: feature length %d, model expects %d", len(x), len(m.W))) // lint:alloc cold panic path; fires only on an invariant violation
	}
	s := m.Bias
	for i, w := range m.W {
		s += w * x[i]
	}
	return s
}

// Predict returns +1 or -1 for the feature vector x.
func (m *Model) Predict(x []float64) float64 {
	if m.Margin(x) >= 0 {
		return 1
	}
	return -1
}

// Train solves the dual problem
//
//	min_a  1/2 a'Qa - e'a   s.t. 0 <= a_i <= U
//
// with Q_ij = y_i y_j x_i·x_j (+ D_ii), by coordinate descent
// (Hsieh et al., ICML 2008 — the LibLINEAR solver), maintaining
// w = sum_i a_i y_i x_i for O(nnz) coordinate updates.
func Train(p Problem, o Options) (*Model, error) {
	n := len(p.X)
	if n == 0 {
		return nil, errors.New("svm: empty training set")
	}
	if len(p.Y) != n {
		return nil, fmt.Errorf("svm: %d samples but %d labels", n, len(p.Y))
	}
	dim := len(p.X[0])
	for i, x := range p.X {
		if len(x) != dim {
			return nil, fmt.Errorf("svm: sample %d has %d features, want %d", i, len(x), dim)
		}
	}
	hasPos, hasNeg := false, false
	for i, y := range p.Y {
		if y != 1 && y != -1 {
			return nil, fmt.Errorf("svm: label %v at %d (want +1/-1)", y, i)
		}
		if y > 0 {
			hasPos = true
		} else {
			hasNeg = true
		}
	}
	if !hasPos || !hasNeg {
		return nil, errors.New("svm: training set needs both classes")
	}
	if o.C <= 0 {
		return nil, fmt.Errorf("svm: C must be positive, got %v", o.C)
	}
	if o.Eps <= 0 {
		o.Eps = 0.1
	}
	if o.MaxIter <= 0 {
		o.MaxIter = 1000
	}
	if o.Seed == 0 {
		o.Seed = 1
	}

	wDim := dim
	if o.BiasScale > 0 {
		wDim++
	}

	var diag, upper float64
	switch o.Loss {
	case L1Loss:
		diag, upper = 0, o.C
	case L2Loss:
		diag, upper = 1/(2*o.C), math.Inf(1)
	default:
		return nil, fmt.Errorf("svm: unknown loss %d", o.Loss)
	}

	// Precompute Q̄_ii = x_i·x_i (+ bias^2) + D_ii.
	qd := make([]float64, n)
	for i, x := range p.X {
		var ss float64
		for _, v := range x {
			ss += v * v
		}
		if o.BiasScale > 0 {
			ss += o.BiasScale * o.BiasScale
		}
		qd[i] = ss + diag
	}

	alpha := make([]float64, n)
	w := make([]float64, wDim)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}

	rngState := o.Seed
	next := func() uint64 {
		rngState += 0x9e3779b97f4a7c15
		z := rngState
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}

	dot := func(i int) float64 {
		x := p.X[i]
		s := 0.0
		for j, v := range x {
			s += w[j] * v
		}
		if o.BiasScale > 0 {
			s += w[dim] * o.BiasScale
		}
		return s
	}
	axpy := func(i int, a float64) {
		x := p.X[i]
		for j, v := range x {
			w[j] += a * v
		}
		if o.BiasScale > 0 {
			w[dim] += a * o.BiasScale
		}
	}

	iters := 0
	for iter := 0; iter < o.MaxIter; iter++ {
		iters = iter + 1
		// Fisher-Yates permutation for the sweep order.
		for i := n - 1; i > 0; i-- {
			j := int(next() % uint64(i+1))
			idx[i], idx[j] = idx[j], idx[i]
		}
		maxPG := 0.0
		for _, i := range idx {
			if qd[i] == 0 {
				continue // zero vector with L1 loss: gradient constant
			}
			yi := p.Y[i]
			g := yi*dot(i) - 1 + diag*alpha[i]

			// Projected gradient for the box constraint.
			pg := g
			if alpha[i] == 0 {
				if g > 0 {
					pg = 0
				}
			} else if alpha[i] >= upper {
				if g < 0 {
					pg = 0
				}
			}
			if a := math.Abs(pg); a > maxPG {
				maxPG = a
			}
			if pg == 0 {
				continue
			}
			old := alpha[i]
			na := old - g/qd[i]
			if na < 0 {
				na = 0
			} else if na > upper {
				na = upper
			}
			alpha[i] = na
			if d := (na - old) * yi; d != 0 {
				axpy(i, d)
			}
		}
		if maxPG < o.Eps {
			break
		}
	}

	m := &Model{BiasScale: o.BiasScale, Iters: iters}
	if o.BiasScale > 0 {
		m.W = w[:dim]
		m.Bias = w[dim] * o.BiasScale
	} else {
		m.W = w
	}
	return m, nil
}

// modelFile is the serialized form; gob keeps us stdlib-only while
// remaining versionable through the struct tag surface.
type modelFile struct {
	W         []float64
	Bias      float64
	BiasScale float64
}

// Encode writes the model to w.
func (m *Model) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(modelFile{m.W, m.Bias, m.BiasScale})
}

// Decode reads a model from r.
func Decode(r io.Reader) (*Model, error) {
	var f modelFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("svm: decode: %w", err)
	}
	return &Model{W: f.W, Bias: f.Bias, BiasScale: f.BiasScale}, nil
}

// Save writes the model to the named file.
func (m *Model) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := m.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a model from the named file.
func Load(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// CrossValidate runs k-fold cross-validation: the problem is split
// into k contiguous folds (callers should pre-shuffle if ordering is
// meaningful), a model is trained on each k-1 complement and evaluated
// on the held-out fold, and the mean held-out accuracy is returned.
func CrossValidate(p Problem, o Options, k int) (float64, error) {
	n := len(p.X)
	if k < 2 || k > n {
		return 0, fmt.Errorf("svm: cross-validation folds %d invalid for %d samples", k, n)
	}
	var correct, total int
	for fold := 0; fold < k; fold++ {
		lo := fold * n / k
		hi := (fold + 1) * n / k
		var train Problem
		for i := 0; i < n; i++ {
			if i >= lo && i < hi {
				continue
			}
			train.X = append(train.X, p.X[i])
			train.Y = append(train.Y, p.Y[i])
		}
		m, err := Train(train, o)
		if err != nil {
			return 0, fmt.Errorf("svm: fold %d: %w", fold, err)
		}
		for i := lo; i < hi; i++ {
			if m.Predict(p.X[i]) == p.Y[i] {
				correct++
			}
			total++
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("svm: empty evaluation folds")
	}
	return float64(correct) / float64(total), nil
}

// WeightBytes returns the storage footprint of the model as the
// hardware stores it (one 32-bit word per weight plus the bias), used
// by the FPGA resource model to size the model BRAMs of Fig. 2.
func (m *Model) WeightBytes() int { return 4 * (len(m.W) + 1) }
