// Quantized block-response evaluation: the int16/int32 rendition of
// blockmodel.go, shaped like the PL datapath actually computes — BRAM
// planes of Q1.14 normalized blocks, int16 weights, DSP48-style wide
// accumulation with one convergent rounding, and int32 Q15.16 margins
// with saturating adds (internal/fixed kernels).
//
// The float path stays the equivalence oracle. Quantization error is
// bounded analytically at Init time: every decision whose quantized
// margin clears the threshold by more than that bound is provably the
// float decision, and the rare window inside the guard band is
// re-scored in float. The detection *box set* of the quantized path is
// therefore structurally identical to the float path on every input;
// only accepted scores may differ, by at most ErrBound.
package svm

import (
	"fmt"
	"math"

	"advdet/internal/fixed"
	"advdet/internal/par"

	"context"
)

// QuantDecision classifies one window's quantized margin.
type QuantDecision int

const (
	// QuantReject: the float margin provably misses the threshold.
	QuantReject QuantDecision = iota
	// QuantAccept: the float margin provably clears the threshold;
	// the returned score is the dequantized margin (within ErrBound
	// of the float score).
	QuantAccept
	// QuantBorderline: the quantized margin is within the error bound
	// of the threshold; the caller must re-score the window in float.
	QuantBorderline
)

// QuantBlockModel is a trained linear model quantized for int16/int32
// block-response evaluation, plus the guard-band thresholds that keep
// its decisions consistent with the float path. Immutable between
// Init calls and safe for concurrent readers.
type QuantBlockModel struct {
	BW, BH   int
	BlockLen int

	shiftW  uint    // weight scale: wq = round(w * 2^shiftW)
	rescale uint    // per-block accumulator shift down to Q15.16
	wq      []int16 // quantized weights, position-major like BlockModel.w

	qbias       int32   // bias in Q15.16 response units
	qlow, qhigh int32   // guard band around the scan threshold
	errBound    float64 // E: |float margin - dequantized margin| <= E

	order  []int   // early-exit evaluation order (descending bound)
	ordPBX []int   // order[k]'s window-relative block x
	ordPBY []int   // order[k]'s window-relative block y
	qbail  []int32 // bail when acc <= qbail[k+1] after k+1 blocks

	lastModel  *Model // Init memo (models are immutable once trained)
	lastThresh float64
}

// Init quantizes m for a bw x bh window of blockLen-float blocks
// scanned at the given detection threshold. It fails when the model
// weights are too large for a sound int16 quantization (the pipeline
// then falls back to the float path). Like BlockModel.Init, buffers
// are reused and a repeat Init against the same model, geometry and
// threshold is a no-op.
func (qm *QuantBlockModel) Init(m *Model, bw, bh, blockLen int, thresh float64) error {
	if bw <= 0 || bh <= 0 || blockLen <= 0 {
		return fmt.Errorf("svm: quant block model geometry %dx%d blocks of %d values", bw, bh, blockLen) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if n := bw * bh * blockLen; n != len(m.W) {
		return fmt.Errorf("svm: model has %d weights, want %d (%dx%d blocks of %d values)", // lint:alloc cold validation error path, runs once per reshape not per window
			len(m.W), n, bw, bh, blockLen)
	}
	if qm.lastModel == m && qm.BW == bw && qm.BH == bh && qm.BlockLen == blockLen && qm.lastThresh == thresh {
		return nil
	}
	qm.lastModel = nil // invalidate the memo until Init completes
	qm.BW, qm.BH, qm.BlockLen = bw, bh, blockLen

	// Power-of-two weight scale: as many fractional bits as fit the
	// largest weight into int16. The per-block product accumulator is
	// then Q at 2^(shiftW + BlockFracBits), rescaled once to Q15.16 —
	// which needs shiftW >= RespFracBits - BlockFracBits.
	var maxAbs float64
	for _, w := range m.W {
		maxAbs = math.Max(maxAbs, math.Abs(w))
	}
	const minShift = fixed.RespFracBits - fixed.BlockFracBits
	shiftW := uint(minShift)
	if maxAbs*float64(int64(1)<<shiftW) > math.MaxInt16 {
		return fmt.Errorf("svm: max |weight| %g too large for int16 quantization", maxAbs) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	for shiftW < 24 && maxAbs*float64(int64(1)<<(shiftW+1)) <= math.MaxInt16 {
		shiftW++
	}
	qm.shiftW = shiftW
	qm.rescale = shiftW - minShift

	if cap(qm.wq) < len(m.W) {
		qm.wq = make([]int16, len(m.W))
	}
	qm.wq = qm.wq[:len(m.W)]
	wScale := float64(int64(1) << shiftW)
	for i, w := range m.W {
		qm.wq[i] = int16(math.Round(w * wScale)) // in range by shiftW construction
	}

	// Analytic error bound E on |float margin - dequantized quantized
	// margin|, per window:
	//
	//   sum_p [ eW * sum_i b_i  +  eB * sum_i |w^_i|  +  eR ]  +  eR
	//
	// where eW = 0.5/2^shiftW (weight rounding, scaled by the block
	// values it multiplies: sum_i b_i <= sqrt(blockLen) for
	// non-negative blocks of norm <= 1), eB = 0.5/2^BlockFracBits
	// (block-plane rounding, scaled by the dequantized weight mass
	// |w^_i| it meets), eR = 0.5/2^RespFracBits (one convergent
	// rounding per block rescale, one for the bias). Saturation never
	// fires inside the bound's regime — margins are a few units, the
	// int32 Q15.16 range is +/-32768 — so it only ever clamps values
	// already far outside the guard band.
	eW := 0.5 / wScale
	eB := 0.5 / float64(int64(1)<<fixed.BlockFracBits)
	eR := 0.5 / float64(int64(1)<<fixed.RespFracBits)
	sumB := math.Sqrt(float64(blockLen)) * (1 + 1e-12)
	perWin := bw * bh
	E := eR + 1e-9 // bias rounding + float slack for this computation
	for p := 0; p < perWin; p++ {
		var sumAbsW float64
		for _, wq := range qm.wq[p*blockLen:][:blockLen] {
			sumAbsW += math.Abs(float64(wq))
		}
		E += eW*sumB + (sumAbsW/wScale)*eB + eR
	}
	qm.errBound = E

	const respScale = float64(int64(1) << fixed.RespFracBits)
	qm.qbias = fixed.SatI32(int64(math.Round(m.Bias * respScale)))
	qm.qlow = fixed.SatI32(int64(math.Floor((thresh - E) * respScale)))
	qm.qhigh = fixed.SatI32(int64(math.Ceil((thresh + E) * respScale)))

	// Early-exit order and integer bail thresholds. The tail bound is
	// the float positive-part-norm suffix (the bound on every true
	// partial response not yet evaluated) plus E (covering the
	// quantization error of everything already evaluated) plus two
	// LSBs of slack for the bias and threshold roundings — so a bail
	// implies the float margin provably misses the threshold, and the
	// quantized early exit can never reject a window the float path
	// would accept.
	qm.order = growInts(qm.order, perWin)
	qm.ordPBX = growInts(qm.ordPBX, perWin)
	qm.ordPBY = growInts(qm.ordPBY, perWin)
	if cap(qm.qbail) < perWin+1 {
		qm.qbail = make([]int32, perWin+1)
	}
	qm.qbail = qm.qbail[:perWin+1]

	posNorm := make([]float64, perWin) // lint:alloc runs once per model reshape (Init memoizes), not per scan
	fillPosNorms(posNorm, m.W, blockLen)
	orderByDescending(qm.order, posNorm)
	for k, p := range qm.order {
		qm.ordPBX[k] = p % bw
		qm.ordPBY[k] = p / bw
	}
	tailF := 0.0
	for k := perWin; k >= 0; k-- {
		if k < perWin {
			tailF += posNorm[qm.order[k]]
		}
		qtail := int64(math.Ceil((tailF+E)*respScale)) + 2
		qm.qbail[k] = fixed.SatI32(int64(qm.qlow) - int64(qm.qbias) - qtail)
	}

	qm.lastModel, qm.lastThresh = m, thresh
	return nil
}

// ErrBound returns E, the proven bound on |float margin − dequantized
// quantized margin| for any window — the score epsilon of the
// bounded-divergence gate.
func (qm *QuantBlockModel) ErrBound() float64 { return qm.errBound }

// CheckLattice verifies once per level that every block any window of
// the lattice will read lies inside a quantized block plane of
// qblocksLen values.
func (qm *QuantBlockModel) CheckLattice(l Lattice, qblocksLen int) error {
	return checkLattice(l, qm.BW, qm.BH, qm.BlockLen, qblocksLen)
}

// decide classifies a full quantized margin against the guard band.
func (qm *QuantBlockModel) decide(qmargin int32) (float64, QuantDecision) {
	switch {
	case qmargin < qm.qlow:
		return 0, QuantReject
	case qmargin > qm.qhigh:
		return float64(qmargin) / float64(int64(1)<<fixed.RespFracBits), QuantAccept
	}
	return 0, QuantBorderline
}

// ScoreAt evaluates the window at anchor (ax, ay) on the quantized
// block plane. With early set, the partial-margin early exit bails as
// soon as the integer partial sum plus the sound remaining bound
// cannot reach the guard band's lower edge. The caller must have
// validated lat with CheckLattice, and must re-score QuantBorderline
// windows on the float path.
//
// lint:hotpath
func (qm *QuantBlockModel) ScoreAt(qblocks []int16, lat Lattice, ax, ay int, early bool) (float64, QuantDecision) {
	var acc int32
	for k, p := range qm.order {
		cy := ay*lat.StepY + qm.ordPBY[k]*lat.BlockStride
		cx := ax*lat.StepX + qm.ordPBX[k]*lat.BlockStride
		blk := qblocks[(cy*lat.NBX+cx)*qm.BlockLen:][:qm.BlockLen]
		wq := qm.wq[p*qm.BlockLen:][:qm.BlockLen]
		r := fixed.SatI32(fixed.RoundShiftI64(fixed.DotI16(wq, blk), qm.rescale))
		acc = fixed.AddSatI32(acc, r)
		if early && acc <= qm.qbail[k+1] {
			return 0, QuantReject
		}
	}
	return qm.decide(fixed.AddSatI32(qm.qbias, acc))
}

// Responses precomputes the level's int32 quantized response plane,
// the integer analogue of BlockModel.Responses over the same
// anchor-major layout: one Q15.16 partial response per anchor and
// window-relative block position, DecideAt then folds a window's
// BW*BH contiguous partials. Used when the early exit is disabled;
// bitwise identical for every worker count.
//
// lint:hotpath
func (qm *QuantBlockModel) Responses(ctx context.Context, workers int, qblocks []int16, lat Lattice, dst []int32) error {
	if err := qm.CheckLattice(lat, len(qblocks)); err != nil {
		return err
	}
	perWin := qm.BW * qm.BH
	if need := lat.NAX * lat.NAY * perWin; len(dst) < need {
		return fmt.Errorf("svm: quant response buffer holds %d values, lattice needs %d", len(dst), need) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	return par.ForEach(ctx, workers, lat.NAY, func(ay int) {
		base := ay * lat.NAX * perWin
		for ax := 0; ax < lat.NAX; ax++ {
			out := dst[base+ax*perWin:][:perWin]
			p := 0
			for pby := 0; pby < qm.BH; pby++ {
				cy := ay*lat.StepY + pby*lat.BlockStride
				for pbx := 0; pbx < qm.BW; pbx++ {
					cx := ax*lat.StepX + pbx*lat.BlockStride
					blk := qblocks[(cy*lat.NBX+cx)*qm.BlockLen:][:qm.BlockLen]
					wq := qm.wq[p*qm.BlockLen:][:qm.BlockLen]
					out[p] = fixed.SatI32(fixed.RoundShiftI64(fixed.DotI16(wq, blk), qm.rescale))
					p++
				}
			}
		}
	})
}

// ResponsesDirty refreshes only the anchors marked in dirty (an
// NAX*NAY row-major mask) of a quantized response plane previously
// filled by Responses over the same lattice — the int32 analogue of
// BlockModel.ResponsesDirty, with the identical per-anchor integer
// datapath, so a refreshed plane is bitwise identical to a full
// recompute whenever clean anchors' quantized blocks are unchanged.
//
// lint:hotpath
func (qm *QuantBlockModel) ResponsesDirty(ctx context.Context, workers int, qblocks []int16, lat Lattice, dst []int32, dirty []bool) error {
	if err := qm.CheckLattice(lat, len(qblocks)); err != nil {
		return err
	}
	perWin := qm.BW * qm.BH
	if need := lat.NAX * lat.NAY * perWin; len(dst) < need {
		return fmt.Errorf("svm: quant response buffer holds %d values, lattice needs %d", len(dst), need) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	if len(dirty) != lat.NAX*lat.NAY {
		return fmt.Errorf("svm: dirty mask holds %d anchors, lattice has %dx%d", len(dirty), lat.NAX, lat.NAY) // lint:alloc cold validation error path, runs once per reshape not per window
	}
	return par.ForEach(ctx, workers, lat.NAY, func(ay int) {
		base := ay * lat.NAX * perWin
		drow := dirty[ay*lat.NAX : (ay+1)*lat.NAX]
		for ax := 0; ax < lat.NAX; ax++ {
			if !drow[ax] {
				continue
			}
			out := dst[base+ax*perWin:][:perWin]
			p := 0
			for pby := 0; pby < qm.BH; pby++ {
				cy := ay*lat.StepY + pby*lat.BlockStride
				for pbx := 0; pbx < qm.BW; pbx++ {
					cx := ax*lat.StepX + pbx*lat.BlockStride
					blk := qblocks[(cy*lat.NBX+cx)*qm.BlockLen:][:qm.BlockLen]
					wq := qm.wq[p*qm.BlockLen:][:qm.BlockLen]
					out[p] = fixed.SatI32(fixed.RoundShiftI64(fixed.DotI16(wq, blk), qm.rescale))
					p++
				}
			}
		}
	})
}

// DecideAt classifies the window at anchor (ax, ay) of a NAX-wide
// lattice from a response plane filled by Responses. Saturating adds
// are order-independent here for the same reason MarginAt tolerates
// reassociation: margins live orders of magnitude inside the int32
// Q15.16 range.
func (qm *QuantBlockModel) DecideAt(qresp []int32, nax, ax, ay int) (float64, QuantDecision) {
	perWin := qm.BW * qm.BH
	row := qresp[(ay*nax+ax)*perWin:][:perWin]
	acc := qm.qbias
	for _, r := range row {
		acc = fixed.AddSatI32(acc, r)
	}
	return qm.decide(acc)
}
