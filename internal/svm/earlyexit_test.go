package svm

import (
	"context"
	"math"
	"testing"

	"advdet/internal/fixed"
)

// randLattice draws a random but consistent lattice geometry plus a
// synthetic normalized block plane: non-negative blocks of L2 norm
// <= 1, the constraint set l2hys produces and the early-exit bound
// leans on.
func randLattice(rng *splitmix64, bw, bh, blockLen int) (Lattice, []float64) {
	lat := Lattice{
		StepX: 1 + int(rng.next()%3), StepY: 1 + int(rng.next()%3),
		NAX: 1 + int(rng.next()%6), NAY: 1 + int(rng.next()%6),
		BlockStride: 1 + int(rng.next()%2),
	}
	lat.NBX = (lat.NAX-1)*lat.StepX + (bw-1)*lat.BlockStride + 1 + int(rng.next()%3)
	lat.NBY = (lat.NAY-1)*lat.StepY + (bh-1)*lat.BlockStride + 1 + int(rng.next()%3)
	blocks := make([]float64, lat.NBX*lat.NBY*blockLen)
	for b := 0; b < lat.NBX*lat.NBY; b++ {
		blk := blocks[b*blockLen:][:blockLen]
		var ss float64
		for i := range blk {
			blk[i] = math.Abs(rng.float())
			ss += blk[i] * blk[i]
		}
		inv := 1 / math.Sqrt(ss+1e-10)
		for i := range blk {
			blk[i] *= inv
		}
	}
	return lat, blocks
}

// TestEarlyMarginMatchesWindowMargin is the early-exit soundness and
// exactness property over randomized models, lattices and thresholds:
// a rejected window's true margin never exceeds the threshold, and a
// surviving window's margin is bitwise identical to the full
// WindowMargin (and to Responses + MarginAt).
func TestEarlyMarginMatchesWindowMargin(t *testing.T) {
	rng := splitmix64(77)
	ctx := context.Background()
	for trial := 0; trial < 60; trial++ {
		bw := 1 + int(rng.next()%4)
		bh := 1 + int(rng.next()%4)
		blockLen := 4 + int(rng.next()%21)
		m := &Model{W: rng.fill(bw * bh * blockLen), Bias: rng.float()}
		bm, err := NewBlockModel(m, bw, bh, blockLen)
		if err != nil {
			t.Fatal(err)
		}
		lat, blocks := randLattice(&rng, bw, bh, blockLen)

		resp := make([]float64, lat.NAX*lat.NAY*bw*bh)
		if err := bm.Responses(ctx, 1, blocks, lat, resp); err != nil {
			t.Fatal(err)
		}
		// Threshold near a real margin so both branches are exercised.
		thresh := bm.MarginAt(resp, lat.NAX,
			int(rng.next()%uint64(lat.NAX)), int(rng.next()%uint64(lat.NAY))) +
			0.2*rng.float()

		partial := make([]float64, bw*bh)
		for ay := 0; ay < lat.NAY; ay++ {
			for ax := 0; ax < lat.NAX; ax++ {
				full := bm.WindowMargin(blocks, lat, ax, ay)
				if planed := bm.MarginAt(resp, lat.NAX, ax, ay); full != planed {
					t.Fatalf("trial %d (%d,%d): WindowMargin %v != MarginAt %v", trial, ax, ay, full, planed)
				}
				em, rejected := bm.EarlyMarginAt(blocks, lat, ax, ay, thresh, partial)
				if rejected {
					if full > thresh {
						t.Fatalf("trial %d (%d,%d): early exit rejected margin %v > thresh %v (unsound bound)",
							trial, ax, ay, full, thresh)
					}
					continue
				}
				if em != full {
					t.Fatalf("trial %d (%d,%d): early margin %v != full margin %v (not bitwise identical)",
						trial, ax, ay, em, full)
				}
			}
		}
	}
}

// TestQuantDecisionsMatchFloat is the bounded-divergence property at
// the svm layer: over randomized models, planes and thresholds, the
// quantized decision — with borderline windows resolved by the float
// oracle, exactly as the pipeline resolves them — must equal the
// float decision for every window, early exit on or off, on-demand or
// precomputed plane; and every accepted quantized score must sit
// within ErrBound of the float margin.
func TestQuantDecisionsMatchFloat(t *testing.T) {
	rng := splitmix64(123)
	ctx := context.Background()
	borderlines, windows := 0, 0
	for trial := 0; trial < 60; trial++ {
		bw := 1 + int(rng.next()%4)
		bh := 1 + int(rng.next()%4)
		blockLen := 4 + int(rng.next()%21)
		m := &Model{W: rng.fill(bw * bh * blockLen), Bias: rng.float()}
		bm, err := NewBlockModel(m, bw, bh, blockLen)
		if err != nil {
			t.Fatal(err)
		}
		lat, blocks := randLattice(&rng, bw, bh, blockLen)
		thresh := bm.WindowMargin(blocks, lat,
			int(rng.next()%uint64(lat.NAX)), int(rng.next()%uint64(lat.NAY))) +
			0.1*rng.float()

		var qm QuantBlockModel
		if err := qm.Init(m, bw, bh, blockLen, thresh); err != nil {
			t.Fatal(err)
		}
		qblocks := fixed.QuantizeQ14(nil, blocks)
		qresp := make([]int32, lat.NAX*lat.NAY*bw*bh)
		if err := qm.Responses(ctx, 1, qblocks, lat, qresp); err != nil {
			t.Fatal(err)
		}

		check := func(ax, ay int, score float64, dec QuantDecision, via string) {
			t.Helper()
			full := bm.WindowMargin(blocks, lat, ax, ay)
			floatDetects := full > thresh
			switch dec {
			case QuantAccept:
				if !floatDetects {
					t.Fatalf("trial %d (%d,%d) %s: quant accepted but float margin %v <= thresh %v",
						trial, ax, ay, via, full, thresh)
				}
				if d := math.Abs(score - full); d > qm.ErrBound() {
					t.Fatalf("trial %d (%d,%d) %s: score divergence %v exceeds bound %v",
						trial, ax, ay, via, d, qm.ErrBound())
				}
			case QuantReject:
				if floatDetects {
					t.Fatalf("trial %d (%d,%d) %s: quant rejected but float margin %v > thresh %v",
						trial, ax, ay, via, full, thresh)
				}
			case QuantBorderline:
				borderlines++ // resolved by the float oracle: agreement is structural
			}
		}

		for ay := 0; ay < lat.NAY; ay++ {
			for ax := 0; ax < lat.NAX; ax++ {
				windows++
				sEarly, dEarly := qm.ScoreAt(qblocks, lat, ax, ay, true)
				sFull, dFull := qm.ScoreAt(qblocks, lat, ax, ay, false)
				sPlane, dPlane := qm.DecideAt(qresp, lat.NAX, ax, ay)
				check(ax, ay, sEarly, dEarly, "early")
				check(ax, ay, sFull, dFull, "full")
				check(ax, ay, sPlane, dPlane, "plane")
				if dFull != dPlane || sFull != sPlane {
					t.Fatalf("trial %d (%d,%d): on-demand (%v,%v) != plane (%v,%v)",
						trial, ax, ay, sFull, dFull, sPlane, dPlane)
				}
				// Early exit may only turn non-rejects into nothing —
				// never the other way around.
				if dEarly != QuantReject && (dEarly != dFull || sEarly != sFull) {
					t.Fatalf("trial %d (%d,%d): early (%v,%v) != full (%v,%v)",
						trial, ax, ay, sEarly, dEarly, sFull, dFull)
				}
				if dEarly == QuantReject && dFull == QuantAccept {
					t.Fatalf("trial %d (%d,%d): early bail dropped an accepted window", trial, ax, ay)
				}
			}
		}
	}
	if borderlines*10 > windows {
		t.Fatalf("guard band too wide: %d of %d windows borderline", borderlines, windows)
	}
}
