package ledger

import (
	"crypto/sha256"
	"encoding/binary"
)

// Hash is a SHA-256 digest: a chain head, Merkle node or anchor.
type Hash [32]byte

// IsZero reports whether h is the all-zero hash (the head of an empty
// chain, the root of an empty batch).
func (h Hash) IsZero() bool { return h == Hash{} }

// Domain-separation tags. Every hash in the ledger is computed over a
// one-byte tag followed by its operands, so a leaf can never be
// confused with an interior node (the classic second-preimage trick
// against untagged Merkle trees), nor a chain link with an anchor
// link.
const (
	tagLeaf   = 0x00 // leaf   = H(0x00 || payload)
	tagNode   = 0x01 // node   = H(0x01 || left || right)
	tagChain  = 0x02 // head'  = H(0x02 || head || leaf)
	tagAnchor = 0x03 // anchor'= H(0x03 || anchor || root)
)

// leafHash commits to one event: its simulated timestamp and its
// canonical payload bytes. Covering the timestamp means a recorded
// drive's timing is as tamper-evident as its contents.
func leafHash(ps uint64, payload []byte) Hash {
	h := sha256.New()
	var hdr [9]byte
	hdr[0] = tagLeaf
	binary.BigEndian.PutUint64(hdr[1:], ps)
	h.Write(hdr[:])
	h.Write(payload)
	var out Hash
	h.Sum(out[:0])
	return out
}

// nodeHash combines two Merkle siblings, left-then-right.
func nodeHash(left, right Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagNode})
	h.Write(left[:])
	h.Write(right[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// chainHash extends a stream's hash chain by one leaf: the head after
// event i commits to every event up to and including i.
func chainHash(head, leaf Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagChain})
	h.Write(head[:])
	h.Write(leaf[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// anchorHash extends the engine-level anchor chain by one sealed batch
// root — the single hash a fleet backend would persist per batch.
func anchorHash(anchor, root Hash) Hash {
	h := sha256.New()
	h.Write([]byte{tagAnchor})
	h.Write(anchor[:])
	h.Write(root[:])
	var out Hash
	h.Sum(out[:0])
	return out
}

// merkleRoot computes the root over leaves with the promotion rule for
// odd counts: a node without a sibling moves up a level unchanged (no
// self-pairing, so the tree shape is a pure function of the count).
// One leaf is its own root; zero leaves hash to the zero Hash.
func merkleRoot(leaves []Hash) Hash {
	if len(leaves) == 0 {
		return Hash{}
	}
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		n := len(level) / 2
		for i := 0; i < n; i++ {
			level[i] = nodeHash(level[2*i], level[2*i+1])
		}
		if len(level)%2 == 1 {
			level[n] = level[len(level)-1]
			n++
		}
		level = level[:n]
	}
	return level[0]
}

// Proof is an inclusion proof: the sibling path from one leaf of a
// sealed batch up to its Merkle root. Verifying it against the sealed
// root proves the leaf was in the batch without seeing the other
// events.
type Proof struct {
	BatchIndex int
	LeafIndex  int
	LeafCount  int
	Leaf       Hash
	Path       []Hash
}

// proofPath collects the sibling hashes from leaves[idx] to the root.
// Levels where the node is an odd last element (promoted unchanged)
// contribute no path entry, mirroring merkleRoot's shape exactly.
func proofPath(leaves []Hash, idx int) []Hash {
	var path []Hash
	level := make([]Hash, len(leaves))
	copy(level, leaves)
	for len(level) > 1 {
		if idx^1 < len(level) {
			path = append(path, level[idx^1])
		}
		n := len(level) / 2
		for i := 0; i < n; i++ {
			level[i] = nodeHash(level[2*i], level[2*i+1])
		}
		if len(level)%2 == 1 {
			level[n] = level[len(level)-1]
			n++
		}
		level = level[:n]
		idx /= 2
	}
	return path
}

// Verify recomputes the root from the leaf and sibling path and
// compares it to root. It replays merkleRoot's promotion rule from
// (LeafIndex, LeafCount) alone, so the path length is fully determined
// and a truncated or padded path fails.
func (p Proof) Verify(root Hash) bool {
	if p.LeafCount <= 0 || p.LeafIndex < 0 || p.LeafIndex >= p.LeafCount {
		return false
	}
	h := p.Leaf
	idx, n, k := p.LeafIndex, p.LeafCount, 0
	for n > 1 {
		if idx^1 < n {
			if k >= len(p.Path) {
				return false
			}
			sib := p.Path[k]
			k++
			if idx&1 == 0 {
				h = nodeHash(h, sib)
			} else {
				h = nodeHash(sib, h)
			}
		}
		idx /= 2
		n = (n + 1) / 2
	}
	return k == len(p.Path) && h == root
}
