package ledger

import (
	"bytes"
	"errors"
	"testing"
)

// testRNG is a seeded xorshift64 source; the repo bans ambient
// math/rand, and deterministic payloads make every failure replayable.
func testRNG(s uint64) func() uint64 {
	if s == 0 {
		s = 1
	}
	return func() uint64 {
		s ^= s << 13
		s ^= s >> 7
		s ^= s << 17
		return s
	}
}

// fillLedger appends n deterministic events across the given streams
// and returns the payloads in append order.
func fillLedger(l *Ledger, streams []int32, n int, seed uint64) [][]byte {
	rng := testRNG(seed)
	payloads := make([][]byte, 0, n)
	for i := 0; i < n; i++ {
		p := make([]byte, 8+int(rng()%24))
		for j := range p {
			p[j] = byte(rng())
		}
		l.Append(streams[i%len(streams)], uint64(i)*1_000_000, p)
		payloads = append(payloads, p)
	}
	return payloads
}

// TestMerkleProofRoundTrip is the inclusion-proof property test: for
// random batch sizes, every leaf's proof must verify against the root,
// and must stop verifying against a different root or with a tampered
// leaf.
func TestMerkleProofRoundTrip(t *testing.T) {
	rng := testRNG(99)
	sizes := []int{1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 33, 64}
	for i := 0; i < 8; i++ {
		sizes = append(sizes, 1+int(rng()%200))
	}
	for _, n := range sizes {
		leaves := make([]Hash, n)
		for i := range leaves {
			var p [16]byte
			for j := 0; j < 16; j += 8 {
				v := rng()
				for k := 0; k < 8; k++ {
					p[j+k] = byte(v >> (8 * k))
				}
			}
			leaves[i] = leafHash(uint64(i), p[:])
		}
		root := merkleRoot(leaves)
		for idx := 0; idx < n; idx++ {
			proof := Proof{LeafIndex: idx, LeafCount: n, Leaf: leaves[idx], Path: proofPath(leaves, idx)}
			if !proof.Verify(root) {
				t.Fatalf("n=%d idx=%d: valid proof rejected", n, idx)
			}
			wrong := root
			wrong[0] ^= 1
			if proof.Verify(wrong) {
				t.Fatalf("n=%d idx=%d: proof verified against the wrong root", n, idx)
			}
			bad := proof
			bad.Leaf[3] ^= 1
			if bad.Verify(root) && n > 1 {
				t.Fatalf("n=%d idx=%d: tampered leaf still verified", n, idx)
			}
			short := proof
			short.Path = short.Path[:len(short.Path)/2]
			if len(short.Path) != len(proof.Path) && short.Verify(root) {
				t.Fatalf("n=%d idx=%d: truncated path still verified", n, idx)
			}
		}
	}
}

// TestSealBySize: a batch seals as soon as it holds MaxBatch leaves,
// and SealOpen flushes the tail.
func TestSealBySize(t *testing.T) {
	l := New(Config{MaxBatch: 4, MaxSpanPS: 1 << 62})
	fillLedger(l, []int32{0, 1}, 10, 7)
	if got := l.NumBatches(); got != 2 {
		t.Fatalf("batches = %d, want 2 (10 events / MaxBatch 4)", got)
	}
	if got := l.OpenLeaves(); got != 2 {
		t.Fatalf("open leaves = %d, want 2", got)
	}
	l.SealOpen()
	if got, open := l.NumBatches(), l.OpenLeaves(); got != 3 || open != 0 {
		t.Fatalf("after SealOpen: batches = %d open = %d, want 3 and 0", got, open)
	}
	l.SealOpen() // idempotent on an empty tail
	if got := l.NumBatches(); got != 3 {
		t.Fatalf("empty SealOpen sealed a batch: %d", got)
	}
	events, batches := l.Counts()
	if events != 10 || batches != 3 {
		t.Fatalf("counts = (%d, %d), want (10, 3)", events, batches)
	}
}

// TestSealBySpan: with a huge size bound, the simulated-time deadline
// alone must seal — mirroring the fleet batcher's size-or-deadline
// discipline.
func TestSealBySpan(t *testing.T) {
	l := New(Config{MaxBatch: 1 << 30, MaxSpanPS: 1000})
	l.Append(0, 100, []byte("a"))
	l.Append(0, 900, []byte("b"))
	if got := l.NumBatches(); got != 0 {
		t.Fatalf("sealed at span 800 < 1000: batches = %d", got)
	}
	l.Append(0, 1200, []byte("c")) // span 1100 >= 1000 seals a+b+c's batch
	if got := l.NumBatches(); got != 1 {
		t.Fatalf("batches = %d, want 1 after span deadline", got)
	}
	// Out-of-order (earlier) timestamps from another stream must not
	// underflow the span check into a spurious seal.
	l.Append(1, 5, []byte("d"))
	if got := l.NumBatches(); got != 1 {
		t.Fatalf("earlier cross-stream ps caused a seal: batches = %d", got)
	}
}

// TestChainsIndependent: each stream's chain head depends only on its
// own events.
func TestChainsIndependent(t *testing.T) {
	a := New(Config{})
	b := New(Config{})
	// Same stream-0 events in both, extra stream-1 traffic only in a.
	a.Append(0, 1, []byte("x"))
	a.Append(1, 2, []byte("noise"))
	a.Append(0, 3, []byte("y"))
	b.Append(0, 1, []byte("x"))
	b.Append(0, 3, []byte("y"))
	ha, _ := a.ChainHead(0)
	hb, _ := b.ChainHead(0)
	if ha != hb {
		t.Fatal("stream 0 chain head changed when an unrelated stream appended")
	}
	if got := a.ChainLen(1); got != 1 {
		t.Fatalf("stream 1 chain len = %d, want 1", got)
	}
	if _, ok := a.ChainHead(7); ok {
		t.Fatal("ChainHead reported a chain that was never written")
	}
}

// TestRecordNoAliasing: the payload handed back by Record must be a
// copy — mutating it cannot corrupt the arena the hashes commit to.
func TestRecordNoAliasing(t *testing.T) {
	l := New(Config{})
	l.Append(0, 1, []byte("immutable"))
	_, p1 := l.Record(0, 0)
	for i := range p1 {
		p1[i] = 0xFF
	}
	_, p2 := l.Record(0, 0)
	if !bytes.Equal(p2, []byte("immutable")) {
		t.Fatal("mutating Record's return corrupted the ledger arena")
	}
	if _, p := l.Record(0, 99); p != nil {
		t.Fatal("out-of-range Record returned a payload")
	}
}

// TestBatchDeepCopy: Batch(i) must not alias internal leaf slices.
func TestBatchDeepCopy(t *testing.T) {
	l := New(Config{MaxBatch: 2})
	fillLedger(l, []int32{0}, 4, 3)
	b1, ok := l.Batch(0)
	if !ok {
		t.Fatal("batch 0 missing")
	}
	b1.Leaves[0].Leaf[0] ^= 0xFF
	b2, _ := l.Batch(0)
	if b2.Leaves[0].Leaf == b1.Leaves[0].Leaf {
		t.Fatal("Batch returned aliased leaf storage")
	}
}

// TestLiveProofRoundTrip: proofs from the live ledger verify against
// their sealed batch roots.
func TestLiveProofRoundTrip(t *testing.T) {
	l := New(Config{MaxBatch: 8})
	fillLedger(l, []int32{0, 1, 2}, 50, 11)
	l.SealOpen()
	for bi := 0; bi < l.NumBatches(); bi++ {
		b, _ := l.Batch(bi)
		for li := range b.Leaves {
			proof, err := l.Prove(bi, li)
			if err != nil {
				t.Fatalf("Prove(%d, %d): %v", bi, li, err)
			}
			if !proof.Verify(b.Root) {
				t.Fatalf("proof (%d, %d) does not verify", bi, li)
			}
		}
	}
	if _, err := l.Prove(l.NumBatches(), 0); err == nil {
		t.Fatal("Prove out of range succeeded")
	}
}

// TestLogRoundTrip: WriteTo -> ReadLog preserves every field and the
// result verifies clean.
func TestLogRoundTrip(t *testing.T) {
	l := New(Config{MaxBatch: 8})
	payloads := fillLedger(l, []int32{0, 1, 2}, 41, 17)
	l.SealOpen()

	var buf bytes.Buffer
	n, err := l.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	lg, err := ReadLog(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	rep := VerifyLog(lg)
	if !rep.OK {
		t.Fatalf("round-tripped log failed verification: %+v", rep)
	}
	if rep.Events != len(payloads) || rep.Batches != l.NumBatches() || rep.Streams != 3 {
		t.Fatalf("report = %+v, want %d events %d batches 3 streams", rep, len(payloads), l.NumBatches())
	}
	if lg.AnchorHead != l.AnchorHead() {
		t.Fatal("anchor head changed across serialization")
	}
	for _, id := range l.Streams() {
		want, _ := l.ChainHead(id)
		found := false
		for i := range lg.Streams {
			if lg.Streams[i].Stream == id {
				found = true
				if lg.Streams[i].Head != want {
					t.Fatalf("stream %d head changed across serialization", id)
				}
			}
		}
		if !found {
			t.Fatalf("stream %d missing from the log", id)
		}
	}
	// Proofs rebuilt from the recorded payloads verify too.
	for bi := range lg.Batches {
		proof, err := lg.Prove(bi, 0)
		if err != nil {
			t.Fatal(err)
		}
		if !proof.Verify(lg.Batches[bi].Root) {
			t.Fatalf("log proof for batch %d does not verify", bi)
		}
	}
}

// TestChainTamperPinpointsBatch is the tamper property: flipping ANY
// byte of ANY recorded payload must fail verification and pinpoint
// both the record and the batch that sealed it.
func TestChainTamperPinpointsBatch(t *testing.T) {
	l := New(Config{MaxBatch: 8})
	fillLedger(l, []int32{0, 1}, 30, 23)
	l.SealOpen()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}

	// batchOf maps (stream, seq) -> sealing batch index.
	type key struct {
		stream int32
		seq    uint64
	}
	batchOf := map[key]int{}
	for bi := 0; bi < l.NumBatches(); bi++ {
		b, _ := l.Batch(bi)
		for _, ref := range b.Leaves {
			batchOf[key{ref.Stream, ref.Seq}] = bi
		}
	}

	for si := 0; si < 2; si++ {
		stream := int32(si)
		for seq := 0; seq < l.ChainLen(stream); seq++ {
			_, payload := l.Record(stream, seq)
			for bit := range payload {
				lg, err := ReadLog(bytes.NewReader(buf.Bytes()))
				if err != nil {
					t.Fatal(err)
				}
				for i := range lg.Streams {
					if lg.Streams[i].Stream == stream {
						lg.Streams[i].Payloads[seq][bit] ^= 0x01
					}
				}
				rep := VerifyLog(lg)
				if rep.OK {
					t.Fatalf("stream %d seq %d byte %d: tamper passed verification", stream, seq, bit)
				}
				if rep.BadStream != stream || rep.BadSeq != int64(seq) {
					t.Fatalf("stream %d seq %d byte %d: pinpointed (%d, %d)",
						stream, seq, bit, rep.BadStream, rep.BadSeq)
				}
				if want := batchOf[key{stream, uint64(seq)}]; rep.BadBatch != want {
					t.Fatalf("stream %d seq %d: pinpointed batch %d, want %d",
						stream, seq, rep.BadBatch, want)
				}
			}
		}
	}
}

// TestFileTamperDetected: flipping any single byte of the serialized
// file must either fail the parse or fail verification — no flip may
// read back as a clean ledger (the magic substitution '1'->'0' style
// flips included).
func TestFileTamperDetected(t *testing.T) {
	l := New(Config{MaxBatch: 8})
	fillLedger(l, []int32{0, 1}, 20, 31)
	l.SealOpen()
	var buf bytes.Buffer
	if _, err := l.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for i := range raw {
		mut := append([]byte(nil), raw...)
		mut[i] ^= 0x01
		lg, err := ReadLog(bytes.NewReader(mut))
		if err != nil {
			if !errors.Is(err, ErrLogFormat) {
				t.Fatalf("byte %d: parse error does not wrap ErrLogFormat: %v", i, err)
			}
			continue
		}
		if rep := VerifyLog(lg); rep.OK {
			t.Fatalf("byte %d: single-byte flip read back as a clean ledger", i)
		}
	}
}

// TestReadLogCaps: corrupt length fields fail the parse instead of
// driving giant allocations.
func TestReadLogCaps(t *testing.T) {
	var buf bytes.Buffer
	buf.Write(logMagic[:])
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // stream count far past the cap
	if _, err := ReadLog(bytes.NewReader(buf.Bytes())); !errors.Is(err, ErrLogFormat) {
		t.Fatalf("oversized count parsed: %v", err)
	}
	if _, err := ReadLog(bytes.NewReader([]byte("NOTALEDG"))); !errors.Is(err, ErrLogFormat) {
		t.Fatalf("bad magic parsed: %v", err)
	}
}

// TestAppendSteadyStateAllocs: after warmup the append path must be
// amortized allocation-free — the arena and slices grow geometrically,
// so per-append allocations tend to zero.
func TestAppendSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	l := New(Config{MaxBatch: 1 << 30, MaxSpanPS: 1 << 62})
	payload := bytes.Repeat([]byte{0xAB}, 64)
	for i := 0; i < 4096; i++ {
		l.Append(0, uint64(i), payload)
	}
	ps := uint64(4096)
	avg := testing.AllocsPerRun(512, func() {
		l.Append(0, ps, payload)
		ps++
	})
	if avg > 0.5 {
		t.Fatalf("steady-state Append allocates %.2f allocs/op, want ~0", avg)
	}
}
