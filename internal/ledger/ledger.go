// Package ledger implements the tamper-evident detection ledger: an
// append-only, hash-chained log of the adaptive system's typed events
// (frame verdicts, model selects, reconfiguration outcomes, faults,
// mode transitions), batched into Merkle trees whose roots chain into
// a single anchor a fleet backend could persist cheaply.
//
// The structure is three hash layers:
//
//   - per-stream chains: head' = H(tag || head || H(tag || payload)) —
//     order and content of one camera's events;
//   - per-batch Merkle trees over the leaves of all streams, sealed by
//     size or simulated-time deadline (the same size-or-deadline
//     discipline as the fleet dispatcher's frame batcher);
//   - the anchor chain over sealed roots: anchor' = H(tag || anchor ||
//     root).
//
// Appends take one mutex, hash into preallocated arenas and allocate
// nothing in steady state, so the ledger can ride the detection path
// without disturbing its zero-alloc budget. Verification is fully
// offline: WriteTo serializes every payload and seal, and VerifyLog
// recomputes all three layers from the raw bytes, pinpointing the
// first tampered record and batch (see log.go).
package ledger

import (
	"fmt"
	"sync"
)

// Config shapes the size-or-deadline batch sealing.
type Config struct {
	// MaxBatch seals the open batch when it holds this many events.
	// Zero or negative selects 64.
	MaxBatch int
	// MaxSpanPS seals the open batch when the newest event is this much
	// simulated time past the oldest — the deadline half, expressed on
	// the platform clock so sealing is deterministic for a given event
	// stream. Zero selects 250 ms. (An engine additionally runs a
	// wall-clock fleet.Sealer so a quiet ledger still seals in real
	// time.)
	MaxSpanPS uint64
}

func (c Config) withDefaults() Config {
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxSpanPS == 0 {
		c.MaxSpanPS = 250_000_000_000
	}
	return c
}

// LeafRef locates one ledgered event: which stream chain, which
// sequence number on it, and the leaf hash the batch's Merkle tree
// commits to.
type LeafRef struct {
	Stream int32
	Seq    uint64
	PS     uint64
	Leaf   Hash
}

// Batch is one sealed Merkle batch: the root over its leaves and the
// anchor-chain head after folding that root in.
type Batch struct {
	Index   int
	Root    Hash
	Anchor  Hash
	FirstPS uint64
	LastPS  uint64
	Leaves  []LeafRef
}

// Ledger is the engine-level ledger: one chain per stream, one shared
// batch sealer, one anchor chain. All methods are safe for concurrent
// use (streams on different executor goroutines append concurrently).
type Ledger struct {
	mu      sync.Mutex
	cfg     Config
	chains  []*Chain // indexed by stream id; nil gaps for unseen ids
	open    []LeafRef
	batches []Batch
	anchor  Hash
	events  uint64
}

// New builds an empty ledger. The zero Config selects the defaults.
func New(cfg Config) *Ledger {
	return &Ledger{cfg: cfg.withDefaults()}
}

// Append records one canonical event payload: it extends the stream's
// hash chain, adds the leaf to the open batch, and seals the batch if
// it reached MaxBatch events or spans more than MaxSpanPS of simulated
// time. The payload is copied (callers may reuse their buffer) and the
// event's sequence number on its stream chain is returned. Negative
// stream ids are folded onto chain 0.
func (l *Ledger) Append(stream int32, ps uint64, payload []byte) uint64 {
	if stream < 0 {
		stream = 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	seq, leaf := l.chainLocked(stream).append(ps, payload)
	l.events++
	l.open = append(l.open, LeafRef{Stream: stream, Seq: seq, PS: ps, Leaf: leaf})
	if len(l.open) >= l.cfg.MaxBatch ||
		(ps > l.open[0].PS && ps-l.open[0].PS >= l.cfg.MaxSpanPS) {
		l.sealLocked()
	}
	return seq
}

func (l *Ledger) chainLocked(stream int32) *Chain {
	for int(stream) >= len(l.chains) {
		l.chains = append(l.chains, nil)
	}
	if l.chains[stream] == nil {
		l.chains[stream] = newChain(stream)
	}
	return l.chains[stream]
}

func (l *Ledger) sealLocked() {
	if len(l.open) == 0 {
		return
	}
	leaves := make([]Hash, len(l.open))
	for i, r := range l.open {
		leaves[i] = r.Leaf
	}
	root := merkleRoot(leaves)
	l.anchor = anchorHash(l.anchor, root)
	l.batches = append(l.batches, Batch{
		Index:   len(l.batches),
		Root:    root,
		Anchor:  l.anchor,
		FirstPS: l.open[0].PS,
		LastPS:  l.open[len(l.open)-1].PS,
		Leaves:  l.open,
	})
	l.open = nil // the sealed batch owns the slice now
}

// SealOpen force-seals the open batch if it is non-empty — the
// wall-clock deadline path (fleet.Sealer ticks call it) and the
// end-of-drive flush before WriteTo.
func (l *Ledger) SealOpen() {
	l.mu.Lock()
	l.sealLocked()
	l.mu.Unlock()
}

// Counts returns the totals: events appended and batches sealed.
// Cheap enough to publish as per-frame gauges.
func (l *Ledger) Counts() (events, batches uint64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.events, uint64(len(l.batches))
}

// NumBatches returns how many batches have been sealed.
func (l *Ledger) NumBatches() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.batches)
}

// OpenLeaves returns how many events sit in the not-yet-sealed batch.
func (l *Ledger) OpenLeaves() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.open)
}

// AnchorHead returns the anchor-chain head over all sealed batches.
func (l *Ledger) AnchorHead() Hash {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.anchor
}

// Batch returns a copy of sealed batch i (Leaves deep-copied, so the
// caller can never alias ledger state).
func (l *Ledger) Batch(i int) (Batch, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if i < 0 || i >= len(l.batches) {
		return Batch{}, false
	}
	b := l.batches[i]
	b.Leaves = append([]LeafRef(nil), b.Leaves...)
	return b, true
}

// Streams returns the ids of all stream chains, ascending.
func (l *Ledger) Streams() []int32 {
	l.mu.Lock()
	defer l.mu.Unlock()
	ids := make([]int32, 0, len(l.chains))
	for i, c := range l.chains {
		if c != nil {
			ids = append(ids, int32(i))
		}
	}
	return ids
}

// ChainHead returns stream's running chain head; ok is false if the
// stream has never appended.
func (l *Ledger) ChainHead(stream int32) (Hash, bool) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if stream < 0 || int(stream) >= len(l.chains) || l.chains[stream] == nil {
		return Hash{}, false
	}
	return l.chains[stream].head, true
}

// ChainLen returns how many events stream's chain holds.
func (l *Ledger) ChainLen(stream int32) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if stream < 0 || int(stream) >= len(l.chains) || l.chains[stream] == nil {
		return 0
	}
	return l.chains[stream].Len()
}

// Record returns event seq of stream's chain: its timestamp and a copy
// of the canonical payload.
func (l *Ledger) Record(stream int32, seq int) (ps uint64, payload []byte) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if stream < 0 || int(stream) >= len(l.chains) || l.chains[stream] == nil {
		return 0, nil
	}
	return l.chains[stream].Record(seq)
}

// Prove builds an inclusion proof for leaf li of sealed batch bi.
// Proof.Verify against the batch's Root (or against a root recomputed
// offline by VerifyLog) confirms membership.
func (l *Ledger) Prove(bi, li int) (Proof, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if bi < 0 || bi >= len(l.batches) {
		return Proof{}, fmt.Errorf("ledger: prove: batch %d of %d", bi, len(l.batches))
	}
	b := &l.batches[bi]
	if li < 0 || li >= len(b.Leaves) {
		return Proof{}, fmt.Errorf("ledger: prove: leaf %d of %d in batch %d", li, len(b.Leaves), bi)
	}
	leaves := make([]Hash, len(b.Leaves))
	for i, r := range b.Leaves {
		leaves[i] = r.Leaf
	}
	return Proof{
		BatchIndex: bi,
		LeafIndex:  li,
		LeafCount:  len(b.Leaves),
		Leaf:       b.Leaves[li].Leaf,
		Path:       proofPath(leaves, li),
	}, nil
}
