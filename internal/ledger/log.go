package ledger

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The serialized form is deterministic big-endian binary: the exact
// bytes of every chain record plus every seal, so an offline verifier
// can recompute all three hash layers from the file alone.
var logMagic = [8]byte{'A', 'D', 'V', 'L', 'E', 'D', 'G', '1'}

// Caps on decoded counts/lengths: a corrupted length field must fail
// the parse, not drive a giant allocation.
const (
	maxLogRecords = 1 << 24
	maxLogPayload = 1 << 20
)

// ErrLogFormat is the typed parse failure of a serialized ledger log;
// ReadLog errors wrap it for errors.Is dispatch.
var ErrLogFormat = errors.New("malformed ledger log")

// StreamLog is one stream's chain as recorded: every event's timestamp
// and canonical payload, plus the head the live ledger claimed.
type StreamLog struct {
	Stream   int32
	PS       []uint64
	Payloads [][]byte
	Head     Hash
}

// Log is a ledger read back from its serialized form — the input to
// VerifyLog and Prove. Batches[].Leaves reference records by
// (Stream, Seq); Open holds the tail that was never sealed.
type Log struct {
	Streams    []StreamLog
	Batches    []Batch
	Open       []LeafRef
	AnchorHead Hash
}

// WriteTo serializes the ledger: magic, every stream chain (timestamp
// + payload per record, claimed head), every sealed batch (leaf refs,
// root, anchor), the open tail, and the anchor head. Callers who want
// the tail sealed should call SealOpen first. Implements io.WriterTo.
func (l *Ledger) WriteTo(w io.Writer) (int64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	cw := &countWriter{w: w}
	bw := bufio.NewWriter(cw)
	bw.Write(logMagic[:])
	nStreams := 0
	for _, c := range l.chains {
		if c != nil {
			nStreams++
		}
	}
	writeU32(bw, uint32(nStreams))
	for _, c := range l.chains {
		if c == nil {
			continue
		}
		writeU32(bw, uint32(c.stream))
		writeU64(bw, uint64(c.Len()))
		for i := 0; i < c.Len(); i++ {
			writeU64(bw, c.ps[i])
			p := c.payloadView(i)
			writeU32(bw, uint32(len(p)))
			bw.Write(p)
		}
		bw.Write(c.head[:])
	}
	writeU32(bw, uint32(len(l.batches)))
	for i := range l.batches {
		b := &l.batches[i]
		writeU64(bw, b.FirstPS)
		writeU64(bw, b.LastPS)
		writeLeaves(bw, b.Leaves)
		bw.Write(b.Root[:])
		bw.Write(b.Anchor[:])
	}
	writeLeaves(bw, l.open)
	bw.Write(l.anchor[:])
	err := bw.Flush()
	return cw.n, err
}

type countWriter struct {
	w io.Writer
	n int64
}

func (c *countWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.n += int64(n)
	return n, err
}

func writeU32(w *bufio.Writer, v uint32) {
	var b [4]byte
	binary.BigEndian.PutUint32(b[:], v)
	w.Write(b[:])
}

func writeU64(w *bufio.Writer, v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	w.Write(b[:])
}

func writeLeaves(w *bufio.Writer, refs []LeafRef) {
	writeU32(w, uint32(len(refs)))
	for _, r := range refs {
		writeU32(w, uint32(r.Stream))
		writeU64(w, r.Seq)
		writeU64(w, r.PS)
		w.Write(r.Leaf[:])
	}
}

// ReadLog parses a serialized ledger. It validates structure only
// (magic, counts, lengths); hash checking is VerifyLog's job, so a
// tampered-but-well-formed file reads fine and then fails
// verification.
func ReadLog(r io.Reader) (*Log, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != logMagic {
		return nil, fmt.Errorf("ledger: bad magic: %w", ErrLogFormat)
	}
	nStreams, err := readU32(br)
	if err != nil || nStreams > maxLogRecords {
		return nil, fmt.Errorf("ledger: stream count: %w", ErrLogFormat)
	}
	lg := &Log{Streams: make([]StreamLog, 0, nStreams)}
	for si := uint32(0); si < nStreams; si++ {
		var sl StreamLog
		id, err := readU32(br)
		if err != nil {
			return nil, fmt.Errorf("ledger: stream id: %w", ErrLogFormat)
		}
		sl.Stream = int32(id)
		n, err := readU64(br)
		if err != nil || n > maxLogRecords {
			return nil, fmt.Errorf("ledger: stream %d record count: %w", sl.Stream, ErrLogFormat)
		}
		sl.PS = make([]uint64, 0, n)
		sl.Payloads = make([][]byte, 0, n)
		for i := uint64(0); i < n; i++ {
			ps, err := readU64(br)
			if err != nil {
				return nil, fmt.Errorf("ledger: stream %d record %d: %w", sl.Stream, i, ErrLogFormat)
			}
			plen, err := readU32(br)
			if err != nil || plen > maxLogPayload {
				return nil, fmt.Errorf("ledger: stream %d record %d length: %w", sl.Stream, i, ErrLogFormat)
			}
			p := make([]byte, plen)
			if _, err := io.ReadFull(br, p); err != nil {
				return nil, fmt.Errorf("ledger: stream %d record %d payload: %w", sl.Stream, i, ErrLogFormat)
			}
			sl.PS = append(sl.PS, ps)
			sl.Payloads = append(sl.Payloads, p)
		}
		if _, err := io.ReadFull(br, sl.Head[:]); err != nil {
			return nil, fmt.Errorf("ledger: stream %d head: %w", sl.Stream, ErrLogFormat)
		}
		lg.Streams = append(lg.Streams, sl)
	}
	nBatches, err := readU32(br)
	if err != nil || nBatches > maxLogRecords {
		return nil, fmt.Errorf("ledger: batch count: %w", ErrLogFormat)
	}
	lg.Batches = make([]Batch, 0, nBatches)
	for bi := uint32(0); bi < nBatches; bi++ {
		b := Batch{Index: int(bi)}
		if b.FirstPS, err = readU64(br); err != nil {
			return nil, fmt.Errorf("ledger: batch %d: %w", bi, ErrLogFormat)
		}
		if b.LastPS, err = readU64(br); err != nil {
			return nil, fmt.Errorf("ledger: batch %d: %w", bi, ErrLogFormat)
		}
		if b.Leaves, err = readLeaves(br); err != nil {
			return nil, fmt.Errorf("ledger: batch %d leaves: %w", bi, err)
		}
		if _, err := io.ReadFull(br, b.Root[:]); err != nil {
			return nil, fmt.Errorf("ledger: batch %d root: %w", bi, ErrLogFormat)
		}
		if _, err := io.ReadFull(br, b.Anchor[:]); err != nil {
			return nil, fmt.Errorf("ledger: batch %d anchor: %w", bi, ErrLogFormat)
		}
		lg.Batches = append(lg.Batches, b)
	}
	if lg.Open, err = readLeaves(br); err != nil {
		return nil, fmt.Errorf("ledger: open tail: %w", err)
	}
	if _, err := io.ReadFull(br, lg.AnchorHead[:]); err != nil {
		return nil, fmt.Errorf("ledger: anchor head: %w", ErrLogFormat)
	}
	return lg, nil
}

func readU32(r *bufio.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b[:]), nil
}

func readU64(r *bufio.Reader) (uint64, error) {
	var b [8]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b[:]), nil
}

func readLeaves(r *bufio.Reader) ([]LeafRef, error) {
	n, err := readU32(r)
	if err != nil || n > maxLogRecords {
		return nil, fmt.Errorf("ledger: leaf count: %w", ErrLogFormat)
	}
	refs := make([]LeafRef, 0, n)
	for i := uint32(0); i < n; i++ {
		var ref LeafRef
		id, err := readU32(r)
		if err != nil {
			return nil, fmt.Errorf("ledger: leaf %d: %w", i, ErrLogFormat)
		}
		ref.Stream = int32(id)
		if ref.Seq, err = readU64(r); err != nil {
			return nil, fmt.Errorf("ledger: leaf %d: %w", i, ErrLogFormat)
		}
		if ref.PS, err = readU64(r); err != nil {
			return nil, fmt.Errorf("ledger: leaf %d: %w", i, ErrLogFormat)
		}
		if _, err := io.ReadFull(r, ref.Leaf[:]); err != nil {
			return nil, fmt.Errorf("ledger: leaf %d hash: %w", i, ErrLogFormat)
		}
		refs = append(refs, ref)
	}
	return refs, nil
}

// Report is the outcome of a full offline verification pass over a
// recorded ledger.
type Report struct {
	Events  int
	Batches int
	Streams int
	OK      bool
	// BadBatch is the first batch whose Merkle root, recomputed from
	// the recorded payloads, disagrees with the sealed root (-1 if
	// none). Flipping any byte of any sealed event pinpoints here.
	BadBatch int
	// BadStream/BadSeq pinpoint the first record whose recomputed leaf
	// hash disagrees with what a batch or the chain committed to
	// (BadStream -1 if none).
	BadStream int32
	BadSeq    int64
	// Err is the first structural failure: a chain head that does not
	// match its records, a batch referencing a missing record, or a
	// broken anchor chain. Nil when OK.
	Err error
}

// VerifyLog recomputes every hash layer of a recorded ledger from the
// raw payload bytes: per-stream leaves and chain heads, per-batch
// Merkle roots, and the anchor chain — trusting nothing but the
// payloads themselves. Any byte flipped anywhere (payload, committed
// leaf, root, anchor, head) makes OK false, and payload tampering is
// pinpointed to the record and its batch.
func VerifyLog(lg *Log) Report {
	rep := Report{BadBatch: -1, BadStream: -1, BadSeq: -1, Streams: len(lg.Streams)}
	structural := func(err error) {
		if rep.Err == nil {
			rep.Err = err
		}
	}
	// Layer 1: leaves and chain heads from payloads.
	maxID := int32(-1)
	for i := range lg.Streams {
		if lg.Streams[i].Stream > maxID {
			maxID = lg.Streams[i].Stream
		}
		if lg.Streams[i].Stream < 0 {
			structural(fmt.Errorf("ledger: negative stream id %d", lg.Streams[i].Stream))
		}
	}
	leavesByStream := make([][]Hash, maxID+1)
	for i := range lg.Streams {
		sl := &lg.Streams[i]
		if sl.Stream < 0 || len(sl.PS) != len(sl.Payloads) {
			structural(fmt.Errorf("ledger: stream %d: %d timestamps vs %d payloads",
				sl.Stream, len(sl.PS), len(sl.Payloads)))
			continue
		}
		hs := make([]Hash, len(sl.Payloads))
		var head Hash
		for j, p := range sl.Payloads {
			hs[j] = leafHash(sl.PS[j], p)
			head = chainHash(head, hs[j])
		}
		if head != sl.Head {
			structural(fmt.Errorf("ledger: stream %d: recorded chain head does not match its records", sl.Stream))
		}
		leavesByStream[sl.Stream] = hs
		rep.Events += len(sl.Payloads)
	}
	lookup := func(ref LeafRef) (Hash, bool) {
		if ref.Stream < 0 || int(ref.Stream) >= len(leavesByStream) ||
			ref.Seq >= uint64(len(leavesByStream[ref.Stream])) {
			return Hash{}, false
		}
		return leavesByStream[ref.Stream][ref.Seq], true
	}
	psOf := func(ref LeafRef) uint64 {
		for i := range lg.Streams {
			if lg.Streams[i].Stream == ref.Stream && ref.Seq < uint64(len(lg.Streams[i].PS)) {
				return lg.Streams[i].PS[ref.Seq]
			}
		}
		return 0
	}
	checkRef := func(where string, ref LeafRef) Hash {
		re, ok := lookup(ref)
		if !ok {
			structural(fmt.Errorf("ledger: %s references missing record stream=%d seq=%d",
				where, ref.Stream, ref.Seq))
			return ref.Leaf
		}
		if ref.PS != psOf(ref) {
			structural(fmt.Errorf("ledger: %s timestamp disagrees with record stream=%d seq=%d",
				where, ref.Stream, ref.Seq))
		}
		if re != ref.Leaf && rep.BadStream < 0 {
			rep.BadStream, rep.BadSeq = ref.Stream, int64(ref.Seq)
		}
		return re
	}
	// Layers 2 and 3: Merkle roots from recomputed leaves, anchors from
	// recomputed roots.
	var anchor Hash
	for bi := range lg.Batches {
		b := &lg.Batches[bi]
		leaves := make([]Hash, len(b.Leaves))
		for li, ref := range b.Leaves {
			leaves[li] = checkRef(fmt.Sprintf("batch %d", bi), ref)
		}
		if len(b.Leaves) == 0 {
			structural(fmt.Errorf("ledger: batch %d is empty", bi))
		} else if b.FirstPS != b.Leaves[0].PS || b.LastPS != b.Leaves[len(b.Leaves)-1].PS {
			structural(fmt.Errorf("ledger: batch %d ps span disagrees with its leaves", bi))
		}
		root := merkleRoot(leaves)
		if root != b.Root && rep.BadBatch < 0 {
			rep.BadBatch = bi
		}
		anchor = anchorHash(anchor, root)
		if anchor != b.Anchor {
			structural(fmt.Errorf("ledger: batch %d: anchor chain broken", bi))
		}
	}
	for _, ref := range lg.Open {
		checkRef("open tail", ref)
	}
	rep.Batches = len(lg.Batches)
	if anchor != lg.AnchorHead {
		structural(errors.New("ledger: recorded anchor head does not match sealed batches"))
	}
	rep.OK = rep.Err == nil && rep.BadBatch < 0 && rep.BadStream < 0
	return rep
}

// Prove builds an inclusion proof for leaf li of batch bi from the
// recorded payloads — recomputing the leaf hashes, so a proof that
// verifies against the sealed root genuinely commits to the recorded
// bytes, not just to the file's claimed hashes.
func (lg *Log) Prove(bi, li int) (Proof, error) {
	if bi < 0 || bi >= len(lg.Batches) {
		return Proof{}, fmt.Errorf("ledger: prove: batch %d of %d", bi, len(lg.Batches))
	}
	b := &lg.Batches[bi]
	if li < 0 || li >= len(b.Leaves) {
		return Proof{}, fmt.Errorf("ledger: prove: leaf %d of %d in batch %d", li, len(b.Leaves), bi)
	}
	leaves := make([]Hash, len(b.Leaves))
	for i, ref := range b.Leaves {
		ps, p, ok := lg.payload(ref)
		if !ok {
			return Proof{}, fmt.Errorf("ledger: prove: batch %d references missing record stream=%d seq=%d",
				bi, ref.Stream, ref.Seq)
		}
		leaves[i] = leafHash(ps, p)
	}
	return Proof{
		BatchIndex: bi,
		LeafIndex:  li,
		LeafCount:  len(b.Leaves),
		Leaf:       leaves[li],
		Path:       proofPath(leaves, li),
	}, nil
}

func (lg *Log) payload(ref LeafRef) (uint64, []byte, bool) {
	for i := range lg.Streams {
		if lg.Streams[i].Stream == ref.Stream {
			if ref.Seq >= uint64(len(lg.Streams[i].Payloads)) {
				return 0, nil, false
			}
			return lg.Streams[i].PS[ref.Seq], lg.Streams[i].Payloads[ref.Seq], true
		}
	}
	return 0, nil, false
}
