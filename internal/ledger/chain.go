package ledger

// Chain is one stream's append-only hash chain. Every event payload is
// hashed into a leaf and folded into the running head, so the head
// after event i commits to the exact bytes and order of events 0..i;
// rewriting any earlier event changes every later head. Payloads are
// kept in one amortized arena (not one allocation per event) so the
// steady-state append path stays allocation-free.
//
// A Chain is not safe for concurrent use on its own; the owning Ledger
// serializes access.
type Chain struct {
	stream int32
	head   Hash
	ps     []uint64
	leaves []Hash
	arena  []byte
	offs   []uint32 // len(ps)+1 entries; record i is arena[offs[i]:offs[i+1]]
}

func newChain(stream int32) *Chain {
	return &Chain{stream: stream, offs: make([]uint32, 1, 64)}
}

// append records one event, returning its sequence number within the
// chain and the leaf hash the Merkle batch will commit to.
func (c *Chain) append(ps uint64, payload []byte) (seq uint64, leaf Hash) {
	seq = uint64(len(c.leaves))
	leaf = leafHash(ps, payload)
	c.head = chainHash(c.head, leaf)
	c.ps = append(c.ps, ps)
	c.leaves = append(c.leaves, leaf)
	c.arena = append(c.arena, payload...)
	c.offs = append(c.offs, uint32(len(c.arena)))
	return seq, leaf
}

// Stream returns the chain's stream id.
func (c *Chain) Stream() int32 { return c.stream }

// Len returns the number of events on the chain.
func (c *Chain) Len() int { return len(c.leaves) }

// Head returns the running chain head (zero for an empty chain).
func (c *Chain) Head() Hash { return c.head }

// Leaf returns the leaf hash of event seq (zero Hash out of range).
func (c *Chain) Leaf(seq int) Hash {
	if seq < 0 || seq >= len(c.leaves) {
		return Hash{}
	}
	return c.leaves[seq]
}

// Record returns event seq's timestamp and a copy of its canonical
// payload — a copy, so callers can never alias (or corrupt) the
// ledger's internal arena. Out of range returns (0, nil).
func (c *Chain) Record(seq int) (ps uint64, payload []byte) {
	if seq < 0 || seq >= len(c.ps) {
		return 0, nil
	}
	return c.ps[seq], append([]byte(nil), c.payloadView(seq)...)
}

// payloadView returns the arena-backed bytes of record seq; internal
// callers must not retain or mutate them.
func (c *Chain) payloadView(seq int) []byte {
	return c.arena[c.offs[seq]:c.offs[seq+1]]
}
