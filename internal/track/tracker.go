package track

import (
	"math"

	"advdet/internal/img"
	"advdet/internal/pipeline"
)

// TrackState is the lifecycle phase of a track.
type TrackState int

const (
	// Tentative tracks have not yet accumulated enough hits.
	Tentative TrackState = iota
	// Confirmed tracks passed the hit threshold.
	Confirmed
	// Deleted tracks exceeded the miss budget and will be pruned.
	Deleted
)

func (s TrackState) String() string {
	switch s {
	case Tentative:
		return "tentative"
	case Confirmed:
		return "confirmed"
	case Deleted:
		return "deleted"
	}
	return "invalid"
}

// Track is one tracked object.
type Track struct {
	ID     int
	Kind   pipeline.Kind
	KF     *Kalman
	State  TrackState
	Hits   int // consecutive matched frames
	Misses int // consecutive unmatched frames
	Age    int // frames since birth
	Score  float64
}

// Box returns the current (predicted/updated) box.
func (t *Track) Box() img.Rect { return t.KF.Box() }

// Config tunes the tracker.
type Config struct {
	// MaxIoUCost gates assignment: pairs with cost 1-IoU above this
	// never match.
	MaxIoUCost float64
	// ConfirmHits promotes a tentative track after this many hits.
	ConfirmHits int
	// MaxMisses deletes a track after this many consecutive misses
	// (coasting budget — a confirmed track survives brief dropouts,
	// e.g. the frame lost to a partial reconfiguration).
	MaxMisses int
}

// DefaultConfig returns sensible defaults for 10-50 fps video.
func DefaultConfig() Config {
	return Config{MaxIoUCost: 0.8, ConfirmHits: 3, MaxMisses: 5}
}

// Tracker maintains the track set across frames.
type Tracker struct {
	Cfg    Config
	tracks []*Track
	nextID int
}

// NewTracker returns an empty tracker.
func NewTracker(cfg Config) *Tracker {
	if cfg.MaxIoUCost <= 0 {
		cfg.MaxIoUCost = 0.8
	}
	if cfg.ConfirmHits <= 0 {
		cfg.ConfirmHits = 3
	}
	if cfg.MaxMisses <= 0 {
		cfg.MaxMisses = 5
	}
	return &Tracker{Cfg: cfg, nextID: 1}
}

// Tracks returns the live (non-deleted) tracks.
func (tr *Tracker) Tracks() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		if t.State != Deleted {
			out = append(out, t)
		}
	}
	return out
}

// Confirmed returns only confirmed tracks — the tracker's output.
func (tr *Tracker) Confirmed() []*Track {
	out := make([]*Track, 0, len(tr.tracks))
	for _, t := range tr.tracks {
		if t.State == Confirmed {
			out = append(out, t)
		}
	}
	return out
}

// Update advances all tracks one frame and associates the detections:
// predict -> assign (Hungarian over 1-IoU costs) -> update matched,
// coast unmatched, spawn new tracks for unmatched detections.
func (tr *Tracker) Update(dets []pipeline.Detection) {
	// Predict.
	live := tr.Tracks()
	for _, t := range live {
		t.KF.Predict()
		t.Age++
	}

	matchedDet := make([]bool, len(dets))
	if len(live) > 0 && len(dets) > 0 {
		const pad = 1e6
		cost := make([][]float64, len(live))
		for i, t := range live {
			cost[i] = make([]float64, len(dets))
			for j, d := range dets {
				c := assocCost(t.Box(), d.Box)
				if c > tr.Cfg.MaxIoUCost || t.Kind != d.Kind {
					c = pad
				}
				cost[i][j] = c
			}
		}
		square := padCosts(cost, len(live), len(dets), pad)
		assign := Hungarian(square)
		for i, t := range live {
			j := assign[i]
			if j >= len(dets) || cost[i][j] >= pad {
				tr.miss(t)
				continue
			}
			t.KF.Update(dets[j].Box)
			t.Hits++
			t.Misses = 0
			t.Score = dets[j].Score
			if t.State == Tentative && t.Hits >= tr.Cfg.ConfirmHits {
				t.State = Confirmed
			}
			matchedDet[j] = true
		}
	} else {
		for _, t := range live {
			tr.miss(t)
		}
	}

	// Births.
	for j, d := range dets {
		if matchedDet[j] {
			continue
		}
		tr.tracks = append(tr.tracks, &Track{
			ID:    tr.nextID,
			Kind:  d.Kind,
			KF:    NewKalman(d.Box),
			State: Tentative,
			Hits:  1,
			Score: d.Score,
		})
		tr.nextID++
	}

	// Prune deleted tracks.
	kept := tr.tracks[:0]
	for _, t := range tr.tracks {
		if t.State != Deleted {
			kept = append(kept, t)
		}
	}
	tr.tracks = kept
}

func (tr *Tracker) miss(t *Track) {
	t.Misses++
	if t.State == Tentative {
		t.Hits = 0 // tentative tracks must hit consecutively
		t.State = Deleted
		return
	}
	if t.Misses > tr.Cfg.MaxMisses {
		t.State = Deleted
	}
}

// assocCost blends IoU overlap with normalized center distance so a
// detection of the same object at a different box scale (e.g. the
// dark pipeline's lamp-pair expansion vs. the HOG window) still
// associates when its center stays close.
func assocCost(a, b img.Rect) float64 {
	iouCost := 1 - a.IoU(b)
	acx, acy := a.Center()
	bcx, bcy := b.Center()
	dx, dy := float64(acx-bcx), float64(acy-bcy)
	dist := math.Hypot(dx, dy)
	diag := math.Hypot(float64(a.W()+b.W())/2, float64(a.H()+b.H())/2)
	if diag <= 0 {
		return iouCost
	}
	distCost := dist / (1.5 * diag)
	if distCost > 1 {
		distCost = 1
	}
	return 0.5*iouCost + 0.5*distCost
}
