// Package track implements detection-by-tracking over the pipelines'
// outputs: a constant-velocity Kalman filter per object, Hungarian
// assignment between predictions and detections, and track lifecycle
// management. Several systems the paper builds on are
// detection+tracking designs (O'Malley et al. [3], Guo et al. [5],
// Chen et al. [6]); this package provides that layer and lets the
// benchmarks measure how much temporal smoothing buys on top of the
// per-frame detectors.
//
// lint:detpath
package track

import (
	"fmt"

	"advdet/internal/img"
)

// State vector layout: [cx, cy, w, h, vcx, vcy] — box center, size and
// center velocity, in pixels (per frame).
const (
	stateDim = 6
	measDim  = 4
)

// Kalman is a constant-velocity Kalman filter over a bounding box.
type Kalman struct {
	x [stateDim]float64           // state mean
	p [stateDim][stateDim]float64 // state covariance
	// Noise parameters.
	processNoise float64
	measNoise    float64
}

// NewKalman initializes a filter at the measured box with high
// velocity uncertainty.
func NewKalman(box img.Rect) *Kalman {
	k := &Kalman{processNoise: 1.0, measNoise: 2.0}
	cx, cy := float64(box.X0+box.X1)/2, float64(box.Y0+box.Y1)/2
	k.x = [stateDim]float64{cx, cy, float64(box.W()), float64(box.H()), 0, 0}
	for i := 0; i < stateDim; i++ {
		k.p[i][i] = 10
	}
	k.p[4][4], k.p[5][5] = 100, 100 // unknown velocity
	return k
}

// Predict advances the state one frame: positions move by velocity,
// covariance grows by process noise.
func (k *Kalman) Predict() {
	// x' = F x with F adding velocity into position.
	k.x[0] += k.x[4]
	k.x[1] += k.x[5]
	// P' = F P F^T + Q. With the sparse F this expands to shifting
	// the position/velocity cross terms.
	var np [stateDim][stateDim]float64
	f := identity()
	f[0][4] = 1
	f[1][5] = 1
	// np = F * P
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			var s float64
			for t := 0; t < stateDim; t++ {
				s += f[i][t] * k.p[t][j]
			}
			np[i][j] = s
		}
	}
	// P = np * F^T + Q
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			var s float64
			for t := 0; t < stateDim; t++ {
				s += np[i][t] * f[j][t]
			}
			k.p[i][j] = s
		}
		k.p[i][i] += k.processNoise
	}
}

// Update fuses a measured box into the state.
func (k *Kalman) Update(box img.Rect) {
	z := [measDim]float64{
		float64(box.X0+box.X1) / 2,
		float64(box.Y0+box.Y1) / 2,
		float64(box.W()),
		float64(box.H()),
	}
	// Innovation y = z - H x (H selects the first four states).
	var y [measDim]float64
	for i := 0; i < measDim; i++ {
		y[i] = z[i] - k.x[i]
	}
	// S = H P H^T + R is the top-left 4x4 of P plus measurement noise.
	var s [measDim][measDim]float64
	for i := 0; i < measDim; i++ {
		for j := 0; j < measDim; j++ {
			s[i][j] = k.p[i][j]
		}
		s[i][i] += k.measNoise
	}
	si, ok := invert4(s)
	if !ok {
		return // singular innovation covariance: skip the update
	}
	// K = P H^T S^-1 (stateDim x measDim).
	var gain [stateDim][measDim]float64
	for i := 0; i < stateDim; i++ {
		for j := 0; j < measDim; j++ {
			var sum float64
			for t := 0; t < measDim; t++ {
				sum += k.p[i][t] * si[t][j]
			}
			gain[i][j] = sum
		}
	}
	// x += K y
	for i := 0; i < stateDim; i++ {
		var sum float64
		for j := 0; j < measDim; j++ {
			sum += gain[i][j] * y[j]
		}
		k.x[i] += sum
	}
	// P = (I - K H) P : KH affects the first four columns of the
	// correction matrix.
	var kh [stateDim][stateDim]float64
	for i := 0; i < stateDim; i++ {
		for j := 0; j < measDim; j++ {
			kh[i][j] = gain[i][j]
		}
	}
	var np [stateDim][stateDim]float64
	for i := 0; i < stateDim; i++ {
		for j := 0; j < stateDim; j++ {
			var sum float64
			for t := 0; t < stateDim; t++ {
				c := kh[i][t]
				if i == t {
					c = 1 - c
				} else {
					c = -c
				}
				sum += c * k.p[t][j]
			}
			np[i][j] = sum
		}
	}
	k.p = np
}

// Box returns the current state as a rectangle.
func (k *Kalman) Box() img.Rect {
	w, h := k.x[2], k.x[3]
	if w < 1 {
		w = 1
	}
	if h < 1 {
		h = 1
	}
	return img.Rect{
		X0: int(k.x[0] - w/2), Y0: int(k.x[1] - h/2),
		X1: int(k.x[0] + w/2), Y1: int(k.x[1] + h/2),
	}
}

// Velocity returns the estimated center velocity in pixels/frame.
func (k *Kalman) Velocity() (vx, vy float64) { return k.x[4], k.x[5] }

func identity() [stateDim][stateDim]float64 {
	var m [stateDim][stateDim]float64
	for i := range m {
		m[i][i] = 1
	}
	return m
}

// invert4 inverts a 4x4 matrix by Gauss-Jordan elimination with
// partial pivoting.
func invert4(a [measDim][measDim]float64) ([measDim][measDim]float64, bool) {
	var aug [measDim][2 * measDim]float64
	for i := 0; i < measDim; i++ {
		copy(aug[i][:measDim], a[i][:])
		aug[i][measDim+i] = 1
	}
	for col := 0; col < measDim; col++ {
		// Pivot.
		piv := col
		for r := col + 1; r < measDim; r++ {
			if abs(aug[r][col]) > abs(aug[piv][col]) {
				piv = r
			}
		}
		if abs(aug[piv][col]) < 1e-12 {
			return a, false
		}
		aug[col], aug[piv] = aug[piv], aug[col]
		inv := 1 / aug[col][col]
		for j := 0; j < 2*measDim; j++ {
			aug[col][j] *= inv
		}
		for r := 0; r < measDim; r++ {
			if r == col {
				continue
			}
			f := aug[r][col]
			if f == 0 {
				continue
			}
			for j := 0; j < 2*measDim; j++ {
				aug[r][j] -= f * aug[col][j]
			}
		}
	}
	var out [measDim][measDim]float64
	for i := 0; i < measDim; i++ {
		copy(out[i][:], aug[i][measDim:])
	}
	return out, true
}

func abs(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}

// String summarizes the filter state.
func (k *Kalman) String() string {
	return fmt.Sprintf("box=%v v=(%.1f,%.1f)", k.Box(), k.x[4], k.x[5])
}
