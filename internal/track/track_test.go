package track

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"advdet/internal/img"
	"advdet/internal/pipeline"
)

func TestKalmanInitAtMeasurement(t *testing.T) {
	box := img.Rect{X0: 10, Y0: 20, X1: 30, Y1: 40}
	k := NewKalman(box)
	got := k.Box()
	if got.IoU(box) < 0.9 {
		t.Fatalf("initial box %v far from measurement %v", got, box)
	}
	vx, vy := k.Velocity()
	if vx != 0 || vy != 0 {
		t.Fatal("initial velocity not zero")
	}
}

func TestKalmanTracksConstantVelocity(t *testing.T) {
	// Feed a box moving +5 px/frame in x; after convergence the
	// predicted position must lead correctly.
	k := NewKalman(img.Rect{X0: 0, Y0: 0, X1: 20, Y1: 20})
	for i := 1; i <= 20; i++ {
		k.Predict()
		k.Update(img.Rect{X0: 5 * i, Y0: 0, X1: 5*i + 20, Y1: 20})
	}
	vx, vy := k.Velocity()
	if math.Abs(vx-5) > 0.8 || math.Abs(vy) > 0.5 {
		t.Fatalf("estimated velocity (%v,%v), want (5,0)", vx, vy)
	}
	// Coast: predictions keep moving without measurements.
	before := k.Box()
	k.Predict()
	after := k.Box()
	if after.X0 <= before.X0 {
		t.Fatal("prediction did not advance while coasting")
	}
}

func TestKalmanUpdateReducesUncertainty(t *testing.T) {
	k := NewKalman(img.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10})
	k.Predict()
	pBefore := k.p[0][0]
	k.Update(img.Rect{X0: 1, Y0: 0, X1: 11, Y1: 10})
	if k.p[0][0] >= pBefore {
		t.Fatalf("covariance did not shrink: %v -> %v", pBefore, k.p[0][0])
	}
}

func TestKalmanBoxNeverDegenerate(t *testing.T) {
	k := NewKalman(img.Rect{X0: 0, Y0: 0, X1: 2, Y1: 2})
	for i := 0; i < 50; i++ {
		k.Predict()
		k.Update(img.Rect{X0: 0, Y0: 0, X1: 1, Y1: 1})
	}
	if k.Box().Empty() {
		t.Fatal("box collapsed to empty")
	}
}

func TestInvert4RoundTrip(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var m [4][4]float64
		for i := range m {
			for j := range m[i] {
				m[i][j] = rng.Float64() * 4
			}
			m[i][i] += 5 // diagonally dominant: invertible
		}
		inv, ok := invert4(m)
		if !ok {
			return false
		}
		// m * inv must be ~identity.
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				var s float64
				for k := 0; k < 4; k++ {
					s += m[i][k] * inv[k][j]
				}
				want := 0.0
				if i == j {
					want = 1
				}
				if math.Abs(s-want) > 1e-8 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestInvert4Singular(t *testing.T) {
	var m [4][4]float64 // all zeros
	if _, ok := invert4(m); ok {
		t.Fatal("singular matrix inverted")
	}
}

func TestHungarianIdentity(t *testing.T) {
	cost := [][]float64{
		{0, 9, 9},
		{9, 0, 9},
		{9, 9, 0},
	}
	assign := Hungarian(cost)
	for i, j := range assign {
		if i != j {
			t.Fatalf("assign = %v", assign)
		}
	}
}

func TestHungarianAntiDiagonal(t *testing.T) {
	cost := [][]float64{
		{9, 9, 0},
		{9, 0, 9},
		{0, 9, 9},
	}
	assign := Hungarian(cost)
	want := []int{2, 1, 0}
	for i := range want {
		if assign[i] != want[i] {
			t.Fatalf("assign = %v, want %v", assign, want)
		}
	}
}

func TestHungarianOptimality(t *testing.T) {
	// Brute-force check on random 5x5 matrices.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5
		cost := make([][]float64, n)
		for i := range cost {
			cost[i] = make([]float64, n)
			for j := range cost[i] {
				cost[i][j] = float64(rng.Intn(50))
			}
		}
		assign := Hungarian(cost)
		got := 0.0
		seen := map[int]bool{}
		for i, j := range assign {
			got += cost[i][j]
			if seen[j] {
				return false // not a permutation
			}
			seen[j] = true
		}
		best := math.Inf(1)
		perm := []int{0, 1, 2, 3, 4}
		var rec func(k int, cur float64)
		rec = func(k int, cur float64) {
			if cur >= best {
				return
			}
			if k == n {
				best = cur
				return
			}
			for i := k; i < n; i++ {
				perm[k], perm[i] = perm[i], perm[k]
				rec(k+1, cur+cost[k][perm[k]])
				perm[k], perm[i] = perm[i], perm[k]
			}
		}
		rec(0, 0)
		return math.Abs(got-best) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHungarianEmpty(t *testing.T) {
	if got := Hungarian(nil); got != nil {
		t.Fatal("empty problem should return nil")
	}
}

func det(box img.Rect) pipeline.Detection {
	return pipeline.Detection{Box: box, Score: 1, Kind: pipeline.KindVehicle}
}

func TestTrackerConfirmsAfterHits(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	box := img.Rect{X0: 10, Y0: 10, X1: 40, Y1: 40}
	for i := 0; i < 2; i++ {
		tr.Update([]pipeline.Detection{det(box)})
		if len(tr.Confirmed()) != 0 {
			t.Fatal("confirmed too early")
		}
	}
	tr.Update([]pipeline.Detection{det(box)})
	if len(tr.Confirmed()) != 1 {
		t.Fatalf("confirmed = %d after 3 hits", len(tr.Confirmed()))
	}
}

func TestTrackerSurvivesSingleDropout(t *testing.T) {
	// The reconfiguration scenario: one vehicle frame lost; a
	// confirmed track must coast through it and re-associate.
	tr := NewTracker(DefaultConfig())
	for i := 0; i < 5; i++ {
		tr.Update([]pipeline.Detection{det(img.Rect{X0: 10 + 2*i, Y0: 10, X1: 40 + 2*i, Y1: 40})})
	}
	id := tr.Confirmed()[0].ID
	tr.Update(nil) // dropped frame
	if len(tr.Confirmed()) != 1 {
		t.Fatal("track deleted during one-frame dropout")
	}
	tr.Update([]pipeline.Detection{det(img.Rect{X0: 22, Y0: 10, X1: 52, Y1: 40})})
	conf := tr.Confirmed()
	if len(conf) != 1 || conf[0].ID != id {
		t.Fatalf("track identity lost across dropout: %+v", conf)
	}
}

func TestTrackerDeletesAfterMissBudget(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MaxMisses = 2
	tr := NewTracker(cfg)
	box := img.Rect{X0: 10, Y0: 10, X1: 40, Y1: 40}
	for i := 0; i < 4; i++ {
		tr.Update([]pipeline.Detection{det(box)})
	}
	for i := 0; i < 3; i++ {
		tr.Update(nil)
	}
	if n := len(tr.Tracks()); n != 0 {
		t.Fatalf("%d tracks survive past the miss budget", n)
	}
}

func TestTrackerSeparatesTwoObjects(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	a := img.Rect{X0: 0, Y0: 0, X1: 30, Y1: 30}
	b := img.Rect{X0: 200, Y0: 0, X1: 230, Y1: 30}
	for i := 0; i < 5; i++ {
		tr.Update([]pipeline.Detection{
			det(img.Rect{X0: a.X0 + 3*i, Y0: 0, X1: a.X1 + 3*i, Y1: 30}),
			det(img.Rect{X0: b.X0 - 3*i, Y0: 0, X1: b.X1 - 3*i, Y1: 30}),
		})
	}
	conf := tr.Confirmed()
	if len(conf) != 2 {
		t.Fatalf("confirmed = %d, want 2", len(conf))
	}
	if conf[0].ID == conf[1].ID {
		t.Fatal("two objects share an ID")
	}
	// Velocities must have opposite signs.
	v0, _ := conf[0].KF.Velocity()
	v1, _ := conf[1].KF.Velocity()
	if v0*v1 >= 0 {
		t.Fatalf("velocities %v, %v should be opposite", v0, v1)
	}
}

func TestTrackerKindGating(t *testing.T) {
	// A pedestrian detection must not be absorbed into a vehicle
	// track even at perfect overlap.
	tr := NewTracker(DefaultConfig())
	box := img.Rect{X0: 10, Y0: 10, X1: 40, Y1: 40}
	for i := 0; i < 4; i++ {
		tr.Update([]pipeline.Detection{det(box)})
	}
	tr.Update([]pipeline.Detection{{Box: box, Score: 1, Kind: pipeline.KindPedestrian}})
	kinds := map[pipeline.Kind]int{}
	for _, trk := range tr.Tracks() {
		kinds[trk.Kind]++
	}
	if kinds[pipeline.KindPedestrian] != 1 {
		t.Fatal("pedestrian detection did not spawn its own track")
	}
}

func TestTrackerNoDuplicateTracksForOneObject(t *testing.T) {
	tr := NewTracker(DefaultConfig())
	box := img.Rect{X0: 50, Y0: 50, X1: 90, Y1: 90}
	for i := 0; i < 10; i++ {
		tr.Update([]pipeline.Detection{det(box)})
	}
	if n := len(tr.Tracks()); n != 1 {
		t.Fatalf("%d tracks for one steady object", n)
	}
}

func TestTrackStateString(t *testing.T) {
	if Tentative.String() != "tentative" || Confirmed.String() != "confirmed" || Deleted.String() != "deleted" {
		t.Fatal("state strings wrong")
	}
}
