// Package synth generates the synthetic datasets and scenes that stand
// in for the UPM day vehicle dataset, the SYSU nighttime vehicle
// dataset and the iROADS dark sequences used in the paper. Every
// generator is driven by an explicit seed so that training sets, test
// sets and whole drive scenarios are exactly reproducible.
//
// The generators are built around one canonical rear-view vehicle
// geometry rendered under three lighting regimes:
//
//   - Day: full contrast, hard shape boundaries, shadow under the car,
//     unlit lamps — the regime where HOG shape features carry all the
//     signal (UPM-like).
//   - Dusk: reduced contrast, softened boundaries, lit taillights —
//     shape features still present but weaker, lamp features added
//     (SYSU well-lit subset-like).
//   - Dark: almost no shape signal, only colored light blobs
//     (taillights, road lights, oncoming headlights) on a black road
//     (SYSU very-dark / iROADS-like).
package synth

import "math"

// RNG is a SplitMix64 pseudo-random generator: tiny, fast, and with a
// trivially serializable 8-byte state, so every dataset and scene in
// the repo is reproducible from a single uint64 seed.
type RNG struct {
	state uint64
	// spare holds a cached second normal deviate from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform value in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		// lint:invariant documented contract: bound must be positive
		panic("synth: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform value in [lo, hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// IntRange returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) IntRange(lo, hi int) int {
	if hi < lo {
		// lint:invariant documented contract: hi must not be below lo
		panic("synth: IntRange with hi < lo")
	}
	return lo + r.Intn(hi-lo+1)
}

// Norm returns a standard normal deviate (Box-Muller).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	for {
		u := r.Range(-1, 1)
		v := r.Range(-1, 1)
		s := u*u + v*v
		if s > 0 && s < 1 {
			m := math.Sqrt(-2 * math.Log(s) / s)
			r.spare = v * m
			r.hasSpare = true
			return u * m
		}
	}
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Split returns a new independent generator derived from this one, so
// sub-tasks (e.g. each crop of a dataset) can be generated in isolation.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }
