package synth

import (
	"testing"

	"advdet/internal/img"
)

func TestPedestrianDatasetCounts(t *testing.T) {
	d := PedestrianDataset(1, 32, 64, 7, 5, Dusk)
	if len(d.Pos) != 7 || len(d.Neg) != 5 {
		t.Fatalf("counts %d/%d", len(d.Pos), len(d.Neg))
	}
	if d.Name != "pedestrian-dusk" {
		t.Fatalf("name %q", d.Name)
	}
	for _, p := range d.Pos {
		if p.W != 32 || p.H != 64 {
			t.Fatal("wrong crop size")
		}
	}
}

func TestAnimalDatasetCounts(t *testing.T) {
	d := AnimalDataset(2, 64, 32, 4, 6, Day)
	if len(d.Pos) != 4 || len(d.Neg) != 6 {
		t.Fatalf("counts %d/%d", len(d.Pos), len(d.Neg))
	}
	if d.Name != "animal-day" {
		t.Fatalf("name %q", d.Name)
	}
}

func TestDefaultSceneConfigPerCondition(t *testing.T) {
	day := DefaultSceneConfig(320, 180, Day)
	if day.RoadLights != 0 || day.OncomingHeadlights != 0 {
		t.Fatal("day scenes should have no artificial lights")
	}
	dark := DefaultSceneConfig(320, 180, Dark)
	if dark.RoadLights == 0 || dark.OncomingHeadlights == 0 {
		t.Fatal("dark scenes need road lights and oncoming traffic")
	}
}

func TestLuxAtTransitionBlends(t *testing.T) {
	// The first frame of a new segment blends the two regimes — the
	// sensor does not step instantaneously.
	s := TunnelTransit(3, 64, 36, 10)
	// Frame 40 is the first tunnel frame (4 s at 10 fps).
	boundary := s.LuxAt(40)
	deepTunnel := 0.0
	for i := 45; i < 65; i++ {
		deepTunnel += s.LuxAt(i)
	}
	deepTunnel /= 20
	if boundary <= deepTunnel {
		t.Fatalf("boundary lux %v should exceed deep-tunnel mean %v (blended with day)",
			boundary, deepTunnel)
	}
}

func TestTaillightWindowSetBalanced(t *testing.T) {
	X, labels := TaillightWindowSet(5, 7)
	if len(X) != 28 || len(labels) != 28 {
		t.Fatalf("set size %d/%d", len(X), len(labels))
	}
	counts := map[int]int{}
	for _, l := range labels {
		counts[l]++
	}
	for c := 0; c < 4; c++ {
		if counts[c] != 7 {
			t.Fatalf("class %d has %d samples", c, counts[c])
		}
	}
	for _, x := range X {
		if len(x) != 81 {
			t.Fatal("window length != 81")
		}
		for _, v := range x {
			if v != 0 && v != 1 {
				t.Fatal("window values must be binary")
			}
		}
	}
}

func TestTaillightWindowClassSizesOrdered(t *testing.T) {
	// Mean foreground mass must grow with the size class.
	mean := func(class int) float64 {
		rng := NewRNG(9)
		var sum float64
		for i := 0; i < 50; i++ {
			for _, v := range TaillightWindow(rng.Split(), class) {
				sum += v
			}
		}
		return sum / 50
	}
	small, med, large := mean(WindowSmall), mean(WindowMedium), mean(WindowLarge)
	if !(small < med && med < large) {
		t.Fatalf("size ordering violated: %v %v %v", small, med, large)
	}
}

func TestBlitClipsAtBorders(t *testing.T) {
	dst := img.NewRGB(10, 10)
	src := img.NewRGB(6, 6)
	src.Fill(200, 0, 0)
	blit(dst, src, 7, 7)  // overlaps bottom-right corner
	blit(dst, src, -3, -3) // overlaps top-left corner
	if r, _, _ := dst.At(9, 9); r != 200 {
		t.Fatal("bottom-right blit lost")
	}
	if r, _, _ := dst.At(0, 0); r != 200 {
		t.Fatal("top-left blit lost")
	}
	if r, _, _ := dst.At(5, 5); r != 0 {
		t.Fatal("center should be untouched")
	}
}

func TestVehicleCropSmallSizes(t *testing.T) {
	// Tiny crops (distant vehicles in scenes) must render without
	// panicking in every condition.
	for _, c := range []Condition{Day, Dusk, Dark} {
		for _, sz := range []int{16, 17, 24} {
			m := VehicleCrop(NewRNG(uint64(sz)), sz, sz, c)
			if m.W != sz || m.H != sz {
				t.Fatalf("size %d condition %v: got %dx%d", sz, c, m.W, m.H)
			}
		}
	}
}

func TestNegativeCropAllKinds(t *testing.T) {
	// Exercise every negative kind across conditions.
	for s := uint64(0); s < 30; s++ {
		for _, c := range []Condition{Day, Dusk, Dark} {
			m := NegativeCrop(NewRNG(1000+s), 48, 48, c)
			if m.W != 48 || m.H != 48 {
				t.Fatal("wrong negative crop size")
			}
		}
	}
}
