package synth

import "advdet/internal/img"

// Dataset is a labeled set of fixed-size crops for classifier training
// and evaluation. Pos crops contain a vehicle; Neg crops do not.
type Dataset struct {
	Name string
	W, H int
	Pos  []*img.Gray
	Neg  []*img.Gray
	// VeryDark marks, per positive index, crops rendered in the very
	// dark regime. The paper excludes these from the "subset of SYSU"
	// column of Table I and routes them to the dark pipeline instead.
	VeryDark []bool
}

// Len returns the total number of crops.
func (d *Dataset) Len() int { return len(d.Pos) + len(d.Neg) }

// SubsetWithoutVeryDark returns a view of d with the very dark
// positives removed — the third test scenario of Table I.
func (d *Dataset) SubsetWithoutVeryDark() *Dataset {
	out := &Dataset{Name: d.Name + "-subset", W: d.W, H: d.H, Neg: d.Neg}
	for i, p := range d.Pos {
		if i < len(d.VeryDark) && d.VeryDark[i] {
			continue
		}
		out.Pos = append(out.Pos, p)
		out.VeryDark = append(out.VeryDark, false)
	}
	return out
}

// grayCrop renders one crop and converts it to grayscale for HOG.
func grayVehicle(rng *RNG, w, h int, c Condition) *img.Gray {
	return img.RGBToGray(VehicleCrop(rng, w, h, c))
}

func grayNegative(rng *RNG, w, h int, c Condition) *img.Gray {
	return img.RGBToGray(NegativeCrop(rng, w, h, c))
}

// DayDataset builds a UPM-like day vehicle dataset with nPos positive
// and nNeg negative crops of size w x h.
func DayDataset(seed uint64, w, h, nPos, nNeg int) *Dataset {
	rng := NewRNG(seed)
	d := &Dataset{Name: "day", W: w, H: h}
	for i := 0; i < nPos; i++ {
		d.Pos = append(d.Pos, grayVehicle(rng.Split(), w, h, Day))
		d.VeryDark = append(d.VeryDark, false)
	}
	for i := 0; i < nNeg; i++ {
		d.Neg = append(d.Neg, grayNegative(rng.Split(), w, h, Day))
	}
	return d
}

// DuskDataset builds a SYSU-like nighttime vehicle dataset: positives
// and negatives are rendered at dusk, and a fraction darkFrac of the
// positives are rendered in the very dark regime — the images the
// paper notes "are taken in very dark environment" and later excludes
// to form the subset column of Table I.
func DuskDataset(seed uint64, w, h, nPos, nNeg int, darkFrac float64) *Dataset {
	rng := NewRNG(seed)
	d := &Dataset{Name: "dusk", W: w, H: h}
	nDark := int(float64(nPos) * darkFrac)
	for i := 0; i < nPos; i++ {
		cond := Dusk
		veryDark := i < nDark
		if veryDark {
			cond = Dark
		}
		d.Pos = append(d.Pos, grayVehicle(rng.Split(), w, h, cond))
		d.VeryDark = append(d.VeryDark, veryDark)
	}
	for i := 0; i < nNeg; i++ {
		d.Neg = append(d.Neg, grayNegative(rng.Split(), w, h, Dusk))
	}
	return d
}

// DarkDataset builds the very-dark evaluation set for the DBN-based
// dark pipeline: full RGB crops (the dark pipeline needs chroma),
// positives containing a taillight pair and negatives containing
// confusing light sources only.
type DarkDataset struct {
	Name string
	W, H int
	Pos  []*img.RGB
	Neg  []*img.RGB
}

// NewDarkDataset renders nPos positive and nNeg negative RGB crops in
// the very dark regime.
func NewDarkDataset(seed uint64, w, h, nPos, nNeg int) *DarkDataset {
	rng := NewRNG(seed)
	d := &DarkDataset{Name: "dark", W: w, H: h}
	for i := 0; i < nPos; i++ {
		d.Pos = append(d.Pos, VehicleCrop(rng.Split(), w, h, Dark))
	}
	for i := 0; i < nNeg; i++ {
		d.Neg = append(d.Neg, NegativeCrop(rng.Split(), w, h, Dark))
	}
	return d
}

// PedestrianDataset builds positive pedestrian crops and negative
// background crops for the static-path detector.
func PedestrianDataset(seed uint64, w, h, nPos, nNeg int, c Condition) *Dataset {
	rng := NewRNG(seed)
	d := &Dataset{Name: "pedestrian-" + c.String(), W: w, H: h}
	for i := 0; i < nPos; i++ {
		d.Pos = append(d.Pos, img.RGBToGray(PedestrianCrop(rng.Split(), w, h, c)))
		d.VeryDark = append(d.VeryDark, false)
	}
	for i := 0; i < nNeg; i++ {
		d.Neg = append(d.Neg, grayNegative(rng.Split(), w, h, c))
	}
	return d
}

// TableICounts are the test-set sizes from Table I of the paper, used
// by the benchmark harness so the reproduced rows have the same
// denominators as the published ones.
//
// Day test (UPM): 200 positives (195 TP + 5 FN under the day model),
// 25 negatives (21 TN + 4 FP). Dusk test (SYSU): 1063 positives and
// 752 negatives; 100 positives are very dark and excluded from the
// subset columns.
var TableICounts = struct {
	DayPos, DayNeg   int
	DuskPos, DuskNeg int
	DuskVeryDark     int
}{
	DayPos: 200, DayNeg: 25,
	DuskPos: 1063, DuskNeg: 752,
	DuskVeryDark: 100,
}

// TableIDayTest builds the day test set with the paper's counts.
func TableIDayTest(seed uint64, w, h int) *Dataset {
	return DayDataset(seed, w, h, TableICounts.DayPos, TableICounts.DayNeg)
}

// TableIDuskTest builds the dusk test set with the paper's counts,
// including the very dark positives.
func TableIDuskTest(seed uint64, w, h int) *Dataset {
	frac := float64(TableICounts.DuskVeryDark) / float64(TableICounts.DuskPos)
	return DuskDataset(seed, w, h, TableICounts.DuskPos, TableICounts.DuskNeg, frac)
}
