package synth

import (
	"advdet/internal/img"
)

// Condition is the ambient lighting regime the paper's adaptive system
// switches on: day, dusk (moderate light, lamps lit) and dark.
type Condition int

const (
	Day Condition = iota
	Dusk
	Dark
)

func (c Condition) String() string {
	switch c {
	case Day:
		return "day"
	case Dusk:
		return "dusk"
	case Dark:
		return "dark"
	}
	return "unknown"
}

// conditionParams captures how a lighting regime transforms the
// canonical scene: an ambient multiplier applied to every surface
// color, whether the vehicle lamps are lit, and sensor noise.
type conditionParams struct {
	ambient    float64 // surface reflectance multiplier
	lampsOn    bool
	noiseSigma float64
	skyTop     [3]uint8
	skyBottom  [3]uint8
	road       [3]uint8
}

func params(c Condition, rng *RNG) conditionParams {
	switch c {
	case Day:
		return conditionParams{
			ambient:    rng.Range(0.85, 1.0),
			lampsOn:    false,
			noiseSigma: 4,
			skyTop:     [3]uint8{120, 170, 230},
			skyBottom:  [3]uint8{190, 210, 235},
			road:       [3]uint8{120, 120, 125},
		}
	case Dusk:
		return conditionParams{
			ambient:    rng.Range(0.16, 0.3),
			lampsOn:    true,
			noiseSigma: 9, // street-lit scenes force high sensor gain

			skyTop:    [3]uint8{40, 45, 80},
			skyBottom: [3]uint8{110, 80, 90},
			road:      [3]uint8{70, 70, 78},
		}
	default: // Dark
		return conditionParams{
			ambient:    rng.Range(0.015, 0.05),
			lampsOn:    true,
			noiseSigma: 6, // high-gain night sensor noise

			skyTop:    [3]uint8{4, 4, 10},
			skyBottom: [3]uint8{8, 8, 14},
			road:      [3]uint8{18, 18, 22},
		}
	}
}

func scale(v uint8, a float64) uint8 {
	s := float64(v) * a
	if s > 255 {
		s = 255
	}
	return uint8(s)
}

func scale3(c [3]uint8, a float64) (uint8, uint8, uint8) {
	return scale(c[0], a), scale(c[1], a), scale(c[2], a)
}

// addNoise perturbs every channel with Gaussian sensor noise.
func addNoise(m *img.RGB, sigma float64, rng *RNG) {
	if sigma <= 0 {
		return
	}
	for i := range m.Pix {
		v := float64(m.Pix[i]) + rng.Norm()*sigma
		if v < 0 {
			v = 0
		} else if v > 255 {
			v = 255
		}
		m.Pix[i] = uint8(v)
	}
}

// bodyPalette is the set of base vehicle body colors; the renderer
// jitters each channel so no two cars are identical.
var bodyPalette = [][3]uint8{
	{200, 40, 40},   // red
	{40, 60, 200},   // blue
	{220, 220, 225}, // white
	{35, 35, 38},    // black
	{150, 150, 155}, // silver
	{30, 120, 50},   // green
	{200, 170, 60},  // yellow
}

// VehicleCrop renders a rear view of a vehicle filling most of a
// w x h crop under the given condition, with pose and color jitter.
// This is the positive-sample generator for the UPM-like (day) and
// SYSU-like (dusk/dark) classification datasets of Table I.
func VehicleCrop(rng *RNG, w, h int, c Condition) *img.RGB {
	return renderVehicle(rng, w, h, c, true)
}

// renderVehicle draws the canonical rear view. lampsWork selects
// whether the car's taillights can be lit at all: negatives rendered
// from parked/unlit vehicles pass false, so at dusk and in the dark
// they show a body silhouette without the lamp signature.
func renderVehicle(rng *RNG, w, h int, c Condition, lampsWork bool) *img.RGB {
	p := params(c, rng)
	if !lampsWork {
		p.lampsOn = false
	}
	// The SYSU-like dusk set is heterogeneous, as the paper notes
	// ("images are taken from near cars and in the urban area with
	// reasonable lighting"): a well-lit near-car sub-population mixes
	// with deep night-urban captures. The bright sub-population is
	// what a day-trained model can still partially detect.
	duskBright := c == Dusk && rng.Bool(0.6)
	if duskBright {
		p.ambient = rng.Range(0.45, 0.65)
		p.noiseSigma = 6
		p.skyTop = [3]uint8{90, 95, 135}
		p.skyBottom = [3]uint8{150, 130, 130}
		p.road = [3]uint8{100, 100, 106}
	}
	m := img.NewRGB(w, h)

	// Background: horizon splitting sky and road.
	horizon := int(float64(h) * rng.Range(0.25, 0.4))
	for y := 0; y < h; y++ {
		var r, g, b uint8
		if y < horizon {
			t := float64(y) / float64(horizon)
			r = lerp8(p.skyTop[0], p.skyBottom[0], t)
			g = lerp8(p.skyTop[1], p.skyBottom[1], t)
			b = lerp8(p.skyTop[2], p.skyBottom[2], t)
		} else {
			r, g, b = p.road[0], p.road[1], p.road[2]
		}
		for x := 0; x < w; x++ {
			m.Set(x, y, r, g, b)
		}
	}

	// Vehicle geometry with jitter. Day and dusk crops are framed the
	// way detection-dataset crops are: the car fills most of the patch.
	// Very dark captures are not framed — the camera sees lamps at any
	// range and offset — so the dark regime places a smaller body
	// anywhere in the crop (this unconstrained geometry is what defeats
	// a rigid HOG template at night, motivating the dark pipeline).
	var bw, bh, bx, by int
	if c == Dark {
		bw = int(float64(w) * rng.Range(0.28, 0.55))
		bh = int(float64(bw) * rng.Range(0.8, 1.05))
		bx = rng.IntRange(w/16, max(w/16, w-bw-w/16))
		yLo, yHi := h/3, h-bh-h/12
		if yHi < yLo {
			yLo = yHi
		}
		if yLo < 0 {
			yLo = 0
		}
		by = rng.IntRange(yLo, max(yLo, yHi))
	} else if c == Dusk && !duskBright {
		// Deep night-urban crops are framed tighter on the car rear
		// than UPM day crops.
		bw = int(float64(w) * rng.Range(0.68, 0.9))
		bh = int(float64(h) * rng.Range(0.48, 0.66))
		bx = (w-bw)/2 + rng.IntRange(-w/24, w/24)
		by = h - bh - int(float64(h)*rng.Range(0.1, 0.2))
	} else {
		// UPM-like day crops keep road/sky context around the car.
		bw = int(float64(w) * rng.Range(0.55, 0.78))
		bh = int(float64(h) * rng.Range(0.42, 0.58))
		bx = (w-bw)/2 + rng.IntRange(-w/16, w/16)
		by = h - bh - int(float64(h)*rng.Range(0.06, 0.14))
	}
	body := img.Rect{X0: bx, Y0: by, X1: bx + bw, Y1: by + bh}

	base := bodyPalette[rng.Intn(len(bodyPalette))]
	jit := func(v uint8) uint8 {
		j := int(v) + rng.IntRange(-18, 18)
		if j < 0 {
			j = 0
		} else if j > 255 {
			j = 255
		}
		return uint8(j)
	}
	br, bg, bb := jit(base[0]), jit(base[1]), jit(base[2])

	// Shadow under the car: a strong day cue, almost invisible at night.
	shadowA := p.ambient * 0.25
	sr, sg, sb := scale(p.road[0], shadowA+0.1), scale(p.road[1], shadowA+0.1), scale(p.road[2], shadowA+0.1)
	img.FillRect(m, img.Rect{X0: body.X0 - 2, Y0: body.Y1 - 2, X1: body.X1 + 2, Y1: body.Y1 + h/16 + 2}, sr, sg, sb)

	// Body.
	cr, cg, cb := scale(br, p.ambient), scale(bg, p.ambient), scale(bb, p.ambient)
	img.FillRect(m, body, cr, cg, cb)

	// Rear window: dark band in the upper body.
	win := img.Rect{
		X0: body.X0 + bw/8, Y0: body.Y0 + bh/12,
		X1: body.X1 - bw/8, Y1: body.Y0 + bh*2/5,
	}
	wr, wg, wb := scale(40, p.ambient), scale(45, p.ambient), scale(55, p.ambient)
	img.FillRect(m, win, wr, wg, wb)

	// Bumper band.
	bmp := img.Rect{X0: body.X0, Y0: body.Y1 - bh/6, X1: body.X1, Y1: body.Y1 - bh/12}
	img.FillRect(m, bmp, scale(170, p.ambient), scale(170, p.ambient), scale(175, p.ambient))

	// License plate.
	pw := bw / 5
	plate := img.Rect{X0: (body.X0+body.X1)/2 - pw/2, Y0: body.Y1 - bh/4, X1: (body.X0+body.X1)/2 + pw/2, Y1: body.Y1 - bh/6}
	img.FillRect(m, plate, scale(230, p.ambient), scale(230, p.ambient), scale(210, p.ambient))

	// Wheels peeking under the body.
	wh := h / 10
	img.FillEllipse(m, img.Rect{X0: body.X0 + bw/12, Y0: body.Y1 - wh/2, X1: body.X0 + bw/12 + wh, Y1: body.Y1 + wh/2}, 15, 15, 15)
	img.FillEllipse(m, img.Rect{X0: body.X1 - bw/12 - wh, Y0: body.Y1 - wh/2, X1: body.X1 - bw/12, Y1: body.Y1 + wh/2}, 15, 15, 15)

	// Taillights: unlit dark red by day, saturated bright red when on.
	// Long night exposures bloom the lamps well past their physical
	// size.
	bloom := 1.0
	switch c {
	case Dusk:
		bloom = rng.Range(1.2, 1.6)
	case Dark:
		bloom = rng.Range(1.3, 2.0)
	}
	lw := int(float64(bw) * rng.Range(0.12, 0.17) * bloom)
	lh := int(float64(bh) * rng.Range(0.10, 0.16) * bloom)
	ly := body.Y0 + bh/2 + rng.IntRange(-bh/12, bh/12)
	left := img.Rect{X0: body.X0 + bw/20, Y0: ly, X1: body.X0 + bw/20 + lw, Y1: ly + lh}
	right := img.Rect{X0: body.X1 - bw/20 - lw, Y0: ly, X1: body.X1 - bw/20, Y1: ly + lh}
	if p.lampsOn {
		drawGlowingLamp(m, left, 255, 40, 30, rng)
		drawGlowingLamp(m, right, 255, 40, 30, rng)
		// Lit lamps reflect off the road surface below the car — a
		// lamp-correlated cue present only at night.
		for _, lamp := range []img.Rect{left, right} {
			refl := img.Rect{
				X0: lamp.X0 + lamp.W()/4, Y0: body.Y1 + 1,
				X1: lamp.X1 - lamp.W()/4, Y1: body.Y1 + 1 + 2*lh,
			}
			img.FillRect(m, refl.Intersect(img.Rect{X0: 0, Y0: 0, X1: w, Y1: h}), 90, 18, 14)
		}
	} else {
		// Unlit lamps are tinted plastic reflecting the body's
		// illumination: only mildly darker/redder than the body, so
		// they do not mimic a lit lamp's strong blob gradients.
		blend := func(body, lamp uint8) uint8 { return uint8((4*int(body) + int(lamp)) / 5) }
		ur, ug, ub := blend(cr, scale(120, p.ambient)), blend(cg, scale(20, p.ambient)), blend(cb, scale(20, p.ambient))
		img.FillEllipse(m, left, ur, ug, ub)
		img.FillEllipse(m, right, ur, ug, ub)
	}

	addNoise(m, p.noiseSigma, rng)
	return m
}

// drawGlowingLamp fills a bright lamp ellipse and a soft halo around
// it, the bloom a real sensor records around saturated light sources.
func drawGlowingLamp(m *img.RGB, r img.Rect, lr, lg, lb uint8, rng *RNG) {
	halo := img.Rect{X0: r.X0 - r.W()/2, Y0: r.Y0 - r.H()/2, X1: r.X1 + r.W()/2, Y1: r.Y1 + r.H()/2}
	img.FillEllipse(m, halo, lr/3, lg/3, lb/3)
	img.FillEllipse(m, r, lr, lg, lb)
	// Saturated core: the lamp color bleached toward white, so a red
	// lamp keeps red chroma while a white lamp stays neutral.
	bleach := func(v uint8) uint8 { return uint8(int(v) + (255-int(v))*3/5) }
	core := img.Rect{X0: r.X0 + r.W()/4, Y0: r.Y0 + r.H()/4, X1: r.X1 - r.W()/4, Y1: r.Y1 - r.H()/4}
	img.FillEllipse(m, core, bleach(lr), bleach(lg), bleach(lb))
	_ = rng
}

// NegativeCrop renders a non-vehicle patch under the given condition:
// empty road with lane markings, roadside structure, vegetation, or —
// under dusk/dark — confusing light sources that are not taillight
// pairs (single red lights, white street lights, oncoming headlights).
func NegativeCrop(rng *RNG, w, h int, c Condition) *img.RGB {
	// Night urban scenes (SYSU-like) are full of parked, unlit
	// vehicles, which are negatives for "vehicle ahead" detection.
	// Their presence is what forces a dusk-trained classifier to rely
	// on the taillight signature rather than body shape alone.
	if c != Day && rng.Bool(0.7) {
		return renderVehicle(rng, w, h, c, false)
	}
	p := params(c, rng)
	m := img.NewRGB(w, h)

	kind := rng.Intn(4)
	// Base: road surface.
	rr, rg, rb := p.road[0], p.road[1], p.road[2]
	m.Fill(rr, rg, rb)

	switch kind {
	case 0: // empty road with a lane marking
		lm := img.Rect{X0: w/2 - w/24, Y0: 0, X1: w/2 + w/24, Y1: h}
		img.FillRect(m, lm, scale(210, p.ambient), scale(210, p.ambient), scale(190, p.ambient))
	case 1: // roadside structure: stacked rectangles (building / barrier)
		n := rng.IntRange(2, 5)
		for i := 0; i < n; i++ {
			x0 := rng.Intn(w)
			y0 := rng.Intn(h)
			rc := img.Rect{X0: x0, Y0: y0, X1: x0 + rng.IntRange(w/8, w/2), Y1: y0 + rng.IntRange(h/8, h/2)}
			v := uint8(rng.IntRange(60, 200))
			img.FillRect(m, rc, scale(v, p.ambient), scale(v, p.ambient), scale(v, p.ambient))
		}
	case 2: // vegetation: random ellipses
		n := rng.IntRange(3, 7)
		for i := 0; i < n; i++ {
			x0 := rng.Intn(w)
			y0 := rng.Intn(h)
			rc := img.Rect{X0: x0, Y0: y0, X1: x0 + rng.IntRange(w/6, w/2), Y1: y0 + rng.IntRange(h/6, h/2)}
			img.FillEllipse(m, rc, scale(uint8(rng.IntRange(20, 60)), p.ambient), scale(uint8(rng.IntRange(80, 140)), p.ambient), scale(uint8(rng.IntRange(20, 60)), p.ambient))
		}
	default: // textured gradient background
		for y := 0; y < h; y++ {
			v := uint8(float64(y) / float64(h) * 160)
			for x := 0; x < w; x++ {
				m.Set(x, y, scale(v, p.ambient), scale(v, p.ambient), scale(v+20, p.ambient))
			}
		}
	}

	// Confusing lights at dusk/dark: never a level red pair.
	if p.lampsOn && rng.Bool(0.6) {
		switch rng.Intn(3) {
		case 0: // white street light, high in the patch
			lr := img.Rect{X0: rng.Intn(w - w/8), Y0: rng.Intn(h / 3), X1: 0, Y1: 0}
			lr.X1, lr.Y1 = lr.X0+w/10, lr.Y0+h/12
			drawGlowingLamp(m, lr, 250, 245, 225, rng)
		case 1: // single red light (one lamp, no partner)
			lr := img.Rect{X0: rng.Intn(w - w/8), Y0: rng.Intn(h - h/8), X1: 0, Y1: 0}
			lr.X1, lr.Y1 = lr.X0+w/12, lr.Y0+h/14
			drawGlowingLamp(m, lr, 255, 40, 30, rng)
		default: // oncoming headlight pair (white, chroma gate rejects)
			y0 := rng.Intn(h - h/6)
			x0 := rng.Intn(w / 2)
			sep := rng.IntRange(w/5, w/3)
			a := img.Rect{X0: x0, Y0: y0, X1: x0 + w/12, Y1: y0 + h/14}
			b := img.Rect{X0: x0 + sep, Y0: y0, X1: x0 + sep + w/12, Y1: y0 + h/14}
			drawGlowingLamp(m, a, 255, 250, 235, rng)
			drawGlowingLamp(m, b, 255, 250, 235, rng)
		}
	}

	addNoise(m, p.noiseSigma, rng)
	return m
}

// PedestrianCrop renders an upright pedestrian for the static-path
// detector: head, torso, legs against road background. Pedestrians are
// rendered with enough contrast in every condition because the paper's
// static pipeline runs unchanged day and night.
func PedestrianCrop(rng *RNG, w, h int, c Condition) *img.RGB {
	p := params(c, rng)
	// Pedestrian detection operates on intensity; keep ambient from
	// crushing the figure completely even in the dark (street lighting).
	amb := p.ambient
	if amb < 0.25 {
		amb = 0.25
	}
	m := img.NewRGB(w, h)
	m.Fill(p.road[0], p.road[1], p.road[2])

	cx := w/2 + rng.IntRange(-w/10, w/10)
	top := int(float64(h) * rng.Range(0.06, 0.14))
	bottom := h - int(float64(h)*rng.Range(0.04, 0.1))
	ph := bottom - top
	headR := ph / 8
	tone := uint8(rng.IntRange(120, 220))
	tr, tg, tb := scale(tone, amb), scale(uint8(int(tone)*2/3), amb), scale(uint8(int(tone)/2), amb)

	// Head.
	img.FillEllipse(m, img.Rect{X0: cx - headR, Y0: top, X1: cx + headR, Y1: top + 2*headR}, scale(200, amb), scale(170, amb), scale(150, amb))
	// Torso.
	tw := int(float64(w) * rng.Range(0.22, 0.3))
	torso := img.Rect{X0: cx - tw/2, Y0: top + 2*headR, X1: cx + tw/2, Y1: top + ph*3/5}
	img.FillRect(m, torso, tr, tg, tb)
	// Legs.
	lw := tw / 3
	gap := rng.IntRange(1, lw/2+1)
	img.FillRect(m, img.Rect{X0: cx - lw - gap/2, Y0: torso.Y1, X1: cx - gap/2, Y1: bottom}, scale(60, amb), scale(60, amb), scale(80, amb))
	img.FillRect(m, img.Rect{X0: cx + gap/2, Y0: torso.Y1, X1: cx + gap/2 + lw, Y1: bottom}, scale(60, amb), scale(60, amb), scale(80, amb))

	addNoise(m, p.noiseSigma, rng)
	return m
}

func lerp8(a, b uint8, t float64) uint8 {
	return uint8(float64(a) + (float64(b)-float64(a))*t)
}
