package synth

// Taillight-window generation for the DBN stage: 9x9 binary windows of
// the thresholded, downsampled dark image, labeled with the paper's
// four size/shape classes. Used both to train the DBN and to evaluate
// it in isolation.

// Window classes; kept numerically identical to package dbn's class
// constants (asserted by tests) without introducing a dependency.
const (
	WindowNone   = 0
	WindowSmall  = 1
	WindowMedium = 2
	WindowLarge  = 3
)

// windowSide is the DBN visible patch side (9 in the paper).
const windowSide = 9

// TaillightWindow renders one 9x9 binary window of the given class as
// a float64 vector (81 values of 0 or 1) for DBN consumption.
//
// Positive classes are filled ellipses with class-dependent radii and
// mild aspect/position jitter — the shape a closed taillight blob has
// after thresholding, downsampling and closing. The none class is one
// of: empty, sparse speckle noise, a thin streak (lane marking or
// motion smear), or a flat edge of a large washed-out region (glare
// boundary).
func TaillightWindow(rng *RNG, class int) []float64 {
	w := make([]float64, windowSide*windowSide)
	set := func(x, y int) {
		if x >= 0 && x < windowSide && y >= 0 && y < windowSide {
			w[y*windowSide+x] = 1
		}
	}
	ellipse := func(cx, cy, rx, ry float64) {
		for y := 0; y < windowSide; y++ {
			for x := 0; x < windowSide; x++ {
				dx := (float64(x) - cx) / rx
				dy := (float64(y) - cy) / ry
				if dx*dx+dy*dy <= 1 {
					set(x, y)
				}
			}
		}
	}
	center := func() (float64, float64) {
		return 4 + rng.Range(-1, 1), 4 + rng.Range(-1, 1)
	}

	switch class {
	case WindowSmall:
		cx, cy := center()
		r := rng.Range(0.8, 1.4)
		ellipse(cx, cy, r*rng.Range(0.8, 1.3), r)
	case WindowMedium:
		cx, cy := center()
		r := rng.Range(1.9, 2.5)
		ellipse(cx, cy, r*rng.Range(0.8, 1.3), r)
	case WindowLarge:
		cx, cy := center()
		r := rng.Range(3.0, 3.9)
		ellipse(cx, cy, r*rng.Range(0.85, 1.2), r)
	default: // WindowNone
		switch rng.Intn(4) {
		case 0:
			// empty window
		case 1:
			// sparse speckle noise
			n := rng.IntRange(1, 5)
			for i := 0; i < n; i++ {
				set(rng.Intn(windowSide), rng.Intn(windowSide))
			}
		case 2:
			// thin streak
			if rng.Bool(0.5) {
				y := rng.Intn(windowSide)
				for x := 0; x < windowSide; x++ {
					set(x, y)
				}
			} else {
				x := rng.Intn(windowSide)
				for y := 0; y < windowSide; y++ {
					set(x, y)
				}
			}
		default:
			// flat edge of a large region occupying one side
			k := rng.IntRange(2, 4)
			if rng.Bool(0.5) {
				for y := 0; y < k; y++ {
					for x := 0; x < windowSide; x++ {
						set(x, y)
					}
				}
			} else {
				for y := 0; y < windowSide; y++ {
					for x := 0; x < k; x++ {
						set(x, y)
					}
				}
			}
		}
	}
	return w
}

// TaillightWindowSet builds a balanced labeled window set with n
// samples per class.
func TaillightWindowSet(seed uint64, nPerClass int) (X [][]float64, labels []int) {
	rng := NewRNG(seed)
	for class := 0; class < 4; class++ {
		for i := 0; i < nPerClass; i++ {
			X = append(X, TaillightWindow(rng.Split(), class))
			labels = append(labels, class)
		}
	}
	return X, labels
}
