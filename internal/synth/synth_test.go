package synth

import (
	"math"
	"testing"
	"testing/quick"

	"advdet/internal/img"
)

func TestRNGDeterministic(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed diverged")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of range: %v", v)
		}
	}
}

func TestRNGIntnBounds(t *testing.T) {
	r := NewRNG(8)
	seen := map[int]bool{}
	for i := 0; i < 1000; i++ {
		v := r.Intn(5)
		if v < 0 || v >= 5 {
			t.Fatalf("Intn out of range: %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("Intn(5) only produced %d distinct values", len(seen))
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(9)
	n := 50000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / float64(n)
	varv := sumSq/float64(n) - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Fatalf("normal mean = %v", mean)
	}
	if math.Abs(varv-1) > 0.05 {
		t.Fatalf("normal variance = %v", varv)
	}
}

func TestRNGIntRange(t *testing.T) {
	r := NewRNG(10)
	for i := 0; i < 1000; i++ {
		v := r.IntRange(-3, 3)
		if v < -3 || v > 3 {
			t.Fatalf("IntRange out of bounds: %d", v)
		}
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(11)
	a := r.Split()
	b := r.Split()
	if a.Uint64() == b.Uint64() {
		t.Fatal("split generators produced the same first value")
	}
}

func TestConditionString(t *testing.T) {
	if Day.String() != "day" || Dusk.String() != "dusk" || Dark.String() != "dark" {
		t.Fatal("Condition.String broken")
	}
	if Condition(99).String() != "unknown" {
		t.Fatal("unknown condition string")
	}
}

func TestVehicleCropDeterministic(t *testing.T) {
	a := VehicleCrop(NewRNG(5), 64, 64, Day)
	b := VehicleCrop(NewRNG(5), 64, 64, Day)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("same seed produced different crops")
		}
	}
}

func TestCropBrightnessOrdering(t *testing.T) {
	// Mean intensity must strictly order day > dusk > dark across the
	// three regimes — the physical premise of the whole paper.
	means := map[Condition]float64{}
	for _, c := range []Condition{Day, Dusk, Dark} {
		var sum float64
		for s := uint64(0); s < 10; s++ {
			g := img.RGBToGray(VehicleCrop(NewRNG(100+s), 64, 64, c))
			sum += g.Mean()
		}
		means[c] = sum / 10
	}
	if !(means[Day] > means[Dusk] && means[Dusk] > means[Dark]) {
		t.Fatalf("brightness ordering violated: %v", means)
	}
	if means[Dark] > 40 {
		t.Fatalf("dark crops too bright: %v", means[Dark])
	}
}

func TestDarkVehicleHasBrightRedBlobs(t *testing.T) {
	// In the dark regime the taillights must be the dominant bright,
	// red-chroma content — the signal the dark pipeline thresholds on.
	m := VehicleCrop(NewRNG(21), 64, 64, Dark)
	c := img.RGBToYCbCr(m)
	bright := img.DualThreshold(c, 90, 150, 255)
	blobs := img.Components(bright)
	if len(blobs) < 2 {
		t.Fatalf("expected >= 2 taillight blobs, got %d", len(blobs))
	}
}

func TestDayVehicleHasNoLitLamps(t *testing.T) {
	m := VehicleCrop(NewRNG(22), 64, 64, Day)
	c := img.RGBToYCbCr(m)
	// Saturated lamp cores (very bright + red chroma) must be absent.
	bright := img.DualThreshold(c, 220, 160, 255)
	if n := bright.Count(); n > 8 {
		t.Fatalf("day crop contains %d lit-lamp pixels", n)
	}
}

func TestNegativeCropsNeverContainTaillightPairs(t *testing.T) {
	// Negatives may contain single red lights but never a level,
	// similar-size red pair (that is what defines a vehicle at night).
	for s := uint64(0); s < 40; s++ {
		m := NegativeCrop(NewRNG(3000+s), 64, 64, Dark)
		c := img.RGBToYCbCr(m)
		red := img.DualThreshold(c, 90, 150, 255)
		blobs := img.FilterBlobs(img.Components(red), 4, 400)
		pairs := 0
		for i := 0; i < len(blobs); i++ {
			for j := i + 1; j < len(blobs); j++ {
				dy := blobs[i].CY - blobs[j].CY
				if math.Abs(dy) < 3 {
					pairs++
				}
			}
		}
		if pairs > 0 {
			t.Fatalf("seed %d: negative crop contains a level red pair", s)
		}
	}
}

func TestPedestrianCropVisibleInDark(t *testing.T) {
	g := img.RGBToGray(PedestrianCrop(NewRNG(31), 32, 64, Dark))
	// The figure must have some contrast even at night (street light).
	var lo, hi uint8 = 255, 0
	for _, p := range g.Pix {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	if hi-lo < 20 {
		t.Fatalf("pedestrian crop contrast too low: %d", hi-lo)
	}
}

func TestDatasetCounts(t *testing.T) {
	d := DayDataset(1, 32, 32, 10, 7)
	if len(d.Pos) != 10 || len(d.Neg) != 7 || d.Len() != 17 {
		t.Fatalf("day dataset counts: %d/%d", len(d.Pos), len(d.Neg))
	}
	for _, p := range d.Pos {
		if p.W != 32 || p.H != 32 {
			t.Fatal("wrong crop size")
		}
	}
}

func TestDuskDatasetVeryDarkFraction(t *testing.T) {
	d := DuskDataset(2, 32, 32, 100, 50, 0.2)
	nd := 0
	for _, vd := range d.VeryDark {
		if vd {
			nd++
		}
	}
	if nd != 20 {
		t.Fatalf("very dark count = %d, want 20", nd)
	}
	sub := d.SubsetWithoutVeryDark()
	if len(sub.Pos) != 80 {
		t.Fatalf("subset positives = %d, want 80", len(sub.Pos))
	}
	if len(sub.Neg) != 50 {
		t.Fatalf("subset negatives = %d, want 50", len(sub.Neg))
	}
}

func TestTableITestSetsMatchPaperCounts(t *testing.T) {
	day := TableIDayTest(3, 32, 32)
	if len(day.Pos) != 200 || len(day.Neg) != 25 {
		t.Fatalf("day test counts %d/%d", len(day.Pos), len(day.Neg))
	}
	dusk := TableIDuskTest(4, 32, 32)
	if len(dusk.Pos) != 1063 || len(dusk.Neg) != 752 {
		t.Fatalf("dusk test counts %d/%d", len(dusk.Pos), len(dusk.Neg))
	}
	sub := dusk.SubsetWithoutVeryDark()
	if len(sub.Pos) != 963 {
		t.Fatalf("subset positives %d, want 963", len(sub.Pos))
	}
}

func TestDarkDatasetShapes(t *testing.T) {
	d := NewDarkDataset(5, 64, 64, 4, 3)
	if len(d.Pos) != 4 || len(d.Neg) != 3 {
		t.Fatal("dark dataset counts wrong")
	}
}

func TestRenderSceneGroundTruthInsideFrame(t *testing.T) {
	f := func(seed uint64) bool {
		sc := RenderScene(NewRNG(seed), DefaultSceneConfig(320, 180, Dusk))
		full := img.Rect{X0: 0, Y0: 0, X1: 320, Y1: 180}
		for _, v := range sc.Vehicles {
			if v.Intersect(full) != v || v.Empty() {
				return false
			}
		}
		for _, p := range sc.Pedestrians {
			if p.Intersect(full) != p || p.Empty() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestRenderSceneConditionsAffectLux(t *testing.T) {
	day := RenderScene(NewRNG(1), DefaultSceneConfig(160, 90, Day))
	dark := RenderScene(NewRNG(1), DefaultSceneConfig(160, 90, Dark))
	if day.Lux <= dark.Lux {
		t.Fatalf("day lux %v <= dark lux %v", day.Lux, dark.Lux)
	}
	if day.Lux < 5000 || dark.Lux > 25 {
		t.Fatalf("lux ranges: day %v dark %v", day.Lux, dark.Lux)
	}
}

func TestScenarioStructure(t *testing.T) {
	s := TunnelTransit(9, 160, 90, 10)
	if s.TotalFrames() != 18*10 {
		t.Fatalf("total frames = %d", s.TotalFrames())
	}
	c0, l0 := s.CondAt(0)
	if c0 != Day || l0 != "urban day" {
		t.Fatalf("frame 0: %v %q", c0, l0)
	}
	cT, lT := s.CondAt(45) // inside the tunnel segment (40..69)
	if cT != Dusk || lT != "tunnel (well lit)" {
		t.Fatalf("tunnel frame: %v %q", cT, lT)
	}
	cEnd, _ := s.CondAt(10_000) // past the end: stays in last segment
	if cEnd != Dark {
		t.Fatalf("past-end condition %v", cEnd)
	}
}

func TestScenarioFrameDeterministic(t *testing.T) {
	s := NightHighway(13, 160, 90, 5)
	a := s.FrameAt(3)
	b := s.FrameAt(3)
	for i := range a.Frame.Pix {
		if a.Frame.Pix[i] != b.Frame.Pix[i] {
			t.Fatal("FrameAt not deterministic")
		}
	}
	if a.Cond != Dark {
		t.Fatalf("cond = %v", a.Cond)
	}
}

func TestScenarioLuxTracksCondition(t *testing.T) {
	s := TunnelTransit(17, 160, 90, 10)
	// Average lux in the day segment must exceed the tunnel segment.
	daySum, tunnelSum := 0.0, 0.0
	for i := 5; i < 35; i++ {
		daySum += s.LuxAt(i)
	}
	for i := 45; i < 65; i++ {
		tunnelSum += s.LuxAt(i)
	}
	if daySum/30 <= tunnelSum/20 {
		t.Fatal("day lux does not exceed tunnel lux")
	}
}

func TestLuxForSeparation(t *testing.T) {
	r := NewRNG(23)
	for i := 0; i < 100; i++ {
		d := LuxFor(Day, r)
		u := LuxFor(Dusk, r)
		k := LuxFor(Dark, r)
		if !(d > u && u > k) {
			t.Fatalf("lux not separated: %v %v %v", d, u, k)
		}
	}
}
