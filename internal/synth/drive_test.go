package synth

import (
	"math"
	"testing"
)

func TestDriveCoherence(t *testing.T) {
	d := NewDrive(5, 320, 180, Day, 1, 1)
	prev := d.Frame(0)
	if len(prev.Vehicles) != 1 {
		t.Fatalf("frame 0 vehicles = %d", len(prev.Vehicles))
	}
	for i := 1; i < 20; i++ {
		cur := d.Frame(i)
		if len(cur.Vehicles) != 1 {
			t.Fatalf("frame %d vehicles = %d", i, len(cur.Vehicles))
		}
		// The vehicle must move smoothly: high IoU between frames.
		if iou := prev.Vehicles[0].IoU(cur.Vehicles[0]); iou < 0.6 {
			t.Fatalf("frame %d vehicle jumped (IoU %.2f)", i, iou)
		}
		prev = cur
	}
}

func TestDriveActuallyMoves(t *testing.T) {
	d := NewDrive(7, 320, 180, Day, 1, 0)
	first := d.Frame(0).Vehicles[0]
	var moved bool
	for i := 1; i < 60; i++ {
		if b := d.Frame(i).Vehicles[0]; b != first {
			moved = true
			break
		}
	}
	if !moved {
		t.Fatal("vehicle static across 60 frames")
	}
}

func TestDriveDeterministic(t *testing.T) {
	a := NewDrive(9, 160, 90, Dark, 2, 1).Frame(5)
	b := NewDrive(9, 160, 90, Dark, 2, 1).Frame(5)
	for i := range a.Frame.Pix {
		if a.Frame.Pix[i] != b.Frame.Pix[i] {
			t.Fatal("drive frames not deterministic")
		}
	}
}

func TestDriveAppearanceStable(t *testing.T) {
	// The same vehicle must keep its color across frames: compare the
	// mean color inside the (similar-size) boxes of two nearby frames.
	d := NewDrive(11, 320, 180, Day, 1, 0)
	a := d.Frame(3)
	b := d.Frame(4)
	meanRGB := func(sc *Scene) (float64, float64, float64) {
		box := sc.Vehicles[0]
		var r, g, bl, n float64
		for y := box.Y0; y < box.Y1; y++ {
			for x := box.X0; x < box.X1; x++ {
				cr, cg, cb := sc.Frame.At(x, y)
				r += float64(cr)
				g += float64(cg)
				bl += float64(cb)
				n++
			}
		}
		return r / n, g / n, bl / n
	}
	ar, ag, ab := meanRGB(a)
	br, bg, bb := meanRGB(b)
	if math.Abs(ar-br) > 15 || math.Abs(ag-bg) > 15 || math.Abs(ab-bb) > 15 {
		t.Fatalf("vehicle appearance drifted: (%f,%f,%f) vs (%f,%f,%f)", ar, ag, ab, br, bg, bb)
	}
}

func TestDriveDepthClamped(t *testing.T) {
	o := driveObject{depth0: 0.9, depthAmp: 0.5, depthFreq: 1}
	for i := 0; i < 10; i++ {
		dep := o.depthAt(i)
		if dep < 0.25 || dep > 0.95 {
			t.Fatalf("depth %v out of range", dep)
		}
	}
}
