package synth

import (
	"math"

	"advdet/internal/img"
)

// StaticHighway renders the temporal scan cache's friendly case: a
// fixed roadside camera watching a highway. The backdrop — sky, road,
// lane markings, sensor noise — is rendered once at construction and
// reused verbatim every frame, so only the moving vehicles change
// pixels between consecutive frames. Scene.Dirty reports exactly those
// regions (the union of each vehicle's previous and current boxes),
// giving cache tests and benchmarks a ground truth to compare tile
// fingerprints against.
//
// Drive, by contrast, models a camera moving with traffic: its
// per-frame backdrop re-randomization (noise on every pixel) makes
// every frame fully dirty, the cache's adversarial case.
type StaticHighway struct {
	W, H int
	Cond Condition
	Seed uint64

	backdrop *img.RGB
	lux      float64
	vehicles []driveObject
}

// NewStaticHighway builds the fixed-camera sequence with nVehicles
// persistent actors drifting through the scene.
func NewStaticHighway(seed uint64, w, h int, cond Condition, nVehicles int) *StaticHighway {
	rng := NewRNG(seed)
	cfg := SceneConfig{W: w, H: h, Cond: cond} // zero actors: backdrop only
	if cond != Day {
		cfg.RoadLights = 2
	}
	s := &StaticHighway{
		W: w, H: h, Cond: cond, Seed: seed,
		backdrop: RenderScene(rng, cfg).Frame,
		lux:      LuxFor(cond, NewRNG(seed^0x11)),
	}
	for i := 0; i < nVehicles; i++ {
		s.vehicles = append(s.vehicles, driveObject{
			seed:       rng.Uint64(),
			depth0:     rng.Range(0.45, 0.8),
			depthAmp:   rng.Range(0.05, 0.15),
			depthFreq:  rng.Range(0.01, 0.04),
			phase:      rng.Range(0, 2*math.Pi),
			lateral:    rng.Range(0.05, 0.12),
			lateralVel: rng.Range(-0.0005, 0.0005),
		})
	}
	return s
}

// boxAt evaluates one vehicle's frame-i bounding box — a pure function
// of (vehicle, i), so Frame can reconstruct frame i-1's boxes for the
// dirty report without keeping mutable history (frames remain random
// access).
func (s *StaticHighway) boxAt(v driveObject, i int) img.Rect {
	w, h := s.W, s.H
	horizon := int(float64(h) * 0.42)
	depth := v.depthAt(i)
	vw := int(float64(h) * 0.12 * (0.4 + depth*1.8))
	if vw < 24 {
		vw = 24
	}
	vy := horizon + int(depth*depth*float64(h-horizon)*0.75) - vw/4
	lat := v.lateral + v.lateralVel*float64(i)
	vx := w/2 + int(float64(w)*lat) + int((1-depth)*float64(w)*0.05)
	box := img.Rect{X0: vx, Y0: vy, X1: vx + vw, Y1: vy + vw}
	return box.Intersect(img.Rect{X0: 0, Y0: 0, X1: w, Y1: h})
}

// Frame renders frame i: the shared backdrop copied into a fresh
// buffer, the persistent vehicles blitted at their frame-i poses, and
// Dirty covering everything that differs from frame i-1. Frame 0
// reports the whole frame dirty (there is no previous frame).
func (s *StaticHighway) Frame(i int) *Scene {
	sc := &Scene{
		Frame: s.backdrop.Clone(),
		Cond:  s.Cond,
		Lux:   s.lux,
	}
	if i == 0 {
		sc.Dirty = []img.Rect{{X0: 0, Y0: 0, X1: s.W, Y1: s.H}}
	}
	for _, v := range s.vehicles {
		box := s.boxAt(v, i)
		if box.W() < 16 || box.H() < 16 {
			continue
		}
		// Appearance is a pure function of the vehicle seed and the box
		// size, so a vehicle whose box hasn't changed renders the exact
		// same pixels — invisible to a content-addressed cache, exactly
		// like a parked car.
		crop := VehicleCrop(NewRNG(v.seed), box.W(), box.H(), s.Cond)
		blit(sc.Frame, crop, box.X0, box.Y0)
		sc.Vehicles = append(sc.Vehicles, box)
		if i > 0 {
			if prev := s.boxAt(v, i-1); prev.W() > 0 && prev.H() > 0 {
				sc.Dirty = append(sc.Dirty, prev)
			}
			sc.Dirty = append(sc.Dirty, box)
		}
	}
	return sc
}
