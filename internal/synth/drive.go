package synth

import (
	"math"

	"advdet/internal/img"
)

// Drive renders a temporally coherent sequence: the same vehicles and
// pedestrians persist across frames, drifting smoothly in depth and
// lane position, so that detection-by-tracking (Kalman association,
// identity maintenance, coasting through the reconfiguration dropout)
// can be exercised and measured. Scenario.FrameAt, by contrast,
// renders statistically independent frames.
type Drive struct {
	W, H int
	Cond Condition
	Seed uint64

	vehicles []driveObject
	peds     []driveObject
}

// driveObject is one persistent actor: a per-object appearance seed
// (so its rendered look is stable) plus smooth motion parameters.
type driveObject struct {
	seed       uint64
	depth0     float64 // base depth in [0.3, 0.9]
	depthAmp   float64 // depth oscillation amplitude
	depthFreq  float64 // radians per frame
	phase      float64
	lateral    float64 // lane offset as a fraction of width
	lateralVel float64 // per frame
}

// NewDrive creates a coherent drive with the given actor counts.
func NewDrive(seed uint64, w, h int, cond Condition, nVehicles, nPeds int) *Drive {
	rng := NewRNG(seed)
	d := &Drive{W: w, H: h, Cond: cond, Seed: seed}
	for i := 0; i < nVehicles; i++ {
		d.vehicles = append(d.vehicles, driveObject{
			seed:       rng.Uint64(),
			depth0:     rng.Range(0.45, 0.8),
			depthAmp:   rng.Range(0.05, 0.15),
			depthFreq:  rng.Range(0.01, 0.04),
			phase:      rng.Range(0, 2*math.Pi),
			lateral:    rng.Range(0.05, 0.12),
			lateralVel: rng.Range(-0.0005, 0.0005),
		})
	}
	for i := 0; i < nPeds; i++ {
		d.peds = append(d.peds, driveObject{
			seed:       rng.Uint64(),
			depth0:     rng.Range(0.5, 0.85),
			depthAmp:   rng.Range(0.02, 0.06),
			depthFreq:  rng.Range(0.005, 0.02),
			phase:      rng.Range(0, 2*math.Pi),
			lateral:    rng.Range(0.3, 0.42),
			lateralVel: rng.Range(-0.0003, 0.0003),
		})
	}
	return d
}

// depthAt evaluates the object's smooth depth trajectory.
func (o driveObject) depthAt(i int) float64 {
	d := o.depth0 + o.depthAmp*math.Sin(o.depthFreq*float64(i)+o.phase)
	if d < 0.25 {
		d = 0.25
	}
	if d > 0.95 {
		d = 0.95
	}
	return d
}

// Frame renders frame i. The backdrop (lane dashes, street lights,
// oncoming traffic) re-randomizes per frame — those are transient —
// while the tracked actors evolve smoothly and keep their appearance.
func (d *Drive) Frame(i int) *Scene {
	cfg := SceneConfig{W: d.W, H: d.H, Cond: d.Cond}
	if d.Cond != Day {
		cfg.RoadLights = 2
		cfg.OncomingHeadlights = 1
	}
	backdropRNG := NewRNG(d.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	sc := RenderScene(backdropRNG, cfg) // cfg has zero actors: backdrop only
	sc.Lux = LuxFor(d.Cond, NewRNG(d.Seed^0x11^(uint64(i)+1)))

	w, h := d.W, d.H
	horizon := int(float64(h) * 0.42)
	vpx := w / 2

	for _, v := range d.vehicles {
		depth := v.depthAt(i)
		vw := int(float64(h) * 0.12 * (0.4 + depth*1.8))
		if vw < 24 {
			vw = 24
		}
		vh := vw
		vy := horizon + int(depth*depth*float64(h-horizon)*0.75) - vh/4
		lat := v.lateral + v.lateralVel*float64(i)
		vx := vpx + int(float64(w)*lat) + int((1-depth)*float64(w)*0.05)
		box := img.Rect{X0: vx, Y0: vy, X1: vx + vw, Y1: vy + vh}
		box = box.Intersect(img.Rect{X0: 0, Y0: 0, X1: w, Y1: h})
		if box.W() < 16 || box.H() < 16 {
			continue
		}
		crop := VehicleCrop(NewRNG(v.seed), box.W(), box.H(), d.Cond)
		blit(sc.Frame, crop, box.X0, box.Y0)
		sc.Vehicles = append(sc.Vehicles, box)
	}

	for _, p := range d.peds {
		depth := p.depthAt(i)
		ph := int(float64(h) * 0.16 * (0.4 + depth*1.6))
		if ph < 24 {
			ph = 24
		}
		pw := ph / 2
		py := horizon + int(depth*depth*float64(h-horizon)*0.8) - ph/3
		lat := p.lateral + p.lateralVel*float64(i)
		px := vpx + int(float64(w)*lat)
		box := img.Rect{X0: px, Y0: py, X1: px + pw, Y1: py + ph}
		box = box.Intersect(img.Rect{X0: 0, Y0: 0, X1: w, Y1: h})
		if box.W() < 12 || box.H() < 24 {
			continue
		}
		crop := PedestrianCrop(NewRNG(p.seed), box.W(), box.H(), d.Cond)
		blit(sc.Frame, crop, box.X0, box.Y0)
		sc.Pedestrians = append(sc.Pedestrians, box)
	}
	return sc
}
