package synth

import "advdet/internal/img"

// Animal crops support the optional animal-detection feature the
// paper's introduction motivates ("animal detection on the road could
// be a useful feature for ADS since, in some countryside roads,
// animals might appear and cross the road... this feature might not
// be used in most of the times"). The renderer produces a quadruped
// side profile: body, head, legs against a road/verge background.
func AnimalCrop(rng *RNG, w, h int, c Condition) *img.RGB {
	p := params(c, rng)
	m := img.NewRGB(w, h)

	// Background: grass verge over road.
	split := int(float64(h) * rng.Range(0.5, 0.7))
	gr, gg, gb := scale(70, p.ambient), scale(110, p.ambient), scale(50, p.ambient)
	for y := 0; y < h; y++ {
		var r, g, b uint8
		if y < split {
			r, g, b = gr, gg, gb
		} else {
			r, g, b = p.road[0], p.road[1], p.road[2]
		}
		for x := 0; x < w; x++ {
			m.Set(x, y, r, g, b)
		}
	}

	// Body tone: browns and grays.
	tone := uint8(rng.IntRange(70, 160))
	br := scale(tone, p.ambient)
	bg := scale(uint8(int(tone)*3/4), p.ambient)
	bb := scale(uint8(int(tone)/2), p.ambient)

	bw := int(float64(w) * rng.Range(0.5, 0.7))
	bh := int(float64(h) * rng.Range(0.3, 0.42))
	bx := (w-bw)/2 + rng.IntRange(-w/12, w/12)
	by := split - bh/2 + rng.IntRange(-h/16, h/16)
	body := img.Rect{X0: bx, Y0: by, X1: bx + bw, Y1: by + bh}
	img.FillEllipse(m, body, br, bg, bb)

	// Head: smaller ellipse at one end, raised.
	hw, hh := bw/4, bh*2/3
	facing := rng.Bool(0.5)
	var head img.Rect
	if facing {
		head = img.Rect{X0: body.X1 - hw/3, Y0: body.Y0 - hh/2, X1: body.X1 - hw/3 + hw, Y1: body.Y0 - hh/2 + hh}
	} else {
		head = img.Rect{X0: body.X0 - hw + hw/3, Y0: body.Y0 - hh/2, X1: body.X0 + hw/3, Y1: body.Y0 - hh/2 + hh}
	}
	img.FillEllipse(m, head, br, bg, bb)

	// Four legs.
	legW := bw / 14
	if legW < 2 {
		legW = 2
	}
	legTop := body.Y1 - bh/4
	legBottom := legTop + int(float64(h)*rng.Range(0.18, 0.28))
	for i := 0; i < 4; i++ {
		lx := body.X0 + bw/6 + i*(bw-bw/3)/3 + rng.IntRange(-1, 1)
		img.FillRect(m, img.Rect{X0: lx, Y0: legTop, X1: lx + legW, Y1: legBottom}, br, bg, bb)
	}

	addNoise(m, p.noiseSigma, rng)
	return m
}

// AnimalDataset builds positive animal crops and negative road/verge
// crops at the animal detector's window geometry.
func AnimalDataset(seed uint64, w, h, nPos, nNeg int, c Condition) *Dataset {
	rng := NewRNG(seed)
	d := &Dataset{Name: "animal-" + c.String(), W: w, H: h}
	for i := 0; i < nPos; i++ {
		d.Pos = append(d.Pos, img.RGBToGray(AnimalCrop(rng.Split(), w, h, c)))
		d.VeryDark = append(d.VeryDark, false)
	}
	for i := 0; i < nNeg; i++ {
		d.Neg = append(d.Neg, grayNegative(rng.Split(), w, h, c))
	}
	return d
}
