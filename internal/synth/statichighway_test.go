package synth

import (
	"testing"

	"advdet/internal/img"
)

// TestStaticHighwayDirtyCoversChanges is the generator's contract: any
// pixel that differs between consecutive frames lies inside the frame's
// reported Dirty rects, and frame 0 reports the whole frame.
func TestStaticHighwayDirtyCoversChanges(t *testing.T) {
	const w, h = 320, 200
	sh := NewStaticHighway(900, w, h, Day, 3)
	f0 := sh.Frame(0)
	if len(f0.Dirty) != 1 || f0.Dirty[0] != (img.Rect{X0: 0, Y0: 0, X1: w, Y1: h}) {
		t.Fatalf("frame 0 dirty = %+v, want one full-frame rect", f0.Dirty)
	}
	if len(f0.Vehicles) == 0 {
		t.Fatal("frame 0 rendered no vehicles")
	}
	prev := f0
	changedAnywhere := false
	for i := 1; i < 12; i++ {
		cur := sh.Frame(i)
		inDirty := func(x, y int) bool {
			for _, r := range cur.Dirty {
				if x >= r.X0 && x < r.X1 && y >= r.Y0 && y < r.Y1 {
					return true
				}
			}
			return false
		}
		for y := 0; y < h; y++ {
			for x := 0; x < w; x++ {
				pr, pg, pb := prev.Frame.At(x, y)
				cr, cg, cb := cur.Frame.At(x, y)
				if pr == cr && pg == cg && pb == cb {
					continue
				}
				changedAnywhere = true
				if !inDirty(x, y) {
					t.Fatalf("frame %d: pixel (%d,%d) changed outside the dirty set %+v", i, x, y, cur.Dirty)
				}
			}
		}
		prev = cur
	}
	if !changedAnywhere {
		t.Fatal("no pixel changed across 12 frames; the highway is not moving")
	}
}

// TestStaticHighwayDeterministic pins random access: Frame(i) must be
// byte-identical however it is reached.
func TestStaticHighwayDeterministic(t *testing.T) {
	a := NewStaticHighway(901, 256, 160, Dusk, 2)
	b := NewStaticHighway(901, 256, 160, Dusk, 2)
	b.Frame(0) // advance one to prove i is not stateful
	fa, fb := a.Frame(5), b.Frame(5)
	if fa.Frame.W != fb.Frame.W || fa.Frame.H != fb.Frame.H {
		t.Fatal("frame dims diverged")
	}
	for i := range fa.Frame.Pix {
		if fa.Frame.Pix[i] != fb.Frame.Pix[i] {
			t.Fatalf("pixel byte %d diverged", i)
		}
	}
}
