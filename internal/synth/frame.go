package synth

import "advdet/internal/img"

// Scene is a full rendered road frame with ground truth, the unit the
// end-to-end system consumes (the paper's HDTV capture is 1920x1080).
type Scene struct {
	Frame       *img.RGB
	Vehicles    []img.Rect // ground-truth vehicle boxes
	Pedestrians []img.Rect // ground-truth pedestrian boxes
	Cond        Condition
	Lux         float64 // ambient light sensor reading
	// Dirty lists the regions that changed since the previous frame of
	// the same sequence — the ground truth a temporal scan cache's tile
	// fingerprints should rediscover. Generators that re-render the
	// whole frame (RenderScene, Drive: per-frame sensor noise touches
	// every pixel) report one full-frame rect; StaticHighway reports
	// the union of each actor's previous and current boxes.
	Dirty []img.Rect
}

// SceneConfig controls the frame renderer.
type SceneConfig struct {
	W, H        int
	Cond        Condition
	NumVehicles int
	NumPeds     int
	// OncomingHeadlights adds white headlight pairs in the opposite
	// lane (dusk/dark only) — the hard negatives the chroma threshold
	// must reject.
	OncomingHeadlights int
	// RoadLights adds street lamps along the road (dusk/dark only).
	RoadLights int
}

// DefaultSceneConfig returns a config for a w x h frame under cond
// with a typical object mix.
func DefaultSceneConfig(w, h int, cond Condition) SceneConfig {
	cfg := SceneConfig{W: w, H: h, Cond: cond, NumVehicles: 2, NumPeds: 1}
	if cond != Day {
		cfg.OncomingHeadlights = 1
		cfg.RoadLights = 3
	}
	return cfg
}

// RenderScene draws a full road scene and records ground truth.
func RenderScene(rng *RNG, cfg SceneConfig) *Scene {
	p := params(cfg.Cond, rng)
	w, h := cfg.W, cfg.H
	m := img.NewRGB(w, h)

	// Sky gradient down to the horizon, road below.
	horizon := int(float64(h) * 0.42)
	for y := 0; y < h; y++ {
		var r, g, b uint8
		if y < horizon {
			t := float64(y) / float64(horizon)
			r = lerp8(p.skyTop[0], p.skyBottom[0], t)
			g = lerp8(p.skyTop[1], p.skyBottom[1], t)
			b = lerp8(p.skyTop[2], p.skyBottom[2], t)
		} else {
			// Slight vertical shading on the road.
			t := float64(y-horizon) / float64(h-horizon)
			r = scale(p.road[0], 0.85+0.3*t)
			g = scale(p.road[1], 0.85+0.3*t)
			b = scale(p.road[2], 0.85+0.3*t)
		}
		for x := 0; x < w; x++ {
			m.Set(x, y, r, g, b)
		}
	}

	// Dashed center lane marking with perspective convergence.
	vpx := w / 2 // vanishing point x
	for seg := 0; seg < 12; seg++ {
		t0 := float64(seg) / 12
		t1 := t0 + 0.04
		y0 := horizon + int(t0*t0*float64(h-horizon))
		y1 := horizon + int(t1*t1*float64(h-horizon))
		if y1 <= y0 {
			continue
		}
		halfW := 1 + int(t0*float64(w)/90)
		cx := vpx
		img.FillRect(m, img.Rect{X0: cx - halfW, Y0: y0, X1: cx + halfW, Y1: y1},
			scale(200, p.ambient+0.1), scale(200, p.ambient+0.1), scale(180, p.ambient+0.1))
	}

	sc := &Scene{Frame: m, Cond: cfg.Cond, Lux: LuxFor(cfg.Cond, rng),
		Dirty: []img.Rect{{X0: 0, Y0: 0, X1: w, Y1: h}}}

	// Street lamps: bright white/yellow blobs above the horizon line.
	if cfg.Cond != Day {
		for i := 0; i < cfg.RoadLights; i++ {
			lx := rng.Intn(w)
			ly := rng.IntRange(h/12, horizon-h/24)
			sz := rng.IntRange(h/60+2, h/36+3)
			drawGlowingLamp(m, img.Rect{X0: lx, Y0: ly, X1: lx + sz, Y1: ly + sz*3/4}, 255, 244, 214, rng)
		}
		for i := 0; i < cfg.OncomingHeadlights; i++ {
			// Oncoming traffic keeps left of the center line.
			depth := rng.Range(0.3, 0.9)
			y := horizon + int(depth*depth*float64(h-horizon)*0.7)
			sz := 2 + int(depth*float64(h)/40)
			x := vpx - int(depth*float64(w)/4) - 4*sz
			sep := 3 * sz
			drawGlowingLamp(m, img.Rect{X0: x, Y0: y, X1: x + sz, Y1: y + sz}, 255, 252, 240, rng)
			drawGlowingLamp(m, img.Rect{X0: x + sep, Y0: y, X1: x + sep + sz, Y1: y + sz}, 255, 252, 240, rng)
		}
	}

	// Vehicles ahead in the right lane, size by depth.
	for i := 0; i < cfg.NumVehicles; i++ {
		depth := rng.Range(0.25, 1.0) // 1.0 = nearest
		vw := int(float64(h) * 0.12 * (0.4 + depth*1.8))
		if vw < 24 {
			vw = 24
		}
		vh := vw
		vy := horizon + int(depth*depth*float64(h-horizon)*0.75) - vh/4
		vx := vpx + int(float64(w)*0.04) + rng.IntRange(0, w/10) + int((1-depth)*float64(w)*0.05)
		box := img.Rect{X0: vx, Y0: vy, X1: vx + vw, Y1: vy + vh}
		box = box.Intersect(img.Rect{X0: 0, Y0: 0, X1: w, Y1: h})
		if box.W() < 16 || box.H() < 16 {
			continue
		}
		crop := VehicleCrop(rng.Split(), box.W(), box.H(), cfg.Cond)
		blit(m, crop, box.X0, box.Y0)
		sc.Vehicles = append(sc.Vehicles, box)
	}

	// Pedestrians on the right sidewalk.
	for i := 0; i < cfg.NumPeds; i++ {
		depth := rng.Range(0.4, 1.0)
		ph := int(float64(h) * 0.16 * (0.4 + depth*1.6))
		if ph < 24 {
			ph = 24
		}
		pw := ph / 2
		py := horizon + int(depth*depth*float64(h-horizon)*0.8) - ph/3
		px := w - pw - rng.IntRange(w/40, w/6)
		box := img.Rect{X0: px, Y0: py, X1: px + pw, Y1: py + ph}
		box = box.Intersect(img.Rect{X0: 0, Y0: 0, X1: w, Y1: h})
		if box.W() < 12 || box.H() < 24 {
			continue
		}
		crop := PedestrianCrop(rng.Split(), box.W(), box.H(), cfg.Cond)
		blit(m, crop, box.X0, box.Y0)
		sc.Pedestrians = append(sc.Pedestrians, box)
	}

	addNoise(m, p.noiseSigma, rng)
	return sc
}

// blit copies src onto dst at (x0, y0), clipping to dst bounds.
func blit(dst, src *img.RGB, x0, y0 int) {
	for y := 0; y < src.H; y++ {
		dy := y0 + y
		if dy < 0 || dy >= dst.H {
			continue
		}
		for x := 0; x < src.W; x++ {
			dx := x0 + x
			if dx < 0 || dx >= dst.W {
				continue
			}
			r, g, b := src.At(x, y)
			dst.Set(dx, dy, r, g, b)
		}
	}
}

// LuxFor samples a plausible ambient-light-sensor reading for a
// condition: clear separations with realistic in-class spread.
func LuxFor(c Condition, rng *RNG) float64 {
	switch c {
	case Day:
		return rng.Range(5000, 30000)
	case Dusk:
		return rng.Range(80, 1200)
	default:
		return rng.Range(0.5, 25)
	}
}
