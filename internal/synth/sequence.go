package synth

// A drive scenario is a timed sequence of lighting segments with
// per-frame scenes and a light-sensor trace — the input the adaptive
// system consumes in the tunnel-transit and night-highway examples.

// Segment is a stretch of frames under one lighting condition.
type Segment struct {
	Cond   Condition
	Frames int
	Label  string // e.g. "urban day", "tunnel", "open night road"
}

// Scenario describes a full drive.
type Scenario struct {
	Name     string
	W, H     int
	FPS      int
	Segments []Segment
	Seed     uint64
}

// TotalFrames returns the scenario length in frames.
func (s *Scenario) TotalFrames() int {
	n := 0
	for _, seg := range s.Segments {
		n += seg.Frames
	}
	return n
}

// CondAt returns the lighting condition and segment label at frame i.
// Frames beyond the end stay in the last segment.
func (s *Scenario) CondAt(i int) (Condition, string) {
	for _, seg := range s.Segments {
		if i < seg.Frames {
			return seg.Cond, seg.Label
		}
		i -= seg.Frames
	}
	last := s.Segments[len(s.Segments)-1]
	return last.Cond, last.Label
}

// FrameAt renders frame i of the scenario with its ground truth and a
// sensor reading. Rendering is deterministic in (Seed, i).
func (s *Scenario) FrameAt(i int) *Scene {
	cond, _ := s.CondAt(i)
	rng := NewRNG(s.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	cfg := DefaultSceneConfig(s.W, s.H, cond)
	return RenderScene(rng, cfg)
}

// LuxAt returns just the sensor reading for frame i (cheaper than
// rendering the frame); readings within a segment drift smoothly and
// transitions carry a brief mixing band, so naive thresholding without
// hysteresis would chatter.
func (s *Scenario) LuxAt(i int) float64 {
	cond, _ := s.CondAt(i)
	rng := NewRNG(s.Seed ^ 0xabcd ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
	base := LuxFor(cond, rng)
	// Smooth drift within a segment: average with neighbors' base.
	if i > 0 {
		prev, _ := s.CondAt(i - 1)
		if prev != cond {
			// Transition frame: blend the two regimes.
			prngPrev := NewRNG(s.Seed ^ 0xabcd ^ (uint64(i))*0x9e3779b97f4a7c15)
			base = (base + LuxFor(prev, prngPrev)) / 2
		}
	}
	return base
}

// TunnelTransit is the scenario the paper uses to motivate the
// day<->dusk transition: urban day driving, a well-lit tunnel
// (classified as dusk, so only one reconfiguration each way), day
// again, then true dusk at sunset and finally open dark road.
func TunnelTransit(seed uint64, w, h, fps int) *Scenario {
	return &Scenario{
		Name: "tunnel-transit",
		W:    w, H: h, FPS: fps,
		Seed: seed,
		Segments: []Segment{
			{Day, 4 * fps, "urban day"},
			{Dusk, 3 * fps, "tunnel (well lit)"},
			{Day, 3 * fps, "urban day"},
			{Dusk, 4 * fps, "sunset"},
			{Dark, 4 * fps, "open night road"},
		},
	}
}

// NightHighway is an iROADS-like all-dark scenario for the dark
// pipeline demo.
func NightHighway(seed uint64, w, h, fps int) *Scenario {
	return &Scenario{
		Name: "night-highway",
		W:    w, H: h, FPS: fps,
		Seed: seed,
		Segments: []Segment{
			{Dark, 6 * fps, "highway night"},
		},
	}
}
