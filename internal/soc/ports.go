package soc

import "fmt"

// BurstLink models one AXI-style transfer path: data moves in bursts
// of BurstBeats beats, each beat WidthBytes wide at one beat per Clk
// cycle, with OverheadCycles of setup/stall per burst. Every transfer
// path in the system — HP ports, GP ports, PCAP bridge, ICAP feeds —
// is an instance with different structural parameters, and the
// paper's measured throughputs (19/145/382/390 MB/s) emerge from
// them.
type BurstLink struct {
	Name           string
	Clk            Clock
	WidthBytes     int
	BurstBeats     int
	OverheadCycles int
	// busyUntil serializes transfers over the shared link.
	busyUntil uint64
}

// validate panics on a structurally impossible link.
func (l *BurstLink) validate() {
	if l.WidthBytes <= 0 || l.BurstBeats <= 0 || l.OverheadCycles < 0 {
		// lint:invariant links are package-internal literals pinned by the package tests
		panic(fmt.Sprintf("soc: invalid link %q: %+v", l.Name, *l))
	}
}

// TransferPS returns the duration of moving n bytes over the link,
// ignoring queueing.
func (l *BurstLink) TransferPS(n int) uint64 {
	l.validate()
	if n <= 0 {
		return 0
	}
	beats := (n + l.WidthBytes - 1) / l.WidthBytes
	bursts := (beats + l.BurstBeats - 1) / l.BurstBeats
	cycles := uint64(beats) + uint64(bursts)*uint64(l.OverheadCycles)
	return l.Clk.CyclesPS(cycles)
}

// Throughput returns the steady-state throughput of the link in MB/s.
func (l *BurstLink) Throughput() float64 {
	const probe = 64 << 20 // 64 MiB probe keeps burst rounding negligible
	return MBPerSec(probe, l.TransferPS(probe))
}

// Start schedules a transfer of n bytes on sim, serialized after any
// transfer already using the link, and calls done at completion.
// It returns the scheduled completion time.
func (l *BurstLink) Start(sim *Sim, n int, done func()) uint64 {
	return l.StartExtra(sim, n, 0, done)
}

// StartExtra is Start with extraPS of additional occupancy folded into
// the transfer — the hook fault injection uses to model a mid-stream
// stall. The link stays reserved through the stall, so transfers
// queued behind a stalled one are delayed exactly as they would be on
// the wire.
func (l *BurstLink) StartExtra(sim *Sim, n int, extraPS uint64, done func()) uint64 {
	start := sim.Now()
	if l.busyUntil > start {
		start = l.busyUntil
	}
	finish := start + l.TransferPS(n) + extraPS
	l.busyUntil = finish
	if done != nil {
		sim.Schedule(finish-sim.Now(), done)
	}
	return finish
}

// Release frees the link immediately: an aborted transfer deasserts
// the stream, so transfers launched afterwards need not queue behind
// the abandoned reservation. Already-scheduled completion callbacks
// are unaffected (their owners guard against stale delivery).
func (l *BurstLink) Release(sim *Sim) {
	if l.busyUntil > sim.Now() {
		l.busyUntil = sim.Now()
	}
}

// Efficiency returns the fraction of theoretical wire bandwidth the
// link achieves: beats / (beats + overhead) per burst.
func (l *BurstLink) Efficiency() float64 {
	l.validate()
	return float64(l.BurstBeats) / float64(l.BurstBeats+l.OverheadCycles)
}

// The concrete links of the paper's platform (Fig. 6 and §IV-A).
// Overhead parameters are structural: they count the stall cycles a
// burst experiences at each hop, and are chosen from the Zynq TRM
// figures the paper cites rather than from the paper's results.

// NewHPPort returns an AXI high-performance port: 64-bit at 150 MHz
// (1200 MB/s ceiling) with a small per-burst arbitration cost inside
// the PS memory interconnect.
func NewHPPort(name string) *BurstLink {
	return &BurstLink{Name: name, Clk: ClkHP, WidthBytes: 8, BurstBeats: 16, OverheadCycles: 2}
}

// NewGPPort returns an AXI general-purpose port: 32-bit, routed
// through the PS central interconnect; single-beat transactions pay
// the full address/response round trip (the reason AXI HWICAP is so
// slow).
func NewGPPort(name string) *BurstLink {
	return &BurstLink{Name: name, Clk: ClkCfg, WidthBytes: 4, BurstBeats: 1, OverheadCycles: 20}
}

// NewPCAPLink returns the PCAP configuration path: 32-bit at 100 MHz
// (400 MB/s ceiling), but every 64-beat burst from PS DDR crosses the
// PS central interconnect, which injects ~112 stall cycles — yielding
// the ~145 MB/s the paper measures.
func NewPCAPLink() *BurstLink {
	return &BurstLink{Name: "pcap", Clk: ClkCfg, WidthBytes: 4, BurstBeats: 64, OverheadCycles: 112}
}

// NewICAPLink returns the raw ICAPE2 primitive: 32-bit at 100 MHz,
// 400 MB/s, no protocol overhead of its own (the feeding path is the
// bottleneck).
func NewICAPLink() *BurstLink {
	return &BurstLink{Name: "icape2", Clk: ClkCfg, WidthBytes: 4, BurstBeats: 64, OverheadCycles: 0}
}

// NewZyCAPFeed returns the ZyCAP-style feed: a PL DMA master reading
// PS DDR through an HP port; per 256-beat burst the HP path costs ~12
// cycles of setup/arbitration at the configuration clock — 95.5% of
// the ICAP ceiling (382 MB/s).
func NewZyCAPFeed() *BurstLink {
	return &BurstLink{Name: "zycap-feed", Clk: ClkCfg, WidthBytes: 4, BurstBeats: 256, OverheadCycles: 12}
}

// NewPSDDRPort returns the PS-side DDR3 controller port: 32-bit
// DDR3-1066 (two transfers per 533 MHz clock, modeled as 8 bytes per
// cycle at 533 MHz) with ~20% efficiency loss to row activation and
// refresh. Peak ~3.4 GB/s — well above any single AXI port, which is
// why the AXI ports, not the DRAM, bound every transfer in this
// system.
func NewPSDDRPort() *BurstLink {
	return &BurstLink{Name: "ps-ddr3", Clk: ClkDDR, WidthBytes: 8, BurstBeats: 64, OverheadCycles: 16}
}

// NewPLDDRPort returns the PL-side DDR3 controller the paper's board
// provides (the Mini-ITX carries a PL-dedicated SODIMM): same device
// timing as the PS DDR, but private to the PL, so PR-bitstream reads
// never contend with frame traffic.
func NewPLDDRPort() *BurstLink {
	return &BurstLink{Name: "pl-ddr3", Clk: ClkDDR, WidthBytes: 8, BurstBeats: 64, OverheadCycles: 16}
}

// NewPLDDRFeed returns the paper's PR controller feed: the DMA reads
// partial bitstreams from the PL-side DDR3, never touching the PS
// interconnect; only DMA descriptor turnaround (~6.5 cycles per
// 256-beat burst, rounded to 7) remains — 97.4% of ceiling
// (~390 MB/s).
func NewPLDDRFeed() *BurstLink {
	return &BurstLink{Name: "plddr-feed", Clk: ClkCfg, WidthBytes: 4, BurstBeats: 256, OverheadCycles: 7}
}
