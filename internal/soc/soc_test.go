package soc

import (
	"math"
	"testing"
	"testing/quick"
)

func TestSimOrdersEvents(t *testing.T) {
	var s Sim
	var order []int
	s.Schedule(300, func() { order = append(order, 3) })
	s.Schedule(100, func() { order = append(order, 1) })
	s.Schedule(200, func() { order = append(order, 2) })
	end := s.Run()
	if end != 300 {
		t.Fatalf("final time %d", end)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order %v", order)
	}
}

func TestSimSameTimeFIFO(t *testing.T) {
	var s Sim
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		s.Schedule(100, func() { order = append(order, i) })
	}
	s.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events reordered: %v", order)
		}
	}
}

func TestSimNestedScheduling(t *testing.T) {
	var s Sim
	hits := 0
	s.Schedule(10, func() {
		hits++
		s.Schedule(10, func() {
			hits++
		})
	})
	if end := s.Run(); end != 20 {
		t.Fatalf("end time %d", end)
	}
	if hits != 2 {
		t.Fatalf("hits %d", hits)
	}
}

func TestSimRunUntil(t *testing.T) {
	var s Sim
	ran := 0
	s.Schedule(100, func() { ran++ })
	s.Schedule(500, func() { ran++ })
	s.RunUntil(200)
	if ran != 1 {
		t.Fatalf("ran %d events by t=200", ran)
	}
	if s.Now() != 200 {
		t.Fatalf("now = %d", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("pending = %d", s.Pending())
	}
}

func TestClockArithmetic(t *testing.T) {
	if ClkCfg.PeriodPS() != 10000 {
		t.Fatalf("100 MHz period = %d ps", ClkCfg.PeriodPS())
	}
	if ClkPL.PeriodPS() != 8000 {
		t.Fatalf("125 MHz period = %d ps", ClkPL.PeriodPS())
	}
	if ClkCfg.CyclesPS(5) != 50000 {
		t.Fatal("CyclesPS wrong")
	}
	if ClkCfg.PSToCycles(10001) != 2 {
		t.Fatal("PSToCycles should round up")
	}
}

func TestZeroClockPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("zero frequency did not panic")
		}
	}()
	Clock{Name: "bad"}.PeriodPS()
}

func TestLinkThroughputsMatchPaper(t *testing.T) {
	// §IV-A: HWICAP 19 MB/s, PCAP ~145 MB/s, ZyCAP 382 MB/s, the
	// paper's PR controller ~390 MB/s against a 400 MB/s ceiling.
	cases := []struct {
		link   *BurstLink
		lo, hi float64
	}{
		{NewGPPort("gp"), 18, 20},
		{NewPCAPLink(), 140, 150},
		{NewZyCAPFeed(), 378, 386},
		{NewPLDDRFeed(), 387, 393},
		{NewICAPLink(), 399, 401},
	}
	for _, c := range cases {
		got := c.link.Throughput()
		if got < c.lo || got > c.hi {
			t.Errorf("%s throughput %.1f MB/s, want in [%v, %v]", c.link.Name, got, c.lo, c.hi)
		}
	}
}

func TestLinkOrdering(t *testing.T) {
	// The qualitative claim: HWICAP << PCAP < ZyCAP < ours <= ICAP.
	gp := NewGPPort("gp").Throughput()
	pcap := NewPCAPLink().Throughput()
	zycap := NewZyCAPFeed().Throughput()
	ours := NewPLDDRFeed().Throughput()
	icap := NewICAPLink().Throughput()
	if !(gp < pcap && pcap < zycap && zycap < ours && ours <= icap) {
		t.Fatalf("ordering violated: %v %v %v %v %v", gp, pcap, zycap, ours, icap)
	}
	if ours/pcap < 2.6 {
		t.Fatalf("speedup over PCAP %.2f, paper reports > 2.6", ours/pcap)
	}
}

func TestTransferPSMonotone(t *testing.T) {
	l := NewPCAPLink()
	f := func(a, b uint32) bool {
		x, y := int(a%1<<20), int(b%1<<20)
		if x > y {
			x, y = y, x
		}
		return l.TransferPS(x) <= l.TransferPS(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTransferZeroBytes(t *testing.T) {
	if NewPCAPLink().TransferPS(0) != 0 {
		t.Fatal("zero-byte transfer should take no time")
	}
}

func TestLinkSerializesTransfers(t *testing.T) {
	var s Sim
	l := NewICAPLink()
	var f1, f2 uint64
	l.Start(&s, 4096, func() { f1 = s.Now() })
	l.Start(&s, 4096, func() { f2 = s.Now() })
	s.Run()
	if f2 != 2*f1 {
		t.Fatalf("second transfer finished at %d, want %d (serialized)", f2, 2*f1)
	}
}

func TestEfficiency(t *testing.T) {
	if e := NewICAPLink().Efficiency(); e != 1 {
		t.Fatalf("ICAP efficiency %v", e)
	}
	if e := NewGPPort("gp").Efficiency(); math.Abs(e-1.0/21) > 1e-12 {
		t.Fatalf("GP efficiency %v", e)
	}
}

func TestIRQControllerDispatch(t *testing.T) {
	z := NewZynq()
	fired := false
	z.IRQ.Register(IRQPRDone, func() { fired = true })
	z.IRQ.Raise(IRQPRDone)
	z.Sim.Run()
	if !fired {
		t.Fatal("handler did not run")
	}
	if z.IRQ.Raised(IRQPRDone) != 1 {
		t.Fatal("raise count wrong")
	}
}

func TestIRQEntryLatency(t *testing.T) {
	z := NewZynq()
	var at uint64
	z.IRQ.Register(IRQVehicleDMA, func() { at = z.Sim.Now() })
	z.IRQ.Raise(IRQVehicleDMA)
	z.Sim.Run()
	want := ClkPS.CyclesPS(60)
	if at != want {
		t.Fatalf("handler at %d ps, want %d", at, want)
	}
}

func TestIRQInvalidLinePanics(t *testing.T) {
	z := NewZynq()
	defer func() {
		if recover() == nil {
			t.Fatal("invalid IRQ did not panic")
		}
	}()
	z.IRQ.Raise(99)
}

func TestPipelineFPSMatchesPaper(t *testing.T) {
	// §V: the 125 MHz design sustains 50 fps at 1080x1920.
	p := NewDetectionPipeline("vehicle")
	fps := p.FPS(1920, 1080)
	if fps < 48 || fps > 55 {
		t.Fatalf("pipeline FPS %v, want ~50", fps)
	}
}

func TestStreamFrameRaisesIRQ(t *testing.T) {
	z := NewZynq()
	done := false
	z.StreamFrame(z.VehiclePipe, 1920, 1080, 3, z.HP0, IRQVehicleDMA, func() { done = true })
	z.Sim.Run()
	if !done {
		t.Fatal("completion callback not run")
	}
	if z.IRQ.Raised(IRQVehicleDMA) != 1 {
		t.Fatal("DMA IRQ not raised")
	}
	if z.Trace.Count("frame-done") != 1 {
		t.Fatal("frame-done not traced")
	}
}

func TestStreamFrameRealTimeBudget(t *testing.T) {
	// One 1080p frame must complete within a 20 ms frame slot.
	z := NewZynq()
	finish := z.StreamFrame(z.VehiclePipe, 1920, 1080, 3, z.HP0, IRQVehicleDMA, nil)
	z.Sim.Run()
	if ms := Seconds(finish) * 1e3; ms > 20.5 {
		t.Fatalf("frame took %.2f ms, exceeds the 50 fps slot", ms)
	}
}

func TestDDRPortsOutrunAXIPorts(t *testing.T) {
	// The DRAM is never the bottleneck: both DDR controllers sustain
	// several times any AXI port's bandwidth, so transfer times are
	// port-bound — the modeling assumption behind BurstLink-only
	// transfer costing.
	ps := NewPSDDRPort().Throughput()
	pl := NewPLDDRPort().Throughput()
	hp := NewHPPort("hp").Throughput()
	if ps < 3*hp || pl < 3*hp {
		t.Fatalf("DDR (%v, %v MB/s) should far exceed an HP port (%v MB/s)", ps, pl, hp)
	}
	if ps < 3000 || ps > 4300 {
		t.Fatalf("PS DDR throughput %v MB/s outside DDR3-1066 expectations", ps)
	}
}

func TestSeparateHPPortsAvoidContention(t *testing.T) {
	// Fig. 6 spreads the DMA streams over three HP ports. Two 1080p
	// streams fit one port (the 19.9 ms pipeline hides the serialized
	// 5.6 ms DMAs), but four streams on one port exceed the port's
	// budget and push completion past the slot, while spreading them
	// across ports keeps every stream inside it.
	shared := NewZynq()
	var last uint64
	for i := 0; i < 4; i++ {
		last = shared.StreamFrame(shared.VehiclePipe, 1920, 1080, 3, shared.HP0, IRQVehicleDMA, nil)
	}
	shared.Sim.Run()

	split := NewZynq()
	ports := []*BurstLink{split.HP0, split.HP1, split.HP2, split.HP0}
	var lastSplit uint64
	for i := 0; i < 4; i++ {
		f := split.StreamFrame(split.VehiclePipe, 1920, 1080, 3, ports[i], IRQVehicleDMA, nil)
		if f > lastSplit {
			lastSplit = f
		}
	}
	split.Sim.Run()

	if last <= lastSplit {
		t.Fatalf("4 streams on one port (%d ps) should finish later than spread over 3 (%d ps)",
			last, lastSplit)
	}
	if ms := Seconds(lastSplit) * 1e3; ms > 20.5 {
		t.Fatalf("spread streams took %.2f ms, exceeding the frame slot", ms)
	}
	if ms := Seconds(last) * 1e3; ms <= 20.5 {
		t.Fatalf("4-on-one-port took only %.2f ms; contention not modeled", ms)
	}
}

func TestMBPerSec(t *testing.T) {
	// 400 bytes in 1 microsecond = 400 MB/s.
	if got := MBPerSec(400, 1_000_000); math.Abs(got-400) > 1e-9 {
		t.Fatalf("MBPerSec = %v", got)
	}
	if MBPerSec(100, 0) != 0 {
		t.Fatal("zero duration should yield zero")
	}
}
