// Package soc models the Zynq-7000 system-on-chip platform of the
// paper at the transaction level: a discrete-event simulation core,
// clock domains for the processing system (PS) and programmable logic
// (PL), DDR3 memory ports, and the high-performance (HP) and
// general-purpose (GP) AXI port bandwidth characteristics that
// determine the reconfiguration throughputs of §IV-A.
//
// The model is cycle-approximate: transfers are costed per burst with
// structural overhead parameters (interconnect stalls, transaction
// setup), from which the paper's measured throughputs emerge rather
// than being hard-coded.
//
// lint:simtime
package soc

import (
	"container/heap"
	"fmt"
)

// Sim is a discrete-event simulator with picosecond resolution.
// The zero value is ready to use.
type Sim struct {
	now   uint64
	queue eventQueue
	seq   uint64 // tie-break so same-time events run in schedule order
}

type simEvent struct {
	at  uint64
	seq uint64
	fn  func()
}

type eventQueue []simEvent

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(simEvent)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// Now returns the current simulated time in picoseconds.
func (s *Sim) Now() uint64 { return s.now }

// Schedule runs fn after delay picoseconds of simulated time.
func (s *Sim) Schedule(delay uint64, fn func()) {
	heap.Push(&s.queue, simEvent{at: s.now + delay, seq: s.seq, fn: fn})
	s.seq++
}

// Run processes events until the queue is empty and returns the final
// simulated time.
func (s *Sim) Run() uint64 {
	for s.queue.Len() > 0 {
		e := heap.Pop(&s.queue).(simEvent)
		s.now = e.at
		e.fn()
	}
	return s.now
}

// RunUntil processes events with timestamps <= deadline (events
// scheduled during execution included), then sets the clock to the
// deadline if it has not advanced past it.
func (s *Sim) RunUntil(deadline uint64) {
	for s.queue.Len() > 0 && s.queue[0].at <= deadline {
		e := heap.Pop(&s.queue).(simEvent)
		s.now = e.at
		e.fn()
	}
	if s.now < deadline {
		s.now = deadline
	}
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }

// Clock is a frequency domain.
type Clock struct {
	Name   string
	FreqHz uint64
}

// PeriodPS returns the clock period in picoseconds (rounded).
func (c Clock) PeriodPS() uint64 {
	if c.FreqHz == 0 {
		// lint:invariant clocks are package constants; zero frequency is a construction bug
		panic(fmt.Sprintf("soc: clock %q has zero frequency", c.Name))
	}
	return 1_000_000_000_000 / c.FreqHz
}

// CyclesPS returns the duration of n cycles in picoseconds.
func (c Clock) CyclesPS(n uint64) uint64 { return n * c.PeriodPS() }

// PSToCycles converts a picosecond duration to whole cycles
// (rounding up).
func (c Clock) PSToCycles(ps uint64) uint64 {
	p := c.PeriodPS()
	return (ps + p - 1) / p
}

// Standard Zynq-7000 clock domains as configured in the paper's
// system (PL detection fabric at 125 MHz, configuration logic at
// 100 MHz).
var (
	ClkPS  = Clock{Name: "ps-cpu", FreqHz: 666_666_666}
	ClkPL  = Clock{Name: "pl-fabric", FreqHz: 125_000_000}
	ClkCfg = Clock{Name: "cfg", FreqHz: 100_000_000}
	ClkHP  = Clock{Name: "hp-port", FreqHz: 150_000_000}
	ClkDDR = Clock{Name: "ddr", FreqHz: 533_000_000}
)

// Seconds converts picoseconds to seconds.
func Seconds(ps uint64) float64 { return float64(ps) * 1e-12 }

// MBPerSec returns throughput in MB/s (10^6 bytes) for bytes moved in
// ps picoseconds.
func MBPerSec(bytes int, ps uint64) float64 {
	if ps == 0 {
		return 0
	}
	return float64(bytes) / 1e6 / Seconds(ps)
}
