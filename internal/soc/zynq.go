package soc

import (
	"fmt"

	"advdet/internal/fault"
	"advdet/internal/trace"
)

// IRQ identifiers for the PL-to-PS interrupt lines of Fig. 6.
const (
	IRQVehicleDMA = iota
	IRQPedestrianDMA
	IRQPRDone
	numIRQs
)

// IRQController models the PS generic interrupt controller: raising a
// line schedules the registered handler after a fixed PS-side entry
// latency.
type IRQController struct {
	sim      *Sim
	handlers [numIRQs]func()
	// EntryCycles is the interrupt entry latency in PS CPU cycles.
	EntryCycles uint64
	raised      [numIRQs]int
	dropped     [numIRQs]int
	fault       *fault.Plan
}

// NewIRQController returns a controller bound to sim with a typical
// ~60-cycle GIC-to-handler entry latency.
func NewIRQController(sim *Sim) *IRQController {
	return &IRQController{sim: sim, EntryCycles: 60}
}

// Register installs the handler for an IRQ line.
func (ic *IRQController) Register(irq int, fn func()) {
	if irq < 0 || irq >= numIRQs {
		// lint:invariant IRQ lines are package constants; out-of-range is a wiring bug
		panic(fmt.Sprintf("soc: invalid IRQ %d", irq))
	}
	ic.handlers[irq] = fn
}

// Raise asserts the line; the handler (if any) runs after the entry
// latency.
func (ic *IRQController) Raise(irq int) {
	if irq < 0 || irq >= numIRQs {
		// lint:invariant IRQ lines are package constants; out-of-range is a wiring bug
		panic(fmt.Sprintf("soc: invalid IRQ %d", irq))
	}
	ic.raised[irq]++
	if ic.fault.OnIRQ(irq) {
		// The line was asserted but the PS never sees it: the fault
		// model for a masked/lost interrupt. Raised still counts the
		// assertion; Dropped records the loss.
		ic.dropped[irq]++
		return
	}
	if fn := ic.handlers[irq]; fn != nil {
		ic.sim.Schedule(ClkPS.CyclesPS(ic.EntryCycles), fn)
	}
}

// Raised reports how many times the line has been asserted.
func (ic *IRQController) Raised(irq int) int { return ic.raised[irq] }

// Dropped reports how many assertions of the line were lost to fault
// injection.
func (ic *IRQController) Dropped(irq int) int { return ic.dropped[irq] }

// SetFaultPlan installs the fault injector consulted on every Raise.
// A nil plan disables injection.
func (ic *IRQController) SetFaultPlan(p *fault.Plan) { ic.fault = p }

// PipelineModel is the timing model of a streaming detection
// accelerator on the PL: a deep pipeline consuming CyclesPerPixel
// fabric cycles per input pixel (1.0 would be the ideal one
// pixel/cycle; line blanking and memory access patterns push the
// implemented pipelines to ~1.2, which is what turns the 125 MHz
// fabric into the paper's 50 fps at 1080p).
type PipelineModel struct {
	Name           string
	Clk            Clock
	CyclesPerPixel float64
}

// NewDetectionPipeline returns the vehicle/pedestrian pipeline timing
// of the paper: 125 MHz, 1.2 cycles/pixel.
func NewDetectionPipeline(name string) PipelineModel {
	return PipelineModel{Name: name, Clk: ClkPL, CyclesPerPixel: 1.2}
}

// FramePS returns the time to stream one w x h frame through the
// pipeline.
func (p PipelineModel) FramePS(w, h int) uint64 {
	cycles := uint64(float64(w*h) * p.CyclesPerPixel)
	return p.Clk.CyclesPS(cycles)
}

// FPS returns the sustained frame rate for w x h frames.
func (p PipelineModel) FPS(w, h int) float64 {
	return 1 / Seconds(p.FramePS(w, h))
}

// Zynq assembles the platform of Fig. 6: the simulator, clocks, the
// port inventory, the interrupt controller and a tracer.
type Zynq struct {
	Sim   *Sim
	IRQ   *IRQController
	Trace *trace.Tracer

	// Ports of Fig. 6: three HP ports for frame/result traffic and a
	// GP port for control.
	HP0, HP1, HP2 *BurstLink
	GP0           *BurstLink

	// Configuration paths (§IV-A).
	PCAP      *BurstLink
	ICAP      *BurstLink
	ZyCAPFeed *BurstLink
	PLDDRFeed *BurstLink

	// Detection pipelines.
	VehiclePipe    PipelineModel
	PedestrianPipe PipelineModel
}

// SetFaultPlan installs the fault injector on the platform's shared
// infrastructure (currently the interrupt controller; DMA engines and
// PR controllers take the plan directly). A nil plan disables
// injection.
func (z *Zynq) SetFaultPlan(p *fault.Plan) { z.IRQ.SetFaultPlan(p) }

// NewZynq builds the platform.
func NewZynq() *Zynq {
	sim := &Sim{}
	return &Zynq{
		Sim:            sim,
		IRQ:            NewIRQController(sim),
		Trace:          &trace.Tracer{},
		HP0:            NewHPPort("hp0"),
		HP1:            NewHPPort("hp1"),
		HP2:            NewHPPort("hp2"),
		GP0:            NewGPPort("gp0"),
		PCAP:           NewPCAPLink(),
		ICAP:           NewICAPLink(),
		ZyCAPFeed:      NewZyCAPFeed(),
		PLDDRFeed:      NewPLDDRFeed(),
		VehiclePipe:    NewDetectionPipeline("vehicle"),
		PedestrianPipe: NewDetectionPipeline("pedestrian"),
	}
}

// StreamFrame models one frame traversing input DMA (HP port), the
// named pipeline and the result DMA, calling done at completion and
// raising the DMA completion IRQ. It returns the completion time.
// Frame input dominates; the detection-result payload is tiny and is
// folded into the pipeline drain.
func (z *Zynq) StreamFrame(pipe PipelineModel, w, h, bytesPerPixel int, hp *BurstLink, irq int, done func()) uint64 {
	frameBytes := w * h * bytesPerPixel
	// The input DMA occupies the HP port (serializing with any other
	// stream sharing it) while the pipeline processes the stream; the
	// frame completes when the slower of the two is done, plus one
	// pipeline fill latency.
	dmaFinish := hp.Start(z.Sim, frameBytes, nil)
	pipeFinish := z.Sim.Now() + pipe.FramePS(w, h)
	finish := dmaFinish
	if pipeFinish > finish {
		finish = pipeFinish
	}
	finish += pipe.Clk.CyclesPS(2048) // pipeline fill/drain latency
	z.Trace.Record(z.Sim.Now(), pipe.Name, "frame-start", fmt.Sprintf("%dx%d", w, h))
	z.Sim.Schedule(finish-z.Sim.Now(), func() {
		z.Trace.Record(z.Sim.Now(), pipe.Name, "frame-done", "")
		z.IRQ.Raise(irq)
		if done != nil {
			done()
		}
	})
	return finish
}
