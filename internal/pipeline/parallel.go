package pipeline

import (
	"context"
	"time"

	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/par"
	"advdet/internal/svm"
)

// hogScan describes one multi-scale HOG+SVM sliding-window scan: the
// shared-cache, worker-pool equivalent of the serial scanPyramid
// reference. The pyramid levels are resized concurrently, each
// level's gradient/cell-histogram stages are computed once into a
// read-only hog.FeatureMap, and window rows are fanned out across the
// pool, with every row writing its own output slot so the assembled
// detection list is identical for every worker count.
//
// When every scan position lies on the cell grid (stride a multiple
// of the cell size — true for all shipped detectors), the scan takes
// the block-response fast path: each level's blocks are L2Hys-
// normalized exactly once into a hog.BlockGrid, the svm.BlockModel
// precomputes per-anchor partial responses, and a window's margin
// collapses from an O(descriptorLen) copy+normalize+dot to a sum of
// bw*bh cached reads plus bias — the software rendition of the PL
// datapath, whose HOG memories are written once per frame and only
// read by the window evaluators. Unaligned strides keep the
// descriptor path with its per-window Cfg.Extract crop fallback.
type hogScan struct {
	Cfg        hog.Config
	Model      *svm.Model
	WinW, WinH int
	Stride     int
	Scale      float64
	Thresh     float64
	Kind       Kind
	// NoBlockResponse forces the per-window descriptor path. The
	// block-response engine is on by default; benchmarks and
	// equivalence tests use this to compare the two.
	NoBlockResponse bool
}

// rowTask addresses one window row of one pyramid level.
type rowTask struct{ level, y int }

// rowScratch is the per-worker scratch of the window-row loop: the
// descriptor buffer the fallback path assembles into. The block-
// response path needs no per-window scratch at all.
type rowScratch struct{ desc []float64 }

// ScanTimings breaks one multi-scale scan into its wall-clock stages,
// mirroring the paper's Fig. 2 datapath: pyramid resize, gradient +
// cell-histogram feature maps, block normalization, per-anchor SVM
// partial responses, and the window scoring sweep. Detectors fill it
// via DetectTimedCtx so the telemetry layer can attribute the
// vehicle-scan budget to sub-stages.
type ScanTimings struct {
	Resize   time.Duration // pyramid level resizing
	Feature  time.Duration // gradient + cell-histogram feature maps
	Blocks   time.Duration // block L2Hys normalization (block grids)
	Response time.Duration // per-anchor partial SVM responses
	Windows  time.Duration // window scoring + detection assembly
	// BlockPath reports whether the block-response fast path ran.
	BlockPath bool
}

// scanPositions counts the window positions of a scan axis.
func scanPositions(size, win, stride int) int {
	if size < win {
		return 0
	}
	return (size-win)/stride + 1
}

// run scans every pyramid level of g with the given worker count,
// returning detections in deterministic level-major, raster order.
//
// lint:hotpath
func (s hogScan) run(ctx context.Context, g *img.Gray, workers int) ([]Detection, error) {
	return s.runTimed(ctx, g, workers, nil)
}

// runTimed is run with optional per-stage wall-clock attribution
// (tm may be nil; it is written only on success).
func (s hogScan) runTimed(ctx context.Context, g *img.Gray, workers int, tm *ScanTimings) ([]Detection, error) {
	workers = par.Workers(workers)
	sc := borrowScanScratch()
	defer releaseScanScratch(sc)

	var t ScanTimings
	timed := tm != nil
	var last time.Time
	if timed {
		last = time.Now()
	}
	lap := func(d *time.Duration) {
		if !timed {
			return
		}
		now := time.Now()
		*d += now.Sub(last)
		last = now
	}

	// Stage 1: pyramid levels, resized concurrently (each level reads
	// only the source frame) into buffers reused across frames.
	sizes := img.PyramidSizes(g.W, g.H, s.Scale, s.WinW, s.WinH)
	nl := len(sizes)
	sc.setLevels(nl)
	if err := par.ForEach(ctx, workers, nl, func(i int) {
		sc.levels[i] = img.ResizeGrayInto(sc.levels[i], g, sizes[i][0], sizes[i][1])
	}); err != nil {
		return nil, err
	}
	lap(&t.Resize)

	// The fast path applies when every scan position is cell-aligned,
	// so each window's blocks exist in the level block grid.
	cell := s.Cfg.CellSize
	bw, bh := s.Cfg.BlocksFor(s.WinW, s.WinH)
	blockLen := s.Cfg.BlockCells * s.Cfg.BlockCells * s.Cfg.Bins
	useBlocks := !s.NoBlockResponse && s.Stride%cell == 0 && bw > 0 && bh > 0 &&
		sc.bm.Init(s.Model, bw, bh, blockLen) == nil
	// An Init mismatch (model length vs window geometry) falls through
	// to the descriptor path, where Model.Margin reports the wiring
	// bug exactly as it always has.

	// Stage 2: per level, one shared feature cache (row-parallel); on
	// the fast path also the normalized block grid and the per-anchor
	// partial SVM responses, each computed once per frame instead of
	// once per window.
	for i := 0; i < nl; i++ {
		level := sc.levels[i]
		fm := sc.maps[i]
		if err := fm.ComputeCtx(ctx, s.Cfg, level, workers, &sc.hs); err != nil {
			return nil, err
		}
		lap(&t.Feature)
		sc.resp[i] = sc.resp[i][:0] // marks the level descriptor-path
		sc.nax[i] = 0
		if !useBlocks {
			continue
		}
		nax := scanPositions(level.W, s.WinW, s.Stride)
		nay := scanPositions(level.H, s.WinH, s.Stride)
		if nax == 0 || nay == 0 {
			continue
		}
		bg := sc.grids[i]
		if err := bg.ComputeCtx(ctx, fm, workers); err != nil {
			return nil, err
		}
		lap(&t.Blocks)
		nbx, nby := bg.Dims()
		lat := svm.Lattice{
			NBX: nbx, NBY: nby,
			StepX: s.Stride / cell, StepY: s.Stride / cell,
			NAX: nax, NAY: nay,
			BlockStride: s.Cfg.BlockStride,
		}
		sc.resp[i] = growF64(sc.resp[i], nax*nay*bw*bh)
		if err := sc.bm.Responses(ctx, workers, bg.Data(), lat, sc.resp[i]); err != nil {
			return nil, err
		}
		sc.nax[i] = nax
		lap(&t.Response)
	}

	// Stage 3: one task per window row across all levels, pre-sized
	// from the pyramid geometry; each task owns an output slot, so
	// assembly order is independent of worker scheduling.
	nt := 0
	for i := 0; i < nl; i++ {
		if sc.levels[i].W < s.WinW {
			continue
		}
		nt += scanPositions(sc.levels[i].H, s.WinH, s.Stride)
	}
	tasks, results := sc.setTasks(nt)
	k := 0
	for i := 0; i < nl; i++ {
		level := sc.levels[i]
		if level.W < s.WinW {
			continue
		}
		for y := 0; y+s.WinH <= level.H; y += s.Stride {
			tasks[k] = rowTask{i, y}
			k++
		}
	}
	descLen := s.Cfg.DescriptorLen(s.WinW, s.WinH)
	err := par.ForEachLocal(ctx, workers, nt,
		func() *rowScratch { return new(rowScratch) },
		func(ti int, rs *rowScratch) {
			rt := tasks[ti]
			level, fm := sc.levels[rt.level], sc.maps[rt.level]
			fx := float64(g.W) / float64(level.W)
			fy := float64(g.H) / float64(level.H)
			var dets []Detection
			box := func(x int) img.Rect {
				return img.Rect{
					X0: int(float64(x) * fx),
					Y0: int(float64(rt.y) * fy),
					X1: int(float64(x+s.WinW) * fx),
					Y1: int(float64(rt.y+s.WinH) * fy),
				}
			}
			if resp := sc.resp[rt.level]; len(resp) > 0 {
				// Block-response fast path: a window's margin is the
				// bias plus its contiguous cached partials — zero
				// copies, zero normalization, zero allocation.
				nax, ay := sc.nax[rt.level], rt.y/s.Stride
				for ax := 0; ax < nax; ax++ {
					if m := sc.bm.MarginAt(resp, nax, ax, ay); m > s.Thresh {
						dets = append(dets, Detection{Box: box(ax * s.Stride), Score: m, Kind: s.Kind})
					}
				}
			} else {
				for x := 0; x+s.WinW <= level.W; x += s.Stride {
					if cap(rs.desc) < descLen {
						rs.desc = make([]float64, descLen)
					}
					desc := fm.Descriptor(x, rt.y, s.WinW, s.WinH, rs.desc[:descLen])
					if desc == nil {
						// Window off the cell grid (stride not a
						// multiple of the cell size, or partial border
						// cells): fall back to direct extraction.
						desc = s.Cfg.Extract(level.SubImage(img.Rect{X0: x, Y0: rt.y, X1: x + s.WinW, Y1: rt.y + s.WinH}))
					}
					if m := s.Model.Margin(desc); m > s.Thresh {
						dets = append(dets, Detection{Box: box(x), Score: m, Kind: s.Kind})
					}
				}
			}
			results[ti] = dets
		})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	all := make([]Detection, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	lap(&t.Windows)
	if timed {
		t.BlockPath = useBlocks
		*tm = t
	}
	return all, nil
}
