package pipeline

import (
	"context"
	"time"

	"advdet/internal/fixed"
	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/par"
	"advdet/internal/svm"
)

// hogScan describes one multi-scale HOG+SVM sliding-window scan: the
// shared-cache, worker-pool equivalent of the serial scanPyramid
// reference. The pyramid levels are resized concurrently, each
// level's gradient/cell-histogram stages are computed once into a
// read-only hog.FeatureMap, and window rows are fanned out across the
// pool, with every row writing its own output slot so the assembled
// detection list is identical for every worker count.
//
// When every scan position lies on the cell grid (stride a multiple
// of the cell size — true for all shipped detectors), the scan takes
// the block-response fast path: each level's blocks are L2Hys-
// normalized exactly once into a hog.BlockGrid and windows are scored
// against the svm.BlockModel — the software rendition of the PL
// datapath, whose HOG memories are written once per frame and only
// read by the window evaluators. Within the fast path three scoring
// strategies exist:
//
//   - early reject (default): each window's block partials are
//     accumulated in descending weight-mass order and the window is
//     abandoned as soon as the remaining blocks provably cannot lift
//     the margin above the threshold. Surviving windows re-sum their
//     stashed partials in canonical order, so reported margins are
//     bitwise identical to the full evaluation.
//   - full margin (NoEarlyReject): the PR5 plane path — per-anchor
//     partial responses precomputed by svm.BlockModel.Responses,
//     windows summed from the plane.
//   - quantized (Quantized): blocks quantized to Q1.14 int16,
//     margins accumulated in the integer datapath of the PL
//     (svm.QuantBlockModel). Decisions outside the analytic error
//     band are final; borderline windows re-score through the float
//     path, so the detection box set is identical to the float scan
//     and scores diverge by at most QuantBlockModel.ErrBound.
//
// Unaligned strides keep the descriptor path with its per-window
// Cfg.Extract crop fallback.
type hogScan struct {
	Cfg        hog.Config
	Model      *svm.Model
	WinW, WinH int
	Stride     int
	Scale      float64
	Thresh     float64
	Kind       Kind
	// NoBlockResponse forces the per-window descriptor path. The
	// block-response engine is on by default; benchmarks and
	// equivalence tests use this to compare the two.
	NoBlockResponse bool
	// NoEarlyReject disables the partial-margin early exit and scores
	// every window from a precomputed response plane (the PR5
	// behaviour). Equivalence tests pin the two paths byte-identical.
	NoEarlyReject bool
	// Quantized scores windows in the int16/int32 fixed-point datapath
	// with float fallback for borderline margins. Ignored (with float
	// fallback) when the model's weights exceed the quantizer's range.
	Quantized bool
	// Prefilter, when non-nil and trained at exactly (WinW, WinH),
	// integral-image-rejects windows before any block scoring. A
	// cascade trained at a different window geometry is ignored: its
	// scores would be evaluated over the wrong pixels.
	Prefilter *haar.Cascade
	// Temporal, when non-nil, carries the feature/block/response stack
	// across frames and recomputes only what the frame's dirty tiles
	// invalidate. Output stays byte-identical to a cold scan; the cache
	// serves one frame sequence and must not be shared across
	// detectors or concurrent scans.
	Temporal *TemporalCache
}

// rowTask addresses one window row of one pyramid level.
type rowTask struct{ level, y int }

// rowScratch is the per-worker scratch of the window-row loop: the
// descriptor buffer the fallback path assembles into and the partial-
// margin stash of the early-reject path.
type rowScratch struct {
	desc    []float64
	partial []float64
}

// ScanTimings breaks one multi-scale scan into its wall-clock stages,
// mirroring the paper's Fig. 2 datapath: pyramid resize, gradient +
// cell-histogram feature maps, haar prefilter integrals, block
// normalization, per-anchor SVM partial responses (or block
// quantization), and the window scoring sweep. Detectors fill it via
// DetectTimedCtx so the telemetry layer can attribute the
// vehicle-scan budget to sub-stages.
type ScanTimings struct {
	Resize    time.Duration // pyramid level resizing
	Feature   time.Duration // gradient + cell-histogram feature maps
	Prefilter time.Duration // haar prefilter integral images
	Blocks    time.Duration // block L2Hys normalization (block grids)
	Response  time.Duration // per-anchor SVM responses / quantization
	Windows   time.Duration // window scoring + detection assembly
	Temporal  time.Duration // tile fingerprinting + dirty-mask dilation
	// TileHits/TileMisses/TileRefreshes are the temporal cache's tile
	// accounting for this scan (all zero without a cache): reused,
	// content-changed, and no-comparable-fingerprint tiles.
	TileHits      int
	TileMisses    int
	TileRefreshes int
	// BlockPath reports whether the block-response fast path ran.
	BlockPath bool
	// Quantized reports whether the fixed-point scoring path ran.
	Quantized bool
	// TemporalPath reports whether a temporal cache served the scan.
	TemporalPath bool
}

// scanPositions counts the window positions of a scan axis.
func scanPositions(size, win, stride int) int {
	if size < win {
		return 0
	}
	return (size-win)/stride + 1
}

// run scans every pyramid level of g with the given worker count,
// returning detections in deterministic level-major, raster order.
//
// lint:hotpath
func (s hogScan) run(ctx context.Context, g *img.Gray, workers int) ([]Detection, error) {
	return s.runTimed(ctx, g, workers, nil)
}

// runTimed is run with optional per-stage wall-clock attribution
// (tm may be nil; it is written only on success).
func (s hogScan) runTimed(ctx context.Context, g *img.Gray, workers int, tm *ScanTimings) (dets []Detection, err error) {
	workers = par.Workers(workers)
	sc := borrowScanScratch()
	defer releaseScanScratch(sc)
	tc := s.Temporal
	if tc != nil {
		// An abandoned scan (cancellation, validation failure) leaves
		// cached planes out of step with the already-updated tile
		// fingerprints; the next frame must scan cold rather than trust
		// them.
		defer func() {
			if err != nil {
				tc.Invalidate()
			}
		}()
	}

	var t ScanTimings
	timed := tm != nil
	var last time.Time
	if timed {
		last = time.Now()
	}
	lap := func(d *time.Duration) {
		if !timed {
			return
		}
		now := time.Now()
		*d += now.Sub(last)
		last = now
	}

	// Stage 1: pyramid levels, resized concurrently (each level reads
	// only the source frame) into buffers reused across frames. Level 0
	// is always the source size, so it aliases the frame itself instead
	// of copying it — the scan only reads levels, and the alias is
	// swapped back out before the scratch returns to the pool.
	sizes := img.PyramidSizes(g.W, g.H, s.Scale, s.WinW, s.WinH)
	nl := len(sizes)
	sc.setLevels(nl)
	// The per-level stack lives in the pooled scratch — or, with a
	// temporal cache, in the cache's own arenas, so that no later
	// scratch borrow can overwrite state that must survive the frame
	// boundary. These views are what both stages read and write.
	maps, grids := sc.maps, sc.grids
	resp, qgrids, qresp := sc.resp, sc.qgrids, sc.qresp
	if tc != nil {
		tc.begin(temporalSig{
			model: s.Model, cfg: s.Cfg,
			winW: s.WinW, winH: s.WinH, stride: s.Stride,
			scale: s.Scale, thresh: s.Thresh,
			noBlock: s.NoBlockResponse, noEarly: s.NoEarlyReject, quant: s.Quantized,
			pref: s.Prefilter, w: g.W, h: g.H,
		}, nl)
		maps, grids = tc.maps, tc.grids
		resp, qgrids, qresp = tc.resp, tc.qgrids, tc.qresp
	}
	first := 0
	if nl > 0 && sizes[0][0] == g.W && sizes[0][1] == g.H {
		sc.level0 = sc.levels[0]
		sc.level0Aliased = true
		sc.levels[0] = g
		first = 1
	}
	if err := par.ForEach(ctx, workers, nl-first, func(i int) {
		i += first
		sc.levels[i] = img.ResizeGrayInto(sc.levels[i], g, sizes[i][0], sizes[i][1])
	}); err != nil {
		return nil, err
	}
	lap(&t.Resize)

	// The fast path applies when every scan position is cell-aligned,
	// so each window's blocks exist in the level block grid.
	cell := s.Cfg.CellSize
	bw, bh := s.Cfg.BlocksFor(s.WinW, s.WinH)
	blockLen := s.Cfg.BlockCells * s.Cfg.BlockCells * s.Cfg.Bins
	useBlocks := !s.NoBlockResponse && s.Stride%cell == 0 && bw > 0 && bh > 0 &&
		sc.bm.Init(s.Model, bw, bh, blockLen) == nil
	// An Init mismatch (model length vs window geometry) falls through
	// to the descriptor path, where Model.Margin reports the wiring
	// bug exactly as it always has. A quantizer Init failure (weights
	// beyond the int16 range) silently keeps the float path: quantized
	// scoring is an optimization, not a different contract.
	useQuant := useBlocks && s.Quantized &&
		sc.qbm.Init(s.Model, bw, bh, blockLen, s.Thresh) == nil
	useEarly := !s.NoEarlyReject
	usePref := false
	if s.Prefilter != nil {
		pw, ph := s.Prefilter.Window()
		usePref = pw == s.WinW && ph == s.WinH
	}

	// Stage 2: per level, one shared feature cache (row-parallel); on
	// the fast path also the normalized block grid, computed once per
	// frame instead of once per window, plus whichever response
	// representation the scoring strategy needs.
	for i := 0; i < nl; i++ {
		level := sc.levels[i]
		fm := maps[i]
		// Temporal refresh mode: fingerprint the level's tiles and
		// decide whether its cached stack can be reused wholesale
		// (clean), refreshed cell-by-cell (partial), or must be
		// recomputed (full — also the only mode without a cache).
		mode := tcFull
		if tc != nil {
			mode = tc.observe(i, level, s.Cfg)
			lap(&t.Temporal)
		}
		switch mode {
		case tcClean:
			// Every tile fingerprint matched: the cached feature map is
			// bitwise what ComputeCtx would produce.
		case tcPartial:
			if err := fm.ComputeDirtyCtx(ctx, s.Cfg, level, workers, tc.cellMask); err != nil {
				return nil, err
			}
		default:
			if err := fm.ComputeCtx(ctx, s.Cfg, level, workers, &sc.hs); err != nil {
				return nil, err
			}
		}
		lap(&t.Feature)
		// Reset the level's scan state first: a level that skips the
		// fast path below must never be read through a previous frame's
		// plane or lattice. Cache-owned planes persist by design — their
		// validity is keyed by the signature and the tile fingerprints.
		if tc == nil {
			resp[i] = resp[i][:0]
			qgrids[i] = qgrids[i][:0]
			qresp[i] = qresp[i][:0]
		}
		sc.lats[i] = svm.Lattice{}
		sc.nax[i] = 0
		if usePref && level.W >= s.WinW && level.H >= s.WinH {
			sc.its[i].Compute(level)
			lap(&t.Prefilter)
		}
		if !useBlocks {
			continue
		}
		nax := scanPositions(level.W, s.WinW, s.Stride)
		nay := scanPositions(level.H, s.WinH, s.Stride)
		if nax == 0 || nay == 0 {
			continue
		}
		bg := grids[i]
		dirtyBlocks := 0
		switch mode {
		case tcClean:
			// Cached grid current; nothing to normalize.
		case tcPartial:
			cw, ch := s.Cfg.CellsFor(level.W, level.H)
			pnbx, pnby := bg.Dims()
			dirtyBlocks = tc.dirtyBlocks(s.Cfg, cw, ch, pnbx, pnby)
			if err := bg.ComputeDirtyCtx(ctx, fm, workers, tc.blockMask[:pnbx*pnby]); err != nil {
				return nil, err
			}
		default:
			if err := bg.ComputeCtx(ctx, fm, workers); err != nil {
				return nil, err
			}
		}
		lap(&t.Blocks)
		nbx, nby := bg.Dims()
		lat := svm.Lattice{
			NBX: nbx, NBY: nby,
			StepX: s.Stride / cell, StepY: s.Stride / cell,
			NAX: nax, NAY: nay,
			BlockStride: s.Cfg.BlockStride,
		}
		if err := sc.bm.CheckLattice(lat, len(bg.Data())); err != nil {
			return nil, err
		}
		switch {
		case useQuant:
			// A cached quantized plane whose length disagrees with the
			// grid (first quantized frame after a regrow) is re-derived
			// in full; quantization is elementwise, so a per-block
			// requantize is bitwise the full pass.
			fullQuant := mode == tcFull || len(qgrids[i]) != len(bg.Data())
			switch {
			case fullQuant:
				qgrids[i] = fixed.QuantizeQ14(qgrids[i], bg.Data())
			case mode == tcPartial && dirtyBlocks > 0:
				requantDirtyBlocks(qgrids[i], bg.Data(), blockLen, tc.blockMask[:nbx*nby])
			}
			if err := sc.qbm.CheckLattice(lat, len(qgrids[i])); err != nil {
				return nil, err
			}
			if !useEarly {
				need := nax * nay * bw * bh
				fullResp := fullQuant || len(qresp[i]) != need
				qresp[i] = growI32(qresp[i], need) // lint:alloc grows to the largest level once
				switch {
				case fullResp:
					if err := sc.qbm.Responses(ctx, workers, qgrids[i], lat, qresp[i]); err != nil {
						return nil, err
					}
				case mode == tcPartial && dirtyBlocks > 0:
					tc.dirtyAnchors(lat, bw, bh)
					if err := sc.qbm.ResponsesDirty(ctx, workers, qgrids[i], lat, qresp[i], tc.anchMask[:nax*nay]); err != nil {
						return nil, err
					}
				}
			}
		case !useEarly:
			need := nax * nay * bw * bh
			fullResp := mode == tcFull || len(resp[i]) != need
			resp[i] = growF64(resp[i], need) // lint:alloc grows to the largest level once
			switch {
			case fullResp:
				if err := sc.bm.Responses(ctx, workers, bg.Data(), lat, resp[i]); err != nil {
					return nil, err
				}
			case mode == tcPartial && dirtyBlocks > 0:
				tc.dirtyAnchors(lat, bw, bh)
				if err := sc.bm.ResponsesDirty(ctx, workers, bg.Data(), lat, resp[i], tc.anchMask[:nax*nay]); err != nil {
					return nil, err
				}
			}
		}
		// With the early exit, margins are computed on demand in stage
		// 3 straight from the block grid: precomputing every anchor's
		// partials would spend the work the exit exists to skip.
		sc.lats[i] = lat
		sc.nax[i] = nax
		lap(&t.Response)
	}

	// Stage 3: one task per window row across all levels, pre-sized
	// from the pyramid geometry; each task owns an output slot, so
	// assembly order is independent of worker scheduling.
	nt := 0
	for i := 0; i < nl; i++ {
		if sc.levels[i].W < s.WinW {
			continue
		}
		nt += scanPositions(sc.levels[i].H, s.WinH, s.Stride)
	}
	tasks, results := sc.setTasks(nt)
	k := 0
	for i := 0; i < nl; i++ {
		level := sc.levels[i]
		if level.W < s.WinW {
			continue
		}
		for y := 0; y+s.WinH <= level.H; y += s.Stride {
			tasks[k] = rowTask{i, y}
			k++
		}
	}
	descLen := s.Cfg.DescriptorLen(s.WinW, s.WinH)
	// Window-row reuse: with a cache holding the previous scan's rows
	// (same signature, so the task list is identical), any row whose
	// inputs are untouched this frame produces byte-identical
	// detections — its scores are pure functions of blocks and pixels
	// the dirty masks prove unchanged — so stage 3 serves the cached
	// slice instead of rescoring the row.
	serveRows := tc != nil && tc.rowsValid && len(tc.rowDets) == nt
	err = par.ForEachLocal(ctx, workers, nt,
		func() *rowScratch { return new(rowScratch) },
		func(ti int, rs *rowScratch) {
			rt := tasks[ti]
			if serveRows && tc.rowServable(s.Cfg, rt.level, rt.y, s.WinH, sc.nax[rt.level] > 0, bh) {
				results[ti] = tc.rowDets[ti]
				return
			}
			level, fm := sc.levels[rt.level], maps[rt.level]
			fx := float64(g.W) / float64(level.W)
			fy := float64(g.H) / float64(level.H)
			var dets []Detection
			box := func(x int) img.Rect {
				return img.Rect{
					X0: int(float64(x) * fx),
					Y0: int(float64(rt.y) * fy),
					X1: int(float64(x+s.WinW) * fx),
					Y1: int(float64(rt.y+s.WinH) * fy),
				}
			}
			var it *haar.Integral
			if usePref {
				it = sc.its[rt.level]
			}
			pass := func(x int) bool {
				return it == nil || s.Prefilter.AcceptAt(it, x, rt.y)
			}
			if nax := sc.nax[rt.level]; nax > 0 {
				// Block-response fast path: zero copies, zero
				// normalization, zero allocation per window.
				ay := rt.y / s.Stride
				lat := sc.lats[rt.level]
				blocks := grids[rt.level].Data()
				emit := func(ax int, m float64) {
					dets = append(dets, Detection{Box: box(ax * s.Stride), Score: m, Kind: s.Kind}) // lint:alloc detections are rare post-threshold events; no useful pre-size exists
				}
				// Per-window reuse inside a partially dirty level: a
				// window whose cell rectangle (block span and pixel
				// span, whichever is larger) the prefix proves clean
				// kept its inputs, so last frame's verdict stands and
				// its cached detection — if it had one — is copied
				// instead of rescoring. Windows in the dirty region
				// fall through to the scoring branches below.
				rowPartial := serveRows && tc.mode[rt.level] == tcPartial
				var cached []Detection
				cj := 0
				if rowPartial {
					cached = tc.rowDets[ti]
				}
				spanCX := (bw-1)*s.Cfg.BlockStride + s.Cfg.BlockCells
				if p := (s.WinW + cell - 1) / cell; p > spanCX {
					spanCX = p
				}
				spanCY := (bh-1)*s.Cfg.BlockStride + s.Cfg.BlockCells
				if p := (s.WinH + cell - 1) / cell; p > spanCY {
					spanCY = p
				}
				cy0 := rt.y / cell
				serve := func(ax int) bool {
					if !rowPartial {
						return false
					}
					cx0 := ax * lat.StepX
					if !tc.cellRectClean(rt.level, cx0, cy0, cx0+spanCX, cy0+spanCY) {
						return false
					}
					// Cached rows are in ascending-x order and box is a
					// pure function of ax, so a pointer walk pairs this
					// window with its previous detection, if any.
					x0 := int(float64(ax*s.Stride) * fx)
					for cj < len(cached) && cached[cj].Box.X0 < x0 {
						cj++
					}
					if cj < len(cached) && cached[cj].Box.X0 == x0 {
						dets = append(dets, cached[cj]) // lint:alloc detections are rare post-threshold events; no useful pre-size exists
						cj++
					}
					return true
				}
				switch {
				case len(qresp[rt.level]) > 0:
					// Quantized plane: integer decisions, borderline
					// margins resolved by the float oracle.
					qresp := qresp[rt.level]
					for ax := 0; ax < nax; ax++ {
						if serve(ax) {
							continue
						}
						if !pass(ax * s.Stride) {
							continue
						}
						score, dec := sc.qbm.DecideAt(qresp, nax, ax, ay)
						if m, ok := resolveQuant(&sc.bm, score, dec, blocks, lat, ax, ay, s.Thresh); ok {
							emit(ax, m)
						}
					}
				case len(qgrids[rt.level]) > 0:
					// Quantized on-demand with integer early exit.
					qblocks := qgrids[rt.level]
					for ax := 0; ax < nax; ax++ {
						if serve(ax) {
							continue
						}
						if !pass(ax * s.Stride) {
							continue
						}
						score, dec := sc.qbm.ScoreAt(qblocks, lat, ax, ay, true)
						if m, ok := resolveQuant(&sc.bm, score, dec, blocks, lat, ax, ay, s.Thresh); ok {
							emit(ax, m)
						}
					}
				case len(resp[rt.level]) > 0:
					// Full-margin plane (NoEarlyReject): a window's
					// margin is the bias plus its contiguous cached
					// partials.
					resp := resp[rt.level]
					for ax := 0; ax < nax; ax++ {
						if serve(ax) {
							continue
						}
						if !pass(ax * s.Stride) {
							continue
						}
						if m := sc.bm.MarginAt(resp, nax, ax, ay); m > s.Thresh {
							emit(ax, m)
						}
					}
				default:
					// Early reject: accumulate partials in descending
					// weight-mass order, bail when the bound closes.
					if cap(rs.partial) < bw*bh {
						rs.partial = make([]float64, bw*bh) // lint:alloc once per worker per scan
					}
					for ax := 0; ax < nax; ax++ {
						if serve(ax) {
							continue
						}
						if !pass(ax * s.Stride) {
							continue
						}
						m, rejected := sc.bm.EarlyMarginAt(blocks, lat, ax, ay, s.Thresh, rs.partial[:bw*bh])
						if !rejected && m > s.Thresh {
							emit(ax, m)
						}
					}
				}
			} else {
				for x := 0; x+s.WinW <= level.W; x += s.Stride {
					if !pass(x) {
						continue
					}
					if cap(rs.desc) < descLen {
						rs.desc = make([]float64, descLen) // lint:alloc once per worker per scan
					}
					desc := fm.Descriptor(x, rt.y, s.WinW, s.WinH, rs.desc[:descLen])
					if desc == nil {
						// Window off the cell grid (stride not a
						// multiple of the cell size, or partial border
						// cells): fall back to direct extraction.
						desc = s.Cfg.Extract(level.SubImage(img.Rect{X0: x, Y0: rt.y, X1: x + s.WinW, Y1: rt.y + s.WinH}))
					}
					if m := s.Model.Margin(desc); m > s.Thresh {
						dets = append(dets, Detection{Box: box(x), Score: m, Kind: s.Kind}) // lint:alloc detections are rare post-threshold events; no useful pre-size exists
					}
				}
			}
			results[ti] = dets
		})
	if err != nil {
		return nil, err
	}
	total := 0
	for _, r := range results {
		total += len(r)
	}
	all := make([]Detection, 0, total)
	for _, r := range results {
		all = append(all, r...)
	}
	if tc != nil {
		tc.storeRows(results)
	}
	lap(&t.Windows)
	if timed {
		t.BlockPath = useBlocks
		t.Quantized = useQuant
		if tc != nil {
			t.TemporalPath = true
			fs := tc.FrameStats()
			t.TileHits, t.TileMisses, t.TileRefreshes = fs.Hits, fs.Misses, fs.Refreshes
		}
		*tm = t
	}
	return all, nil
}

// resolveQuant turns a quantized decision into the float-path verdict
// for one window: accepts and rejects outside the guard band are
// final (the analytic error bound proves the float margin lands on
// the same side of the threshold), and borderline margins re-score
// through the float block model — which is why the quantized scan's
// box set is structurally identical to the float scan's.
//
// lint:hotpath
func resolveQuant(bm *svm.BlockModel, score float64, dec svm.QuantDecision,
	blocks []float64, lat svm.Lattice, ax, ay int, thresh float64) (float64, bool) {
	switch dec {
	case svm.QuantAccept:
		return score, true
	case svm.QuantBorderline:
		m := bm.WindowMargin(blocks, lat, ax, ay)
		return m, m > thresh
	default:
		return 0, false
	}
}
