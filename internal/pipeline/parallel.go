package pipeline

import (
	"context"

	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/par"
	"advdet/internal/svm"
)

// hogScan describes one multi-scale HOG+SVM sliding-window scan: the
// shared-cache, worker-pool equivalent of the serial scanPyramid
// reference. The pyramid levels are resized concurrently, each
// level's gradient/cell-histogram stages are computed once into a
// read-only hog.FeatureMap, and window rows are fanned out across the
// pool, with every row writing its own output slot so the assembled
// detection list is identical for every worker count.
type hogScan struct {
	Cfg        hog.Config
	Model      *svm.Model
	WinW, WinH int
	Stride     int
	Scale      float64
	Thresh     float64
	Kind       Kind
}

// run scans every pyramid level of g with the given worker count,
// returning detections in deterministic level-major, raster order.
func (s hogScan) run(ctx context.Context, g *img.Gray, workers int) ([]Detection, error) {
	workers = par.Workers(workers)

	// Stage 1: pyramid levels, resized concurrently (each level reads
	// only the source frame).
	sizes := img.PyramidSizes(g.W, g.H, s.Scale, s.WinW, s.WinH)
	levels := make([]*img.Gray, len(sizes))
	if err := par.ForEach(ctx, workers, len(sizes), func(i int) {
		levels[i] = img.ResizeGray(g, sizes[i][0], sizes[i][1])
	}); err != nil {
		return nil, err
	}

	// Stage 2: one shared feature cache per level (row-parallel), so
	// gradients and cell histograms are computed once per frame
	// instead of once per window.
	maps := make([]*hog.FeatureMap, len(levels))
	for i, level := range levels {
		fm, err := s.Cfg.NewFeatureMapCtx(ctx, level, workers)
		if err != nil {
			return nil, err
		}
		maps[i] = fm
	}

	// Stage 3: one task per window row across all levels; each task
	// owns an output slot, so assembly order is independent of worker
	// scheduling.
	type rowTask struct{ level, y int }
	var tasks []rowTask
	for li, level := range levels {
		for y := 0; y+s.WinH <= level.H; y += s.Stride {
			tasks = append(tasks, rowTask{li, y})
		}
	}
	results := make([][]Detection, len(tasks))
	descLen := s.Cfg.DescriptorLen(s.WinW, s.WinH)
	err := par.ForEach(ctx, workers, len(tasks), func(ti int) {
		t := tasks[ti]
		level, fm := levels[t.level], maps[t.level]
		fx := float64(g.W) / float64(level.W)
		fy := float64(g.H) / float64(level.H)
		scratch := make([]float64, descLen)
		var dets []Detection
		for x := 0; x+s.WinW <= level.W; x += s.Stride {
			desc := fm.Descriptor(x, t.y, s.WinW, s.WinH, scratch)
			if desc == nil {
				// Window off the cell grid (stride not a multiple of
				// the cell size, or partial border cells): fall back
				// to direct extraction of the crop.
				desc = s.Cfg.Extract(level.SubImage(img.Rect{X0: x, Y0: t.y, X1: x + s.WinW, Y1: t.y + s.WinH}))
			}
			if sc := s.Model.Margin(desc); sc > s.Thresh {
				dets = append(dets, Detection{
					Box: img.Rect{
						X0: int(float64(x) * fx),
						Y0: int(float64(t.y) * fy),
						X1: int(float64(x+s.WinW) * fx),
						Y1: int(float64(t.y+s.WinH) * fy),
					},
					Score: sc,
					Kind:  s.Kind,
				})
			}
		}
		results[ti] = dets
	})
	if err != nil {
		return nil, err
	}
	var all []Detection
	for _, r := range results {
		all = append(all, r...)
	}
	return all, nil
}
