package pipeline

import (
	"context"
	"fmt"
	"math"

	"advdet/internal/dbn"
	"advdet/internal/img"
	"advdet/internal/par"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// DarkConfig parameterizes the dark pipeline of Figs. 3–4.
type DarkConfig struct {
	// LumaThresh is the luminance threshold isolating light sources.
	LumaThresh uint8
	// CrLow/CrHigh select the red-chroma band of taillights.
	CrLow, CrHigh uint8
	// Downsample is an explicit decimation factor; when zero the
	// factor is derived from TargetWidth per frame (1920-wide frames
	// decimate by 3 to the paper's 640x360 working map).
	Downsample int
	// TargetWidth is the working-map width used when Downsample is
	// zero (default 640).
	TargetWidth int
	// CloseRadius is the morphological closing structuring radius.
	CloseRadius int
	// Stride is the DBN sliding-window step (2 in the paper).
	Stride int
	// MinProb is the acceptance probability for a light window.
	MinProb float64
	// MaxPairDistFactor bounds the pair separation as a multiple of
	// the mean lamp width ("the distance between the two taillights is
	// expected to be within a specific range").
	MaxPairDistFactor float64
	// UseClosing and UseChroma exist for the ablation benches.
	UseClosing bool
	UseChroma  bool
	// UsePairSVM selects SVM spatial correlation (paper) vs. a pure
	// geometric gate (ablation baseline).
	UsePairSVM bool
}

// DefaultDarkConfig returns the paper's settings.
func DefaultDarkConfig() DarkConfig {
	return DarkConfig{
		LumaThresh:        90,
		CrLow:             150,
		CrHigh:            255,
		TargetWidth:       640,
		CloseRadius:       1,
		Stride:            dbn.Stride,
		MinProb:           0.5,
		MaxPairDistFactor: 9,
		UseClosing:        true,
		UseChroma:         true,
		UsePairSVM:        true,
	}
}

// Light is a taillight candidate in downsampled coordinates, with the
// DBN's size/shape class.
type Light struct {
	Box   img.Rect
	Class int // dbn.ClassSmall..ClassLarge
	Prob  float64
}

// DarkDetector is the trained dark pipeline.
type DarkDetector struct {
	Cfg     DarkConfig
	Net     *dbn.Network
	PairSVM *svm.Model
}

// NewDarkDetector assembles a detector from its trained components.
func NewDarkDetector(cfg DarkConfig, net *dbn.Network, pairSVM *svm.Model) *DarkDetector {
	return &DarkDetector{Cfg: cfg, Net: net, PairSVM: pairSVM}
}

// FactorFor returns the effective decimation factor for a frame of
// width w: the explicit Downsample if set, otherwise the factor that
// brings the frame closest to TargetWidth.
func (c DarkConfig) FactorFor(w int) int {
	if c.Downsample > 0 {
		return c.Downsample
	}
	tw := c.TargetWidth
	if tw <= 0 {
		tw = 640
	}
	f := (w + tw/2) / tw
	if f < 1 {
		f = 1
	}
	return f
}

// Preprocess runs the front half of the pipeline — split channels,
// dual threshold, downsample, closing — returning the binary map the
// DBN scans. Exposed so the SoC model and ablation benches can tap the
// intermediate result.
func (d *DarkDetector) Preprocess(frame *img.RGB) *img.Binary {
	c := img.RGBToYCbCr(frame)
	var b *img.Binary
	if d.Cfg.UseChroma {
		b = img.DualThreshold(c, d.Cfg.LumaThresh, d.Cfg.CrLow, d.Cfg.CrHigh)
	} else {
		b = img.Threshold(c.Luma(), d.Cfg.LumaThresh)
	}
	b = img.DownsampleBinary(b, d.Cfg.FactorFor(frame.W))
	if d.Cfg.UseClosing {
		b = img.Close(b, d.Cfg.CloseRadius)
	}
	return b
}

// ScanStats reports how much work the ROI gate saved on the last
// scan — the mechanism that lets the DBN stage hold 50 fps even
// though a DBN evaluation costs ~4 cycles per sample.
type ScanStats struct {
	Windows   int // window positions visited
	Evaluated int // windows with foreground, sent to the DBN
	Hits      int // windows classified as a lamp
}

// GatedFraction returns the share of windows the ROI gate skipped.
func (s ScanStats) GatedFraction() float64 {
	if s.Windows == 0 {
		return 0
	}
	return 1 - float64(s.Evaluated)/float64(s.Windows)
}

// ScanLights slides the 9x9 DBN over the binary map with the
// configured stride, keeps windows classified as a lamp with
// sufficient probability, and merges overlapping hits into light
// candidates.
func (d *DarkDetector) ScanLights(b *img.Binary) []Light {
	lights, _ := d.ScanLightsStats(b)
	return lights
}

// ScanLightsStats is ScanLights with work accounting, on the calling
// goroutine; see ScanLightsStatsCtx for the parallel engine.
func (d *DarkDetector) ScanLightsStats(b *img.Binary) ([]Light, ScanStats) {
	lights, stats, _ := d.ScanLightsStatsCtx(context.Background(), b, 1) // lint:ctxroot serial wrapper; background ctx cannot fail
	return lights, stats
}

// ScanLightsStatsCtx fans the window rows of the DBN scan across
// workers goroutines (workers <= 0 means NumCPU). Each row owns its
// output slot and rows are reassembled in raster order, so the merged
// light list is identical for every worker count. On cancellation it
// returns the context's error.
func (d *DarkDetector) ScanLightsStatsCtx(ctx context.Context, b *img.Binary, workers int) ([]Light, ScanStats, error) {
	side := dbn.Window
	var ys []int
	for y := 0; y+side <= b.H; y += d.Cfg.Stride {
		ys = append(ys, y)
	}
	rowHits := make([][]Light, len(ys))
	rowStats := make([]ScanStats, len(ys))
	err := par.ForEach(ctx, workers, len(ys), func(i int) {
		y := ys[i]
		window := make([]float64, side*side)
		var st ScanStats
		var hits []Light
		for x := 0; x+side <= b.W; x += d.Cfg.Stride {
			st.Windows++
			// ROI gate: skip windows with no foreground at all (the
			// RTL gates the DBN the same way to hold 50 fps).
			count := 0
			for wy := 0; wy < side; wy++ {
				row := (y + wy) * b.W
				for wx := 0; wx < side; wx++ {
					v := b.Pix[row+x+wx]
					window[wy*side+wx] = float64(v)
					count += int(v)
				}
			}
			if count == 0 {
				continue
			}
			st.Evaluated++
			class, prob := d.Net.Classify(window)
			if class == dbn.ClassNone || prob < d.Cfg.MinProb {
				continue
			}
			st.Hits++
			hits = append(hits, Light{
				Box:   img.Rect{X0: x, Y0: y, X1: x + side, Y1: y + side},
				Class: class,
				Prob:  prob,
			})
		}
		rowHits[i], rowStats[i] = hits, st
	})
	if err != nil {
		return nil, ScanStats{}, err
	}
	var hits []Light
	var stats ScanStats
	for i := range rowHits {
		hits = append(hits, rowHits[i]...)
		stats.Windows += rowStats[i].Windows
		stats.Evaluated += rowStats[i].Evaluated
		stats.Hits += rowStats[i].Hits
	}
	return mergeLights(hits), stats, nil
}

// mergeLights unions overlapping window hits into one candidate per
// lamp, keeping the highest-probability class.
func mergeLights(hits []Light) []Light {
	var out []Light
	used := make([]bool, len(hits))
	for i := range hits {
		if used[i] {
			continue
		}
		cur := hits[i]
		used[i] = true
		changed := true
		for changed {
			changed = false
			for j := range hits {
				if used[j] {
					continue
				}
				if cur.Box.Intersect(hits[j].Box).Area() > 0 {
					cur.Box = cur.Box.Union(hits[j].Box)
					if hits[j].Prob > cur.Prob {
						cur.Prob = hits[j].Prob
						cur.Class = hits[j].Class
					}
					used[j] = true
					changed = true
				}
			}
		}
		out = append(out, cur)
	}
	return out
}

// PairFeatures computes the spatial-correlation feature vector for a
// candidate lamp pair: vertical misalignment, separation relative to
// lamp size, size ratio, and class agreement.
func PairFeatures(a, b Light) []float64 {
	acx, acy := a.Box.Center()
	bcx, bcy := b.Box.Center()
	meanW := float64(a.Box.W()+b.Box.W()) / 2
	meanH := float64(a.Box.H()+b.Box.H()) / 2
	if meanW == 0 {
		meanW = 1
	}
	if meanH == 0 {
		meanH = 1
	}
	dy := math.Abs(float64(acy-bcy)) / meanH
	sep := math.Abs(float64(acx-bcx)) / meanW
	sizeRatio := math.Log(float64(a.Box.Area()+1) / float64(b.Box.Area()+1))
	classDiff := math.Abs(float64(a.Class - b.Class))
	return []float64{dy, sep, math.Abs(sizeRatio), classDiff}
}

// geometricPairGate is the ablation baseline: fixed thresholds on the
// same features the SVM sees.
func (d *DarkDetector) geometricPairGate(f []float64) bool {
	return f[0] < 0.8 && f[1] > 1.2 && f[1] < d.Cfg.MaxPairDistFactor && f[2] < 0.9 && f[3] <= 1
}

// Detect runs the full dark pipeline on an RGB frame and returns
// vehicle detections in frame coordinates, on the calling goroutine;
// see DetectCtx for the parallel engine.
func (d *DarkDetector) Detect(frame *img.RGB) []Detection {
	dets, _ := d.DetectCtx(context.Background(), frame, 1) // lint:ctxroot serial wrapper; background ctx cannot fail
	return dets
}

// DetectCtx is Detect with cancellation and a bounded worker pool for
// the DBN sliding-window stage (workers <= 0 means NumCPU). Output is
// identical for every worker count.
func (d *DarkDetector) DetectCtx(ctx context.Context, frame *img.RGB, workers int) ([]Detection, error) {
	factor := d.Cfg.FactorFor(frame.W)
	b := d.Preprocess(frame)
	lights, _, err := d.ScanLightsStatsCtx(ctx, b, workers)
	if err != nil {
		return nil, fmt.Errorf("pipeline: dark detect: %w", err)
	}
	return d.pairLights(lights, frame, factor), nil
}

// pairLights runs the spatial-correlation back half of the pipeline:
// candidate lamps are paired, gated, scored, and expanded to vehicle
// boxes in full-resolution frame coordinates.
func (d *DarkDetector) pairLights(lights []Light, frame *img.RGB, factor int) []Detection {
	var dets []Detection
	for i := 0; i < len(lights); i++ {
		for j := i + 1; j < len(lights); j++ {
			a, c := lights[i], lights[j]
			// Hard distance gate: "only a particular region around
			// each detected taillight is processed for matching".
			acx, _ := a.Box.Center()
			ccx, _ := c.Box.Center()
			meanW := float64(a.Box.W()+c.Box.W()) / 2
			if math.Abs(float64(acx-ccx)) > d.Cfg.MaxPairDistFactor*meanW {
				continue
			}
			f := PairFeatures(a, c)
			var ok bool
			var score float64
			if d.Cfg.UsePairSVM && d.PairSVM != nil {
				score = d.PairSVM.Margin(f)
				ok = score > 0
			} else {
				ok = d.geometricPairGate(f)
				score = 1
			}
			if !ok {
				continue
			}
			// Vehicle box: union of the lamp pair, expanded to body
			// extent, mapped back to full resolution.
			u := a.Box.Union(c.Box)
			expandY := u.W() / 2
			box := img.Rect{
				X0: (u.X0 - u.W()/8) * factor,
				Y0: (u.Y0 - expandY) * factor,
				X1: (u.X1 + u.W()/8) * factor,
				Y1: (u.Y1 + expandY/2) * factor,
			}
			box = box.Intersect(img.Rect{X0: 0, Y0: 0, X1: frame.W, Y1: frame.H})
			if box.Empty() {
				continue
			}
			dets = append(dets, Detection{Box: box, Score: score + a.Prob + c.Prob, Kind: KindVehicle})
		}
	}
	return NMS(dets, 0.3)
}

// ClassifyCrop decides whether a dark RGB crop contains a vehicle, the
// operation behind the "95% on the SYSU subset" evaluation of §III-B.
func (d *DarkDetector) ClassifyCrop(frame *img.RGB) bool {
	return len(d.Detect(frame)) > 0
}

// TrainPairSVM trains the spatial-correlation SVM on synthetic lamp
// pair geometry: positives follow the taillight-pair distribution
// (level, similar size, separation a few lamp-widths), negatives
// violate at least one constraint.
func TrainPairSVM(seed uint64, n int, opts svm.Options) (*svm.Model, error) {
	rng := synth.NewRNG(seed)
	var p svm.Problem
	mkLight := func(cx, cy, w, h int, class int) Light {
		return Light{Box: img.Rect{X0: cx - w/2, Y0: cy - h/2, X1: cx + w/2 + 1, Y1: cy + h/2 + 1}, Class: class}
	}
	for i := 0; i < n; i++ {
		// Positive pair.
		w := rng.IntRange(3, 12)
		h := w * rng.IntRange(70, 110) / 100
		cls := rng.IntRange(1, 3)
		sep := int(float64(w) * rng.Range(2.0, 7.0))
		y := rng.IntRange(20, 200)
		x := rng.IntRange(20, 400)
		dy := rng.IntRange(0, h/4)
		a := mkLight(x, y, w, h, cls)
		b := mkLight(x+sep, y+dy, w+rng.IntRange(-1, 1), h+rng.IntRange(-1, 1), cls)
		p.X = append(p.X, PairFeatures(a, b))
		p.Y = append(p.Y, 1)

		// Negative pair: break one property at random.
		w2 := rng.IntRange(3, 12)
		h2 := w2
		switch rng.Intn(3) {
		case 0: // vertical misalignment (e.g. road light above a lamp)
			a = mkLight(x, y, w2, h2, cls)
			b = mkLight(x+sep, y+h2*rng.IntRange(2, 6), w2, h2, cls)
		case 1: // size mismatch (near lamp vs far lamp of another car)
			a = mkLight(x, y, w2, h2, 1)
			b = mkLight(x+sep, y+dy, w2*4, h2*4, 3)
		default: // implausible separation (two independent cars)
			a = mkLight(x, y, w2, h2, cls)
			b = mkLight(x+w2*rng.IntRange(12, 30), y+dy, w2, h2, cls)
		}
		p.X = append(p.X, PairFeatures(a, b))
		p.Y = append(p.Y, -1)
	}
	m, err := svm.Train(p, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: train pair SVM: %w", err)
	}
	return m, nil
}

// TrainDarkDetector trains the full dark pipeline: the DBN on labeled
// 9x9 windows (cropped taillights, per the paper's use of SYSU
// training images) and the pair SVM on lamp-pair geometry.
func TrainDarkDetector(seed uint64, cfg DarkConfig, dbnCfg dbn.Config, windowsPerClass int) (*DarkDetector, error) {
	X, labels := synth.TaillightWindowSet(seed, windowsPerClass)
	net, err := dbn.Train(X, labels, dbnCfg, synth.NewRNG(seed^0x5eed))
	if err != nil {
		return nil, fmt.Errorf("pipeline: train DBN: %w", err)
	}
	pairOpts := svm.DefaultOptions()
	pair, err := TrainPairSVM(seed^0xbeef, 400, pairOpts)
	if err != nil {
		return nil, err
	}
	return NewDarkDetector(cfg, net, pair), nil
}
