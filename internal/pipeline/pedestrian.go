package pipeline

import (
	"context"
	"fmt"

	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// Pedestrian window geometry (upright 1:2 aspect, as in the DAC'17
// multi-scale pedestrian pipeline the static partition instantiates).
const (
	PedWindowW = 32
	PedWindowH = 64
)

// PedestrianDetector is the static-partition HOG+SVM pedestrian
// pipeline; it keeps running during partial reconfiguration.
type PedestrianDetector struct {
	HOG    hog.Config
	Model  *svm.Model
	Stride int
	Scale  float64
	Thresh float64 // margin threshold for single-crop classification
	// DetectThresh is the stricter margin threshold for full-frame
	// scanning (see DayDuskDetector.DetectThresh).
	DetectThresh float64
	NMSIoU       float64
	// NoBlockResponse disables the block-response scoring engine
	// (see DayDuskDetector.NoBlockResponse).
	NoBlockResponse bool
	// NoEarlyReject disables the partial-margin early exit
	// (see DayDuskDetector.NoEarlyReject).
	NoEarlyReject bool
	// Quantized scores windows in the fixed-point datapath
	// (see DayDuskDetector.Quantized).
	Quantized bool
	// Prefilter integral-image-rejects scan windows before HOG scoring
	// when trained at this detector's window geometry
	// (see DayDuskDetector.Prefilter).
	Prefilter *haar.Cascade
	// Temporal reuses the feature/block/response stack across frames
	// (see DayDuskDetector.Temporal).
	Temporal *TemporalCache
}

// NewPedestrianDetector wraps a trained model with default scan
// settings.
func NewPedestrianDetector(m *svm.Model) *PedestrianDetector {
	return &PedestrianDetector{
		HOG:          hog.DefaultConfig(),
		Model:        m,
		Stride:       8,
		Scale:        1.25,
		Thresh:       0,
		DetectThresh: 1.0,
		NMSIoU:       0.3,
	}
}

// ClassifyCrop scores a single pedestrian-window crop.
func (d *PedestrianDetector) ClassifyCrop(g *img.Gray) bool {
	if g.W != PedWindowW || g.H != PedWindowH {
		g = img.ResizeGray(g, PedWindowW, PedWindowH)
	}
	return d.Model.Margin(d.HOG.Extract(g)) > d.Thresh
}

// Detect scans the frame at multiple scales for pedestrians on the
// calling goroutine; see DetectCtx for the parallel engine.
func (d *PedestrianDetector) Detect(g *img.Gray) []Detection {
	dets, _ := d.DetectCtx(context.Background(), g, 1) // lint:ctxroot serial wrapper; background ctx cannot fail
	return dets
}

// DetectCtx is Detect with cancellation and a bounded worker pool
// sharing one per-level feature cache (workers <= 0 means NumCPU).
// Output is identical for every worker count.
func (d *PedestrianDetector) DetectCtx(ctx context.Context, g *img.Gray, workers int) ([]Detection, error) {
	return d.DetectTimedCtx(ctx, g, workers, nil)
}

// DetectTimedCtx is DetectCtx with per-stage wall-clock attribution;
// tm may be nil and is written only on success.
func (d *PedestrianDetector) DetectTimedCtx(ctx context.Context, g *img.Gray, workers int, tm *ScanTimings) ([]Detection, error) {
	scan := hogScan{
		Cfg: d.HOG, Model: d.Model,
		WinW: PedWindowW, WinH: PedWindowH,
		Stride: d.Stride, Scale: d.Scale, Thresh: d.DetectThresh,
		Kind: KindPedestrian, NoBlockResponse: d.NoBlockResponse,
		NoEarlyReject: d.NoEarlyReject, Quantized: d.Quantized,
		Prefilter: d.Prefilter, Temporal: d.Temporal,
	}
	dets, err := scan.runTimed(ctx, g, workers, tm)
	if err != nil {
		return nil, fmt.Errorf("pipeline: pedestrian detect: %w", err)
	}
	return NMS(dets, d.NMSIoU), nil
}

// TrainPedestrianSVM trains the pedestrian model from a crop dataset.
func TrainPedestrianSVM(ds *synth.Dataset, cfg hog.Config, opts svm.Options) (*svm.Model, error) {
	var p svm.Problem
	for _, g := range ds.Pos {
		crop := g
		if crop.W != PedWindowW || crop.H != PedWindowH {
			crop = img.ResizeGray(crop, PedWindowW, PedWindowH)
		}
		p.X = append(p.X, cfg.Extract(crop))
		p.Y = append(p.Y, 1)
	}
	for _, g := range ds.Neg {
		crop := g
		if crop.W != PedWindowW || crop.H != PedWindowH {
			crop = img.ResizeGray(crop, PedWindowW, PedWindowH)
		}
		p.X = append(p.X, cfg.Extract(crop))
		p.Y = append(p.Y, -1)
	}
	m, err := svm.Train(p, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: train pedestrian SVM: %w", err)
	}
	return m, nil
}
