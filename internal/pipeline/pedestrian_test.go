package pipeline

import (
	"testing"

	"advdet/internal/eval"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// trainPed trains the static-partition pedestrian model. Like the
// paper's static pipeline, one model serves every lighting condition,
// so it is trained on a mixed day/dusk/dark crop set.
func trainPed(t *testing.T, seed uint64) *PedestrianDetector {
	t.Helper()
	day := synth.PedestrianDataset(seed, PedWindowW, PedWindowH, 50, 50, synth.Day)
	dusk := synth.PedestrianDataset(seed+1, PedWindowW, PedWindowH, 30, 30, synth.Dusk)
	dark := synth.PedestrianDataset(seed+2, PedWindowW, PedWindowH, 30, 30, synth.Dark)
	ds := CombineDatasets("ped-all", CombineDatasets("ped-dd", day, dusk), dark)
	m, err := TrainPedestrianSVM(ds, hog.DefaultConfig(), svm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewPedestrianDetector(m)
}

func TestPedestrianClassifyCrops(t *testing.T) {
	det := trainPed(t, 1)
	test := synth.PedestrianDataset(2, PedWindowW, PedWindowH, 40, 40, synth.Day)
	c := eval.EvaluateCrops(det.ClassifyCrop, test.Pos, test.Neg)
	if c.Accuracy() < 0.85 {
		t.Fatalf("pedestrian accuracy %v: %v", c.Accuracy(), c)
	}
}

func TestPedestrianWorksAtNightToo(t *testing.T) {
	// The static partition runs in every condition; the detector must
	// retain most of its accuracy on dark pedestrian crops.
	det := trainPed(t, 3)
	test := synth.PedestrianDataset(4, PedWindowW, PedWindowH, 40, 40, synth.Dark)
	c := eval.EvaluateCrops(det.ClassifyCrop, test.Pos, test.Neg)
	if c.Accuracy() < 0.6 {
		t.Fatalf("night pedestrian accuracy %v: %v", c.Accuracy(), c)
	}
}

func TestPedestrianClassifyCropResizes(t *testing.T) {
	det := trainPed(t, 5)
	big := img.RGBToGray(synth.PedestrianCrop(synth.NewRNG(6), 64, 128, synth.Day))
	if !det.ClassifyCrop(big) {
		t.Fatal("64x128 pedestrian crop rejected")
	}
}

func TestPedestrianDetectInScene(t *testing.T) {
	// Controlled full-frame scan: a pedestrian crop is placed at a
	// known position in a road-textured frame at a pyramid-reachable
	// scale; Detect must localize it through scanning, coordinate
	// mapping and NMS.
	det := trainPed(t, 7)
	frame := img.NewGray(256, 160)
	frame.Fill(120)
	ped := img.RGBToGray(synth.PedestrianCrop(synth.NewRNG(808), PedWindowW, PedWindowH, synth.Day))
	gt := img.Rect{X0: 96, Y0: 48, X1: 96 + PedWindowW, Y1: 48 + PedWindowH}
	for y := 0; y < ped.H; y++ {
		for x := 0; x < ped.W; x++ {
			frame.Set(gt.X0+x, gt.Y0+y, ped.At(x, y))
		}
	}
	dets := det.Detect(frame)
	hit := false
	for _, d := range dets {
		if d.Box.IoU(gt) > 0.3 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("pedestrian not localized among %d detections", len(dets))
	}
}
