package pipeline

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"testing"

	"advdet/internal/img"
	"advdet/internal/synth"
)

// scanScene renders a day scene with enough structure that the
// detectors fire, shared by the determinism tests.
func scanScene(seed uint64, w, h int) *img.Gray {
	sc := synth.RenderScene(synth.NewRNG(seed), synth.SceneConfig{W: w, H: h, Cond: synth.Day, NumVehicles: 2})
	return img.RGBToGray(sc.Frame)
}

func TestDayDuskDetectCtxDeterministicAcrossWorkers(t *testing.T) {
	det := NewDayDuskDetector(trainSmall(t, synth.DayDataset(90, 64, 64, 60, 60)))
	g := scanScene(91, 320, 180)
	ref, err := det.DetectCtx(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU(), 0} {
		got, err := det.DetectCtx(context.Background(), g, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: detections differ from serial:\n got %v\nwant %v", workers, got, ref)
		}
	}
	// The compat wrapper is the serial engine.
	if got := det.Detect(g); !reflect.DeepEqual(got, ref) {
		t.Fatal("Detect differs from DetectCtx(workers=1)")
	}
}

func TestPedestrianDetectCtxDeterministicAcrossWorkers(t *testing.T) {
	det := trainPed(t, 92)
	g := scanScene(93, 256, 160)
	ref, err := det.DetectCtx(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.DetectCtx(context.Background(), g, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatalf("parallel pedestrian scan differs from serial:\n got %v\nwant %v", got, ref)
	}
}

func TestDarkScanLightsCtxDeterministicAcrossWorkers(t *testing.T) {
	det := quickDark(t, 1)
	sc := synth.RenderScene(synth.NewRNG(95),
		synth.SceneConfig{W: 320, H: 180, Cond: synth.Dark, NumVehicles: 2, RoadLights: 2, OncomingHeadlights: 1})
	b := det.Preprocess(sc.Frame)
	refLights, refStats, err := det.ScanLightsStatsCtx(context.Background(), b, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, runtime.NumCPU()} {
		lights, stats, err := det.ScanLightsStatsCtx(context.Background(), b, workers)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(lights, refLights) {
			t.Fatalf("workers=%d: lights differ from serial", workers)
		}
		if stats != refStats {
			t.Fatalf("workers=%d: stats %+v, want %+v", workers, stats, refStats)
		}
	}
	refDets, err := det.DetectCtx(context.Background(), sc.Frame, 1)
	if err != nil {
		t.Fatal(err)
	}
	gotDets, err := det.DetectCtx(context.Background(), sc.Frame, runtime.NumCPU())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gotDets, refDets) {
		t.Fatal("parallel dark detect differs from serial")
	}
}

func TestDetectCtxPreCancelled(t *testing.T) {
	det := NewDayDuskDetector(trainSmall(t, synth.DayDataset(96, 64, 64, 40, 40)))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := det.DetectCtx(ctx, scanScene(97, 256, 144), 4); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want wrapped context.Canceled", err)
	}
}

// TestHogScanFallbackUnalignedStride pins the fallback path: a stride
// off the cell grid still produces the same detections serially and
// in parallel.
func TestHogScanFallbackUnalignedStride(t *testing.T) {
	det := NewDayDuskDetector(trainSmall(t, synth.DayDataset(98, 64, 64, 40, 40)))
	det.Stride = 12 // not a multiple of the 8-pixel cell
	g := scanScene(99, 200, 120)
	ref, err := det.DetectCtx(context.Background(), g, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := det.DetectCtx(context.Background(), g, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, ref) {
		t.Fatal("unaligned-stride scan differs between serial and parallel")
	}
}
