package pipeline

import (
	"context"
	"math"
	"runtime"
	"testing"

	"advdet/internal/haar"
	"advdet/internal/img"
	"advdet/internal/synth"
)

// scanVariant selects which scoring strategy a test scan runs with;
// the zero value is the production default (block-response engine
// with the partial-margin early exit).
type scanVariant struct {
	noBlocks  bool // force the per-window descriptor path
	noEarly   bool // disable the early exit (full response plane)
	quantized bool // fixed-point scoring with float borderline fallback
	prefilter *haar.Cascade
}

// scanFn runs one full detect under a scoring variant, so the table
// below can exercise every detector kind through one code path.
type scanFn func(t *testing.T, g *img.Gray, workers int, v scanVariant) []Detection

// blockEquivalenceCases covers all four HOG scan kinds of the system:
// day and dusk vehicles, pedestrians, animals.
func blockEquivalenceCases(t *testing.T) []struct {
	name  string
	frame *img.Gray
	scan  scanFn
} {
	t.Helper()
	dayModel := trainSmall(t, synth.DayDataset(700, 64, 64, 50, 50))
	duskModel := trainSmall(t, synth.DuskDataset(701, 64, 64, 50, 50, 0))
	ped := trainPed(t, 702)
	animal := trainAnimal(t, 705)
	dayFrame := scanScene(710, 320, 200)
	duskFrame := img.RGBToGray(synth.RenderScene(synth.NewRNG(711),
		synth.SceneConfig{W: 320, H: 200, Cond: synth.Dusk, NumVehicles: 2}).Frame)
	return []struct {
		name  string
		frame *img.Gray
		scan  scanFn
	}{
		{"day", dayFrame, func(t *testing.T, g *img.Gray, workers int, v scanVariant) []Detection {
			det := NewDayDuskDetector(dayModel)
			applyVariant(&det.NoBlockResponse, &det.NoEarlyReject, &det.Quantized, &det.Prefilter, v)
			dets, err := det.DetectCtx(context.Background(), g, workers)
			if err != nil {
				t.Fatal(err)
			}
			return dets
		}},
		{"dusk", duskFrame, func(t *testing.T, g *img.Gray, workers int, v scanVariant) []Detection {
			det := NewDayDuskDetector(duskModel)
			det.DetectThresh = -0.25 // loosen so the scene yields detections to compare
			applyVariant(&det.NoBlockResponse, &det.NoEarlyReject, &det.Quantized, &det.Prefilter, v)
			dets, err := det.DetectCtx(context.Background(), g, workers)
			if err != nil {
				t.Fatal(err)
			}
			return dets
		}},
		{"pedestrian", dayFrame, func(t *testing.T, g *img.Gray, workers int, v scanVariant) []Detection {
			d := *ped
			d.DetectThresh = -0.25 // loosen so the scene yields detections to compare
			applyVariant(&d.NoBlockResponse, &d.NoEarlyReject, &d.Quantized, &d.Prefilter, v)
			dets, err := d.DetectCtx(context.Background(), g, workers)
			if err != nil {
				t.Fatal(err)
			}
			return dets
		}},
		{"animal", dayFrame, func(t *testing.T, g *img.Gray, workers int, v scanVariant) []Detection {
			d := *animal
			applyVariant(&d.NoBlockResponse, &d.NoEarlyReject, &d.Quantized, &d.Prefilter, v)
			dets, err := d.DetectCtx(context.Background(), g, workers)
			if err != nil {
				t.Fatal(err)
			}
			return dets
		}},
	}
}

// TestBlockResponseMatchesDescriptorPath is the engine's acceptance
// gate: for every scan kind and worker count, the block-response path
// must produce the same detections as the descriptor path — identical
// boxes, kinds and count, with scores within 1e-9 relative (the two
// paths sum the same products in different order).
func TestBlockResponseMatchesDescriptorPath(t *testing.T) {
	for _, tc := range blockEquivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.scan(t, tc.frame, 1, scanVariant{noBlocks: true}) // descriptor path, serial
			if len(ref) == 0 {
				t.Fatalf("%s: reference scan found nothing; scene too easy to miss a regression", tc.name)
			}
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				got := tc.scan(t, tc.frame, workers, scanVariant{})
				if len(got) != len(ref) {
					t.Fatalf("workers=%d: %d detections, want %d", workers, len(got), len(ref))
				}
				for i := range ref {
					if got[i].Box != ref[i].Box || got[i].Kind != ref[i].Kind {
						t.Fatalf("workers=%d: detection %d = %+v, want %+v", workers, i, got[i], ref[i])
					}
					d := math.Abs(got[i].Score - ref[i].Score)
					scale := math.Max(math.Abs(ref[i].Score), 1)
					if d/scale > 1e-9 {
						t.Fatalf("workers=%d: detection %d score %v, want %v (rel %g)",
							workers, i, got[i].Score, ref[i].Score, d/scale)
					}
				}
			}
		})
	}
}

// TestScanSteadyStateAllocs pins the scratch pool's payoff: after
// warm-up, a full scan allocates only a small frame-constant amount
// (closures, pyramid geometry, NMS, the detection output) — no
// per-window or per-level buffers. The bound has headroom for
// allocator noise but sits below one allocation per window row
// (~60 rows on this frame), so a reintroduced per-row or per-window
// make() trips it.
func TestScanSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector instrumentation allocates")
	}
	base := NewDayDuskDetector(trainSmall(t, synth.DayDataset(720, 64, 64, 40, 40)))
	g := scanScene(721, 320, 200)
	ctx := context.Background()
	for _, tc := range []struct {
		name string
		set  func(d *DayDuskDetector)
	}{
		{"early", func(d *DayDuskDetector) {}},
		{"full-margin", func(d *DayDuskDetector) { d.NoEarlyReject = true }},
		{"quantized", func(d *DayDuskDetector) { d.Quantized = true }},
		{"prefilter", func(d *DayDuskDetector) { d.Prefilter = constCascade(64, 64, -1) }},
		{"temporal", func(d *DayDuskDetector) { d.Temporal = NewTemporalCache() }},
		{"temporal-quantized", func(d *DayDuskDetector) { d.Temporal = NewTemporalCache(); d.Quantized = true }},
	} {
		t.Run(tc.name, func(t *testing.T) {
			det := *base
			tc.set(&det)
			// Warm the pool: first frame grows every buffer to steady
			// state.
			if _, err := det.DetectCtx(ctx, g, 1); err != nil {
				t.Fatal(err)
			}
			allocs := testing.AllocsPerRun(20, func() {
				if _, err := det.DetectCtx(ctx, g, 1); err != nil {
					t.Fatal(err)
				}
			})
			const maxAllocs = 40
			if allocs > maxAllocs {
				t.Fatalf("steady-state scan allocates %.0f objects/frame, want <= %d", allocs, maxAllocs)
			}
		})
	}
}

// TestScanTimingsReported checks DetectTimedCtx fills every stage and
// flags the block path.
func TestScanTimingsReported(t *testing.T) {
	det := NewDayDuskDetector(trainSmall(t, synth.DayDataset(730, 64, 64, 40, 40)))
	g := scanScene(731, 256, 160)
	var tm ScanTimings
	if _, err := det.DetectTimedCtx(context.Background(), g, 1, &tm); err != nil {
		t.Fatal(err)
	}
	if !tm.BlockPath {
		t.Fatal("aligned-stride scan did not take the block path")
	}
	for _, st := range []struct {
		name string
		d    float64
	}{
		{"resize", tm.Resize.Seconds()},
		{"feature", tm.Feature.Seconds()},
		{"blocks", tm.Blocks.Seconds()},
		{"response", tm.Response.Seconds()},
		{"windows", tm.Windows.Seconds()},
	} {
		if st.d <= 0 {
			t.Fatalf("stage %s reported no wall time", st.name)
		}
	}
	det.NoBlockResponse = true
	if _, err := det.DetectTimedCtx(context.Background(), g, 1, &tm); err != nil {
		t.Fatal(err)
	}
	if tm.BlockPath {
		t.Fatal("NoBlockResponse scan still flagged the block path")
	}
	if tm.Blocks != 0 || tm.Response != 0 {
		t.Fatal("descriptor path attributed time to block stages")
	}
}
