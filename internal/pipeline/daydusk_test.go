package pipeline

import (
	"testing"

	"advdet/internal/eval"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// trainSmall trains a model on a small dataset for test speed.
func trainSmall(t *testing.T, ds *synth.Dataset) *svm.Model {
	t.Helper()
	m, err := TrainVehicleSVM(ds, hog.DefaultConfig(), svm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func evalCrops(det *DayDuskDetector, ds *synth.Dataset) eval.Confusion {
	return eval.EvaluateCrops(det.ClassifyCrop, ds.Pos, ds.Neg)
}

func TestDayModelClassifiesDayCrops(t *testing.T) {
	train := synth.DayDataset(1, 64, 64, 60, 60)
	test := synth.DayDataset(2, 64, 64, 40, 40)
	det := NewDayDuskDetector(trainSmall(t, train))
	c := evalCrops(det, test)
	if c.Accuracy() < 0.85 {
		t.Fatalf("day-on-day accuracy %v too low: %v", c.Accuracy(), c)
	}
}

func TestDuskModelClassifiesDuskCrops(t *testing.T) {
	train := synth.DuskDataset(3, 64, 64, 60, 60, 0)
	test := synth.DuskDataset(4, 64, 64, 40, 40, 0)
	det := NewDayDuskDetector(trainSmall(t, train))
	c := evalCrops(det, test)
	if c.Accuracy() < 0.8 {
		t.Fatalf("dusk-on-dusk accuracy %v too low: %v", c.Accuracy(), c)
	}
}

func TestTableIShapeCrossConditions(t *testing.T) {
	// The central Table I claim: models specialize. The day model must
	// beat the dusk model on day data by a wide margin, and the dusk
	// model must lose most day positives (high FN), while the combined
	// model stays competitive on both.
	dayTrain := synth.DayDataset(10, 64, 64, 80, 80)
	duskTrain := synth.DuskDataset(11, 64, 64, 80, 80, 0)
	combTrain := CombineDatasets("combined", dayTrain, duskTrain)

	dayDet := NewDayDuskDetector(trainSmall(t, dayTrain))
	duskDet := NewDayDuskDetector(trainSmall(t, duskTrain))
	combDet := NewDayDuskDetector(trainSmall(t, combTrain))

	dayTest := synth.DayDataset(12, 64, 64, 60, 20)
	duskTest := synth.DuskDataset(13, 64, 64, 60, 40, 0)

	dayOnDay := evalCrops(dayDet, dayTest)
	duskOnDay := evalCrops(duskDet, dayTest)
	combOnDay := evalCrops(combDet, dayTest)
	dayOnDusk := evalCrops(dayDet, duskTest)
	duskOnDusk := evalCrops(duskDet, duskTest)
	combOnDusk := evalCrops(combDet, duskTest)

	if dayOnDay.Accuracy() <= duskOnDay.Accuracy() {
		t.Errorf("day model (%v) should beat dusk model (%v) on day data",
			dayOnDay.Accuracy(), duskOnDay.Accuracy())
	}
	if duskOnDay.FN <= duskOnDay.TP {
		t.Errorf("dusk model on day data should miss most positives: %v", duskOnDay)
	}
	if duskOnDusk.Accuracy() <= dayOnDusk.Accuracy() {
		t.Errorf("dusk model (%v) should beat day model (%v) on dusk data",
			duskOnDusk.Accuracy(), dayOnDusk.Accuracy())
	}
	if combOnDay.Accuracy() < 0.75 {
		t.Errorf("combined model collapsed on day data: %v", combOnDay)
	}
	if combOnDusk.Accuracy() < 0.75 {
		t.Errorf("combined model collapsed on dusk data: %v", combOnDusk)
	}
}

func TestVeryDarkPositivesDefeatHOGModels(t *testing.T) {
	// The justification for the dark pipeline: HOG+SVM models miss
	// most very dark positives.
	duskTrain := synth.DuskDataset(20, 64, 64, 60, 60, 0)
	det := NewDayDuskDetector(trainSmall(t, duskTrain))
	dark := synth.DuskDataset(21, 64, 64, 40, 1, 1.0) // all positives very dark
	c := evalCrops(det, dark)
	if c.Recall() > 0.5 {
		t.Fatalf("HOG+SVM recall %v on very dark positives; expected failure", c.Recall())
	}
}

func TestDetectFindsVehicleInScene(t *testing.T) {
	train := synth.DayDataset(30, 64, 64, 80, 80)
	det := NewDayDuskDetector(trainSmall(t, train))
	// Render a scene with one prominent vehicle.
	// The vehicle must reach the 64-pixel scan window (the pyramid
	// only downscales), so use a frame size whose near vehicles do.
	cfg := synth.SceneConfig{W: 480, H: 270, Cond: synth.Day, NumVehicles: 1}
	var sc *synth.Scene
	for seed := uint64(0); ; seed++ {
		if seed > 500 {
			t.Fatal("no suitable scene found in 500 seeds")
		}
		sc = synth.RenderScene(synth.NewRNG(40+seed), cfg)
		if len(sc.Vehicles) == 1 && sc.Vehicles[0].W() >= 60 {
			break
		}
	}
	dets := det.Detect(img.RGBToGray(sc.Frame))
	m := eval.MatchBoxes(sc.Vehicles, Boxes(dets), 0.25)
	if m.TP != 1 {
		t.Fatalf("vehicle not localized: %v (dets=%d)", m, len(dets))
	}
}

func TestClassifyCropResizesArbitrarySizes(t *testing.T) {
	train := synth.DayDataset(50, 64, 64, 40, 40)
	det := NewDayDuskDetector(trainSmall(t, train))
	big := synth.VehicleCrop(synth.NewRNG(51), 128, 128, synth.Day)
	if !det.ClassifyCrop(img.RGBToGray(big)) {
		t.Fatal("128x128 vehicle crop rejected")
	}
}

func TestCombineDatasets(t *testing.T) {
	a := synth.DayDataset(60, 32, 32, 3, 2)
	b := synth.DuskDataset(61, 32, 32, 4, 5, 0.5)
	c := CombineDatasets("c", a, b)
	if len(c.Pos) != 7 || len(c.Neg) != 7 {
		t.Fatalf("combined counts %d/%d", len(c.Pos), len(c.Neg))
	}
	if len(c.VeryDark) != len(c.Pos) {
		t.Fatal("VeryDark length mismatch")
	}
}
