package pipeline

import (
	"testing"

	"advdet/internal/img"
)

func TestNMSKeepsHighestScore(t *testing.T) {
	dets := []Detection{
		{Box: img.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, Score: 1},
		{Box: img.Rect{X0: 1, Y0: 1, X1: 11, Y1: 11}, Score: 2},
		{Box: img.Rect{X0: 50, Y0: 50, X1: 60, Y1: 60}, Score: 0.5},
	}
	kept := NMS(dets, 0.3)
	if len(kept) != 2 {
		t.Fatalf("NMS kept %d, want 2", len(kept))
	}
	if kept[0].Score != 2 {
		t.Fatalf("first kept score %v, want the highest", kept[0].Score)
	}
}

func TestNMSDisjointBoxesAllKept(t *testing.T) {
	dets := []Detection{
		{Box: img.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, Score: 1},
		{Box: img.Rect{X0: 20, Y0: 20, X1: 30, Y1: 30}, Score: 2},
		{Box: img.Rect{X0: 40, Y0: 40, X1: 50, Y1: 50}, Score: 3},
	}
	if got := NMS(dets, 0.3); len(got) != 3 {
		t.Fatalf("NMS dropped disjoint boxes: kept %d", len(got))
	}
}

func TestNMSEmpty(t *testing.T) {
	if got := NMS(nil, 0.5); len(got) != 0 {
		t.Fatal("NMS of nil not empty")
	}
}

func TestNMSDoesNotMutateInput(t *testing.T) {
	dets := []Detection{
		{Box: img.Rect{X0: 0, Y0: 0, X1: 10, Y1: 10}, Score: 1},
		{Box: img.Rect{X0: 1, Y0: 1, X1: 11, Y1: 11}, Score: 2},
	}
	NMS(dets, 0.3)
	if dets[0].Score != 1 {
		t.Fatal("NMS reordered the caller's slice")
	}
}

func TestKindString(t *testing.T) {
	if KindVehicle.String() != "vehicle" || KindPedestrian.String() != "pedestrian" {
		t.Fatal("Kind strings wrong")
	}
}

func TestBoxes(t *testing.T) {
	dets := []Detection{{Box: img.Rect{X0: 1, Y0: 2, X1: 3, Y1: 4}}}
	b := Boxes(dets)
	if len(b) != 1 || b[0] != dets[0].Box {
		t.Fatal("Boxes extraction wrong")
	}
}

func TestSlideWindowsCoversImage(t *testing.T) {
	g := img.NewGray(32, 32)
	g.Fill(100)
	count := 0
	slideWindows(g, 16, 16, 8, -1, func(w *img.Gray) float64 {
		count++
		if w.W != 16 || w.H != 16 {
			t.Fatal("window size wrong")
		}
		return -10 // never accept
	}, KindVehicle)
	// (32-16)/8+1 = 3 positions per axis.
	if count != 9 {
		t.Fatalf("scored %d windows, want 9", count)
	}
}

func TestSlideWindowsTooSmallImage(t *testing.T) {
	g := img.NewGray(8, 8)
	if got := slideWindows(g, 16, 16, 8, 0, func(*img.Gray) float64 { return 1 }, KindVehicle); got != nil {
		t.Fatal("windows emitted for too-small image")
	}
}

func TestSlideWindowsThreshold(t *testing.T) {
	g := img.NewGray(32, 32)
	dets := slideWindows(g, 16, 16, 16, 0.5, func(w *img.Gray) float64 {
		return 1.0
	}, KindPedestrian)
	if len(dets) != 4 {
		t.Fatalf("got %d detections, want 4", len(dets))
	}
	for _, d := range dets {
		if d.Kind != KindPedestrian || d.Score != 1 {
			t.Fatal("detection metadata wrong")
		}
	}
}

func TestScanPyramidMapsCoordinates(t *testing.T) {
	// Score high only at one window on the smallest level; the mapped
	// box must stay inside the original image.
	g := img.NewGray(64, 64)
	dets := scanPyramid(g, 16, 16, 8, 2.0, 0.5, func(w *img.Gray) float64 { return 1 }, KindVehicle)
	if len(dets) == 0 {
		t.Fatal("no detections")
	}
	full := img.Rect{X0: 0, Y0: 0, X1: 64, Y1: 64}
	for _, d := range dets {
		if d.Box.Intersect(full).Area() != d.Box.Area() {
			t.Fatalf("mapped box %v escapes the frame", d.Box)
		}
	}
	// Level-1 windows (32x32 level) must map to ~32x32 boxes.
	var sawScaled bool
	for _, d := range dets {
		if d.Box.W() == 32 {
			sawScaled = true
		}
	}
	if !sawScaled {
		t.Fatal("no detection mapped from the downscaled level")
	}
}
