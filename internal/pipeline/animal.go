package pipeline

import (
	"context"
	"fmt"

	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// Animal window geometry: quadrupeds in side profile are wider than
// tall.
const (
	AnimalWindowW = 64
	AnimalWindowH = 32
)

// AnimalDetector is the optional animal-detection feature the paper's
// introduction motivates: another HOG+SVM pipeline that can occupy
// the reconfigurable partition on countryside roads and be swapped
// out in urban driving. Structurally identical hardware to Fig. 2
// with its own window geometry and model.
type AnimalDetector struct {
	HOG          hog.Config
	Model        *svm.Model
	Stride       int
	Scale        float64
	Thresh       float64
	DetectThresh float64
	NMSIoU       float64
	// NoBlockResponse disables the block-response scoring engine
	// (see DayDuskDetector.NoBlockResponse).
	NoBlockResponse bool
	// NoEarlyReject disables the partial-margin early exit
	// (see DayDuskDetector.NoEarlyReject).
	NoEarlyReject bool
	// Quantized scores windows in the fixed-point datapath
	// (see DayDuskDetector.Quantized).
	Quantized bool
	// Prefilter integral-image-rejects scan windows before HOG scoring
	// when trained at this detector's window geometry
	// (see DayDuskDetector.Prefilter).
	Prefilter *haar.Cascade
}

// NewAnimalDetector wraps a trained model with default scan settings.
func NewAnimalDetector(m *svm.Model) *AnimalDetector {
	return &AnimalDetector{
		HOG:          hog.DefaultConfig(),
		Model:        m,
		Stride:       8,
		Scale:        1.25,
		Thresh:       0,
		DetectThresh: 0.5,
		NMSIoU:       0.3,
	}
}

// ClassifyCrop scores a single crop.
func (d *AnimalDetector) ClassifyCrop(g *img.Gray) bool {
	if g.W != AnimalWindowW || g.H != AnimalWindowH {
		g = img.ResizeGray(g, AnimalWindowW, AnimalWindowH)
	}
	return d.Model.Margin(d.HOG.Extract(g)) > d.Thresh
}

// Detect scans the frame at multiple scales for animals (tagged
// KindAnimal) on the calling goroutine; see DetectCtx for the
// parallel engine.
func (d *AnimalDetector) Detect(g *img.Gray) []Detection {
	dets, _ := d.DetectCtx(context.Background(), g, 1) // lint:ctxroot serial wrapper; background ctx cannot fail
	return dets
}

// DetectCtx is Detect with cancellation and a bounded worker pool
// sharing one per-level feature cache (workers <= 0 means NumCPU).
// Output is identical for every worker count.
func (d *AnimalDetector) DetectCtx(ctx context.Context, g *img.Gray, workers int) ([]Detection, error) {
	return d.DetectTimedCtx(ctx, g, workers, nil)
}

// DetectTimedCtx is DetectCtx with per-stage wall-clock attribution;
// tm may be nil and is written only on success.
func (d *AnimalDetector) DetectTimedCtx(ctx context.Context, g *img.Gray, workers int, tm *ScanTimings) ([]Detection, error) {
	scan := hogScan{
		Cfg: d.HOG, Model: d.Model,
		WinW: AnimalWindowW, WinH: AnimalWindowH,
		Stride: d.Stride, Scale: d.Scale, Thresh: d.DetectThresh,
		Kind: KindAnimal, NoBlockResponse: d.NoBlockResponse,
		NoEarlyReject: d.NoEarlyReject, Quantized: d.Quantized,
		Prefilter: d.Prefilter,
	}
	dets, err := scan.runTimed(ctx, g, workers, tm)
	if err != nil {
		return nil, fmt.Errorf("pipeline: animal detect: %w", err)
	}
	return NMS(dets, d.NMSIoU), nil
}

// TrainAnimalSVM trains the animal model from a crop dataset.
func TrainAnimalSVM(ds *synth.Dataset, cfg hog.Config, opts svm.Options) (*svm.Model, error) {
	m, err := TrainCropSVM(ds, cfg, AnimalWindowW, AnimalWindowH, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: train animal SVM: %w", err)
	}
	return m, nil
}
