package pipeline

import (
	"testing"

	"advdet/internal/dbn"
	"advdet/internal/eval"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// quickDark trains a small dark detector for tests; the Downsample=1
// configuration matches the crop-level evaluation (full frames use 3).
// Detectors are cached per downsample factor so the suite trains at
// most twice.
var darkCache = map[int]*DarkDetector{}

func quickDark(t *testing.T, downsample int) *DarkDetector {
	t.Helper()
	if det, ok := darkCache[downsample]; ok {
		// Return a copy so tests mutating Cfg do not leak changes.
		cp := *det
		return &cp
	}
	cfg := DefaultDarkConfig()
	cfg.Downsample = downsample
	dbnCfg := dbn.DefaultConfig()
	dbnCfg.PretrainOpts.Epochs = 4
	dbnCfg.FineTuneIter = 30
	det, err := TrainDarkDetector(77, cfg, dbnCfg, 100)
	if err != nil {
		t.Fatal(err)
	}
	darkCache[downsample] = det
	cp := *det
	return &cp
}

func TestDefaultDarkConfig(t *testing.T) {
	cfg := DefaultDarkConfig()
	if cfg.TargetWidth != 640 || cfg.Stride != 2 {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	if !cfg.UseChroma || !cfg.UseClosing || !cfg.UsePairSVM {
		t.Fatal("paper configuration must enable chroma, closing and pair SVM")
	}
}

func TestFactorFor(t *testing.T) {
	cfg := DefaultDarkConfig()
	// The paper's operating point: HDTV decimates by 3 to 640x360.
	for _, c := range []struct{ w, want int }{
		{1920, 3}, {640, 1}, {960, 2}, {96, 1}, {3840, 6},
	} {
		if got := cfg.FactorFor(c.w); got != c.want {
			t.Errorf("FactorFor(%d) = %d, want %d", c.w, got, c.want)
		}
	}
	cfg.Downsample = 5 // explicit override wins
	if cfg.FactorFor(1920) != 5 {
		t.Fatal("explicit Downsample ignored")
	}
}

func TestPreprocessIsolatesTaillights(t *testing.T) {
	det := quickDark(t, 1)
	m := synth.VehicleCrop(synth.NewRNG(101), 96, 96, synth.Dark)
	b := det.Preprocess(m)
	if b.Count() == 0 {
		t.Fatal("preprocess removed the taillights")
	}
	// Foreground must be a small fraction of the frame: lights only.
	if frac := float64(b.Count()) / float64(b.W*b.H); frac > 0.2 {
		t.Fatalf("foreground fraction %v too high", frac)
	}
}

func TestPreprocessRejectsWhiteLights(t *testing.T) {
	det := quickDark(t, 1)
	// A frame with only white lights (headlights, street lights).
	m := img.NewRGB(64, 64)
	m.Fill(8, 8, 12)
	img.FillEllipse(m, img.Rect{X0: 10, Y0: 10, X1: 18, Y1: 16}, 255, 250, 240)
	img.FillEllipse(m, img.Rect{X0: 40, Y0: 10, X1: 48, Y1: 16}, 255, 250, 240)
	b := det.Preprocess(m)
	if b.Count() != 0 {
		t.Fatalf("white lights passed the chroma gate: %d pixels", b.Count())
	}
}

func TestPreprocessDownsampleSize(t *testing.T) {
	det := quickDark(t, 0) // auto factor
	m := img.NewRGB(1920, 1080)
	b := det.Preprocess(m)
	if b.W != 640 || b.H != 360 {
		t.Fatalf("downsampled size %dx%d, want 640x360", b.W, b.H)
	}
}

func TestScanLightsFindsLampPair(t *testing.T) {
	det := quickDark(t, 1)
	m := synth.VehicleCrop(synth.NewRNG(103), 96, 96, synth.Dark)
	lights := det.ScanLights(det.Preprocess(m))
	if len(lights) < 2 {
		t.Fatalf("found %d lights, want >= 2", len(lights))
	}
}

func TestScanLightsEmptyFrame(t *testing.T) {
	det := quickDark(t, 1)
	b := img.NewBinary(64, 64)
	if got := det.ScanLights(b); len(got) != 0 {
		t.Fatalf("lights on empty frame: %d", len(got))
	}
}

func TestDetectVehicleInDarkCrop(t *testing.T) {
	det := quickDark(t, 1)
	found := 0
	for s := uint64(0); s < 10; s++ {
		m := synth.VehicleCrop(synth.NewRNG(200+s), 96, 96, synth.Dark)
		if det.ClassifyCrop(m) {
			found++
		}
	}
	if found < 8 {
		t.Fatalf("dark pipeline found %d/10 vehicles", found)
	}
}

func TestDetectRejectsDarkNegatives(t *testing.T) {
	det := quickDark(t, 1)
	fp := 0
	for s := uint64(0); s < 10; s++ {
		m := synth.NegativeCrop(synth.NewRNG(300+s), 96, 96, synth.Dark)
		if det.ClassifyCrop(m) {
			fp++
		}
	}
	if fp > 2 {
		t.Fatalf("dark pipeline false-positived on %d/10 negatives", fp)
	}
}

func TestDarkAccuracyOnDataset(t *testing.T) {
	// The §III-B claim: ~95% accuracy on the very dark subset. At test
	// scale we require >= 85%.
	det := quickDark(t, 1)
	ds := synth.NewDarkDataset(400, 96, 96, 30, 30)
	var c eval.Confusion
	for _, p := range ds.Pos {
		c.Record(true, det.ClassifyCrop(p))
	}
	for _, n := range ds.Neg {
		c.Record(false, det.ClassifyCrop(n))
	}
	if c.Accuracy() < 0.85 {
		t.Fatalf("dark accuracy %v: %v", c.Accuracy(), c)
	}
}

func TestScanStatsGating(t *testing.T) {
	det := quickDark(t, 1)
	m := synth.VehicleCrop(synth.NewRNG(881), 96, 96, synth.Dark)
	bin := det.Preprocess(m)
	lights, stats := det.ScanLightsStats(bin)
	if stats.Windows == 0 {
		t.Fatal("no windows visited")
	}
	if stats.Evaluated > stats.Windows {
		t.Fatal("evaluated more windows than visited")
	}
	if stats.Hits > stats.Evaluated {
		t.Fatal("more hits than evaluations")
	}
	// On a dark frame almost everything is background: the gate must
	// remove the large majority of DBN evaluations.
	if stats.GatedFraction() < 0.5 {
		t.Fatalf("gated fraction %v too low", stats.GatedFraction())
	}
	if len(lights) == 0 {
		t.Fatal("no lights found despite hits")
	}
	// Empty map: everything gated, zero stats denominator safe.
	empty := img.NewBinary(50, 50)
	_, s2 := det.ScanLightsStats(empty)
	if s2.Evaluated != 0 || s2.GatedFraction() != 1 {
		t.Fatalf("empty-map stats %+v", s2)
	}
	if (ScanStats{}).GatedFraction() != 0 {
		t.Fatal("zero-window GatedFraction should be 0")
	}
}

func TestPairFeaturesSymmetricInvariant(t *testing.T) {
	a := Light{Box: img.Rect{X0: 0, Y0: 10, X1: 5, Y1: 14}, Class: 1}
	b := Light{Box: img.Rect{X0: 20, Y0: 10, X1: 25, Y1: 14}, Class: 1}
	fa := PairFeatures(a, b)
	fb := PairFeatures(b, a)
	if len(fa) != 4 {
		t.Fatalf("feature length %d", len(fa))
	}
	for i := range fa {
		if fa[i] != fb[i] {
			t.Fatalf("pair features not symmetric at %d: %v vs %v", i, fa, fb)
		}
	}
	if fa[0] != 0 {
		t.Fatalf("aligned pair dy = %v", fa[0])
	}
}

func TestTrainPairSVMSeparates(t *testing.T) {
	m, err := TrainPairSVM(5, 300, svm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	// A canonical good pair must score positive, a bad one negative.
	good := PairFeatures(
		Light{Box: img.Rect{X0: 0, Y0: 10, X1: 6, Y1: 15}, Class: 2},
		Light{Box: img.Rect{X0: 25, Y0: 10, X1: 31, Y1: 15}, Class: 2},
	)
	if m.Margin(good) <= 0 {
		t.Fatalf("good pair margin %v", m.Margin(good))
	}
	badVert := PairFeatures(
		Light{Box: img.Rect{X0: 0, Y0: 10, X1: 6, Y1: 15}, Class: 2},
		Light{Box: img.Rect{X0: 25, Y0: 60, X1: 31, Y1: 65}, Class: 2},
	)
	if m.Margin(badVert) > 0 {
		t.Fatalf("vertically misaligned pair accepted: %v", m.Margin(badVert))
	}
	badSize := PairFeatures(
		Light{Box: img.Rect{X0: 0, Y0: 10, X1: 4, Y1: 13}, Class: 1},
		Light{Box: img.Rect{X0: 30, Y0: 10, X1: 58, Y1: 34}, Class: 3},
	)
	if m.Margin(badSize) > 0 {
		t.Fatalf("size-mismatched pair accepted: %v", m.Margin(badSize))
	}
}

func TestGeometricGateAblation(t *testing.T) {
	det := quickDark(t, 1)
	det.Cfg.UsePairSVM = false
	// The geometric gate must still find most dark vehicles.
	found := 0
	for s := uint64(0); s < 10; s++ {
		m := synth.VehicleCrop(synth.NewRNG(500+s), 96, 96, synth.Dark)
		if det.ClassifyCrop(m) {
			found++
		}
	}
	if found < 6 {
		t.Fatalf("geometric gate found only %d/10", found)
	}
}

func TestMergeLights(t *testing.T) {
	hits := []Light{
		{Box: img.Rect{X0: 0, Y0: 0, X1: 9, Y1: 9}, Class: 1, Prob: 0.6},
		{Box: img.Rect{X0: 2, Y0: 0, X1: 11, Y1: 9}, Class: 2, Prob: 0.9},
		{Box: img.Rect{X0: 40, Y0: 40, X1: 49, Y1: 49}, Class: 1, Prob: 0.7},
	}
	merged := mergeLights(hits)
	if len(merged) != 2 {
		t.Fatalf("merged to %d lights, want 2", len(merged))
	}
	// The overlapping pair keeps the higher-probability class and the
	// union box.
	var big Light
	for _, l := range merged {
		if l.Box.X0 == 0 {
			big = l
		}
	}
	if big.Class != 2 || big.Prob != 0.9 {
		t.Fatalf("merged light kept wrong class: %+v", big)
	}
	if big.Box.X1 != 11 {
		t.Fatalf("merged box = %v", big.Box)
	}
}

func TestDarkDetectorOnSceneFrame(t *testing.T) {
	// 640x360 is the dark pipeline's native post-downsample operating
	// point (1920x1080 / 3); feeding such frames with Downsample=1
	// exercises the identical scan at test-affordable render cost.
	det := quickDark(t, 1)
	cfg := synth.SceneConfig{W: 640, H: 360, Cond: synth.Dark, NumVehicles: 1, RoadLights: 2, OncomingHeadlights: 1}
	detected := 0
	trials := 6
	for s := uint64(0); s < uint64(trials); s++ {
		sc := synth.RenderScene(synth.NewRNG(600+s), cfg)
		if len(sc.Vehicles) == 0 {
			continue
		}
		dets := det.Detect(sc.Frame)
		for _, d := range dets {
			for _, gt := range sc.Vehicles {
				if d.Box.Intersect(gt).Area() > 0 {
					detected++
					goto next
				}
			}
		}
	next:
	}
	if detected < trials/2 {
		t.Fatalf("scene-level dark detection hit %d/%d", detected, trials)
	}
}
