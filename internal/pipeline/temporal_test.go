package pipeline

import (
	"context"
	"runtime"
	"testing"

	"advdet/internal/img"
	"advdet/internal/synth"
)

// tcScanKinds are the four scoring strategies the temporal cache must
// compose with, byte for byte.
var tcScanKinds = []struct {
	name string
	set  func(d *DayDuskDetector)
}{
	{"early", func(d *DayDuskDetector) {}},
	{"full-margin", func(d *DayDuskDetector) { d.NoEarlyReject = true }},
	{"quantized", func(d *DayDuskDetector) { d.Quantized = true }},
	{"quantized-plane", func(d *DayDuskDetector) { d.Quantized = true; d.NoEarlyReject = true }},
	{"descriptor", func(d *DayDuskDetector) { d.NoBlockResponse = true }},
}

// mutateRect perturbs the pixels of r in place, deterministically from
// seed, so warm scans see a realistic partial-dirty frame.
func mutateRect(g *img.Gray, r img.Rect, seed uint64) {
	rng := synth.NewRNG(seed)
	r = r.Intersect(img.Rect{X0: 0, Y0: 0, X1: g.W, Y1: g.H})
	for y := r.Y0; y < r.Y1; y++ {
		for x := r.X0; x < r.X1; x++ {
			g.Pix[y*g.W+x] = uint8(rng.Intn(256))
		}
	}
}

// TestTemporalCacheByteIdentical is the tentpole's acceptance gate:
// for every scoring strategy and worker count, a cached scan of a cold
// frame, an unchanged warm frame, and a partially dirty warm frame
// produces exactly the detections of a cache-off scan of the same
// pixels.
func TestTemporalCacheByteIdentical(t *testing.T) {
	model := trainSmall(t, synth.DayDataset(740, 64, 64, 50, 50))
	cold := scanScene(741, 320, 200)
	warm := cold.Clone() // unchanged frame
	dirty := cold.Clone()
	mutateRect(dirty, img.Rect{X0: 96, Y0: 64, X1: 200, Y1: 160}, 742)
	frames := []struct {
		name  string
		frame *img.Gray
	}{{"cold", cold}, {"warm-unchanged", warm}, {"warm-partial-dirty", dirty}}

	ctx := context.Background()
	for _, kind := range tcScanKinds {
		t.Run(kind.name, func(t *testing.T) {
			ref := NewDayDuskDetector(model)
			ref.DetectThresh = -0.25 // loosen so the scene yields detections to compare
			kind.set(ref)
			want := make([][]Detection, len(frames))
			for i, f := range frames {
				dets, err := ref.DetectCtx(ctx, f.frame, 1)
				if err != nil {
					t.Fatal(err)
				}
				want[i] = dets
			}
			if len(want[0]) == 0 {
				t.Fatal("reference scan found nothing; scene too easy to miss a regression")
			}
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				det := NewDayDuskDetector(model)
				det.DetectThresh = -0.25
				kind.set(det)
				det.Temporal = NewTemporalCache()
				for i, f := range frames {
					dets, err := det.DetectCtx(ctx, f.frame, workers)
					if err != nil {
						t.Fatal(err)
					}
					requireSameDetections(t, kind.name+"/"+f.name, dets, want[i])
				}
				// The warm-unchanged frame must have been served from
				// the cache, not silently rescanned.
				st := det.Temporal.Stats()
				if st.Hits == 0 {
					t.Fatalf("workers=%d: cache reported no tile hits over an unchanged frame (%+v)", workers, st)
				}
			}
		})
	}
}

// TestTemporalCacheShrinkInvalidates is the regression gate for the
// stale-tile-map class of bug: a frame whose width shrinks 640 -> 600
// keeps the same tile count (10 columns of 64 px) and constant-color
// tiles hash identically under either row stride, while the cell grid
// changes shape (80 -> 75 columns). Without the dimension guard the
// cache would serve the old geometry's cells; with it, each geometry
// change rescans cold. The sequence also regrows to the original size
// to cross the per-level arena shrink seam in both directions.
func TestTemporalCacheShrinkInvalidates(t *testing.T) {
	model := trainSmall(t, synth.DayDataset(750, 64, 64, 40, 40))
	mk := func(w, h int) *img.Gray {
		// Mostly constant frame with one textured band: constant tiles
		// are the hash-collision trap, the band keeps detections alive.
		g := img.NewGray(w, h)
		g.Fill(96)
		mutateRect(g, img.Rect{X0: 0, Y0: h / 3, X1: w, Y1: h/3 + 64}, uint64(w)*31+uint64(h))
		return g
	}
	frames := []*img.Gray{
		mk(640, 320),
		mk(600, 320), // same tile columns, narrower cell grid
		mk(640, 320), // regrow across the seam
		mk(320, 160), // shallower pyramid: fewer levels
		mk(640, 320), // regrow the pyramid
	}
	ctx := context.Background()
	ref := NewDayDuskDetector(model)
	det := NewDayDuskDetector(model)
	det.Temporal = NewTemporalCache()
	for i, f := range frames {
		want, err := ref.DetectCtx(ctx, f, 1)
		if err != nil {
			t.Fatal(err)
		}
		got, err := det.DetectCtx(ctx, f, 1)
		if err != nil {
			t.Fatal(err)
		}
		requireSameDetections(t, "frame "+string(rune('0'+i)), got, want)
	}
}

// TestTemporalCacheRandomGeometries is the randomized property test:
// across 200 pyramid geometries and random dirty rectangles, a cached
// warm scan is byte-identical to a cache-off scan of the same pixels,
// under every scoring strategy in rotation.
func TestTemporalCacheRandomGeometries(t *testing.T) {
	model := trainSmall(t, synth.DayDataset(760, 64, 64, 40, 40))
	ctx := context.Background()
	rng := synth.NewRNG(761)
	for i := 0; i < 200; i++ {
		w := 96 + rng.Intn(160)
		h := 80 + rng.Intn(120)
		kind := tcScanKinds[i%len(tcScanKinds)]
		base := scanScene(uint64(762+i), w, h)

		ref := NewDayDuskDetector(model)
		kind.set(ref)
		det := NewDayDuskDetector(model)
		kind.set(det)
		det.Temporal = NewTemporalCache()

		// Cold frame, then 1-2 warm frames with random dirty rects
		// (possibly empty: an unchanged warm frame).
		for frame := 0; frame < 2+rng.Intn(2); frame++ {
			if frame > 0 && rng.Intn(4) > 0 {
				x0, y0 := rng.Intn(w), rng.Intn(h)
				mutateRect(base, img.Rect{X0: x0, Y0: y0, X1: x0 + 1 + rng.Intn(w), Y1: y0 + 1 + rng.Intn(h)}, uint64(i*31+frame))
			}
			want, err := ref.DetectCtx(ctx, base, 1)
			if err != nil {
				t.Fatal(err)
			}
			got, err := det.DetectCtx(ctx, base, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("geometry %d (%dx%d %s) frame %d: %d detections, want %d", i, w, h, kind.name, frame, len(got), len(want))
			}
			for j := range want {
				if got[j] != want[j] {
					t.Fatalf("geometry %d (%dx%d %s) frame %d: detection %d = %+v, want %+v", i, w, h, kind.name, frame, j, got[j], want[j])
				}
			}
		}
	}
}

// TestTemporalCacheInvalidateForcesColdScan checks the explicit
// invalidation hook: after Invalidate every tile is re-fingerprinted
// as a refresh, none as a hit, and output is still byte-identical.
func TestTemporalCacheInvalidateForcesColdScan(t *testing.T) {
	model := trainSmall(t, synth.DayDataset(770, 64, 64, 40, 40))
	g := scanScene(771, 320, 200)
	ctx := context.Background()
	ref := NewDayDuskDetector(model)
	want, err := ref.DetectCtx(ctx, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	det := NewDayDuskDetector(model)
	det.Temporal = NewTemporalCache()
	for frame := 0; frame < 2; frame++ {
		if _, err := det.DetectCtx(ctx, g, 1); err != nil {
			t.Fatal(err)
		}
	}
	if det.Temporal.FrameStats().Hits == 0 {
		t.Fatal("warm frame should hit")
	}
	det.Temporal.Invalidate()
	got, err := det.DetectCtx(ctx, g, 1)
	if err != nil {
		t.Fatal(err)
	}
	requireSameDetections(t, "post-invalidate", got, want)
	fs := det.Temporal.FrameStats()
	if fs.Hits != 0 || fs.Refreshes == 0 {
		t.Fatalf("post-invalidate frame stats %+v, want all refreshes", fs)
	}
}
