package pipeline

import (
	"context"
	"math"
	"runtime"
	"testing"

	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// applyVariant writes a scanVariant's knobs through the detector
// field pointers, so one helper serves all three HOG detector types.
func applyVariant(noBlocks, noEarly, quantized *bool, prefilter **haar.Cascade, v scanVariant) {
	*noBlocks = v.noBlocks
	*noEarly = v.noEarly
	*quantized = v.quantized
	*prefilter = v.prefilter
}

// constCascade builds a single-stage stump-free cascade at the given
// window: its stage score is -bias everywhere, so bias < 0 accepts
// every window and bias > 0 rejects every window.
func constCascade(winW, winH int, bias float64) *haar.Cascade {
	return &haar.Cascade{Stages: []*haar.Classifier{{WinW: winW, WinH: winH, Bias: bias}}}
}

// requireSameDetections asserts got is byte-identical to want:
// same boxes, kinds, order, and bitwise-equal scores.
func requireSameDetections(t *testing.T, label string, got, want []Detection) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d detections, want %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: detection %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

// TestEarlyRejectMatchesFullMargin is the tentpole's exactness gate:
// for every scan kind and worker count, the early-reject scan must be
// byte-identical — boxes, kinds, order, and bitwise scores — to the
// full-margin plane scan. The early exit's surviving windows re-sum
// their partials in canonical order, so even the float rounding
// agrees.
func TestEarlyRejectMatchesFullMargin(t *testing.T) {
	for _, tc := range blockEquivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.scan(t, tc.frame, 1, scanVariant{noEarly: true})
			if len(ref) == 0 {
				t.Fatalf("%s: full-margin scan found nothing; scene too easy to miss a regression", tc.name)
			}
			for _, workers := range []int{1, 2, runtime.NumCPU()} {
				got := tc.scan(t, tc.frame, workers, scanVariant{})
				requireSameDetections(t, tc.name, got, ref)
			}
		})
	}
}

// TestQuantizedBoundedDivergence is the quantized path's acceptance
// gate over seed scenes rendered in all three lighting conditions:
// the box set and kinds must be identical to the float scan (the
// guard band plus float borderline fallback make this structural, not
// statistical) and every score must sit within the quantizer's
// analytic error bound. The quantized plane path (early exit off)
// must match the on-demand quantized path exactly.
func TestQuantizedBoundedDivergence(t *testing.T) {
	dayModel := trainSmall(t, synth.DayDataset(700, 64, 64, 50, 50))
	duskModel := trainSmall(t, synth.DuskDataset(701, 64, 64, 50, 50, 0))
	cfg := hog.DefaultConfig()
	bw, bh := cfg.BlocksFor(64, 64)
	blockLen := cfg.BlockCells * cfg.BlockCells * cfg.Bins
	scenes := []struct {
		name  string
		model *svm.Model
		g     *img.Gray
	}{
		{"day", dayModel, img.RGBToGray(synth.RenderScene(synth.NewRNG(810),
			synth.SceneConfig{W: 320, H: 200, Cond: synth.Day, NumVehicles: 3}).Frame)},
		{"dusk", duskModel, img.RGBToGray(synth.RenderScene(synth.NewRNG(811),
			synth.SceneConfig{W: 320, H: 200, Cond: synth.Dusk, NumVehicles: 3}).Frame)},
		{"dark", duskModel, img.RGBToGray(synth.RenderScene(synth.NewRNG(812),
			synth.SceneConfig{W: 320, H: 200, Cond: synth.Dark, NumVehicles: 2, RoadLights: 2}).Frame)},
	}
	ctx := context.Background()
	for _, sc := range scenes {
		t.Run(sc.name, func(t *testing.T) {
			det := NewDayDuskDetector(sc.model)
			det.DetectThresh = -0.25 // loosen so every scene yields detections
			ref, err := det.DetectCtx(ctx, sc.g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(ref) == 0 && sc.name != "dark" {
				t.Fatalf("%s: float scan found nothing; scene too easy to miss a regression", sc.name)
			}
			var qm svm.QuantBlockModel
			if err := qm.Init(sc.model, bw, bh, blockLen, det.DetectThresh); err != nil {
				t.Fatalf("quantizer rejected the trained model: %v", err)
			}
			qdet := *det
			qdet.Quantized = true
			got, err := qdet.DetectCtx(ctx, sc.g, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(ref) {
				t.Fatalf("quantized scan: %d detections, want %d", len(got), len(ref))
			}
			for i := range ref {
				if got[i].Box != ref[i].Box || got[i].Kind != ref[i].Kind {
					t.Fatalf("quantized detection %d = %+v, want box/kind of %+v", i, got[i], ref[i])
				}
				if d := math.Abs(got[i].Score - ref[i].Score); d > qm.ErrBound() {
					t.Fatalf("quantized detection %d score diverges by %g, bound %g",
						i, d, qm.ErrBound())
				}
			}
			// Plane path (early exit off) must agree with the on-demand
			// quantized path bit for bit: same integer arithmetic, same
			// borderline fallback.
			pdet := qdet
			pdet.NoEarlyReject = true
			plane, err := pdet.DetectCtx(ctx, sc.g, 1)
			if err != nil {
				t.Fatal(err)
			}
			requireSameDetections(t, "quantized plane vs on-demand", plane, got)
		})
	}
}

// TestPrefilterGatesWindows pins the haar prefilter seam: a cascade
// that accepts everything must not change the detection list at all,
// one that rejects everything must yield zero detections, and one
// trained at a different window geometry must be ignored (scoring it
// at the scan's window would read the wrong pixels).
func TestPrefilterGatesWindows(t *testing.T) {
	for _, tc := range blockEquivalenceCases(t) {
		t.Run(tc.name, func(t *testing.T) {
			ref := tc.scan(t, tc.frame, 1, scanVariant{})
			winW, winH := 64, 64
			switch tc.name {
			case "pedestrian":
				winW, winH = PedWindowW, PedWindowH
			case "animal":
				winW, winH = AnimalWindowW, AnimalWindowH
			}
			pass := tc.scan(t, tc.frame, 1, scanVariant{prefilter: constCascade(winW, winH, -1)})
			requireSameDetections(t, "accept-all prefilter", pass, ref)
			none := tc.scan(t, tc.frame, 1, scanVariant{prefilter: constCascade(winW, winH, 1)})
			if len(none) != 0 {
				t.Fatalf("reject-all prefilter let %d detections through", len(none))
			}
			mismatched := tc.scan(t, tc.frame, 1, scanVariant{prefilter: constCascade(winW+8, winH, 1)})
			requireSameDetections(t, "geometry-mismatched prefilter", mismatched, ref)
			// The prefilter must gate the descriptor fallback too.
			noneDesc := tc.scan(t, tc.frame, 1, scanVariant{noBlocks: true, prefilter: constCascade(winW, winH, 1)})
			if len(noneDesc) != 0 {
				t.Fatalf("reject-all prefilter let %d descriptor-path detections through", len(noneDesc))
			}
		})
	}
}

// TestPrefilterLatticeMatchesScan is the window-geometry audit of the
// haar cascade against the scan lattice: over randomized image and
// window geometries (plus the real pyramid sizes of a 640x360 scan),
// the positions haar.Classifier.Scan visits must be exactly the
// scanPositions cross product — same counts on both axes, same
// coordinates. A drift of one position at a boundary (e.g. size
// exactly one stride past the window) would make the prefilter reject
// windows the scan evaluates, silently changing detections.
func TestPrefilterLatticeMatchesScan(t *testing.T) {
	rng := synth.NewRNG(900)
	type geom struct{ w, h, winW, winH, stride int }
	var cases []geom
	for i := 0; i < 200; i++ {
		cases = append(cases, geom{
			w:    rng.IntRange(10, 201),
			h:    rng.IntRange(10, 201),
			winW: rng.IntRange(8, 81),
			winH: rng.IntRange(8, 81),
			// The scan contract requires stride >= 1 (haar.Scan clamps).
			stride: rng.IntRange(1, 33),
		})
	}
	// The geometries a real vehicle scan hands the prefilter.
	for _, s := range img.PyramidSizes(640, 360, 1.25, 64, 64) {
		cases = append(cases, geom{w: s[0], h: s[1], winW: 64, winH: 64, stride: 16})
	}
	for _, c := range cases {
		g := img.NewGray(c.w, c.h)
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.Intn(256))
		}
		// A permissive classifier scores every window above threshold,
		// so Scan's output enumerates its full lattice.
		cls := &haar.Classifier{WinW: c.winW, WinH: c.winH, Bias: -1}
		wins := cls.Scan(g, c.stride, 0)
		nax := scanPositions(c.w, c.winW, c.stride)
		nay := scanPositions(c.h, c.winH, c.stride)
		if len(wins) != nax*nay {
			t.Fatalf("geom %+v: haar lattice has %d positions, scan lattice %d x %d = %d",
				c, len(wins), nax, nay, nax*nay)
		}
		k := 0
		for ay := 0; ay < nay; ay++ {
			for ax := 0; ax < nax; ax++ {
				if wins[k].X != ax*c.stride || wins[k].Y != ay*c.stride {
					t.Fatalf("geom %+v: position %d at (%d,%d), scan lattice expects (%d,%d)",
						c, k, wins[k].X, wins[k].Y, ax*c.stride, ay*c.stride)
				}
				k++
			}
		}
	}
}

// TestReleaseScanScratchClearsResults is the fails-pre-fix regression
// for the result-arena leak: when a scan's task count shrinks between
// borrows, the rows of the larger scan parked beyond the new length
// must be dropped on release, or the pooled scratch pins their
// detection slices (and transitively the frames they were assembled
// from) indefinitely.
func TestReleaseScanScratchClearsResults(t *testing.T) {
	s := new(scanScratch)
	_, results := s.setTasks(10)
	for i := range results {
		results[i] = []Detection{{Score: float64(i)}}
	}
	backing := results[:cap(results)]
	s.setTasks(3) // a smaller frame's scan
	releaseScanScratch(s)
	for i := range backing {
		if backing[i] != nil {
			t.Fatalf("release left results[%d] populated after shrink; pooled scratch pins past-frame detections", i)
		}
	}
	// Claim the scratch back so the doctored state can't leak into a
	// concurrently running test via the pool.
	if got := borrowScanScratch(); got != s {
		scanPool.Put(got)
	}
}

// TestSetLevelsInvalidatesShrunkEntries is the fails-pre-fix
// regression for the per-level arena seam: a pyramid that shrinks
// between borrows must not leave levels beyond the new count holding
// the previous scan's response planes, lattices or anchor widths —
// state nothing re-derives, which any later read would interpret as
// current.
func TestSetLevelsInvalidatesShrunkEntries(t *testing.T) {
	s := new(scanScratch)
	s.setLevels(5)
	for i := 0; i < 5; i++ {
		s.resp[i] = append(s.resp[i][:0], 1, 2, 3)
		s.qgrids[i] = append(s.qgrids[i][:0], 4)
		s.qresp[i] = append(s.qresp[i][:0], 5)
		s.lats[i] = svm.Lattice{NAX: 7, NAY: 7, NBX: 9, NBY: 9, StepX: 1, StepY: 1, BlockStride: 1}
		s.nax[i] = 7
	}
	s.setLevels(2)
	for i := 2; i < 5; i++ {
		if len(s.resp[i]) != 0 || len(s.qgrids[i]) != 0 || len(s.qresp[i]) != 0 {
			t.Fatalf("level %d kept stale planes after shrink (resp %d, qgrids %d, qresp %d)",
				i, len(s.resp[i]), len(s.qgrids[i]), len(s.qresp[i]))
		}
		if s.lats[i] != (svm.Lattice{}) || s.nax[i] != 0 {
			t.Fatalf("level %d kept stale lattice %+v / nax %d after shrink", i, s.lats[i], s.nax[i])
		}
	}
	for i := 0; i < 2; i++ {
		if len(s.resp[i]) != 3 || s.nax[i] != 7 {
			t.Fatalf("level %d lost live state on shrink", i)
		}
	}
	if cap(s.resp[4]) == 0 {
		t.Fatal("shrink freed a reusable buffer instead of truncating it")
	}
}

// TestShrinkThenRescan drives the shrink seams end to end: a large
// scan grows the pooled arenas, then a smaller frame must still score
// byte-identically to the descriptor oracle on every scoring path —
// any stale plane or lattice surviving the shrink shows up here as a
// phantom or missing detection.
func TestShrinkThenRescan(t *testing.T) {
	det := NewDayDuskDetector(trainSmall(t, synth.DayDataset(820, 64, 64, 40, 40)))
	det.DetectThresh = -0.25
	big := scanScene(821, 512, 320)
	small := scanScene(822, 160, 112)
	ctx := context.Background()
	oracle := *det
	oracle.NoBlockResponse = true
	for _, v := range []struct {
		name string
		set  func(d *DayDuskDetector)
	}{
		{"early", func(d *DayDuskDetector) {}},
		{"full", func(d *DayDuskDetector) { d.NoEarlyReject = true }},
		{"quantized", func(d *DayDuskDetector) { d.Quantized = true }},
	} {
		t.Run(v.name, func(t *testing.T) {
			d := *det
			v.set(&d)
			if _, err := d.DetectCtx(ctx, big, 1); err != nil {
				t.Fatal(err)
			}
			got, err := d.DetectCtx(ctx, small, 1)
			if err != nil {
				t.Fatal(err)
			}
			want, err := oracle.DetectCtx(ctx, small, 1)
			if err != nil {
				t.Fatal(err)
			}
			if len(got) != len(want) {
				t.Fatalf("shrink rescan: %d detections, want %d", len(got), len(want))
			}
			for i := range want {
				if got[i].Box != want[i].Box || got[i].Kind != want[i].Kind {
					t.Fatalf("shrink rescan: detection %d = %+v, want %+v", i, got[i], want[i])
				}
			}
		})
	}
}
