package pipeline

import (
	"fmt"
	"math"

	"advdet/internal/img"
)

// Range estimation from taillight-pair separation, the classic
// monocular night-time cue (Chien et al., paper reference [14],
// perform "proper segmentation and range estimation" from taillight
// geometry): with a pinhole camera of focal length f (pixels), a
// vehicle of real taillight separation S meters whose lamps are s
// pixels apart sits at distance  d = f * S / s.

// CameraIntrinsics holds the monocular geometry needed for range
// estimation.
type CameraIntrinsics struct {
	// FocalPx is the focal length in pixels at the ranging
	// resolution.
	FocalPx float64
	// LampSeparationM is the assumed real-world taillight separation.
	LampSeparationM float64
}

// DefaultCameraIntrinsics returns plausible values for a 1920-wide
// automotive camera with a ~50° horizontal field of view and a
// mid-size car (1.45 m between taillight centers).
func DefaultCameraIntrinsics() CameraIntrinsics {
	return CameraIntrinsics{FocalPx: 2050, LampSeparationM: 1.45}
}

// RangeFromPair estimates the distance in meters to a vehicle whose
// lamp centers are sepPx apart at full capture resolution.
func (c CameraIntrinsics) RangeFromPair(sepPx float64) (float64, error) {
	if c.FocalPx <= 0 || c.LampSeparationM <= 0 {
		return 0, fmt.Errorf("pipeline: invalid camera intrinsics %+v", c)
	}
	if sepPx <= 0 {
		return 0, fmt.Errorf("pipeline: non-positive lamp separation %v px", sepPx)
	}
	return c.FocalPx * c.LampSeparationM / sepPx, nil
}

// PairSeparationPx returns the lamp-center separation of two light
// candidates, mapped back to capture resolution by the decimation
// factor.
func PairSeparationPx(a, b Light, factor int) float64 {
	acx, acy := a.Box.Center()
	bcx, bcy := b.Box.Center()
	return math.Hypot(float64(acx-bcx), float64(acy-bcy)) * float64(factor)
}

// RangedDetection is a dark-pipeline detection with its estimated
// distance.
type RangedDetection struct {
	Detection
	RangeM float64
}

// DetectWithRange runs the dark pipeline and annotates each vehicle
// with a monocular range estimate derived from its lamp pair.
func (d *DarkDetector) DetectWithRange(frame *img.RGB, cam CameraIntrinsics) ([]RangedDetection, error) {
	factor := d.Cfg.FactorFor(frame.W)
	b := d.Preprocess(frame)
	lights := d.ScanLights(b)
	var out []RangedDetection
	for i := 0; i < len(lights); i++ {
		for j := i + 1; j < len(lights); j++ {
			a, c := lights[i], lights[j]
			f := PairFeatures(a, c)
			ok := false
			score := 0.0
			if d.Cfg.UsePairSVM && d.PairSVM != nil {
				score = d.PairSVM.Margin(f)
				ok = score > 0
			} else {
				ok = d.geometricPairGate(f)
				score = 1
			}
			if !ok {
				continue
			}
			sep := PairSeparationPx(a, c, factor)
			rng, err := cam.RangeFromPair(sep)
			if err != nil {
				continue // degenerate pair geometry
			}
			u := a.Box.Union(c.Box)
			expandY := u.W() / 2
			box := img.Rect{
				X0: (u.X0 - u.W()/8) * factor,
				Y0: (u.Y0 - expandY) * factor,
				X1: (u.X1 + u.W()/8) * factor,
				Y1: (u.Y1 + expandY/2) * factor,
			}
			box = box.Intersect(img.Rect{X0: 0, Y0: 0, X1: frame.W, Y1: frame.H})
			if box.Empty() {
				continue
			}
			out = append(out, RangedDetection{
				Detection: Detection{Box: box, Score: score + a.Prob + c.Prob, Kind: KindVehicle},
				RangeM:    rng,
			})
		}
	}
	// NMS on the embedded detections, preserving range annotations.
	kept := NMS(detachDetections(out), 0.3)
	var final []RangedDetection
	for _, k := range kept {
		for _, r := range out {
			if r.Box == k.Box && r.Score == k.Score {
				final = append(final, r)
				break
			}
		}
	}
	return final, nil
}

func detachDetections(rs []RangedDetection) []Detection {
	out := make([]Detection, len(rs))
	for i, r := range rs {
		out[i] = r.Detection
	}
	return out
}
