// Package pipeline implements the paper's three detection pipelines:
//
//   - day/dusk vehicle detection: HOG features + linear SVM (Fig. 2),
//   - dark vehicle detection: dual threshold -> downsample -> closing
//     -> sliding-window DBN -> spatial pair matching with an SVM
//     (Figs. 3 and 4),
//   - pedestrian detection: multi-scale HOG + SVM on the static
//     partition (after Hemmati et al., DAC'17).
//
// Each pipeline has a software-exact implementation here; the SoC
// model accounts its cycle cost separately.
//
// lint:detpath
package pipeline

import (
	"sort"

	"advdet/internal/img"
)

// Kind tags what a detection is.
type Kind int

const (
	KindVehicle Kind = iota
	KindPedestrian
	KindAnimal
)

func (k Kind) String() string {
	switch k {
	case KindPedestrian:
		return "pedestrian"
	case KindAnimal:
		return "animal"
	default:
		return "vehicle"
	}
}

// Detection is one detected object in frame coordinates.
type Detection struct {
	Box   img.Rect
	Score float64
	Kind  Kind
}

// Boxes extracts just the rectangles.
func Boxes(dets []Detection) []img.Rect {
	out := make([]img.Rect, len(dets))
	for i, d := range dets {
		out[i] = d.Box
	}
	return out
}

// NMS performs greedy non-maximum suppression: detections are visited
// in decreasing score order and any detection overlapping an already
// accepted one with IoU above the threshold is discarded.
func NMS(dets []Detection, iouThresh float64) []Detection {
	sorted := make([]Detection, len(dets))
	copy(sorted, dets)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Score > sorted[j].Score })
	var kept []Detection
	for _, d := range sorted {
		ok := true
		for _, k := range kept {
			if d.Box.IoU(k.Box) > iouThresh {
				ok = false
				break
			}
		}
		if ok {
			kept = append(kept, d)
		}
	}
	return kept
}

// slideWindows scans a w x h window over g with the given stride,
// invoking score for each position; positions scoring above threshold
// are returned as detections in g's coordinates.
func slideWindows(g *img.Gray, winW, winH, stride int, threshold float64,
	score func(*img.Gray) float64, kind Kind) []Detection {
	var dets []Detection
	if g.W < winW || g.H < winH {
		return nil
	}
	for y := 0; y+winH <= g.H; y += stride {
		for x := 0; x+winW <= g.W; x += stride {
			crop := g.SubImage(img.Rect{X0: x, Y0: y, X1: x + winW, Y1: y + winH})
			if s := score(crop); s > threshold {
				dets = append(dets, Detection{
					Box:   img.Rect{X0: x, Y0: y, X1: x + winW, Y1: y + winH},
					Score: s,
					Kind:  kind,
				})
			}
		}
	}
	return dets
}

// scanPyramid runs slideWindows on every level of an image pyramid and
// maps detections back to level-0 coordinates.
func scanPyramid(g *img.Gray, winW, winH, stride int, scale float64, threshold float64,
	score func(*img.Gray) float64, kind Kind) []Detection {
	levels := img.PyramidGray(g, scale, winW, winH)
	var all []Detection
	for _, level := range levels {
		fx := float64(g.W) / float64(level.W)
		fy := float64(g.H) / float64(level.H)
		for _, d := range slideWindows(level, winW, winH, stride, threshold, score, kind) {
			d.Box = img.Rect{
				X0: int(float64(d.Box.X0) * fx),
				Y0: int(float64(d.Box.Y0) * fy),
				X1: int(float64(d.Box.X1) * fx),
				Y1: int(float64(d.Box.Y1) * fy),
			}
			all = append(all, d)
		}
	}
	return all
}
