package pipeline

import (
	"sync"

	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
)

// scanScratch owns every reusable buffer of one hogScan.run
// invocation: pyramid levels, per-level feature maps and block grids,
// response planes, and the task/result arenas. A scratch is borrowed
// from a process-wide pool for the duration of one scan and returned
// afterwards, so the steady-state frame loop recomputes everything per
// frame but allocates (almost) nothing — the software equivalent of
// the PL's statically provisioned HOG/Normalized-HOG memories, which
// are rewritten every frame and never reallocated.
//
// Nothing borrowed from the pool escapes a scan: detections handed to
// the caller are always freshly assembled.
type scanScratch struct {
	levels  []*img.Gray
	maps    []*hog.FeatureMap
	grids   []*hog.BlockGrid
	hs      hog.Scratch
	bm      svm.BlockModel
	resp    [][]float64 // per-level response planes; len 0 = descriptor path
	nax     []int       // per-level anchor-lattice width
	tasks   []rowTask
	results [][]Detection
}

var scanPool = sync.Pool{New: func() any { return new(scanScratch) }}

func borrowScanScratch() *scanScratch { return scanPool.Get().(*scanScratch) }

func releaseScanScratch(s *scanScratch) {
	// Drop detection references so the pool doesn't pin row output
	// from past frames; the slice headers themselves are reused.
	for i := range s.results {
		s.results[i] = nil
	}
	scanPool.Put(s) // lint:alloc sync.Pool.Put boxes once per scan, not per window
}

// setLevels grows the per-level arenas to hold n levels, preserving
// existing entries (and their buffers) for reuse.
func (s *scanScratch) setLevels(n int) {
	for len(s.levels) < n {
		s.levels = append(s.levels, nil)
	}
	for len(s.maps) < n {
		s.maps = append(s.maps, new(hog.FeatureMap))
	}
	for len(s.grids) < n {
		s.grids = append(s.grids, new(hog.BlockGrid))
	}
	for len(s.resp) < n {
		s.resp = append(s.resp, nil)
	}
	for len(s.nax) < n {
		s.nax = append(s.nax, 0)
	}
}

// setTasks sizes the task and result arenas for n row tasks and
// returns them, growing capacity only when needed (the fix for the
// old append-into-nil quadratic growth).
func (s *scanScratch) setTasks(n int) ([]rowTask, [][]Detection) {
	if cap(s.tasks) < n {
		s.tasks = make([]rowTask, n)
	}
	s.tasks = s.tasks[:n]
	if cap(s.results) < n {
		s.results = make([][]Detection, n)
	}
	s.results = s.results[:n]
	return s.tasks, s.results
}

// growF64 returns buf resized to n floats, reusing its backing array
// when possible. Contents are unspecified; callers overwrite fully.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}
