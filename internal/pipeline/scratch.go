package pipeline

import (
	"sync"

	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
)

// scanScratch owns every reusable buffer of one hogScan.run
// invocation: pyramid levels, per-level feature maps and block grids,
// response planes (float and quantized), prefilter integrals, and the
// task/result arenas. A scratch is borrowed from a process-wide pool
// for the duration of one scan and returned afterwards, so the
// steady-state frame loop recomputes everything per frame but
// allocates (almost) nothing — the software equivalent of the PL's
// statically provisioned HOG/Normalized-HOG memories, which are
// rewritten every frame and never reallocated.
//
// Nothing borrowed from the pool escapes a scan: detections handed to
// the caller are always freshly assembled.
type scanScratch struct {
	levels  []*img.Gray
	maps    []*hog.FeatureMap
	grids   []*hog.BlockGrid
	its     []*haar.Integral
	hs      hog.Scratch
	bm      svm.BlockModel
	qbm     svm.QuantBlockModel
	resp    [][]float64   // per-level float response planes; len 0 = not precomputed
	qgrids  [][]int16     // per-level quantized block planes; len 0 = float path
	qresp   [][]int32     // per-level quantized response planes; len 0 = on-demand
	lats    []svm.Lattice // per-level anchor lattices (valid when nax > 0)
	nax     []int         // per-level anchor-lattice width; 0 = descriptor path
	tasks   []rowTask
	results [][]Detection

	// level0 stashes the pooled level-0 buffer while levels[0] aliases
	// the caller's frame (level 0 of the pyramid is always the source
	// size, so the scan reads the frame directly instead of copying
	// it). releaseScanScratch swaps the stash back so the pool never
	// pins a caller's frame across scans.
	level0        *img.Gray
	level0Aliased bool
}

var scanPool = sync.Pool{New: func() any { return new(scanScratch) }}

func borrowScanScratch() *scanScratch { return scanPool.Get().(*scanScratch) }

func releaseScanScratch(s *scanScratch) {
	if s.level0Aliased {
		s.levels[0] = s.level0
		s.level0 = nil
		s.level0Aliased = false
	}
	// Drop detection references so the pool doesn't pin row output from
	// past frames; the slice headers themselves are reused. The clear
	// must run over the full capacity, not just the current length: a
	// scan with fewer row tasks than its predecessor shrinks
	// len(s.results), and rows of the larger frame parked in
	// [len, cap) would otherwise keep their detection slices — and the
	// frames those boxes came from — reachable for as long as the
	// scratch stays pooled.
	res := s.results[:cap(s.results)]
	for i := range res {
		res[i] = nil
	}
	scanPool.Put(s) // lint:alloc sync.Pool.Put boxes once per scan, not per window
}

// setLevels grows the per-level arenas to hold n levels, preserving
// existing entries (and their buffers) for reuse, and invalidates the
// per-level scan state of every entry beyond n. A pyramid that
// shrinks between borrows (smaller frame, larger MinSize) leaves
// entries [n, high-water) holding the previous scan's response planes
// and lattices; nothing re-derives them, so any later read of an
// entry the current scan didn't fill must see "no data" rather than a
// stale plane. Buffers are kept (truncated, not freed) so a regrow
// reuses them.
func (s *scanScratch) setLevels(n int) {
	for len(s.levels) < n {
		s.levels = append(s.levels, nil)
	}
	for len(s.maps) < n {
		s.maps = append(s.maps, new(hog.FeatureMap))
	}
	for len(s.grids) < n {
		s.grids = append(s.grids, new(hog.BlockGrid))
	}
	for len(s.its) < n {
		s.its = append(s.its, new(haar.Integral))
	}
	for len(s.resp) < n {
		s.resp = append(s.resp, nil)
	}
	for len(s.qgrids) < n {
		s.qgrids = append(s.qgrids, nil)
	}
	for len(s.qresp) < n {
		s.qresp = append(s.qresp, nil)
	}
	for len(s.lats) < n {
		s.lats = append(s.lats, svm.Lattice{})
	}
	for len(s.nax) < n {
		s.nax = append(s.nax, 0)
	}
	for i := n; i < len(s.nax); i++ {
		s.resp[i] = s.resp[i][:0]
		s.qgrids[i] = s.qgrids[i][:0]
		s.qresp[i] = s.qresp[i][:0]
		s.lats[i] = svm.Lattice{}
		s.nax[i] = 0
	}
}

// setTasks sizes the task and result arenas for n row tasks and
// returns them, growing capacity only when needed (the fix for the
// old append-into-nil quadratic growth).
func (s *scanScratch) setTasks(n int) ([]rowTask, [][]Detection) {
	if cap(s.tasks) < n {
		s.tasks = make([]rowTask, n)
	}
	s.tasks = s.tasks[:n]
	if cap(s.results) < n {
		s.results = make([][]Detection, n)
	}
	s.results = s.results[:n]
	return s.tasks, s.results
}

// growF64 returns buf resized to n floats, reusing its backing array
// when possible. Contents are unspecified; callers overwrite fully.
func growF64(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n)
	}
	return buf[:n]
}

// growI16 is growF64 for int16 planes.
func growI16(buf []int16, n int) []int16 {
	if cap(buf) < n {
		return make([]int16, n)
	}
	return buf[:n]
}

// growI32 is growF64 for int32 planes.
func growI32(buf []int32, n int) []int32 {
	if cap(buf) < n {
		return make([]int32, n)
	}
	return buf[:n]
}
