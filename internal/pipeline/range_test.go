package pipeline

import (
	"math"
	"testing"

	"advdet/internal/img"
	"advdet/internal/synth"
)

func TestRangeFromPairInverseLaw(t *testing.T) {
	cam := DefaultCameraIntrinsics()
	near, err := cam.RangeFromPair(300)
	if err != nil {
		t.Fatal(err)
	}
	far, err := cam.RangeFromPair(30)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(far/near-10) > 1e-9 {
		t.Fatalf("range should scale inversely with separation: %v vs %v", near, far)
	}
	// Sanity: a 1.45 m pair at 100 px with f=2050 is ~29.7 m.
	mid, _ := cam.RangeFromPair(100)
	if math.Abs(mid-29.725) > 0.01 {
		t.Fatalf("range at 100 px = %v m", mid)
	}
}

func TestRangeFromPairErrors(t *testing.T) {
	cam := DefaultCameraIntrinsics()
	if _, err := cam.RangeFromPair(0); err == nil {
		t.Fatal("zero separation accepted")
	}
	bad := CameraIntrinsics{}
	if _, err := bad.RangeFromPair(50); err == nil {
		t.Fatal("invalid intrinsics accepted")
	}
}

func TestPairSeparationPxScalesWithFactor(t *testing.T) {
	a := Light{Box: img.Rect{X0: 0, Y0: 0, X1: 4, Y1: 4}}
	b := Light{Box: img.Rect{X0: 30, Y0: 0, X1: 34, Y1: 4}}
	s1 := PairSeparationPx(a, b, 1)
	s3 := PairSeparationPx(a, b, 3)
	if s3 != 3*s1 {
		t.Fatalf("separation should scale with the decimation factor: %v vs %v", s1, s3)
	}
}

func TestDetectWithRangeOrdersByDepth(t *testing.T) {
	// Two vehicles at different depths on a coherent dark drive: the
	// visually larger (nearer) one must get the smaller range.
	det := quickDark(t, 0)
	drive := synth.NewDrive(71, 640, 360, synth.Dark, 2, 0)
	cam := DefaultCameraIntrinsics()
	checked := false
	for i := 0; i < 20 && !checked; i++ {
		sc := drive.Frame(i)
		if len(sc.Vehicles) != 2 {
			continue
		}
		ranged, err := det.DetectWithRange(sc.Frame, cam)
		if err != nil {
			t.Fatal(err)
		}
		if len(ranged) < 2 {
			continue
		}
		// Match detections to ground truth by IoU and compare ranges
		// against the ground-truth box widths (wider = nearer).
		type pair struct {
			width  int
			rangeM float64
		}
		var got []pair
		usedDet := map[int]bool{}
		for _, gt := range sc.Vehicles {
			for ri, r := range ranged {
				if usedDet[ri] {
					continue
				}
				if r.Box.IoU(gt) > 0.1 {
					got = append(got, pair{gt.W(), r.RangeM})
					usedDet[ri] = true
					break
				}
			}
		}
		// Need two distinct detections with clearly different depths.
		if len(got) < 2 {
			continue
		}
		wdiff := float64(got[0].width-got[1].width) / float64(got[0].width+got[1].width)
		if math.Abs(wdiff) < 0.08 {
			continue
		}
		wide, narrow := got[0], got[1]
		if narrow.width > wide.width {
			wide, narrow = narrow, wide
		}
		if wide.rangeM >= narrow.rangeM {
			t.Fatalf("nearer (wider %dpx) vehicle ranged at %.1fm, farther (%dpx) at %.1fm",
				wide.width, wide.rangeM, narrow.width, narrow.rangeM)
		}
		checked = true
	}
	if !checked {
		t.Skip("no frame produced two ranged detections; detector-dependent")
	}
}

func TestDetectWithRangePlausibleMagnitudes(t *testing.T) {
	det := quickDark(t, 0)
	drive := synth.NewDrive(73, 640, 360, synth.Dark, 1, 0)
	cam := DefaultCameraIntrinsics()
	found := 0
	for i := 0; i < 10; i++ {
		ranged, err := det.DetectWithRange(drive.Frame(i).Frame, cam)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range ranged {
			found++
			if r.RangeM < 2 || r.RangeM > 400 {
				t.Fatalf("implausible range %.1f m", r.RangeM)
			}
		}
	}
	if found == 0 {
		t.Fatal("no ranged detections over 10 frames")
	}
}
