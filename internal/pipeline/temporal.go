package pipeline

import (
	"advdet/internal/fixed"
	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
)

// TemporalCache carries one detector's feature/block/response stack
// across frames so a scan only recomputes what the camera changed.
// Each pyramid level is split into cell-aligned tiles (hog.TileMap),
// fingerprinted per frame, and the dirty tiles are dilated outward —
// one-cell halo to cells, block span to blocks, window span to anchors
// — so every refreshed value sees exactly the inputs a cold scan would
// read, making cached output byte-identical to a full recompute (up to
// 64-bit fingerprint collisions; see hog.TileMap). The full-rescan
// path is always kept: any configuration or geometry change falls back
// to a cold scan of the affected state.
//
// Where scanScratch is borrowed from a process-wide pool per scan, a
// TemporalCache is owned: it persists one stream's per-level feature
// maps, block grids and response planes between frames and must never
// be shared — by two detectors, or by two streams — because its
// contents are keyed to one frame sequence. The zero value is not
// ready; use NewTemporalCache. Not safe for concurrent use.
type TemporalCache struct {
	tile  int
	sig   temporalSig
	valid bool

	// Per-level cached state, owned here (never pooled) so no later
	// scratch borrow can scribble over it.
	tiles  []*hog.TileMap
	maps   []*hog.FeatureMap
	grids  []*hog.BlockGrid
	resp   [][]float64
	qgrids [][]int16
	qresp  [][]int32

	// Transient per-level dirty masks, reused across levels and frames.
	cellMask  []bool
	blockMask []bool
	anchMask  []bool
	prefix    []int32 // integral image over blockMask for anchor queries

	// Per-level refresh bookkeeping for the window reuse pass: mode is
	// this frame's refresh mode per level; for tcPartial levels
	// cellPrefix holds an integral image over that level's dirty-cell
	// mask (the mask itself is a transient shared across levels), with
	// cw/ch its cell-grid dims, so stage 3 answers "is this window's
	// cell rectangle clean?" in O(1) per window.
	mode       []int
	cw, ch     []int
	cellPrefix [][]int32

	// Cached stage-3 output: one detection slice per window-row task,
	// valid only while rowsValid (same signature, previous scan
	// completed). The task list is a pure function of the signature,
	// so the task index is stable across frames.
	rowDets   [][]Detection
	rowsValid bool

	frame TemporalStats // last frame's tile accounting
	stats TemporalStats // cumulative since construction / Invalidate
}

// TemporalStats is the tile accounting of a temporal cache: Hits are
// tiles reused unchanged, Misses are tiles whose content changed since
// the previous frame, Refreshes are tiles hashed with no comparable
// fingerprint (first frame, invalidation, geometry change). Frames
// counts scans served.
type TemporalStats struct {
	Frames    int
	Hits      int
	Misses    int
	Refreshes int
}

// HitRate returns the fraction of tiles reused unchanged, in [0, 1];
// 0 when no tiles have been observed.
func (s TemporalStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Refreshes
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// temporalSig is the cache key outside the pixels themselves: any
// field changing means cached state may describe different geometry or
// a different model, so the whole cache is discarded. The frame
// dimensions are included because every level's geometry derives from
// them — which also covers the shrink seam where a narrower frame
// keeps the same tile count while the cell grid changes shape.
type temporalSig struct {
	model              *svm.Model
	cfg                hog.Config
	winW, winH, stride int
	scale, thresh      float64
	noBlock, noEarly   bool
	quant              bool
	pref               *haar.Cascade
	w, h               int
}

// Per-level refresh modes derived from the tile fingerprints.
const (
	tcFull    = iota // recompute the level's whole stack
	tcPartial        // refresh only dirty cells/blocks/anchors
	tcClean          // reuse everything; nothing changed
)

// NewTemporalCache returns an empty cache using the default 64-px
// tile size. Attach it to one detector's Temporal field.
func NewTemporalCache() *TemporalCache {
	return &TemporalCache{tile: hog.DefaultTileSize}
}

// Stats returns the cumulative tile accounting.
func (tc *TemporalCache) Stats() TemporalStats { return tc.stats }

// FrameStats returns the tile accounting of the most recent scan.
func (tc *TemporalCache) FrameStats() TemporalStats { return tc.frame }

// Invalidate discards every fingerprint and cached plane: the next
// scan is cold. Callers invalidate on reconfiguration and on any
// out-of-band reason to distrust cross-frame continuity; configuration
// and geometry changes are detected automatically.
func (tc *TemporalCache) Invalidate() {
	tc.valid = false
}

// begin opens one scan: a signature mismatch (or an explicit
// Invalidate) discards all cached state, and the per-level arenas are
// sized for nl levels with entries beyond nl invalidated — the same
// stale-state discipline as scanScratch.setLevels, because a pyramid
// that shrinks and regrows must not resurrect another geometry's
// planes.
func (tc *TemporalCache) begin(sig temporalSig, nl int) {
	if !tc.valid || sig != tc.sig {
		tc.sig = sig
		tc.valid = true
		tc.rowsValid = false
		for i := range tc.tiles {
			tc.tiles[i].Invalidate()
			tc.resp[i] = tc.resp[i][:0]
			tc.qgrids[i] = tc.qgrids[i][:0]
			tc.qresp[i] = tc.qresp[i][:0]
		}
	}
	for len(tc.tiles) < nl {
		tc.tiles = append(tc.tiles, hog.NewTileMap(tc.tile))
		tc.maps = append(tc.maps, new(hog.FeatureMap))
		tc.grids = append(tc.grids, new(hog.BlockGrid))
		tc.resp = append(tc.resp, nil)
		tc.qgrids = append(tc.qgrids, nil)
		tc.qresp = append(tc.qresp, nil)
		tc.mode = append(tc.mode, tcFull)
		tc.cw = append(tc.cw, 0)
		tc.ch = append(tc.ch, 0)
		tc.cellPrefix = append(tc.cellPrefix, nil)
	}
	for i := nl; i < len(tc.tiles); i++ {
		tc.tiles[i].Invalidate()
		tc.resp[i] = tc.resp[i][:0]
		tc.qgrids[i] = tc.qgrids[i][:0]
		tc.qresp[i] = tc.qresp[i][:0]
	}
	for i := 0; i < nl; i++ {
		tc.mode[i] = tcFull
	}
	tc.frame = TemporalStats{}
	tc.frame.Frames = 1
	tc.stats.Frames++
}

// observe fingerprints level i and derives its refresh mode. For
// tcPartial the cell mask (with its one-cell halo) is left in
// tc.cellMask[:cw*ch] for the feature refresh, and its integral image
// in tc.cellPrefix[i] for the stage-3 window reuse checks (the shared
// cell mask is overwritten by the next level's observe).
func (tc *TemporalCache) observe(i int, level *img.Gray, c hog.Config) int {
	mode := tc.observeTiles(i, level, c)
	tc.mode[i] = mode
	if mode == tcPartial {
		cw, ch := c.CellsFor(level.W, level.H)
		tc.cw[i], tc.ch[i] = cw, ch
		pre := growI32(tc.cellPrefix[i], (cw+1)*(ch+1))
		tc.cellPrefix[i] = pre
		for x := 0; x <= cw; x++ {
			pre[x] = 0
		}
		for y := 0; y < ch; y++ {
			rowSum := int32(0)
			src := tc.cellMask[y*cw : (y+1)*cw]
			dst := pre[(y+1)*(cw+1):]
			prev := pre[y*(cw+1):]
			dst[0] = 0
			for x := 0; x < cw; x++ {
				if src[x] {
					rowSum++
				}
				dst[x+1] = prev[x+1] + rowSum
			}
		}
	}
	return mode
}

// cellRectClean reports whether the half-open cell rectangle
// [cx0,cx1) x [cy0,cy1) of a tcPartial level contains no dirty cell
// this frame, clamped to the full-cell grid. A rectangle entirely off
// the grid answers false: no flag covers it, so callers must rescore.
// Ragged-edge pixels beyond the last full cell are safe to clamp away
// because hog.TileMap.DirtyCellMask clamps their tiles onto the last
// cell row/column, which a window reaching the ragged edge always
// overlaps.
//
// lint:hotpath
func (tc *TemporalCache) cellRectClean(level, cx0, cy0, cx1, cy1 int) bool {
	cw, ch := tc.cw[level], tc.ch[level]
	if cx1 > cw {
		cx1 = cw
	}
	if cy1 > ch {
		cy1 = ch
	}
	if cx0 >= cx1 || cy0 >= cy1 {
		return false
	}
	p := tc.cellPrefix[level]
	w := cw + 1
	return p[cy1*w+cx1]-p[cy1*w+cx0]-p[cy0*w+cx1]+p[cy0*w+cx0] == 0
}

// observeTiles runs the tile fingerprint pass behind observe.
func (tc *TemporalCache) observeTiles(i int, level *img.Gray, c hog.Config) int {
	if !c.AlignedTile(tc.tile) {
		// Tiles off the cell lattice would make the tile-to-cell
		// dilation unsound; hash nothing and scan cold.
		return tcFull
	}
	misses, refreshes, total := tc.tiles[i].Update(level)
	tc.frame.Hits += total - misses - refreshes
	tc.frame.Misses += misses
	tc.frame.Refreshes += refreshes
	tc.stats.Hits += total - misses - refreshes
	tc.stats.Misses += misses
	tc.stats.Refreshes += refreshes
	dirty := misses + refreshes
	switch {
	case dirty == 0:
		return tcClean
	case dirty == total || !c.SupportsDirtyRefresh():
		return tcFull
	}
	cw, ch := c.CellsFor(level.W, level.H)
	if cw == 0 || ch == 0 {
		return tcFull
	}
	tc.cellMask = growBool(tc.cellMask, cw*ch)
	tc.tiles[i].DirtyCellMask(c, cw, ch, tc.cellMask)
	return tcPartial
}

// dirtyBlocks dilates the current cell mask to the level's block mask,
// left in tc.blockMask[:nbx*nby]; returns the dirty-block count.
func (tc *TemporalCache) dirtyBlocks(c hog.Config, cw, ch, nbx, nby int) int {
	tc.blockMask = growBool(tc.blockMask, nbx*nby)
	return hog.DilateCellsToBlocks(c, tc.cellMask[:cw*ch], cw, nbx, nby, tc.blockMask[:nbx*nby])
}

// dirtyAnchors dilates the current block mask to the lattice's anchor
// mask, left in tc.anchMask[:NAX*NAY]: an anchor is dirty when the
// block rectangle its window spans contains any dirty block (a
// conservative rectangle for strided block layouts). Answered with an
// integral image over the block mask so the pass is linear in anchors.
func (tc *TemporalCache) dirtyAnchors(lat svm.Lattice, bw, bh int) int {
	nbx, nby := lat.NBX, lat.NBY
	tc.prefix = growI32(tc.prefix, (nbx+1)*(nby+1))
	p := tc.prefix[:(nbx+1)*(nby+1)]
	for x := 0; x <= nbx; x++ {
		p[x] = 0
	}
	for y := 0; y < nby; y++ {
		rowSum := int32(0)
		src := tc.blockMask[y*nbx : (y+1)*nbx]
		dst := p[(y+1)*(nbx+1):]
		prev := p[y*(nbx+1):]
		dst[0] = 0
		for x := 0; x < nbx; x++ {
			if src[x] {
				rowSum++
			}
			dst[x+1] = prev[x+1] + rowSum
		}
	}
	spanX := (bw-1)*lat.BlockStride + 1
	spanY := (bh-1)*lat.BlockStride + 1
	tc.anchMask = growBool(tc.anchMask, lat.NAX*lat.NAY)
	n := 0
	for ay := 0; ay < lat.NAY; ay++ {
		y0 := ay * lat.StepY
		y1 := y0 + spanY
		row := tc.anchMask[ay*lat.NAX : (ay+1)*lat.NAX]
		top := p[y0*(nbx+1):]
		bot := p[y1*(nbx+1):]
		for ax := 0; ax < lat.NAX; ax++ {
			x0 := ax * lat.StepX
			x1 := x0 + spanX
			d := bot[x1]-bot[x0]-top[x1]+top[x0] > 0
			row[ax] = d
			if d {
				n++
			}
		}
	}
	return n
}

// rowServable reports whether one window row's cached detections are
// bitwise current. The row is servable when its level is wholly clean,
// or when none of the cell rows its windows read is dirty this frame —
// the larger of the block span (block row b reads cell rows [b,
// b+BlockCells)) and the raw pixel span (descriptor fallback and haar
// prefilter both read window pixels, whose dirt the tile-to-cell halo
// maps onto the covering cell rows). Row granularity is conservative —
// the whole cell-row band must be clean, not just the window's columns
// — an O(1) prefix query; stage 3 falls back to per-window queries
// when the band is dirty but individual windows sit clear of it.
//
// lint:hotpath
func (tc *TemporalCache) rowServable(c hog.Config, level, y, winH int, blockPath bool, bh int) bool {
	switch tc.mode[level] {
	case tcClean:
		return true
	case tcPartial:
		cy0 := y / c.CellSize
		cy1 := (y + winH + c.CellSize - 1) / c.CellSize
		if blockPath {
			if b := cy0 + (bh-1)*c.BlockStride + c.BlockCells; b > cy1 {
				cy1 = b
			}
		}
		return tc.cellRectClean(level, 0, cy0, tc.cw[level], cy1)
	default:
		return false
	}
}

// storeRows retains stage 3's per-row output for the next frame's
// reuse. Only the slice headers are copied out of the pooled results
// arena; the backing arrays are freshly appended by each scan, never
// pooled, so holding them across frames is safe.
func (tc *TemporalCache) storeRows(results [][]Detection) {
	if cap(tc.rowDets) < len(results) {
		tc.rowDets = make([][]Detection, len(results)) // lint:alloc sized once per signature
	}
	tc.rowDets = tc.rowDets[:len(results)]
	copy(tc.rowDets, results)
	tc.rowsValid = true
}

// requantDirtyBlocks requantizes only the dirty blocks' Q1.14 spans
// in place. QuantizeQ14 is elementwise, so the per-block pass is
// bitwise identical to requantizing the whole plane.
//
// lint:hotpath
func requantDirtyBlocks(q []int16, data []float64, blockLen int, dirty []bool) {
	for b, d := range dirty {
		if !d {
			continue
		}
		off := b * blockLen
		fixed.QuantizeQ14(q[off:off+blockLen:off+blockLen], data[off:off+blockLen])
	}
}

// growBool returns buf resized to n entries, reusing its backing
// array when possible. Contents are unspecified; callers overwrite.
func growBool(buf []bool, n int) []bool {
	if cap(buf) < n {
		return make([]bool, n) // lint:alloc grows once to the largest level, then reused across frames
	}
	return buf[:n]
}
