package pipeline

import (
	"testing"

	"advdet/internal/eval"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

func trainAnimal(t *testing.T, seed uint64) *AnimalDetector {
	t.Helper()
	ds := synth.AnimalDataset(seed, AnimalWindowW, AnimalWindowH, 60, 60, synth.Day)
	m, err := TrainAnimalSVM(ds, hog.DefaultConfig(), svm.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return NewAnimalDetector(m)
}

func TestAnimalClassifyCrops(t *testing.T) {
	det := trainAnimal(t, 1)
	test := synth.AnimalDataset(2, AnimalWindowW, AnimalWindowH, 40, 40, synth.Day)
	c := eval.EvaluateCrops(det.ClassifyCrop, test.Pos, test.Neg)
	if c.Accuracy() < 0.85 {
		t.Fatalf("animal accuracy %v: %v", c.Accuracy(), c)
	}
}

func TestAnimalRejectsVehicles(t *testing.T) {
	// Cars are not animals: the animal model must reject most vehicle
	// crops.
	det := trainAnimal(t, 3)
	fp := 0
	for s := uint64(0); s < 20; s++ {
		crop := img.RGBToGray(synth.VehicleCrop(synth.NewRNG(400+s), 64, 64, synth.Day))
		if det.ClassifyCrop(crop) {
			fp++
		}
	}
	if fp > 6 {
		t.Fatalf("animal model fired on %d/20 vehicles", fp)
	}
}

func TestAnimalDetectInFrame(t *testing.T) {
	det := trainAnimal(t, 5)
	frame := img.NewGray(192, 96)
	frame.Fill(110)
	crop := img.RGBToGray(synth.AnimalCrop(synth.NewRNG(6), AnimalWindowW, AnimalWindowH, synth.Day))
	gt := img.Rect{X0: 64, Y0: 32, X1: 64 + AnimalWindowW, Y1: 32 + AnimalWindowH}
	for y := 0; y < crop.H; y++ {
		for x := 0; x < crop.W; x++ {
			frame.Set(gt.X0+x, gt.Y0+y, crop.At(x, y))
		}
	}
	dets := det.Detect(frame)
	hit := false
	for _, d := range dets {
		if d.Kind != KindAnimal {
			t.Fatalf("detection kind %v", d.Kind)
		}
		if d.Box.IoU(gt) > 0.3 {
			hit = true
		}
	}
	if !hit {
		t.Fatalf("animal not localized among %d detections", len(dets))
	}
}

func TestKindAnimalString(t *testing.T) {
	if KindAnimal.String() != "animal" {
		t.Fatal("KindAnimal string wrong")
	}
}

func TestAnimalCropDeterministicAndSized(t *testing.T) {
	a := synth.AnimalCrop(synth.NewRNG(7), 64, 32, synth.Day)
	b := synth.AnimalCrop(synth.NewRNG(7), 64, 32, synth.Day)
	for i := range a.Pix {
		if a.Pix[i] != b.Pix[i] {
			t.Fatal("AnimalCrop not deterministic")
		}
	}
	if a.W != 64 || a.H != 32 {
		t.Fatal("wrong crop size")
	}
}
