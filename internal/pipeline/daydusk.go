package pipeline

import (
	"context"
	"fmt"

	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// VehicleWindow is the classification window side for the day/dusk
// vehicle detector (rear views are roughly square).
const VehicleWindow = 64

// DayDuskDetector is the HOG+SVM pipeline of Fig. 2. The same
// hardware is instantiated for day and dusk; only the BRAM-resident
// model differs, which is why the two form a single reconfigurable
// configuration in the paper.
type DayDuskDetector struct {
	HOG    hog.Config
	Model  *svm.Model
	Stride int     // window step in pixels at each pyramid level
	Scale  float64 // pyramid downscale per level
	Thresh float64 // margin threshold for single-crop classification
	// DetectThresh is the (stricter) margin threshold for full-frame
	// scanning, where the detector sees thousands of windows per frame
	// and near-boundary responses would flood the output with false
	// positives.
	DetectThresh float64
	NMSIoU       float64
	// NoBlockResponse disables the block-response scoring engine and
	// scores every window through its full descriptor. Benchmarks and
	// equivalence tests use it; production leaves it false.
	NoBlockResponse bool
	// NoEarlyReject disables the partial-margin early exit and scores
	// every window through the full precomputed response plane.
	NoEarlyReject bool
	// Quantized scores windows in the fixed-point datapath with float
	// fallback for borderline margins (same box set, scores within the
	// quantizer's analytic error bound).
	Quantized bool
	// Prefilter, when non-nil and trained at the vehicle window
	// geometry, integral-image-rejects scan windows before HOG scoring.
	Prefilter *haar.Cascade
	// Temporal, when non-nil, reuses the feature/block/response stack
	// across consecutive frames, recomputing only what each frame's
	// dirty tiles invalidate (see NewTemporalCache). Byte-identical
	// output; a cache binds this detector to one frame sequence and
	// must not be shared across detectors or concurrent scans.
	Temporal *TemporalCache
}

// NewDayDuskDetector wraps a trained model with default scan settings.
func NewDayDuskDetector(m *svm.Model) *DayDuskDetector {
	return &DayDuskDetector{
		HOG:          hog.DefaultConfig(),
		Model:        m,
		Stride:       16,
		Scale:        1.25,
		Thresh:       0,
		DetectThresh: 0.5,
		NMSIoU:       0.3,
	}
}

// ClassifyCrop runs the single-window classification used in the
// Table I evaluation: the crop is resized to the canonical window and
// scored against the model.
func (d *DayDuskDetector) ClassifyCrop(g *img.Gray) bool {
	return d.MarginCrop(g) > d.Thresh
}

// MarginCrop returns the SVM margin of a crop.
func (d *DayDuskDetector) MarginCrop(g *img.Gray) float64 {
	if g.W != VehicleWindow || g.H != VehicleWindow {
		g = img.ResizeGray(g, VehicleWindow, VehicleWindow)
	}
	return d.Model.Margin(d.HOG.Extract(g))
}

// Detect scans the full frame at multiple scales and returns
// NMS-filtered vehicle detections. It runs on the calling goroutine
// without cancellation; see DetectCtx for the parallel engine.
func (d *DayDuskDetector) Detect(g *img.Gray) []Detection {
	dets, _ := d.DetectCtx(context.Background(), g, 1) // lint:ctxroot serial wrapper; background ctx cannot fail
	return dets
}

// DetectCtx is Detect with cancellation and a bounded worker pool:
// the per-frame HOG feature cache is computed once per pyramid level
// and window rows are fanned out across workers goroutines
// (workers <= 0 means NumCPU). Output is identical for every worker
// count. On cancellation it returns the context's error wrapped.
func (d *DayDuskDetector) DetectCtx(ctx context.Context, g *img.Gray, workers int) ([]Detection, error) {
	return d.DetectTimedCtx(ctx, g, workers, nil)
}

// DetectTimedCtx is DetectCtx with per-stage wall-clock attribution;
// tm may be nil and is written only on success.
func (d *DayDuskDetector) DetectTimedCtx(ctx context.Context, g *img.Gray, workers int, tm *ScanTimings) ([]Detection, error) {
	scan := hogScan{
		Cfg: d.HOG, Model: d.Model,
		WinW: VehicleWindow, WinH: VehicleWindow,
		Stride: d.Stride, Scale: d.Scale, Thresh: d.DetectThresh,
		Kind: KindVehicle, NoBlockResponse: d.NoBlockResponse,
		NoEarlyReject: d.NoEarlyReject, Quantized: d.Quantized,
		Prefilter: d.Prefilter, Temporal: d.Temporal,
	}
	dets, err := scan.runTimed(ctx, g, workers, tm)
	if err != nil {
		return nil, fmt.Errorf("pipeline: day-dusk detect: %w", err)
	}
	return NMS(dets, d.NMSIoU), nil
}

// FeatureExtractor turns a fixed-size grayscale window into a feature
// vector. hog.Config and hog.PIHOG both satisfy it, so the pipeline
// can be trained with either feature (the PIHOG comparison of the
// related work is a benchmark in this repo).
type FeatureExtractor interface {
	Extract(*img.Gray) []float64
}

// TrainCropSVM trains a linear SVM over the dataset with an arbitrary
// feature extractor at the given window geometry.
func TrainCropSVM(ds *synth.Dataset, fx FeatureExtractor, winW, winH int, opts svm.Options) (*svm.Model, error) {
	var p svm.Problem
	add := func(crops []*img.Gray, label float64) {
		for _, g := range crops {
			crop := g
			if crop.W != winW || crop.H != winH {
				crop = img.ResizeGray(crop, winW, winH)
			}
			p.X = append(p.X, fx.Extract(crop))
			p.Y = append(p.Y, label)
		}
	}
	add(ds.Pos, 1)
	add(ds.Neg, -1)
	m, err := svm.Train(p, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: train crop SVM: %w", err)
	}
	return m, nil
}

// TrainVehicleSVM extracts HOG descriptors from every crop of the
// dataset and trains a linear SVM — the Fig. 1 training flow
// (HOG feature extraction + LibLINEAR).
func TrainVehicleSVM(ds *synth.Dataset, cfg hog.Config, opts svm.Options) (*svm.Model, error) {
	var p svm.Problem
	for _, g := range ds.Pos {
		crop := g
		if crop.W != VehicleWindow || crop.H != VehicleWindow {
			crop = img.ResizeGray(crop, VehicleWindow, VehicleWindow)
		}
		p.X = append(p.X, cfg.Extract(crop))
		p.Y = append(p.Y, 1)
	}
	for _, g := range ds.Neg {
		crop := g
		if crop.W != VehicleWindow || crop.H != VehicleWindow {
			crop = img.ResizeGray(crop, VehicleWindow, VehicleWindow)
		}
		p.X = append(p.X, cfg.Extract(crop))
		p.Y = append(p.Y, -1)
	}
	m, err := svm.Train(p, opts)
	if err != nil {
		return nil, fmt.Errorf("pipeline: train vehicle SVM: %w", err)
	}
	return m, nil
}

// CombineDatasets merges two crop datasets (the paper's "combined"
// model is trained on the union of UPM and SYSU training data).
func CombineDatasets(name string, a, b *synth.Dataset) *synth.Dataset {
	out := &synth.Dataset{Name: name, W: a.W, H: a.H}
	out.Pos = append(append([]*img.Gray{}, a.Pos...), b.Pos...)
	out.Neg = append(append([]*img.Gray{}, a.Neg...), b.Neg...)
	out.VeryDark = append(append([]bool{}, a.VeryDark...), b.VeryDark...)
	for len(out.VeryDark) < len(out.Pos) {
		out.VeryDark = append(out.VeryDark, false)
	}
	return out
}
