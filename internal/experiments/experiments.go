// Package experiments regenerates every quantitative result of the
// paper — Table I, Table II, the §IV-A reconfiguration throughputs,
// the §IV-B reconfiguration latency and the §V frame rate — from the
// library's components. It is shared by cmd/benchrepro and the
// benchmark harness so both report identical rows.
package experiments

import (
	"fmt"
	"io"

	"advdet/internal/adaptive"
	"advdet/internal/dbn"
	"advdet/internal/eval"
	"advdet/internal/fixed"
	"advdet/internal/fpga"
	"advdet/internal/haar"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/pipeline"
	"advdet/internal/pr"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
	"advdet/internal/track"
)

// TableIRow is one (model, test) cell group of Table I.
type TableIRow struct {
	Model string // "day", "dusk", "combined"
	Test  string // "day", "dusk", "dusk-subset"
	Got   eval.Confusion
	Paper eval.Confusion
}

// PaperTableI holds the published confusion counts.
var PaperTableI = map[[2]string]eval.Confusion{
	{"day", "day"}:              {TP: 195, TN: 21, FP: 4, FN: 5},
	{"day", "dusk"}:             {TP: 659, TN: 680, FP: 72, FN: 404},
	{"day", "dusk-subset"}:      {TP: 650, TN: 680, FP: 72, FN: 313},
	{"dusk", "day"}:             {TP: 23, TN: 24, FP: 1, FN: 177},
	{"dusk", "dusk"}:            {TP: 744, TN: 751, FP: 1, FN: 319},
	{"dusk", "dusk-subset"}:     {TP: 739, TN: 751, FP: 1, FN: 224},
	{"combined", "day"}:         {TP: 185, TN: 21, FP: 4, FN: 15},
	{"combined", "dusk"}:        {TP: 809, TN: 740, FP: 12, FN: 254},
	{"combined", "dusk-subset"}: {TP: 805, TN: 740, FP: 12, FN: 158},
}

// TableIOptions sizes the Table I reproduction.
type TableIOptions struct {
	Seed   uint64
	TrainN int // training crops per class per dataset
	// PaperCounts uses the paper's exact test-set sizes (200/25 day,
	// 1063/752 dusk); when false, a reduced 1/4-size test set is used.
	PaperCounts bool
}

// DefaultTableIOptions reproduces the full-size Table I.
func DefaultTableIOptions() TableIOptions {
	return TableIOptions{Seed: 11, TrainN: 300, PaperCounts: true}
}

// TableI trains the day, dusk and combined models and evaluates all
// three on the day test set, the dusk test set and the dusk subset
// without very dark images, mirroring the paper's table layout.
func TableI(o TableIOptions) ([]TableIRow, error) {
	hogCfg := hog.DefaultConfig()
	svmOpts := svm.DefaultOptions()

	dayTrain := synth.DayDataset(o.Seed, 64, 64, o.TrainN, o.TrainN)
	duskTrain := synth.DuskDataset(o.Seed+1, 64, 64, o.TrainN, o.TrainN, 0)
	combTrain := pipeline.CombineDatasets("combined", dayTrain, duskTrain)

	models := []struct {
		name string
		ds   *synth.Dataset
	}{
		{"day", dayTrain},
		{"dusk", duskTrain},
		{"combined", combTrain},
	}

	var dayTest, duskTest *synth.Dataset
	if o.PaperCounts {
		dayTest = synth.TableIDayTest(o.Seed+2, 64, 64)
		duskTest = synth.TableIDuskTest(o.Seed+3, 64, 64)
	} else {
		dayTest = synth.DayDataset(o.Seed+2, 64, 64, 50, 12)
		duskTest = synth.DuskDataset(o.Seed+3, 64, 64, 266, 188, 0.094)
	}
	subTest := duskTest.SubsetWithoutVeryDark()

	var rows []TableIRow
	for _, m := range models {
		model, err := pipeline.TrainVehicleSVM(m.ds, hogCfg, svmOpts)
		if err != nil {
			return nil, fmt.Errorf("experiments: table I %s model: %w", m.name, err)
		}
		det := pipeline.NewDayDuskDetector(model)
		for _, tc := range []struct {
			name string
			ds   *synth.Dataset
		}{
			{"day", dayTest}, {"dusk", duskTest}, {"dusk-subset", subTest},
		} {
			c := eval.EvaluateCrops(det.ClassifyCrop, tc.ds.Pos, tc.ds.Neg)
			rows = append(rows, TableIRow{
				Model: m.name,
				Test:  tc.name,
				Got:   c,
				Paper: PaperTableI[[2]string{m.name, tc.name}],
			})
		}
	}
	return rows, nil
}

// WriteTableI prints the reproduction next to the paper's numbers.
func WriteTableI(w io.Writer, rows []TableIRow) {
	fmt.Fprintln(w, "Table I — detection accuracy by SVM model and test scenario")
	fmt.Fprintf(w, "  %-9s %-12s | %-34s | %s\n", "model", "test", "measured", "paper")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-9s %-12s | %-34s | %s\n", r.Model, r.Test, r.Got, r.Paper)
	}
}

// TableIShapeErrors verifies the qualitative claims of Table I on the
// measured rows and returns a description of each violation.
func TableIShapeErrors(rows []TableIRow) []string {
	acc := map[[2]string]eval.Confusion{}
	for _, r := range rows {
		acc[[2]string{r.Model, r.Test}] = r.Got
	}
	var errs []string
	check := func(ok bool, msg string) {
		if !ok {
			errs = append(errs, msg)
		}
	}
	check(acc[[2]string{"day", "day"}].Accuracy() > acc[[2]string{"dusk", "day"}].Accuracy(),
		"day model should beat dusk model on day test")
	check(acc[[2]string{"day", "day"}].Accuracy() > acc[[2]string{"combined", "day"}].Accuracy()-0.02,
		"day model should (about) match or beat combined on day test")
	dayOnDusk := acc[[2]string{"day", "dusk"}]
	duskOnDusk := acc[[2]string{"dusk", "dusk"}]
	combOnDusk := acc[[2]string{"combined", "dusk"}]
	check(duskOnDusk.Accuracy() > dayOnDusk.Accuracy(), "dusk model should beat day model on dusk test")
	check(combOnDusk.Accuracy() > duskOnDusk.Accuracy()-0.05, "combined should be competitive on dusk test")
	duskOnDay := acc[[2]string{"dusk", "day"}]
	check(duskOnDay.FN > duskOnDay.TP, "dusk model should miss most day positives")
	for _, m := range []string{"day", "dusk", "combined"} {
		full := acc[[2]string{m, "dusk"}]
		sub := acc[[2]string{m, "dusk-subset"}]
		check(sub.Accuracy() >= full.Accuracy(),
			m+" model: excluding very dark images should not reduce accuracy")
	}
	return errs
}

// TableIIRows returns the measured and published Table II.
func TableIIRows() (got, paper []fpga.UtilRow) {
	return fpga.TableII(), fpga.PaperTableII
}

// WriteTableII prints resource utilization vs the paper.
func WriteTableII(w io.Writer) {
	got, paper := TableIIRows()
	fmt.Fprintln(w, "Table II — resource utilization (% LUT / FF / BRAM / DSP)")
	fmt.Fprintf(w, "  %-26s | %-28s | %s\n", "design", "measured", "paper")
	for i, r := range got {
		fmt.Fprintf(w, "  %-26s | %5.1f %5.1f %5.1f %5.1f      | %3.0f %3.0f %3.0f %3.0f\n",
			r.Name, r.Util[0], r.Util[1], r.Util[2], r.Util[3],
			paper[i].Util[0], paper[i].Util[1], paper[i].Util[2], paper[i].Util[3])
	}
}

// PaperThroughputs are the §IV-A reference numbers in MB/s.
var PaperThroughputs = map[string]float64{
	"axi-hwicap": 19,
	"pcap":       145,
	"zycap":      382,
	"dma-icap":   390,
}

// ReconfigComparison measures all controllers on one partial
// bitstream, averaging each over repeats runs (the model is
// deterministic, so repeats > 1 is a stability check, not a
// variance-reduction need).
func ReconfigComparison(repeats int) ([]pr.Result, error) {
	bytes := fpga.DefaultFloorplan().PartialBitstreamBytes()
	var out []pr.Result
	for _, ctrl := range pr.All() {
		res, err := pr.MeasureN(ctrl, bytes, repeats)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// WriteReconfig prints the §IV-A comparison.
func WriteReconfig(w io.Writer, results []pr.Result) {
	fmt.Fprintln(w, "§IV-A — reconfiguration throughput (8 MB partial bitstream)")
	fmt.Fprintf(w, "  %-12s %12s %10s | %8s\n", "controller", "measured MB/s", "time ms", "paper")
	var pcap, ours float64
	for _, r := range results {
		fmt.Fprintf(w, "  %-12s %13.1f %10.2f | %8.0f\n",
			r.Controller, r.MBPerSec, soc.Seconds(r.PS)*1e3, PaperThroughputs[r.Controller])
		switch r.Controller {
		case "pcap":
			pcap = r.MBPerSec
		case "dma-icap":
			ours = r.MBPerSec
		}
	}
	if pcap > 0 {
		fmt.Fprintf(w, "  speedup dma-icap/pcap: %.2fx (paper: >2.6x)\n", ours/pcap)
	}
}

// DarkAccuracy evaluates the trained dark pipeline on a very dark crop
// set (§III-B reports 95%% on the SYSU subset).
func DarkAccuracy(seed uint64, n int) (eval.Confusion, error) {
	cfg := pipeline.DefaultDarkConfig()
	cfg.Downsample = 1 // crops are already at the pipeline's working scale
	dbnCfg := dbn.DefaultConfig()
	det, err := pipeline.TrainDarkDetector(seed, cfg, dbnCfg, 200)
	if err != nil {
		return eval.Confusion{}, err
	}
	ds := synth.NewDarkDataset(seed+1, 96, 96, n, n)
	var c eval.Confusion
	for _, p := range ds.Pos {
		c.Record(true, det.ClassifyCrop(p))
	}
	for _, neg := range ds.Neg {
		c.Record(false, det.ClassifyCrop(neg))
	}
	return c, nil
}

// FrameRate reports the modeled pipeline frame rate at 1080p (§V
// claims 50 fps at 125 MHz).
func FrameRate() float64 {
	return soc.NewDetectionPipeline("vehicle").FPS(1920, 1080)
}

// BaselineDark compares the paper's DBN dark pipeline against a
// VeDANt-style AdaBoost+Haar baseline (related work [11]) on the same
// very dark crop set. The paper's argument is that its learned
// two-stage pipeline beats simpler nighttime classifiers; this makes
// that comparison concrete.
func BaselineDark(seed uint64, n int) (dbnAcc, haarAcc eval.Confusion, err error) {
	cfg := pipeline.DefaultDarkConfig()
	cfg.Downsample = 1
	dbnCfg := dbn.DefaultConfig()
	dbnCfg.PretrainOpts.Epochs = 5
	det, err := pipeline.TrainDarkDetector(seed, cfg, dbnCfg, 150)
	if err != nil {
		return dbnAcc, haarAcc, err
	}

	// Train the Haar baseline on gray versions of dark crops.
	trainDS := synth.NewDarkDataset(seed+1, 64, 64, 80, 80)
	var pos, neg []*img.Gray
	for _, p := range trainDS.Pos {
		pos = append(pos, img.RGBToGray(p))
	}
	for _, m := range trainDS.Neg {
		neg = append(neg, img.RGBToGray(m))
	}
	hOpts := haar.DefaultTrainOptions()
	hOpts.Rounds = 40
	hc, err := haar.Train(pos, neg, hOpts)
	if err != nil {
		return dbnAcc, haarAcc, err
	}

	testDS := synth.NewDarkDataset(seed+2, 96, 96, n, n)
	for _, p := range testDS.Pos {
		dbnAcc.Record(true, det.ClassifyCrop(p))
		haarAcc.Record(true, hc.Classify(img.RGBToGray(p)))
	}
	for _, m := range testDS.Neg {
		dbnAcc.Record(false, det.ClassifyCrop(m))
		haarAcc.Record(false, hc.Classify(img.RGBToGray(m)))
	}
	return dbnAcc, haarAcc, nil
}

// FeatureComparison trains HOG and PIHOG vehicle models on the same
// dusk data and evaluates both: PIHOG's intensity/position channels
// (Kim et al., related work [8]) are most useful exactly where the
// paper operates — low light, where absolute lamp brightness carries
// signal plain HOG normalizes away.
func FeatureComparison(seed uint64, trainN, testN int) (hogAcc, pihogAcc eval.Confusion, err error) {
	train := synth.DuskDataset(seed, 64, 64, trainN, trainN, 0)
	test := synth.DuskDataset(seed+1, 64, 64, testN, testN, 0)

	opts := svm.DefaultOptions()
	hogCfg := hog.DefaultConfig()
	hm, err := pipeline.TrainCropSVM(train, hogCfg, 64, 64, opts)
	if err != nil {
		return hogAcc, pihogAcc, err
	}
	pCfg := hog.DefaultPIHOG()
	pm, err := pipeline.TrainCropSVM(train, pCfg, 64, 64, opts)
	if err != nil {
		return hogAcc, pihogAcc, err
	}

	classify := func(m *svm.Model, fx pipeline.FeatureExtractor, g *img.Gray) bool {
		if g.W != 64 || g.H != 64 {
			g = img.ResizeGray(g, 64, 64)
		}
		return m.Margin(fx.Extract(g)) > 0
	}
	for _, p := range test.Pos {
		hogAcc.Record(true, classify(hm, hogCfg, p))
		pihogAcc.Record(true, classify(pm, pCfg, p))
	}
	for _, n := range test.Neg {
		hogAcc.Record(false, classify(hm, hogCfg, n))
		pihogAcc.Record(false, classify(pm, pCfg, n))
	}
	return hogAcc, pihogAcc, nil
}

// AdaptiveVsFixedRow is scene-level vehicle recall for one strategy
// over the mixed drive.
type AdaptiveVsFixedRow struct {
	Strategy                 string
	Day, Dusk, Dark, Overall float64 // recall per condition segment
}

// AdaptiveVsFixed runs the paper's headline comparison at system
// level: vehicle recall on a drive spanning all three conditions,
// with (a) the adaptive system and (b) each single pipeline used for
// the whole drive. The adaptive system should be near the best fixed
// strategy in every segment, while each fixed strategy collapses
// somewhere.
func AdaptiveVsFixed(seed uint64, framesPerCond int) ([]AdaptiveVsFixedRow, error) {
	// Train one detector bundle.
	hogCfg := hog.DefaultConfig()
	opts := svm.DefaultOptions()
	dayModel, err := pipeline.TrainVehicleSVM(synth.DayDataset(seed, 64, 64, 80, 80), hogCfg, opts)
	if err != nil {
		return nil, err
	}
	duskModel, err := pipeline.TrainVehicleSVM(synth.DuskDataset(seed+1, 64, 64, 80, 80, 0), hogCfg, opts)
	if err != nil {
		return nil, err
	}
	darkCfg := pipeline.DefaultDarkConfig()
	dbnCfg := dbn.DefaultConfig()
	dbnCfg.PretrainOpts.Epochs = 4
	dbnCfg.FineTuneIter = 30
	darkDet, err := pipeline.TrainDarkDetector(seed+2, darkCfg, dbnCfg, 120)
	if err != nil {
		return nil, err
	}
	dayDet := pipeline.NewDayDuskDetector(dayModel)
	duskDet := pipeline.NewDayDuskDetector(duskModel)

	conds := []synth.Condition{synth.Day, synth.Dusk, synth.Dark}
	type strategy struct {
		name   string
		detect func(sc *synth.Scene, cond synth.Condition) []pipeline.Detection
	}
	strategies := []strategy{
		{"adaptive", func(sc *synth.Scene, cond synth.Condition) []pipeline.Detection {
			switch cond {
			case synth.Day:
				return dayDet.Detect(img.RGBToGray(sc.Frame))
			case synth.Dusk:
				return duskDet.Detect(img.RGBToGray(sc.Frame))
			default:
				return darkDet.Detect(sc.Frame)
			}
		}},
		{"day-only", func(sc *synth.Scene, _ synth.Condition) []pipeline.Detection {
			return dayDet.Detect(img.RGBToGray(sc.Frame))
		}},
		{"dusk-only", func(sc *synth.Scene, _ synth.Condition) []pipeline.Detection {
			return duskDet.Detect(img.RGBToGray(sc.Frame))
		}},
		{"dark-only", func(sc *synth.Scene, _ synth.Condition) []pipeline.Detection {
			return darkDet.Detect(sc.Frame)
		}},
	}

	var rows []AdaptiveVsFixedRow
	for _, st := range strategies {
		row := AdaptiveVsFixedRow{Strategy: st.name}
		totalHit, totalGT := 0, 0
		for ci, cond := range conds {
			drive := synth.NewDrive(seed+10+uint64(ci), 640, 360, cond, 2, 0)
			hit, gt := 0, 0
			for f := 0; f < framesPerCond; f++ {
				sc := drive.Frame(f * 3)
				dets := st.detect(sc, cond)
				for _, t := range sc.Vehicles {
					gt++
					for _, d := range dets {
						if d.Box.IoU(t) > 0.1 {
							hit++
							break
						}
					}
				}
			}
			recall := 0.0
			if gt > 0 {
				recall = float64(hit) / float64(gt)
			}
			switch cond {
			case synth.Day:
				row.Day = recall
			case synth.Dusk:
				row.Dusk = recall
			default:
				row.Dark = recall
			}
			totalHit += hit
			totalGT += gt
		}
		if totalGT > 0 {
			row.Overall = float64(totalHit) / float64(totalGT)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// WriteAdaptiveVsFixed prints the comparison.
func WriteAdaptiveVsFixed(w io.Writer, rows []AdaptiveVsFixedRow) {
	fmt.Fprintln(w, "system-level vehicle recall by strategy (drive spans day/dusk/dark):")
	fmt.Fprintf(w, "  %-10s %6s %6s %6s | %s\n", "strategy", "day", "dusk", "dark", "overall")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-10s %5.0f%% %5.0f%% %5.0f%% | %5.0f%%\n",
			r.Strategy, 100*r.Day, 100*r.Dusk, 100*r.Dark, 100*r.Overall)
	}
}

// QuantizationResult compares the float reference datapath with the
// Q16.16 fixed-point datapath the PL actually computes in.
type QuantizationResult struct {
	FloatAcc     eval.Confusion
	FixedAcc     eval.Confusion
	MaxMarginErr float64 // worst |float margin - fixed margin|
	Disagreement int     // crops where the two datapaths decide differently
}

// QuantizationLoss trains a dusk vehicle model, then classifies a test
// set twice: with float64 arithmetic and with the Q16.16 dot product
// and quantized weights of the hardware SVM stage. The paper's
// hardware matches its software model because this loss is negligible;
// the experiment verifies that premise holds for these datapaths.
func QuantizationLoss(seed uint64, trainN, testN int) (QuantizationResult, error) {
	var res QuantizationResult
	train := synth.DuskDataset(seed, 64, 64, trainN, trainN, 0)
	test := synth.DuskDataset(seed+1, 64, 64, testN, testN, 0)
	hogCfg := hog.DefaultConfig()
	m, err := pipeline.TrainVehicleSVM(train, hogCfg, svm.DefaultOptions())
	if err != nil {
		return res, err
	}
	wq := fixed.QuantizeVec(m.W)
	bq := fixed.FromFloat(m.Bias)

	classify := func(g *img.Gray) (floatPos, fixedPos bool, err64 float64) {
		if g.W != 64 || g.H != 64 {
			g = img.ResizeGray(g, 64, 64)
		}
		feat := hogCfg.Extract(g)
		fm := m.Margin(feat)
		qm := fixed.Dot(fixed.QuantizeVec(feat), wq).Add(bq).Float()
		return fm > 0, qm > 0, fm - qm
	}
	record := func(crops []*img.Gray, truth bool) {
		for _, g := range crops {
			fp, qp, e := classify(g)
			res.FloatAcc.Record(truth, fp)
			res.FixedAcc.Record(truth, qp)
			if e < 0 {
				e = -e
			}
			if e > res.MaxMarginErr {
				res.MaxMarginErr = e
			}
			if fp != qp {
				res.Disagreement++
			}
		}
	}
	record(test.Pos, true)
	record(test.Neg, false)
	return res, nil
}

// SweepPoint is one point of a parameter-sensitivity sweep.
type SweepPoint struct {
	Param float64
	Acc   eval.Confusion
}

// LumaThreshSweep trains the dark pipeline once and evaluates its crop
// accuracy across luminance thresholds — the sensitivity analysis
// behind the paper's fixed operating point. Too low floods the DBN
// with background; too high erases far lamps.
func LumaThreshSweep(seed uint64, n int, thresholds []uint8) ([]SweepPoint, error) {
	cfg := pipeline.DefaultDarkConfig()
	cfg.Downsample = 1
	dbnCfg := dbn.DefaultConfig()
	dbnCfg.PretrainOpts.Epochs = 4
	dbnCfg.FineTuneIter = 30
	det, err := pipeline.TrainDarkDetector(seed, cfg, dbnCfg, 120)
	if err != nil {
		return nil, err
	}
	ds := synth.NewDarkDataset(seed+1, 96, 96, n, n)
	var out []SweepPoint
	for _, th := range thresholds {
		d := *det
		d.Cfg.LumaThresh = th
		var c eval.Confusion
		for _, p := range ds.Pos {
			c.Record(true, d.ClassifyCrop(p))
		}
		for _, neg := range ds.Neg {
			c.Record(false, d.ClassifyCrop(neg))
		}
		out = append(out, SweepPoint{Param: float64(th), Acc: c})
	}
	return out, nil
}

// TrackingGain measures scene-level vehicle recall on a coherent dark
// drive with per-frame detection alone vs detection+tracking (track
// boxes count when detections drop out) — the value of the tracking
// layer the related work ([3], [5], [6]) builds around detectors.
func TrackingGain(seed uint64, frames int) (detRecall, trackRecall float64, err error) {
	cfg := pipeline.DefaultDarkConfig()
	dbnCfg := dbn.DefaultConfig()
	dbnCfg.PretrainOpts.Epochs = 4
	dbnCfg.FineTuneIter = 30
	det, err := pipeline.TrainDarkDetector(seed, cfg, dbnCfg, 120)
	if err != nil {
		return 0, 0, err
	}
	drive := synth.NewDrive(seed+1, 640, 360, synth.Dark, 2, 0)
	tracker := track.NewTracker(track.DefaultConfig())

	// Tracks need ConfirmHits frames to confirm; recall is measured in
	// steady state, after the burn-in.
	burnIn := track.DefaultConfig().ConfirmHits + 1

	var detHit, trackHit, total int
	for i := 0; i < frames; i++ {
		sc := drive.Frame(i)
		dets := det.Detect(sc.Frame)
		tracker.Update(dets)
		if i < burnIn {
			continue
		}
		var trackBoxes []img.Rect
		for _, t := range tracker.Confirmed() {
			trackBoxes = append(trackBoxes, t.Box())
		}
		for _, gt := range sc.Vehicles {
			total++
			for _, d := range dets {
				if d.Box.IoU(gt) > 0.1 {
					detHit++
					break
				}
			}
			for _, b := range trackBoxes {
				if b.IoU(gt) > 0.1 {
					trackHit++
					break
				}
			}
		}
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("experiments: drive produced no ground truth")
	}
	return float64(detHit) / float64(total), float64(trackHit) / float64(total), nil
}

// TransitionCost runs the dusk->dark transition on the adaptive
// system (timing mode) and reports reconfiguration time in ms and
// vehicle frames dropped — the §IV-B result.
func TransitionCost() (ms float64, dropped int, err error) {
	opt := adaptive.DefaultOptions()
	opt.Initial = synth.Dusk
	opt.RunDetectors = false
	sys, err := adaptive.New(adaptive.Detectors{}, opt)
	if err != nil {
		return 0, 0, err
	}
	rng := synth.NewRNG(3)
	mkScene := func(cond synth.Condition, lux float64) *synth.Scene {
		sc := synth.RenderScene(rng.Split(), synth.SceneConfig{W: 64, H: 36, Cond: cond})
		sc.Lux = lux
		return sc
	}
	for i := 0; i < 5; i++ {
		if _, err := sys.ProcessFrame(mkScene(synth.Dusk, 300)); err != nil {
			return 0, 0, err
		}
	}
	for i := 0; i < 20; i++ {
		if _, err := sys.ProcessFrame(mkScene(synth.Dark, 5)); err != nil {
			return 0, 0, err
		}
	}
	st := sys.Stats()
	if len(st.Reconfigs) != 1 || st.Reconfigs[0].DonePS == 0 {
		return 0, 0, fmt.Errorf("experiments: expected one completed reconfiguration, got %d", len(st.Reconfigs))
	}
	r := st.Reconfigs[0]
	return soc.Seconds(r.DonePS-r.StartPS) * 1e3, st.VehicleDropped, nil
}
