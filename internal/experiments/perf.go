package experiments

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"time"

	"advdet/internal/adaptive"
	"advdet/internal/hog"
	"advdet/internal/img"
	"advdet/internal/metrics"
	"advdet/internal/pipeline"
	"advdet/internal/soc"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// PerfSchema identifies the machine-readable performance report
// format. Bump only on breaking changes; additive fields keep the
// version.
const PerfSchema = "advdet-bench/v1"

// ControllerPerf is one reconfiguration controller's measured
// performance inside a PerfReport.
type ControllerPerf struct {
	Name       string  `json:"name"`
	MBPerSec   float64 `json:"mb_per_sec"`
	ReconfigMS float64 `json:"reconfig_ms"`
}

// PerfReport is the schema-stable performance summary emitted as
// BENCH_pr5.json: the headline frame-rate and latency numbers of the
// paper's §IV/§V plus the full telemetry snapshot for drill-down.
type PerfReport struct {
	Schema          string  `json:"schema"`
	CameraFPS       int     `json:"camera_fps"`
	ModeledFPS1080p float64 `json:"modeled_fps_1080p"`

	// Timing-mode drive across day -> dusk -> dark -> day.
	Frames               int     `json:"frames"`
	FrameLatencyP50MS    float64 `json:"frame_latency_p50_ms"`
	FrameLatencyP99MS    float64 `json:"frame_latency_p99_ms"`
	DeadlineHits         uint64  `json:"deadline_hits"`
	DeadlineMisses       uint64  `json:"deadline_misses"`
	ReconfigMS           float64 `json:"reconfig_ms"`
	VehicleFramesDropped int     `json:"vehicle_frames_dropped"`
	ModelSwitches        int     `json:"model_switches"`
	SlotOverruns         int     `json:"slot_overruns"`

	Controllers []ControllerPerf `json:"controllers"`

	// One real serial day scan over a 640x360 frame, broken into the
	// block-response engine's stages (additive in advdet-bench/v1).
	ScanBlockPath bool            `json:"scan_block_path"`
	ScanTotalMS   float64         `json:"scan_total_ms"`
	ScanStages    []ScanStagePerf `json:"scan_stages"`

	// Scan-lane comparison (additive in advdet-bench/v1): the same
	// serial scan through each scoring strategy — the early-reject
	// cascade (production default), the full precomputed response
	// plane, the int16/int32 fixed-point datapath, and the per-window
	// descriptor fallback. SpeedupX is full-margin over early-reject.
	ScanEarlyRejectMS float64 `json:"scan_early_reject_ms"`
	ScanFullMarginMS  float64 `json:"scan_full_margin_ms"`
	ScanQuantizedMS   float64 `json:"scan_quantized_ms"`
	ScanDescriptorMS  float64 `json:"scan_descriptor_ms"`
	ScanEarlySpeedupX float64 `json:"scan_early_speedup_x"`

	// Fleet capacity: N concurrent streams over one shared engine vs
	// a standalone stream (additive in advdet-bench/v1).
	Fleet *FleetPerf `json:"fleet,omitempty"`

	// Temporal scan cache over a static-camera highway sequence at
	// 640x360: per-frame cost without the cache, with it, and the
	// steady-state tile hit rate (additive in advdet-bench/v1).
	ScanTemporalColdMS float64 `json:"scan_temporal_cold_ms"`
	ScanTemporalWarmMS float64 `json:"scan_temporal_warm_ms"`
	TileHitRate        float64 `json:"tile_hit_rate"`

	// UHD repeats the temporal comparison at 3840x2160 when benchrepro
	// runs with -uhd (additive in advdet-bench/v1).
	UHD *TemporalPerf `json:"uhd,omitempty"`

	Metrics metrics.Snapshot `json:"metrics"`
}

// TemporalPerf is one resolution's cold-vs-warm temporal-cache scan
// comparison: the same static-camera highway sequence scanned without
// and then with the cross-frame cache attached.
type TemporalPerf struct {
	W           int     `json:"w"`
	H           int     `json:"h"`
	ColdMS      float64 `json:"cold_ms"`
	WarmMS      float64 `json:"warm_ms"`
	SpeedupX    float64 `json:"speedup_x"`
	TileHitRate float64 `json:"tile_hit_rate"`
}

// ScanStagePerf is one scan sub-stage's wall time inside a PerfReport.
type ScanStagePerf struct {
	Stage  string  `json:"stage"`
	WallMS float64 `json:"wall_ms"`
}

// PerfBench produces the PerfReport: a 120-frame timing-mode drive
// spanning all three conditions (one free model switch, two partial
// reconfigurations) with telemetry enabled, plus the §IV-A controller
// comparison. Everything runs on simulated time, so the report is
// deterministic apart from the wall-clock histograms inside Metrics.
func PerfBench() (PerfReport, error) {
	rep := PerfReport{
		Schema:          PerfSchema,
		CameraFPS:       50,
		ModeledFPS1080p: FrameRate(),
	}

	opt := adaptive.DefaultOptions()
	opt.RunDetectors = false
	opt.EnableMetrics = true
	// Placeholder models instantiate the BRAM model bank so the free
	// day<->dusk switch appears in the report; timing mode never
	// evaluates them.
	sys, err := adaptive.New(adaptive.Detectors{
		Day:  pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 1)}),
		Dusk: pipeline.NewDayDuskDetector(&svm.Model{W: make([]float64, 1)}),
	}, opt)
	if err != nil {
		return rep, err
	}

	const frames = 120
	rng := synth.NewRNG(9)
	condAt := func(i int) (synth.Condition, float64) {
		switch {
		case i < frames/4:
			return synth.Day, 10000
		case i < frames/2:
			return synth.Dusk, 300
		case i < 3*frames/4:
			return synth.Dark, 5
		default:
			return synth.Day, 10000
		}
	}
	for i := 0; i < frames; i++ {
		cond, lux := condAt(i)
		sc := synth.RenderScene(rng.Split(), synth.SceneConfig{W: 64, H: 36, Cond: cond})
		sc.Lux = lux
		if _, err := sys.ProcessFrame(sc); err != nil {
			return rep, err
		}
	}

	st := sys.Stats()
	snap := sys.Snapshot()
	rep.Frames = st.Frames
	rep.FrameLatencyP50MS = float64(snap.Frames.LatencyP50PS) / 1e9
	rep.FrameLatencyP99MS = float64(snap.Frames.LatencyP99PS) / 1e9
	rep.DeadlineHits = snap.Frames.DeadlineHits
	rep.DeadlineMisses = snap.Frames.DeadlineMisses
	rep.VehicleFramesDropped = st.VehicleDropped
	rep.ModelSwitches = st.ModelSwitches
	rep.SlotOverruns = st.SlotOverruns
	rep.Metrics = snap
	for _, r := range st.Reconfigs {
		if r.DonePS == 0 {
			return rep, fmt.Errorf("experiments: reconfiguration at frame %d never completed", r.Frame)
		}
		if ms := soc.Seconds(r.DonePS-r.StartPS) * 1e3; ms > rep.ReconfigMS {
			rep.ReconfigMS = ms
		}
	}

	// One real serial vehicle scan attributes wall time to the
	// block-response engine's stages. The model carries seeded
	// synthetic normal weights rather than zeros: a zero-weight model
	// is degenerate for the early-reject cascade (every suffix bound
	// is zero, so every window bails after the first block) and would
	// wildly overstate its saving.
	wrng := synth.NewRNG(17)
	w := make([]float64, hog.DefaultConfig().DescriptorLen(pipeline.VehicleWindow, pipeline.VehicleWindow))
	for i := range w {
		w[i] = 0.05 * wrng.Norm()
	}
	scanDet := pipeline.NewDayDuskDetector(&svm.Model{W: w, Bias: -0.1})
	scanFrame := img.RGBToGray(synth.RenderScene(synth.NewRNG(9),
		synth.DefaultSceneConfig(640, 360, synth.Day)).Frame)
	// Warm-up scan: builds the one-time histogram LUT and grows the
	// pooled scratch so the timed scan is the steady-state frame.
	if _, err := scanDet.DetectCtx(context.Background(), scanFrame, 1); err != nil { // lint:ctxroot benchmark harness owns the run
		return rep, err
	}
	var tm pipeline.ScanTimings
	if _, err := scanDet.DetectTimedCtx(context.Background(), scanFrame, 1, &tm); err != nil { // lint:ctxroot benchmark harness owns the run
		return rep, err
	}
	rep.ScanBlockPath = tm.BlockPath
	rep.ScanTotalMS = (tm.Resize + tm.Feature + tm.Blocks + tm.Response + tm.Windows + tm.Prefilter).Seconds() * 1e3
	rep.ScanStages = []ScanStagePerf{
		{Stage: "resize", WallMS: tm.Resize.Seconds() * 1e3},
		{Stage: "feature", WallMS: tm.Feature.Seconds() * 1e3},
		{Stage: "blocks", WallMS: tm.Blocks.Seconds() * 1e3},
		{Stage: "response", WallMS: tm.Response.Seconds() * 1e3},
		{Stage: "windows", WallMS: tm.Windows.Seconds() * 1e3},
	}

	// Lane comparison: the same frame through each scoring strategy,
	// serial, best of three so a stray scheduler hiccup on one rep
	// doesn't masquerade as a regression.
	lane := func(set func(d *pipeline.DayDuskDetector)) (float64, error) {
		det := *scanDet
		set(&det)
		ctx := context.Background() // lint:ctxroot benchmark harness owns the run
		if _, err := det.DetectCtx(ctx, scanFrame, 1); err != nil {
			return 0, err
		}
		best := math.Inf(1)
		for r := 0; r < 3; r++ {
			start := time.Now()
			if _, err := det.DetectCtx(ctx, scanFrame, 1); err != nil {
				return 0, err
			}
			if ms := time.Since(start).Seconds() * 1e3; ms < best {
				best = ms
			}
		}
		return best, nil
	}
	if rep.ScanEarlyRejectMS, err = lane(func(d *pipeline.DayDuskDetector) {}); err != nil {
		return rep, err
	}
	if rep.ScanFullMarginMS, err = lane(func(d *pipeline.DayDuskDetector) { d.NoEarlyReject = true }); err != nil {
		return rep, err
	}
	if rep.ScanQuantizedMS, err = lane(func(d *pipeline.DayDuskDetector) { d.Quantized = true }); err != nil {
		return rep, err
	}
	if rep.ScanDescriptorMS, err = lane(func(d *pipeline.DayDuskDetector) { d.NoBlockResponse = true }); err != nil {
		return rep, err
	}
	if rep.ScanEarlyRejectMS > 0 {
		rep.ScanEarlySpeedupX = rep.ScanFullMarginMS / rep.ScanEarlyRejectMS
	}

	// Temporal scan cache: the same scan geometry over a static-camera
	// highway sequence, cold vs warm — the cache's intended deployment
	// (a fixed roadside camera, consecutive frames mostly unchanged).
	tp, err := TemporalBench(640, 360, 8)
	if err != nil {
		return rep, err
	}
	rep.ScanTemporalColdMS = tp.ColdMS
	rep.ScanTemporalWarmMS = tp.WarmMS
	rep.TileHitRate = tp.TileHitRate

	results, err := ReconfigComparison(1)
	if err != nil {
		return rep, err
	}
	for _, r := range results {
		rep.Controllers = append(rep.Controllers, ControllerPerf{
			Name:       r.Controller,
			MBPerSec:   r.MBPerSec,
			ReconfigMS: soc.Seconds(r.PS) * 1e3,
		})
	}

	// Fleet capacity: the multi-stream experiment behind BENCH_pr7.
	fl, err := FleetBench(DefaultFleetOptions())
	if err != nil {
		return rep, err
	}
	rep.Fleet = &fl
	return rep, nil
}

// TemporalBench measures the temporal scan cache's cold-vs-warm cost
// at one resolution: a static-camera highway sequence (3 moving
// vehicles over a fixed backdrop) is scanned serially frames+1 times
// without a cache and then with one, reporting the mean per-frame
// wall time of each lane past the first frame — which the warm lane
// spends filling the cache and the cold lane uses as its own warm-up,
// so both lanes time only steady-state frames. Detections are
// byte-identical between the lanes by the cache's contract.
func TemporalBench(w, h, frames int) (TemporalPerf, error) {
	tp := TemporalPerf{W: w, H: h}
	wrng := synth.NewRNG(17)
	wts := make([]float64, hog.DefaultConfig().DescriptorLen(pipeline.VehicleWindow, pipeline.VehicleWindow))
	for i := range wts {
		wts[i] = 0.05 * wrng.Norm()
	}
	det := pipeline.NewDayDuskDetector(&svm.Model{W: wts, Bias: -0.1})
	sh := synth.NewStaticHighway(10, w, h, synth.Day, 3)
	grays := make([]*img.Gray, frames+1)
	for i := range grays {
		grays[i] = img.RGBToGray(sh.Frame(i).Frame)
	}
	ctx := context.Background() // lint:ctxroot benchmark harness owns the run
	lane := func(tc *pipeline.TemporalCache) (float64, error) {
		d := *det
		d.Temporal = tc
		if _, err := d.DetectCtx(ctx, grays[0], 1); err != nil {
			return 0, err
		}
		start := time.Now()
		for _, g := range grays[1:] {
			if _, err := d.DetectCtx(ctx, g, 1); err != nil {
				return 0, err
			}
		}
		return time.Since(start).Seconds() * 1e3 / float64(frames), nil
	}
	var err error
	if tp.ColdMS, err = lane(nil); err != nil {
		return tp, err
	}
	tc := pipeline.NewTemporalCache()
	if tp.WarmMS, err = lane(tc); err != nil {
		return tp, err
	}
	tp.TileHitRate = tc.Stats().HitRate()
	if tp.WarmMS > 0 {
		tp.SpeedupX = tp.ColdMS / tp.WarmMS
	}
	return tp, nil
}

// WritePerfJSON writes the report as indented JSON.
func (p PerfReport) WritePerfJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// WritePerf prints the report's headline rows for humans.
func WritePerf(w io.Writer, p PerfReport) {
	fmt.Fprintln(w, "performance summary (timing-mode drive, day->dusk->dark->day):")
	fmt.Fprintf(w, "  camera rate: %d fps; modeled pipeline at 1080p: %.1f fps\n",
		p.CameraFPS, p.ModeledFPS1080p)
	fmt.Fprintf(w, "  %d frames: latency p50 %.3f ms / p99 %.3f ms, deadline %d hit / %d missed\n",
		p.Frames, p.FrameLatencyP50MS, p.FrameLatencyP99MS, p.DeadlineHits, p.DeadlineMisses)
	fmt.Fprintf(w, "  reconfiguration %.2f ms; %d vehicle frame(s) dropped, %d model switch(es), %d overrun(s)\n",
		p.ReconfigMS, p.VehicleFramesDropped, p.ModelSwitches, p.SlotOverruns)
	path := "descriptor"
	if p.ScanBlockPath {
		path = "block-response"
	}
	fmt.Fprintf(w, "  vehicle scan (640x360, serial, %s path): %.2f ms total\n", path, p.ScanTotalMS)
	for _, s := range p.ScanStages {
		fmt.Fprintf(w, "    stage %-9s %7.3f ms\n", s.Stage, s.WallMS)
	}
	if p.ScanEarlyRejectMS > 0 {
		fmt.Fprintf(w, "  scan lanes: early-reject %.2f ms, full-margin %.2f ms (%.2fx), "+
			"quantized %.2f ms, descriptor %.2f ms\n",
			p.ScanEarlyRejectMS, p.ScanFullMarginMS, p.ScanEarlySpeedupX,
			p.ScanQuantizedMS, p.ScanDescriptorMS)
	}
	if p.ScanTemporalColdMS > 0 {
		fmt.Fprintf(w, "  temporal cache (static camera, 640x360): cold %.2f ms, warm %.2f ms (%.2fx), tile hit rate %.1f%%\n",
			p.ScanTemporalColdMS, p.ScanTemporalWarmMS,
			p.ScanTemporalColdMS/p.ScanTemporalWarmMS, 100*p.TileHitRate)
	}
	if p.UHD != nil {
		fmt.Fprintf(w, "  temporal cache (static camera, %dx%d): cold %.2f ms, warm %.2f ms (%.2fx), tile hit rate %.1f%%\n",
			p.UHD.W, p.UHD.H, p.UHD.ColdMS, p.UHD.WarmMS, p.UHD.SpeedupX, 100*p.UHD.TileHitRate)
	}
	for _, c := range p.Controllers {
		fmt.Fprintf(w, "  controller %-12s %7.1f MB/s, %7.2f ms per 8 MB bitstream\n",
			c.Name, c.MBPerSec, c.ReconfigMS)
	}
	if p.Fleet != nil {
		WriteFleet(w, *p.Fleet)
	}
}
