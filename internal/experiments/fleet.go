package experiments

import (
	"context"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"advdet/internal/adaptive"
	"advdet/internal/fleet"
	"advdet/internal/hog"
	"advdet/internal/metrics"
	"advdet/internal/pipeline"
	"advdet/internal/svm"
	"advdet/internal/synth"
)

// StreamPerf is one stream's row in the fleet capacity experiment.
type StreamPerf struct {
	Stream  string  `json:"stream"`
	Frames  int     `json:"frames"`
	WallFPS float64 `json:"wall_fps"`
}

// FleetPerf is the fleet capacity experiment: N concurrent streams
// multiplexed over one shared engine (models + scan-lane pool +
// bounded dispatcher) against a single standalone stream. Additive in
// advdet-bench/v1.
type FleetPerf struct {
	Streams         int `json:"streams"`
	FramesPerStream int `json:"frames_per_stream"`
	// Workers is the dispatcher executor count and scan-lane budget
	// used by the fleet run (NumCPU by default).
	Workers int `json:"workers"`
	NumCPU  int `json:"num_cpu"`
	FrameW  int `json:"frame_w"`
	FrameH  int `json:"frame_h"`

	// SingleStreamFPS is the wall-clock rate of one standalone
	// one-lane stream; AggregateFPS is the whole fleet's wall-clock
	// rate (total frames / wall time); SpeedupX is their ratio. Wall
	// speedup is bounded by the host's core count.
	SingleStreamFPS float64 `json:"single_stream_fps"`
	AggregateFPS    float64 `json:"aggregate_fps"`
	SpeedupX        float64 `json:"speedup_x"`

	// CapacityStreamsFPS is the simulated-time capacity rollup:
	// every stream's configured fps weighted by its slot-deadline hit
	// ratio, summed (metrics.FleetSnapshot). This is the streams×fps
	// number the real-time claim is made on: hardware-independent,
	// it says how many real-time camera slots the modeled platform
	// sustained.
	CapacityStreamsFPS float64 `json:"capacity_streams_fps"`
	DeadlineHits       uint64  `json:"deadline_hits"`
	DeadlineMisses     uint64  `json:"deadline_misses"`

	// Overloaded counts admissions shed with ErrOverloaded and then
	// retried by the harness; Batches is the dispatcher's flush count.
	Overloaded uint64 `json:"overloaded"`
	Batches    uint64 `json:"batches"`

	PerStream []StreamPerf `json:"per_stream"`
}

// FleetOptions shapes FleetBench.
type FleetOptions struct {
	Streams         int
	FramesPerStream int
	W, H            int
	// Workers sets the dispatcher executor count and the engine's
	// scan-lane budget; <= 0 selects runtime.NumCPU().
	Workers int
}

// DefaultFleetOptions returns the CI-speed operating point: 8 streams
// of 30 frames at 240x135.
func DefaultFleetOptions() FleetOptions {
	return FleetOptions{Streams: 8, FramesPerStream: 30, W: 240, H: 135}
}

// fleetDetectors builds the shared zero-weight day detector set: the
// same arithmetic cost as a trained model without the training time.
func fleetDetectors() adaptive.Detectors {
	return adaptive.Detectors{
		Day: pipeline.NewDayDuskDetector(&svm.Model{
			W: make([]float64, hog.DefaultConfig().DescriptorLen(pipeline.VehicleWindow, pipeline.VehicleWindow)),
		}),
	}
}

// FleetBench measures fleet-scale capacity. The baseline is one
// standalone stream scanning on a single lane; the fleet run
// multiplexes opt.Streams concurrent streams — each likewise capped at
// one lane — over a shared engine with opt.Workers executors and scan
// lanes. Per-stream detection output is byte-identical between the
// two by the determinism contract (asserted in the test suite); this
// experiment measures rates only.
func FleetBench(opt FleetOptions) (FleetPerf, error) {
	if opt.Streams <= 0 || opt.FramesPerStream <= 0 {
		return FleetPerf{}, fmt.Errorf("experiments: fleet bench needs streams and frames, got %d/%d",
			opt.Streams, opt.FramesPerStream)
	}
	workers := opt.Workers
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	rep := FleetPerf{
		Streams:         opt.Streams,
		FramesPerStream: opt.FramesPerStream,
		Workers:         workers,
		NumCPU:          runtime.NumCPU(),
		FrameW:          opt.W,
		FrameH:          opt.H,
	}
	dets := fleetDetectors()
	sysOpt := adaptive.DefaultOptions()
	sysOpt.RunDetectors = true
	sysOpt.EnableMetrics = true
	sysOpt.Parallelism = 1 // one lane per stream; the fleet scales by adding streams

	// Day-condition scenes, rendered up front and shared read-only.
	scenes := make([]*synth.Scene, opt.FramesPerStream)
	for i := range scenes {
		sc := synth.RenderScene(synth.NewRNG(uint64(40+i)),
			synth.SceneConfig{W: opt.W, H: opt.H, Cond: synth.Day})
		sc.Lux = 10000
		scenes[i] = sc
	}

	ctx := context.Background() // lint:ctxroot benchmark harness owns the run

	// Warm-up: one frame grows the pooled scan scratch and the
	// histogram LUT so both timed runs start in steady state.
	warm, err := adaptive.New(dets, sysOpt)
	if err != nil {
		return rep, err
	}
	if _, err := warm.ProcessFrameCtx(ctx, scenes[0]); err != nil {
		return rep, err
	}

	// Baseline: one standalone single-lane stream.
	single, err := adaptive.New(dets, sysOpt)
	if err != nil {
		return rep, err
	}
	start := time.Now()
	for _, sc := range scenes {
		if _, err := single.ProcessFrameCtx(ctx, sc); err != nil {
			return rep, err
		}
	}
	if wall := time.Since(start).Seconds(); wall > 0 {
		rep.SingleStreamFPS = float64(opt.FramesPerStream) / wall
	}

	// Fleet: opt.Streams concurrent streams over one shared engine.
	eng := adaptive.NewEngine(dets, adaptive.EngineConfig{Parallelism: workers})
	disp := fleet.NewDispatcher(fleet.Config{Workers: workers, QueueDepth: 2 * opt.Streams})
	defer disp.Close()
	rollup := metrics.NewFleet()
	type streamRun struct {
		name string
		sys  *adaptive.System
		wall time.Duration
	}
	runs := make([]*streamRun, opt.Streams)
	for i := range runs {
		sys, err := eng.NewSystem(sysOpt)
		if err != nil {
			return rep, err
		}
		runs[i] = &streamRun{name: fmt.Sprintf("cam-%d", i), sys: sys}
		rollup.Attach(runs[i].name, sysOpt.FPS, sys.Metrics())
	}
	var overloads atomic.Uint64
	var firstErr error
	var errMu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(len(runs))
	fleetStart := time.Now()
	for _, run := range runs {
		go func(run *streamRun) {
			defer wg.Done()
			streamStart := time.Now()
			for _, sc := range scenes {
				var ferr error
				for {
					_, err := disp.Submit(ctx, func(ctx context.Context) {
						_, ferr = run.sys.ProcessFrameCtx(ctx, sc)
					})
					if err == nil {
						break
					}
					if errors.Is(err, fleet.ErrOverloaded) {
						// Graceful shedding: the stream backs off one
						// queue-drain interval and re-offers the frame.
						overloads.Add(1)
						time.Sleep(200 * time.Microsecond)
						continue
					}
					ferr = err
					break
				}
				if ferr != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("experiments: fleet stream %s: %w", run.name, ferr)
					}
					errMu.Unlock()
					return
				}
			}
			run.wall = time.Since(streamStart)
		}(run)
	}
	wg.Wait()
	if firstErr != nil {
		return rep, firstErr
	}
	fleetWall := time.Since(fleetStart).Seconds()
	total := opt.Streams * opt.FramesPerStream
	if fleetWall > 0 {
		rep.AggregateFPS = float64(total) / fleetWall
	}
	if rep.SingleStreamFPS > 0 {
		rep.SpeedupX = rep.AggregateFPS / rep.SingleStreamFPS
	}
	rep.Overloaded = overloads.Load()
	rep.Batches = disp.Stats().Batches
	snap := rollup.Snapshot()
	rep.CapacityStreamsFPS = snap.CapacityStreamsFPS
	rep.DeadlineHits = snap.DeadlineHits
	rep.DeadlineMisses = snap.DeadlineMisses
	rep.PerStream = make([]StreamPerf, 0, len(runs))
	for _, run := range runs {
		row := StreamPerf{Stream: run.name, Frames: opt.FramesPerStream}
		if s := run.wall.Seconds(); s > 0 {
			row.WallFPS = float64(opt.FramesPerStream) / s
		}
		rep.PerStream = append(rep.PerStream, row)
	}
	return rep, nil
}

// WriteFleet prints the fleet capacity rows for humans.
func WriteFleet(w io.Writer, p FleetPerf) {
	fmt.Fprintf(w, "fleet capacity (%d streams × %d frames at %dx%d, %d workers on %d CPU(s)):\n",
		p.Streams, p.FramesPerStream, p.FrameW, p.FrameH, p.Workers, p.NumCPU)
	fmt.Fprintf(w, "  single stream (1 lane): %.1f fps wall\n", p.SingleStreamFPS)
	fmt.Fprintf(w, "  fleet aggregate: %.1f fps wall (%.2fx single-stream)\n", p.AggregateFPS, p.SpeedupX)
	fmt.Fprintf(w, "  modeled capacity: %.0f streams×fps (deadline %d hit / %d missed)\n",
		p.CapacityStreamsFPS, p.DeadlineHits, p.DeadlineMisses)
	fmt.Fprintf(w, "  dispatcher: %d batches, %d overload shed+retry\n", p.Batches, p.Overloaded)
}
