package experiments

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// TestFleetBenchSmall pins the fleet experiment's invariants on a
// CI-sized run: every stream completes every frame, the sim-side
// capacity rollup equals streams × camera fps when all deadlines hit,
// and the report round-trips through JSON.
func TestFleetBenchSmall(t *testing.T) {
	opt := FleetOptions{Streams: 4, FramesPerStream: 6, W: 160, H: 90}
	rep, err := FleetBench(opt)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Streams != 4 || rep.FramesPerStream != 6 {
		t.Fatalf("shape %+v", rep)
	}
	if len(rep.PerStream) != 4 {
		t.Fatalf("%d per-stream rows, want 4", len(rep.PerStream))
	}
	for _, row := range rep.PerStream {
		if row.Frames != 6 {
			t.Fatalf("stream %s processed %d frames, want 6", row.Stream, row.Frames)
		}
		if row.WallFPS <= 0 {
			t.Fatalf("stream %s has no wall rate: %+v", row.Stream, row)
		}
	}
	total := uint64(rep.Streams * rep.FramesPerStream)
	if rep.DeadlineHits+rep.DeadlineMisses != total {
		t.Fatalf("deadline accounting %d+%d != %d frames",
			rep.DeadlineHits, rep.DeadlineMisses, total)
	}
	// The modeled hardware path meets every 50 fps slot at this frame
	// size, so the capacity rollup is exactly streams × 50.
	if want := float64(rep.Streams * 50); rep.CapacityStreamsFPS != want {
		t.Fatalf("capacity %.1f streams×fps, want %.1f (hits %d misses %d)",
			rep.CapacityStreamsFPS, want, rep.DeadlineHits, rep.DeadlineMisses)
	}
	if rep.SingleStreamFPS <= 0 || rep.AggregateFPS <= 0 || rep.SpeedupX <= 0 {
		t.Fatalf("rates not measured: %+v", rep)
	}

	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	var back FleetPerf
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if back.CapacityStreamsFPS != rep.CapacityStreamsFPS || back.Streams != rep.Streams {
		t.Fatal("fleet report did not round-trip")
	}

	var human strings.Builder
	WriteFleet(&human, rep)
	for _, want := range []string{"fleet capacity", "single stream", "streams×fps"} {
		if !strings.Contains(human.String(), want) {
			t.Fatalf("human output missing %q:\n%s", want, human.String())
		}
	}
}

func TestFleetBenchValidatesOptions(t *testing.T) {
	if _, err := FleetBench(FleetOptions{Streams: 0, FramesPerStream: 5}); err == nil {
		t.Fatal("zero streams accepted")
	}
	if _, err := FleetBench(FleetOptions{Streams: 2, FramesPerStream: 0}); err == nil {
		t.Fatal("zero frames accepted")
	}
}
