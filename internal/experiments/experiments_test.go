package experiments

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"advdet/internal/eval"
)

func TestPaperTableIInternallyConsistent(t *testing.T) {
	// The published counts must reproduce the published accuracies.
	accs := map[[2]string]float64{
		{"day", "day"}: 96.00, {"day", "dusk"}: 73.78, {"day", "dusk-subset"}: 77.55,
		{"dusk", "day"}: 20.89, {"dusk", "dusk"}: 82.37, {"dusk", "dusk-subset"}: 86.88,
		{"combined", "day"}: 91.56, {"combined", "dusk"}: 85.34, {"combined", "dusk-subset"}: 90.09,
	}
	for key, want := range accs {
		c := PaperTableI[key]
		if got := 100 * c.Accuracy(); math.Abs(got-want) > 0.02 {
			t.Errorf("%v: counts give %.2f%%, paper says %.2f%%", key, got, want)
		}
	}
}

func TestTableIQuickShapeHolds(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three SVMs")
	}
	rows, err := TableI(TableIOptions{Seed: 11, TrainN: 60, PaperCounts: false})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("rows = %d", len(rows))
	}
	if errs := TableIShapeErrors(rows); len(errs) > 0 {
		t.Fatalf("shape violations: %v", errs)
	}
	var buf bytes.Buffer
	WriteTableI(&buf, rows)
	if !strings.Contains(buf.String(), "combined") {
		t.Fatal("WriteTableI output incomplete")
	}
}

func TestTableIShapeErrorsDetectsViolations(t *testing.T) {
	// Fabricate rows violating every claim.
	mk := func(model, test string, tp, tn, fp, fn int) TableIRow {
		return TableIRow{Model: model, Test: test, Got: eval.Confusion{TP: tp, TN: tn, FP: fp, FN: fn}}
	}
	rows := []TableIRow{
		mk("day", "day", 10, 10, 40, 40),         // weak day model
		mk("day", "dusk", 90, 90, 5, 5),          // day model beats dusk model on dusk
		mk("day", "dusk-subset", 10, 10, 40, 40), // subset worse than full
		mk("dusk", "day", 90, 90, 5, 5),          // dusk model wins day + TP >> FN
		mk("dusk", "dusk", 10, 10, 40, 40),
		mk("dusk", "dusk-subset", 5, 5, 45, 45),
		mk("combined", "day", 95, 95, 1, 1),
		mk("combined", "dusk", 10, 10, 40, 40),
		mk("combined", "dusk-subset", 5, 5, 45, 45),
	}
	errs := TableIShapeErrors(rows)
	if len(errs) < 3 {
		t.Fatalf("only %d violations detected: %v", len(errs), errs)
	}
}

func TestTableIIRowsMatchPaper(t *testing.T) {
	got, paper := TableIIRows()
	if len(got) != len(paper) {
		t.Fatal("row count mismatch")
	}
	for i := range got {
		for j := range got[i].Util {
			if math.Round(got[i].Util[j]) != paper[i].Util[j] {
				t.Errorf("%s util[%d]: %.2f vs paper %v", got[i].Name, j, got[i].Util[j], paper[i].Util[j])
			}
		}
	}
	var buf bytes.Buffer
	WriteTableII(&buf)
	if !strings.Contains(buf.String(), "Reconfigurable Partition") {
		t.Fatal("WriteTableII output incomplete")
	}
}

func TestReconfigComparisonBands(t *testing.T) {
	results, err := ReconfigComparison(2)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("%d controllers", len(results))
	}
	for _, r := range results {
		paper := PaperThroughputs[r.Controller]
		if rel := math.Abs(r.MBPerSec-paper) / paper; rel > 0.05 {
			t.Errorf("%s: %.1f MB/s deviates %.1f%% from paper %.0f",
				r.Controller, r.MBPerSec, 100*rel, paper)
		}
	}
	var buf bytes.Buffer
	WriteReconfig(&buf, results)
	if !strings.Contains(buf.String(), "speedup") {
		t.Fatal("WriteReconfig output incomplete")
	}
}

func TestTransitionCostMatchesPaper(t *testing.T) {
	ms, dropped, err := TransitionCost()
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(ms-20) > 1.5 {
		t.Fatalf("reconfiguration %.2f ms, want ~20", ms)
	}
	if dropped != 1 {
		t.Fatalf("dropped %d frames, want 1", dropped)
	}
}

func TestBaselineDarkQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two classifiers")
	}
	dbnC, haarC, err := BaselineDark(91, 10)
	if err != nil {
		t.Fatal(err)
	}
	if dbnC.Total() != 20 || haarC.Total() != 20 {
		t.Fatalf("totals %d/%d", dbnC.Total(), haarC.Total())
	}
	if dbnC.Accuracy() < 0.8 {
		t.Fatalf("DBN baseline accuracy %v", dbnC.Accuracy())
	}
}

func TestFeatureComparisonQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains two SVMs")
	}
	hogC, piC, err := FeatureComparison(93, 30, 15)
	if err != nil {
		t.Fatal(err)
	}
	if hogC.Accuracy() < 0.7 || piC.Accuracy() < 0.7 {
		t.Fatalf("feature comparison collapsed: HOG %v PIHOG %v", hogC.Accuracy(), piC.Accuracy())
	}
}

func TestTrackingGainQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the dark pipeline")
	}
	detR, trkR, err := TrackingGain(95, 20)
	if err != nil {
		t.Fatal(err)
	}
	if detR < 0 || detR > 1 || trkR < 0 || trkR > 1 {
		t.Fatalf("recalls out of range: %v %v", detR, trkR)
	}
	// Tracking must not lose recall relative to raw detection by more
	// than association noise.
	if trkR < detR-0.15 {
		t.Fatalf("tracking reduced recall: %v -> %v", detR, trkR)
	}
}

func TestLumaThreshSweepQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the dark pipeline")
	}
	points, err := LumaThreshSweep(97, 6, []uint8{90, 245})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// The operating point must beat a near-saturation threshold.
	if points[0].Acc.Accuracy() < points[1].Acc.Accuracy() {
		t.Fatalf("threshold 90 (%v) should beat 245 (%v)",
			points[0].Acc.Accuracy(), points[1].Acc.Accuracy())
	}
}

func TestQuantizationLossNegligible(t *testing.T) {
	if testing.Short() {
		t.Skip("trains an SVM")
	}
	res, err := QuantizationLoss(51, 30, 25)
	if err != nil {
		t.Fatal(err)
	}
	// The Q16.16 datapath must agree with the float reference on
	// (almost) every crop and keep margins within quantization noise.
	if res.Disagreement > 1 {
		t.Fatalf("fixed-point datapath disagrees on %d crops", res.Disagreement)
	}
	if res.MaxMarginErr > 0.01 {
		t.Fatalf("max margin error %v too large", res.MaxMarginErr)
	}
	if res.FixedAcc.Accuracy() < res.FloatAcc.Accuracy()-0.05 {
		t.Fatalf("quantization cost accuracy: %v -> %v",
			res.FloatAcc.Accuracy(), res.FixedAcc.Accuracy())
	}
}

func TestFrameRateMatchesPaper(t *testing.T) {
	if fps := FrameRate(); fps < 48 || fps > 55 {
		t.Fatalf("frame rate %v, paper reports 50", fps)
	}
}

func TestAdaptiveBeatsFixedStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("trains three detectors and scans many frames")
	}
	rows, err := AdaptiveVsFixed(61, 5)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]AdaptiveVsFixedRow{}
	for _, r := range rows {
		byName[r.Strategy] = r
	}
	ad := byName["adaptive"]
	for _, name := range []string{"day-only", "dusk-only", "dark-only"} {
		r := byName[name]
		if ad.Overall < r.Overall {
			t.Errorf("adaptive overall %.2f below %s %.2f", ad.Overall, name, r.Overall)
		}
		// Every fixed strategy must collapse in some segment.
		if r.Day > 0.5 && r.Dusk > 0.5 && r.Dark > 0.5 {
			t.Errorf("%s does not collapse anywhere (%.2f/%.2f/%.2f) — "+
				"the adaptive design would be unnecessary", name, r.Day, r.Dusk, r.Dark)
		}
	}
	if ad.Day < 0.6 || ad.Dusk < 0.6 || ad.Dark < 0.6 {
		t.Errorf("adaptive collapses in a segment: %.2f/%.2f/%.2f", ad.Day, ad.Dusk, ad.Dark)
	}
}

func TestDarkAccuracyHigh(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the dark pipeline")
	}
	c, err := DarkAccuracy(33, 25)
	if err != nil {
		t.Fatal(err)
	}
	if c.Accuracy() < 0.85 {
		t.Fatalf("dark accuracy %v (paper: 0.95): %v", c.Accuracy(), c)
	}
}
