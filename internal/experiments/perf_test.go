package experiments

import (
	"bytes"
	"encoding/json"
	"testing"

	"advdet/internal/pr"
)

// TestPerfBenchReportSchema pins the BENCH_pr5.json contract: the
// schema tag, the drive shape, and the fields downstream tooling keys
// on. Breaking any of these requires a schema bump.
func TestPerfBenchReportSchema(t *testing.T) {
	rep, err := PerfBench()
	if err != nil {
		t.Fatal(err)
	}
	if rep.Schema != PerfSchema {
		t.Fatalf("schema %q, want %q", rep.Schema, PerfSchema)
	}
	if rep.CameraFPS != 50 {
		t.Fatalf("camera fps %d", rep.CameraFPS)
	}
	if rep.ModeledFPS1080p < 48 || rep.ModeledFPS1080p > 55 {
		t.Fatalf("modeled 1080p fps %.1f outside the paper's band", rep.ModeledFPS1080p)
	}
	if rep.Frames != 120 {
		t.Fatalf("frames %d, want 120", rep.Frames)
	}
	if rep.DeadlineHits+rep.DeadlineMisses != uint64(rep.Frames) {
		t.Fatalf("hits %d + misses %d != frames %d",
			rep.DeadlineHits, rep.DeadlineMisses, rep.Frames)
	}
	// The drive crosses dusk->dark and dark->day: two partial
	// reconfigurations, each ~20 ms on dma-icap (paper §IV-B).
	if rep.ReconfigMS < 19 || rep.ReconfigMS > 22 {
		t.Fatalf("reconfig %.2f ms outside [19, 22]", rep.ReconfigMS)
	}
	if rep.VehicleFramesDropped == 0 {
		t.Fatal("drive with two reconfigurations dropped no vehicle frames")
	}
	if !rep.Metrics.Enabled {
		t.Fatal("report's telemetry snapshot not enabled")
	}
	if sense, ok := rep.Metrics.StageByName("sense"); !ok || sense.Count != uint64(rep.Frames) {
		t.Fatalf("sense stage count %d, want %d", sense.Count, rep.Frames)
	}

	// The scan breakdown took the block-response path and covers the
	// engine's five stages in datapath order.
	if !rep.ScanBlockPath {
		t.Fatal("scan breakdown did not take the block-response path")
	}
	wantStages := []string{"resize", "feature", "blocks", "response", "windows"}
	if len(rep.ScanStages) != len(wantStages) {
		t.Fatalf("%d scan stages, want %d", len(rep.ScanStages), len(wantStages))
	}
	sum := 0.0
	for i, s := range rep.ScanStages {
		if s.Stage != wantStages[i] {
			t.Fatalf("scan stage[%d] = %q, want %q", i, s.Stage, wantStages[i])
		}
		if s.WallMS <= 0 {
			t.Fatalf("scan stage %s reported no wall time", s.Stage)
		}
		sum += s.WallMS
	}
	if rep.ScanTotalMS <= 0 || sum > rep.ScanTotalMS*1.001 || sum < rep.ScanTotalMS*0.999 {
		t.Fatalf("scan stages sum %.3f ms, total %.3f ms", sum, rep.ScanTotalMS)
	}

	// The temporal-cache comparison ran and reused tiles. Cold-vs-warm
	// ordering is asserted loosely (warm no slower than cold) rather
	// than at the benchmark's full speedup: this test shares a loaded
	// CI machine.
	if rep.ScanTemporalColdMS <= 0 || rep.ScanTemporalWarmMS <= 0 {
		t.Fatalf("temporal scan times cold=%.3f warm=%.3f not measured",
			rep.ScanTemporalColdMS, rep.ScanTemporalWarmMS)
	}
	if rep.TileHitRate <= 0 || rep.TileHitRate > 1 {
		t.Fatalf("tile hit rate %.3f outside (0, 1]", rep.TileHitRate)
	}

	// Controllers appear in pr.All() order with positive throughputs.
	all := pr.All()
	if len(rep.Controllers) != len(all) {
		t.Fatalf("%d controllers, want %d", len(rep.Controllers), len(all))
	}
	for i, c := range rep.Controllers {
		if c.Name != all[i].Name() {
			t.Fatalf("controller[%d] = %q, want %q", i, c.Name, all[i].Name())
		}
		if c.MBPerSec <= 0 || c.ReconfigMS <= 0 {
			t.Fatalf("controller %s has non-positive perf: %+v", c.Name, c)
		}
	}
}

// TestPerfBenchJSONRoundTrip ensures the emitted JSON carries every
// schema field faithfully through encode/decode.
func TestPerfBenchJSONRoundTrip(t *testing.T) {
	rep, err := PerfBench()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := rep.WritePerfJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var got PerfReport
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatal(err)
	}
	if got.Schema != rep.Schema || got.Frames != rep.Frames ||
		got.DeadlineHits != rep.DeadlineHits || len(got.Controllers) != len(rep.Controllers) {
		t.Fatalf("round trip lost fields:\n got %+v\nwant %+v", got, rep)
	}
	// The raw JSON must expose the stable top-level keys by name.
	var keys map[string]json.RawMessage
	if err := json.Unmarshal(buf.Bytes(), &keys); err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"schema", "camera_fps", "modeled_fps_1080p", "frames",
		"frame_latency_p50_ms", "frame_latency_p99_ms", "deadline_hits", "deadline_misses",
		"reconfig_ms", "vehicle_frames_dropped", "model_switches", "slot_overruns",
		"controllers", "metrics",
		"scan_temporal_cold_ms", "scan_temporal_warm_ms", "tile_hit_rate"} {
		if _, ok := keys[k]; !ok {
			t.Fatalf("JSON missing key %q", k)
		}
	}
}
