package fleet

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestSealerTicks: the wall-clock sealer must call flush on its own
// while the owner is idle — that is its whole liveness job.
func TestSealerTicks(t *testing.T) {
	var n atomic.Int64
	s := NewSealer(func() { n.Add(1) }, time.Millisecond)
	deadline := time.Now().Add(2 * time.Second)
	for n.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("sealer never ticked")
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
}

// TestSealerCloseFlushes: Close joins the loop and then runs one final
// flush, so a ledger's tail batch is always sealed at engine shutdown;
// repeated Closes are no-ops.
func TestSealerCloseFlushes(t *testing.T) {
	var n atomic.Int64
	// An interval far beyond the test's lifetime: any flush observed
	// must come from Close itself.
	s := NewSealer(func() { n.Add(1) }, time.Hour)
	if got := n.Load(); got != 0 {
		t.Fatalf("flushed %d times before Close", got)
	}
	s.Close()
	if got := n.Load(); got != 1 {
		t.Fatalf("flushes after Close = %d, want exactly 1", got)
	}
	s.Close()
	s.Close()
	if got := n.Load(); got != 1 {
		t.Fatalf("idempotent Close re-flushed: %d", got)
	}
}

// TestSealerDefaultInterval: a non-positive interval selects the
// default rather than panicking time.NewTicker.
func TestSealerDefaultInterval(t *testing.T) {
	var n atomic.Int64
	s := NewSealer(func() { n.Add(1) }, 0)
	s.Close()
	if got := n.Load(); got != 1 {
		t.Fatalf("flushes = %d, want 1 from Close", got)
	}
}
