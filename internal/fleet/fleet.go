// Package fleet multiplexes N concurrent camera streams over one
// shared, bounded worker pool. Admission is a bounded channel with
// backpressure — when the queue is full Submit fails fast with the
// typed ErrOverloaded instead of queueing unboundedly — and admitted
// work flows through a size-or-deadline batcher: items accumulate
// until the batch is full or the oldest item has waited MaxWait, then
// the whole batch is handed to the executor pool. Every item carries
// timing stamps (enqueued, flushed, started, finished) so callers can
// attribute frame latency to queueing, batching and execution.
//
// The dispatcher is the software analogue of the paper's frame-slot
// arbitration: a fixed fabric (the executor pool) time-shared by
// whichever camera slots have work, with a hard admission bound in
// place of the camera's fixed slot count.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// Typed admission errors. Both are %w-wrappable sentinels: match with
// errors.Is, never by substring.
var (
	// ErrOverloaded is returned by Submit when the bounded admission
	// queue is full — the fleet is beyond capacity and the caller
	// should shed the frame (drop, retry later, or degrade) rather
	// than queue it.
	ErrOverloaded = errors.New("fleet: overloaded: admission queue full")

	// ErrClosed is returned by Submit after the dispatcher has been
	// closed.
	ErrClosed = errors.New("fleet: dispatcher closed")

	// ErrStreamClosed is returned when a frame is offered to a stream
	// that has been closed. The sentinel lives here so both the fleet
	// layer and the public stream API share one identity.
	ErrStreamClosed = errors.New("fleet: stream closed")
)

// Config shapes a Dispatcher.
type Config struct {
	// Workers is the executor pool size; <= 0 selects runtime.NumCPU().
	Workers int
	// QueueDepth bounds the admission channel; a full queue makes
	// Submit fail with ErrOverloaded. <= 0 selects 2×Workers.
	QueueDepth int
	// MaxBatch flushes a batch when it reaches this many items;
	// <= 0 selects 4.
	MaxBatch int
	// MaxWait flushes a non-empty batch once its oldest item has
	// waited this long, bounding the latency cost of batching;
	// <= 0 selects 2ms.
	MaxWait time.Duration
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 4
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	return c
}

// Timing is one item's trip through the dispatcher.
type Timing struct {
	Enqueued time.Time // Submit admitted the item to the queue
	Flushed  time.Time // the batcher flushed the item's batch
	Started  time.Time // an executor picked the item up
	Finished time.Time // the item's work function returned
}

// QueueWait is the time spent in admission + batching before an
// executor picked the item up.
func (t Timing) QueueWait() time.Duration { return t.Started.Sub(t.Enqueued) }

// Run is the execution time of the work function itself.
func (t Timing) Run() time.Duration { return t.Finished.Sub(t.Started) }

// item claim states: an item is run at most once, and exactly one of
// the executor (claim) or the abandoning submitter (abandon) wins.
const (
	statePending int32 = iota
	stateClaimed
	stateAbandoned
)

type item struct {
	ctx   context.Context
	run   func(context.Context)
	tm    Timing
	state atomic.Int32
	done  chan struct{}
}

// Stats are the dispatcher's monotonic counters.
type Stats struct {
	Admitted  uint64 // items accepted into the queue
	Rejected  uint64 // items refused with ErrOverloaded
	Executed  uint64 // items whose work function ran
	Abandoned uint64 // items whose submitter gave up before execution
	Batches   uint64 // batches flushed (by size or by deadline)
}

// Dispatcher is the shared bounded worker pool with a size-or-deadline
// batcher in front. Build with NewDispatcher; Submit is safe for
// concurrent use by any number of streams.
type Dispatcher struct {
	cfg    Config
	in     chan *item // bounded admission queue
	exec   chan *item // batcher → executor hand-off
	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.RWMutex // guards closed against in-flight Submit sends
	closed   bool
	shutdown func()
	once     sync.Once

	admitted  atomic.Uint64
	rejected  atomic.Uint64
	executed  atomic.Uint64
	abandoned atomic.Uint64
	batches   atomic.Uint64
}

// NewDispatcher starts the batcher and executor goroutines. The
// dispatcher runs until Close, which drains and completes all admitted
// work before returning.
func NewDispatcher(cfg Config) *Dispatcher {
	cfg = cfg.withDefaults()
	ctx, cancel := context.WithCancel(context.Background()) // lint:ctxroot dispatcher-owned lifetime; items carry their submitter's ctx
	d := &Dispatcher{
		cfg:    cfg,
		in:     make(chan *item, cfg.QueueDepth),
		exec:   make(chan *item),
		cancel: cancel,
	}
	d.wg.Add(1)
	go d.batchLoop()
	d.wg.Add(cfg.Workers)
	for w := 0; w < cfg.Workers; w++ {
		go d.execLoop(ctx)
	}
	// shutdown is the single joiner for every goroutine spawned above:
	// mark closed so no new Submit can send, close the admission
	// queue, and wait for the batcher to flush and the executors to
	// drain. Defined here so the goroutines' lifetime is visible at
	// their spawn site; Close runs it exactly once.
	d.shutdown = func() {
		d.mu.Lock()
		d.closed = true
		d.mu.Unlock()
		close(d.in)
		d.wg.Wait()
		d.cancel()
	}
	return d
}

// Submit admits one unit of work and blocks until it has executed (or
// until ctx is cancelled while the item still waits in queue). The
// work function receives the submitter's ctx and must honour its
// cancellation. On success the item's Timing is returned for latency
// attribution.
//
// Failure modes, all errors.Is-matchable: a pre-cancelled or
// in-queue-cancelled ctx wraps the context error; a full admission
// queue wraps ErrOverloaded; a closed dispatcher wraps ErrClosed. In
// every failure case the work function has not run and never will.
func (d *Dispatcher) Submit(ctx context.Context, run func(context.Context)) (Timing, error) {
	if err := ctx.Err(); err != nil {
		return Timing{}, fmt.Errorf("fleet: submit: %w", err)
	}
	it := &item{ctx: ctx, run: run, done: make(chan struct{})}
	it.tm.Enqueued = time.Now()

	// The RLock spans the closed check and the send so Close (which
	// takes the write lock before closing the channel) can never close
	// the queue out from under an in-flight send.
	d.mu.RLock()
	if d.closed {
		d.mu.RUnlock()
		return Timing{}, fmt.Errorf("fleet: submit: %w", ErrClosed)
	}
	select {
	case d.in <- it:
		d.mu.RUnlock()
	default:
		d.mu.RUnlock()
		d.rejected.Add(1)
		return Timing{}, fmt.Errorf("fleet: submit: %w", ErrOverloaded)
	}
	d.admitted.Add(1)

	select {
	case <-it.done:
	case <-ctx.Done():
		if it.state.CompareAndSwap(statePending, stateAbandoned) {
			// Won the race against the executor: the item is dead in
			// queue and its work function will never run.
			d.abandoned.Add(1)
			return Timing{}, fmt.Errorf("fleet: submit: abandoned in queue: %w", ctx.Err())
		}
		// An executor already claimed the item; it is running with the
		// (now cancelled) ctx and will finish promptly. Report its
		// completion rather than racing it.
		<-it.done
	}
	return it.tm, nil
}

// batchLoop accumulates admitted items and flushes by size or
// deadline. It exits when the admission queue is closed, flushing the
// tail batch and closing the executor hand-off so the pool drains.
func (d *Dispatcher) batchLoop() {
	defer d.wg.Done()
	defer close(d.exec)
	timer := time.NewTimer(d.cfg.MaxWait)
	if !timer.Stop() {
		<-timer.C
	}
	batch := make([]*item, 0, d.cfg.MaxBatch)
	for {
		if len(batch) == 0 {
			it, ok := <-d.in
			if !ok {
				return
			}
			batch = append(batch, it)
			timer.Reset(d.cfg.MaxWait)
		}
		if len(batch) < d.cfg.MaxBatch {
			select {
			case it, ok := <-d.in:
				if !ok {
					d.flush(&batch, timer)
					return
				}
				batch = append(batch, it)
				continue
			case <-timer.C:
				d.flush(&batch, nil)
				continue
			}
		}
		d.flush(&batch, timer)
	}
}

// flush stamps and hands the batch to the executors, recycling the
// batch slice. A non-nil timer is disarmed (the flush pre-empted the
// deadline).
func (d *Dispatcher) flush(batch *[]*item, timer *time.Timer) {
	if timer != nil && !timer.Stop() {
		select {
		case <-timer.C:
		default:
		}
	}
	// Count the batch when it is sealed, not after the hand-off: a
	// submitter whose item already executed must see its batch in
	// Stats.
	d.batches.Add(1)
	now := time.Now()
	for _, it := range *batch {
		it.tm.Flushed = now
		d.exec <- it
	}
	*batch = (*batch)[:0]
}

// execLoop drains the hand-off channel until the batcher closes it.
func (d *Dispatcher) execLoop(ctx context.Context) {
	defer d.wg.Done()
	for it := range d.exec {
		d.execute(ctx, it)
	}
}

// execute runs one item: the steady-state fleet dispatch path, one
// invocation per admitted frame, so it must stay allocation-free.
// Exactly one of execute (claim) and an abandoning Submit wins the
// item; execute always closes done so the submitter unblocks.
//
// lint:hotpath
func (d *Dispatcher) execute(ctx context.Context, it *item) {
	it.tm.Started = time.Now()
	if ctx.Err() == nil && it.ctx.Err() == nil &&
		it.state.CompareAndSwap(statePending, stateClaimed) {
		it.run(it.ctx)
		d.executed.Add(1)
	}
	it.tm.Finished = time.Now()
	close(it.done)
}

// Close marks the dispatcher closed, drains and completes every
// admitted item, and joins all goroutines. Submit after Close fails
// with ErrClosed. Close is idempotent and safe to call concurrently
// with Submit.
func (d *Dispatcher) Close() {
	d.once.Do(d.shutdown)
}

// Stats returns a snapshot of the dispatcher's counters.
func (d *Dispatcher) Stats() Stats {
	return Stats{
		Admitted:  d.admitted.Load(),
		Rejected:  d.rejected.Load(),
		Executed:  d.executed.Load(),
		Abandoned: d.abandoned.Load(),
		Batches:   d.batches.Load(),
	}
}

// Config returns the dispatcher's resolved configuration (defaults
// applied).
func (d *Dispatcher) Config() Config { return d.cfg }
