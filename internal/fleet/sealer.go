package fleet

import (
	"sync"
	"time"
)

// Sealer is the wall-clock half of the ledger's size-or-deadline batch
// sealing — the same discipline as the Dispatcher's frame batcher. The
// ledger itself seals deterministically on size and on simulated-time
// span; the Sealer adds a real-time liveness bound so a quiet engine
// (no frames arriving) still publishes its open batch within ~interval
// of wall time.
//
// It is deliberately decoupled from the ledger type: it just invokes
// flush on a tick (the engine passes the ledger's SealOpen), so it can
// drive any flush-shaped deadline.
type Sealer struct {
	flush func()
	tick  *time.Ticker
	stop  chan struct{}
	done  chan struct{}

	once sync.Once
	join func()
}

// NewSealer starts the sealing goroutine, invoking flush every
// interval until Close. interval <= 0 selects 50ms. flush must be safe
// to call concurrently with the owner's own flushes (ledger.SealOpen
// is).
func NewSealer(flush func(), interval time.Duration) *Sealer {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	s := &Sealer{
		flush: flush,
		tick:  time.NewTicker(interval),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	go s.loop()
	// Join evidence for the spawn above: Close stops the ticker loop,
	// waits for it to exit, then runs one final flush so the tail open
	// batch is sealed by shutdown.
	s.join = func() {
		close(s.stop)
		<-s.done
		s.tick.Stop()
		s.flush()
	}
	return s
}

func (s *Sealer) loop() {
	defer close(s.done)
	for {
		select {
		case <-s.stop:
			return
		case <-s.tick.C:
			s.flush()
		}
	}
}

// Close joins the sealing goroutine and performs a final flush.
// Idempotent.
func (s *Sealer) Close() { s.once.Do(s.join) }
