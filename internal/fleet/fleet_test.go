package fleet

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestSubmitRunsWorkAndStampsTiming(t *testing.T) {
	d := NewDispatcher(Config{Workers: 1, MaxWait: time.Millisecond})
	defer d.Close()
	ran := false
	tm, err := d.Submit(context.Background(), func(context.Context) { ran = true })
	if err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Fatal("work function did not run")
	}
	if tm.Enqueued.After(tm.Flushed) || tm.Flushed.After(tm.Started) || tm.Started.After(tm.Finished) {
		t.Fatalf("timing not monotonic: %+v", tm)
	}
	if tm.QueueWait() < 0 || tm.Run() < 0 {
		t.Fatalf("negative durations: wait=%v run=%v", tm.QueueWait(), tm.Run())
	}
	st := d.Stats()
	if st.Admitted != 1 || st.Executed != 1 || st.Rejected != 0 || st.Abandoned != 0 {
		t.Fatalf("stats %+v", st)
	}
}

func TestBatchFlushesBySize(t *testing.T) {
	// MaxWait is far beyond the test's patience: the only way the
	// three submissions can complete is a size-triggered flush.
	d := NewDispatcher(Config{Workers: 2, QueueDepth: 8, MaxBatch: 3, MaxWait: time.Hour})
	defer d.Close()
	var wg sync.WaitGroup
	var executed atomic.Int32
	wg.Add(3)
	for i := 0; i < 3; i++ {
		go func() {
			defer wg.Done()
			if _, err := d.Submit(context.Background(), func(context.Context) { executed.Add(1) }); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("size-of-3 batch never flushed (deadline flush is an hour away)")
	}
	if executed.Load() != 3 {
		t.Fatalf("executed %d, want 3", executed.Load())
	}
	if st := d.Stats(); st.Batches != 1 {
		t.Fatalf("batches %d, want exactly 1 (one full batch)", st.Batches)
	}
}

func TestBatchFlushesByDeadline(t *testing.T) {
	const wait = 50 * time.Millisecond
	// MaxBatch is unreachably large: only the deadline can flush.
	d := NewDispatcher(Config{Workers: 1, QueueDepth: 8, MaxBatch: 1000, MaxWait: wait})
	defer d.Close()
	start := time.Now()
	tm, err := d.Submit(context.Background(), func(context.Context) {})
	if err != nil {
		t.Fatal(err)
	}
	if held := tm.Flushed.Sub(start); held < wait/2 {
		t.Fatalf("flushed after %v, want the deadline hold of ~%v", held, wait)
	}
	if st := d.Stats(); st.Batches != 1 || st.Executed != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// blockedDispatcher builds a single-worker dispatcher whose one
// executor is parked inside a work function until gate is closed.
func blockedDispatcher(t *testing.T, depth int) (d *Dispatcher, gate chan struct{}, blockerDone chan error) {
	t.Helper()
	d = NewDispatcher(Config{Workers: 1, QueueDepth: depth, MaxBatch: 1, MaxWait: time.Millisecond})
	gate = make(chan struct{})
	started := make(chan struct{})
	blockerDone = make(chan error, 1)
	go func() {
		_, err := d.Submit(context.Background(), func(context.Context) {
			close(started)
			<-gate
		})
		blockerDone <- err
	}()
	<-started
	return d, gate, blockerDone
}

func TestSubmitOverloadedWhenQueueFull(t *testing.T) {
	d, gate, blockerDone := blockedDispatcher(t, 1)
	// With the executor parked, at most three more submissions can be
	// in flight (one blocked in the batcher's flush, one batched, one
	// queued); sixteen concurrent submitters must see rejections.
	const submitters = 16
	var rejected, accepted atomic.Int32
	var wg sync.WaitGroup
	wg.Add(submitters)
	for i := 0; i < submitters; i++ {
		go func() {
			defer wg.Done()
			_, err := d.Submit(context.Background(), func(context.Context) {})
			switch {
			case err == nil:
				accepted.Add(1)
			case errors.Is(err, ErrOverloaded):
				rejected.Add(1)
			default:
				t.Errorf("unexpected submit error: %v", err)
			}
		}()
	}
	// Rejections are immediate; wait for them to accumulate before
	// releasing the executor so the queue is genuinely full.
	for deadline := time.Now().Add(5 * time.Second); rejected.Load() == 0; {
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	wg.Wait()
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	if rejected.Load() == 0 {
		t.Fatal("no submission was rejected with ErrOverloaded")
	}
	if got := rejected.Load() + accepted.Load(); got != submitters {
		t.Fatalf("accounted for %d of %d submitters", got, submitters)
	}
	st := d.Stats()
	if st.Rejected != uint64(rejected.Load()) {
		t.Fatalf("stats rejected %d, observed %d", st.Rejected, rejected.Load())
	}
	d.Close()
	if st := d.Stats(); st.Admitted != st.Executed+st.Abandoned {
		t.Fatalf("admitted %d != executed %d + abandoned %d", st.Admitted, st.Executed, st.Abandoned)
	}
}

func TestSubmitPreCancelledContextNeverAdmits(t *testing.T) {
	d := NewDispatcher(Config{Workers: 1})
	defer d.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	ran := false
	_, err := d.Submit(ctx, func(context.Context) { ran = true })
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran {
		t.Fatal("work function ran despite pre-cancelled ctx")
	}
	if st := d.Stats(); st.Admitted != 0 || st.Rejected != 0 {
		t.Fatalf("pre-cancelled submit touched the queue: %+v", st)
	}
}

func TestSubmitAbandonedInQueueOnCancel(t *testing.T) {
	d, gate, blockerDone := blockedDispatcher(t, 4)
	ctx, cancel := context.WithCancel(context.Background())
	ran := make(chan struct{}, 1)
	errc := make(chan error, 1)
	go func() {
		_, err := d.Submit(ctx, func(context.Context) { ran <- struct{}{} })
		errc <- err
	}()
	// Let the submission be admitted, then cancel while it waits
	// behind the parked executor.
	for deadline := time.Now().Add(5 * time.Second); d.Stats().Admitted < 2; {
		if time.Now().After(deadline) {
			t.Fatal("second submission never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	err := <-errc
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	close(gate)
	if err := <-blockerDone; err != nil {
		t.Fatalf("blocker: %v", err)
	}
	d.Close()
	select {
	case <-ran:
		t.Fatal("abandoned work function ran")
	default:
	}
	if st := d.Stats(); st.Abandoned != 1 {
		t.Fatalf("abandoned %d, want 1", st.Abandoned)
	}
}

func TestCloseDrainsAdmittedWorkThenRejects(t *testing.T) {
	d := NewDispatcher(Config{Workers: 2, QueueDepth: 16, MaxBatch: 4, MaxWait: time.Millisecond})
	var executed atomic.Int32
	var wg sync.WaitGroup
	const n = 10
	wg.Add(n)
	for i := 0; i < n; i++ {
		go func() {
			defer wg.Done()
			if _, err := d.Submit(context.Background(), func(context.Context) { executed.Add(1) }); err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	d.Close()
	d.Close() // idempotent
	if executed.Load() != n {
		t.Fatalf("executed %d, want %d", executed.Load(), n)
	}
	_, err := d.Submit(context.Background(), func(context.Context) {})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("post-close submit err = %v, want ErrClosed", err)
	}
}

func TestSentinelsAreDistinct(t *testing.T) {
	for _, tc := range []struct {
		name string
		err  error
	}{
		{"ErrOverloaded", ErrOverloaded},
		{"ErrClosed", ErrClosed},
		{"ErrStreamClosed", ErrStreamClosed},
	} {
		for _, other := range []error{ErrOverloaded, ErrClosed, ErrStreamClosed} {
			want := tc.err == other
			if got := errors.Is(tc.err, other); got != want {
				t.Errorf("errors.Is(%s, %v) = %v, want %v", tc.name, other, got, want)
			}
		}
	}
}

func TestConcurrentSubmittersAllComplete(t *testing.T) {
	d := NewDispatcher(Config{Workers: 4, QueueDepth: 256, MaxBatch: 8, MaxWait: 100 * time.Microsecond})
	defer d.Close()
	const streams = 8
	const frames = 50
	var executed atomic.Int32
	var wg sync.WaitGroup
	wg.Add(streams)
	for s := 0; s < streams; s++ {
		go func() {
			defer wg.Done()
			for f := 0; f < frames; f++ {
				if _, err := d.Submit(context.Background(), func(context.Context) { executed.Add(1) }); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if executed.Load() != streams*frames {
		t.Fatalf("executed %d, want %d", executed.Load(), streams*frames)
	}
	st := d.Stats()
	if st.Admitted != streams*frames || st.Executed != streams*frames {
		t.Fatalf("stats %+v", st)
	}
	if st.Batches == 0 || st.Batches > st.Admitted {
		t.Fatalf("implausible batch count %d for %d items", st.Batches, st.Admitted)
	}
}

func TestConfigDefaults(t *testing.T) {
	d := NewDispatcher(Config{})
	defer d.Close()
	cfg := d.Config()
	if cfg.Workers <= 0 || cfg.QueueDepth != 2*cfg.Workers || cfg.MaxBatch != 4 || cfg.MaxWait != 2*time.Millisecond {
		t.Fatalf("defaults %+v", cfg)
	}
}
