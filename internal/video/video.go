// Package video models the capture front end of the system (the
// "data capture" block of the static partition): camera timing,
// YCbCr 4:2:2 line packing (the format video DMA engines move), and
// DMA descriptor sizing for frames and detection results.
package video

import (
	"fmt"

	"advdet/internal/img"
)

// Format identifies a pixel packing.
type Format int

const (
	// RGB24 is 3 bytes per pixel, interleaved.
	RGB24 Format = iota
	// YUYV is YCbCr 4:2:2 packed Y0 Cb Y1 Cr — 2 bytes per pixel,
	// the format the capture pipeline writes to DDR.
	YUYV
	// Gray8 is 1 byte per pixel (luma only), what the HOG pipelines
	// actually consume.
	Gray8
)

func (f Format) String() string {
	switch f {
	case RGB24:
		return "rgb24"
	case YUYV:
		return "yuyv"
	case Gray8:
		return "gray8"
	}
	return "invalid"
}

// BytesPerPixelx2 returns bytes per two horizontal pixels (4:2:2
// packs chroma across pixel pairs, so the natural unit is a pair).
func (f Format) BytesPerPixelx2() int {
	switch f {
	case RGB24:
		return 6
	case YUYV:
		return 4
	case Gray8:
		return 2
	default:
		// lint:invariant PixelFormat is a closed enum; an unknown format is a missed case
		panic(fmt.Sprintf("video: invalid format %d", f))
	}
}

// FrameBytes returns the DMA payload for a w x h frame. Width must be
// even for YUYV (4:2:2 pairs); odd widths are rounded up as the
// hardware pads the line.
func FrameBytes(w, h int, f Format) int {
	pairs := (w + 1) / 2
	return pairs * f.BytesPerPixelx2() * h
}

// PackYUYV converts an RGB frame to packed 4:2:2: chroma is averaged
// over each horizontal pixel pair, as the capture pipeline's chroma
// resampler does.
func PackYUYV(m *img.RGB) []byte {
	c := img.RGBToYCbCr(m)
	pairs := (m.W + 1) / 2
	out := make([]byte, pairs*4*m.H)
	for y := 0; y < m.H; y++ {
		for px := 0; px < pairs; px++ {
			x0 := 2 * px
			x1 := x0 + 1
			if x1 >= m.W {
				x1 = x0 // duplicate last column on odd widths
			}
			i0, i1 := y*m.W+x0, y*m.W+x1
			cb := (int(c.Cb[i0]) + int(c.Cb[i1]) + 1) / 2
			cr := (int(c.Cr[i0]) + int(c.Cr[i1]) + 1) / 2
			o := (y*pairs + px) * 4
			out[o] = c.Y[i0]
			out[o+1] = uint8(cb)
			out[o+2] = c.Y[i1]
			out[o+3] = uint8(cr)
		}
	}
	return out
}

// UnpackYUYV reconstructs a planar YCbCr frame from packed 4:2:2
// (chroma replicated across the pair).
func UnpackYUYV(data []byte, w, h int) (*img.YCbCr, error) {
	pairs := (w + 1) / 2
	if len(data) != pairs*4*h {
		return nil, fmt.Errorf("video: payload %d bytes, want %d for %dx%d YUYV",
			len(data), pairs*4*h, w, h)
	}
	out := img.NewYCbCr(w, h)
	for y := 0; y < h; y++ {
		for px := 0; px < pairs; px++ {
			o := (y*pairs + px) * 4
			x0 := 2 * px
			i0 := y*w + x0
			out.Y[i0] = data[o]
			out.Cb[i0] = data[o+1]
			out.Cr[i0] = data[o+3]
			if x0+1 < w {
				out.Y[i0+1] = data[o+2]
				out.Cb[i0+1] = data[o+1]
				out.Cr[i0+1] = data[o+3]
			}
		}
	}
	return out, nil
}

// Camera models the sensor's timing: active resolution plus blanking
// give the pixel clock required for a frame rate.
type Camera struct {
	W, H int
	FPS  int
	// HBlank and VBlank are blanking overheads as fractions of the
	// active dimensions (typical HDTV timing ≈ 1.1 x 1.05).
	HBlank, VBlank float64
}

// NewHDTVCamera returns the paper's source: 1920x1080 at 50 fps.
func NewHDTVCamera() Camera {
	return Camera{W: 1920, H: 1080, FPS: 50, HBlank: 0.1, VBlank: 0.05}
}

// PixelClockHz returns the pixel clock the camera link must sustain.
func (c Camera) PixelClockHz() float64 {
	total := float64(c.W) * (1 + c.HBlank) * float64(c.H) * (1 + c.VBlank)
	return total * float64(c.FPS)
}

// LinePeriodNS returns the duration of one total line (active +
// horizontal blanking) in nanoseconds.
func (c Camera) LinePeriodNS() float64 {
	lineClocks := float64(c.W) * (1 + c.HBlank)
	return lineClocks / c.PixelClockHz() * 1e9
}

// FramePeriodMS returns the frame period in milliseconds.
func (c Camera) FramePeriodMS() float64 { return 1000 / float64(c.FPS) }

// BandwidthMBs returns the DDR write bandwidth the capture DMA needs
// for the given format.
func (c Camera) BandwidthMBs(f Format) float64 {
	return float64(FrameBytes(c.W, c.H, f)) * float64(c.FPS) / 1e6
}
