package video

import (
	"math"
	"testing"
	"testing/quick"

	"advdet/internal/img"
	"advdet/internal/synth"
)

func TestFormatStrings(t *testing.T) {
	if RGB24.String() != "rgb24" || YUYV.String() != "yuyv" || Gray8.String() != "gray8" {
		t.Fatal("format strings wrong")
	}
	if Format(99).String() != "invalid" {
		t.Fatal("invalid format string")
	}
}

func TestFrameBytes(t *testing.T) {
	cases := []struct {
		w, h int
		f    Format
		want int
	}{
		{1920, 1080, YUYV, 1920 * 1080 * 2},
		{1920, 1080, RGB24, 1920 * 1080 * 3},
		{1920, 1080, Gray8, 1920 * 1080},
		{7, 2, YUYV, 4 * 4 * 2}, // odd width padded to 4 pairs
	}
	for _, c := range cases {
		if got := FrameBytes(c.w, c.h, c.f); got != c.want {
			t.Errorf("FrameBytes(%d,%d,%v) = %d, want %d", c.w, c.h, c.f, got, c.want)
		}
	}
}

func TestPackUnpackYUYVRoundTrip(t *testing.T) {
	sc := synth.RenderScene(synth.NewRNG(3), synth.DefaultSceneConfig(64, 36, synth.Dusk))
	packed := PackYUYV(sc.Frame)
	if len(packed) != FrameBytes(64, 36, YUYV) {
		t.Fatalf("payload %d bytes", len(packed))
	}
	c, err := UnpackYUYV(packed, 64, 36)
	if err != nil {
		t.Fatal(err)
	}
	// Luma is preserved exactly; chroma within pair-averaging error.
	orig := img.RGBToYCbCr(sc.Frame)
	for i := range orig.Y {
		if c.Y[i] != orig.Y[i] {
			t.Fatalf("luma changed at %d", i)
		}
	}
	var maxErr int
	for i := range orig.Cb {
		if d := int(c.Cb[i]) - int(orig.Cb[i]); d > maxErr {
			maxErr = d
		}
	}
	if maxErr > 40 {
		t.Fatalf("chroma error %d too large", maxErr)
	}
}

func TestUnpackYUYVBadSize(t *testing.T) {
	if _, err := UnpackYUYV(make([]byte, 10), 64, 36); err == nil {
		t.Fatal("bad payload size accepted")
	}
}

func TestPackYUYVOddWidth(t *testing.T) {
	m := img.NewRGB(7, 3)
	m.Fill(100, 50, 25)
	packed := PackYUYV(m)
	if len(packed) != FrameBytes(7, 3, YUYV) {
		t.Fatalf("odd-width payload %d bytes", len(packed))
	}
	if _, err := UnpackYUYV(packed, 7, 3); err != nil {
		t.Fatal(err)
	}
}

func TestPackYUYVProperty(t *testing.T) {
	f := func(seed uint64) bool {
		rng := synth.NewRNG(seed)
		m := img.NewRGB(16, 8)
		for i := range m.Pix {
			m.Pix[i] = uint8(rng.Intn(256))
		}
		c, err := UnpackYUYV(PackYUYV(m), 16, 8)
		if err != nil {
			return false
		}
		orig := img.RGBToYCbCr(m)
		for i := range orig.Y {
			if c.Y[i] != orig.Y[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHDTVCameraTiming(t *testing.T) {
	cam := NewHDTVCamera()
	if cam.FramePeriodMS() != 20 {
		t.Fatalf("frame period %v ms", cam.FramePeriodMS())
	}
	// 1920*1.1 * 1080*1.05 * 50 ≈ 120 MHz pixel clock.
	pc := cam.PixelClockHz()
	if pc < 115e6 || pc > 125e6 {
		t.Fatalf("pixel clock %v", pc)
	}
	if lp := cam.LinePeriodNS(); lp < 15_000 || lp > 20_000 {
		t.Fatalf("line period %v ns", lp)
	}
}

func TestCameraBandwidth(t *testing.T) {
	cam := NewHDTVCamera()
	// 1080p50 YUYV = 2 bytes/px: ~207 MB/s — comfortably within one
	// HP port (~1066 MB/s), which is why Fig. 6 shares HP ports
	// between capture and results.
	bw := cam.BandwidthMBs(YUYV)
	if math.Abs(bw-207.36) > 0.5 {
		t.Fatalf("YUYV bandwidth %v MB/s", bw)
	}
	if rgb := cam.BandwidthMBs(RGB24); rgb <= bw {
		t.Fatal("RGB24 should need more bandwidth than YUYV")
	}
}
