package haar

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"advdet/internal/img"
)

// Stump is one weak learner: sign(polarity * (feature - threshold)).
type Stump struct {
	Feature   Feature
	Threshold float64
	Polarity  float64 // +1 or -1
	Alpha     float64 // AdaBoost weight
}

// Classifier is a boosted ensemble of decision stumps over Haar
// features on a fixed winW x winH gray window.
type Classifier struct {
	WinW, WinH int
	Stumps     []Stump
	// Bias shifts the decision threshold (sum alpha_i h_i(x) > Bias).
	Bias float64
}

// TrainOptions configures boosting.
type TrainOptions struct {
	Rounds int // number of stumps (default 50)
	// FeatureStep controls the candidate-pool density (default 4).
	FeatureStep int
}

// DefaultTrainOptions returns a 50-round, step-4 configuration.
func DefaultTrainOptions() TrainOptions { return TrainOptions{Rounds: 50, FeatureStep: 4} }

// Train runs discrete AdaBoost over the labeled windows. Labels are
// +1/-1. All windows must share the classifier's geometry.
func Train(pos, neg []*img.Gray, o TrainOptions) (*Classifier, error) {
	if len(pos) == 0 || len(neg) == 0 {
		return nil, fmt.Errorf("haar: need both positive and negative windows")
	}
	winW, winH := pos[0].W, pos[0].H
	if o.Rounds <= 0 {
		o.Rounds = 50
	}
	if o.FeatureStep <= 0 {
		o.FeatureStep = 4
	}

	type sample struct {
		it    *Integral
		label float64
	}
	var samples []sample
	for _, p := range pos {
		if p.W != winW || p.H != winH {
			return nil, fmt.Errorf("haar: window size %dx%d, want %dx%d", p.W, p.H, winW, winH)
		}
		samples = append(samples, sample{NewIntegral(p), 1})
	}
	for _, n := range neg {
		if n.W != winW || n.H != winH {
			return nil, fmt.Errorf("haar: window size %dx%d, want %dx%d", n.W, n.H, winW, winH)
		}
		samples = append(samples, sample{NewIntegral(n), -1})
	}

	pool := GenerateFeatures(winW, winH, o.FeatureStep)
	if len(pool) == 0 {
		return nil, fmt.Errorf("haar: empty feature pool for %dx%d", winW, winH)
	}

	// Precompute all feature responses: pool x samples.
	n := len(samples)
	resp := make([][]float64, len(pool))
	for fi, f := range pool {
		row := make([]float64, n)
		for si, s := range samples {
			row[si] = f.Eval(s.it, 0, 0)
		}
		resp[fi] = row
	}

	w := make([]float64, n)
	for i := range w {
		w[i] = 1 / float64(n)
	}

	c := &Classifier{WinW: winW, WinH: winH}
	order := make([]int, n)
	for round := 0; round < o.Rounds; round++ {
		bestErr := math.Inf(1)
		var best Stump
		for fi := range pool {
			row := resp[fi]
			// Sort samples by response to sweep thresholds.
			for i := range order {
				order[i] = i
			}
			sort.Slice(order, func(a, b int) bool { return row[order[a]] < row[order[b]] })
			// total positive/negative weight
			var wPos, wNeg float64
			for i, s := range samples {
				if s.label > 0 {
					wPos += w[i]
				} else {
					wNeg += w[i]
				}
			}
			// Sweep: err for threshold after position k with polarity
			// +1 means "predict + above threshold".
			// below holds weights of samples with response <= current.
			var belowPos, belowNeg float64
			for k := 0; k < n; k++ {
				i := order[k]
				if samples[i].label > 0 {
					belowPos += w[i]
				} else {
					belowNeg += w[i]
				}
				if k+1 < n && resp[fi][order[k+1]] == resp[fi][i] {
					continue // only split between distinct values
				}
				// polarity +1: positives above -> errors are positives
				// below + negatives above.
				errPlus := belowPos + (wNeg - belowNeg)
				errMinus := belowNeg + (wPos - belowPos)
				th := row[i]
				if k+1 < n {
					th = (row[i] + row[order[k+1]]) / 2
				}
				if errPlus < bestErr {
					bestErr = errPlus
					best = Stump{Feature: pool[fi], Threshold: th, Polarity: 1}
				}
				if errMinus < bestErr {
					bestErr = errMinus
					best = Stump{Feature: pool[fi], Threshold: th, Polarity: -1}
				}
			}
		}
		const eps = 1e-10
		if bestErr >= 0.5 {
			break // no weak learner better than chance
		}
		if bestErr < eps {
			bestErr = eps
		}
		best.Alpha = 0.5 * math.Log((1-bestErr)/bestErr)
		c.Stumps = append(c.Stumps, best)

		// Reweight.
		var sum float64
		for i, s := range samples {
			pred := best.predictRaw(resp[featureIndex(pool, best.Feature)][i])
			w[i] *= math.Exp(-best.Alpha * s.label * pred)
			sum += w[i]
		}
		for i := range w {
			w[i] /= sum
		}
		if bestErr <= eps {
			break // perfect stump; further rounds are redundant
		}
	}
	if len(c.Stumps) == 0 {
		return nil, fmt.Errorf("haar: boosting found no useful stump")
	}
	return c, nil
}

// featureIndex locates f in the pool (training-time helper).
func featureIndex(pool []Feature, f Feature) int {
	for i, p := range pool {
		if p == f {
			return i
		}
	}
	// lint:invariant the pool is the training set the feature was drawn from; absence is a training-loop bug
	panic("haar: feature not in pool")
}

func (s Stump) predictRaw(resp float64) float64 {
	if s.Polarity*(resp-s.Threshold) > 0 {
		return 1
	}
	return -1
}

// Score returns the ensemble margin of the window at (ox, oy) on an
// integral image.
func (c *Classifier) Score(it *Integral, ox, oy int) float64 {
	var s float64
	for _, st := range c.Stumps {
		s += st.Alpha * st.predictRaw(st.Feature.Eval(it, ox, oy))
	}
	return s - c.Bias
}

// Classify evaluates a single window image.
func (c *Classifier) Classify(g *img.Gray) bool {
	if g.W != c.WinW || g.H != c.WinH {
		g = img.ResizeGray(g, c.WinW, c.WinH)
	}
	return c.Score(NewIntegral(g), 0, 0) > 0
}

// Window is one accepted scan position.
type Window struct {
	X, Y  int
	Score float64
}

// Scan slides the classifier over g with the given stride, returning
// every window scoring above threshold. One integral image serves all
// positions — the property that made Viola-Jones-style cascades fast
// enough for real time.
func (c *Classifier) Scan(g *img.Gray, stride int, threshold float64) []Window {
	if stride < 1 {
		stride = 1
	}
	if g.W < c.WinW || g.H < c.WinH {
		return nil
	}
	it := NewIntegral(g)
	var out []Window
	for y := 0; y+c.WinH <= g.H; y += stride {
		for x := 0; x+c.WinW <= g.W; x += stride {
			if s := c.Score(it, x, y); s > threshold {
				out = append(out, Window{X: x, Y: y, Score: s})
			}
		}
	}
	return out
}

type classifierFile struct {
	WinW, WinH int
	Stumps     []Stump
	Bias       float64
}

// Encode writes the classifier to w.
func (c *Classifier) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(classifierFile{c.WinW, c.WinH, c.Stumps, c.Bias})
}

// Decode reads a classifier from r.
func Decode(r io.Reader) (*Classifier, error) {
	var f classifierFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("haar: decode: %w", err)
	}
	return &Classifier{WinW: f.WinW, WinH: f.WinH, Stumps: f.Stumps, Bias: f.Bias}, nil
}

// Save writes the classifier to the named file.
func (c *Classifier) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := c.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a classifier from the named file.
func Load(path string) (*Classifier, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}
