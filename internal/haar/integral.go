// Package haar implements Haar-like features over integral images and
// an AdaBoost classifier of decision stumps — the VeDANt-style
// nighttime detection baseline of Satzoda & Trivedi (paper reference
// [11]), which trains "AdaBoost classifiers with Haar-like features
// using gray-level input images". The benchmark harness compares it
// against the paper's DBN dark pipeline.
package haar

import "advdet/internal/img"

// Integral is a summed-area table: Integral[y][x] holds the sum of all
// pixels strictly above and left of (x, y), so rectangle sums are four
// lookups.
type Integral struct {
	W, H int
	sum  []int64 // (W+1) x (H+1)
}

// NewIntegral builds the summed-area table of g.
func NewIntegral(g *img.Gray) *Integral {
	it := &Integral{}
	it.Compute(g)
	return it
}

// Compute rebuilds the table for g in place, reusing the sum buffer
// when it is large enough — the scan prefilter recomputes one
// integral per pyramid level per frame, and reuse keeps that
// steady-state allocation-free.
func (it *Integral) Compute(g *img.Gray) {
	w, h := g.W, g.H
	n := (w + 1) * (h + 1)
	if cap(it.sum) < n {
		it.sum = make([]int64, n) // lint:alloc grows only until the largest level is seen
	}
	it.W, it.H = w, h
	it.sum = it.sum[:n]
	stride := w + 1
	for x := 0; x <= w; x++ {
		it.sum[x] = 0
	}
	for y := 0; y < h; y++ {
		it.sum[(y+1)*stride] = 0
		var rowSum int64
		for x := 0; x < w; x++ {
			rowSum += int64(g.Pix[y*w+x])
			it.sum[(y+1)*stride+x+1] = it.sum[y*stride+x+1] + rowSum
		}
	}
}

// Sum returns the pixel sum over the half-open rectangle
// [x0,x1) x [y0,y1). Coordinates are clamped to the image.
func (it *Integral) Sum(x0, y0, x1, y1 int) int64 {
	clamp := func(v, hi int) int {
		if v < 0 {
			return 0
		}
		if v > hi {
			return hi
		}
		return v
	}
	x0, x1 = clamp(x0, it.W), clamp(x1, it.W)
	y0, y1 = clamp(y0, it.H), clamp(y1, it.H)
	if x1 <= x0 || y1 <= y0 {
		return 0
	}
	s := it.W + 1
	return it.sum[y1*s+x1] - it.sum[y0*s+x1] - it.sum[y1*s+x0] + it.sum[y0*s+x0]
}

// Mean returns the mean intensity over the rectangle.
func (it *Integral) Mean(x0, y0, x1, y1 int) float64 {
	area := (x1 - x0) * (y1 - y0)
	if area <= 0 {
		return 0
	}
	return float64(it.Sum(x0, y0, x1, y1)) / float64(area)
}
