package haar

import (
	"testing"

	"advdet/internal/img"
	"advdet/internal/synth"
)

// cascadeData builds the blob-vs-clutter task the night baseline
// faces.
func cascadeData(seed uint64, n int) (pos, neg []*img.Gray) {
	rng := synth.NewRNG(seed)
	for i := 0; i < n; i++ {
		p := img.NewGray(16, 16)
		cx, cy := 6+rng.Intn(4), 6+rng.Intn(4)
		r := 2 + rng.Intn(3)
		img.FillRectGray(p, img.Rect{X0: cx - r, Y0: cy - r, X1: cx + r, Y1: cy + r}, 230)
		pos = append(pos, p)

		q := img.NewGray(16, 16)
		switch rng.Intn(4) {
		case 0:
			y := rng.Intn(16)
			img.FillRectGray(q, img.Rect{X0: 0, Y0: y, X1: 16, Y1: y + 2}, 230)
		case 1:
			for k := 0; k < 8; k++ {
				q.Set(rng.Intn(16), rng.Intn(16), 230)
			}
		case 2:
			// Hard negative: an off-center partial blob clipped at the
			// border — cheap stages confuse it with a centered blob,
			// so the cascade needs its deeper stages.
			e := rng.Intn(4)
			var rc img.Rect
			switch e {
			case 0:
				rc = img.Rect{X0: -2, Y0: rng.Intn(12), X1: 3, Y1: rng.Intn(12) + 5}
			case 1:
				rc = img.Rect{X0: 13, Y0: rng.Intn(12), X1: 18, Y1: rng.Intn(12) + 5}
			case 2:
				rc = img.Rect{X0: rng.Intn(12), Y0: -2, X1: rng.Intn(12) + 5, Y1: 3}
			default:
				rc = img.Rect{X0: rng.Intn(12), Y0: 13, X1: rng.Intn(12) + 5, Y1: 18}
			}
			img.FillRectGray(q, rc, 230)
		default:
			// empty
		}
		neg = append(neg, q)
	}
	return pos, neg
}

func TestTrainCascadeAccuracyAndRecall(t *testing.T) {
	pos, neg := cascadeData(1, 50)
	c, err := TrainCascade(pos, neg, DefaultCascadeOptions())
	if err != nil {
		t.Fatal(err)
	}
	testPos, testNeg := cascadeData(2, 40)
	tp, tn := 0, 0
	for _, p := range testPos {
		if c.Classify(p) {
			tp++
		}
	}
	for _, n := range testNeg {
		if !c.Classify(n) {
			tn++
		}
	}
	// The cascade is recall-calibrated: positives must rarely be lost.
	if tp < 36 {
		t.Fatalf("cascade recall %d/40", tp)
	}
	if tp+tn < 68 {
		t.Fatalf("cascade accuracy %d/80", tp+tn)
	}
}

func TestCascadeEarlyRejectSavesWork(t *testing.T) {
	// TrainCascade terminates when a stage rejects every training
	// negative (legitimate on separable data), so assemble a
	// two-stage cascade manually to verify the early-reject
	// accounting.
	pos, neg := cascadeData(3, 50)
	s1, err := Train(pos, neg, TrainOptions{Rounds: 4, FeatureStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Train(pos, neg, TrainOptions{Rounds: 12, FeatureStep: 4})
	if err != nil {
		t.Fatal(err)
	}
	c := &Cascade{Stages: []*Classifier{s1, s2}}

	_, negTest := cascadeData(4, 60)
	avg := c.EvalStats(negTest)
	if avg >= 2 {
		t.Fatalf("negatives evaluate %.2f stages on average; no early reject", avg)
	}
	// Positives traverse both stages.
	posTest, _ := cascadeData(5, 30)
	if avg := c.EvalStats(posTest); avg < 1.5 {
		t.Fatalf("positives average only %.2f stages", avg)
	}
}

func TestCascadeStageRoundsHonored(t *testing.T) {
	pos, neg := cascadeData(5, 40)
	o := DefaultCascadeOptions()
	o.StageRounds = []int{2, 6}
	c, err := TrainCascade(pos, neg, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Stages) > 2 {
		t.Fatalf("%d stages trained, want <= 2", len(c.Stages))
	}
	if len(c.Stages[0].Stumps) > 2 {
		t.Fatalf("stage 0 has %d stumps, want <= 2", len(c.Stages[0].Stumps))
	}
}

func TestCascadeErrors(t *testing.T) {
	if _, err := TrainCascade(nil, nil, DefaultCascadeOptions()); err == nil {
		t.Fatal("empty cascade training accepted")
	}
}

func TestCascadeEvalStatsEmpty(t *testing.T) {
	c := &Cascade{Stages: []*Classifier{{WinW: 8, WinH: 8}}}
	if c.EvalStats(nil) != 0 {
		t.Fatal("empty EvalStats should be 0")
	}
}
