package haar

import (
	"fmt"

	"advdet/internal/img"
)

// Cascade is an attentional cascade of boosted stages, the structure
// Viola-Jones detectors (and the VeDANt-style classifiers of the
// paper's related work) use in practice: early, cheap stages reject
// the overwhelming majority of background windows so the expensive
// stages run only on promising ones. Each stage's bias is calibrated
// to pass (at least) a target fraction of the training positives.
type Cascade struct {
	Stages []*Classifier
}

// CascadeOptions configures training.
type CascadeOptions struct {
	// StageRounds lists the boosting rounds per stage, cheapest
	// first (default {4, 10, 30}).
	StageRounds []int
	// MinStageRecall is the fraction of training positives every
	// stage must pass (default 0.99).
	MinStageRecall float64
	// FeatureStep is the candidate-pool density (default 4).
	FeatureStep int
}

// DefaultCascadeOptions returns a three-stage 4/10/30 configuration.
func DefaultCascadeOptions() CascadeOptions {
	return CascadeOptions{StageRounds: []int{4, 10, 30}, MinStageRecall: 0.99, FeatureStep: 4}
}

// TrainCascade builds the cascade: each stage is trained on the
// positives plus the negatives surviving the previous stages, then
// its bias is lowered until the stage passes MinStageRecall of the
// positives.
func TrainCascade(pos, neg []*img.Gray, o CascadeOptions) (*Cascade, error) {
	if len(o.StageRounds) == 0 {
		o.StageRounds = []int{4, 10, 30}
	}
	if o.MinStageRecall <= 0 || o.MinStageRecall > 1 {
		o.MinStageRecall = 0.99
	}
	if o.FeatureStep <= 0 {
		o.FeatureStep = 4
	}
	c := &Cascade{}
	curNeg := neg
	for si, rounds := range o.StageRounds {
		if len(curNeg) == 0 {
			break // earlier stages already reject every training negative
		}
		stage, err := Train(pos, curNeg, TrainOptions{Rounds: rounds, FeatureStep: o.FeatureStep})
		if err != nil {
			return nil, fmt.Errorf("haar: cascade stage %d: %w", si, err)
		}
		calibrateStage(stage, pos, o.MinStageRecall)
		c.Stages = append(c.Stages, stage)
		// Keep only the negatives this stage passes (false positives)
		// as the next stage's training set.
		var survivors []*img.Gray
		for _, n := range curNeg {
			if stage.Classify(n) {
				survivors = append(survivors, n)
			}
		}
		curNeg = survivors
	}
	if len(c.Stages) == 0 {
		return nil, fmt.Errorf("haar: cascade trained no stages")
	}
	return c, nil
}

// calibrateStage lowers the stage bias until at least minRecall of
// the positives pass.
func calibrateStage(s *Classifier, pos []*img.Gray, minRecall float64) {
	scores := make([]float64, 0, len(pos))
	for _, p := range pos {
		g := p
		if g.W != s.WinW || g.H != s.WinH {
			g = img.ResizeGray(g, s.WinW, s.WinH)
		}
		scores = append(scores, s.Score(NewIntegral(g), 0, 0)+s.Bias) // raw ensemble sum
	}
	// Choose the bias as the score quantile that keeps minRecall of
	// positives above it (selection sort of the needed order statistic
	// keeps this dependency-free).
	k := int(float64(len(scores)) * (1 - minRecall))
	if k >= len(scores) {
		k = len(scores) - 1
	}
	for i := 0; i <= k; i++ {
		min := i
		for j := i + 1; j < len(scores); j++ {
			if scores[j] < scores[min] {
				min = j
			}
		}
		scores[i], scores[min] = scores[min], scores[i]
	}
	// Margin check is "> 0" downstream, so sit the bias just below the
	// k-th lowest positive score.
	s.Bias = scores[k] - 1e-9
}

// Classify runs the window through all stages; any rejection is
// final.
func (c *Cascade) Classify(g *img.Gray) bool {
	for _, s := range c.Stages {
		if !s.Classify(g) {
			return false
		}
	}
	return true
}

// Window returns the training window size the cascade's stages
// evaluate at. All stages share it (TrainCascade trains every stage
// on the same crops).
func (c *Cascade) Window() (w, h int) {
	if len(c.Stages) == 0 {
		return 0, 0
	}
	return c.Stages[0].WinW, c.Stages[0].WinH
}

// AcceptAt runs the cascade at window offset (ox, oy) of a
// precomputed integral image without cropping or resizing — the form
// the scan prefilter needs, where one integral per pyramid level
// serves every window on the scan lattice. Any stage rejection is
// final.
//
// lint:hotpath
func (c *Cascade) AcceptAt(it *Integral, ox, oy int) bool {
	for _, s := range c.Stages {
		if s.Score(it, ox, oy) <= 0 {
			return false
		}
	}
	return true
}

// EvalStats reports the average number of stages evaluated per window
// over a set — the work-saving the cascade exists for.
func (c *Cascade) EvalStats(windows []*img.Gray) float64 {
	if len(windows) == 0 {
		return 0
	}
	total := 0
	for _, g := range windows {
		for si, s := range c.Stages {
			total++
			if !s.Classify(g) {
				break
			}
			_ = si
		}
	}
	return float64(total) / float64(len(windows))
}
