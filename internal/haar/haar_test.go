package haar

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"advdet/internal/img"
	"advdet/internal/synth"
)

func TestIntegralSums(t *testing.T) {
	g := img.NewGray(4, 3)
	for i := range g.Pix {
		g.Pix[i] = uint8(i + 1) // 1..12
	}
	it := NewIntegral(g)
	if got := it.Sum(0, 0, 4, 3); got != 78 {
		t.Fatalf("full sum = %d, want 78", got)
	}
	if got := it.Sum(1, 1, 3, 3); got != int64(6+7+10+11) {
		t.Fatalf("inner sum = %d", got)
	}
	if got := it.Sum(2, 1, 2, 3); got != 0 {
		t.Fatalf("empty rect sum = %d", got)
	}
}

func TestIntegralClamps(t *testing.T) {
	g := img.NewGray(3, 3)
	g.Fill(10)
	it := NewIntegral(g)
	if got := it.Sum(-5, -5, 10, 10); got != 90 {
		t.Fatalf("clamped sum = %d, want 90", got)
	}
}

func TestIntegralMatchesBruteForce(t *testing.T) {
	f := func(seed int64, ax0, ay0, aw, ah uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		g := img.NewGray(16, 16)
		for i := range g.Pix {
			g.Pix[i] = uint8(rng.Intn(256))
		}
		it := NewIntegral(g)
		x0, y0 := int(ax0%16), int(ay0%16)
		x1, y1 := x0+int(aw%8), y0+int(ah%8)
		var want int64
		for y := y0; y < y1 && y < 16; y++ {
			for x := x0; x < x1 && x < 16; x++ {
				want += int64(g.Pix[y*16+x])
			}
		}
		return it.Sum(x0, y0, x1, y1) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestIntegralMean(t *testing.T) {
	g := img.NewGray(4, 4)
	g.Fill(100)
	it := NewIntegral(g)
	if got := it.Mean(0, 0, 4, 4); got != 100 {
		t.Fatalf("mean = %v", got)
	}
	if got := it.Mean(2, 2, 2, 2); got != 0 {
		t.Fatalf("degenerate mean = %v", got)
	}
}

func TestFeatureEdgeResponses(t *testing.T) {
	// Top-bright/bottom-dark image: EdgeH responds positive, EdgeV ~0.
	g := img.NewGray(16, 16)
	for y := 0; y < 8; y++ {
		for x := 0; x < 16; x++ {
			g.Set(x, y, 200)
		}
	}
	it := NewIntegral(g)
	eh := Feature{Kind: EdgeH, X: 0, Y: 0, W: 16, H: 16}
	ev := Feature{Kind: EdgeV, X: 0, Y: 0, W: 16, H: 16}
	if eh.Eval(it, 0, 0) <= 0 {
		t.Fatal("EdgeH missed a horizontal edge")
	}
	if r := ev.Eval(it, 0, 0); r != 0 {
		t.Fatalf("EdgeV = %v on a symmetric image", r)
	}
}

func TestCenterFeatureRespondsToBlob(t *testing.T) {
	g := img.NewGray(16, 16)
	img.FillRectGray(g, img.Rect{X0: 6, Y0: 6, X1: 10, Y1: 10}, 255)
	it := NewIntegral(g)
	c := Feature{Kind: Center, X: 2, Y: 2, W: 12, H: 12}
	if c.Eval(it, 0, 0) <= 0 {
		t.Fatal("Center feature missed a central blob")
	}
	// An empty window must respond zero.
	empty := NewIntegral(img.NewGray(16, 16))
	if r := c.Eval(empty, 0, 0); r != 0 {
		t.Fatalf("Center = %v on empty window", r)
	}
}

func TestFeatureOffsetEquivalence(t *testing.T) {
	// Evaluating at an offset must equal evaluating a cropped window.
	rng := rand.New(rand.NewSource(5))
	g := img.NewGray(32, 32)
	for i := range g.Pix {
		g.Pix[i] = uint8(rng.Intn(256))
	}
	f := Feature{Kind: EdgeV, X: 1, Y: 2, W: 8, H: 8}
	whole := NewIntegral(g)
	crop := NewIntegral(g.SubImage(img.Rect{X0: 5, Y0: 7, X1: 5 + 16, Y1: 7 + 16}))
	if a, b := f.Eval(whole, 5, 7), f.Eval(crop, 0, 0); a != b {
		t.Fatalf("offset eval %v != crop eval %v", a, b)
	}
}

func TestGenerateFeaturesNonEmptyAndInBounds(t *testing.T) {
	pool := GenerateFeatures(24, 24, 4)
	if len(pool) == 0 {
		t.Fatal("empty pool")
	}
	for _, f := range pool {
		if f.X < 0 || f.Y < 0 || f.X+f.W > 24 || f.Y+f.H > 24 {
			t.Fatalf("feature out of bounds: %+v", f)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, nil, DefaultTrainOptions()); err == nil {
		t.Fatal("empty training set accepted")
	}
	a := img.NewGray(8, 8)
	b := img.NewGray(10, 10)
	if _, err := Train([]*img.Gray{a}, []*img.Gray{b}, DefaultTrainOptions()); err == nil {
		t.Fatal("mismatched window sizes accepted")
	}
}

func TestTrainSeparatesBrightBlobWindows(t *testing.T) {
	// Positives have a bright central blob (taillight-like), negatives
	// are streaks and noise — the baseline's actual job at night.
	rng := synth.NewRNG(9)
	var pos, neg []*img.Gray
	for i := 0; i < 40; i++ {
		p := img.NewGray(16, 16)
		cx, cy := 6+rng.Intn(4), 6+rng.Intn(4)
		r := 2 + rng.Intn(3)
		img.FillRectGray(p, img.Rect{X0: cx - r, Y0: cy - r, X1: cx + r, Y1: cy + r}, 230)
		pos = append(pos, p)

		n := img.NewGray(16, 16)
		if rng.Bool(0.5) {
			y := rng.Intn(16)
			img.FillRectGray(n, img.Rect{X0: 0, Y0: y, X1: 16, Y1: y + 2}, 230)
		} else {
			for k := 0; k < 8; k++ {
				n.Set(rng.Intn(16), rng.Intn(16), 230)
			}
		}
		neg = append(neg, n)
	}
	o := DefaultTrainOptions()
	o.Rounds = 20
	o.FeatureStep = 4
	c, err := Train(pos, neg, o)
	if err != nil {
		t.Fatal(err)
	}
	correct := 0
	for _, p := range pos {
		if c.Classify(p) {
			correct++
		}
	}
	for _, n := range neg {
		if !c.Classify(n) {
			correct++
		}
	}
	if acc := float64(correct) / 80; acc < 0.9 {
		t.Fatalf("training accuracy %v", acc)
	}
}

func TestTrainVehicleWindows(t *testing.T) {
	// End-to-end sanity on the synthetic day vehicle crops.
	ds := synth.DayDataset(3, 32, 32, 40, 40)
	o := DefaultTrainOptions()
	o.Rounds = 25
	c, err := Train(ds.Pos, ds.Neg, o)
	if err != nil {
		t.Fatal(err)
	}
	test := synth.DayDataset(4, 32, 32, 25, 25)
	correct := 0
	for _, p := range test.Pos {
		if c.Classify(p) {
			correct++
		}
	}
	for _, n := range test.Neg {
		if !c.Classify(n) {
			correct++
		}
	}
	if acc := float64(correct) / 50; acc < 0.75 {
		t.Fatalf("held-out accuracy %v", acc)
	}
}

func TestClassifyResizes(t *testing.T) {
	ds := synth.DayDataset(5, 32, 32, 20, 20)
	o := DefaultTrainOptions()
	o.Rounds = 10
	c, err := Train(ds.Pos, ds.Neg, o)
	if err != nil {
		t.Fatal(err)
	}
	big := img.NewGray(64, 64) // must not panic
	c.Classify(big)
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	ds := synth.DayDataset(6, 32, 32, 20, 20)
	o := DefaultTrainOptions()
	o.Rounds = 8
	c, err := Train(ds.Pos, ds.Neg, o)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := c.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	probe := ds.Pos[0]
	if got.Classify(probe) != c.Classify(probe) {
		t.Fatal("decoded classifier disagrees")
	}
	if _, err := Decode(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestSaveLoad(t *testing.T) {
	ds := synth.DayDataset(7, 32, 32, 15, 15)
	o := DefaultTrainOptions()
	o.Rounds = 5
	c, err := Train(ds.Pos, ds.Neg, o)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/haar.bin"
	if err := c.Save(path); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); err != nil {
		t.Fatal(err)
	}
}

func TestScanLocalizesTarget(t *testing.T) {
	// Train the blob-vs-streak classifier, then place one blob in a
	// larger frame; Scan must fire at (or adjacent to) its position
	// and nowhere far from it.
	rng := synth.NewRNG(31)
	var pos, neg []*img.Gray
	for i := 0; i < 40; i++ {
		p := img.NewGray(16, 16)
		cx, cy := 6+rng.Intn(4), 6+rng.Intn(4)
		img.FillRectGray(p, img.Rect{X0: cx - 3, Y0: cy - 3, X1: cx + 3, Y1: cy + 3}, 230)
		pos = append(pos, p)
		n := img.NewGray(16, 16)
		y := rng.Intn(16)
		img.FillRectGray(n, img.Rect{X0: 0, Y0: y, X1: 16, Y1: y + 2}, 230)
		neg = append(neg, n)
	}
	o := DefaultTrainOptions()
	o.Rounds = 15
	c, err := Train(pos, neg, o)
	if err != nil {
		t.Fatal(err)
	}
	frame := img.NewGray(64, 48)
	img.FillRectGray(frame, img.Rect{X0: 29, Y0: 21, X1: 35, Y1: 27}, 230) // blob at (32,24)
	wins := c.Scan(frame, 2, 0)
	if len(wins) == 0 {
		t.Fatal("Scan found nothing")
	}
	for _, w := range wins {
		cx, cy := w.X+8, w.Y+8
		if cx < 24 || cx > 40 || cy < 16 || cy > 32 {
			t.Fatalf("spurious hit at (%d,%d)", w.X, w.Y)
		}
	}
}

func TestScanTooSmallFrame(t *testing.T) {
	c := &Classifier{WinW: 32, WinH: 32, Stumps: []Stump{{Polarity: 1, Alpha: 1}}}
	if got := c.Scan(img.NewGray(8, 8), 1, 0); got != nil {
		t.Fatal("scan of too-small frame returned windows")
	}
}

func TestAlphasPositive(t *testing.T) {
	ds := synth.DayDataset(8, 32, 32, 20, 20)
	o := DefaultTrainOptions()
	o.Rounds = 10
	c, err := Train(ds.Pos, ds.Neg, o)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range c.Stumps {
		if s.Alpha <= 0 {
			t.Fatalf("stump %d alpha %v", i, s.Alpha)
		}
		if s.Polarity != 1 && s.Polarity != -1 {
			t.Fatalf("stump %d polarity %v", i, s.Polarity)
		}
	}
}
