package haar

import "fmt"

// FeatureKind is the Haar template shape.
type FeatureKind int

const (
	// EdgeH is a two-rectangle horizontal edge (top vs bottom).
	EdgeH FeatureKind = iota
	// EdgeV is a two-rectangle vertical edge (left vs right).
	EdgeV
	// LineH is a three-rectangle horizontal line (middle vs outer).
	LineH
	// LineV is a three-rectangle vertical line.
	LineV
	// Center is a four-rectangle center-surround — the template that
	// responds to compact bright blobs such as taillights.
	Center
	numKinds
)

func (k FeatureKind) String() string {
	switch k {
	case EdgeH:
		return "edge-h"
	case EdgeV:
		return "edge-v"
	case LineH:
		return "line-h"
	case LineV:
		return "line-v"
	case Center:
		return "center"
	}
	return "invalid"
}

// Feature is one Haar-like feature instance: a template at a position
// and size inside the detection window.
type Feature struct {
	Kind       FeatureKind
	X, Y, W, H int
}

// Eval computes the feature response on an integral image, offset by
// (ox, oy) — the window origin. Responses are normalized by area so
// thresholds transfer across feature sizes.
func (f Feature) Eval(it *Integral, ox, oy int) float64 {
	x0, y0 := ox+f.X, oy+f.Y
	x1, y1 := x0+f.W, y0+f.H
	switch f.Kind {
	case EdgeH:
		mid := y0 + f.H/2
		return float64(it.Sum(x0, y0, x1, mid)-it.Sum(x0, mid, x1, y1)) / float64(f.W*f.H)
	case EdgeV:
		mid := x0 + f.W/2
		return float64(it.Sum(x0, y0, mid, y1)-it.Sum(mid, y0, x1, y1)) / float64(f.W*f.H)
	case LineH:
		third := f.H / 3
		outer := it.Sum(x0, y0, x1, y0+third) + it.Sum(x0, y1-third, x1, y1)
		inner := it.Sum(x0, y0+third, x1, y1-third)
		return float64(inner-outer) / float64(f.W*f.H)
	case LineV:
		third := f.W / 3
		outer := it.Sum(x0, y0, x0+third, y1) + it.Sum(x1-third, y0, x1, y1)
		inner := it.Sum(x0+third, y0, x1-third, y1)
		return float64(inner-outer) / float64(f.W*f.H)
	case Center:
		qx, qy := f.W/4, f.H/4
		inner := it.Sum(x0+qx, y0+qy, x1-qx, y1-qy)
		whole := it.Sum(x0, y0, x1, y1)
		return float64(2*inner-whole) / float64(f.W*f.H)
	default:
		// lint:invariant Kind is a closed enum; an unknown kind is a missed case
		panic(fmt.Sprintf("haar: invalid feature kind %d", f.Kind)) // lint:alloc cold panic path; fires only on an invariant violation
	}
}

// GenerateFeatures enumerates a feature pool for a winW x winH window
// on a coarse grid (step controls density; smaller = more features).
func GenerateFeatures(winW, winH, step int) []Feature {
	if step < 1 {
		step = 1
	}
	var pool []Feature
	for kind := FeatureKind(0); kind < numKinds; kind++ {
		minW, minH := 4, 4
		if kind == LineV {
			minW = 6
		}
		if kind == LineH {
			minH = 6
		}
		for w := minW; w <= winW; w += 2 * step {
			for h := minH; h <= winH; h += 2 * step {
				for x := 0; x+w <= winW; x += step {
					for y := 0; y+h <= winH; y += step {
						pool = append(pool, Feature{Kind: kind, X: x, Y: y, W: w, H: h})
					}
				}
			}
		}
	}
	return pool
}
