package dbn

import (
	"bytes"
	"math"
	"testing"

	"advdet/internal/synth"
)

func TestClassConstantsMatchSynth(t *testing.T) {
	if ClassNone != synth.WindowNone || ClassSmall != synth.WindowSmall ||
		ClassMedium != synth.WindowMedium || ClassLarge != synth.WindowLarge {
		t.Fatal("dbn class constants diverged from synth window classes")
	}
}

func TestClassName(t *testing.T) {
	for c, want := range map[int]string{0: "none", 1: "small", 2: "medium", 3: "large", 9: "invalid"} {
		if got := ClassName(c); got != want {
			t.Fatalf("ClassName(%d) = %q, want %q", c, got, want)
		}
	}
}

func quickConfig() Config {
	cfg := DefaultConfig()
	cfg.PretrainOpts.Epochs = 3
	cfg.FineTuneIter = 15
	return cfg
}

func TestTrainErrors(t *testing.T) {
	rng := synth.NewRNG(1)
	if _, err := Train(nil, nil, DefaultConfig(), rng); err == nil {
		t.Fatal("empty set accepted")
	}
	X, labels := synth.TaillightWindowSet(1, 3)
	if _, err := Train(X, labels[:2], DefaultConfig(), rng); err == nil {
		t.Fatal("mismatched labels accepted")
	}
	bad := make([]int, len(X))
	bad[0] = 17
	if _, err := Train(X, bad, DefaultConfig(), rng); err == nil {
		t.Fatal("out-of-range label accepted")
	}
	ragged := [][]float64{make([]float64, 81), make([]float64, 80)}
	if _, err := Train(ragged, []int{0, 1}, DefaultConfig(), rng); err == nil {
		t.Fatal("ragged features accepted")
	}
}

func TestTrainArchitecture(t *testing.T) {
	X, labels := synth.TaillightWindowSet(2, 10)
	n, err := Train(X, labels, quickConfig(), synth.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(n.Sizes) != 3 || n.Sizes[0] != 81 || n.Sizes[1] != 20 || n.Sizes[2] != 8 {
		t.Fatalf("architecture %v, want [81 20 8]", n.Sizes)
	}
	if len(n.OutW) != NumClasses*8 || len(n.OutB) != NumClasses {
		t.Fatal("output layer shape wrong")
	}
}

func TestProbsSumToOne(t *testing.T) {
	X, labels := synth.TaillightWindowSet(4, 8)
	n, err := Train(X, labels, quickConfig(), synth.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:10] {
		p := n.Probs(x)
		var sum float64
		for _, v := range p {
			if v < 0 || v > 1 {
				t.Fatalf("probability %v out of range", v)
			}
			sum += v
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("probabilities sum to %v", sum)
		}
	}
}

func TestProbsPanicsOnWrongLength(t *testing.T) {
	X, labels := synth.TaillightWindowSet(6, 4)
	n, err := Train(X, labels, quickConfig(), synth.NewRNG(7))
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("wrong input length did not panic")
		}
	}()
	n.Probs(make([]float64, 9))
}

func TestTrainedNetworkLearnsClasses(t *testing.T) {
	// The headline requirement: after training, the DBN must separate
	// the four size/shape classes well on held-out data.
	X, labels := synth.TaillightWindowSet(10, 120)
	cfg := DefaultConfig()
	cfg.PretrainOpts.Epochs = 5
	cfg.FineTuneIter = 40
	n, err := Train(X, labels, cfg, synth.NewRNG(11))
	if err != nil {
		t.Fatal(err)
	}
	testX, testL := synth.TaillightWindowSet(999, 40)
	acc := n.Accuracy(testX, testL)
	if acc < 0.9 {
		t.Fatalf("held-out window accuracy %v, want >= 0.9", acc)
	}
}

func TestClassifyDistinguishesSizes(t *testing.T) {
	X, labels := synth.TaillightWindowSet(12, 100)
	cfg := DefaultConfig()
	cfg.PretrainOpts.Epochs = 5
	cfg.FineTuneIter = 40
	n, err := Train(X, labels, cfg, synth.NewRNG(13))
	if err != nil {
		t.Fatal(err)
	}
	// A canonical large blob must not be classified as small and vice
	// versa; tolerate adjacent-size confusion on random jitter.
	small := synth.TaillightWindow(synth.NewRNG(501), synth.WindowSmall)
	large := synth.TaillightWindow(synth.NewRNG(502), synth.WindowLarge)
	cs, _ := n.Classify(small)
	cl, _ := n.Classify(large)
	if cs == ClassLarge {
		t.Fatal("small blob classified large")
	}
	if cl == ClassSmall || cl == ClassNone {
		t.Fatalf("large blob classified %s", ClassName(cl))
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	X, labels := synth.TaillightWindowSet(14, 6)
	n, err := Train(X, labels, quickConfig(), synth.NewRNG(15))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := n.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	x := X[0]
	a, b := n.Probs(x), got.Probs(x)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("decoded network disagrees")
		}
	}
}

func TestSaveLoad(t *testing.T) {
	X, labels := synth.TaillightWindowSet(16, 6)
	n, err := Train(X, labels, quickConfig(), synth.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/dbn.bin"
	if err := n.Save(path); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	c1, _ := n.Classify(X[0])
	c2, _ := got.Classify(X[0])
	if c1 != c2 {
		t.Fatal("loaded network classifies differently")
	}
}

func TestDecodeGarbage(t *testing.T) {
	if _, err := Decode(bytes.NewReader([]byte("junk"))); err == nil {
		t.Fatal("garbage decoded")
	}
}

func TestWeightBytes(t *testing.T) {
	X, labels := synth.TaillightWindowSet(18, 4)
	n, err := Train(X, labels, quickConfig(), synth.NewRNG(19))
	if err != nil {
		t.Fatal(err)
	}
	// 81*20 + 20 + 20*8 + 8 + 4*8 + 4 weights, 4 bytes each.
	want := 4 * (81*20 + 20 + 20*8 + 8 + 4*8 + 4)
	if got := n.WeightBytes(); got != want {
		t.Fatalf("WeightBytes = %d, want %d", got, want)
	}
}
