// Package dbn implements the paper's deep belief network for taillight
// detection: a stack of greedily pretrained RBMs (81 visible units for
// a 9x9 binary window, hidden layers of 20 and 8 units) topped with a
// 4-way softmax layer that "determines the size and shape class of
// taillights" (§III-B), fine-tuned end to end by backpropagation.
//
// lint:detpath
package dbn

import (
	"encoding/gob"
	"fmt"
	"io"
	"math"
	"os"

	"advdet/internal/rbm"
)

// The paper's architecture constants.
const (
	// Window is the side of the sliding window (9x9 = 81 visible units).
	Window = 9
	// Stride is the sliding-window step.
	Stride = 2
	// NumClasses is the size/shape output layer width.
	NumClasses = 4
)

// Class labels for the 4 output nodes.
const (
	ClassNone   = 0 // no taillight in the window
	ClassSmall  = 1 // small/far lamp
	ClassMedium = 2 // medium lamp
	ClassLarge  = 3 // large/near lamp
)

// ClassName returns a human-readable label.
func ClassName(c int) string {
	switch c {
	case ClassNone:
		return "none"
	case ClassSmall:
		return "small"
	case ClassMedium:
		return "medium"
	case ClassLarge:
		return "large"
	}
	return "invalid"
}

// Network is the stacked model. Hidden layers use logistic units whose
// weights are initialized by RBM pretraining; OutW/OutB form the
// softmax classification layer.
type Network struct {
	Sizes []int       // e.g. [81 20 8]
	W     [][]float64 // W[l] is row-major [Sizes[l+1]][Sizes[l]]
	B     [][]float64 // B[l] has Sizes[l+1] entries
	OutW  []float64   // [NumClasses][Sizes[last]] row-major
	OutB  []float64   // [NumClasses]
}

// Config selects the architecture and training schedule.
type Config struct {
	Hidden       []int // hidden layer sizes (default {20, 8})
	PretrainOpts rbm.TrainOptions
	FineTuneLR   float64 // backprop learning rate (default 0.3)
	FineTuneIter int     // backprop epochs (default 30)
}

// DefaultConfig returns the paper's 81-20-8(-4) architecture.
func DefaultConfig() Config {
	return Config{
		Hidden:       []int{20, 8},
		PretrainOpts: rbm.DefaultTrainOptions(),
		FineTuneLR:   0.3,
		FineTuneIter: 30,
	}
}

// Train pretrains the stack layer by layer on the unlabeled windows,
// then fine-tunes the whole network on the labeled set.
// X rows are length Window*Window with values in [0,1]; labels are
// class indices in [0, NumClasses).
func Train(X [][]float64, labels []int, cfg Config, rng rbm.RNG) (*Network, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("dbn: empty training set")
	}
	if len(labels) != len(X) {
		return nil, fmt.Errorf("dbn: %d samples but %d labels", len(X), len(labels))
	}
	nv := len(X[0])
	for i, x := range X {
		if len(x) != nv {
			return nil, fmt.Errorf("dbn: sample %d has %d features, want %d", i, len(x), nv)
		}
	}
	for i, l := range labels {
		if l < 0 || l >= NumClasses {
			return nil, fmt.Errorf("dbn: label %d at %d out of range", l, i)
		}
	}
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{20, 8}
	}
	if cfg.FineTuneLR <= 0 {
		cfg.FineTuneLR = 0.3
	}
	if cfg.FineTuneIter <= 0 {
		cfg.FineTuneIter = 30
	}

	sizes := append([]int{nv}, cfg.Hidden...)
	n := &Network{Sizes: sizes}

	// Greedy layerwise pretraining: train an RBM on the activations of
	// the layer below, then propagate the data up through it.
	cur := X
	for l := 0; l+1 < len(sizes); l++ {
		machine := rbm.New(sizes[l], sizes[l+1], rng)
		machine.Train(cur, cfg.PretrainOpts, rng)
		n.W = append(n.W, machine.W)
		n.B = append(n.B, machine.BH)
		up := make([][]float64, len(cur))
		for i, v := range cur {
			up[i] = machine.HiddenProbs(v, nil)
		}
		cur = up
	}

	// Output layer starts at zero (softmax over the top features).
	top := sizes[len(sizes)-1]
	n.OutW = make([]float64, NumClasses*top)
	n.OutB = make([]float64, NumClasses)

	n.fineTune(X, labels, cfg, rng)
	return n, nil
}

// forward runs the network, returning all layer activations; acts[0]
// is the input, acts[len(Sizes)-1] the top hidden layer, and the
// returned probs are the softmax class probabilities.
func (n *Network) forward(x []float64) (acts [][]float64, probs []float64) {
	acts = make([][]float64, len(n.Sizes))
	acts[0] = x
	for l := 0; l+1 < len(n.Sizes); l++ {
		in := acts[l]
		out := make([]float64, n.Sizes[l+1])
		w := n.W[l]
		nvl := n.Sizes[l]
		for h := range out {
			s := n.B[l][h]
			row := w[h*nvl : (h+1)*nvl]
			for i, v := range in {
				s += row[i] * v
			}
			out[h] = 1 / (1 + math.Exp(-s))
		}
		acts[l+1] = out
	}
	top := acts[len(acts)-1]
	logits := make([]float64, NumClasses)
	tw := len(top)
	maxL := math.Inf(-1)
	for c := 0; c < NumClasses; c++ {
		s := n.OutB[c]
		row := n.OutW[c*tw : (c+1)*tw]
		for i, v := range top {
			s += row[i] * v
		}
		logits[c] = s
		if s > maxL {
			maxL = s
		}
	}
	var sum float64
	probs = make([]float64, NumClasses)
	for c, l := range logits {
		probs[c] = math.Exp(l - maxL)
		sum += probs[c]
	}
	for c := range probs {
		probs[c] /= sum
	}
	return acts, probs
}

// Probs returns the class probabilities for a window.
func (n *Network) Probs(x []float64) []float64 {
	if len(x) != n.Sizes[0] {
		// lint:invariant window length is fixed by the trained topology; mismatch is a wiring bug
		panic(fmt.Sprintf("dbn: input length %d, want %d", len(x), n.Sizes[0]))
	}
	_, p := n.forward(x)
	return p
}

// Classify returns the most probable class and its probability.
func (n *Network) Classify(x []float64) (class int, prob float64) {
	p := n.Probs(x)
	best := 0
	for c := 1; c < len(p); c++ {
		if p[c] > p[best] {
			best = c
		}
	}
	return best, p[best]
}

// fineTune runs stochastic-gradient backpropagation with cross-entropy
// loss through the softmax and sigmoid layers.
func (n *Network) fineTune(X [][]float64, labels []int, cfg Config, rng rbm.RNG) {
	nSamples := len(X)
	order := make([]int, nSamples)
	for i := range order {
		order[i] = i
	}
	top := n.Sizes[len(n.Sizes)-1]
	for epoch := 0; epoch < cfg.FineTuneIter; epoch++ {
		// Shuffle with the shared RNG for determinism.
		for i := nSamples - 1; i > 0; i-- {
			j := int(rng.Float64() * float64(i+1))
			if j > i {
				j = i
			}
			order[i], order[j] = order[j], order[i]
		}
		lr := cfg.FineTuneLR / (1 + 0.05*float64(epoch))
		for _, idx := range order {
			x, label := X[idx], labels[idx]
			acts, probs := n.forward(x)
			topAct := acts[len(acts)-1]

			// Softmax output delta: p - onehot(label).
			dOut := make([]float64, NumClasses)
			copy(dOut, probs)
			dOut[label] -= 1

			// Delta for the top hidden layer.
			dHidden := make([]float64, top)
			for c := 0; c < NumClasses; c++ {
				row := n.OutW[c*top : (c+1)*top]
				for i := range dHidden {
					dHidden[i] += dOut[c] * row[i]
				}
			}
			// Output layer update.
			for c := 0; c < NumClasses; c++ {
				row := n.OutW[c*top : (c+1)*top]
				for i, a := range topAct {
					row[i] -= lr * dOut[c] * a
				}
				n.OutB[c] -= lr * dOut[c]
			}

			// Backprop through the sigmoid stack.
			delta := dHidden
			for l := len(n.Sizes) - 2; l >= 0; l-- {
				in := acts[l]
				out := acts[l+1]
				nvl := n.Sizes[l]
				// delta currently holds dL/d(out activations).
				for h := range delta {
					delta[h] *= out[h] * (1 - out[h]) // sigmoid'
				}
				var prev []float64
				if l > 0 {
					prev = make([]float64, nvl)
					for h := range delta {
						row := n.W[l][h*nvl : (h+1)*nvl]
						for i := range prev {
							prev[i] += delta[h] * row[i]
						}
					}
				}
				for h := range delta {
					row := n.W[l][h*nvl : (h+1)*nvl]
					d := lr * delta[h]
					for i, v := range in {
						row[i] -= d * v
					}
					n.B[l][h] -= d
				}
				delta = prev
			}
		}
	}
}

// Accuracy evaluates classification accuracy on a labeled set.
func (n *Network) Accuracy(X [][]float64, labels []int) float64 {
	if len(X) == 0 {
		return 0
	}
	correct := 0
	for i, x := range X {
		if c, _ := n.Classify(x); c == labels[i] {
			correct++
		}
	}
	return float64(correct) / float64(len(X))
}

// netFile is the serialized form.
type netFile struct {
	Sizes []int
	W     [][]float64
	B     [][]float64
	OutW  []float64
	OutB  []float64
}

// Encode writes the network to w.
func (n *Network) Encode(w io.Writer) error {
	return gob.NewEncoder(w).Encode(netFile{n.Sizes, n.W, n.B, n.OutW, n.OutB})
}

// Decode reads a network from r.
func Decode(r io.Reader) (*Network, error) {
	var f netFile
	if err := gob.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("dbn: decode: %w", err)
	}
	return &Network{Sizes: f.Sizes, W: f.W, B: f.B, OutW: f.OutW, OutB: f.OutB}, nil
}

// Save writes the network to the named file.
func (n *Network) Save(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := n.Encode(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Load reads a network from the named file.
func Load(path string) (*Network, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Decode(f)
}

// WeightBytes reports the model footprint (32-bit words) for the FPGA
// resource model.
func (n *Network) WeightBytes() int {
	total := len(n.OutW) + len(n.OutB)
	for l := range n.W {
		total += len(n.W[l]) + len(n.B[l])
	}
	return 4 * total
}
