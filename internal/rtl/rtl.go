// Package rtl models the streaming hardware pipelines of Figs. 2 and 4
// at stage granularity: each stage has an initiation interval (cycles
// per sample), a fill latency, a working resolution and the BRAM it
// needs for line buffers, intermediate storage ("HOG Memory",
// "Normalized HOG Memory") and model data. The package answers two
// questions the paper's hardware sections turn on:
//
//   - does the pipeline sustain 50 fps at 1080p from a 125 MHz clock
//     (the slowest stage's II bounds throughput), and
//   - does the BRAM the stages imply fit the per-configuration budget
//     of Table II.
//
// The PL has no FPU, so every rate in the model is an exact integer
// rational (Ratio) and frame-cycle arithmetic is pure integer math —
// a fractional II like the normalizer's 1.2 cycles/pixel is the
// hardware's "6 cycles per 5 pixels" block re-read rhythm, not a
// float. Only the FPS reporting helper, which runs on the PS, touches
// floating point.
//
// lint:datapath
// lint:simtime
package rtl

import (
	"fmt"

	"advdet/internal/soc"
)

// Ratio is an exact non-negative rational rate. Stage timing is
// specified the way the RTL realizes it — integer cycles over integer
// samples — so frame-cycle counts stay exact integers.
type Ratio struct {
	Num, Den int
}

// R returns the ratio num/den.
func R(num, den int) Ratio { return Ratio{Num: num, Den: den} }

// Unit is the 1/1 ratio (one cycle per sample, or full resolution).
var Unit = R(1, 1)

// valid reports whether the ratio is a positive rate.
func (r Ratio) valid() bool { return r.Num > 0 && r.Den > 0 }

// Stage is one pipeline stage.
type Stage struct {
	Name string
	// II is the initiation interval in cycles per sample at this
	// stage's working resolution (R(6, 5) = 1.2 cycles/sample).
	II Ratio
	// Scale is the stage's sample count as a fraction of full-frame
	// pixels (Unit = full resolution; a /3 downscaled map is R(1, 9)).
	Scale Ratio
	// LatencyCycles is the fill latency (line buffers, windows).
	LatencyCycles int
	// BRAMBits is the stage's buffer + model storage requirement.
	BRAMBits int
}

// cycles returns ceil(pixels x Scale x II): the cycles this stage
// needs to stream one frame of the given pixel count.
func (s Stage) cycles(pixels uint64) uint64 {
	num := pixels * uint64(s.II.Num) * uint64(s.Scale.Num)
	den := uint64(s.II.Den) * uint64(s.Scale.Den)
	return (num + den - 1) / den
}

// load is the stage's throughput cost II x Scale as a cross-
// multipliable pair for exact comparison.
func (s Stage) load() (num, den uint64) {
	return uint64(s.II.Num) * uint64(s.Scale.Num), uint64(s.II.Den) * uint64(s.Scale.Den)
}

// Pipeline is a chain of streaming stages in one clock domain.
type Pipeline struct {
	Name   string
	Clk    soc.Clock
	Stages []Stage
}

// validate panics on nonsensical stages.
func (p Pipeline) validate() {
	for _, s := range p.Stages {
		if !s.II.valid() || !s.Scale.valid() || s.LatencyCycles < 0 || s.BRAMBits < 0 {
			// lint:invariant pipelines are package-internal literals pinned by the package tests
			panic(fmt.Sprintf("rtl: invalid stage %+v in %q", s, p.Name))
		}
	}
}

// FrameCycles returns the cycles to stream one w x h frame: stages
// run concurrently, so throughput is bounded by the slowest stage's
// samples x II, plus the summed fill latency. All integer math: the
// count is exact, not a float approximation.
func (p Pipeline) FrameCycles(w, h int) uint64 {
	p.validate()
	pixels := uint64(w) * uint64(h)
	var worst, latency uint64
	for _, s := range p.Stages {
		if c := s.cycles(pixels); c > worst {
			worst = c
		}
		latency += uint64(s.LatencyCycles)
	}
	return worst + latency
}

// FramePS returns the frame time in picoseconds.
func (p Pipeline) FramePS(w, h int) uint64 {
	return p.Clk.CyclesPS(p.FrameCycles(w, h))
}

// FPS returns the sustained frame rate at w x h.
//
// lint:allowfloat frame-rate reporting runs on the PS, not in the PL datapath
func (p Pipeline) FPS(w, h int) float64 {
	return 1 / soc.Seconds(p.FramePS(w, h))
}

// Bottleneck returns the stage bounding throughput: the largest
// II x Scale product, compared exactly by cross-multiplication.
func (p Pipeline) Bottleneck() Stage {
	p.validate()
	best := p.Stages[0]
	bn, bd := best.load()
	for _, s := range p.Stages[1:] {
		sn, sd := s.load()
		if sn*bd > bn*sd {
			best, bn, bd = s, sn, sd
		}
	}
	return best
}

// BRAMBlocks returns the number of 36 Kb block RAMs the pipeline's
// buffers occupy (the unit Table II counts).
func (p Pipeline) BRAMBlocks() int {
	p.validate()
	const blockBits = 36 * 1024
	total := 0
	for _, s := range p.Stages {
		total += (s.BRAMBits + blockBits - 1) / blockBits
	}
	return total
}

// hdWidth is the line length all line-buffer sizing assumes.
const hdWidth = 1920

// DayDuskPipeline returns the Fig. 2 HOG+SVM pipeline. The block
// normalizer is the bottleneck at 6 cycles per 5 pixels (1.2) — its
// block re-reads break the one-pixel-per-cycle streaming rhythm —
// which is exactly the soc model's aggregate figure and what makes
// the 125 MHz fabric deliver ~50 fps at 1080p.
func DayDuskPipeline() Pipeline {
	return Pipeline{
		Name: "day-dusk-hog-svm",
		Clk:  soc.ClkPL,
		Stages: []Stage{
			// Centered gradients need one line of context above and
			// below: two line buffers.
			{Name: "gradient", II: Unit, Scale: Unit, LatencyCycles: 2 * hdWidth,
				BRAMBits: 2 * hdWidth * 8},
			// Cell histograms accumulate one 8-row band of cells:
			// 240 cells x 9 bins x 16 bit, double buffered.
			{Name: "histogram", II: Unit, Scale: Unit, LatencyCycles: 8 * hdWidth,
				BRAMBits: 2 * (hdWidth / 8) * 9 * 16},
			// Block normalization re-reads each cell in up to four
			// blocks: the stage that costs 6 cycles per 5 pixels. The
			// "HOG Memory" between histogram and normalizer holds two
			// cell bands.
			{Name: "normalize", II: R(6, 5), Scale: Unit, LatencyCycles: 8 * hdWidth,
				BRAMBits: 4 * (hdWidth / 8) * 9 * 16},
			// SVM accumulates one dot product per window position;
			// window-parallel MACs keep II at 1. Model BRAM: 1764
			// weights x 32 bit x 2 models (day + dusk) plus the
			// "Normalized HOG Memory".
			{Name: "svm", II: Unit, Scale: Unit, LatencyCycles: 1024,
				BRAMBits: 2*1764*32 + 2*(hdWidth/8)*36*16},
		},
	}
}

// DarkPipeline returns the Fig. 4 pipeline. The front end runs at
// full resolution; everything behind the downscaler works on the
// 640x360 map (Scale 1/9), so even the 4-cycle DBN engine is far from
// the throughput bound.
func DarkPipeline() Pipeline {
	mapScale := R(1, 9)
	return Pipeline{
		Name: "dark-dbn",
		Clk:  soc.ClkPL,
		Stages: []Stage{
			{Name: "split+threshold", II: Unit, Scale: Unit, LatencyCycles: 8,
				BRAMBits: 0},
			{Name: "downsample", II: Unit, Scale: Unit, LatencyCycles: 3 * hdWidth,
				BRAMBits: 3 * hdWidth * 1},
			// Closing: 3x3 dilate + erode on the binary map; two
			// 3-line binary buffers at map width.
			{Name: "closing", II: Unit, Scale: mapScale, LatencyCycles: 6 * (hdWidth / 3),
				BRAMBits: 2 * 3 * (hdWidth / 3) * 1},
			// Sliding DBN: 9 map lines buffered; the engine spends ~4
			// cycles per map sample (81->20->8->4 MACs across parallel
			// rows), gated to foreground windows.
			{Name: "dbn", II: R(4, 1), Scale: mapScale, LatencyCycles: 9 * (hdWidth / 3),
				BRAMBits: 9*(hdWidth/3)*1 + (81*20+20*8+8*4)*32},
			// Pair matching touches only light candidates: one cycle
			// per 20 map samples.
			{Name: "pair-match", II: R(1, 20), Scale: mapScale, LatencyCycles: 256,
				BRAMBits: 4 * 1024},
		},
	}
}

// PedestrianPipeline returns the static-partition pipeline (same
// structure as Fig. 2 with a single model).
func PedestrianPipeline() Pipeline {
	p := DayDuskPipeline()
	p.Name = "pedestrian-hog-svm"
	// One model instead of two.
	p.Stages[3].BRAMBits = 756*32 + 2*(hdWidth/8)*36*16
	return p
}
