package rtl

import (
	"math"
	"testing"

	"advdet/internal/fpga"
	"advdet/internal/soc"
)

func TestDayDuskPipelineHits50FPS(t *testing.T) {
	p := DayDuskPipeline()
	fps := p.FPS(1920, 1080)
	if fps < 48 || fps > 55 {
		t.Fatalf("day/dusk pipeline %v fps at 1080p, want ~50", fps)
	}
}

func TestDayDuskMatchesSoCAggregate(t *testing.T) {
	// The stage model and the soc-level 1.2 cycles/pixel aggregate
	// must agree within the fill-latency slack.
	p := DayDuskPipeline()
	agg := soc.NewDetectionPipeline("vehicle")
	stagePS := p.FramePS(1920, 1080)
	aggPS := agg.FramePS(1920, 1080)
	if rel := math.Abs(float64(stagePS)-float64(aggPS)) / float64(aggPS); rel > 0.02 {
		t.Fatalf("stage model %.3f ms vs aggregate %.3f ms (%.1f%% apart)",
			soc.Seconds(stagePS)*1e3, soc.Seconds(aggPS)*1e3, 100*rel)
	}
}

func TestDarkPipelineFasterFrontEndBound(t *testing.T) {
	// The dark pipeline's bottleneck is the full-resolution front end
	// (threshold/downsample at II=1), not the DBN: the map-resolution
	// stages run on 1/9 of the samples.
	p := DarkPipeline()
	b := p.Bottleneck()
	if b.Name == "dbn" || b.Name == "pair-match" {
		t.Fatalf("bottleneck %q should be a front-end stage", b.Name)
	}
	fps := p.FPS(1920, 1080)
	if fps < 50 {
		t.Fatalf("dark pipeline %v fps, must sustain 50", fps)
	}
}

func TestPipelinesFitTableIIBRAMBudgets(t *testing.T) {
	// The stage-implied BRAM must fit inside each configuration's
	// Table II BRAM count (which also covers frame buffers the stage
	// model does not include — so strictly less).
	ddBlocks := DayDuskPipeline().BRAMBlocks()
	ddBudget := fpga.Sum(fpga.DayDuskModules()).BRAM
	if ddBlocks > ddBudget {
		t.Fatalf("day/dusk stage BRAM %d blocks exceeds Table II budget %d", ddBlocks, ddBudget)
	}
	darkBlocks := DarkPipeline().BRAMBlocks()
	darkBudget := fpga.Sum(fpga.DarkModules()).BRAM
	if darkBlocks > darkBudget {
		t.Fatalf("dark stage BRAM %d blocks exceeds Table II budget %d", darkBlocks, darkBudget)
	}
	pedBlocks := PedestrianPipeline().BRAMBlocks()
	pedBudget := fpga.Sum(fpga.StaticModules()).BRAM
	if pedBlocks > pedBudget {
		t.Fatalf("pedestrian stage BRAM %d exceeds static budget %d", pedBlocks, pedBudget)
	}
}

func TestBottleneckIsNormalizer(t *testing.T) {
	if b := DayDuskPipeline().Bottleneck(); b.Name != "normalize" {
		t.Fatalf("bottleneck = %q, want the block normalizer", b.Name)
	}
}

func TestFrameCyclesMonotoneInSize(t *testing.T) {
	p := DayDuskPipeline()
	if p.FrameCycles(640, 360) >= p.FrameCycles(1920, 1080) {
		t.Fatal("smaller frame should cost fewer cycles")
	}
}

func TestValidatePanics(t *testing.T) {
	p := Pipeline{Name: "bad", Clk: soc.ClkPL, Stages: []Stage{{Name: "x", II: R(0, 1), Scale: Unit}}}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid stage did not panic")
		}
	}()
	p.FrameCycles(10, 10)
}

func TestBRAMBlocksRoundsUp(t *testing.T) {
	p := Pipeline{Name: "t", Clk: soc.ClkPL, Stages: []Stage{
		{Name: "a", II: Unit, Scale: Unit, BRAMBits: 1},           // 1 bit -> 1 block
		{Name: "b", II: Unit, Scale: Unit, BRAMBits: 36*1024 + 1}, // -> 2 blocks
	}}
	if got := p.BRAMBlocks(); got != 3 {
		t.Fatalf("BRAMBlocks = %d, want 3", got)
	}
}
