package fixed

import (
	"math"
	"testing"
)

// clamp32 is the saturation reference: the value an infinitely wide
// datapath would clamp into int32.
func clamp32(v int64) int64 {
	if v > math.MaxInt32 {
		return math.MaxInt32
	}
	if v < math.MinInt32 {
		return math.MinInt32
	}
	return v
}

// FuzzQAddSub locks the additive group of the Q16.16 datapath to its
// wide-accumulator reference: Add/Sub/Neg must equal 64-bit arithmetic
// clamped to int32 (never wrap), and Float/FromFloat must round-trip
// every representable Q exactly (|Q| <= 2^31 is exact in float64).
func FuzzQAddSub(f *testing.F) {
	f.Add(int32(0), int32(0), 0.0)
	f.Add(int32(math.MaxInt32), int32(math.MaxInt32), 1.5)
	f.Add(int32(math.MinInt32), int32(-1), -32768.0)
	f.Add(int32(1<<16), int32(-(1 << 16)), 123.456)
	f.Add(int32(math.MinInt32), int32(math.MinInt32), math.MaxFloat64)
	f.Fuzz(func(t *testing.T, a, b int32, fv float64) {
		qa, qb := Q(a), Q(b)
		if got, want := int64(qa.Add(qb)), clamp32(int64(a)+int64(b)); got != want {
			t.Fatalf("Add(%d, %d) = %d, want %d", a, b, got, want)
		}
		if got, want := int64(qa.Sub(qb)), clamp32(int64(a)-int64(b)); got != want {
			t.Fatalf("Sub(%d, %d) = %d, want %d", a, b, got, want)
		}
		if got, want := int64(qa.Neg()), clamp32(-int64(a)); got != want {
			t.Fatalf("Neg(%d) = %d, want %d", a, got, want)
		}
		if back := FromFloat(qa.Float()); back != qa {
			t.Fatalf("FromFloat(Float(%d)) = %d, not a fixed point", a, back)
		}
		// FromFloat of an arbitrary finite float lands within half an
		// LSB of the true value, or saturates when out of range.
		if !math.IsNaN(fv) && !math.IsInf(fv, 0) {
			q := FromFloat(fv)
			switch {
			case fv >= Q(math.MaxInt32).Float():
				if q != Q(math.MaxInt32) {
					t.Fatalf("FromFloat(%g) = %v, want saturation to max", fv, q)
				}
			case fv <= Q(math.MinInt32).Float():
				if q != Q(math.MinInt32) {
					t.Fatalf("FromFloat(%g) = %v, want saturation to min", fv, q)
				}
			default:
				if err := math.Abs(q.Float() - fv); err > 0.5/float64(One) {
					t.Fatalf("FromFloat(%g) round-trip error %g exceeds half an LSB", fv, err)
				}
			}
		}
	})
}

// rneShift is the round-half-even reference: quotient of v / 2^shift
// rounded to nearest, ties to the even quotient.
func rneShift(v int64, shift uint) int64 {
	q := v >> shift
	half := int64(1) << (shift - 1)
	frac := v & (int64(1)<<shift - 1)
	if frac > half || (frac == half && q&1 != 0) {
		q++
	}
	return q
}

// FuzzQMulDiv locks the multiplicative datapath: Mul must match the
// DSP48-style full-width product rescaled once with round-half-even
// (a truncating rescale biases multiply chains low; see the Mul doc),
// Div the widened truncating quotient, both clamped — and division by
// zero must saturate to the sign-appropriate extreme exactly as the
// RTL divider does.
func FuzzQMulDiv(f *testing.F) {
	f.Add(int32(0), int32(0))
	f.Add(int32(1<<16), int32(1<<16))
	f.Add(int32(math.MaxInt32), int32(math.MaxInt32))
	f.Add(int32(math.MinInt32), int32(-1))
	f.Add(int32(-(1 << 16)), int32(0))
	f.Add(int32(1<<15), int32(3)) // exact .5-LSB tie in the product
	f.Fuzz(func(t *testing.T, a, b int32) {
		qa, qb := Q(a), Q(b)
		if got, want := int64(qa.Mul(qb)), clamp32(rneShift(int64(a)*int64(b), FracBits)); got != want {
			t.Fatalf("Mul(%d, %d) = %d, want %d", a, b, got, want)
		}
		var want int64
		if b == 0 {
			want = math.MaxInt32
			if a < 0 {
				want = math.MinInt32
			}
		} else {
			want = clamp32((int64(a) << FracBits) / int64(b))
		}
		if got := int64(qa.Div(qb)); got != want {
			t.Fatalf("Div(%d, %d) = %d, want %d", a, b, got, want)
		}
		// One is the multiplicative identity on the entire range.
		if qa.Mul(One) != qa {
			t.Fatalf("Mul(%d, One) != %d", a, a)
		}
	})
}
